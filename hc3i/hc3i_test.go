package hc3i_test

import (
	"strings"
	"testing"
	"time"

	"repro/hc3i"
)

func smallConfig() hc3i.Config {
	return hc3i.Config{
		Clusters: []hc3i.Cluster{
			{Name: "simulation", Nodes: 4},
			{Name: "display", Nodes: 4},
		},
		TotalTime:    time.Hour,
		RatesPerHour: [][]float64{{600, 20}, {5, 600}},
		CLCPeriods:   []time.Duration{10 * time.Minute, 10 * time.Minute},
		StateSize:    64 << 10,
		Seed:         1,
	}
}

func TestRunDefaults(t *testing.T) {
	res, err := hc3i.Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 2 {
		t.Fatalf("clusters = %d", len(res.Clusters))
	}
	if res.Clusters[0].Name != "simulation" {
		t.Fatalf("name = %q", res.Clusters[0].Name)
	}
	if res.Clusters[0].Committed == 0 {
		t.Fatal("no checkpoints committed")
	}
	if res.AppMessages[0][0] == 0 || res.AppMessages[0][1] == 0 {
		t.Fatalf("traffic = %v", res.AppMessages)
	}
	if res.EndTime < time.Hour {
		t.Fatalf("ended at %v", res.EndTime)
	}
	if res.Counter("net.sent") == 0 {
		t.Fatal("raw counters unavailable")
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := hc3i.Run(hc3i.Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	cfg := smallConfig()
	cfg.Protocol = "bogus"
	if _, err := hc3i.Run(cfg); err == nil {
		t.Fatal("bogus protocol accepted")
	}
	cfg = smallConfig()
	cfg.RatesPerHour = [][]float64{{1}}
	if _, err := hc3i.Run(cfg); err == nil {
		t.Fatal("bad rate matrix accepted")
	}
}

func TestRunWithCrashAndGC(t *testing.T) {
	cfg := smallConfig()
	cfg.GCPeriod = 20 * time.Minute
	cfg.Crashes = []hc3i.Crash{{At: 25 * time.Minute, Cluster: 0, Node: 1}}
	res, err := hc3i.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 1 {
		t.Fatalf("failures = %d", res.Failures)
	}
	if res.Clusters[0].Rollbacks == 0 {
		t.Fatal("no rollback recorded")
	}
	if len(res.GCRounds) == 0 {
		t.Fatal("no GC rounds")
	}
}

func TestRunForeverTimer(t *testing.T) {
	cfg := smallConfig()
	cfg.RatesPerHour = [][]float64{{600, 0}, {0, 600}} // no inter traffic
	cfg.CLCPeriods = []time.Duration{10 * time.Minute, hc3i.Forever}
	res, err := hc3i.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Clusters[1].Committed != 0 {
		t.Fatalf("cluster with Forever timer committed %d CLCs", res.Clusters[1].Committed)
	}
}

func TestAllProtocolsRun(t *testing.T) {
	for _, p := range []hc3i.Protocol{
		hc3i.HC3I, hc3i.ForceAll, hc3i.Independent,
		hc3i.GlobalCoordinated, hc3i.HierCoordinated, hc3i.PessimisticLog,
	} {
		cfg := smallConfig()
		cfg.Protocol = p
		res, err := hc3i.Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		var committed uint64
		for _, c := range res.Clusters {
			committed += c.Committed
		}
		if committed == 0 {
			t.Fatalf("%s: no checkpoints", p)
		}
	}
}

func TestTraceOutput(t *testing.T) {
	cfg := smallConfig()
	var sb strings.Builder
	cfg.Trace = &sb
	cfg.TraceLevel = "debug"
	if _, err := hc3i.Run(cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "CLC") {
		t.Fatal("trace has no checkpoint records")
	}
}

func TestDeterminismThroughFacade(t *testing.T) {
	a, err := hc3i.Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := hc3i.Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.Events != b.Events {
		t.Fatalf("same config diverged: %d vs %d events", a.Events, b.Events)
	}
}

func TestExperimentRegistryThroughFacade(t *testing.T) {
	infos := hc3i.Experiments()
	if len(infos) < 13 {
		t.Fatalf("experiments = %d, want >= 13", len(infos))
	}
	res, err := hc3i.RunExperiment("T1", 1, true)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Render()
	if !strings.Contains(out, "T1") || !strings.Contains(out, "Cluster 0") {
		t.Fatalf("render:\n%s", out)
	}
	if _, err := hc3i.RunExperiment("nope", 1, true); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
