package hc3i

import (
	"fmt"

	"repro/internal/experiments"
)

// ExperimentInfo describes one registered experiment.
type ExperimentInfo struct {
	ID          string
	Title       string
	Description string
}

// ExperimentResult is a rendered experiment table.
type ExperimentResult struct {
	ID      string
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// Render formats the result as aligned text.
func (r *ExperimentResult) Render() string {
	t := experiments.Table{
		ID: r.ID, Title: r.Title, Headers: r.Headers, Rows: r.Rows, Notes: r.Notes,
	}
	return t.Render()
}

// CSV renders the result as comma-separated values for plotting.
func (r *ExperimentResult) CSV() string {
	t := experiments.Table{Headers: r.Headers, Rows: r.Rows}
	return t.CSV()
}

// Markdown renders the result as a GitHub-flavoured markdown table.
func (r *ExperimentResult) Markdown() string {
	t := experiments.Table{
		ID: r.ID, Title: r.Title, Headers: r.Headers, Rows: r.Rows, Notes: r.Notes,
	}
	return t.Markdown()
}

// Experiments lists every experiment of the registry: the paper's
// Table 1, Figures 6-9 and Tables 2-3, then the ablations A1-A6.
func Experiments() []ExperimentInfo {
	var out []ExperimentInfo
	for _, e := range experiments.All() {
		out = append(out, ExperimentInfo{ID: e.ID, Title: e.Title, Description: e.Description})
	}
	return out
}

// RunExperiment executes one experiment. Quick mode shrinks scales so
// the whole registry runs in seconds; full mode uses the paper's
// parameters (100-node clusters, 10-hour virtual executions).
func RunExperiment(id string, seed uint64, quick bool) (*ExperimentResult, error) {
	e, ok := experiments.ByID(id)
	if !ok {
		return nil, fmt.Errorf("hc3i: unknown experiment %q (have %v)", id, experiments.IDs())
	}
	tab, err := e.Run(experiments.Config{Seed: seed, Quick: quick})
	if err != nil {
		return nil, err
	}
	return &ExperimentResult{
		ID: tab.ID, Title: tab.Title, Headers: tab.Headers, Rows: tab.Rows, Notes: tab.Notes,
	}, nil
}
