package hc3i

import (
	"fmt"
	"time"

	"repro/internal/experiments"
)

// ExperimentInfo describes one registered experiment.
type ExperimentInfo struct {
	ID          string
	Title       string
	Description string
}

// ExperimentResult is a rendered experiment table.
type ExperimentResult struct {
	ID      string
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// Render formats the result as aligned text.
func (r *ExperimentResult) Render() string {
	t := experiments.Table{
		ID: r.ID, Title: r.Title, Headers: r.Headers, Rows: r.Rows, Notes: r.Notes,
	}
	return t.Render()
}

// CSV renders the result as comma-separated values for plotting.
func (r *ExperimentResult) CSV() string {
	t := experiments.Table{Headers: r.Headers, Rows: r.Rows}
	return t.CSV()
}

// Markdown renders the result as a GitHub-flavoured markdown table.
func (r *ExperimentResult) Markdown() string {
	t := experiments.Table{
		ID: r.ID, Title: r.Title, Headers: r.Headers, Rows: r.Rows, Notes: r.Notes,
	}
	return t.Markdown()
}

// Experiments lists every experiment of the registry: the paper's
// Table 1, Figures 6-9 and Tables 2-3, then the ablations A1-A6.
func Experiments() []ExperimentInfo {
	var out []ExperimentInfo
	for _, e := range experiments.All() {
		out = append(out, ExperimentInfo{ID: e.ID, Title: e.Title, Description: e.Description})
	}
	return out
}

// RunExperiment executes one experiment. Quick mode shrinks scales so
// the whole registry runs in seconds; full mode uses the paper's
// parameters (100-node clusters, 10-hour virtual executions).
func RunExperiment(id string, seed uint64, quick bool) (*ExperimentResult, error) {
	e, ok := experiments.ByID(id)
	if !ok {
		return nil, fmt.Errorf("hc3i: unknown experiment %q (have %v)", id, experiments.IDs())
	}
	tab, err := e.Run(experiments.Config{Seed: seed, Quick: quick})
	if err != nil {
		return nil, err
	}
	return resultOf(tab), nil
}

func resultOf(tab *experiments.Table) *ExperimentResult {
	return &ExperimentResult{
		ID: tab.ID, Title: tab.Title, Headers: tab.Headers, Rows: tab.Rows, Notes: tab.Notes,
	}
}

// RunnerOptions configures a parallel registry or matrix run: Workers
// bounds the number of concurrently simulated federations (each one is
// an isolated single-threaded simulation, so results are byte-identical
// to a sequential run of the same seed), Seed and Quick act exactly as
// in RunExperiment. Workers <= 1 runs sequentially; DefaultWorkers
// picks one worker per CPU.
type RunnerOptions struct {
	Workers int
	Seed    uint64
	Quick   bool
	// DenseDDVWire selects the dense DDV wire encoding (see
	// Config.DenseDDVWire); results are identical, only simulator
	// speed changes.
	DenseDDVWire bool
	// UnbatchedWire schedules every inter-cluster delivery as its own
	// engine event instead of coalescing same-pipe same-tick messages
	// into batched deliveries. Results are byte-identical to the
	// batched default; this is the reference wire the batching
	// differential suites diff against.
	UnbatchedWire bool
	// Oracle attaches the online protocol invariant checker to every
	// federation run (registry and matrix alike). Results are
	// byte-identical; a violated invariant fails the run with a
	// diagnostic naming the check and the virtual time instead.
	Oracle bool
	// ChaosSeed replays one adversarial schedule on the chaos matrix
	// tier (0 derives the schedule from Seed); ChaosSeeds sweeps that
	// many consecutive schedules per chaos scenario.
	ChaosSeed  uint64
	ChaosSeeds int
	// ChaosOps caps every chaos schedule at its first N perturbation
	// actions — a budgeted replay applies exactly that prefix of the
	// unlimited schedule. 0 = unlimited; minimized repro commands set
	// it.
	ChaosOps int
	// TraceFile points the trace matrix tier at a JSONL link schedule
	// (one {"t_ms","latency_ms","jitter_ms","loss"} object per line)
	// instead of the embedded mobile-broadband fixture.
	TraceFile string
	// RunTimeout, when > 0, arms a per-federation wall-clock watchdog:
	// a wedged simulation is killed and reported as an error instead of
	// stalling its worker forever.
	RunTimeout time.Duration
	// Shards runs every federation across this many conservative-window
	// event engines (federation.RunSharded); classic and wide results
	// are byte-identical to the single-engine reference. <= 1 keeps the
	// reference path.
	Shards int
}

// DefaultWorkers returns the machine-sized worker count.
func DefaultWorkers() int { return experiments.DefaultWorkers() }

func (o RunnerOptions) config() experiments.RunnerConfig {
	return experiments.RunnerConfig{
		Workers: o.Workers, Seed: o.Seed, Quick: o.Quick, DenseWire: o.DenseDDVWire,
		UnbatchedWire: o.UnbatchedWire, Oracle: o.Oracle, ChaosSeed: o.ChaosSeed,
		ChaosSeeds: o.ChaosSeeds, ChaosOps: o.ChaosOps, TraceFile: o.TraceFile,
		RunTimeout: o.RunTimeout, Shards: o.Shards,
	}
}

// ExperimentRun pairs one experiment's result with its error.
type ExperimentRun struct {
	ID     string
	Result *ExperimentResult
	Err    error
}

// RunExperiments executes the experiments with the given IDs (all when
// ids is nil) through a bounded worker pool, returning one entry per
// requested ID in request order. Individual failures do not abort the
// batch.
func RunExperiments(opts RunnerOptions, ids []string) []ExperimentRun {
	results := experiments.Run(opts.config(), ids)
	out := make([]ExperimentRun, len(results))
	for i, r := range results {
		out[i] = ExperimentRun{ID: r.ID, Err: r.Err}
		if r.Table != nil {
			out[i].Result = resultOf(r.Table)
		}
	}
	return out
}

// MatrixScenarios lists the scenario names selected by a matrix filter
// (comma-separated dim=value constraints over topology, workload,
// failure and network; empty selects the full cross product).
func MatrixScenarios(filter string) ([]string, error) {
	scs, err := experiments.MatrixScenarios(filter)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(scs))
	for i, s := range scs {
		names[i] = s.Name()
	}
	return names, nil
}

// MatrixAxes renders the matrix dimensions and their values, one line
// per dimension.
func MatrixAxes() string { return experiments.MatrixAxes() }

// RunMatrix executes the scenario matrix (restricted by filter, empty =
// all) under HC3I and all three baseline protocols through the worker
// pool, and returns the rendered table: one row per (scenario,
// protocol) with forced/unforced CLCs, rollbacks, injected failures,
// the volatile-log high-water mark and the event count.
func RunMatrix(opts RunnerOptions, filter string) (*ExperimentResult, error) {
	scs, err := experiments.MatrixScenarios(filter)
	if err != nil {
		return nil, err
	}
	tab, err := experiments.RunMatrix(opts.config(), scs)
	if err != nil {
		return nil, err
	}
	return resultOf(tab), nil
}
