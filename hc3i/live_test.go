package hc3i_test

import (
	"testing"
	"time"

	"repro/hc3i"
)

func TestLiveFacadeChannels(t *testing.T) {
	fed, err := hc3i.StartLive(hc3i.LiveConfig{
		Clusters:   []int{2, 2},
		CLCPeriods: []time.Duration{30 * time.Millisecond, time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	fed.Send(0, 0, 1, 1, 128)
	time.Sleep(150 * time.Millisecond)
	fed.Quiesce()
	fed.Stop()

	if fed.Counter("clc.committed.c0") == 0 {
		t.Fatal("no checkpoints committed live")
	}
	if fed.Counter("clc.committed.c1.forced") != 1 {
		t.Fatalf("forced = %d", fed.Counter("clc.committed.c1.forced"))
	}
	if fed.SN(0, 0) != fed.SN(0, 1) {
		t.Fatal("SN disagreement")
	}
	if fed.String() == "" {
		t.Fatal("summary empty")
	}
}

func TestLiveFacadeTCPCrash(t *testing.T) {
	fed, err := hc3i.StartLive(hc3i.LiveConfig{
		Clusters:   []int{3},
		CLCPeriods: []time.Duration{30 * time.Millisecond},
		UseTCP:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(120 * time.Millisecond)
	fed.Crash(0, 2)
	time.Sleep(30 * time.Millisecond)
	if err := fed.Recover(0, 2); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	fed.Quiesce()
	fed.Stop()

	if fed.Counter("rollback.count.c0") == 0 {
		t.Fatal("no rollback")
	}
	if fed.Counter("storage.recovered_states") == 0 {
		t.Fatal("no state recovery over TCP")
	}
	if fed.SN(0, 0) != fed.SN(0, 2) {
		t.Fatal("post-recovery SN disagreement")
	}
}

func TestLiveFacadeValidation(t *testing.T) {
	if _, err := hc3i.StartLive(hc3i.LiveConfig{}); err == nil {
		t.Fatal("empty live config accepted")
	}
}
