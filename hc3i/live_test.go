package hc3i_test

import (
	"sync"
	"testing"
	"time"

	"repro/hc3i"
)

func TestLiveFacadeChannels(t *testing.T) {
	fed, err := hc3i.StartLive(hc3i.LiveConfig{
		Clusters:   []int{2, 2},
		CLCPeriods: []time.Duration{30 * time.Millisecond, time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	fed.Send(0, 0, 1, 1, 128)
	time.Sleep(150 * time.Millisecond)
	fed.Quiesce()
	fed.Stop()

	if fed.Counter("clc.committed.c0") == 0 {
		t.Fatal("no checkpoints committed live")
	}
	if fed.Counter("clc.committed.c1.forced") != 1 {
		t.Fatalf("forced = %d", fed.Counter("clc.committed.c1.forced"))
	}
	if fed.SN(0, 0) != fed.SN(0, 1) {
		t.Fatal("SN disagreement")
	}
	if fed.String() == "" {
		t.Fatal("summary empty")
	}
}

func TestLiveFacadeTCPCrash(t *testing.T) {
	fed, err := hc3i.StartLive(hc3i.LiveConfig{
		Clusters:   []int{3},
		CLCPeriods: []time.Duration{30 * time.Millisecond},
		UseTCP:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(120 * time.Millisecond)
	fed.Crash(0, 2)
	time.Sleep(30 * time.Millisecond)
	if err := fed.Recover(0, 2); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	fed.Quiesce()
	fed.Stop()

	if fed.Counter("rollback.count.c0") == 0 {
		t.Fatal("no rollback")
	}
	if fed.Counter("storage.recovered_states") == 0 {
		t.Fatal("no state recovery over TCP")
	}
	if fed.SN(0, 0) != fed.SN(0, 2) {
		t.Fatal("post-recovery SN disagreement")
	}
}

func TestLiveFacadeValidation(t *testing.T) {
	if _, err := hc3i.StartLive(hc3i.LiveConfig{}); err == nil {
		t.Fatal("empty live config accepted")
	}
}

// TestLiveCrashDuringSend hammers the crash-during-send window: sender
// goroutines keep injecting application traffic while nodes fail-stop
// and recover underneath them. Runs under -race in CI — the interesting
// assertions are the detector's (no data race between Send's mailbox
// post, the transport's down flags and Crash/Recover) plus liveness:
// the federation must still quiesce, recover state and agree on SNs.
func TestLiveCrashDuringSend(t *testing.T) {
	fed, err := hc3i.StartLive(hc3i.LiveConfig{
		Clusters:   []int{3, 2},
		CLCPeriods: []time.Duration{20 * time.Millisecond, 20 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Three senders race the crash injector: one hammers the node that
	// crashes, one its intra-cluster peer, one a remote cluster.
	send := func(sc, sn, dc, dn int) {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			fed.Send(sc, sn, dc, dn, 256)
			time.Sleep(500 * time.Microsecond)
		}
	}
	wg.Add(3)
	go send(0, 1, 1, 0) // from the crash victim, across clusters
	go send(0, 2, 0, 1) // intra-cluster, towards the crash victim
	go send(1, 1, 0, 1) // remote cluster, towards the crash victim

	for round := 0; round < 3; round++ {
		time.Sleep(25 * time.Millisecond)
		fed.Crash(0, 1)
		time.Sleep(10 * time.Millisecond)
		if err := fed.Recover(0, 1); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
	// Let the final rollback wave settle, then freeze and inspect.
	time.Sleep(200 * time.Millisecond)
	fed.Quiesce()
	fed.Stop()

	if fed.Counter("rollback.count.c0") == 0 {
		t.Fatal("no rollback despite repeated crashes")
	}
	if fed.Counter("storage.recovered_states") == 0 {
		t.Fatal("crashed node never recovered its state")
	}
	if a, b := fed.SN(0, 0), fed.SN(0, 1); a != b {
		t.Fatalf("post-storm SN disagreement: %d vs %d", a, b)
	}
	if a, b := fed.SN(0, 0), fed.SN(0, 2); a != b {
		t.Fatalf("post-storm SN disagreement: %d vs %d", a, b)
	}
}
