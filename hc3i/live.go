package hc3i

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/runtime"
	"repro/internal/topology"
)

// LiveConfig configures a live federation: real goroutines, wall-clock
// timers and a real transport, running the identical protocol code as
// the simulator. It exists to validate the protocol outside the DES
// ("We need to implement the protocol on a real system to validate
// it", paper §7) and as the starting point for embedding HC3I in an
// actual runtime.
type LiveConfig struct {
	// Clusters is the node count per cluster.
	Clusters []int
	// CLCPeriods is the wall-clock delay between unforced CLCs per
	// cluster (default 50 ms).
	CLCPeriods []time.Duration
	// GCPeriod enables garbage collection (0 = off).
	GCPeriod time.Duration
	// Replicas is the stable-storage replication degree (default 1).
	Replicas int
	// UseTCP selects the loopback TCP+gob transport instead of
	// in-process channels.
	UseTCP bool
	// Trace, when non-nil, receives protocol trace output.
	Trace io.Writer
}

// LiveFederation is a running live federation.
type LiveFederation struct {
	inner *runtime.Live
}

// StartLive boots a live federation; always Stop it.
func StartLive(cfg LiveConfig) (*LiveFederation, error) {
	rc := runtime.Config{
		Clusters:   cfg.Clusters,
		CLCPeriods: cfg.CLCPeriods,
		GCPeriod:   cfg.GCPeriod,
		Replicas:   cfg.Replicas,
		Trace:      cfg.Trace,
	}
	if cfg.UseTCP {
		rc.Transport = runtime.NewTCPTransport()
	}
	l, err := runtime.Start(rc)
	if err != nil {
		return nil, err
	}
	return &LiveFederation{inner: l}, nil
}

// Send injects one application message of the given size from node
// (srcCluster, srcNode) to node (dstCluster, dstNode).
func (f *LiveFederation) Send(srcCluster, srcNode, dstCluster, dstNode, size int) {
	f.inner.SendApp(
		topology.NodeID{Cluster: topology.ClusterID(srcCluster), Index: srcNode},
		topology.NodeID{Cluster: topology.ClusterID(dstCluster), Index: dstNode},
		size,
	)
}

// Crash fail-stops a node.
func (f *LiveFederation) Crash(cluster, node int) {
	f.inner.Crash(topology.NodeID{Cluster: topology.ClusterID(cluster), Index: node})
}

// Recover restarts a crashed node and triggers the failure detector.
func (f *LiveFederation) Recover(cluster, node int) error {
	return f.inner.Recover(topology.NodeID{Cluster: topology.ClusterID(cluster), Index: node})
}

// Quiesce barriers through every node's event loop.
func (f *LiveFederation) Quiesce() { f.inner.Quiesce() }

// Counter reads a protocol statistic (e.g. "clc.committed.c0").
func (f *LiveFederation) Counter(name string) uint64 { return f.inner.Stat(name) }

// SN reads a node's cluster sequence number; call after Quiesce or
// Stop for a settled value.
func (f *LiveFederation) SN(cluster, node int) uint64 {
	return uint64(f.inner.NodeSN(topology.NodeID{Cluster: topology.ClusterID(cluster), Index: node}))
}

// Stop halts the federation; its state stays readable afterwards.
func (f *LiveFederation) Stop() { f.inner.Stop() }

// String summarizes per-cluster checkpoint counters.
func (f *LiveFederation) String() string {
	s := ""
	for c := 0; ; c++ {
		name := fmt.Sprintf("clc.committed.c%d", c)
		v := f.inner.Stat(name)
		if v == 0 && c > 0 {
			break
		}
		if c > 0 {
			s += ", "
		}
		s += fmt.Sprintf("c%d: %d CLCs (%d forced)", c, v, f.inner.Stat(name+".forced"))
		if c > 16 {
			break
		}
	}
	return s
}

var _ = core.SN(0) // core types appear in the public live surface via counters
