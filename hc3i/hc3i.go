// Package hc3i is the public API of the HC3I reproduction: it
// configures and runs simulated cluster federations under the paper's
// hierarchical checkpointing protocol (or one of the baseline
// protocols), and exposes the experiment registry that regenerates
// every table and figure of the paper's evaluation.
//
// A minimal run:
//
//	res, err := hc3i.Run(hc3i.Config{
//		Clusters:     []hc3i.Cluster{{Name: "sim", Nodes: 16}, {Name: "viz", Nodes: 16}},
//		TotalTime:    time.Hour,
//		RatesPerHour: [][]float64{{600, 20}, {5, 600}},
//		CLCPeriods:   []time.Duration{10 * time.Minute, 10 * time.Minute},
//	})
//
// All times are *virtual*: simulations of 10-hour executions finish in
// seconds of wall-clock time.
package hc3i

import (
	"fmt"
	"io"
	"time"

	"repro/internal/app"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/federation"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Protocol selects the checkpointing protocol under test.
type Protocol string

// Available protocols.
const (
	// HC3I is the paper's hierarchical protocol (default).
	HC3I Protocol = "hc3i"
	// ForceAll forces a cluster checkpoint on every inter-cluster
	// message (the paper's Figure 4 strawman).
	ForceAll Protocol = "force-all"
	// Independent never forces checkpoints; rollbacks may domino.
	Independent Protocol = "independent"
	// GlobalCoordinated runs one two-phase commit over the whole
	// federation.
	GlobalCoordinated Protocol = "global-coordinated"
	// HierCoordinated is the hierarchical coordinated protocol of the
	// paper's reference [9].
	HierCoordinated Protocol = "hier-coordinated"
	// PessimisticLog is MPICH-V-style message logging (reference [3]).
	PessimisticLog Protocol = "pessimistic-log"
)

// Forever disables a timer (e.g. a cluster that never takes unforced
// checkpoints, as in the paper's Figure 7).
const Forever = time.Duration(sim.Forever)

// Link describes a network class.
type Link struct {
	Latency       time.Duration
	BandwidthMbps float64
}

// Cluster describes one cluster of the federation. A zero SAN gets the
// paper's Myrinet-like defaults (10 µs, 80 Mb/s).
type Cluster struct {
	Name  string
	Nodes int
	SAN   Link
}

// Crash schedules a fail-stop node crash.
type Crash struct {
	At      time.Duration // virtual time from the start of the run
	Cluster int
	Node    int
}

// Config describes a full simulation: architecture, application and
// protocol tuning — the union of the paper simulator's three input
// files.
type Config struct {
	// Clusters lists the federation's clusters (>= 1).
	Clusters []Cluster
	// Inter is the inter-cluster link class; zero gets the paper's
	// Ethernet-like defaults (150 µs, 100 Mb/s).
	Inter Link
	// MTBF enables Poisson fail-stop crashes when MTBFFailures is set.
	MTBF time.Duration

	// TotalTime is the application's (virtual) execution time.
	TotalTime time.Duration
	// RatesPerHour[i][j] is the application traffic from cluster i to
	// cluster j in messages per hour.
	RatesPerHour [][]float64
	// MessageSize and StateSize size application messages and per-node
	// checkpoint states in bytes (defaults: 4 KiB and 4 MiB).
	MessageSize int
	StateSize   int
	// NonDeterministicReplay makes post-rollback re-execution draw a
	// fresh schedule; HC3I must stay consistent regardless (no PWD
	// assumption).
	NonDeterministicReplay bool

	// Protocol selects the protocol (default HC3I).
	Protocol Protocol
	// CLCPeriods is the per-cluster delay between unforced CLCs
	// (default 30 min each; use Forever to disable).
	CLCPeriods []time.Duration
	// GCPeriod enables periodic garbage collection (0 = off).
	GCPeriod time.Duration
	// GCMemoryThreshold makes nodes demand a collection once their
	// fault-tolerance memory exceeds this many bytes (0 = off) — the
	// paper's "when a node memory saturates" trigger.
	GCMemoryThreshold uint64
	// RingGC selects the distributed collector.
	RingGC bool
	// TransitiveDDV piggybacks whole DDVs instead of single SNs.
	TransitiveDDV bool
	// DenseDDVWire transports dependency metadata in the dense
	// one-SN-per-cluster wire encoding instead of the default delta
	// form. Results are identical either way (both encodings are priced
	// at the dense width); the switch exists for differential testing
	// and for measuring the delta encoding's simulator speedup.
	DenseDDVWire bool
	// Replicas is the stable-storage replication degree (default 1).
	Replicas int

	// Seed makes runs reproducible; same config + seed = same result.
	Seed uint64
	// Crashes schedules explicit failures; MTBFFailures adds random
	// ones at the configured MTBF.
	Crashes      []Crash
	MTBFFailures bool
	// DetectionDelay is the failure-detector latency (default 2 s).
	DetectionDelay time.Duration

	// Trace, when non-nil, receives the simulator's trace output at
	// TraceLevel ("info", "debug" or "all").
	Trace      io.Writer
	TraceLevel string
}

// ClusterReport is the per-cluster outcome of a run.
type ClusterReport struct {
	Name      string
	Forced    uint64 // committed forced CLCs
	Unforced  uint64 // committed unforced CLCs
	Committed uint64 // total committed CLCs
	Stored    int    // CLCs stored at the end
	Rollbacks uint64
}

// GCReport is one garbage collection's effect (per cluster).
type GCReport struct {
	At     time.Duration
	Before []int
	After  []int
}

// Result reports a finished run.
type Result struct {
	Clusters []ClusterReport
	// AppMessages[i][j] counts application messages sent from cluster
	// i to cluster j (the paper's Table 1 quantity).
	AppMessages [][]uint64
	// GCRounds lists garbage collections (the paper's Tables 2/3).
	GCRounds []GCRound
	// MaxLoggedMessages is the log's high-water mark on any node.
	MaxLoggedMessages int
	// Failures counts injected crashes; Events the simulation events.
	Failures uint64
	Events   uint64
	// EndTime is the virtual time at which the run finished.
	EndTime time.Duration
	// Counter gives access to every raw statistic of the run.
	Counter func(name string) uint64
}

// GCRound is one garbage collection's before/after pair per cluster.
type GCRound = GCReport

func (c *Config) defaults() {
	if c.Inter == (Link{}) {
		c.Inter = Link{Latency: 150 * time.Microsecond, BandwidthMbps: 100}
	}
	for i := range c.Clusters {
		if c.Clusters[i].SAN == (Link{}) {
			c.Clusters[i].SAN = Link{Latency: 10 * time.Microsecond, BandwidthMbps: 80}
		}
	}
	if c.MessageSize == 0 {
		c.MessageSize = 4096
	}
	if c.StateSize == 0 {
		c.StateSize = 4 << 20
	}
	if c.Protocol == "" {
		c.Protocol = HC3I
	}
}

// Run executes one simulation to completion and reports the results.
func Run(cfg Config) (*Result, error) {
	cfg.defaults()
	if len(cfg.Clusters) == 0 {
		return nil, fmt.Errorf("hc3i: no clusters configured")
	}

	clusters := make([]topology.Cluster, len(cfg.Clusters))
	for i, c := range cfg.Clusters {
		clusters[i] = topology.Cluster{
			Name:  c.Name,
			Nodes: c.Nodes,
			Intra: topology.Link{
				Latency:   sim.Duration(c.SAN.Latency),
				Bandwidth: topology.Mbps(c.SAN.BandwidthMbps),
			},
		}
	}
	fed := topology.New(clusters...)
	fed.SetAllInterLinks(topology.Link{
		Latency:   sim.Duration(cfg.Inter.Latency),
		Bandwidth: topology.Mbps(cfg.Inter.BandwidthMbps),
	})
	fed.MTBF = sim.Duration(cfg.MTBF)

	wl := &app.Workload{
		TotalTime:     sim.Duration(cfg.TotalTime),
		RatesPerHour:  cfg.RatesPerHour,
		MsgSize:       cfg.MessageSize,
		StateSize:     cfg.StateSize,
		MeanCompute:   2 * sim.Second,
		Deterministic: !cfg.NonDeterministicReplay,
	}

	opts := federation.Options{
		Topology:          fed,
		Workload:          wl,
		GCPeriod:          sim.Duration(cfg.GCPeriod),
		GCMemoryThreshold: cfg.GCMemoryThreshold,
		RingGC:            cfg.RingGC,
		Transitive:        cfg.TransitiveDDV,
		DenseWire:         cfg.DenseDDVWire,
		Replicas:          cfg.Replicas,
		Seed:              cfg.Seed,
		MTBFFailures:      cfg.MTBFFailures,
		DetectionDelay:    sim.Duration(cfg.DetectionDelay),
	}
	if cfg.CLCPeriods != nil {
		opts.CLCPeriods = make([]sim.Duration, len(cfg.CLCPeriods))
		for i, d := range cfg.CLCPeriods {
			opts.CLCPeriods[i] = sim.Duration(d)
		}
	}
	for _, cr := range cfg.Crashes {
		opts.Crashes = append(opts.Crashes, federation.Crash{
			At:   sim.Time(cr.At),
			Node: topology.NodeID{Cluster: topology.ClusterID(cr.Cluster), Index: cr.Node},
		})
	}
	if cfg.Trace != nil {
		lvl, err := sim.ParseTraceLevel(cfg.TraceLevel)
		if err != nil {
			return nil, err
		}
		if lvl == sim.TraceOff {
			lvl = sim.TraceInfo
		}
		opts.TraceWriter = cfg.Trace
		opts.TraceLevel = lvl
	}
	factory, err := factoryFor(cfg.Protocol)
	if err != nil {
		return nil, err
	}
	opts.NodeFactory = factory

	f, err := federation.New(opts)
	if err != nil {
		return nil, err
	}
	res, err := f.Run()
	if err != nil {
		return nil, err
	}
	return convert(cfg, res), nil
}

func factoryFor(p Protocol) (federation.NodeFactory, error) {
	switch p {
	case HC3I, "":
		return nil, nil
	case ForceAll:
		return func(c core.Config, e core.Env, h core.AppHooks) federation.ProtocolNode {
			c.Mode = core.ModeForceAll
			return core.NewNode(c, e, h)
		}, nil
	case Independent:
		return func(c core.Config, e core.Env, h core.AppHooks) federation.ProtocolNode {
			c.Mode = core.ModeIndependent
			return core.NewNode(c, e, h)
		}, nil
	case GlobalCoordinated:
		return func(c core.Config, e core.Env, h core.AppHooks) federation.ProtocolNode {
			return baseline.NewGlobalCoordinated(c, e, h)
		}, nil
	case HierCoordinated:
		return func(c core.Config, e core.Env, h core.AppHooks) federation.ProtocolNode {
			return baseline.NewHierCoord(c, e, h)
		}, nil
	case PessimisticLog:
		return func(c core.Config, e core.Env, h core.AppHooks) federation.ProtocolNode {
			return baseline.NewPessimisticLog(c, e, h)
		}, nil
	default:
		return nil, fmt.Errorf("hc3i: unknown protocol %q", p)
	}
}

func convert(cfg Config, res *federation.Result) *Result {
	out := &Result{
		AppMessages:       res.AppMsgs,
		MaxLoggedMessages: res.MaxLoggedMessages,
		Failures:          res.Failures,
		Events:            res.Events,
		EndTime:           time.Duration(res.EndTime),
		Counter:           res.Stats.CounterValue,
	}
	for i, c := range res.Clusters {
		out.Clusters = append(out.Clusters, ClusterReport{
			Name:      cfg.Clusters[i].Name,
			Forced:    c.Forced,
			Unforced:  c.Unforced,
			Committed: c.Committed,
			Stored:    c.Stored,
			Rollbacks: c.Rollbacks,
		})
	}
	for _, r := range res.GCRounds {
		out.GCRounds = append(out.GCRounds, GCReport{
			At:     time.Duration(r.At),
			Before: r.Before,
			After:  r.After,
		})
	}
	return out
}
