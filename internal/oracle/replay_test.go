package oracle_test

// The replay tests live in an external test package so they can drive
// a real (in-process) live federation through internal/runtime — which
// itself imports the oracle — and replay the journal it produces.

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/oracle"
	"repro/internal/runtime"
)

// liveJournal runs a short in-process federation with journaling on
// and returns its events.
func liveJournal(t *testing.T) []oracle.Event {
	t.Helper()
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j, err := runtime.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	live, err := runtime.Start(runtime.Config{
		Clusters:   []int{2, 2},
		CLCPeriods: []time.Duration{20 * time.Millisecond, 20 * time.Millisecond},
		Workload:   &runtime.Workload{Period: 2 * time.Millisecond, InterProb: 0.4, Size: 128},
		Journal:    j,
	})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	live.Quiesce()
	live.Stop()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := oracle.ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return events
}

func TestReplayLiveJournalClean(t *testing.T) {
	events := liveJournal(t)
	rep := oracle.Replay(events)
	if !rep.Clean() {
		t.Fatalf("clean run replayed dirty: %v", rep.Violations)
	}
	if rep.Width != 2 || rep.Starts != 4 {
		t.Fatalf("wrong shape: width %d, %d starts", rep.Width, rep.Starts)
	}
	if rep.Commits == 0 || rep.Deliveries == 0 || rep.Stops != 4 {
		t.Fatalf("implausible counts: %+v", *rep)
	}
	if rep.PerCluster[0].MaxSN == 0 || rep.PerCluster[1].MaxSN == 0 {
		t.Fatalf("no recovery-line progress: %+v", rep.PerCluster)
	}
	if rep.Summary() == "" {
		t.Fatal("empty summary")
	}
}

func TestReplayDetectsDDVRegression(t *testing.T) {
	events := liveJournal(t)
	// Forge what the protocol must never do: a later checkpoint whose
	// dependency vector moves backwards.
	last := events[len(events)-1]
	events = append(events, oracle.Event{
		T: last.T + 1, Node: "c0n0", Kind: "commit",
		Seq: 1_000_000, Epoch: 0, DDV: []uint64{1, 1},
	})
	rep := oracle.Replay(events)
	if rep.Clean() {
		t.Fatal("DDV regression replayed clean")
	}
}

func TestReplayRequiresStart(t *testing.T) {
	rep := oracle.Replay([]oracle.Event{
		{T: 1, Node: "c0n0", Kind: "commit", Seq: 2, DDV: []uint64{2, 1}},
	})
	if rep.Clean() {
		t.Fatal("journal without a start event replayed clean")
	}
}

func TestReplayStructuralChecks(t *testing.T) {
	base := oracle.Event{T: 1, Node: "c0n0", Kind: "start", Clusters: []int{2, 2}, Mode: "hc3i"}
	cases := []struct {
		name string
		ev   oracle.Event
	}{
		{"unparseable node", oracle.Event{T: 2, Node: "bogus", Kind: "commit", Seq: 2, DDV: []uint64{2, 1}}},
		{"foreign cluster", oracle.Event{T: 2, Node: "c7n0", Kind: "commit", Seq: 2, DDV: []uint64{2, 1}}},
		{"narrow commit DDV", oracle.Event{T: 2, Node: "c0n0", Kind: "commit", Seq: 2, DDV: []uint64{2}}},
		{"narrow rollback DDV", oracle.Event{T: 2, Node: "c0n0", Kind: "rollback", Seq: 1, Epoch: 1, DDV: []uint64{1, 2, 3}}},
		{"unknown kind", oracle.Event{T: 2, Node: "c0n0", Kind: "frobnicate"}},
		{"bad deliver source", oracle.Event{T: 2, Node: "c0n0", Kind: "deliver", Src: "nope", SendSN: 1, RecvSN: 1}},
	}
	for _, tc := range cases {
		rep := oracle.Replay([]oracle.Event{base, tc.ev})
		if rep.Clean() {
			t.Errorf("%s: replayed clean", tc.name)
		}
	}
}

func TestReadJournalFileTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.jsonl")
	body := `{"t":1,"node":"c0n0","kind":"start","clusters":[1],"mode":"hc3i"}` + "\n" +
		`{"t":2,"node":"c0n0","kind":"commit","seq":2,"ddv":[2]}` + "\n" +
		`{"t":3,"node":"c0n0","kind":"com` // SIGKILL mid-write
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	events, err := oracle.ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("got %d events from a torn journal, want the 2 intact ones", len(events))
	}

	// Garbage anywhere but the tail means the file is not a journal.
	bad := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(bad, []byte("not json\n"+body), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := oracle.ReadJournalFile(bad); err == nil {
		t.Fatal("mid-file garbage accepted")
	}
}

func TestMergeEventsOrder(t *testing.T) {
	a := []oracle.Event{
		{T: 10, Node: "c0n0", Kind: "commit", Seq: 2},
		{T: 30, Node: "c0n0", Kind: "commit", Seq: 3},
	}
	b := []oracle.Event{
		{T: 10, Node: "c0n1", Kind: "commit", Seq: 2}, // tie with a[0]
		{T: 20, Node: "c0n1", Kind: "commit", Seq: 3},
	}
	merged := oracle.MergeEvents(a, b)
	wantNodes := []string{"c0n0", "c0n1", "c0n1", "c0n0"}
	for i, ev := range merged {
		if ev.Node != wantNodes[i] {
			t.Fatalf("merge order wrong at %d: got %s want %s (merged %+v)",
				i, ev.Node, wantNodes[i], merged)
		}
	}
}
