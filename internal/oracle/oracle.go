// Package oracle is the protocol's online invariant checker: a
// passive observer (core.Observer) attachable to any federation run
// that asserts, at every delivery, commit, rollback and
// garbage-collection event, the global safety properties the paper
// claims —
//
//   - per-epoch DDV monotonicity and cluster-wide commit agreement
//     (§3.1/§3.2: the two-phase commit keeps the committed vector
//     identical on every node, and dependency entries never decrease
//     between rollbacks),
//   - commit-line domination of every stable checkpoint (§3.2: the
//     newest committed vector dominates the whole stored chain),
//   - no orphan messages after a rollback (§3.4: every delivery whose
//     send is later rolled back must be erased by the receiver's own
//     cascaded rollback before the run ends),
//   - recovery-line sanity (§3.4: rollbacks restore checkpoints that
//     exist, agree cluster-wide, and epochs never skip),
//   - garbage-collection safety (§3.5: no collection discards a
//     checkpoint some future recovery could still need),
//   - delta-codec/pipe lockstep (the wire-encoding contract of
//     core/delta.go: at every pipe exit the decoder holds exactly the
//     dense vector the message stood for).
//
// The oracle maintains a cheap shadow causal history — one vector,
// one rollback log and one stored-checkpoint chain per cluster —
// patched with the same delta pairs the wire carries, so the steady-
// state checks are O(changed entries), not O(federation width); the
// dense-wire reference path pays the full-width compare the dense
// encoding itself pays. It never touches statistics, RNG streams or
// the event queue: runs are byte-identical with the oracle attached,
// which the determinism suite pins against the recorded goldens.
package oracle

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/topology"
)

// MaxViolations bounds how many violations one run records; the first
// one already fails the run, the rest are context.
const MaxViolations = 16

// rollbackRec is one observed epoch bump of a cluster: the checkpoint
// it restored and the vector it resumed from.
type rollbackRec struct {
	epoch core.Epoch
	toSN  core.SN
	ddv   core.DDV
}

// delivRec is one live inter-cluster delivery into this cluster. It is
// pruned when the receiver rolls back past it (the delivery is erased)
// or when a garbage collection proves the sender can never again roll
// back past the send; if the *sender* rolls back past the send first,
// the record becomes an orphan obligation the receiver must erase
// before the run ends.
type delivRec struct {
	src      topology.ClusterID
	srcEpoch core.Epoch
	sendSN   core.SN
	recvSN   core.SN
	orphaned bool
}

// clusterShadow is the oracle's causal history of one cluster.
type clusterShadow struct {
	epoch  core.Epoch
	sn     core.SN
	cur    core.DDV   // committed line: the newest committed vector
	ddvs   []core.DDV // stored-chain vectors, parallel to sns
	sns    []core.SN  // stored-chain sequence numbers
	rolls  []rollbackRec
	delivs []delivRec // inter-cluster deliveries INTO this cluster
}

// stored returns the shadow chain as []core.Meta views (no copies).
func (c *clusterShadow) stored() []core.Meta {
	ms := make([]core.Meta, len(c.sns))
	for i := range c.sns {
		ms[i] = core.Meta{SN: c.sns[i], DDV: c.ddvs[i]}
	}
	return ms
}

// Oracle is one run's invariant checker. All methods must be invoked
// from the simulation goroutine (it is as single-threaded as the
// protocol it watches).
type Oracle struct {
	width    int
	clusters []clusterShadow
	// pipes holds, per directed cluster pair (src*width+dst), the FIFO
	// queue of dense vectors entering the pipe whose decoded
	// counterparts must reappear at pipe exit. The vectors are the
	// senders' shared piggy clones — immutable once handed out — so
	// the queue stores references, never copies.
	pipes [][]core.DDV

	// Clock supplies the virtual clock for violation context (optional).
	Clock func() sim.Time
	// OnFirstViolation fires once, at the first recorded violation;
	// harnesses hook it to stop the simulation early.
	OnFirstViolation func()

	// lazyDeps is set when any node runs ModeIndependent: lazy
	// dependency tracking delivers before the cluster DDV names the
	// dependency, so the no-orphan obligation does not apply — that
	// gap is the documented cost of the baseline (§2.2), not a bug.
	lazyDeps bool

	violations []error
	dropped    int // violations beyond MaxViolations
}

// ObserveMode scopes mode-specific claims (see core.Observer).
func (o *Oracle) ObserveMode(id topology.NodeID, mode core.ProtocolMode) {
	if mode == core.ModeIndependent {
		o.lazyDeps = true
	}
}

// New returns an oracle for a federation of nClusters clusters, seeded
// with the protocol's initial state: every cluster starts at epoch 0,
// SN 1, with its initial checkpoint stored (core.NewNode's "the
// beginning of the application" CLC).
func New(nClusters int) *Oracle {
	o := &Oracle{
		width:    nClusters,
		clusters: make([]clusterShadow, nClusters),
		pipes:    make([][]core.DDV, nClusters*nClusters),
	}
	for i := range o.clusters {
		c := &o.clusters[i]
		c.sn = 1
		c.cur = core.NewDDV(nClusters)
		c.cur[i] = 1
		c.sns = []core.SN{1}
		c.ddvs = []core.DDV{c.cur.Clone()}
	}
	return o
}

// violatef records one invariant violation.
func (o *Oracle) violatef(format string, args ...any) {
	if len(o.violations) >= MaxViolations {
		o.dropped++
		return
	}
	prefix := "oracle: "
	if o.Clock != nil {
		prefix = fmt.Sprintf("oracle: t=%v ", o.Clock())
	}
	o.violations = append(o.violations, fmt.Errorf(prefix+format, args...))
	if len(o.violations) == 1 && o.OnFirstViolation != nil {
		o.OnFirstViolation()
	}
}

// Err returns the first recorded violation, nil if the run is clean so
// far.
func (o *Oracle) Err() error {
	if len(o.violations) == 0 {
		return nil
	}
	return o.violations[0]
}

// Violations returns every recorded violation (capped at
// MaxViolations).
func (o *Oracle) Violations() []error { return o.violations }

// ---- core.Observer ----

// ObserveCommit checks per-epoch monotonicity, own-entry continuity and
// cluster-wide commit agreement, then advances the shadow chain. With
// delta pairs the work is O(changed entries): unchanged entries equal
// the previous commit, which an earlier ObserveCommit already
// verified — the induction the commitBase wire invariant rests on.
func (o *Oracle) ObserveCommit(id topology.NodeID, seq core.SN, epoch core.Epoch, ddv core.DDV, pairs []core.DDVPair, forced bool) {
	c := &o.clusters[id.Cluster]
	if epoch != c.epoch {
		o.violatef("commit: %v committed CLC %d in epoch %d, cluster epoch is %d", id, seq, epoch, c.epoch)
		return
	}
	switch {
	case seq == c.sn:
		// A later node applying the commit the shadow already holds:
		// every node of the cluster must install the identical vector.
		if pairs != nil {
			for _, p := range pairs {
				if c.cur[p.Idx] != p.SN {
					o.violatef("commit agreement: %v CLC %d entry %d = %d, cluster committed %d",
						id, seq, p.Idx, p.SN, c.cur[p.Idx])
					return
				}
			}
		} else if !ddv.Equal(c.cur) {
			o.violatef("commit agreement: %v CLC %d vector %v, cluster committed %v", id, seq, ddv, c.cur)
		}
	case seq == c.sn+1:
		// First observation of the next commit: entries never decrease
		// within an epoch, and the own entry advances by exactly one.
		if pairs != nil {
			for _, p := range pairs {
				if p.SN < c.cur[p.Idx] {
					o.violatef("DDV monotonicity: %v CLC %d lowers entry %d from %d to %d",
						id, seq, p.Idx, c.cur[p.Idx], p.SN)
					return
				}
			}
			for _, p := range pairs {
				c.cur[p.Idx] = p.SN
			}
		} else {
			for i, v := range ddv {
				if v < c.cur[i] {
					o.violatef("DDV monotonicity: %v CLC %d lowers entry %d from %d to %d",
						id, seq, i, c.cur[i], v)
					return
				}
			}
			c.cur.CopyFrom(ddv)
		}
		if c.cur[id.Cluster] != seq {
			o.violatef("commit: %v CLC %d own entry is %d", id, seq, c.cur[id.Cluster])
		}
		c.sn = seq
		c.sns = append(c.sns, seq)
		c.ddvs = append(c.ddvs, c.cur.Clone())
	default:
		o.violatef("commit continuity: %v committed CLC %d, cluster line is at %d", id, seq, c.sn)
	}
}

// ObserveRollback checks that the restored checkpoint exists in the
// shadow chain, that every node of the cluster restores the same one,
// and that epochs advance one at a time; it then truncates the chain,
// erases the deliveries the restore undoes, and marks as orphan
// obligations every other cluster's live delivery whose send this
// rollback discarded.
func (o *Oracle) ObserveRollback(id topology.NodeID, toSN core.SN, newEpoch core.Epoch, ddv core.DDV) {
	c := &o.clusters[id.Cluster]
	switch {
	case newEpoch == c.epoch+1:
		// First observation of this epoch's rollback.
		idx := -1
		for i, sn := range c.sns {
			if sn == toSN {
				idx = i
				break
			}
		}
		if idx < 0 {
			o.violatef("rollback: %v restored CLC %d which the cluster no longer stores (GC unsafe?)", id, toSN)
			// Resync the shadow from the reported state so one
			// violation does not cascade into noise.
			cut := 0
			for cut < len(c.sns) && c.sns[cut] < toSN {
				cut++
			}
			c.sns = append(c.sns[:cut], toSN)
			c.ddvs = append(c.ddvs[:cut], ddv.Clone())
			idx = len(c.sns) - 1
		} else {
			if !ddv.Equal(c.ddvs[idx]) {
				o.violatef("rollback: %v restored CLC %d with vector %v, committed as %v",
					id, toSN, ddv, c.ddvs[idx])
			}
			c.sns = c.sns[:idx+1]
			c.ddvs = c.ddvs[:idx+1]
		}
		oldEpoch := c.epoch
		c.epoch = newEpoch
		c.sn = toSN
		c.cur.CopyFrom(c.ddvs[idx])
		c.rolls = append(c.rolls, rollbackRec{epoch: newEpoch, toSN: toSN, ddv: c.ddvs[idx].Clone()})
		// Deliveries into this cluster made at or after the restored
		// checkpoint are erased by the restore.
		kept := c.delivs[:0]
		for _, d := range c.delivs {
			if d.recvSN < toSN {
				kept = append(kept, d)
			}
		}
		c.delivs = kept
		// Deliveries out of this cluster whose send is now discarded
		// (sent at or after the restored checkpoint, in the aborted
		// epoch or earlier) become orphan obligations at their
		// receivers.
		src := id.Cluster
		for j := range o.clusters {
			if topology.ClusterID(j) == src {
				continue
			}
			for k := range o.clusters[j].delivs {
				d := &o.clusters[j].delivs[k]
				if d.src == src && d.srcEpoch <= oldEpoch && d.sendSN >= toSN {
					d.orphaned = true
				}
			}
		}
	case newEpoch == c.epoch:
		if toSN != c.sn {
			o.violatef("rollback agreement: %v restored CLC %d, cluster rolled back to %d", id, toSN, c.sn)
		} else if !ddv.Equal(c.cur) {
			o.violatef("rollback agreement: %v restored vector %v, cluster restored %v", id, ddv, c.cur)
		}
	case newEpoch < c.epoch:
		// A straggler executing a superseded rollback command: legal,
		// but it must match the rollback that created that epoch.
		for _, r := range c.rolls {
			if r.epoch == newEpoch {
				if r.toSN != toSN {
					o.violatef("rollback agreement: %v restored CLC %d for epoch %d, cluster restored %d",
						id, toSN, newEpoch, r.toSN)
				} else if !ddv.Equal(r.ddv) {
					o.violatef("rollback agreement: %v epoch %d vector %v, cluster restored %v",
						id, newEpoch, ddv, r.ddv)
				}
				return
			}
		}
		o.violatef("rollback: %v restored epoch %d the cluster never entered", id, newEpoch)
	default:
		o.violatef("rollback: %v skipped from epoch %d to %d", id, c.epoch, newEpoch)
	}
}

// ObserveDeliver checks the delivery against the sender's shadow
// history — no message may carry an epoch the sender never reached or
// an SN it never committed — and records it for orphan accounting: if
// the sender later rolls back past the send, the receiver must erase
// the delivery (its own cascaded rollback) before the run ends.
func (o *Oracle) ObserveDeliver(dst, src topology.NodeID, srcEpoch core.Epoch, sendSN core.SN, recvEpoch core.Epoch, recvSN core.SN) {
	s := &o.clusters[src.Cluster]
	if srcEpoch > s.epoch {
		o.violatef("delivery: %v delivered message from %v with epoch %d, sender cluster is at %d",
			dst, src, srcEpoch, s.epoch)
		return
	}
	if srcEpoch == s.epoch && sendSN > s.sn {
		o.violatef("delivery: %v delivered message from %v with SendSN %d, sender cluster committed only %d",
			dst, src, sendSN, s.sn)
		return
	}
	if o.lazyDeps {
		return // no orphan obligation without eager dependency tracking
	}
	d := delivRec{src: src.Cluster, srcEpoch: srcEpoch, sendSN: sendSN, recvSN: recvSN}
	// A prior-epoch delivery is an orphan obligation from birth when
	// some rollback after its epoch already discarded the send.
	for _, r := range s.rolls {
		if r.epoch > srcEpoch && sendSN >= r.toSN {
			d.orphaned = true
			break
		}
	}
	o.clusters[dst.Cluster].delivs = append(o.clusters[dst.Cluster].delivs, d)
}

// ObservePiggySend enqueues the dense vector a delta-encoded transitive
// send stands for on its directed pipe's expectation queue.
func (o *Oracle) ObservePiggySend(src topology.NodeID, dstCluster topology.ClusterID, dense core.DDV) {
	slot := int(src.Cluster)*o.width + int(dstCluster)
	o.pipes[slot] = append(o.pipes[slot], dense)
}

// CheckPipeExit verifies the delta-codec lockstep contract at a pipe
// exit: decoded (the pipe decoder's vector after this message) must be
// byte-identical to the dense vector the matching send stood for. The
// harness calls it for every delta-piggybacked message leaving a pipe,
// in pipe order.
func (o *Oracle) CheckPipeExit(src, dst topology.ClusterID, decoded core.DDV) {
	slot := int(src)*o.width + int(dst)
	q := o.pipes[slot]
	if len(q) == 0 {
		o.violatef("pipe lockstep: c%d->c%d exit without an observed send", src, dst)
		return
	}
	want := q[0]
	q[0] = nil
	o.pipes[slot] = q[1:]
	if !decoded.Equal(want) {
		o.violatef("pipe lockstep: c%d->c%d decoder holds %v, sender shipped %v", src, dst, decoded, want)
	}
}

// ObserveGCDrop checks garbage-collection safety: the distributed
// thresholds must never exceed what the recovery-line analysis over
// the oracle's own shadow state allows (a higher threshold discards a
// checkpoint some simulated failure still needs). It then prunes the
// shadow chain like the protocol does and retires delivery records the
// collection proved permanently safe.
func (o *Oracle) ObserveGCDrop(id topology.NodeID, minSNs []core.SN) {
	if len(minSNs) != o.width {
		o.violatef("gc: %v applied a %d-entry threshold vector in a %d-cluster federation",
			id, len(minSNs), o.width)
		return
	}
	c := &o.clusters[id.Cluster]
	threshold := minSNs[id.Cluster]
	if len(c.sns) == 0 || c.sns[0] >= threshold {
		return // nothing to drop here: a later node of the same round
	}
	// Safety: rerun the §3.5 analysis on the shadow history. Shadow
	// commits since the reports only raise the safe minimums, so any
	// distributed threshold above the freshly computed one discards a
	// checkpoint a simulated failure still needs.
	lists := make([][]core.Meta, o.width)
	currents := make([]core.DDV, o.width)
	for i := range o.clusters {
		lists[i] = o.clusters[i].stored()
		currents[i] = o.clusters[i].cur
	}
	fresh, err := core.SmallestSNs(lists, currents)
	if err != nil {
		o.violatef("gc safety: recovery-line analysis over the shadow state failed: %v", err)
	} else {
		for i, m := range minSNs {
			if m > fresh[i] {
				o.violatef("gc safety: threshold %d for cluster %d, but a failure could roll it back to %d",
					m, i, fresh[i])
				break
			}
		}
	}
	cut := 0
	for cut < len(c.sns) && c.sns[cut] < threshold {
		cut++
	}
	c.sns = c.sns[cut:]
	c.ddvs = c.ddvs[cut:]
	// The collection proves no cluster ever rolls back below its
	// threshold again: deliveries whose send predates the sender's
	// threshold can never become orphans — drop their records.
	kept := c.delivs[:0]
	for _, d := range c.delivs {
		if d.orphaned || d.sendSN >= minSNs[d.src] {
			kept = append(kept, d)
		}
	}
	c.delivs = kept
}

// Finish runs the end-of-run checks once the federation quiesced: no
// outstanding orphan obligation (every delivery whose send was rolled
// back was erased by a receiver rollback), and the commit line of each
// cluster dominates its whole stored chain.
func (o *Oracle) Finish() error {
	for j := range o.clusters {
		c := &o.clusters[j]
		for _, d := range c.delivs {
			if d.orphaned {
				o.violatef("orphan: cluster %d still holds a delivery from cluster %d (epoch %d, SendSN %d, received at SN %d) whose send was rolled back",
					j, d.src, d.srcEpoch, d.sendSN, d.recvSN)
			}
		}
		for i := 0; i < len(c.sns); i++ {
			if i > 0 && c.sns[i] <= c.sns[i-1] {
				o.violatef("stored chain: cluster %d stores CLC %d after %d", j, c.sns[i], c.sns[i-1])
			}
			for k, v := range c.ddvs[i] {
				if v > c.cur[k] {
					o.violatef("commit-line domination: cluster %d stored CLC %d entry %d = %d exceeds the committed line %d",
						j, c.sns[i], k, v, c.cur[k])
				}
			}
		}
	}
	if o.dropped > 0 {
		o.violatef("(%d further violations dropped)", o.dropped)
	}
	return o.Err()
}
