package oracle

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/topology"
)

func node(c, i int) topology.NodeID {
	return topology.NodeID{Cluster: topology.ClusterID(c), Index: i}
}

// ddv builds a dense vector from literal entries.
func ddv(vals ...core.SN) core.DDV { return core.DDV(vals) }

// commitCluster observes the same commit from every node of a 2-node
// cluster, the way a real 2PC reports it.
func commitCluster(o *Oracle, c int, seq core.SN, epoch core.Epoch, v core.DDV) {
	o.ObserveCommit(node(c, 0), seq, epoch, v, nil, false)
	o.ObserveCommit(node(c, 1), seq, epoch, v, nil, false)
}

func wantViolation(t *testing.T, o *Oracle, substr string) {
	t.Helper()
	err := o.Err()
	if err == nil {
		t.Fatalf("expected a violation containing %q, oracle is clean", substr)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("violation %q does not mention %q", err, substr)
	}
}

func TestCommitAdvanceAndAgreement(t *testing.T) {
	o := New(2)
	commitCluster(o, 0, 2, 0, ddv(2, 0))
	commitCluster(o, 0, 3, 0, ddv(3, 1))
	// Delta re-application of the same commit: pairs must agree.
	o.ObserveCommit(node(0, 1), 3, 0, nil, []core.DDVPair{{Idx: 0, SN: 3}, {Idx: 1, SN: 1}}, false)
	if err := o.Finish(); err != nil {
		t.Fatalf("clean history flagged: %v", err)
	}
}

func TestCommitMonotonicityViolation(t *testing.T) {
	o := New(2)
	commitCluster(o, 0, 2, 0, ddv(2, 5))
	// CLC 3 lowers the entry for cluster 1: 5 -> 4.
	o.ObserveCommit(node(0, 0), 3, 0, nil, []core.DDVPair{{Idx: 0, SN: 3}, {Idx: 1, SN: 4}}, false)
	wantViolation(t, o, "monotonicity")
}

func TestCommitAgreementViolation(t *testing.T) {
	o := New(2)
	o.ObserveCommit(node(0, 0), 2, 0, ddv(2, 3), nil, false)
	o.ObserveCommit(node(0, 1), 2, 0, ddv(2, 4), nil, false)
	wantViolation(t, o, "agreement")
}

func TestCommitContinuityViolation(t *testing.T) {
	o := New(2)
	o.ObserveCommit(node(0, 0), 4, 0, ddv(4, 0), nil, false) // skips 2 and 3
	wantViolation(t, o, "continuity")
}

func TestRollbackToMissingCheckpoint(t *testing.T) {
	o := New(2)
	commitCluster(o, 0, 2, 0, ddv(2, 0))
	o.ObserveRollback(node(0, 0), 7, 1, ddv(7, 0))
	wantViolation(t, o, "no longer stores")
}

func TestRollbackAgreementAndStraggler(t *testing.T) {
	o := New(2)
	commitCluster(o, 0, 2, 0, ddv(2, 0))
	o.ObserveRollback(node(0, 0), 2, 1, ddv(2, 0))
	o.ObserveRollback(node(0, 1), 2, 1, ddv(2, 0)) // peer of the same wave
	// A second rollback supersedes; then a straggler re-executes the
	// first epoch's command — legal, and it must match the record.
	o.ObserveRollback(node(0, 0), 1, 2, ddv(1, 0))
	o.ObserveRollback(node(0, 1), 2, 1, ddv(2, 0)) // straggler, consistent
	if o.Err() != nil {
		t.Fatalf("legal straggler flagged: %v", o.Err())
	}
	o.ObserveRollback(node(0, 1), 1, 1, ddv(1, 0)) // straggler, wrong target
	wantViolation(t, o, "rollback agreement")
}

func TestOrphanDeliveryCaught(t *testing.T) {
	o := New(2)
	commitCluster(o, 0, 2, 0, ddv(2, 0))
	// Cluster 1 delivers a message sent at cluster 0's SN 2...
	o.ObserveDeliver(node(1, 0), node(0, 0), 0, 2, 0, 1)
	// ...then cluster 0 rolls back to CLC 2, discarding that send.
	o.ObserveRollback(node(0, 0), 2, 1, ddv(2, 0))
	if o.Err() != nil {
		t.Fatalf("orphan obligation must not fire before Finish: %v", o.Err())
	}
	if err := o.Finish(); err == nil || !strings.Contains(err.Error(), "orphan") {
		t.Fatalf("unerased orphan not flagged: %v", err)
	}
}

func TestOrphanErasedByReceiverRollback(t *testing.T) {
	o := New(2)
	commitCluster(o, 0, 2, 0, ddv(2, 0))
	commitCluster(o, 1, 2, 0, ddv(2, 2)) // receiver's forced CLC covering the delivery
	o.ObserveDeliver(node(1, 0), node(0, 0), 0, 2, 0, 2)
	o.ObserveRollback(node(0, 0), 2, 1, ddv(2, 0))
	// The receiver's cascaded rollback to CLC 2 (recvSN 2 >= toSN 2)
	// erases the delivery: the obligation is discharged.
	o.ObserveRollback(node(1, 0), 2, 1, ddv(2, 2))
	if err := o.Finish(); err != nil {
		t.Fatalf("erased orphan still flagged: %v", err)
	}
}

func TestDeliveryFromFutureEpochCaught(t *testing.T) {
	o := New(2)
	o.ObserveDeliver(node(1, 0), node(0, 0), 3, 1, 0, 1)
	wantViolation(t, o, "epoch")
}

func TestDeliveryOfUncommittedSNCaught(t *testing.T) {
	o := New(2)
	o.ObserveDeliver(node(1, 0), node(0, 0), 0, 9, 0, 1)
	wantViolation(t, o, "committed only")
}

func TestGCSafetyViolationCaught(t *testing.T) {
	o := New(2)
	commitCluster(o, 1, 2, 0, ddv(0, 2))
	commitCluster(o, 0, 2, 0, ddv(2, 2)) // c0's CLC 2 depends on c1 SN 2
	commitCluster(o, 0, 3, 0, ddv(3, 2))
	// A failure of cluster 1 restores its CLC 2 and alerts (1, 2);
	// cluster 0's line depends on it, so it must roll back to its CLC
	// 2 — the oldest with entry[1] >= 2. SmallestSNs therefore allows
	// at most {2, 2}; a threshold of 3 for cluster 0 drops the very
	// checkpoint that recovery needs.
	o.ObserveGCDrop(node(0, 0), []core.SN{3, 2})
	wantViolation(t, o, "gc safety")
}

func TestGCSafeDropAccepted(t *testing.T) {
	o := New(2)
	commitCluster(o, 0, 2, 0, ddv(2, 0))
	commitCluster(o, 0, 3, 0, ddv(3, 0))
	commitCluster(o, 1, 2, 0, ddv(3, 2)) // depends on c0's newest only
	lists := [][]core.Meta{
		{{SN: 1, DDV: ddv(1, 0)}, {SN: 2, DDV: ddv(2, 0)}, {SN: 3, DDV: ddv(3, 0)}},
		{{SN: 1, DDV: ddv(0, 1)}, {SN: 2, DDV: ddv(3, 2)}},
	}
	currents := []core.DDV{ddv(3, 0), ddv(3, 2)}
	mins, err := core.SmallestSNs(lists, currents)
	if err != nil {
		t.Fatal(err)
	}
	o.ObserveGCDrop(node(0, 0), mins)
	o.ObserveGCDrop(node(0, 1), mins)
	o.ObserveGCDrop(node(1, 0), mins)
	if err := o.Finish(); err != nil {
		t.Fatalf("protocol-computed thresholds flagged: %v", err)
	}
}

func TestPipeLockstep(t *testing.T) {
	o := New(2)
	o.ObservePiggySend(node(0, 0), 1, ddv(2, 0))
	o.CheckPipeExit(0, 1, ddv(2, 0))
	if o.Err() != nil {
		t.Fatalf("matching pipe exit flagged: %v", o.Err())
	}
	o.ObservePiggySend(node(0, 0), 1, ddv(3, 0))
	o.CheckPipeExit(0, 1, ddv(2, 0)) // decoder lagging: desync
	wantViolation(t, o, "pipe lockstep")

	o2 := New(2)
	o2.CheckPipeExit(0, 1, ddv(1, 0)) // exit without a send
	wantViolation(t, o2, "without an observed send")
}

func TestCommitLineDominationAtFinish(t *testing.T) {
	o := New(2)
	commitCluster(o, 0, 2, 0, ddv(2, 4))
	// Corrupt the shadow the way a protocol bug would: a rollback to
	// CLC 2 whose restored vector disagrees with the committed one.
	o.ObserveRollback(node(0, 0), 2, 1, ddv(2, 9))
	wantViolation(t, o, "rollback")
}
