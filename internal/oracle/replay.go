// Offline oracle replay: the six invariant families of this package,
// re-asserted after the fact on the merged per-node journals of a real
// multi-process run (cmd/hc3id). Each daemon journals its protocol
// observations (commits, rollbacks, deliveries, GC drops) as JSONL
// with same-machine wall-clock timestamps; Replay merges the files in
// timestamp order and drives a regular Oracle with the result.
//
// Why a timestamp merge is a valid event order here: every journal
// line is written synchronously inside the protocol callback that
// produced it, before the node sends any message that depends on it.
// Cluster-wide, all applications of commit k really do precede all
// applications of commit k+1 (the 2PC needs every node's ack to k
// before the coordinator starts k+1), rollbacks are barriered by
// RollbackResume, and a delivery follows the sender-side events it
// depends on by at least a network round trip. On one machine — the
// harness and CI smoke setup — CLOCK_REALTIME skew is far below those
// gaps; across machines the merge is only as good as the clock sync,
// which the report states rather than hides. The merge sort is stable,
// so each journal's own order (which is exact) is never reshuffled.
package oracle

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Event is one line of a live-run journal. Kind selects which fields
// are meaningful; everything else stays at its zero value and is
// elided from the JSON.
type Event struct {
	// T is the event's CLOCK_REALTIME timestamp in nanoseconds,
	// strictly increasing within one journal file.
	T int64 `json:"t"`
	// Node is the journaling node in cXnY form.
	Node string `json:"node"`
	// Kind is one of start, commit, rollback, deliver, gcdrop, send,
	// hello, suspect, drop, stop.
	Kind string `json:"kind"`

	// start: the federation shape and protocol mode; recovering marks
	// a crash-recovery incarnation.
	Clusters   []int  `json:"clusters,omitempty"`
	Mode       string `json:"mode,omitempty"`
	Recovering bool   `json:"recovering,omitempty"`

	// commit (seq, epoch, ddv, forced) and rollback (seq = restored
	// SN, epoch = new epoch, ddv = restored vector).
	Seq    uint64   `json:"seq,omitempty"`
	Epoch  uint64   `json:"epoch,omitempty"`
	DDV    []uint64 `json:"ddv,omitempty"`
	Forced bool     `json:"forced,omitempty"`

	// deliver: Node is the receiver; Src/SrcEpoch/SendSN identify the
	// send, RecvEpoch/RecvSN the receiver's position.
	Src       string `json:"src,omitempty"`
	SrcEpoch  uint64 `json:"src_epoch,omitempty"`
	SendSN    uint64 `json:"send_sn,omitempty"`
	RecvEpoch uint64 `json:"recv_epoch,omitempty"`
	RecvSN    uint64 `json:"recv_sn,omitempty"`

	// gcdrop: the applied threshold vector.
	MinSNs []uint64 `json:"min_sns,omitempty"`

	// send / suspect / drop: the control message type or suspected
	// peer; stop: the final stat counters.
	Msg   string            `json:"msg,omitempty"`
	Dst   string            `json:"dst,omitempty"`
	Stats map[string]uint64 `json:"stats,omitempty"`
}

// NodeID parses the event's journaling node.
func (e Event) NodeID() (topology.NodeID, error) { return topology.ParseNodeID(e.Node) }

// ReadJournalFile loads one per-node journal. A torn final line (the
// daemon was SIGKILLed mid-write) is tolerated and skipped; garbage
// anywhere else is an error, because it means the file is not a
// journal.
func ReadJournalFile(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var events []Event
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 8<<20)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(b, &ev); err != nil {
			// Only the very last line may be torn.
			if sc.Scan() {
				return nil, fmt.Errorf("oracle: %s:%d: bad journal line: %v", path, line, err)
			}
			break
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("oracle: %s: %v", path, err)
	}
	return events, nil
}

// MergeEvents interleaves per-node journals into one global order by
// timestamp. The sort is stable over the concatenation, so each
// journal's internal order — which is exact — survives ties.
func MergeEvents(perNode ...[]Event) []Event {
	total := 0
	for _, evs := range perNode {
		total += len(evs)
	}
	merged := make([]Event, 0, total)
	for _, evs := range perNode {
		merged = append(merged, evs...)
	}
	sort.SliceStable(merged, func(i, j int) bool { return merged[i].T < merged[j].T })
	return merged
}

// ClusterReport summarizes one cluster's replayed history.
type ClusterReport struct {
	Commits   int
	Forced    int
	Rollbacks int
	MaxSN     uint64
	MaxEpoch  uint64
}

// Report is the outcome of one offline replay.
type Report struct {
	Events     int
	Width      int
	Starts     int
	Recoveries int // crash-recovery boots (start events with recovering)
	Commits    int
	Rollbacks  int
	Deliveries int
	GCDrops    int
	Sends      int
	Suspects   int
	Drops      int
	Stops      int
	Span       time.Duration
	PerCluster []ClusterReport
	// Violations are the oracle's findings plus any structural
	// problems of the journal itself (unknown nodes, missing start).
	Violations []error
}

// Clean reports a violation-free replay.
func (r *Report) Clean() bool { return len(r.Violations) == 0 }

// Summary renders the report as a short human-readable block (the CI
// smoke artifact).
func (r *Report) Summary() string {
	s := fmt.Sprintf("replayed %d events over %v: %d clusters, %d commits, %d rollbacks, %d deliveries, %d gc drops\n",
		r.Events, r.Span.Truncate(time.Millisecond), r.Width, r.Commits, r.Rollbacks, r.Deliveries, r.GCDrops)
	for c, cr := range r.PerCluster {
		s += fmt.Sprintf("  cluster %d: %d commits (%d forced), %d rollbacks, line at SN %d epoch %d\n",
			c, cr.Commits, cr.Forced, cr.Rollbacks, cr.MaxSN, cr.MaxEpoch)
	}
	if r.Recoveries > 0 {
		s += fmt.Sprintf("  %d crash-recovery boot(s), %d transport suspicion(s), %d dropped send(s)\n",
			r.Recoveries, r.Suspects, r.Drops)
	}
	if r.Clean() {
		s += "  oracle replay: CLEAN"
	} else {
		s += fmt.Sprintf("  oracle replay: %d VIOLATION(S)\n", len(r.Violations))
		for _, v := range r.Violations {
			s += "    " + v.Error() + "\n"
		}
	}
	return s
}

// Replay drives a fresh Oracle with a merged journal and returns the
// report. It never panics on malformed events — structural problems
// become violations.
func Replay(events []Event) *Report {
	r := &Report{Events: len(events)}
	width := 0
	for _, ev := range events {
		if ev.Kind == "start" && len(ev.Clusters) > 0 {
			width = len(ev.Clusters)
			break
		}
	}
	if width == 0 {
		r.Violations = append(r.Violations,
			fmt.Errorf("oracle: journal has no start event naming the federation shape"))
		return r
	}
	r.Width = width
	r.PerCluster = make([]ClusterReport, width)

	o := New(width)
	var firstT, curT int64
	o.Clock = func() sim.Time {
		if firstT == 0 {
			return 0
		}
		return sim.Time(curT - firstT)
	}

	structural := func(format string, args ...any) {
		r.Violations = append(r.Violations, fmt.Errorf("oracle: journal: "+format, args...))
	}
	for _, ev := range events {
		if firstT == 0 {
			firstT = ev.T
		}
		curT = ev.T
		id, err := ev.NodeID()
		if err != nil {
			structural("event %q from unparseable node %q", ev.Kind, ev.Node)
			continue
		}
		if int(id.Cluster) >= width {
			structural("event %q from %v outside the %d-cluster federation", ev.Kind, id, width)
			continue
		}
		switch ev.Kind {
		case "start":
			r.Starts++
			if ev.Recovering {
				r.Recoveries++
			}
			if len(ev.Clusters) > 0 && len(ev.Clusters) != width {
				structural("start event of %v names %d clusters, federation has %d", id, len(ev.Clusters), width)
			}
			if ev.Mode == core.ModeIndependent.String() {
				o.ObserveMode(id, core.ModeIndependent)
			}
		case "commit":
			r.Commits++
			cr := &r.PerCluster[id.Cluster]
			cr.Commits++
			if ev.Forced {
				cr.Forced++
			}
			if ev.Seq > cr.MaxSN {
				cr.MaxSN = ev.Seq
			}
			if len(ev.DDV) != width {
				structural("commit CLC %d of %v carries a %d-entry DDV in a %d-cluster federation",
					ev.Seq, id, len(ev.DDV), width)
				continue
			}
			o.ObserveCommit(id, core.SN(ev.Seq), core.Epoch(ev.Epoch), toDDV(ev.DDV), nil, ev.Forced)
		case "rollback":
			r.Rollbacks++
			cr := &r.PerCluster[id.Cluster]
			cr.Rollbacks++
			if ev.Epoch > cr.MaxEpoch {
				cr.MaxEpoch = ev.Epoch
			}
			if len(ev.DDV) != width {
				structural("rollback to CLC %d of %v carries a %d-entry DDV in a %d-cluster federation",
					ev.Seq, id, len(ev.DDV), width)
				continue
			}
			o.ObserveRollback(id, core.SN(ev.Seq), core.Epoch(ev.Epoch), toDDV(ev.DDV))
		case "deliver":
			r.Deliveries++
			src, err := topology.ParseNodeID(ev.Src)
			if err != nil || int(src.Cluster) >= width {
				structural("delivery at %v from unparseable or foreign sender %q", id, ev.Src)
				continue
			}
			o.ObserveDeliver(id, src, core.Epoch(ev.SrcEpoch), core.SN(ev.SendSN),
				core.Epoch(ev.RecvEpoch), core.SN(ev.RecvSN))
		case "gcdrop":
			r.GCDrops++
			o.ObserveGCDrop(id, toSNs(ev.MinSNs))
		case "send":
			r.Sends++
		case "suspect":
			r.Suspects++
		case "drop":
			r.Drops++
		case "stop":
			r.Stops++
		case "hello":
			// liveness announcements carry no protocol claim
		default:
			structural("unknown event kind %q from %v", ev.Kind, id)
		}
	}
	o.Finish()
	r.Violations = append(r.Violations, o.Violations()...)
	if firstT != 0 {
		r.Span = time.Duration(curT - firstT)
	}
	return r
}

// ReplayFiles loads, merges and replays a set of per-node journals.
func ReplayFiles(paths ...string) (*Report, error) {
	perNode := make([][]Event, 0, len(paths))
	for _, p := range paths {
		evs, err := ReadJournalFile(p)
		if err != nil {
			return nil, err
		}
		perNode = append(perNode, evs)
	}
	return Replay(MergeEvents(perNode...)), nil
}

func toDDV(vals []uint64) core.DDV {
	d := make(core.DDV, len(vals))
	for i, v := range vals {
		d[i] = core.SN(v)
	}
	return d
}

func toSNs(vals []uint64) []core.SN {
	s := make([]core.SN, len(vals))
	for i, v := range vals {
		s[i] = core.SN(v)
	}
	return s
}
