package federation_test

import (
	"reflect"
	"testing"

	"repro/internal/app"
	"repro/internal/federation"
	"repro/internal/sim"
	"repro/internal/topology"
)

// shardOptions builds a 4-cluster configuration exercising the paths
// the sharded harness must reproduce exactly: transitive delta-encoded
// piggybacks (per-pipe codec lockstep), garbage collection, and enough
// inter-cluster traffic that every window carries cross-shard messages.
func shardOptions(seed uint64, nc int) federation.Options {
	fed := topology.Small(nc, 3)
	wl := app.Uniform(nc, 400, 24, sim.Hour)
	wl.StateSize = 32 << 10
	periods := make([]sim.Duration, nc)
	for i := range periods {
		periods[i] = 10 * sim.Minute
	}
	return federation.Options{
		Topology:   fed,
		Workload:   wl,
		CLCPeriods: periods,
		GCPeriod:   20 * sim.Minute,
		Transitive: true,
		Seed:       seed,
	}
}

func runSharded(t *testing.T, opts federation.Options, shards int) *federation.Result {
	t.Helper()
	opts.Shards = shards
	res, err := federation.RunSharded(opts)
	if err != nil {
		t.Fatalf("shards=%d: %v", shards, err)
	}
	return res
}

// assertSameRun asserts byte-identical statistics and equal results —
// the sharded harness's whole contract.
func assertSameRun(t *testing.T, ref, got *federation.Result, label string) {
	t.Helper()
	if ref.Events != got.Events {
		t.Errorf("%s: events %d != %d", label, got.Events, ref.Events)
	}
	if ref.EndTime != got.EndTime {
		t.Errorf("%s: end time %v != %v", label, got.EndTime, ref.EndTime)
	}
	if ref.Failures != got.Failures {
		t.Errorf("%s: failures %d != %d", label, got.Failures, ref.Failures)
	}
	if ref.MaxLoggedMessages != got.MaxLoggedMessages {
		t.Errorf("%s: max logged %d != %d", label, got.MaxLoggedMessages, ref.MaxLoggedMessages)
	}
	if !reflect.DeepEqual(ref.Clusters, got.Clusters) {
		t.Errorf("%s: cluster results differ:\n%+v\n%+v", label, got.Clusters, ref.Clusters)
	}
	if !reflect.DeepEqual(ref.AppMsgs, got.AppMsgs) {
		t.Errorf("%s: app message matrix differs:\n%v\n%v", label, got.AppMsgs, ref.AppMsgs)
	}
	if !reflect.DeepEqual(ref.GCRounds, got.GCRounds) {
		t.Errorf("%s: GC rounds differ:\n%+v\n%+v", label, got.GCRounds, ref.GCRounds)
	}
	refDump, gotDump := ref.Stats.Dump(), got.Stats.Dump()
	if refDump != gotDump {
		t.Errorf("%s: stats dump differs:\n--- sequential ---\n%s--- sharded ---\n%s",
			label, refDump, gotDump)
	}
}

// TestShardedMatchesSequential pins the byte-identity contract of
// RunSharded against the single-engine reference, across shard counts
// that split the clusters evenly (2, 4) and unevenly (3), for a clean
// run, a crashing run (rollbacks, lost-work summary replay), and an
// oracle-attached run.
func TestShardedMatchesSequential(t *testing.T) {
	const nc = 4
	cases := []struct {
		name string
		mut  func(*federation.Options)
	}{
		{"clean", func(*federation.Options) {}},
		{"crash", func(o *federation.Options) {
			o.Crashes = []federation.Crash{
				{At: sim.Time(0).Add(25 * sim.Minute), Node: topology.NodeID{Cluster: 1, Index: 1}},
				{At: sim.Time(0).Add(40 * sim.Minute), Node: topology.NodeID{Cluster: 3, Index: 0}},
			}
		}},
		{"oracle", func(o *federation.Options) { o.Oracle = true }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := shardOptions(7, nc)
			tc.mut(&opts)
			ref := mustRun(t, opts)
			for _, shards := range []int{2, 3, 4} {
				assertSameRun(t, ref, runSharded(t, opts, shards), tc.name)
			}
		})
	}
}

// TestShardedFallbacks pins the configurations RunSharded must hand to
// the sequential path: more shards than clusters still runs (capped),
// and a single-cluster federation falls back outright.
func TestShardedFallbacks(t *testing.T) {
	opts := shardOptions(9, 2)
	ref := mustRun(t, opts)
	assertSameRun(t, ref, runSharded(t, opts, 8), "shards>clusters")

	one := federation.Options{
		Topology:   topology.Small(1, 4),
		Workload:   app.Uniform(1, 300, 0, 30*sim.Minute),
		CLCPeriods: []sim.Duration{10 * sim.Minute},
		Seed:       3,
	}
	oneRef := mustRun(t, one)
	assertSameRun(t, oneRef, runSharded(t, one, 4), "single cluster")
}

// TestShardedDeterminism: same options, same shard count, same result —
// the parallel schedule must not leak into the simulation.
func TestShardedDeterminism(t *testing.T) {
	opts := shardOptions(11, 4)
	opts.Oracle = true
	a := runSharded(t, opts, 4)
	b := runSharded(t, opts, 4)
	assertSameRun(t, a, b, "repeat")
}
