package federation_test

import (
	"testing"

	"repro/internal/app"
	"repro/internal/federation"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Delta-vs-dense differential at the federation level, on the
// configurations the experiments registry does not reach: transitive
// piggybacking combined with crashes (the pipe codec must stay in
// lockstep across node failures and rollback cascades — the decoder
// advances even for messages dropped at a down destination) and with
// jittery links. The comparator is the full statistics dump: every
// counter, series and summary of the run must match bit-for-bit.

// transitiveCrashOptions is a 3-cluster transitive run with two
// crashes (one of them a cluster leader) over a jittery WAN.
func transitiveCrashOptions(seed uint64, dense bool) federation.Options {
	fed := topology.Small(3, 3)
	fed.SetAllInterLinks(topology.HighJitterWAN())
	wl := app.Uniform(3, 400, 18, sim.Hour)
	wl.StateSize = 64 << 10
	return federation.Options{
		Topology:   fed,
		Workload:   wl,
		CLCPeriods: []sim.Duration{8 * sim.Minute, 10 * sim.Minute, 12 * sim.Minute},
		Transitive: true,
		DenseWire:  dense,
		Seed:       seed,
		Crashes: []federation.Crash{
			{At: sim.Time(20 * sim.Minute), Node: topology.NodeID{Cluster: 1, Index: 1}},
			{At: sim.Time(40 * sim.Minute), Node: topology.NodeID{Cluster: 2, Index: 0}},
		},
	}
}

func TestTransitiveDeltaCrashDifferential(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		delta := mustRun(t, transitiveCrashOptions(seed, false))
		dense := mustRun(t, transitiveCrashOptions(seed, true))
		if d, s := delta.Stats.Dump(), dense.Stats.Dump(); d != s {
			t.Fatalf("seed %d: delta and dense transitive runs diverged:\n--- delta\n%s\n--- dense\n%s", seed, d, s)
		}
		if delta.Events != dense.Events {
			t.Fatalf("seed %d: event counts diverged: %d vs %d", seed, delta.Events, dense.Events)
		}
	}
}

// TestTransitiveDeltaGCDifferential adds periodic garbage collection
// to a transitive run, exercising the chain-delta GC reports together
// with the piggyback codec.
func TestTransitiveDeltaGCDifferential(t *testing.T) {
	build := func(dense bool) federation.Options {
		opts := transitiveCrashOptions(3, dense)
		opts.GCPeriod = 15 * sim.Minute
		return opts
	}
	delta := mustRun(t, build(false))
	dense := mustRun(t, build(true))
	if d, s := delta.Stats.Dump(), dense.Stats.Dump(); d != s {
		t.Fatalf("delta and dense transitive GC runs diverged:\n--- delta\n%s\n--- dense\n%s", d, s)
	}
}
