package federation_test

import (
	"strings"
	"testing"

	"repro/internal/app"
	"repro/internal/federation"
	"repro/internal/sim"
	"repro/internal/topology"
)

func TestTraceOutputLevels(t *testing.T) {
	opts := smallOptions(61)
	var sb strings.Builder
	opts.TraceWriter = &sb
	opts.TraceLevel = sim.TraceDebug
	opts.Crashes = []federation.Crash{
		{At: sim.Time(20 * sim.Minute), Node: topology.NodeID{Cluster: 0, Index: 1}},
	}
	mustRun(t, opts)
	out := sb.String()
	for _, want := range []string{"CLC", "committed", "ROLLBACK", "CRASH"} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace missing %q", want)
		}
	}
}

func TestMaxEventsGuard(t *testing.T) {
	opts := smallOptions(67)
	opts.MaxEvents = 50 // absurdly low: the run must abort, not hang
	f, err := federation.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Run(); err == nil {
		t.Fatal("MaxEvents guard did not trip")
	}
}

func TestWANTopology(t *testing.T) {
	// Dedicated-WAN inter-cluster links (20 ms latency): the protocol
	// still works, checkpoint acks just take longer to settle.
	fed := topology.New(
		topology.Cluster{Name: "eu", Nodes: 3, Intra: topology.MyrinetLike()},
		topology.Cluster{Name: "us", Nodes: 3, Intra: topology.MyrinetLike()},
	)
	fed.SetAllInterLinks(topology.WANLike())
	wl := app.Uniform(2, 300, 12, sim.Hour)
	wl.StateSize = 64 << 10
	res := mustRun(t, federation.Options{
		Topology:   fed,
		Workload:   wl,
		CLCPeriods: []sim.Duration{10 * sim.Minute, 10 * sim.Minute},
		Seed:       71,
	})
	if res.Clusters[0].Committed == 0 || res.Clusters[1].Forced == 0 {
		t.Fatalf("WAN run missing checkpoints: %+v", res.Clusters)
	}
}

func TestAsymmetricClusterSizes(t *testing.T) {
	fed := topology.New(
		topology.Cluster{Name: "big", Nodes: 9, Intra: topology.MyrinetLike()},
		topology.Cluster{Name: "small", Nodes: 2, Intra: topology.MyrinetLike()},
		topology.Cluster{Name: "solo", Nodes: 1, Intra: topology.MyrinetLike()},
	)
	fed.SetAllInterLinks(topology.EthernetLike())
	wl := app.Pipeline(3, 200, 15, sim.Hour)
	wl.RatesPerHour[2][2] = 0 // the solo cluster has no peer to talk to
	wl.StateSize = 64 << 10
	opts := federation.Options{
		Topology:   fed,
		Workload:   wl,
		CLCPeriods: []sim.Duration{12 * sim.Minute, 12 * sim.Minute, 12 * sim.Minute},
		Seed:       73,
		Crashes: []federation.Crash{
			{At: sim.Time(30 * sim.Minute), Node: topology.NodeID{Cluster: 0, Index: 7}},
		},
	}
	res := mustRun(t, opts)
	if res.Clusters[0].Rollbacks == 0 {
		t.Fatal("big cluster did not roll back")
	}
	// The 1-node cluster runs with zero replicas (nobody to hold them)
	// and must still checkpoint.
	if res.Clusters[2].Committed == 0 {
		t.Fatal("solo cluster idle")
	}
}

func TestRollbackDurationRecorded(t *testing.T) {
	opts := smallOptions(79)
	opts.Crashes = []federation.Crash{
		{At: sim.Time(25 * sim.Minute), Node: topology.NodeID{Cluster: 0, Index: 2}},
	}
	res := mustRun(t, opts)
	s := res.Stats.Series("rollback.duration_seconds.c0")
	if s.Len() == 0 {
		t.Fatal("no rollback duration recorded")
	}
	if s.Values[0] <= 0 {
		t.Fatalf("duration = %v", s.Values[0])
	}
	// A recovery involving a state fetch should finish within seconds
	// of virtual time (state transfers over the SAN).
	if s.Values[0] > 60 {
		t.Fatalf("implausible recovery time %vs", s.Values[0])
	}
}

func TestLostWorkRecorded(t *testing.T) {
	opts := smallOptions(83)
	opts.Crashes = []federation.Crash{
		{At: sim.Time(45 * sim.Minute), Node: topology.NodeID{Cluster: 1, Index: 1}},
	}
	res := mustRun(t, opts)
	lost := res.Stats.Summary("app.lost_work_seconds")
	if lost.N() == 0 {
		t.Fatal("no lost work recorded")
	}
	// Crash at 45m with 10-minute checkpoints: each node loses less
	// than one checkpoint interval plus drift.
	if lost.Max() > (15 * sim.Minute).Seconds() {
		t.Fatalf("lost work %vs exceeds a checkpoint interval", lost.Max())
	}
}

func TestBackToBackCrashesSameCluster(t *testing.T) {
	opts := smallOptions(89)
	opts.Crashes = []federation.Crash{
		{At: sim.Time(20 * sim.Minute), Node: topology.NodeID{Cluster: 0, Index: 1}},
		{At: sim.Time(30 * sim.Minute), Node: topology.NodeID{Cluster: 0, Index: 2}},
		{At: sim.Time(40 * sim.Minute), Node: topology.NodeID{Cluster: 0, Index: 3}},
	}
	res := mustRun(t, opts)
	if res.Failures != 3 {
		t.Fatalf("failures = %d", res.Failures)
	}
	if res.Clusters[0].Rollbacks < 3 {
		t.Fatalf("rollbacks = %d", res.Clusters[0].Rollbacks)
	}
}

func TestCrashDuringGarbageCollectionWindow(t *testing.T) {
	opts := smallOptions(97)
	opts.GCPeriod = 20 * sim.Minute
	// Crash exactly at a GC tick: the round aborts or completes, never
	// corrupts.
	opts.Crashes = []federation.Crash{
		{At: sim.Time(40 * sim.Minute), Node: topology.NodeID{Cluster: 1, Index: 2}},
	}
	res := mustRun(t, opts)
	if v := res.Stats.CounterValue("invariant.rollback_target_missing"); v != 0 {
		t.Fatalf("GC vs crash: %d invariant violations", v)
	}
	_ = res
}
