package federation

import (
	"fmt"
	"sort"

	"repro/internal/app"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/oracle"
	"repro/internal/sim"
	"repro/internal/sim/parallel"
	"repro/internal/topology"
)

// This file is the sharded execution harness: RunSharded partitions the
// federation's clusters across N shard Feds, each on its own engine,
// and advances them in conservative time windows (internal/sim/parallel).
// The contract is byte-identical output relative to New+Run:
//
//   - Partitioning is by cluster, in contiguous ordinal blocks, so every
//     intra-cluster interaction stays on one engine and the only
//     cross-shard influence is inter-cluster messages.
//   - The window lookahead is the minimum inter-cluster link latency
//     between clusters on different shards: a message sent at t >= the
//     window floor arrives at or after the window limit, so delivering
//     it at the barrier cannot be late.
//   - Cross-shard messages keep the (pipe, sequence) dispatch key the
//     source network assigned; the destination engine's post-tick class
//     then reproduces the exact same-tick interleaving the sequential
//     engine would have used (see netsim).
//   - Order-sensitive observations (the oracle's invariant stream,
//     Welford-accumulated summaries) are journaled per shard and
//     replayed at barriers in global (time, shard) order.
type shardRunner struct {
	opts      Options
	topo      *topology.Federation
	shardOf   []int // cluster ordinal -> shard index
	lookahead sim.Duration
	shards    []*Fed
	coord     *parallel.Coordinator

	// oracle is the single real invariant checker the merged journal
	// replays into (nil unless Options.Oracle); replayNow backs its
	// violation-context clock during replay.
	oracle    *oracle.Oracle
	replayNow sim.Time

	// msgOut[i] collects the cross-shard messages shard i generated
	// during the current window; crashOut[i] every chaos crash shard
	// i's scheduler armed (owned victims included — injection always
	// waits for the barrier). Both are drained at every barrier. Only
	// shard i's worker appends to slot i during a window, and the
	// coordinator's barrier hand-off orders those appends before the
	// drain.
	msgOut   [][]crossMsg
	crashOut [][]shardCrash

	// crashCooldown/nextCrash re-impose the chaos tier's global crash
	// cooldown across shards: each shard's scheduler spaces only its
	// own fuses, so without a runner-level gate two shards could crash
	// two clusters in the same window — outside the one-fault-at-a-time
	// model the recovery protocol assumes. Crashes are gated in merged
	// (time, shard) order, so the outcome is deterministic for a given
	// (chaos seed, shard count).
	crashCooldown sim.Duration
	nextCrash     sim.Time

	recs []obsRec // reusable merge buffer for journal replay
}

// shardRole marks a Fed as one shard: the clusters it owns and the
// escape hatch for chaos crashes against clusters it does not.
type shardRole struct {
	idx        int
	owns       []bool
	deferCrash func(at sim.Time, id topology.NodeID)
}

// lostRec journals one application OnLost observation; the runner
// replays the merged log in (time, shard) order so the Welford summary
// matches a sequential run byte for byte.
type lostRec struct {
	at      sim.Time
	seconds float64
}

// crossMsg is one inter-cluster message crossing shards, frozen with
// the arrival time and pipe dispatch key its source network computed.
type crossMsg struct {
	m       netsim.Message
	arrival sim.Time
	key     uint64
}

// shardCrash is a chaos crash deferred to the window barrier; shard is
// filled at the drain and orders same-time fuses deterministically.
type shardCrash struct {
	at    sim.Time
	id    topology.NodeID
	shard int
}

// RunSharded builds and runs the federation across opts.Shards engines.
// Configurations the sharded harness cannot split faithfully fall back
// to the sequential path and still return identical results:
// fewer than two clusters, MTBF failures (one global exponential
// process), tracing (one interleaved event log), and topologies with
// zero lookahead (a zero-latency inter-cluster link).
func RunSharded(opts Options) (*Result, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	nc := opts.Topology.NumClusters()
	ns := opts.Shards
	if ns > nc {
		ns = nc
	}
	if ns <= 1 || nc < 2 || opts.MTBFFailures || opts.TraceWriter != nil {
		return runSequential(opts)
	}
	shardOf := make([]int, nc)
	for c := range shardOf {
		shardOf[c] = c * ns / nc
	}
	la, found := sim.Duration(0), false
	for a := 0; a < nc; a++ {
		for b := a + 1; b < nc; b++ {
			if shardOf[a] == shardOf[b] {
				continue
			}
			l := opts.Topology.InterLink(topology.ClusterID(a), topology.ClusterID(b)).Latency
			if !found || l < la {
				la, found = l, true
			}
		}
	}
	if !found || la <= 0 {
		// Degenerate topology: conservative windows would have zero
		// width. Fall back instead of deadlocking.
		return runSequential(opts)
	}

	r := &shardRunner{
		opts:      opts,
		topo:      opts.Topology,
		shardOf:   shardOf,
		lookahead: la,
		shards:    make([]*Fed, ns),
		msgOut:    make([][]crossMsg, ns),
		crashOut:  make([][]shardCrash, ns),
	}
	if opts.Oracle {
		r.oracle = oracle.New(nc)
		r.oracle.Clock = func() sim.Time { return r.replayNow }
	}
	if opts.Chaos != nil {
		r.crashCooldown = opts.Chaos.Filled().CrashCooldown
	}
	release := func() {
		for _, f := range r.shards {
			if f != nil {
				f.Release()
			}
		}
	}
	for i := 0; i < ns; i++ {
		owns := make([]bool, nc)
		for c := 0; c < nc; c++ {
			owns[c] = shardOf[c] == i
		}
		idx := i
		role := &shardRole{idx: i, owns: owns, deferCrash: func(at sim.Time, id topology.NodeID) {
			r.crashOut[idx] = append(r.crashOut[idx], shardCrash{at: at, id: id})
		}}
		f, err := newFed(opts, role)
		if err != nil {
			release()
			return nil, err
		}
		r.shards[i] = f
		f.net.CrossRoute = func(m netsim.Message, arrival sim.Time, key uint64) bool {
			if role.owns[m.Dst.Cluster] {
				return false // same-shard destination: deliver locally
			}
			r.msgOut[idx] = append(r.msgOut[idx], crossMsg{m: m, arrival: arrival, key: key})
			return true
		}
	}
	res, err := r.run()
	release()
	return res, err
}

// runSequential is the fallback path: identical to New + Run + Release.
func runSequential(opts Options) (*Result, error) {
	f, err := New(opts)
	if err != nil {
		return nil, err
	}
	res, err := f.Run()
	f.Release()
	return res, err
}

// run drives the coordinator through the same horizon slices as
// Fed.Run, then merges, checks and collects.
func (r *shardRunner) run() (*Result, error) {
	// One wall-clock watchdog covers the whole sharded run: on expiry
	// every shard engine is interrupted, the coordinator surfaces the
	// first shard's ErrInterrupted, and the caller gets the same
	// watchdog diagnostic as the sequential path.
	if d := r.opts.Watchdog; d > 0 {
		defer armWatchdog(d, func() {
			for _, f := range r.shards {
				f.engine.Interrupt()
			}
		})()
	}
	for _, f := range r.shards {
		for _, id := range r.topo.AllNodes() {
			if !f.role.owns[id.Cluster] {
				continue
			}
			ord := f.ix.Ord(id)
			f.nodes[ord].Start()
			f.scheduleNextSend(ord)
		}
	}
	engines := make([]parallel.Shard, len(r.shards))
	for i, f := range r.shards {
		engines[i] = f.engine
	}
	r.coord = parallel.New(engines, r.lookahead, r.exchange, r.oracleErr)

	horizon := sim.Time(0).Add(r.opts.Workload.TotalTime)
	const slice = 10 * sim.Minute
	for {
		if err := r.coord.Run(horizon); err != nil {
			return nil, watchdogErr(err, r.opts.Watchdog)
		}
		if r.appsDone() {
			break
		}
		horizon = horizon.Add(slice)
	}
	final := horizon.Add(2 * slice)
	if err := r.coord.Run(final); err != nil {
		return nil, watchdogErr(err, r.opts.Watchdog)
	}

	if r.oracle != nil {
		r.oracle.Finish()
		if err := r.oracleErr(); err != nil {
			return nil, err
		}
	}
	st := r.mergeStats()
	v := &runView{topo: r.topo, st: st, wl: r.opts.Workload, node: r.node, app: r.app}
	if err := v.checkInvariants(); err != nil {
		return nil, err
	}
	return v.collect(r.endTime(final), r.events()), nil
}

func (r *shardRunner) appsDone() bool {
	for _, f := range r.shards {
		if !f.appsDone() {
			return false
		}
	}
	return true
}

// endTime reconstructs the clock a sequential engine would report after
// its settle slice: the final horizon when any event is still pending
// beyond it, otherwise the time of the last event fired anywhere.
func (r *shardRunner) endTime(final sim.Time) sim.Time {
	var last sim.Time
	for _, f := range r.shards {
		if f.engine.HasPendingEvents() {
			return final
		}
		if t := f.engine.Now(); t > last {
			last = t
		}
	}
	return last
}

func (r *shardRunner) events() uint64 {
	var n uint64
	for _, f := range r.shards {
		n += f.engine.Executed
	}
	return n
}

func (r *shardRunner) ownerOf(id topology.NodeID) *Fed {
	return r.shards[r.shardOf[id.Cluster]]
}

func (r *shardRunner) node(id topology.NodeID) ProtocolNode {
	f := r.ownerOf(id)
	return f.nodes[f.ix.Ord(id)]
}

func (r *shardRunner) app(id topology.NodeID) *app.NodeApp {
	f := r.ownerOf(id)
	return f.apps[f.ix.Ord(id)]
}

// oracleErr folds the runner oracle's violations into one error; it
// doubles as the coordinator's per-window check callback.
func (r *shardRunner) oracleErr() error {
	if r.oracle == nil {
		return nil
	}
	err := r.oracle.Err()
	if err == nil {
		return nil
	}
	if n := len(r.oracle.Violations()); n > 1 {
		return fmt.Errorf("%w (+%d more violations)", err, n-1)
	}
	return err
}

// exchange runs at every window barrier with all shard workers parked:
// replay the merged observation journal into the oracle, apply deferred
// chaos crashes, and deliver the window's cross-shard messages.
func (r *shardRunner) exchange(prevLimit sim.Time) error {
	if r.oracle != nil {
		if err := r.replayObs(); err != nil {
			return err
		}
	}
	var crashes []shardCrash
	for si := range r.crashOut {
		for _, c := range r.crashOut[si] {
			c.shard = si
			crashes = append(crashes, c)
		}
		r.crashOut[si] = r.crashOut[si][:0]
	}
	if len(crashes) > 0 {
		sort.SliceStable(crashes, func(i, j int) bool {
			if crashes[i].at != crashes[j].at {
				return crashes[i].at < crashes[j].at
			}
			return crashes[i].shard < crashes[j].shard
		})
		for _, c := range crashes {
			at := c.at
			if at < prevLimit {
				// The fuse elapsed inside the finished window; earliest
				// faithful time left is the barrier itself.
				at = prevLimit
			}
			// Global one-fault-at-a-time gate: a fuse landing inside the
			// cooldown of the previously admitted crash is dropped, just
			// as a single scheduler would never have armed it.
			if at < r.nextCrash {
				continue
			}
			r.nextCrash = at.Add(r.crashCooldown)
			r.ownerOf(c.id).inject.CrashAt(at, c.id)
		}
	}
	for si := range r.msgOut {
		for _, cm := range r.msgOut[si] {
			// arrival >= prevLimit by the lookahead argument; the source-
			// assigned pipe key reproduces the sequential same-tick order.
			r.ownerOf(cm.m.Dst).net.DeliverCrossAt(cm.m, cm.arrival, cm.key)
		}
		r.msgOut[si] = r.msgOut[si][:0]
	}
	return nil
}

// replayObs merges every shard's observation journal in global
// (time, shard) order — stable, so each shard's own order survives —
// and replays it into the real oracle.
func (r *shardRunner) replayObs() error {
	recs := r.recs[:0]
	for _, f := range r.shards {
		recs = append(recs, f.shardObs.recs...)
		// Release the journal's backing array to the next window; the
		// records themselves were copied into the merge buffer.
		f.shardObs.recs = f.shardObs.recs[:0]
	}
	sort.SliceStable(recs, func(i, j int) bool {
		if recs[i].at != recs[j].at {
			return recs[i].at < recs[j].at
		}
		return recs[i].shard < recs[j].shard
	})
	for i := range recs {
		r.replayNow = recs[i].at
		r.applyRec(&recs[i])
	}
	// Drop payload references so the buffer does not pin DDVs across
	// windows, then keep the capacity.
	for i := range recs {
		recs[i] = obsRec{}
	}
	r.recs = recs[:0]
	return r.oracleErr()
}

func (r *shardRunner) applyRec(rec *obsRec) {
	o := r.oracle
	switch rec.kind {
	case obsMode:
		o.ObserveMode(rec.node, rec.mode)
	case obsCommit:
		o.ObserveCommit(rec.node, rec.sn, rec.epoch, rec.ddv, rec.pairs, rec.forced)
	case obsRollback:
		o.ObserveRollback(rec.node, rec.sn, rec.epoch, rec.ddv)
	case obsDeliver:
		o.ObserveDeliver(rec.node, rec.node2, rec.epoch, rec.sn, rec.epoch2, rec.sn2)
	case obsPiggySend:
		o.ObservePiggySend(rec.node, rec.cl, rec.ddv)
	case obsGCDrop:
		o.ObserveGCDrop(rec.node, rec.sns)
	case obsPipeExit:
		o.CheckPipeExit(rec.cl, rec.cl2, rec.ddv)
	}
}

// mergeStats folds the shard registries into one, reproducing the
// sequential registry byte for byte:
//
//   - Counters sum. Registration is lazy on both paths, so the union of
//     shard counter names equals the sequential name set (zero-valued
//     but registered counters are preserved — Dump prints them).
//   - Series carry a per-cluster suffix and thus live on exactly one
//     shard; they are copied. Unknown multi-shard series k-way merge by
//     (time, shard) as a fallback.
//   - Summaries are Welford-order-sensitive: the one cross-shard
//     summary (app.lost_work_seconds) is journaled and replayed in
//     global order; per-cluster summaries copy exactly via Merge's
//     empty-receiver path, and Merge's approximate combination only
//     ever runs for hypothetical future cross-shard summaries.
func (r *shardRunner) mergeStats() *sim.Stats {
	nc := r.topo.NumClusters()
	st := sim.NewStatsHint(64 + 96*nc)
	for _, f := range r.shards {
		f.stats.ForEachCounter(func(name string, v uint64) {
			st.Counter(name).Add(v)
		})
		f.stats.ForEachSummary(func(name string, sum *sim.Summary) {
			st.Summary(name).Merge(sum)
		})
		// Histograms merge count-exactly (bucket sums), and the quantile
		// mode depends only on the merged totals, so a merged histogram
		// answers exactly like its sequential counterpart. The stable-
		// latency histogram is in fact filled after this merge, on the
		// final application states — this path covers any histogram a
		// shard populates mid-run.
		f.stats.ForEachHistogram(func(name string, h *sim.Histogram) {
			st.Histogram(name).Merge(h)
		})
	}

	type seriesSrc struct {
		shard int
		ser   *sim.Series
	}
	bySeries := make(map[string][]seriesSrc)
	for si, f := range r.shards {
		f.stats.ForEachSeries(func(name string, ser *sim.Series) {
			bySeries[name] = append(bySeries[name], seriesSrc{si, ser})
		})
	}
	for name, srcs := range bySeries {
		out := st.Series(name)
		if len(srcs) == 1 {
			out.Times = append(out.Times, srcs[0].ser.Times...)
			out.Values = append(out.Values, srcs[0].ser.Values...)
			continue
		}
		idx := make([]int, len(srcs))
		for {
			best := -1
			for k, s := range srcs {
				if idx[k] >= s.ser.Len() {
					continue
				}
				if best == -1 || s.ser.Times[idx[k]] < srcs[best].ser.Times[idx[best]] {
					best = k
				}
			}
			if best == -1 {
				break
			}
			out.Record(srcs[best].ser.Times[idx[best]], srcs[best].ser.Values[idx[best]])
			idx[best]++
		}
	}

	type shardLost struct {
		lostRec
		shard int
	}
	var lost []shardLost
	for si, f := range r.shards {
		for _, lr := range f.lostLog {
			lost = append(lost, shardLost{lr, si})
		}
	}
	sort.SliceStable(lost, func(i, j int) bool {
		if lost[i].at != lost[j].at {
			return lost[i].at < lost[j].at
		}
		return lost[i].shard < lost[j].shard
	})
	if len(lost) > 0 {
		sum := st.Summary("app.lost_work_seconds")
		for _, l := range lost {
			sum.Observe(l.seconds)
		}
	}
	return st
}

// ---- per-shard observation journal ----

type obsKind uint8

const (
	obsMode obsKind = iota
	obsCommit
	obsRollback
	obsDeliver
	obsPiggySend
	obsGCDrop
	obsPipeExit
)

// obsRec is one journaled observation. Field use varies by kind; the
// (at, shard) pair is the global replay sort key.
type obsRec struct {
	at     sim.Time
	shard  int
	kind   obsKind
	node   topology.NodeID
	node2  topology.NodeID
	cl     topology.ClusterID
	cl2    topology.ClusterID
	mode   core.ProtocolMode
	sn     core.SN
	sn2    core.SN
	epoch  core.Epoch
	epoch2 core.Epoch
	forced bool
	ddv    core.DDV
	pairs  []core.DDVPair
	sns    []core.SN
}

// shardObs journals a shard's protocol observations for barrier replay.
// The observer contract says callbacks may alias node-owned buffers
// that mutate afterwards, so every kept DDV/pair/threshold is cloned at
// capture — except ObservePiggySend's dense vector, which is documented
// immutable once handed out (the sequential oracle also keeps it by
// reference).
type shardObs struct {
	f    *Fed
	recs []obsRec
}

// shardObsEnv is the shard counterpart of obsEnv: the node env plus the
// promoted core.Observer methods of the journal.
type shardObsEnv struct {
	nodeEnv
	*shardObs
}

func (s *shardObs) rec() *obsRec {
	s.recs = append(s.recs, obsRec{at: s.f.engine.Now(), shard: s.f.role.idx})
	return &s.recs[len(s.recs)-1]
}

func (s *shardObs) ObserveMode(id topology.NodeID, mode core.ProtocolMode) {
	r := s.rec()
	r.kind, r.node, r.mode = obsMode, id, mode
}

func (s *shardObs) ObserveCommit(id topology.NodeID, seq core.SN, epoch core.Epoch, ddv core.DDV, pairs []core.DDVPair, forced bool) {
	r := s.rec()
	r.kind, r.node, r.sn, r.epoch, r.forced = obsCommit, id, seq, epoch, forced
	if pairs != nil {
		// The oracle branches on pairs != nil and then never reads ddv,
		// so only the delta is kept — and an empty-but-non-nil delta
		// must stay non-nil through the copy.
		r.pairs = make([]core.DDVPair, len(pairs))
		copy(r.pairs, pairs)
	} else {
		r.ddv = ddv.Clone()
	}
}

func (s *shardObs) ObserveRollback(id topology.NodeID, toSN core.SN, newEpoch core.Epoch, ddv core.DDV) {
	r := s.rec()
	r.kind, r.node, r.sn, r.epoch, r.ddv = obsRollback, id, toSN, newEpoch, ddv.Clone()
}

func (s *shardObs) ObserveDeliver(dst, src topology.NodeID, srcEpoch core.Epoch, sendSN core.SN, recvEpoch core.Epoch, recvSN core.SN) {
	r := s.rec()
	r.kind, r.node, r.node2 = obsDeliver, dst, src
	r.epoch, r.sn, r.epoch2, r.sn2 = srcEpoch, sendSN, recvEpoch, recvSN
}

func (s *shardObs) ObservePiggySend(src topology.NodeID, dstCluster topology.ClusterID, dense core.DDV) {
	r := s.rec()
	r.kind, r.node, r.cl, r.ddv = obsPiggySend, src, dstCluster, dense
}

func (s *shardObs) ObserveGCDrop(id topology.NodeID, minSNs []core.SN) {
	r := s.rec()
	r.kind, r.node = obsGCDrop, id
	r.sns = append([]core.SN(nil), minSNs...)
}

// pipeExit journals the decoded vector at a pipe exit (the shard-side
// counterpart of Oracle.CheckPipeExit). decoded is the codec's live
// buffer, so it is cloned.
func (s *shardObs) pipeExit(src, dst topology.ClusterID, decoded core.DDV) {
	r := s.rec()
	r.kind, r.cl, r.cl2, r.ddv = obsPipeExit, src, dst, decoded.Clone()
}
