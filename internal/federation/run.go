package federation

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/app"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/topology"
)

// ClusterResult aggregates the per-cluster quantities the paper's
// figures and tables report.
type ClusterResult struct {
	Cluster   topology.ClusterID
	Forced    uint64 // committed forced CLCs
	Unforced  uint64 // committed unforced CLCs
	Committed uint64 // total committed CLCs
	Stored    int    // CLCs stored at the end of the run (leader view)
	Rollbacks uint64
}

// Total returns forced + unforced committed CLCs ("number of CLCs realy
// committed", Figures 6-9).
func (c ClusterResult) Total() uint64 { return c.Committed }

// GCRound is one garbage collection's before/after pair per cluster
// (the rows of Tables 2 and 3).
type GCRound struct {
	At     sim.Time
	Before []int // stored CLCs just before, per cluster
	After  []int // stored CLCs just after, per cluster
}

// Result is everything a finished run reports.
type Result struct {
	Stats    *sim.Stats
	Clusters []ClusterResult
	// AppMsgs[i][j] is the number of application messages sent from
	// cluster i to cluster j (Table 1).
	AppMsgs [][]uint64
	// GCRounds lists each garbage collection's effect (Tables 2, 3).
	GCRounds []GCRound
	// MaxLoggedMessages is the high-water mark of any node's volatile
	// message log (§5.4 reports it for the sample).
	MaxLoggedMessages int
	EndTime           sim.Time
	Events            uint64
	Failures          uint64
}

// Run executes the simulation: the application generates traffic until
// its total time elapses (re-executing lost work after rollbacks), then
// the run drains to quiescence. It verifies the protocol's global
// invariants before returning.
func (f *Fed) Run() (*Result, error) {
	// The wall-clock watchdog: a wedged simulation (however unlikely)
	// must become an error its sweep harness can record, not a stalled
	// worker. Interrupt is sticky, so a timer firing between horizon
	// slices still kills the run.
	if d := f.opts.Watchdog; d > 0 {
		defer armWatchdog(d, f.engine.Interrupt)()
	}
	for _, id := range f.opts.Topology.AllNodes() {
		ord := f.ix.Ord(id)
		f.nodes[ord].Start()
		f.scheduleNextSend(ord)
	}

	// Run in slices until every application finished its schedule (a
	// rollback can push application progress past the nominal end).
	horizon := sim.Time(0).Add(f.opts.Workload.TotalTime)
	const slice = 10 * sim.Minute
	for {
		if _, err := f.engine.Run(horizon); err != nil {
			if oerr := f.oracleErr(); oerr != nil {
				return nil, oerr
			}
			return nil, watchdogErr(err, f.opts.Watchdog)
		}
		// A violation stops the engine mid-slice (fail fast): report it
		// instead of spinning on an aborted simulation.
		if oerr := f.oracleErr(); oerr != nil {
			return nil, oerr
		}
		if f.appsDone() {
			break
		}
		horizon = horizon.Add(slice)
	}
	// Settle in-flight protocol activity (alerts, 2PCs, acks): two more
	// slices with no application traffic left.
	if _, err := f.engine.Run(horizon.Add(2 * slice)); err != nil {
		return nil, watchdogErr(err, f.opts.Watchdog)
	}

	if f.oracle != nil {
		f.oracle.Finish()
	}
	if err := f.oracleErr(); err != nil {
		return nil, err
	}
	v := f.view()
	if err := v.checkInvariants(); err != nil {
		return nil, err
	}
	return v.collect(f.engine.Now(), f.engine.Executed), nil
}

// armWatchdog starts a wall-clock watchdog that calls kill after d and
// returns the disarm function. Disarming is synchronous — it waits out
// an in-flight kill — so a pooled engine can never be interrupted by a
// stale timer after its run returned and the engine went back to the
// arena (Engine.Reset clears the interrupt flag, but only a kill that
// happens-before the reset is guaranteed harmless).
func armWatchdog(d time.Duration, kill func()) (disarm func()) {
	tm := time.NewTimer(d)
	cancel := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		select {
		case <-tm.C:
			kill()
		case <-cancel:
		}
	}()
	return func() {
		close(cancel)
		<-finished
		tm.Stop()
	}
}

// watchdogErr dresses an engine interrupt as the watchdog diagnostic
// (sim.ErrInterrupted stays in the chain for errors.Is); other engine
// errors pass through untouched.
func watchdogErr(err error, d time.Duration) error {
	if err == nil || !errors.Is(err, sim.ErrInterrupted) {
		return err
	}
	return fmt.Errorf("federation: watchdog: run exceeded %v wall clock: %w", d, err)
}

// oracleErr folds the oracle's violations into one run error (nil when
// no oracle is attached or the run is clean).
func (f *Fed) oracleErr() error {
	if f.oracle == nil {
		return nil
	}
	err := f.oracle.Err()
	if err == nil {
		return nil
	}
	if n := len(f.oracle.Violations()); n > 1 {
		return fmt.Errorf("%w (+%d more violations)", err, n-1)
	}
	return err
}

// appsDone reports whether every application this Fed hosts finished
// its schedule. Shards leave nil slots for nodes they do not own.
func (f *Fed) appsDone() bool {
	for ord, a := range f.apps {
		if a == nil {
			continue
		}
		if f.nodes[ord].Failed() {
			return false
		}
		if _, ok := a.NextSend(); ok {
			return false
		}
	}
	return true
}

// view adapts the Fed to the runView the invariant checker and result
// collector operate on.
func (f *Fed) view() *runView {
	return &runView{
		topo: f.opts.Topology,
		st:   f.stats,
		wl:   f.opts.Workload,
		node: func(id topology.NodeID) ProtocolNode { return f.nodes[f.ix.Ord(id)] },
		app:  func(id topology.NodeID) *app.NodeApp { return f.apps[f.ix.Ord(id)] },
	}
}

// runView is the read-only face of a finished run: everything the
// end-of-run invariant checks and result collection need, independent
// of whether the run executed on one engine or across shards. The
// sharded runner builds one whose node/app accessors route each NodeID
// to its owning shard and whose stats are the merged registry.
type runView struct {
	topo *topology.Federation
	st   *sim.Stats
	wl   *app.Workload
	node func(topology.NodeID) ProtocolNode
	app  func(topology.NodeID) *app.NodeApp
}

// checkInvariants verifies the end-of-run safety properties of
// DESIGN.md §5 that are visible from the harness.
func (v *runView) checkInvariants() error {
	st := v.st
	if n := st.CounterValue("invariant.rollback_target_missing"); n != 0 {
		return fmt.Errorf("federation: %d rollback targets missing (GC unsafe)", n)
	}
	if n := st.CounterValue("failures.unrecoverable"); n != 0 {
		return fmt.Errorf("federation: %d failures had no surviving coordinator", n)
	}
	// A node that never finished recovering would leave its cluster's
	// rollback incomplete: surface it as a frozen/lost node.
	for _, id := range v.topo.AllNodes() {
		if hn, ok := v.node(id).(*core.Node); ok && !hn.Failed() {
			if hn.LostState() {
				return fmt.Errorf("federation: node %v never recovered its state", id)
			}
		}
	}
	// SN and DDV agreement inside each cluster (HC3I only).
	for c := 0; c < v.topo.NumClusters(); c++ {
		var first *core.Node
		for _, id := range v.topo.Nodes(topology.ClusterID(c)) {
			hn, ok := v.node(id).(*core.Node)
			if !ok {
				break
			}
			if hn.Failed() {
				continue
			}
			if first == nil {
				first = hn
				continue
			}
			if hn.SN() != first.SN() {
				return fmt.Errorf("federation: cluster %d SN disagreement: %v=%d %v=%d",
					c, first.ID(), first.SN(), hn.ID(), hn.SN())
			}
			if !hn.DDVSnapshot().Equal(first.DDVSnapshot()) {
				return fmt.Errorf("federation: cluster %d DDV disagreement: %v vs %v",
					c, first.DDVSnapshot(), hn.DDVSnapshot())
			}
		}
	}
	// Message completeness under deterministic replay: every send a
	// node performed (in its final history) was delivered at its
	// destination at least once.
	if v.wl.Deterministic {
		for _, id := range v.topo.AllNodes() {
			a := v.app(id)
			for i := 0; i < a.SentCount(); i++ {
				dst := a.DestinationOf(i)
				lid := core.LogicalID{Src: id, Seq: uint64(i + 1)}
				if v.app(dst).DeliveredTimes(lid) == 0 {
					return fmt.Errorf("federation: message %v to %v lost", lid, dst)
				}
			}
		}
	}
	return nil
}

// collect builds the Result from the statistics registry.
func (v *runView) collect(endTime sim.Time, events uint64) *Result {
	n := v.topo.NumClusters()
	res := &Result{
		Stats:    v.st,
		EndTime:  endTime,
		Events:   events,
		Failures: v.st.CounterValue("failures.injected"),
	}
	var kb []byte
	key := func(base string, c int) string {
		kb = append(append(kb[:0], base...), ".c"...)
		kb = strconv.AppendInt(kb, int64(c), 10)
		return string(kb)
	}
	for c := 0; c < n; c++ {
		cc := key("clc.committed", c)
		cr := ClusterResult{
			Cluster:   topology.ClusterID(c),
			Forced:    v.st.CounterValue(cc + ".forced"),
			Unforced:  v.st.CounterValue(cc + ".unforced"),
			Committed: v.st.CounterValue(cc),
			Rollbacks: v.st.CounterValue(key("rollback.count", c)),
			Stored:    v.node(topology.NodeID{Cluster: topology.ClusterID(c)}).StoredCount(),
		}
		res.Clusters = append(res.Clusters, cr)
	}
	// The per-pair app matrix is sparse relative to n² (pairs register
	// lazily on first traffic), so walk the registered counters once and
	// parse the pair out of the name instead of probing all n² keys.
	res.AppMsgs = make([][]uint64, n)
	for i := 0; i < n; i++ {
		res.AppMsgs[i] = make([]uint64, n)
	}
	v.st.ForEachCounter(func(name string, val uint64) {
		rest, ok := strings.CutPrefix(name, "net.sent.app.c")
		if !ok {
			return
		}
		dot := strings.IndexByte(rest, '.')
		if dot < 0 || dot+1 >= len(rest) || rest[dot+1] != 'c' {
			return
		}
		i, err1 := strconv.Atoi(rest[:dot])
		j, err2 := strconv.Atoi(rest[dot+2:])
		if err1 != nil || err2 != nil || i < 0 || i >= n || j < 0 || j >= n {
			return
		}
		res.AppMsgs[i][j] = val
	})
	res.GCRounds = v.gcRounds(n)
	v.collectStableLatency()
	// Every protocol with a volatile message log reports its running
	// high-water mark; core.Node and all three baselines track it at
	// their log-append sites, so log-truncating protocols (the
	// pessimistic-log baseline trims at every snapshot) report their
	// true mid-run peak, not the deflated end-of-run length. Protocols
	// without a peak tracker fall back to the end-of-run sample.
	for _, id := range v.topo.AllNodes() {
		pn := v.node(id)
		if ln, ok := pn.(interface{ LogPeak() int }); ok {
			if l := ln.LogPeak(); l > res.MaxLoggedMessages {
				res.MaxLoggedMessages = l
			}
		} else if ln, ok := pn.(interface{ LogLen() int }); ok {
			if l := ln.LogLen(); l > res.MaxLoggedMessages {
				res.MaxLoggedMessages = l
			}
		}
	}
	return res
}

// StableLatencyMetric names the histogram of user-perceived
// stable-delivery latencies (seconds) that open-loop runs record.
const StableLatencyMetric = "app.stable_latency_seconds"

// collectStableLatency fills the app.stable_latency_seconds histogram
// for open-loop workloads: one sample per distinct request that
// reached stable delivery — the span from the request's scheduled
// arrival (fixed by the user, on the original time axis) to the first
// checkpoint commit that covered its delivery and was never rolled
// back behind. The journal truncation in NodeApp.Restore guarantees
// the surviving marks are exactly those commits; requests still
// uncovered at the end of the run are right-censored (not observed).
// Collection runs on the final application states after any shard
// merge, in topology order, so sequential, sharded, batched and
// oracle-attached runs fill byte-identical histograms.
func (v *runView) collectStableLatency() {
	if v.wl.OpenLoop == nil {
		return
	}
	h := v.st.Histogram(StableLatencyMetric)
	for _, id := range v.topo.AllNodes() {
		a := v.app(id)
		stable := a.StableCount()
		seen := make(map[core.LogicalID]struct{}, stable)
		for j := 0; j < stable; j++ {
			lid := a.JournalEntry(j)
			if _, dup := seen[lid]; dup {
				// Duplicate delivery (replayed send): the first journal
				// occurrence stabilized no later, so it is the sample.
				continue
			}
			seen[lid] = struct{}{}
			src := v.app(lid.Src)
			// Open-loop workloads are deterministic, so Seq is the
			// 1-based schedule index with no epoch salt.
			arrival := src.ArrivalTime(int(lid.Seq - 1))
			h.Observe(a.StableTime(j).Sub(arrival).Seconds())
		}
	}
}

// gcRounds reassembles per-round before/after pairs from the
// gc.before/gc.after series of each cluster leader.
func (v *runView) gcRounds(n int) []GCRound {
	var rounds []GCRound
	ref := v.st.Series("gc.before.c0")
	for k := 0; k < ref.Len(); k++ {
		r := GCRound{At: ref.Times[k], Before: make([]int, n), After: make([]int, n)}
		complete := true
		for c := 0; c < n; c++ {
			b := v.st.Series(fmt.Sprintf("gc.before.c%d", c))
			a := v.st.Series(fmt.Sprintf("gc.after.c%d", c))
			if k >= b.Len() || k >= a.Len() {
				complete = false
				break
			}
			r.Before[c] = int(b.Values[k])
			r.After[c] = int(a.Values[k])
		}
		if complete {
			rounds = append(rounds, r)
		}
	}
	return rounds
}
