package federation_test

import (
	"testing"

	"repro/internal/app"
	"repro/internal/federation"
	"repro/internal/sim"
	"repro/internal/topology"
)

// TestSoakChaos is the long-haul robustness run: hours of virtual time,
// MTBF-driven crashes, periodic garbage collection, the transitive
// extension, replication degree 2 and (in one variant) a
// non-deterministic application — everything on at once. Run() verifies
// the protocol's global invariants internally; this test checks the
// system also made forward progress under the abuse.
func TestSoakChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	for _, tc := range []struct {
		name          string
		deterministic bool
		transitive    bool
		ring          bool
		seed          uint64
	}{
		{"deterministic-centralgc", true, false, false, 101},
		{"deterministic-transitive-ringgc", true, true, true, 103},
		{"nondeterministic", false, false, false, 107},
	} {
		t.Run(tc.name, func(t *testing.T) {
			fed := topology.Small(3, 5)
			fed.MTBF = 35 * sim.Minute
			wl := app.Uniform(3, 500, 20, 4*sim.Hour)
			wl.StateSize = 128 << 10
			wl.Deterministic = tc.deterministic
			opts := federation.Options{
				Topology: fed,
				Workload: wl,
				CLCPeriods: []sim.Duration{
					12 * sim.Minute, 18 * sim.Minute, 25 * sim.Minute,
				},
				GCPeriod:     40 * sim.Minute,
				RingGC:       tc.ring,
				Transitive:   tc.transitive,
				Replicas:     2,
				Seed:         tc.seed,
				MTBFFailures: true,
			}
			f, err := federation.New(opts)
			if err != nil {
				t.Fatal(err)
			}
			res, err := f.Run()
			if err != nil {
				t.Fatal(err)
			}
			if res.Failures < 3 {
				t.Fatalf("only %d failures injected over 4h at a 35m MTBF", res.Failures)
			}
			var rollbacks, committed uint64
			for _, c := range res.Clusters {
				rollbacks += c.Rollbacks
				committed += c.Committed
			}
			if rollbacks < res.Failures {
				t.Fatalf("rollbacks %d < failures %d", rollbacks, res.Failures)
			}
			if committed < 20 {
				t.Fatalf("committed only %d CLCs", committed)
			}
			if res.Stats.CounterValue("gc.rounds_completed") == 0 {
				t.Fatal("garbage collection never completed under chaos")
			}
			// Stores stay bounded despite hours of checkpointing.
			for _, c := range res.Clusters {
				if c.Stored > 25 {
					t.Fatalf("cluster %d stores %d CLCs (GC ineffective)", c.Cluster, c.Stored)
				}
			}
			// The application finished: its virtual end moved past the
			// nominal total by the re-executed (lost) work only.
			if res.EndTime < sim.Time(4*sim.Hour) {
				t.Fatalf("run ended early: %v", res.EndTime)
			}
		})
	}
}
