package federation_test

import (
	"testing"

	"repro/internal/app"
	"repro/internal/core"
	"repro/internal/federation"
	"repro/internal/sim"
	"repro/internal/topology"
)

// smallOptions builds a fast 2-cluster configuration for integration
// tests: few nodes, a one-hour application, frequent checkpoints.
func smallOptions(seed uint64) federation.Options {
	fed := topology.Small(2, 4)
	wl := app.Uniform(2, 600, 12, sim.Hour) // ~600 intra, ~12 inter per hour
	wl.StateSize = 64 << 10
	return federation.Options{
		Topology:   fed,
		Workload:   wl,
		CLCPeriods: []sim.Duration{10 * sim.Minute, 10 * sim.Minute},
		Seed:       seed,
	}
}

func mustRun(t *testing.T, opts federation.Options) *federation.Result {
	t.Helper()
	f, err := federation.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSmokeRunTwoClusters(t *testing.T) {
	res := mustRun(t, smallOptions(1))
	if res.AppMsgs[0][0] == 0 || res.AppMsgs[0][1] == 0 {
		t.Fatalf("no traffic: %v", res.AppMsgs)
	}
	for _, c := range res.Clusters {
		if c.Committed == 0 {
			t.Fatalf("cluster %d committed no CLCs", c.Cluster)
		}
		if c.Committed != c.Forced+c.Unforced {
			t.Fatalf("cluster %d: %d committed != %d forced + %d unforced",
				c.Cluster, c.Committed, c.Forced, c.Unforced)
		}
	}
	if res.EndTime < sim.Time(sim.Hour) {
		t.Fatalf("run ended early at %v", res.EndTime)
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := mustRun(t, smallOptions(42))
	b := mustRun(t, smallOptions(42))
	if a.AppMsgs[0][1] != b.AppMsgs[0][1] || a.AppMsgs[1][0] != b.AppMsgs[1][0] {
		t.Fatalf("same seed, different traffic: %v vs %v", a.AppMsgs, b.AppMsgs)
	}
	for i := range a.Clusters {
		if a.Clusters[i] != b.Clusters[i] {
			t.Fatalf("same seed, different cluster results: %+v vs %+v",
				a.Clusters[i], b.Clusters[i])
		}
	}
	if a.Events != b.Events {
		t.Fatalf("same seed, different event counts: %d vs %d", a.Events, b.Events)
	}
	c := mustRun(t, smallOptions(43))
	if c.Events == a.Events && c.AppMsgs[0][1] == a.AppMsgs[0][1] {
		t.Fatal("different seeds produced identical runs")
	}
}

func TestUnforcedCadenceFollowsTimer(t *testing.T) {
	opts := smallOptions(7)
	opts.Workload = app.Uniform(2, 600, 0, sim.Hour) // no inter-cluster traffic
	opts.CLCPeriods = []sim.Duration{10 * sim.Minute, sim.Forever}
	res := mustRun(t, opts)
	c0 := res.Clusters[0]
	// ~6 unforced CLCs during the one-hour application at a 10-minute
	// period (the drain window after the application end adds a couple
	// more ticks, and 2PC latency stretches the cadence slightly).
	if c0.Unforced < 4 || c0.Unforced > 8 {
		t.Fatalf("cluster 0 unforced = %d, want ~6-8", c0.Unforced)
	}
	if c0.Forced != 0 {
		t.Fatalf("cluster 0 forced = %d without inter-cluster traffic", c0.Forced)
	}
	// Cluster 1's timer is infinite and nothing forces it.
	if got := res.Clusters[1].Committed; got != 0 {
		t.Fatalf("cluster 1 committed %d CLCs with infinite timer", got)
	}
}

func TestForcedCLCsTrackIncomingDependencies(t *testing.T) {
	opts := smallOptions(11)
	// Only cluster 0 -> cluster 1 traffic; only cluster 0 checkpoints.
	wl := app.Uniform(2, 400, 0, sim.Hour)
	wl.RatesPerHour[0][1] = 40
	wl.StateSize = 64 << 10
	opts.Workload = wl
	opts.CLCPeriods = []sim.Duration{6 * sim.Minute, sim.Forever}
	res := mustRun(t, opts)
	c0, c1 := res.Clusters[0], res.Clusters[1]
	if c1.Unforced != 0 {
		t.Fatalf("cluster 1 unforced = %d, timer is infinite", c1.Unforced)
	}
	if c1.Forced == 0 {
		t.Fatal("cluster 1 never forced despite incoming dependencies")
	}
	// Forced CLCs in the receiver are bounded by the sender's stored
	// CLCs (one force per *new* sender CLC observed, §3.2 — the +1 is
	// the initial checkpoint, whose SN forces the first contact).
	if c1.Forced > c0.Committed+1 {
		t.Fatalf("cluster 1 forced %d > cluster 0 committed %d + 1", c1.Forced, c0.Committed)
	}
	if c0.Forced != 0 {
		t.Fatalf("cluster 0 forced = %d with no incoming traffic", c0.Forced)
	}
}

func TestTable1ShapedTraffic(t *testing.T) {
	fed := topology.Small(2, 10) // scaled-down node count, same rates
	wl := app.PaperTable1()
	wl.TotalTime = 2 * sim.Hour
	wl.StateSize = 64 << 10
	res := mustRun(t, federation.Options{
		Topology:   fed,
		Workload:   wl,
		CLCPeriods: []sim.Duration{30 * sim.Minute, 30 * sim.Minute},
		Seed:       3,
	})
	// Expected over 2h: 584 intra-0, 499 intra-1, 29 c0->c1, 2.2 c1->c0.
	within := func(got uint64, want, tol float64) bool {
		return float64(got) >= want-tol && float64(got) <= want+tol
	}
	if !within(res.AppMsgs[0][0], 584, 100) {
		t.Fatalf("c0->c0 = %d, want ~584", res.AppMsgs[0][0])
	}
	if !within(res.AppMsgs[1][1], 499, 100) {
		t.Fatalf("c1->c1 = %d, want ~499", res.AppMsgs[1][1])
	}
	if !within(res.AppMsgs[0][1], 29, 20) {
		t.Fatalf("c0->c1 = %d, want ~29", res.AppMsgs[0][1])
	}
	if res.AppMsgs[1][0] > 12 {
		t.Fatalf("c1->c0 = %d, want few", res.AppMsgs[1][0])
	}
}

func TestCrashRecoveryEndToEnd(t *testing.T) {
	opts := smallOptions(5)
	opts.Crashes = []federation.Crash{
		{At: sim.Time(25 * sim.Minute), Node: topology.NodeID{Cluster: 0, Index: 2}},
	}
	res := mustRun(t, opts)
	if res.Failures != 1 {
		t.Fatalf("failures = %d", res.Failures)
	}
	if res.Clusters[0].Rollbacks == 0 {
		t.Fatal("cluster 0 never rolled back")
	}
	if v := res.Stats.CounterValue("storage.recovered_states"); v != 1 {
		t.Fatalf("recovered states = %d, want 1", v)
	}
	// The invariant checker inside Run already verified SN agreement
	// and message completeness (including resends).
}

func TestCrashOfClusterLeader(t *testing.T) {
	opts := smallOptions(6)
	opts.Crashes = []federation.Crash{
		{At: sim.Time(25 * sim.Minute), Node: topology.NodeID{Cluster: 1, Index: 0}},
	}
	res := mustRun(t, opts)
	if res.Clusters[1].Rollbacks == 0 {
		t.Fatal("leader crash: cluster 1 never rolled back")
	}
}

func TestCascadingRollbackAcrossClustersEndToEnd(t *testing.T) {
	// Heavy one-way traffic c0 -> c1 with frequent CLCs in c0 builds
	// strong c1->c0 dependencies; a c0 crash should drag c1 back.
	fed := topology.Small(2, 3)
	wl := app.Uniform(2, 300, 0, sim.Hour)
	wl.RatesPerHour[0][1] = 120
	wl.StateSize = 64 << 10
	opts := federation.Options{
		Topology:   fed,
		Workload:   wl,
		CLCPeriods: []sim.Duration{5 * sim.Minute, sim.Forever},
		Seed:       9,
		Crashes: []federation.Crash{
			{At: sim.Time(31 * sim.Minute), Node: topology.NodeID{Cluster: 0, Index: 1}},
		},
	}
	res := mustRun(t, opts)
	if res.Clusters[0].Rollbacks == 0 {
		t.Fatal("faulty cluster did not roll back")
	}
	if res.Clusters[1].Rollbacks == 0 {
		t.Fatal("dependent cluster did not cascade")
	}
	if v := res.Stats.CounterValue("rollback.cascaded"); v == 0 {
		t.Fatal("no cascaded rollback recorded")
	}
}

func TestGarbageCollectionBoundsStoredCLCs(t *testing.T) {
	opts := smallOptions(13)
	opts.GCPeriod = 20 * sim.Minute
	res := mustRun(t, opts)
	if len(res.GCRounds) == 0 {
		t.Fatal("no GC rounds recorded")
	}
	for _, r := range res.GCRounds {
		for c := range r.Before {
			if r.After[c] > r.Before[c] {
				t.Fatalf("GC grew the store: %+v", r)
			}
			if r.After[c] < 1 {
				t.Fatalf("GC emptied cluster %d", c)
			}
			// The paper observes ~2 CLCs kept after each collection.
			if r.After[c] > 4 {
				t.Fatalf("GC kept %d CLCs in cluster %d", r.After[c], c)
			}
		}
	}
	if v := res.Stats.CounterValue("gc.rounds_completed"); v == 0 {
		t.Fatal("no completed GC rounds")
	}
}

func TestGCThenCrashStillRecovers(t *testing.T) {
	opts := smallOptions(17)
	opts.GCPeriod = 15 * sim.Minute
	opts.Crashes = []federation.Crash{
		{At: sim.Time(47 * sim.Minute), Node: topology.NodeID{Cluster: 1, Index: 1}},
	}
	res := mustRun(t, opts)
	if res.Clusters[1].Rollbacks == 0 {
		t.Fatal("no rollback after GC")
	}
	// Run() fails if GC removed a needed checkpoint; reaching here with
	// zero invariant violations is the assertion.
	if v := res.Stats.CounterValue("invariant.rollback_target_missing"); v != 0 {
		t.Fatalf("invariant violations: %d", v)
	}
}

func TestNonDeterministicReplayStaysConsistent(t *testing.T) {
	opts := smallOptions(19)
	opts.Workload.Deterministic = false
	opts.Crashes = []federation.Crash{
		{At: sim.Time(20 * sim.Minute), Node: topology.NodeID{Cluster: 0, Index: 1}},
		{At: sim.Time(40 * sim.Minute), Node: topology.NodeID{Cluster: 1, Index: 2}},
	}
	res := mustRun(t, opts)
	// HC3I makes no PWD assumption: with a fresh post-rollback schedule
	// the run must still satisfy SN agreement and storage invariants
	// (message completeness is only checked for deterministic replay).
	if res.Failures != 2 {
		t.Fatalf("failures = %d", res.Failures)
	}
}

func TestMTBFDrivenFailures(t *testing.T) {
	opts := smallOptions(23)
	opts.Topology.MTBF = 20 * sim.Minute
	opts.MTBFFailures = true
	res := mustRun(t, opts)
	if res.Failures == 0 {
		t.Fatal("MTBF injection produced no failures")
	}
	var rollbacks uint64
	for _, c := range res.Clusters {
		rollbacks += c.Rollbacks
	}
	if rollbacks == 0 {
		t.Fatal("failures without rollbacks")
	}
}

func TestTransitiveModeRuns(t *testing.T) {
	fed := topology.Small(3, 2)
	wl := app.Pipeline(3, 300, 30, sim.Hour)
	wl.StateSize = 64 << 10
	opts := federation.Options{
		Topology:   fed,
		Workload:   wl,
		CLCPeriods: []sim.Duration{8 * sim.Minute, 8 * sim.Minute, 8 * sim.Minute},
		Transitive: true,
		Seed:       29,
	}
	res := mustRun(t, opts)
	for _, c := range res.Clusters {
		if c.Committed == 0 {
			t.Fatalf("cluster %d idle in transitive mode", c.Cluster)
		}
	}
}

func TestRingGCMatchesCentralizedOutcome(t *testing.T) {
	base := smallOptions(31)
	base.GCPeriod = 20 * sim.Minute
	centralized := mustRun(t, base)

	ring := smallOptions(31)
	ring.GCPeriod = 20 * sim.Minute
	ring.RingGC = true
	ringRes := mustRun(t, ring)

	if len(centralized.GCRounds) == 0 || len(ringRes.GCRounds) == 0 {
		t.Fatal("missing GC rounds")
	}
	// Same seed, same workload: both collectors must keep the store
	// equally tight (identical after-counts round by round).
	rounds := len(centralized.GCRounds)
	if len(ringRes.GCRounds) < rounds {
		rounds = len(ringRes.GCRounds)
	}
	for k := 0; k < rounds; k++ {
		for c := range centralized.GCRounds[k].After {
			ca, ra := centralized.GCRounds[k].After[c], ringRes.GCRounds[k].After[c]
			if ca != ra {
				t.Fatalf("round %d cluster %d: centralized kept %d, ring kept %d", k, c, ca, ra)
			}
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := federation.New(federation.Options{}); err == nil {
		t.Fatal("nil topology accepted")
	}
	fed := topology.Small(2, 2)
	if _, err := federation.New(federation.Options{Topology: fed}); err == nil {
		t.Fatal("nil workload accepted")
	}
	wl := app.Uniform(3, 1, 1, sim.Hour) // wrong cluster count
	if _, err := federation.New(federation.Options{Topology: fed, Workload: wl}); err == nil {
		t.Fatal("mismatched workload accepted")
	}
	wl2 := app.Uniform(2, 1, 1, sim.Hour)
	if _, err := federation.New(federation.Options{
		Topology: fed, Workload: wl2, CLCPeriods: []sim.Duration{sim.Minute},
	}); err == nil {
		t.Fatal("wrong CLCPeriods length accepted")
	}
}

func TestReplicationDegreeTwo(t *testing.T) {
	opts := smallOptions(37)
	opts.Replicas = 2
	opts.Crashes = []federation.Crash{
		{At: sim.Time(30 * sim.Minute), Node: topology.NodeID{Cluster: 0, Index: 3}},
	}
	res := mustRun(t, opts)
	if res.Clusters[0].Rollbacks == 0 {
		t.Fatal("no rollback with replication degree 2")
	}
}

var _ core.SN // keep the core import for documentation-typed helpers
