package federation_test

import (
	"testing"

	"repro/internal/app"
	"repro/internal/federation"
	"repro/internal/sim"
	"repro/internal/topology"
)

// TestWorkloadReuseAcrossRuns pins the rate-sum staleness regression:
// a sweep harness reuses one Workload value across points, editing
// RatesPerHour between runs. Options.fill freezes the workload per
// run, so the second run must see the edited rates — with the old
// sync.Once cache it silently replayed the first run's totals.
func TestWorkloadReuseAcrossRuns(t *testing.T) {
	wl := app.Uniform(2, 60, 6, sim.Hour)
	wl.StateSize = 64 << 10
	opts := func() federation.Options {
		return federation.Options{
			Topology:   topology.Small(2, 2),
			Workload:   wl,
			CLCPeriods: []sim.Duration{15 * sim.Minute, 15 * sim.Minute},
			Seed:       5,
		}
	}
	total := func(res *federation.Result) (n uint64) {
		for _, row := range res.AppMsgs {
			for _, v := range row {
				n += v
			}
		}
		return n
	}
	base := total(mustRun(t, opts()))
	if base == 0 {
		t.Fatal("baseline run sent no messages")
	}
	for i := range wl.RatesPerHour {
		for j := range wl.RatesPerHour[i] {
			wl.RatesPerHour[i][j] *= 10
		}
	}
	boosted := total(mustRun(t, opts()))
	if boosted < 5*base {
		t.Fatalf("rates x10 between runs produced %d messages vs baseline %d: stale rate sums", boosted, base)
	}
}
