// Package federation assembles complete simulated cluster federations:
// topology, network model, workload, failure injection and one protocol
// node per simulated node, all driven by the discrete event engine. It
// is the equivalent of the paper's C++SIM simulator main program, which
// combined a Nodes thread, a Network thread, a Timers thread and a
// Controller (§5.1).
package federation

import (
	"fmt"
	"io"
	"time"

	"repro/internal/app"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/netsim"
	"repro/internal/oracle"
	"repro/internal/sim"
	"repro/internal/topology"
)

// ProtocolNode is the protocol-agnostic surface the harness drives;
// core.Node implements it, and so do the baseline protocols.
type ProtocolNode interface {
	Start()
	Send(dst topology.NodeID, p core.AppPayload)
	OnMessage(src topology.NodeID, msg core.Msg)
	OnTimer(k core.TimerKind)
	OnFailureDetected(failed topology.NodeID)
	Fail()
	Restart()
	Failed() bool
	SN() core.SN
	StoredCount() int
}

// NodeFactory builds one protocol node; leaving Options.NodeFactory nil
// selects the HC3I protocol.
type NodeFactory func(cfg core.Config, env core.Env, hooks core.AppHooks) ProtocolNode

// Crash is an explicitly scheduled node failure.
type Crash struct {
	At   sim.Time
	Node topology.NodeID
}

// Options configures one simulation run. The three groups mirror the
// paper's three simulator input files: Topology (clusters, links,
// MTBF), Workload (application) and the timer values.
type Options struct {
	Topology *topology.Federation
	Workload *app.Workload

	// CLCPeriods is the per-cluster delay between unforced CLCs (the
	// paper's per-cluster timer); len must equal the cluster count.
	CLCPeriods []sim.Duration
	// GCPeriod is the garbage-collection period (sim.Forever = off).
	GCPeriod sim.Duration
	// GCMemoryThreshold makes nodes demand a collection once their
	// fault-tolerance memory exceeds this many bytes (0 = off).
	GCMemoryThreshold uint64
	// RingGC selects the distributed GC variant.
	RingGC bool
	// Transitive enables full-DDV piggybacking.
	Transitive bool
	// DenseWire selects the dense DDV wire encoding instead of the
	// default delta form (see core/delta.go). Both are priced
	// identically and produce identical results; dense is the reference
	// for differential tests and width-scaling benchmarks.
	DenseWire bool
	// UnbatchedWire schedules every network delivery as its own event
	// instead of the default batched pipe deliveries (see
	// netsim.DisableBatching). Purely a scheduling-mechanics switch —
	// results are byte-identical either way; the unbatched form is the
	// reference for the batching differential suites.
	UnbatchedWire bool
	// Replicas is the stable-storage replication degree (default 1,
	// capped at cluster size - 1). -1 disables replication entirely
	// (measurement runs only: crashes then lose state).
	Replicas int

	// Seed drives all randomness; identical options + seed => identical run.
	Seed uint64

	// TraceWriter/TraceLevel enable the simulator's trace output.
	TraceWriter io.Writer
	TraceLevel  sim.TraceLevel

	// Crashes schedules explicit failures; MTBFFailures additionally
	// draws failures from the topology's MTBF.
	Crashes        []Crash
	MTBFFailures   bool
	DetectionDelay sim.Duration

	// NodeFactory overrides the protocol under test (baselines).
	NodeFactory NodeFactory

	// MaxEvents aborts runaway simulations (0 = a generous default).
	MaxEvents uint64

	// Watchdog, when > 0, bounds the run's wall-clock time: a timer
	// interrupts the event engine(s) after this long and the run
	// returns an error wrapping sim.ErrInterrupted instead of stalling
	// its caller. Long-running sweep harnesses (the soak service,
	// hc3ibench -run-timeout) use it to record a wedged run and move
	// on. Purely a harness guard: a run that finishes in time is
	// byte-identical with and without it.
	Watchdog time.Duration

	// Oracle attaches the online protocol invariant checker
	// (internal/oracle) to the run: every commit, rollback, delivery
	// and GC drop is checked against the paper's global safety
	// properties, and the first violation aborts the run with a
	// diagnostic. Pure observation — results are byte-identical with
	// and without it.
	Oracle bool

	// Chaos layers the seeded adversarial scheduler (internal/chaos)
	// over the network: bounded inter-cluster reordering, duplicate
	// deliveries and crash injection targeted at protocol-sensitive
	// windows, all replayable from Chaos.Seed. Incompatible with
	// delta-encoded transitive piggybacks (duplicates would desync the
	// pipe codecs); combine with DenseWire for transitive chaos runs.
	Chaos *chaos.Config

	// LinkTrace replays a measured (latency, jitter, loss) schedule
	// over every inter-cluster link (see netsim.TracePerturber). The
	// topology's inter links must declare the trace's minimum latency
	// as their static latency; the perturber adds the surplus. Draws
	// come from per-pipe streams keyed by the run seed, so sequential,
	// sharded, batched and unbatched runs are byte-identical. Mutually
	// exclusive with Chaos (both claim the network's perturbation
	// hook).
	LinkTrace *netsim.LinkTrace

	// Arena, when non-nil, supplies pooled per-run scratch (the event
	// engine); sweep harnesses share one arena across their runs and
	// call Fed.Release after collecting each Result. Nil means every
	// run allocates fresh — results are identical either way.
	Arena *Arena

	// Shards requests conservative-window parallel execution: the
	// clusters are partitioned across this many event engines which
	// advance in lockstep windows of the minimum cross-shard link
	// latency (see RunSharded and internal/sim/parallel). <= 1 runs
	// the single-engine reference. Only RunSharded consults it — New
	// and Fed.Run always build the sequential simulation.
	Shards int
}

func (o *Options) fill() error {
	if o.Topology == nil {
		return fmt.Errorf("federation: nil topology")
	}
	if err := o.Topology.Validate(); err != nil {
		return err
	}
	if o.Workload == nil {
		return fmt.Errorf("federation: nil workload")
	}
	if err := o.Workload.Validate(o.Topology); err != nil {
		return err
	}
	// Rebuild the workload's cached rate sums: sweep harnesses reuse
	// one Workload across points while editing RatesPerHour, and a
	// stale cache would silently missize every node.
	o.Workload.Freeze()
	if o.LinkTrace != nil {
		if o.Chaos != nil {
			return fmt.Errorf("federation: LinkTrace and Chaos both claim the network perturbation hook; run them separately")
		}
		if o.Transitive && !o.DenseWire {
			return fmt.Errorf("federation: trace-driven links cannot run on delta-encoded transitive piggybacks (reordered exits would desync the pipe codecs); set DenseWire")
		}
	}
	n := o.Topology.NumClusters()
	if o.CLCPeriods == nil {
		o.CLCPeriods = make([]sim.Duration, n)
		for i := range o.CLCPeriods {
			o.CLCPeriods[i] = 30 * sim.Minute
		}
	}
	if len(o.CLCPeriods) != n {
		return fmt.Errorf("federation: %d CLC periods for %d clusters", len(o.CLCPeriods), n)
	}
	if o.GCPeriod == 0 {
		o.GCPeriod = sim.Forever
	}
	if o.Replicas == 0 {
		o.Replicas = 1
	}
	if o.Replicas < 0 {
		o.Replicas = 0
	}
	if o.DetectionDelay == 0 {
		o.DetectionDelay = 2 * sim.Second
	}
	if o.MaxEvents == 0 {
		o.MaxEvents = 200_000_000
	}
	return nil
}

// Fed is one assembled simulation. Per-node state lives in flat slices
// indexed by the topology's dense node ordinal — NodeID-keyed maps put
// struct hashing on every delivery and timer operation.
type Fed struct {
	opts    Options
	engine  *sim.Engine
	stats   *sim.Stats
	tracer  *sim.Tracer
	net     *netsim.Network
	ix      topology.NodeIndex
	nodes   []ProtocolNode
	apps    []*app.NodeApp
	senders []*appSender   // bound once; closure-free send scheduling
	timers  []*sim.Timer   // core.NumTimerKinds per node: [kinds*ord+kind]
	pending []sim.EventRef // next app send event per node
	inject  *failure.Injector
	boxes   msgBoxes

	// piggyCodecs, when non-nil, holds the delta codec of each directed
	// cluster-pair pipe (slot src*nClusters+dst), allocated lazily per
	// pipe actually used — w^2 pointer slots but only O(active pipes)
	// vectors. Enabled for transitive runs on the delta wire; the
	// codecs conceptually live in the cluster gateways (the pipes
	// netsim serializes inter-cluster traffic through), which is why
	// node crashes do not reset them.
	piggyCodecs []*core.DeltaCodec
	nClusters   int

	// oracle, when non-nil, is the run's invariant checker; chaosSched
	// the adversarial scheduler. Both are nil on plain runs.
	oracle     *oracle.Oracle
	chaosSched *chaos.Scheduler

	// role, when non-nil, marks this Fed as one shard of a sharded run
	// (see shard.go): only the owned clusters' nodes exist, cross-shard
	// traffic detours through the runner's outboxes, and oracle
	// observations are journaled into shardObs for barrier replay
	// instead of checked inline. lostLog journals OnLost observations
	// the runner later replays into the merged stats in global order.
	role     *shardRole
	shardObs *shardObs
	lostLog  []lostRec
}

// msgBoxes recycles the wire-message boxes of the per-message protocol
// hot path (core.BoxPool). A box is acquired by the sending node,
// travels through the event queue, and is reclaimed right after the
// destination's OnMessage returns — the protocol copies anything it
// keeps. Boxes dropped by the network (down destinations) simply fall
// back to the garbage collector.
type msgBoxes struct {
	appMsgs []*core.AppMsg
	appAcks []*core.AppAck
}

// appSender is the pre-bound argument for the closure-free application
// send path: one boxed pointer per node, created at assembly, so
// scheduling a send allocates neither a closure nor an interface box.
type appSender struct {
	f   *Fed
	ord int
}

// fireSendCall is the package-level trampoline handed to
// Engine.ScheduleCall for application sends.
func fireSendCall(arg any) {
	s := arg.(*appSender)
	s.f.fireSend(s.ord)
}

// New assembles a federation simulation.
func New(opts Options) (*Fed, error) { return newFed(opts, nil) }

// newFed assembles either the whole federation (role == nil) or one
// shard of a sharded run. A shard walks the exact same assembly order —
// in particular it derives every node's RNG stream, since deriving a
// stream advances the root RNG — but only instantiates nodes of the
// clusters it owns.
func newFed(opts Options, role *shardRole) (*Fed, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	owned := func(c topology.ClusterID) bool { return role == nil || role.owns[c] }
	ix := opts.Topology.Index()
	nodeCount := ix.Len()
	nc := opts.Topology.NumClusters()
	f := &Fed{
		opts:   opts,
		engine: opts.Arena.engine(),
		// The counter cardinality is dominated by the network's
		// per-(event, kind, cluster-pair) counters plus a fixed
		// protocol set. Pairs register lazily on first traffic, and
		// every workload in the repertoire has bounded per-cluster
		// fan-out, so size linearly in nc — a quadratic presize
		// would memclr millions of map slots per federation at 1024c.
		stats:     sim.NewStatsHint(64 + 96*nc),
		ix:        ix,
		nodes:     make([]ProtocolNode, nodeCount),
		apps:      make([]*app.NodeApp, nodeCount),
		senders:   make([]*appSender, nodeCount),
		timers:    make([]*sim.Timer, int(core.NumTimerKinds)*nodeCount),
		pending:   make([]sim.EventRef, nodeCount),
		nClusters: nc,
		role:      role,
	}
	f.engine.MaxEvents = opts.MaxEvents
	if opts.TraceWriter != nil {
		f.tracer = sim.NewTracer(f.engine, opts.TraceWriter, opts.TraceLevel)
	}
	f.net = netsim.New(f.engine, opts.Topology, f.stats, f.tracer)
	if opts.UnbatchedWire {
		f.net.DisableBatching()
	}
	if opts.Transitive && !opts.DenseWire {
		if opts.Chaos != nil {
			return nil, fmt.Errorf("federation: chaos scheduling cannot run on delta-encoded transitive piggybacks (duplicate deliveries would desync the pipe codecs); set DenseWire")
		}
		f.piggyCodecs = make([]*core.DeltaCodec, nc*nc)
		f.net.PipeExit = f.pipeExit
	}
	if opts.Oracle {
		if role != nil {
			// A shard journals its observations; the runner replays the
			// merged journal into one real oracle at every barrier.
			f.shardObs = &shardObs{f: f}
		} else {
			f.oracle = oracle.New(nc)
			f.oracle.Clock = f.engine.Now
			// Fail fast: the first violation stops the event loop, so the
			// run aborts at the offending event instead of compounding.
			f.oracle.OnFirstViolation = f.engine.Stop
		}
	}

	root := sim.NewRNG(opts.Seed)
	fed := opts.Topology
	sizes := make([]int, fed.NumClusters())
	for i, c := range fed.Clusters {
		sizes[i] = c.Nodes
	}

	nodeSeq := 0
	for _, id := range fed.AllNodes() {
		// Derive the node's application stream whether or not this shard
		// owns it: derivation advances the root RNG, and every node must
		// receive exactly the stream a sequential run hands it.
		appRNG := root.StreamN("app", nodeSeq)
		nodeSeq++
		if !owned(id.Cluster) {
			continue
		}
		ord := ix.Ord(id)
		repl := opts.Replicas
		if repl > sizes[id.Cluster]-1 {
			repl = sizes[id.Cluster] - 1
		}
		cfg := core.Config{
			ID:                id,
			Clusters:          fed.NumClusters(),
			ClusterSizes:      sizes,
			CLCPeriod:         opts.CLCPeriods[id.Cluster],
			GCPeriod:          opts.GCPeriod,
			GCInitiator:       id.Cluster == 0 && id.Index == 0,
			GCMemoryThreshold: opts.GCMemoryThreshold,
			RingGC:            opts.RingGC,
			Transitive:        opts.Transitive,
			Replicas:          repl,
			DenseWire:         opts.DenseWire,
		}
		var env core.Env = &nodeEnv{f: f, id: id, ord: ord, idStr: id.String()}
		if f.oracle != nil {
			// The observer variant: same env, plus the promoted
			// core.Observer methods of the oracle.
			env = &obsEnv{nodeEnv{f: f, id: id, ord: ord, idStr: id.String()}, f.oracle}
		} else if f.shardObs != nil {
			env = &shardObsEnv{nodeEnv{f: f, id: id, ord: ord, idStr: id.String()}, f.shardObs}
		}
		na := app.NewNodeApp(id, opts.Workload, fed, appRNG)
		na.Now = f.engine.Now
		na.Restored = func() { f.scheduleNextSend(ord) }
		if role != nil {
			// Journal instead of observing: Welford's running mean is
			// order-sensitive, so the runner replays the merged journal
			// in global (time, shard) order for byte-identical output.
			na.OnLost = func(d sim.Duration) {
				f.lostLog = append(f.lostLog, lostRec{at: f.engine.Now(), seconds: d.Seconds()})
			}
		} else {
			na.OnLost = func(d sim.Duration) {
				f.stats.Summary("app.lost_work_seconds").Observe(d.Seconds())
			}
		}
		f.apps[ord] = na
		f.senders[ord] = &appSender{f: f, ord: ord}

		var pn ProtocolNode
		if opts.NodeFactory != nil {
			pn = opts.NodeFactory(cfg, env, na)
		} else {
			pn = core.NewNode(cfg, env, na)
		}
		f.nodes[ord] = pn
		f.net.Register(id, func(m netsim.Message) {
			msg := m.Payload.(core.Msg)
			pn.OnMessage(m.Src, msg)
			f.boxes.reclaim(msg, owned(m.Src.Cluster))
		})
	}

	// Pre-distribute initial checkpoints to stable storage (HC3I only;
	// replica targets are intra-cluster, so a shard never reaches into
	// nodes it does not own).
	for _, id := range fed.AllNodes() {
		if !owned(id.Cluster) {
			continue
		}
		if hn, ok := f.nodes[ix.Ord(id)].(*core.Node); ok {
			for _, tgt := range hn.ReplicaTargets() {
				f.nodes[ix.Ord(tgt)].(*core.Node).SeedReplica(hn.InitialReplica())
			}
		}
	}

	f.inject = failure.NewInjector(f.engine, fed, root.Stream("failures"), failure.Hooks{
		Crash:  f.crash,
		Detect: f.detect,
	})
	f.inject.DetectionDelay = opts.DetectionDelay
	for _, c := range opts.Crashes {
		if !owned(c.Node.Cluster) {
			continue
		}
		f.inject.CrashAt(c.At, c.Node)
	}
	if opts.MTBFFailures {
		f.inject.EnableMTBF()
	}
	// Deriving a stream advances the root RNG, so the "net" stream
	// (per-message jitter on links with a Jitter bound) must be the
	// last derivation: every pre-existing stream then draws exactly the
	// seeds it always did, keeping historical runs byte-identical.
	f.net.SetRNG(root.Stream("net"))
	if role != nil {
		// Shards must draw per-message jitter identically however the
		// clusters are partitioned, so jittered links switch from the
		// shared sequential stream to slot-keyed streams derived from
		// the run seed. Jitter-free topologies (all goldens) never draw
		// from either, which is what keeps sharded goldens byte-equal.
		f.net.SetSlotJitter(opts.Seed)
	}
	if opts.Chaos != nil {
		// The chaos stream is deliberately independent of the run's
		// root RNG: (chaos options, chaos seed) alone replays the
		// adversarial schedule, whatever the workload seed did.
		cc := *opts.Chaos
		if cc.Seed == 0 {
			cc.Seed = opts.Seed
		}
		chaosRNG := sim.NewRNG(cc.Seed).Stream("chaos")
		crashAt := f.inject.CrashAt
		if role != nil {
			// Each shard perturbs only the traffic it routes, so it
			// needs its own scheduler stream; a sharded chaos run is
			// deterministic for a given (seed, shard count) but is a
			// different adversarial schedule than the sequential one.
			chaosRNG = sim.NewRNG(cc.Seed).StreamN("chaos-shard", role.idx)
			// Every sharded chaos crash defers to the window barrier —
			// owned victims too — so the runner can apply the crash
			// cooldown globally in (time, shard) order. Per-shard
			// schedulers each keep their own cooldown, and two shards
			// arming fuses in the same window would otherwise crash two
			// clusters at once, outside the one-fault-at-a-time model
			// the recovery protocol assumes.
			crashAt = func(at sim.Time, id topology.NodeID) {
				role.deferCrash(at, id)
			}
		}
		f.chaosSched = chaos.New(cc, chaosRNG, chaos.Hooks{
			Now:     f.engine.Now,
			CrashAt: crashAt,
		})
		f.net.Perturb = f.chaosSched
	}
	if opts.LinkTrace != nil {
		// The trace perturber draws from per-pipe streams keyed by the
		// run seed alone — every shard passes the same seed, and a
		// pipe's traffic originates wholly on the shard owning its
		// source cluster, so sequential and sharded runs replay the
		// same schedule. fill() already rejected the Chaos combination.
		tp := netsim.NewTracePerturber(opts.LinkTrace, opts.Topology, opts.Seed, f.engine.Now)
		tp.Retransmits = f.stats.Counter("net.trace.retransmits")
		f.net.Perturb = tp
	}
	return f, nil
}

// Oracle exposes the run's invariant checker (nil unless
// Options.Oracle).
func (f *Fed) Oracle() *oracle.Oracle { return f.oracle }

// ChaosOps reports how many perturbation actions the run's adversarial
// schedule applied (0 without Options.Chaos). Valid whether the run
// finished cleanly or aborted on a violation — the failure minimizer
// reads it off a failing run to bound its prefix search.
func (f *Fed) ChaosOps() int {
	if f.chaosSched == nil {
		return 0
	}
	return f.chaosSched.Ops()
}

// obsEnv is the node environment of oracle-checked runs: the plain
// nodeEnv plus the oracle's promoted core.Observer methods, so the
// protocol's env type assertion enables observation exactly when an
// oracle is attached.
type obsEnv struct {
	nodeEnv
	*oracle.Oracle
}

// Engine exposes the underlying event engine (tests, tools).
func (f *Fed) Engine() *sim.Engine { return f.engine }

// Stats exposes the statistics registry.
func (f *Fed) Stats() *sim.Stats { return f.stats }

// Node returns the protocol node with the given identity.
func (f *Fed) Node(id topology.NodeID) ProtocolNode { return f.nodes[f.ix.Ord(id)] }

// App returns the simulated application of one node.
func (f *Fed) App(id topology.NodeID) *app.NodeApp { return f.apps[f.ix.Ord(id)] }

// reclaim returns a pooled wire-message box after its delivery was
// dispatched. Zeroing drops payload references so the pool retains no
// dead application data. senderLocal reports whether the sending node
// lives on this shard: protocol-owned boxes return to the *sender's*
// free list, so a cross-shard delivery must not reclaim — the sender's
// shard may be touching that list concurrently. Those boxes are left
// to the GC; in single-engine runs every sender is local and pooling
// is unchanged.
func (b *msgBoxes) reclaim(msg core.Msg, senderLocal bool) {
	switch m := msg.(type) {
	case *core.AppMsg:
		*m = core.AppMsg{}
		b.appMsgs = append(b.appMsgs, m)
	case *core.AppAck:
		*m = core.AppAck{}
		b.appAcks = append(b.appAcks, m)
	case core.ReclaimableMsg:
		// Protocol-owned boxes (baseline wire messages) return to the
		// free list of the node that sent them.
		if senderLocal {
			m.ReclaimMsgBox()
		}
	}
}

// piggyCodec returns (allocating on first use) the delta codec of the
// directed pipe src→dst, or nil when the run transports piggybacks
// dense.
func (f *Fed) piggyCodec(src, dst topology.ClusterID) *core.DeltaCodec {
	if f.piggyCodecs == nil {
		return nil
	}
	slot := int(src)*f.nClusters + int(dst)
	cd := f.piggyCodecs[slot]
	if cd == nil {
		cd = new(core.DeltaCodec)
		cd.Init(f.nClusters)
		f.piggyCodecs[slot] = cd
	}
	return cd
}

// pipeExit is the netsim.PipeExit hook: it advances the pipe's decoder
// for every delta-piggybacked message leaving the pipe, in FIFO order,
// whether or not the destination node is still up — which keeps the
// decoder in lockstep with the encoder across node failures.
func (f *Fed) pipeExit(src, dst topology.NodeID, payload any) {
	var pairs []core.DDVPair
	width := int32(0)
	switch m := payload.(type) {
	case *core.AppMsg:
		pairs, width = m.PiggyPairs, m.PiggyWidth
	case core.AppMsg:
		pairs, width = m.PiggyPairs, m.PiggyWidth
	default:
		return
	}
	if len(pairs) == 0 && ((f.oracle == nil && f.shardObs == nil) || width == 0) {
		// Dense piggybacks (resends) and empty deltas advance nothing;
		// an oracle additionally checks the lockstep of empty deltas
		// below (the decoder must already hold the message's vector).
		return
	}
	cd := f.piggyCodec(src.Cluster, dst.Cluster)
	if len(pairs) > 0 {
		cd.Decode(pairs)
	}
	if f.oracle != nil && width > 0 {
		f.oracle.CheckPipeExit(src.Cluster, dst.Cluster, cd.Current())
	} else if f.shardObs != nil && width > 0 {
		f.shardObs.pipeExit(src.Cluster, dst.Cluster, cd.Current())
	}
}

// nodeEnv adapts the federation to core.Env for one node. It also
// implements core.BoxPool, handing the protocol recycled message boxes
// so the steady-state send path performs no interface-boxing allocation,
// and core.PiggyCodecs, exposing the per-pipe delta codecs.
type nodeEnv struct {
	f     *Fed
	id    topology.NodeID
	ord   int
	idStr string // pre-rendered: tracing must not format when disabled
}

func (e *nodeEnv) Now() sim.Time { return e.f.engine.Now() }

func (e *nodeEnv) Send(dst topology.NodeID, size int, msg core.Msg) {
	e.f.net.Send(e.id, dst, netsim.KindProto, size, msg)
}

func (e *nodeEnv) SendApp(dst topology.NodeID, size int, msg core.Msg) {
	e.f.net.Send(e.id, dst, netsim.KindApp, size, msg)
}

func (e *nodeEnv) AppMsgBox() *core.AppMsg {
	b := &e.f.boxes
	if last := len(b.appMsgs) - 1; last >= 0 {
		m := b.appMsgs[last]
		b.appMsgs = b.appMsgs[:last]
		return m
	}
	return new(core.AppMsg)
}

func (e *nodeEnv) PiggyCodec(src, dst topology.ClusterID) *core.DeltaCodec {
	return e.f.piggyCodec(src, dst)
}

func (e *nodeEnv) ResetPiggyExam(dst topology.ClusterID) {
	f := e.f
	if f.piggyCodecs == nil {
		return
	}
	for src := 0; src < f.nClusters; src++ {
		if cd := f.piggyCodecs[src*f.nClusters+int(dst)]; cd != nil {
			cd.ResetSeen()
		}
	}
}

func (e *nodeEnv) AppAckBox() *core.AppAck {
	b := &e.f.boxes
	if last := len(b.appAcks) - 1; last >= 0 {
		m := b.appAcks[last]
		b.appAcks = b.appAcks[:last]
		return m
	}
	return new(core.AppAck)
}

func (e *nodeEnv) SetTimer(k core.TimerKind, d sim.Duration) {
	if k < 0 || k >= core.NumTimerKinds {
		panic(fmt.Sprintf("federation: SetTimer with unknown TimerKind %d (extend core.NumTimerKinds)", k))
	}
	slot := int(core.NumTimerKinds)*e.ord + int(k)
	t := e.f.timers[slot]
	if t == nil {
		kind := k
		// Resolve the node at fire time: a protocol constructor may arm
		// its timers before the factory's return value is stored.
		t = sim.NewTimer(e.f.engine, func(*sim.Engine) {
			if n := e.f.nodes[e.ord]; !n.Failed() {
				n.OnTimer(kind)
			}
		})
		e.f.timers[slot] = t
	}
	t.Reset(d)
}

func (e *nodeEnv) Trace(level sim.TraceLevel, format string, args ...any) {
	e.f.tracer.Emit(level, e.idStr, format, args...)
}

func (e *nodeEnv) Stat(name string, delta uint64) {
	e.f.stats.Counter(name).Add(delta)
}

func (e *nodeEnv) StatSeries(name string, value float64) {
	e.f.stats.Series(name).Record(e.f.engine.Now(), value)
}

// ---- application driving ----

// scheduleNextSend (re)schedules the node's next application send.
func (f *Fed) scheduleNextSend(ord int) {
	f.pending[ord].Cancel()
	a := f.apps[ord]
	at, ok := a.NextSend()
	if !ok {
		f.pending[ord] = sim.EventRef{}
		return
	}
	when := a.SimTimeOf(at)
	if when < f.engine.Now() {
		when = f.engine.Now()
	}
	f.pending[ord] = f.engine.ScheduleCallAt(when, fireSendCall, f.senders[ord])
}

func (f *Fed) fireSend(ord int) {
	n := f.nodes[ord]
	if n.Failed() {
		// The node is down: its application makes no progress. The
		// restore path reschedules the send after recovery.
		f.pending[ord] = sim.EventRef{}
		return
	}
	dst, payload, ok := f.apps[ord].TakeSend()
	if ok {
		n.Send(dst, payload)
		f.stats.Counter("app.generated").Inc()
	}
	f.scheduleNextSend(ord)
}

// ---- failures ----

func (f *Fed) crash(id topology.NodeID) {
	n := f.nodes[f.ix.Ord(id)]
	if n.Failed() {
		return
	}
	f.stats.Counter("failures.injected").Inc()
	f.tracer.Infof(id.String(), "CRASH injected")
	n.Fail()
	f.net.SetDown(id, true)
}

func (f *Fed) detect(id topology.NodeID) {
	// Repair: the node restarts with empty memory and rejoins.
	f.net.SetDown(id, false)
	f.nodes[f.ix.Ord(id)].Restart()
	// The detector notifies the lowest-index surviving node (§3.4
	// leaves the detector abstract); it coordinates the rollback.
	coord := f.coordinatorFor(id)
	if coord == nil {
		f.stats.Counter("failures.unrecoverable").Inc()
		return
	}
	coord.OnFailureDetected(id)
}

func (f *Fed) coordinatorFor(failed topology.NodeID) ProtocolNode {
	for i := 0; i < f.opts.Topology.Clusters[failed.Cluster].Nodes; i++ {
		id := topology.NodeID{Cluster: failed.Cluster, Index: i}
		if id == failed {
			continue
		}
		if n := f.nodes[f.ix.Ord(id)]; !n.Failed() {
			return n
		}
	}
	return nil
}
