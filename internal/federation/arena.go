package federation

import (
	"sync"

	"repro/internal/sim"
)

// Arena pools the per-run scratch structures a federation simulation
// rebuilds from zero otherwise — today the event engine, whose slab and
// heap are the largest single allocation of a run. A sweep harness
// creates one arena and threads it through every federation it
// launches (Options.Arena); each worker's runs then recycle warmed-up
// buffers instead of growing fresh ones per sweep point.
//
// Pooling never leaks state between runs: Fed.Release hands the engine
// back only after Engine.Reset wiped the clock, queue and generation
// stamps, and nothing else of a Fed is pooled (sim.Stats escapes into
// Result, so it is always fresh). Results are therefore byte-identical
// with and without an arena — the determinism suite pins this.
type Arena struct {
	mu      sync.Mutex
	engines []*sim.Engine
}

// NewArena returns an empty arena. The zero value is NOT usable; a nil
// *Arena is (every method no-ops or allocates fresh).
func NewArena() *Arena { return &Arena{} }

// engine takes a reset engine from the pool, or builds a fresh one.
func (a *Arena) engine() *sim.Engine {
	if a == nil {
		return sim.NewEngine()
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if last := len(a.engines) - 1; last >= 0 {
		e := a.engines[last]
		a.engines[last] = nil
		a.engines = a.engines[:last]
		return e
	}
	return sim.NewEngine()
}

// release resets an engine and returns it to the pool.
func (a *Arena) release(e *sim.Engine) {
	if a == nil || e == nil {
		return
	}
	e.Reset()
	a.mu.Lock()
	a.engines = append(a.engines, e)
	a.mu.Unlock()
}

// Release returns the federation's pooled scratch to its arena. Call it
// once the run's Result has been collected; the Fed must not be driven
// afterwards (its engine may already be serving another run). Without
// an arena it is a no-op.
func (f *Fed) Release() {
	if f.opts.Arena == nil {
		return
	}
	f.opts.Arena.release(f.engine)
	f.engine = nil
}
