package runtime

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/topology"
)

// wait gives the asynchronous live federation time to settle, then
// barriers through every event loop.
func settle(f *Live, d time.Duration) {
	time.Sleep(d)
	f.Quiesce()
}

func node(c, i int) topology.NodeID {
	return topology.NodeID{Cluster: topology.ClusterID(c), Index: i}
}

func startLive(t *testing.T, cfg Config) *Live {
	t.Helper()
	f, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestLiveUnforcedCheckpoints(t *testing.T) {
	f := startLive(t, Config{
		Clusters:   []int{3, 3},
		CLCPeriods: []time.Duration{30 * time.Millisecond, 30 * time.Millisecond},
	})
	settle(f, 200*time.Millisecond)
	f.Stop()

	if v := f.Stat("clc.committed.c0"); v < 3 {
		t.Fatalf("cluster 0 committed %d CLCs in 200ms at 30ms period", v)
	}
	// SN agreement inside each cluster.
	for c := 0; c < 2; c++ {
		sn := f.NodeSN(node(c, 0))
		for i := 1; i < 3; i++ {
			if got := f.NodeSN(node(c, i)); got != sn {
				t.Fatalf("cluster %d SN disagreement: %d vs %d", c, got, sn)
			}
		}
	}
}

func TestLiveForcedCheckpointOnInterClusterMessage(t *testing.T) {
	f := startLive(t, Config{
		Clusters:   []int{2, 2},
		CLCPeriods: []time.Duration{time.Hour, time.Hour}, // effectively never
	})
	// First contact piggybacks SN 1 > 0: cluster 1 must force a CLC
	// before delivery, exactly like m1 in the paper's sample.
	f.SendApp(node(0, 1), node(1, 1), 128)
	settle(f, 150*time.Millisecond)
	f.Stop()

	if v := f.Stat("clc.committed.c1.forced"); v != 1 {
		t.Fatalf("forced CLCs in cluster 1 = %d, want 1", v)
	}
	if got := f.DeliveredCount(node(1, 1)); got != 1 {
		t.Fatalf("delivered = %d", got)
	}
	if sn := f.NodeSN(node(1, 0)); sn != 2 {
		t.Fatalf("cluster 1 SN = %d, want 2", sn)
	}
}

func TestLiveCrashRecovery(t *testing.T) {
	f := startLive(t, Config{
		Clusters:   []int{3, 2},
		CLCPeriods: []time.Duration{40 * time.Millisecond, time.Hour},
	})
	// Let a couple of checkpoints commit, then crash a node.
	settle(f, 150*time.Millisecond)
	victim := node(0, 2)
	f.Crash(victim)
	time.Sleep(30 * time.Millisecond)
	if err := f.Recover(victim); err != nil {
		t.Fatal(err)
	}
	settle(f, 300*time.Millisecond)
	f.Stop()

	if v := f.Stat("rollback.count.c0"); v == 0 {
		t.Fatal("no rollback after crash")
	}
	if v := f.Stat("storage.recovered_states"); v == 0 {
		t.Fatal("crashed node did not recover its state from the neighbour")
	}
	if v := f.Stat("invariant.rollback_target_missing"); v != 0 {
		t.Fatalf("invariant violations: %d", v)
	}
	// The cluster converged on one SN again.
	sn := f.NodeSN(node(0, 0))
	for i := 1; i < 3; i++ {
		if got := f.NodeSN(node(0, i)); got != sn {
			t.Fatalf("post-recovery SN disagreement: %d vs %d", got, sn)
		}
	}
}

func TestLiveGarbageCollection(t *testing.T) {
	f := startLive(t, Config{
		Clusters:   []int{2, 2},
		CLCPeriods: []time.Duration{25 * time.Millisecond, 25 * time.Millisecond},
		GCPeriod:   120 * time.Millisecond,
	})
	settle(f, 400*time.Millisecond)
	f.Stop()

	if v := f.Stat("gc.rounds_completed"); v == 0 {
		t.Fatal("no GC rounds completed")
	}
	for c := 0; c < 2; c++ {
		for i := 0; i < 2; i++ {
			if got := f.NodeStored(node(c, i)); got > 6 {
				t.Fatalf("node %v stores %d CLCs despite GC", node(c, i), got)
			}
		}
	}
}

func TestLiveMessageDeliveryAndResend(t *testing.T) {
	f := startLive(t, Config{
		Clusters:   []int{2, 2},
		CLCPeriods: []time.Duration{30 * time.Millisecond, time.Hour},
	})
	// Traffic in both directions around a crash in the receiving
	// cluster: the sender's log must repair anything the rollback
	// drops.
	for k := 0; k < 5; k++ {
		f.SendApp(node(0, 0), node(1, 1), 64)
		time.Sleep(10 * time.Millisecond)
	}
	f.Crash(node(1, 0))
	time.Sleep(20 * time.Millisecond)
	if err := f.Recover(node(1, 0)); err != nil {
		t.Fatal(err)
	}
	settle(f, 300*time.Millisecond)
	f.Stop()

	// Every message sent by c0n0 must be delivered at c1n1 (resends
	// may duplicate, never lose).
	for seq := uint64(1); seq <= 5; seq++ {
		lid := core.LogicalID{Src: node(0, 0), Seq: seq}
		if f.Delivered(node(1, 1), lid) == 0 {
			t.Fatalf("message %v lost across crash", lid)
		}
	}
}

func TestLiveOverTCPTransport(t *testing.T) {
	f := startLive(t, Config{
		Clusters:   []int{2, 2},
		CLCPeriods: []time.Duration{40 * time.Millisecond, time.Hour},
		Transport:  NewTCPTransport(),
	})
	f.SendApp(node(0, 0), node(1, 0), 256)
	f.SendApp(node(1, 1), node(0, 1), 256)
	settle(f, 250*time.Millisecond)
	f.Stop()

	if v := f.Stat("clc.committed.c0"); v == 0 {
		t.Fatal("no checkpoints over TCP")
	}
	if v := f.Stat("clc.committed.c1.forced"); v == 0 {
		t.Fatal("no forced checkpoint over TCP")
	}
	if got := f.DeliveredCount(node(1, 0)); got != 1 {
		t.Fatalf("TCP delivery count = %d", got)
	}
}

func TestLiveTCPCrashRecovery(t *testing.T) {
	f := startLive(t, Config{
		Clusters:   []int{3},
		CLCPeriods: []time.Duration{30 * time.Millisecond},
		Transport:  NewTCPTransport(),
	})
	settle(f, 120*time.Millisecond)
	f.Crash(node(0, 1))
	time.Sleep(20 * time.Millisecond)
	if err := f.Recover(node(0, 1)); err != nil {
		t.Fatal(err)
	}
	settle(f, 300*time.Millisecond)
	f.Stop()

	if v := f.Stat("storage.recovered_states"); v == 0 {
		t.Fatal("no state recovery over TCP")
	}
	sn := f.NodeSN(node(0, 0))
	for i := 1; i < 3; i++ {
		if got := f.NodeSN(node(0, i)); got != sn {
			t.Fatalf("TCP post-recovery SN disagreement: %d vs %d", got, sn)
		}
	}
}

func TestLiveStartValidation(t *testing.T) {
	if _, err := Start(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestLiveWorkloadDriver(t *testing.T) {
	f := startLive(t, Config{
		Clusters:   []int{3, 3},
		CLCPeriods: []time.Duration{40 * time.Millisecond, 40 * time.Millisecond},
		Workload:   &Workload{Period: 5 * time.Millisecond, InterProb: 0.2, Size: 128},
	})
	settle(f, 300*time.Millisecond)
	f.Stop()

	// The driver generated both intra- and inter-cluster traffic: the
	// latter shows up as forced CLCs and acked log entries.
	delivered := 0
	for c := 0; c < 2; c++ {
		for i := 0; i < 3; i++ {
			delivered += f.DeliveredCount(node(c, i))
		}
	}
	if delivered < 20 {
		t.Fatalf("workload generated only %d deliveries", delivered)
	}
	if f.Stat("log.appended") == 0 {
		t.Fatal("no inter-cluster sends logged")
	}
	if f.Stat("clc.committed.c0.forced")+f.Stat("clc.committed.c1.forced") == 0 {
		t.Fatal("no forced CLCs from workload traffic")
	}
}

func TestLiveWorkloadSurvivesCrash(t *testing.T) {
	f := startLive(t, Config{
		Clusters:   []int{3, 2},
		CLCPeriods: []time.Duration{30 * time.Millisecond, 30 * time.Millisecond},
		Workload:   &Workload{Period: 4 * time.Millisecond, InterProb: 0.3, Size: 64},
	})
	time.Sleep(120 * time.Millisecond)
	f.Crash(node(0, 1))
	time.Sleep(30 * time.Millisecond)
	if err := f.Recover(node(0, 1)); err != nil {
		t.Fatal(err)
	}
	settle(f, 300*time.Millisecond)
	f.Stop()

	if f.Stat("rollback.count.c0") == 0 {
		t.Fatal("no rollback under live workload")
	}
	if f.Stat("invariant.rollback_target_missing") != 0 {
		t.Fatal("invariant violation under live workload")
	}
	sn := f.NodeSN(node(0, 0))
	for i := 1; i < 3; i++ {
		if got := f.NodeSN(node(0, i)); got != sn {
			t.Fatalf("SN disagreement after crash under load: %d vs %d", got, sn)
		}
	}
}
