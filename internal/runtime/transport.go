// Package runtime executes the HC3I protocol live: one goroutine per
// federation node, real wall-clock timers and a pluggable transport
// (in-process channels or TCP with gob encoding). It drives exactly
// the same core.Node state machine as the discrete event simulator —
// none of the protocol logic is simulation-specific — and exists to
// validate the protocol under genuine concurrency and a real network
// stack ("We need to implement the protocol on a real system to
// validate it", §7).
//
// A federation can span OS processes: every node runs in the process
// that Registers it, the TCP transport carries traffic between
// processes from a static address map (see TCPConfig.Addrs and
// cmd/hc3id), and crashed daemons rejoin by announcing themselves
// (Hello) so a surviving peer can trigger the protocol's failure
// handling.
package runtime

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/topology"
)

// Envelope is one message on the wire.
type Envelope struct {
	Src topology.NodeID
	Dst topology.NodeID
	Msg core.Msg
}

// Hello is the runtime-level rejoin announcement: a node that boots
// with lost state (a restarted daemon) broadcasts it to its cluster so
// a surviving peer can run the failure detector against it. It is not
// a protocol message — the live runtime intercepts it before core.
type Hello struct {
	From topology.NodeID
	// LostState marks a crash-recovery boot (the sender waits for its
	// cluster's RollbackCmd); false is a plain liveness announcement.
	LostState bool
}

// ProtocolMessage lets Hello travel in an Envelope.
func (Hello) ProtocolMessage() {}

// Transport moves envelopes between live nodes. Deliveries for one
// (src, dst) pair must stay FIFO while the pair's connection lasts;
// after a disconnect, FIFO holds per reconnect epoch.
type Transport interface {
	// Register installs the delivery callback for a node hosted in
	// this process; must be called for every local node before Start.
	Register(id topology.NodeID, deliver func(Envelope)) error
	// Send transmits an envelope (asynchronously). An error reports a
	// message that was definitely not sent (unknown destination, full
	// queue); nil means "accepted", not "delivered".
	Send(env Envelope) error
	// SetDown cuts a node off (fail-stop): traffic from and to it is
	// dropped.
	SetDown(id topology.NodeID, down bool)
	// Close releases transport resources.
	Close() error
}

func init() {
	// The TCP transport serializes core messages with encoding/gob.
	gob.Register(core.AppMsg{})
	gob.Register(core.AppAck{})
	gob.Register(core.CLCRequest{})
	gob.Register(core.CLCAck{})
	gob.Register(core.CLCCommit{})
	gob.Register(core.ForceCLC{})
	gob.Register(core.Replica{})
	gob.Register(core.ReplicaAck{})
	gob.Register(core.RollbackAlert{})
	gob.Register(core.RollbackCmd{})
	gob.Register(core.RollbackAck{})
	gob.Register(core.RollbackResume{})
	gob.Register(core.RecoverStateReq{})
	gob.Register(core.RecoverStateResp{})
	gob.Register(core.ReReplicateReq{})
	gob.Register(core.LogMirror{})
	gob.Register(core.LogTrim{})
	gob.Register(core.GCRequest{})
	gob.Register(core.GCReport{})
	gob.Register(core.GCCollect{})
	gob.Register(core.GCDrop{})
	gob.Register(core.GCToken{})
	gob.Register(AppState{})
	gob.Register(Hello{})
}

// ---- in-process channel transport ----

// ChanTransport delivers envelopes through per-node FIFO queues inside
// one process.
type ChanTransport struct {
	mu      sync.RWMutex
	inboxes map[topology.NodeID]chan Envelope
	down    map[topology.NodeID]bool
	wg      sync.WaitGroup
	closed  bool
}

// NewChanTransport returns an empty channel transport.
func NewChanTransport() *ChanTransport {
	return &ChanTransport{
		inboxes: make(map[topology.NodeID]chan Envelope),
		down:    make(map[topology.NodeID]bool),
	}
}

// Register installs a node's delivery callback.
func (t *ChanTransport) Register(id topology.NodeID, deliver func(Envelope)) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return fmt.Errorf("runtime: transport closed")
	}
	if _, dup := t.inboxes[id]; dup {
		return fmt.Errorf("runtime: duplicate registration for %v", id)
	}
	ch := make(chan Envelope, 4096)
	t.inboxes[id] = ch
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		for env := range ch {
			deliver(env)
		}
	}()
	return nil
}

// Send enqueues an envelope for delivery.
func (t *ChanTransport) Send(env Envelope) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.closed || t.down[env.Src] || t.down[env.Dst] {
		return nil // fail-stop semantics: traffic vanishes silently
	}
	ch, ok := t.inboxes[env.Dst]
	if !ok {
		return fmt.Errorf("runtime: no such node %v", env.Dst)
	}
	ch <- env
	return nil
}

// SetDown cuts a node off or reconnects it.
func (t *ChanTransport) SetDown(id topology.NodeID, down bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if down {
		t.down[id] = true
	} else {
		delete(t.down, id)
	}
}

// Close drains and stops delivery goroutines.
func (t *ChanTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	for _, ch := range t.inboxes {
		close(ch)
	}
	t.mu.Unlock()
	t.wg.Wait()
	return nil
}

// ---- TCP transport ----

// TCPConfig parameterizes the hardened TCP transport. The zero value
// is the in-process loopback configuration every Register picks a free
// port for; daemons supply Addrs for a static multi-process topology.
type TCPConfig struct {
	// Addrs is the federation's static address map (every node of the
	// topology, local and remote). Nil selects loopback auto-assign
	// mode: addresses exist only for nodes Registered in this process.
	Addrs map[topology.NodeID]string
	// DialTimeout bounds one connection attempt (default 250 ms).
	DialTimeout time.Duration
	// SendDeadline is the per-envelope budget across redials and the
	// write itself; past it the envelope is dropped and counted
	// (default 2 s).
	SendDeadline time.Duration
	// QueueLen bounds each (src, dst) sender queue (default 1024);
	// Send fails fast when the queue is full instead of blocking the
	// protocol goroutine.
	QueueLen int
	// BackoffMin/BackoffMax bound the jittered exponential redial
	// backoff (defaults 5 ms / 250 ms).
	BackoffMin time.Duration
	BackoffMax time.Duration
	// SuspectAfter is how long a peer must stay unreachable before
	// OnSuspect fires (default 1.5 s; 0 with a nil OnSuspect disables
	// suspicion).
	SuspectAfter time.Duration
	// OnSuspect fires once per outage episode, from a sender
	// goroutine, when a peer has been unreachable for SuspectAfter.
	// The live runtime routes it into the node's fail-stop handling.
	OnSuspect func(peer topology.NodeID)
	// Stat, when non-nil, receives transport counters
	// (transport.dropped, transport.redials, transport.evictions,
	// transport.send_errors, transport.queue_full, transport.suspects).
	Stat func(name string, delta uint64)
}

func (c *TCPConfig) fill() {
	if c.DialTimeout == 0 {
		c.DialTimeout = 250 * time.Millisecond
	}
	if c.SendDeadline == 0 {
		c.SendDeadline = 2 * time.Second
	}
	if c.QueueLen == 0 {
		c.QueueLen = 1024
	}
	if c.BackoffMin == 0 {
		c.BackoffMin = 5 * time.Millisecond
	}
	if c.BackoffMax == 0 {
		c.BackoffMax = 250 * time.Millisecond
	}
	if c.SuspectAfter == 0 {
		c.SuspectAfter = 1500 * time.Millisecond
	}
}

// TCPTransport delivers envelopes over TCP connections with gob
// encoding: one listener per local node, one sender goroutine with a
// bounded queue per (src, dst) pair (which gives pairwise FIFO per
// connection epoch). Broken connections are evicted and redialed with
// jittered exponential backoff under a per-send deadline; a peer that
// stays unreachable is reported through OnSuspect instead of blocking
// the protocol or failing silently.
type TCPTransport struct {
	cfg TCPConfig

	mu      sync.Mutex
	addrs   map[topology.NodeID]string
	lns     map[topology.NodeID]net.Listener
	senders map[[2]topology.NodeID]*peerSender
	conns   map[net.Conn]struct{}
	down    map[topology.NodeID]bool
	stats   map[string]uint64
	wg      sync.WaitGroup
	closed  bool
	stop    chan struct{}
}

// NewTCPTransport returns a loopback TCP transport for in-process
// federations: every Register listens on 127.0.0.1 with an
// auto-assigned port.
func NewTCPTransport() *TCPTransport { return NewTCPTransportWith(TCPConfig{}) }

// NewTCPTransportWith returns a TCP transport with an explicit
// configuration; supply Addrs to span processes.
func NewTCPTransportWith(cfg TCPConfig) *TCPTransport {
	cfg.fill()
	t := &TCPTransport{
		cfg:     cfg,
		addrs:   make(map[topology.NodeID]string),
		lns:     make(map[topology.NodeID]net.Listener),
		senders: make(map[[2]topology.NodeID]*peerSender),
		conns:   make(map[net.Conn]struct{}),
		down:    make(map[topology.NodeID]bool),
		stats:   make(map[string]uint64),
		stop:    make(chan struct{}),
	}
	for id, addr := range cfg.Addrs {
		t.addrs[id] = addr
	}
	return t
}

// SetStat installs the counter sink when none was configured (the live
// federation wires its stats table in at Start).
func (t *TCPTransport) SetStat(fn func(name string, delta uint64)) {
	t.mu.Lock()
	if t.cfg.Stat == nil {
		t.cfg.Stat = fn
	}
	t.mu.Unlock()
}

// SetOnSuspect installs the failure-suspicion callback when none was
// configured.
func (t *TCPTransport) SetOnSuspect(fn func(peer topology.NodeID)) {
	t.mu.Lock()
	if t.cfg.OnSuspect == nil {
		t.cfg.OnSuspect = fn
	}
	t.mu.Unlock()
}

func (t *TCPTransport) stat(name string, delta uint64) {
	t.mu.Lock()
	t.stats[name] += delta
	fn := t.cfg.Stat
	t.mu.Unlock()
	if fn != nil {
		fn(name, delta)
	}
}

// Stats snapshots the transport's internal counters.
func (t *TCPTransport) Stats() map[string]uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]uint64, len(t.stats))
	for k, v := range t.stats {
		out[k] = v
	}
	return out
}

// Addr reports the listen (or configured) address of a node, empty if
// unknown.
func (t *TCPTransport) Addr(id topology.NodeID) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.addrs[id]
}

// Register opens the node's listener and starts its accept loop.
func (t *TCPTransport) Register(id topology.NodeID, deliver func(Envelope)) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return fmt.Errorf("runtime: transport closed")
	}
	if _, dup := t.lns[id]; dup {
		t.mu.Unlock()
		return fmt.Errorf("runtime: duplicate registration for %v", id)
	}
	listenAddr := "127.0.0.1:0"
	if t.cfg.Addrs != nil {
		addr, ok := t.cfg.Addrs[id]
		if !ok {
			t.mu.Unlock()
			return fmt.Errorf("runtime: node %v missing from the transport address map", id)
		}
		listenAddr = addr
	}
	t.mu.Unlock()

	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return fmt.Errorf("runtime: listen %v on %s: %w", id, listenAddr, err)
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		ln.Close()
		return fmt.Errorf("runtime: transport closed")
	}
	t.addrs[id] = ln.Addr().String()
	t.lns[id] = ln
	t.mu.Unlock()

	t.wg.Add(1)
	go t.acceptLoop(ln, deliver)
	return nil
}

// acceptLoop accepts inbound connections for one local node. Each
// connection gets its own decoder goroutine; a decode error (torn gob
// frame, peer death) closes that connection only — the accept loop
// keeps serving fresh connections.
func (t *TCPTransport) acceptLoop(ln net.Listener, deliver func(Envelope)) {
	defer t.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.conns[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			defer t.dropConn(conn)
			dec := gob.NewDecoder(conn)
			for {
				var env Envelope
				if err := dec.Decode(&env); err != nil {
					return // torn frame or closed peer: this conn only
				}
				t.mu.Lock()
				drop := t.down[env.Src] || t.down[env.Dst]
				t.mu.Unlock()
				if !drop {
					deliver(env)
				}
			}
		}()
	}
}

// dropConn closes and forgets one connection.
func (t *TCPTransport) dropConn(conn net.Conn) {
	conn.Close()
	t.mu.Lock()
	delete(t.conns, conn)
	t.mu.Unlock()
}

// timedEnv is one queued envelope with its acceptance time, the anchor
// of its send deadline.
type timedEnv struct {
	env Envelope
	at  time.Time
}

// peerSender owns all traffic of one (src, dst) pair: a single
// goroutine draining a bounded queue through one connection, so FIFO
// holds per connection epoch by construction. Connection state and the
// outage clock are goroutine-local — no lock is held across Dial or
// Encode.
type peerSender struct {
	t        *TCPTransport
	src, dst topology.NodeID
	ch       chan timedEnv

	conn      net.Conn
	enc       *gob.Encoder
	rng       uint64
	downSince time.Time
	suspected bool
}

// Send hands the envelope to the pair's sender goroutine. It never
// blocks: a full queue is an error the caller hears about (and a
// transport.queue_full count), not a stall of the protocol loop.
func (t *TCPTransport) Send(env Envelope) error {
	t.mu.Lock()
	if t.closed || t.down[env.Src] || t.down[env.Dst] {
		t.mu.Unlock()
		return nil // fail-stop semantics: traffic vanishes silently
	}
	key := [2]topology.NodeID{env.Src, env.Dst}
	ps, ok := t.senders[key]
	if !ok {
		if _, known := t.addrs[env.Dst]; !known {
			t.mu.Unlock()
			return fmt.Errorf("runtime: no such node %v", env.Dst)
		}
		ps = &peerSender{
			t:   t,
			src: env.Src,
			dst: env.Dst,
			ch:  make(chan timedEnv, t.cfg.QueueLen),
			rng: uint64(env.Src.Index*73856093+env.Dst.Index*19349663) +
				uint64(env.Src.Cluster)<<32 + uint64(env.Dst.Cluster)<<40 + 0x9e3779b97f4a7c15,
		}
		t.senders[key] = ps
		t.wg.Add(1)
		go ps.run()
	}
	t.mu.Unlock()

	select {
	case ps.ch <- timedEnv{env: env, at: time.Now()}:
		return nil
	default:
		t.stat("transport.queue_full", 1)
		t.stat("transport.dropped", 1)
		return fmt.Errorf("runtime: send queue %v->%v full", env.Src, env.Dst)
	}
}

func (ps *peerSender) run() {
	defer ps.t.wg.Done()
	defer ps.evict(false)
	for {
		select {
		case <-ps.t.stop:
			return
		case te := <-ps.ch:
			if !ps.deliver(te) {
				return // transport closing
			}
		}
	}
}

// deliver pushes one envelope through the pair's connection, dialing
// and redialing under the envelope's deadline. It returns false only
// when the transport is shutting down.
func (ps *peerSender) deliver(te timedEnv) bool {
	deadline := te.at.Add(ps.t.cfg.SendDeadline)
	if time.Now().After(deadline) {
		// Expired while queued behind an outage backlog. Dropping here —
		// before touching the connection — drains a deep backlog in O(1)
		// per stale envelope instead of a dial/evict cycle for each,
		// which is what stands between a returning peer and the fresh
		// traffic (a RollbackCmd, say) queued behind the backlog.
		ps.t.stat("transport.dropped", 1)
		return true
	}
	backoff := ps.t.cfg.BackoffMin
	for {
		ps.t.mu.Lock()
		gone := ps.t.closed || ps.t.down[ps.src] || ps.t.down[ps.dst]
		addr := ps.t.addrs[ps.dst]
		ps.t.mu.Unlock()
		if gone {
			return !ps.t.isClosed()
		}
		if ps.conn == nil {
			conn, err := net.DialTimeout("tcp", addr, ps.t.cfg.DialTimeout)
			if err != nil {
				ps.t.stat("transport.redials", 1)
				ps.noteFailure(te.at)
				if time.Now().After(deadline) {
					ps.t.stat("transport.dropped", 1)
					return true
				}
				if !ps.pause(backoff) {
					return false
				}
				backoff = ps.nextBackoff(backoff)
				continue
			}
			ps.t.mu.Lock()
			ps.t.conns[conn] = struct{}{}
			ps.t.mu.Unlock()
			ps.conn = conn
			ps.enc = gob.NewEncoder(conn)
		}
		ps.conn.SetWriteDeadline(deadline)
		if err := ps.enc.Encode(te.env); err != nil {
			// A dead encoder is useless forever (gob streams are
			// stateful): evict the connection so the next attempt
			// redials instead of re-failing on the cached carcass.
			ps.evict(true)
			ps.t.stat("transport.send_errors", 1)
			ps.noteFailure(te.at)
			if time.Now().After(deadline) {
				ps.t.stat("transport.dropped", 1)
				return true
			}
			if !ps.pause(backoff) {
				return false
			}
			backoff = ps.nextBackoff(backoff)
			continue
		}
		ps.conn.SetWriteDeadline(time.Time{})
		ps.noteSuccess()
		return true
	}
}

// evict closes and forgets the pair's connection (counted when it died
// rather than being shut down).
func (ps *peerSender) evict(count bool) {
	if ps.conn == nil {
		return
	}
	ps.t.dropConn(ps.conn)
	ps.conn = nil
	ps.enc = nil
	if count {
		ps.t.stat("transport.evictions", 1)
	}
}

// noteFailure starts (or continues) the pair's outage episode and
// fires the suspicion callback once the peer has been unreachable for
// SuspectAfter.
func (ps *peerSender) noteFailure(at time.Time) {
	if ps.downSince.IsZero() {
		ps.downSince = at
	}
	if !ps.suspected && ps.t.cfg.OnSuspect != nil &&
		time.Since(ps.downSince) >= ps.t.cfg.SuspectAfter {
		ps.suspected = true
		ps.t.stat("transport.suspects", 1)
		ps.t.cfg.OnSuspect(ps.dst)
	}
}

// noteSuccess ends the pair's outage episode.
func (ps *peerSender) noteSuccess() {
	ps.downSince = time.Time{}
	ps.suspected = false
}

// nextBackoff doubles the backoff up to the configured ceiling.
func (ps *peerSender) nextBackoff(cur time.Duration) time.Duration {
	next := cur * 2
	if next > ps.t.cfg.BackoffMax {
		next = ps.t.cfg.BackoffMax
	}
	return next
}

// pause sleeps a jittered backoff (uniform in [d/2, d]), interruptible
// by transport shutdown; false means the transport is closing.
func (ps *peerSender) pause(d time.Duration) bool {
	x := ps.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	ps.rng = x
	jittered := d/2 + time.Duration(x%uint64(d/2+1))
	timer := time.NewTimer(jittered)
	defer timer.Stop()
	select {
	case <-ps.t.stop:
		return false
	case <-timer.C:
		return true
	}
}

func (t *TCPTransport) isClosed() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.closed
}

// SetDown cuts a node off or reconnects it.
func (t *TCPTransport) SetDown(id topology.NodeID, down bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if down {
		t.down[id] = true
	} else {
		delete(t.down, id)
	}
}

// Close shuts listeners, connections and sender goroutines down.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	close(t.stop)
	for _, ln := range t.lns {
		ln.Close()
	}
	for c := range t.conns {
		c.Close()
	}
	t.mu.Unlock()
	t.wg.Wait()
	return nil
}
