// Package runtime executes the HC3I protocol live: one goroutine per
// federation node, real wall-clock timers and a pluggable transport
// (in-process channels or TCP with gob encoding). It drives exactly
// the same core.Node state machine as the discrete event simulator —
// none of the protocol logic is simulation-specific — and exists to
// validate the protocol under genuine concurrency and a real network
// stack ("We need to implement the protocol on a real system to
// validate it", §7).
package runtime

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"

	"repro/internal/core"
	"repro/internal/topology"
)

// Envelope is one message on the wire.
type Envelope struct {
	Src topology.NodeID
	Dst topology.NodeID
	Msg core.Msg
}

// Transport moves envelopes between live nodes. Deliveries for one
// (src, dst) pair must stay FIFO.
type Transport interface {
	// Register installs the delivery callback for a node; must be
	// called for every node before Start.
	Register(id topology.NodeID, deliver func(Envelope))
	// Send transmits an envelope (asynchronously).
	Send(env Envelope) error
	// SetDown cuts a node off (fail-stop): traffic from and to it is
	// dropped.
	SetDown(id topology.NodeID, down bool)
	// Close releases transport resources.
	Close() error
}

func init() {
	// The TCP transport serializes core messages with encoding/gob.
	gob.Register(core.AppMsg{})
	gob.Register(core.AppAck{})
	gob.Register(core.CLCRequest{})
	gob.Register(core.CLCAck{})
	gob.Register(core.CLCCommit{})
	gob.Register(core.ForceCLC{})
	gob.Register(core.Replica{})
	gob.Register(core.ReplicaAck{})
	gob.Register(core.RollbackAlert{})
	gob.Register(core.RollbackCmd{})
	gob.Register(core.RollbackAck{})
	gob.Register(core.RollbackResume{})
	gob.Register(core.RecoverStateReq{})
	gob.Register(core.RecoverStateResp{})
	gob.Register(core.ReReplicateReq{})
	gob.Register(core.LogMirror{})
	gob.Register(core.LogTrim{})
	gob.Register(core.GCRequest{})
	gob.Register(core.GCReport{})
	gob.Register(core.GCCollect{})
	gob.Register(core.GCDrop{})
	gob.Register(core.GCToken{})
	gob.Register(AppState{})
}

// ---- in-process channel transport ----

// ChanTransport delivers envelopes through per-node FIFO queues inside
// one process.
type ChanTransport struct {
	mu      sync.RWMutex
	inboxes map[topology.NodeID]chan Envelope
	down    map[topology.NodeID]bool
	wg      sync.WaitGroup
	closed  bool
}

// NewChanTransport returns an empty channel transport.
func NewChanTransport() *ChanTransport {
	return &ChanTransport{
		inboxes: make(map[topology.NodeID]chan Envelope),
		down:    make(map[topology.NodeID]bool),
	}
}

// Register installs a node's delivery callback.
func (t *ChanTransport) Register(id topology.NodeID, deliver func(Envelope)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.inboxes[id]; dup {
		panic(fmt.Sprintf("runtime: duplicate registration for %v", id))
	}
	ch := make(chan Envelope, 4096)
	t.inboxes[id] = ch
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		for env := range ch {
			deliver(env)
		}
	}()
}

// Send enqueues an envelope for delivery.
func (t *ChanTransport) Send(env Envelope) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.closed || t.down[env.Src] || t.down[env.Dst] {
		return nil // fail-stop semantics: traffic vanishes silently
	}
	ch, ok := t.inboxes[env.Dst]
	if !ok {
		return fmt.Errorf("runtime: no such node %v", env.Dst)
	}
	ch <- env
	return nil
}

// SetDown cuts a node off or reconnects it.
func (t *ChanTransport) SetDown(id topology.NodeID, down bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if down {
		t.down[id] = true
	} else {
		delete(t.down, id)
	}
}

// Close drains and stops delivery goroutines.
func (t *ChanTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	for _, ch := range t.inboxes {
		close(ch)
	}
	t.mu.Unlock()
	t.wg.Wait()
	return nil
}

// ---- TCP transport ----

// TCPTransport delivers envelopes over loopback TCP connections with
// gob encoding: one listener per node, one lazily dialed connection per
// (src, dst) pair (which gives the required pairwise FIFO).
type TCPTransport struct {
	mu      sync.Mutex
	addrs   map[topology.NodeID]string
	lns     map[topology.NodeID]net.Listener
	conns   map[[2]topology.NodeID]*gob.Encoder
	rawCons []net.Conn
	down    map[topology.NodeID]bool
	wg      sync.WaitGroup
	closed  bool
}

// NewTCPTransport returns an empty TCP transport on the loopback
// interface.
func NewTCPTransport() *TCPTransport {
	return &TCPTransport{
		addrs: make(map[topology.NodeID]string),
		lns:   make(map[topology.NodeID]net.Listener),
		conns: make(map[[2]topology.NodeID]*gob.Encoder),
		down:  make(map[topology.NodeID]bool),
	}
}

// Register opens the node's listener and starts its accept loop.
func (t *TCPTransport) Register(id topology.NodeID, deliver func(Envelope)) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(fmt.Sprintf("runtime: listen: %v", err))
	}
	t.mu.Lock()
	t.addrs[id] = ln.Addr().String()
	t.lns[id] = ln
	t.mu.Unlock()

	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			t.mu.Lock()
			t.rawCons = append(t.rawCons, conn)
			t.mu.Unlock()
			t.wg.Add(1)
			go func() {
				defer t.wg.Done()
				dec := gob.NewDecoder(conn)
				for {
					var env Envelope
					if err := dec.Decode(&env); err != nil {
						return
					}
					t.mu.Lock()
					drop := t.down[env.Src] || t.down[env.Dst]
					t.mu.Unlock()
					if !drop {
						deliver(env)
					}
				}
			}()
		}
	}()
}

// Send encodes and transmits an envelope, dialing on first use.
func (t *TCPTransport) Send(env Envelope) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed || t.down[env.Src] || t.down[env.Dst] {
		return nil
	}
	key := [2]topology.NodeID{env.Src, env.Dst}
	enc, ok := t.conns[key]
	if !ok {
		addr, ok := t.addrs[env.Dst]
		if !ok {
			return fmt.Errorf("runtime: no such node %v", env.Dst)
		}
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return fmt.Errorf("runtime: dial %v: %w", env.Dst, err)
		}
		t.rawCons = append(t.rawCons, conn)
		enc = gob.NewEncoder(conn)
		t.conns[key] = enc
	}
	return enc.Encode(env)
}

// SetDown cuts a node off or reconnects it.
func (t *TCPTransport) SetDown(id topology.NodeID, down bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if down {
		t.down[id] = true
	} else {
		delete(t.down, id)
	}
}

// Close shuts listeners and connections down.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	for _, ln := range t.lns {
		ln.Close()
	}
	for _, c := range t.rawCons {
		c.Close()
	}
	t.mu.Unlock()
	t.wg.Wait()
	return nil
}
