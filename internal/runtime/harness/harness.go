// Package harness boots real multi-process HC3I federations for chaos
// testing: it builds cmd/hc3id once, spawns one daemon per node from a
// shared federation config, kills them with real signals (SIGKILL
// mid-protocol included), restarts them in crash-recovery mode, and
// hands the merged per-node journals to the offline oracle. It is the
// cluster-level integration layer the ROADMAP asks for — processes,
// not goroutines; a kernel TCP stack, not channels; kill -9, not a
// simulated fail-stop flag.
package harness

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"syscall"
	"time"

	"repro/internal/oracle"
	"repro/internal/runtime"
	"repro/internal/topology"
)

func listenFree() (net.Listener, error) { return net.Listen("tcp", "127.0.0.1:0") }

func writeJSON(path string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// RepoRoot walks up from the working directory to the module root (the
// directory holding go.mod), where `go build ./cmd/hc3id` works.
func RepoRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("harness: no go.mod above the working directory")
		}
		dir = parent
	}
}

// BuildDaemon compiles cmd/hc3id into dir and returns the binary path.
func BuildDaemon(dir string) (string, error) {
	root, err := RepoRoot()
	if err != nil {
		return "", err
	}
	bin := filepath.Join(dir, "hc3id")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/hc3id")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		return "", fmt.Errorf("harness: build hc3id: %v\n%s", err, out)
	}
	return bin, nil
}

// FreeAddrs reserves n distinct loopback addresses by binding and
// releasing ephemeral ports.
func FreeAddrs(n int) ([]string, error) {
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := listenFree()
		if err != nil {
			return nil, err
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	return addrs, nil
}

// NewFederationFile builds a federation config over fresh loopback
// ports for the given cluster shape.
func NewFederationFile(clusters []int, clcPeriod, workloadPeriod time.Duration, interProb float64) (*runtime.FederationFile, error) {
	total := 0
	for _, size := range clusters {
		total += size
	}
	addrs, err := FreeAddrs(total)
	if err != nil {
		return nil, err
	}
	f := &runtime.FederationFile{
		Clusters:    append([]int(nil), clusters...),
		Addrs:       make(map[string]string, total),
		CLCPeriodMS: int(clcPeriod / time.Millisecond),
		Replicas:    1,
		Workload: &runtime.WorkloadFile{
			PeriodMS:  int(workloadPeriod / time.Millisecond),
			InterProb: interProb,
			Size:      200,
		},
	}
	i := 0
	for c, size := range clusters {
		for n := 0; n < size; n++ {
			id := topology.NodeID{Cluster: topology.ClusterID(c), Index: n}
			f.Addrs[id.String()] = addrs[i]
			i++
		}
	}
	return f, f.Validate()
}

// Daemon is one running (or exited) hc3id process.
type Daemon struct {
	ID      topology.NodeID
	Journal string
	cmd     *exec.Cmd
	done    chan error
}

// Federation manages the daemon processes of one test federation.
type Federation struct {
	Dir     string
	Bin     string
	CfgPath string
	Cfg     *runtime.FederationFile
	daemons map[topology.NodeID]*Daemon
}

// New writes the federation config under dir (building the daemon
// binary there too) and returns a manager with no processes running.
func New(dir string, cfg *runtime.FederationFile) (*Federation, error) {
	bin, err := BuildDaemon(dir)
	if err != nil {
		return nil, err
	}
	cfgPath := filepath.Join(dir, "fed.json")
	if err := writeJSON(cfgPath, cfg); err != nil {
		return nil, err
	}
	return &Federation{
		Dir:     dir,
		Bin:     bin,
		CfgPath: cfgPath,
		Cfg:     cfg,
		daemons: make(map[topology.NodeID]*Daemon),
	}, nil
}

// JournalPath is a node's journal file (shared across incarnations —
// a restarted daemon appends to its predecessor's journal).
func (f *Federation) JournalPath(id topology.NodeID) string {
	return filepath.Join(f.Dir, id.String()+".jsonl")
}

// Start spawns one daemon. recoverBoot selects the crash-recovery
// incarnation (-recover yes); stderr goes to <node>.log for post-
// mortems.
func (f *Federation) Start(id topology.NodeID, recoverBoot bool) error {
	if d, ok := f.daemons[id]; ok && d.cmd.ProcessState == nil {
		return fmt.Errorf("harness: %v already running", id)
	}
	mode := "no"
	if recoverBoot {
		mode = "yes"
	}
	cmd := exec.Command(f.Bin,
		"-config", f.CfgPath,
		"-node", id.String(),
		"-journal", f.JournalPath(id),
		"-recover", mode,
	)
	logf, err := os.OpenFile(filepath.Join(f.Dir, id.String()+".log"),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	cmd.Stdout = logf
	cmd.Stderr = logf
	if err := cmd.Start(); err != nil {
		logf.Close()
		return err
	}
	d := &Daemon{ID: id, Journal: f.JournalPath(id), cmd: cmd, done: make(chan error, 1)}
	go func() {
		d.done <- cmd.Wait()
		logf.Close()
	}()
	f.daemons[id] = d
	return nil
}

// StartAll boots every node of the topology as a fresh daemon.
func (f *Federation) StartAll() error {
	for c, size := range f.Cfg.Clusters {
		for n := 0; n < size; n++ {
			id := topology.NodeID{Cluster: topology.ClusterID(c), Index: n}
			if err := f.Start(id, false); err != nil {
				f.KillAll()
				return err
			}
		}
	}
	return nil
}

// Kill SIGKILLs a daemon and waits for the process to reap.
func (f *Federation) Kill(id topology.NodeID) error {
	d, ok := f.daemons[id]
	if !ok {
		return fmt.Errorf("harness: %v not running", id)
	}
	d.cmd.Process.Kill()
	<-d.done
	return nil
}

// Stop SIGTERMs a daemon (clean drain) and waits up to timeout before
// escalating to SIGKILL. It returns the daemon's exit error, nil for a
// clean drain.
func (f *Federation) Stop(id topology.NodeID, timeout time.Duration) error {
	d, ok := f.daemons[id]
	if !ok {
		return fmt.Errorf("harness: %v not running", id)
	}
	d.cmd.Process.Signal(syscall.SIGTERM)
	select {
	case err := <-d.done:
		return err
	case <-time.After(timeout):
		d.cmd.Process.Kill()
		<-d.done
		return fmt.Errorf("harness: %v did not drain within %v", id, timeout)
	}
}

// StopAll drains every running daemon, reporting the first failure.
func (f *Federation) StopAll(timeout time.Duration) error {
	var firstErr error
	ids := make([]topology.NodeID, 0, len(f.daemons))
	for id := range f.daemons {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].String() < ids[j].String() })
	for _, id := range ids {
		d := f.daemons[id]
		if d.cmd.ProcessState != nil {
			continue
		}
		if err := f.Stop(id, timeout); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// KillAll SIGKILLs everything still running (test cleanup).
func (f *Federation) KillAll() {
	for _, d := range f.daemons {
		if d.cmd.ProcessState == nil {
			d.cmd.Process.Kill()
			<-d.done
		}
	}
}

// Events reads a node's journal as it stands right now (torn tail
// tolerated — the daemon may be mid-write or freshly SIGKILLed).
func (f *Federation) Events(id topology.NodeID) []oracle.Event {
	evs, err := oracle.ReadJournalFile(f.JournalPath(id))
	if err != nil {
		return nil
	}
	return evs
}

// WaitEvent polls a node's journal until pred matches an event or the
// timeout passes, returning the first match. The poll period is short
// enough to catch protocol phases (a CLCAck send, a RecoverStateReq)
// while they are still in flight.
func (f *Federation) WaitEvent(id topology.NodeID, timeout time.Duration, pred func(oracle.Event) bool) (oracle.Event, bool) {
	deadline := time.Now().Add(timeout)
	for {
		for _, ev := range f.Events(id) {
			if pred(ev) {
				return ev, true
			}
		}
		if time.Now().After(deadline) {
			return oracle.Event{}, false
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// MergedEvents loads and merges every node's journal in timestamp
// order, ready for oracle.Replay.
func (f *Federation) MergedEvents() ([]oracle.Event, error) {
	perNode := make([][]oracle.Event, 0, len(f.daemons))
	for c, size := range f.Cfg.Clusters {
		for n := 0; n < size; n++ {
			id := topology.NodeID{Cluster: topology.ClusterID(c), Index: n}
			evs, err := oracle.ReadJournalFile(f.JournalPath(id))
			if err != nil {
				return nil, err
			}
			perNode = append(perNode, evs)
		}
	}
	return oracle.MergeEvents(perNode...), nil
}
