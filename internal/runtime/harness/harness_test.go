package harness

import (
	"testing"
	"time"

	"repro/internal/oracle"
	"repro/internal/topology"
)

// commitCount counts a node's journaled commits after t0.
func commitCount(f *Federation, id topology.NodeID, t0 int64) int {
	n := 0
	for _, ev := range f.Events(id) {
		if ev.Kind == "commit" && ev.T > t0 {
			n++
		}
	}
	return n
}

// waitCommits blocks until a node journaled at least n commits,
// returning the timestamp of the nth.
func waitCommits(t *testing.T, f *Federation, id topology.NodeID, n int, timeout time.Duration) int64 {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		commits := 0
		for _, ev := range f.Events(id) {
			if ev.Kind == "commit" {
				commits++
				if commits == n {
					return ev.T
				}
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("%v journaled only %d/%d commits within %v", id, commits, n, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCrashTolerantFederationEndToEnd is the acceptance test of the
// multi-process federation: an hc3id daemon SIGKILLed mid-2PC and
// again mid-rollback-recovery rejoins, the workload completes, every
// daemon drains cleanly, and the offline oracle replay over the merged
// per-node journals reports zero invariant violations.
func TestCrashTolerantFederationEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process federation test (builds and boots real daemons)")
	}
	dir := t.TempDir()
	cfg, err := NewFederationFile([]int{3, 2}, 40*time.Millisecond, 4*time.Millisecond, 0.35)
	if err != nil {
		t.Fatal(err)
	}
	fed, err := New(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer fed.KillAll()
	if err := fed.StartAll(); err != nil {
		t.Fatal(err)
	}

	victim := topology.NodeID{Cluster: 0, Index: 1}

	// Let the federation take real checkpoints, then SIGKILL the
	// victim the moment it acks the next 2PC round — between its
	// CLCAck leaving and the CLCCommit applying is the tightest
	// mid-protocol window a process crash can land in. (If the kill
	// lands a hair later it is still a crash mid-run, which is the
	// property under test.)
	warmT := waitCommits(t, fed, victim, 2, 20*time.Second)
	if _, ok := fed.WaitEvent(victim, 20*time.Second, func(ev oracle.Event) bool {
		return ev.Kind == "send" && ev.Msg == "CLCAck" && ev.T > warmT
	}); !ok {
		t.Fatal("victim never acked another 2PC round")
	}
	if err := fed.Kill(victim); err != nil {
		t.Fatal(err)
	}

	// Crash-recovery boot #1. The fresh incarnation announces itself,
	// a survivor detects the failure and commands the rollback, and
	// the victim asks its replica holder for its state back — at which
	// exact moment the second SIGKILL lands: mid-rollback, the other
	// window the issue demands. (If recovery outruns the poll, the
	// kill still interrupts a recovering process.)
	restart1 := time.Now().UnixNano()
	if err := fed.Start(victim, true); err != nil {
		t.Fatal(err)
	}
	fed.WaitEvent(victim, 15*time.Second, func(ev oracle.Event) bool {
		return ev.T > restart1 && ev.Kind == "send" && ev.Msg == "RecoverStateReq"
	})
	if err := fed.Kill(victim); err != nil {
		t.Fatal(err)
	}

	// Crash-recovery boot #2: this one must complete — rollback,
	// state recovery from the replica holder, rejoin, fresh commits.
	restart2 := time.Now().UnixNano()
	if err := fed.Start(victim, true); err != nil {
		t.Fatal(err)
	}
	if _, ok := fed.WaitEvent(victim, 30*time.Second, func(ev oracle.Event) bool {
		return ev.T > restart2 && ev.Kind == "rollback"
	}); !ok {
		t.Fatal("victim never completed its recovery rollback")
	}
	if _, ok := fed.WaitEvent(victim, 30*time.Second, func(ev oracle.Event) bool {
		return ev.T > restart2 && ev.Kind == "commit"
	}); !ok {
		t.Fatal("victim never committed a checkpoint after rejoining")
	}

	// Let the workload run on the healed federation, then drain.
	time.Sleep(300 * time.Millisecond)
	if err := fed.StopAll(15 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// The verdict: offline oracle replay over the merged journals.
	merged, err := fed.MergedEvents()
	if err != nil {
		t.Fatal(err)
	}
	rep := oracle.Replay(merged)
	t.Logf("\n%s", rep.Summary())
	if !rep.Clean() {
		for _, v := range rep.Violations {
			t.Errorf("invariant violation: %v", v)
		}
		t.Fatalf("oracle replay found %d violations (journals in %s)", len(rep.Violations), fed.Dir)
	}
	if rep.Recoveries < 2 {
		t.Fatalf("expected 2 crash-recovery boots in the journals, saw %d", rep.Recoveries)
	}
	if rep.Rollbacks == 0 {
		t.Fatal("no rollback was journaled — the failure handling never ran")
	}
	if rep.Deliveries == 0 {
		t.Fatal("no inter-cluster delivery was journaled — the workload never crossed clusters")
	}
	if n := commitCount(fed, victim, restart2); n == 0 {
		t.Fatal("victim journaled no commits after its final restart")
	}
}
