package runtime

import (
	"encoding/json"
	"sync"
	"time"

	"repro/internal/oracle"
	"repro/internal/soak"
)

// Journal is a live node daemon's durable event log: oracle.Event
// lines appended through soak's torn-tail-safe LineJournal, one file
// per daemon process. Every protocol observation is written
// synchronously inside the callback that produced it, before the node
// acts on it, so a SIGKILL can cost at most the final (torn) line —
// which both reopening and offline replay tolerate. Timestamps are
// forced strictly monotone within the file so a stable merge across
// files preserves each file's exact order.
type Journal struct {
	mu    sync.Mutex
	lj    *soak.LineJournal
	lastT int64
	err   error
}

// OpenJournal opens (creating if needed) a daemon's event journal,
// truncating any torn tail a previous kill left behind. Reopening an
// existing file appends — a restarted daemon continues its node's
// journal.
func OpenJournal(path string) (*Journal, error) {
	lj, err := soak.OpenLineJournal(path)
	if err != nil {
		return nil, err
	}
	return &Journal{lj: lj}, nil
}

// Event appends one journal line, stamping the current wall-clock time
// when the event carries none. Write errors are sticky and reported by
// Close — the protocol never blocks on journal health.
func (j *Journal) Event(ev oracle.Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.lj == nil {
		return
	}
	if ev.T == 0 {
		ev.T = time.Now().UnixNano()
	}
	if ev.T <= j.lastT {
		ev.T = j.lastT + 1
	}
	j.lastT = ev.T
	b, err := json.Marshal(ev)
	if err != nil {
		if j.err == nil {
			j.err = err
		}
		return
	}
	if err := j.lj.AppendLine(b); err != nil && j.err == nil {
		j.err = err
	}
}

// Sync flushes the journal to stable storage.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.lj == nil {
		return j.err
	}
	return j.lj.Sync()
}

// Close flushes and closes the journal, reporting the first write
// error encountered over its lifetime.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.lj == nil {
		return j.err
	}
	err := j.lj.Close()
	j.lj = nil
	if j.err != nil {
		return j.err
	}
	return err
}
