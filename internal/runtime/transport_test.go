package runtime

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/topology"
)

func a() topology.NodeID  { return topology.NodeID{Cluster: 0, Index: 0} }
func bN() topology.NodeID { return topology.NodeID{Cluster: 0, Index: 1} }

// collect registers a thread-safe recorder on the transport.
func collect(t Transport, id topology.NodeID) func() []Envelope {
	var mu sync.Mutex
	var got []Envelope
	t.Register(id, func(env Envelope) {
		mu.Lock()
		got = append(got, env)
		mu.Unlock()
	})
	return func() []Envelope {
		mu.Lock()
		defer mu.Unlock()
		return append([]Envelope(nil), got...)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}

func testTransportFIFO(t *testing.T, tr Transport) {
	t.Helper()
	defer tr.Close()
	got := collect(tr, bN())
	tr.Register(a(), func(Envelope) {})
	const n = 200
	for i := 0; i < n; i++ {
		msg := core.AppMsg{MsgID: uint64(i + 1)}
		if err := tr.Send(Envelope{Src: a(), Dst: bN(), Msg: msg}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return len(got()) == n })
	for i, env := range got() {
		if env.Msg.(core.AppMsg).MsgID != uint64(i+1) {
			t.Fatalf("FIFO violated at %d: %+v", i, env.Msg)
		}
		if env.Src != a() {
			t.Fatalf("source mangled: %v", env.Src)
		}
	}
}

func TestChanTransportFIFO(t *testing.T) { testTransportFIFO(t, NewChanTransport()) }
func TestTCPTransportFIFO(t *testing.T)  { testTransportFIFO(t, NewTCPTransport()) }

func testTransportDown(t *testing.T, tr Transport) {
	t.Helper()
	defer tr.Close()
	got := collect(tr, bN())
	tr.Register(a(), func(Envelope) {})

	tr.SetDown(bN(), true)
	_ = tr.Send(Envelope{Src: a(), Dst: bN(), Msg: core.AppAck{MsgID: 1}})
	time.Sleep(20 * time.Millisecond)
	if len(got()) != 0 {
		t.Fatal("delivered to a down node")
	}
	tr.SetDown(bN(), false)
	_ = tr.Send(Envelope{Src: a(), Dst: bN(), Msg: core.AppAck{MsgID: 2}})
	waitFor(t, func() bool { return len(got()) == 1 })
	if got()[0].Msg.(core.AppAck).MsgID != 2 {
		t.Fatal("wrong message after repair")
	}

	// A down *source* is muted too.
	tr.SetDown(a(), true)
	_ = tr.Send(Envelope{Src: a(), Dst: bN(), Msg: core.AppAck{MsgID: 3}})
	time.Sleep(20 * time.Millisecond)
	if len(got()) != 1 {
		t.Fatal("down source delivered")
	}
}

func TestChanTransportDown(t *testing.T) { testTransportDown(t, NewChanTransport()) }
func TestTCPTransportDown(t *testing.T)  { testTransportDown(t, NewTCPTransport()) }

func TestChanTransportUnknownDestination(t *testing.T) {
	tr := NewChanTransport()
	defer tr.Close()
	tr.Register(a(), func(Envelope) {})
	if err := tr.Send(Envelope{Src: a(), Dst: bN(), Msg: core.AppAck{}}); err == nil {
		t.Fatal("send to unregistered node accepted")
	}
}

func TestTransportDuplicateRegisterErrors(t *testing.T) {
	for _, tr := range []Transport{NewChanTransport(), NewTCPTransport()} {
		if err := tr.Register(a(), func(Envelope) {}); err != nil {
			t.Fatal(err)
		}
		if err := tr.Register(a(), func(Envelope) {}); err == nil {
			t.Fatal("duplicate registration accepted")
		}
		tr.Close()
	}
}

func TestTCPTransportRegisterErrors(t *testing.T) {
	// Static topology: a node absent from the address map is refused.
	tr := NewTCPTransportWith(TCPConfig{Addrs: map[topology.NodeID]string{
		a(): "127.0.0.1:0",
	}})
	defer tr.Close()
	if err := tr.Register(bN(), func(Envelope) {}); err == nil {
		t.Fatal("registration without an address accepted")
	}
	if err := tr.Register(a(), func(Envelope) {}); err != nil {
		t.Fatal(err)
	}

	// A dead listen address surfaces as an error, not a panic.
	tr2 := NewTCPTransportWith(TCPConfig{Addrs: map[topology.NodeID]string{
		bN(): tr.Addr(a()), // already bound by tr
	}})
	defer tr2.Close()
	if err := tr2.Register(bN(), func(Envelope) {}); err == nil {
		t.Fatal("listen on an occupied port accepted")
	}
}

func TestTransportCloseIdempotent(t *testing.T) {
	for _, tr := range []Transport{NewChanTransport(), NewTCPTransport()} {
		tr.Register(a(), func(Envelope) {})
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTCPTransportCarriesStates(t *testing.T) {
	// Checkpoint replicas carry opaque application state through gob;
	// AppState must round-trip intact.
	tr := NewTCPTransport()
	defer tr.Close()
	got := collect(tr, bN())
	tr.Register(a(), func(Envelope) {})

	state := AppState{Sent: 7, Delivered: map[core.LogicalID]int{
		{Src: a(), Seq: 3}: 2,
	}}
	rep := core.Replica{Seq: 4, Owner: a(), State: state, Size: 1024}
	if err := tr.Send(Envelope{Src: a(), Dst: bN(), Msg: rep}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(got()) == 1 })
	back := got()[0].Msg.(core.Replica)
	bs := back.State.(AppState)
	if bs.Sent != 7 || bs.Delivered[core.LogicalID{Src: a(), Seq: 3}] != 2 {
		t.Fatalf("state mangled in transit: %+v", bs)
	}
}
