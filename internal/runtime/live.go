package runtime

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/topology"
)

// AppState is the live application's checkpointable state. Exported
// (and gob-encodable) because checkpoint replicas carry it over TCP.
type AppState struct {
	Sent      uint64
	Delivered map[core.LogicalID]int
}

// liveApp implements core.AppHooks for the live runtime: a tiny
// application that counts sends and records deliveries. All accesses
// happen on the node's event goroutine.
type liveApp struct {
	state AppState
}

func newLiveApp() *liveApp {
	return &liveApp{state: AppState{Delivered: make(map[core.LogicalID]int)}}
}

func (a *liveApp) Snapshot() (any, int) {
	cp := AppState{Sent: a.state.Sent, Delivered: make(map[core.LogicalID]int, len(a.state.Delivered))}
	for k, v := range a.state.Delivered {
		cp.Delivered[k] = v
	}
	return cp, 1024
}

func (a *liveApp) Restore(state any) {
	s := state.(AppState)
	a.state = AppState{Sent: s.Sent, Delivered: make(map[core.LogicalID]int, len(s.Delivered))}
	for k, v := range s.Delivered {
		a.state.Delivered[k] = v
	}
}

func (a *liveApp) Deliver(from topology.NodeID, p core.AppPayload) {
	a.state.Delivered[p.ID]++
}

// Workload drives automatic application traffic in a live federation:
// every node sends one message per period to a random peer.
type Workload struct {
	// Period between two sends of one node (e.g. 5 ms).
	Period time.Duration
	// InterProb is the probability a send crosses clusters.
	InterProb float64
	// Size is the payload size in bytes.
	Size int
}

// Config parameterizes a live federation.
type Config struct {
	// Clusters is the node count per cluster.
	Clusters []int
	// CLCPeriod is the wall-clock delay between unforced CLCs, per
	// cluster (defaults to 50 ms).
	CLCPeriods []time.Duration
	// GCPeriod enables garbage collection (0 = off).
	GCPeriod time.Duration
	// Replicas is the stable-storage replication degree (default 1).
	Replicas int
	// Workload, when non-nil, generates automatic traffic.
	Workload *Workload
	// Transport defaults to NewChanTransport().
	Transport Transport
	// Trace, when non-nil, receives protocol trace output.
	Trace io.Writer
}

// event is one item on a node's serial event loop.
type event struct {
	kind    int // 0 msg, 1 timer, 2 appSend, 3 crash, 4 restart, 5 detect, 6 sync
	src     topology.NodeID
	msg     core.Msg
	timer   core.TimerKind
	dst     topology.NodeID
	payload core.AppPayload
	failed  topology.NodeID
	done    chan struct{}
}

// liveNode is one goroutine-driven protocol node.
type liveNode struct {
	id      topology.NodeID
	node    *core.Node
	app     *liveApp
	mailbox chan event
	fed     *Live
	timers  map[core.TimerKind]*time.Timer
	timerMu sync.Mutex
	nextSeq uint64
	rng     uint64 // xorshift state for the workload driver
}

// nextRand advances the node's private xorshift64* generator.
func (n *liveNode) nextRand() uint64 {
	x := n.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	n.rng = x
	return x * 0x2545f4914f6cdd1d
}

// pickWorkloadDst selects a destination per the workload's inter-cluster
// probability.
func (n *liveNode) pickWorkloadDst(w *Workload) (topology.NodeID, bool) {
	sizes := n.fed.cfg.Clusters
	cluster := int(n.id.Cluster)
	if float64(n.nextRand()%1000)/1000 < w.InterProb && len(sizes) > 1 {
		for {
			c := int(n.nextRand() % uint64(len(sizes)))
			if c != cluster {
				cluster = c
				break
			}
		}
	}
	if cluster == int(n.id.Cluster) && sizes[cluster] < 2 {
		return topology.NodeID{}, false
	}
	idx := int(n.nextRand() % uint64(sizes[cluster]))
	for cluster == int(n.id.Cluster) && idx == n.id.Index {
		idx = int(n.nextRand() % uint64(sizes[cluster]))
	}
	return topology.NodeID{Cluster: topology.ClusterID(cluster), Index: idx}, true
}

// scheduleWorkload arms the node's next automatic send.
func (n *liveNode) scheduleWorkload() {
	w := n.fed.cfg.Workload
	if w == nil {
		return
	}
	jitter := time.Duration(n.nextRand() % uint64(w.Period))
	time.AfterFunc(w.Period/2+jitter, func() {
		n.post(event{kind: 8})
	})
}

// Live is a running live federation.
type Live struct {
	cfg       Config
	transport Transport
	nodes     map[topology.NodeID]*liveNode
	start     time.Time
	stats     *liveStats
	trace     io.Writer
	traceMu   sync.Mutex
	stopped   chan struct{}
	wg        sync.WaitGroup
}

type liveStats struct {
	mu       sync.Mutex
	counters map[string]uint64
}

func (s *liveStats) add(name string, d uint64) {
	s.mu.Lock()
	s.counters[name] += d
	s.mu.Unlock()
}

func (s *liveStats) value(name string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters[name]
}

// liveEnv adapts the live federation to core.Env for one node.
type liveEnv struct{ n *liveNode }

func (e liveEnv) Now() sim.Time { return sim.Time(time.Since(e.n.fed.start)) }

func (e liveEnv) Send(dst topology.NodeID, size int, msg core.Msg) {
	_ = e.n.fed.transport.Send(Envelope{Src: e.n.id, Dst: dst, Msg: msg})
}

func (e liveEnv) SendApp(dst topology.NodeID, size int, msg core.Msg) {
	e.Send(dst, size, msg)
}

func (e liveEnv) SetTimer(k core.TimerKind, d sim.Duration) {
	e.n.timerMu.Lock()
	defer e.n.timerMu.Unlock()
	if t, ok := e.n.timers[k]; ok {
		t.Stop()
	}
	if d >= sim.Forever {
		return
	}
	n, kind := e.n, k
	e.n.timers[k] = time.AfterFunc(d.Std(), func() {
		n.post(event{kind: 1, timer: kind})
	})
}

func (e liveEnv) Trace(level sim.TraceLevel, format string, args ...any) {
	f := e.n.fed
	if f.trace == nil {
		return
	}
	f.traceMu.Lock()
	fmt.Fprintf(f.trace, "[%8s] %-8v %s\n",
		time.Since(f.start).Truncate(time.Microsecond), e.n.id, fmt.Sprintf(format, args...))
	f.traceMu.Unlock()
}

func (e liveEnv) Stat(name string, delta uint64)        { e.n.fed.stats.add(name, delta) }
func (e liveEnv) StatSeries(name string, value float64) {}

// Start builds and starts a live federation.
func Start(cfg Config) (*Live, error) {
	if len(cfg.Clusters) == 0 {
		return nil, fmt.Errorf("runtime: no clusters")
	}
	if cfg.Transport == nil {
		cfg.Transport = NewChanTransport()
	}
	if cfg.Replicas == 0 {
		cfg.Replicas = 1
	}
	if cfg.CLCPeriods == nil {
		cfg.CLCPeriods = make([]time.Duration, len(cfg.Clusters))
	}
	for i := range cfg.CLCPeriods {
		if cfg.CLCPeriods[i] == 0 {
			cfg.CLCPeriods[i] = 50 * time.Millisecond
		}
	}
	f := &Live{
		cfg:       cfg,
		transport: cfg.Transport,
		nodes:     make(map[topology.NodeID]*liveNode),
		start:     time.Now(),
		stats:     &liveStats{counters: make(map[string]uint64)},
		trace:     cfg.Trace,
		stopped:   make(chan struct{}),
	}

	gcPeriod := sim.Forever
	if cfg.GCPeriod > 0 {
		gcPeriod = sim.Duration(cfg.GCPeriod)
	}
	for c, size := range cfg.Clusters {
		repl := cfg.Replicas
		if repl > size-1 {
			repl = size - 1
		}
		for i := 0; i < size; i++ {
			id := topology.NodeID{Cluster: topology.ClusterID(c), Index: i}
			ln := &liveNode{
				id:      id,
				app:     newLiveApp(),
				mailbox: make(chan event, 4096),
				fed:     f,
				timers:  make(map[core.TimerKind]*time.Timer),
				rng:     uint64(c*131071+i*8191) + 0x9e3779b97f4a7c15,
			}
			coreCfg := core.Config{
				ID:           id,
				Clusters:     len(cfg.Clusters),
				ClusterSizes: cfg.Clusters,
				CLCPeriod:    sim.Duration(cfg.CLCPeriods[c]),
				GCPeriod:     gcPeriod,
				GCInitiator:  c == 0 && i == 0,
				Replicas:     repl,
			}
			ln.node = core.NewNode(coreCfg, liveEnv{ln}, ln.app)
			f.nodes[id] = ln
		}
	}
	// Seed initial replicas, register transports, start event loops.
	for _, ln := range f.nodes {
		for _, tgt := range ln.node.ReplicaTargets() {
			f.nodes[tgt].node.SeedReplica(ln.node.InitialReplica())
		}
	}
	for _, ln := range f.nodes {
		ln := ln
		f.transport.Register(ln.id, func(env Envelope) {
			ln.post(event{kind: 0, src: env.Src, msg: env.Msg})
		})
	}
	for _, ln := range f.nodes {
		f.wg.Add(1)
		go ln.loop()
		ln.node2start()
	}
	return f, nil
}

// node2start arms the node's timers from its own goroutine.
func (n *liveNode) node2start() {
	done := make(chan struct{})
	n.mailbox <- event{kind: 7, done: done}
	<-done
}

func (n *liveNode) post(e event) {
	select {
	case n.mailbox <- e:
	case <-n.fed.stopped:
	}
}

// loop is the node's serial event loop: every protocol interaction
// happens here, satisfying core.Node's sequential contract.
func (n *liveNode) loop() {
	defer n.fed.wg.Done()
	for {
		select {
		case <-n.fed.stopped:
			return
		case e := <-n.mailbox:
			switch e.kind {
			case 0:
				n.node.OnMessage(e.src, e.msg)
			case 1:
				n.node.OnTimer(e.timer)
			case 2:
				if !n.node.Failed() {
					n.nextSeq++
					n.app.state.Sent++
					p := core.AppPayload{
						ID:   core.LogicalID{Src: n.id, Seq: n.nextSeq},
						Size: e.payload.Size,
					}
					n.node.Send(e.dst, p)
				}
			case 3:
				n.node.Fail()
			case 4:
				n.node.Restart()
			case 5:
				n.node.OnFailureDetected(e.failed)
			case 6:
				close(e.done)
			case 7:
				n.node.Start()
				n.scheduleWorkload()
				close(e.done)
			case 8: // automatic workload send
				if w := n.fed.cfg.Workload; w != nil {
					select {
					case <-n.fed.stopped:
						return
					default:
					}
					if !n.node.Failed() {
						if dst, ok := n.pickWorkloadDst(w); ok {
							n.nextSeq++
							n.app.state.Sent++
							n.node.Send(dst, core.AppPayload{
								ID:   core.LogicalID{Src: n.id, Seq: n.nextSeq},
								Size: w.Size,
							})
						}
					}
					n.scheduleWorkload()
				}
			}
		}
	}
}

// SendApp injects one application message from src to dst (size bytes).
func (f *Live) SendApp(src, dst topology.NodeID, size int) {
	f.nodes[src].post(event{kind: 2, dst: dst, payload: core.AppPayload{Size: size}})
}

// Crash fail-stops a node.
func (f *Live) Crash(id topology.NodeID) {
	f.transport.SetDown(id, true)
	f.nodes[id].post(event{kind: 3})
}

// Recover restarts a crashed node and notifies the failure detector's
// chosen coordinator (the lowest-index surviving node of the cluster).
func (f *Live) Recover(id topology.NodeID) error {
	f.transport.SetDown(id, false)
	f.nodes[id].post(event{kind: 4})
	for i := 0; i < f.cfg.Clusters[id.Cluster]; i++ {
		cand := topology.NodeID{Cluster: id.Cluster, Index: i}
		if cand == id {
			continue
		}
		f.nodes[cand].post(event{kind: 5, failed: id})
		return nil
	}
	return fmt.Errorf("runtime: no survivor in cluster %d", id.Cluster)
}

// Quiesce waits until every node's mailbox has been processed (a sync
// barrier through each event loop).
func (f *Live) Quiesce() {
	for _, ln := range f.nodes {
		done := make(chan struct{})
		ln.post(event{kind: 6, done: done})
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			return
		}
	}
}

// Stat reads a protocol counter.
func (f *Live) Stat(name string) uint64 { return f.stats.value(name) }

// Stop halts all node goroutines and closes the transport. After Stop
// the federation's state is frozen and safe to inspect.
func (f *Live) Stop() {
	close(f.stopped)
	for _, ln := range f.nodes {
		ln.timerMu.Lock()
		for _, t := range ln.timers {
			t.Stop()
		}
		ln.timerMu.Unlock()
	}
	f.transport.Close()
	f.wg.Wait()
}

// NodeSN reads a node's cluster sequence number (only safe after Stop
// or Quiesce).
func (f *Live) NodeSN(id topology.NodeID) core.SN { return f.nodes[id].node.SN() }

// NodeStored reads a node's stored checkpoint count (after Stop).
func (f *Live) NodeStored(id topology.NodeID) int { return f.nodes[id].node.StoredCount() }

// Delivered reads how often a node received a logical message (after
// Stop).
func (f *Live) Delivered(id topology.NodeID, lid core.LogicalID) int {
	return f.nodes[id].app.state.Delivered[lid]
}

// DeliveredCount reads a node's distinct delivery count (after Stop).
func (f *Live) DeliveredCount(id topology.NodeID) int {
	return len(f.nodes[id].app.state.Delivered)
}
