package runtime

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/oracle"
	"repro/internal/sim"
	"repro/internal/topology"
)

// AppState is the live application's checkpointable state. Exported
// (and gob-encodable) because checkpoint replicas carry it over TCP.
type AppState struct {
	Sent      uint64
	Delivered map[core.LogicalID]int
}

// liveApp implements core.AppHooks for the live runtime: a tiny
// application that counts sends and records deliveries. All accesses
// happen on the node's event goroutine.
type liveApp struct {
	state AppState
}

func newLiveApp() *liveApp {
	return &liveApp{state: AppState{Delivered: make(map[core.LogicalID]int)}}
}

func (a *liveApp) Snapshot() (any, int) {
	cp := AppState{Sent: a.state.Sent, Delivered: make(map[core.LogicalID]int, len(a.state.Delivered))}
	for k, v := range a.state.Delivered {
		cp.Delivered[k] = v
	}
	return cp, 1024
}

func (a *liveApp) Restore(state any) {
	s := state.(AppState)
	a.state = AppState{Sent: s.Sent, Delivered: make(map[core.LogicalID]int, len(s.Delivered))}
	for k, v := range s.Delivered {
		a.state.Delivered[k] = v
	}
}

func (a *liveApp) Deliver(from topology.NodeID, p core.AppPayload) {
	a.state.Delivered[p.ID]++
}

// Workload drives automatic application traffic in a live federation:
// every node sends one message per period to a random peer.
type Workload struct {
	// Period between two sends of one node (e.g. 5 ms).
	Period time.Duration
	// InterProb is the probability a send crosses clusters.
	InterProb float64
	// Size is the payload size in bytes.
	Size int
}

// Config parameterizes a live federation.
type Config struct {
	// Clusters is the node count per cluster.
	Clusters []int
	// CLCPeriod is the wall-clock delay between unforced CLCs, per
	// cluster (defaults to 50 ms).
	CLCPeriods []time.Duration
	// GCPeriod enables garbage collection (0 = off).
	GCPeriod time.Duration
	// Replicas is the stable-storage replication degree (default 1).
	Replicas int
	// Workload, when non-nil, generates automatic traffic.
	Workload *Workload
	// Transport defaults to NewChanTransport().
	Transport Transport
	// Trace, when non-nil, receives protocol trace output.
	Trace io.Writer
	// LocalNodes restricts which federation nodes this process hosts
	// (nil = all of them, the in-process default). A subset federation
	// needs a TCP transport whose address map covers every node.
	LocalNodes []topology.NodeID
	// Recovering marks this process as a restarted incarnation of its
	// LocalNodes: they boot with lost state, announce themselves to
	// their cluster (Hello) and wait passively for the rollback the
	// surviving peers initiate, exactly like an in-process Restart.
	Recovering bool
	// Journal, when non-nil, receives one JSONL event per protocol
	// observation of the hosted nodes (commits, rollbacks, deliveries,
	// GC drops, control-message sends).
	Journal *Journal
}

// event is one item on a node's serial event loop.
type event struct {
	kind    int // 0 msg, 1 timer, 2 appSend, 3 crash, 4 restart, 5 detect, 6 sync, 7 start, 8 workload, 9 recoverBoot, 10 rejoinTick
	src     topology.NodeID
	msg     core.Msg
	timer   core.TimerKind
	dst     topology.NodeID
	payload core.AppPayload
	failed  topology.NodeID
	done    chan struct{}
}

// liveNode is one goroutine-driven protocol node.
type liveNode struct {
	id      topology.NodeID
	node    *core.Node
	app     *liveApp
	mailbox chan event
	fed     *Live
	timers  map[core.TimerKind]*time.Timer
	timerMu sync.Mutex
	nextSeq uint64
	rng     uint64 // xorshift state for the workload driver

	// recovered is closed (once) when a crash-recovery incarnation has
	// its state back; it stops the node's rejoin beacon.
	recovered     chan struct{}
	recoveredOnce sync.Once
}

// nextRand advances the node's private xorshift64* generator.
func (n *liveNode) nextRand() uint64 {
	x := n.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	n.rng = x
	return x * 0x2545f4914f6cdd1d
}

// pickWorkloadDst selects a destination per the workload's inter-cluster
// probability.
func (n *liveNode) pickWorkloadDst(w *Workload) (topology.NodeID, bool) {
	sizes := n.fed.cfg.Clusters
	cluster := int(n.id.Cluster)
	if float64(n.nextRand()%1000)/1000 < w.InterProb && len(sizes) > 1 {
		for {
			c := int(n.nextRand() % uint64(len(sizes)))
			if c != cluster {
				cluster = c
				break
			}
		}
	}
	if cluster == int(n.id.Cluster) && sizes[cluster] < 2 {
		return topology.NodeID{}, false
	}
	idx := int(n.nextRand() % uint64(sizes[cluster]))
	for cluster == int(n.id.Cluster) && idx == n.id.Index {
		idx = int(n.nextRand() % uint64(sizes[cluster]))
	}
	return topology.NodeID{Cluster: topology.ClusterID(cluster), Index: idx}, true
}

// scheduleWorkload arms the node's next automatic send.
func (n *liveNode) scheduleWorkload() {
	w := n.fed.cfg.Workload
	if w == nil {
		return
	}
	jitter := time.Duration(n.nextRand() % uint64(w.Period))
	time.AfterFunc(w.Period/2+jitter, func() {
		n.post(event{kind: 8})
	})
}

// Live is a running live federation — all of one, or this process's
// share of a multi-process one (cfg.LocalNodes).
type Live struct {
	cfg       Config
	transport Transport
	nodes     map[topology.NodeID]*liveNode
	start     time.Time
	stats     *liveStats
	trace     io.Writer
	traceMu   sync.Mutex
	journal   *Journal
	stopped   chan struct{}
	wg        sync.WaitGroup

	// detectMu guards lastDetect, the per-victim timestamp of the most
	// recent failure detection (the rejoin beacon's re-trigger damper).
	detectMu   sync.Mutex
	lastDetect map[topology.NodeID]time.Time
}

type liveStats struct {
	mu       sync.Mutex
	counters map[string]uint64
}

func (s *liveStats) add(name string, d uint64) {
	s.mu.Lock()
	s.counters[name] += d
	s.mu.Unlock()
}

func (s *liveStats) value(name string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters[name]
}

// liveEnv adapts the live federation to core.Env for one node.
type liveEnv struct{ n *liveNode }

func (e liveEnv) Now() sim.Time { return sim.Time(time.Since(e.n.fed.start)) }

func (e liveEnv) Send(dst topology.NodeID, size int, msg core.Msg) {
	if j := e.n.fed.journal; j != nil {
		// Journal control-plane sends (not the app-message firehose):
		// the offline artifact that shows *why* a run did what it did,
		// and the hook the chaos harness uses to aim its SIGKILLs.
		switch msg.(type) {
		case core.AppMsg, core.AppAck, core.LogMirror, core.LogTrim:
		default:
			j.Event(oracle.Event{Node: e.n.id.String(), Kind: "send",
				Dst: dst.String(), Msg: fmt.Sprintf("%T", msg)[5:]}) // trim "core."
		}
	}
	if err := e.n.fed.transport.Send(Envelope{Src: e.n.id, Dst: dst, Msg: msg}); err != nil {
		// The transport refused the message outright (unknown peer or
		// a full queue to an unreachable one). The protocol tolerates
		// message loss — that is what it is for — but losing one must
		// be visible: count it, trace it, journal it.
		e.n.fed.stats.add("live.send_dropped", 1)
		e.Trace(sim.TraceInfo, "send to %v dropped: %v", dst, err)
		if j := e.n.fed.journal; j != nil {
			j.Event(oracle.Event{Node: e.n.id.String(), Kind: "drop",
				Dst: dst.String(), Msg: fmt.Sprintf("%T", msg)[5:]})
		}
	}
}

func (e liveEnv) SendApp(dst topology.NodeID, size int, msg core.Msg) {
	e.Send(dst, size, msg)
}

func (e liveEnv) SetTimer(k core.TimerKind, d sim.Duration) {
	e.n.timerMu.Lock()
	defer e.n.timerMu.Unlock()
	if t, ok := e.n.timers[k]; ok {
		t.Stop()
	}
	if d >= sim.Forever {
		return
	}
	n, kind := e.n, k
	e.n.timers[k] = time.AfterFunc(d.Std(), func() {
		n.post(event{kind: 1, timer: kind})
	})
}

func (e liveEnv) Trace(level sim.TraceLevel, format string, args ...any) {
	f := e.n.fed
	if f.trace == nil {
		return
	}
	f.traceMu.Lock()
	fmt.Fprintf(f.trace, "[%8s] %-8v %s\n",
		time.Since(f.start).Truncate(time.Microsecond), e.n.id, fmt.Sprintf(format, args...))
	f.traceMu.Unlock()
}

func (e liveEnv) Stat(name string, delta uint64)        { e.n.fed.stats.add(name, delta) }
func (e liveEnv) StatSeries(name string, value float64) {}

// ---- core.Observer: the per-node event journal ----
//
// liveEnv implements core.Observer so every hosted node journals its
// safety-relevant protocol events. The callbacks run synchronously on
// the node's event goroutine, and the journal marshals immediately, so
// DDV arguments that alias node buffers are safe to pass through. With
// no journal configured every callback is one nil check.

func ddvU64(d core.DDV) []uint64 {
	out := make([]uint64, len(d))
	for i, v := range d {
		out[i] = uint64(v)
	}
	return out
}

func (e liveEnv) ObserveMode(id topology.NodeID, mode core.ProtocolMode) {
	if j := e.n.fed.journal; j != nil {
		ev := oracle.Event{Node: id.String(), Kind: "start",
			Clusters: append([]int(nil), e.n.fed.cfg.Clusters...),
			Mode:     mode.String(), Recovering: e.n.fed.cfg.Recovering}
		j.Event(ev)
	}
}

func (e liveEnv) ObserveCommit(id topology.NodeID, seq core.SN, epoch core.Epoch, ddv core.DDV, pairs []core.DDVPair, forced bool) {
	if j := e.n.fed.journal; j != nil {
		j.Event(oracle.Event{Node: id.String(), Kind: "commit",
			Seq: uint64(seq), Epoch: uint64(epoch), DDV: ddvU64(ddv), Forced: forced})
	}
}

func (e liveEnv) ObserveRollback(id topology.NodeID, toSN core.SN, newEpoch core.Epoch, ddv core.DDV) {
	if j := e.n.fed.journal; j != nil {
		j.Event(oracle.Event{Node: id.String(), Kind: "rollback",
			Seq: uint64(toSN), Epoch: uint64(newEpoch), DDV: ddvU64(ddv)})
	}
}

func (e liveEnv) ObserveDeliver(dst, src topology.NodeID, srcEpoch core.Epoch, sendSN core.SN, recvEpoch core.Epoch, recvSN core.SN) {
	if j := e.n.fed.journal; j != nil {
		j.Event(oracle.Event{Node: dst.String(), Kind: "deliver", Src: src.String(),
			SrcEpoch: uint64(srcEpoch), SendSN: uint64(sendSN),
			RecvEpoch: uint64(recvEpoch), RecvSN: uint64(recvSN)})
	}
}

func (e liveEnv) ObservePiggySend(src topology.NodeID, dstCluster topology.ClusterID, dense core.DDV) {
	// The live runtime speaks the dense wire — no delta pipes, so no
	// pipe-lockstep events to journal.
}

func (e liveEnv) ObserveGCDrop(id topology.NodeID, minSNs []core.SN) {
	if j := e.n.fed.journal; j != nil {
		vals := make([]uint64, len(minSNs))
		for i, v := range minSNs {
			vals[i] = uint64(v)
		}
		j.Event(oracle.Event{Node: id.String(), Kind: "gcdrop", MinSNs: vals})
	}
}

// Start builds and starts a live federation (or, with cfg.LocalNodes,
// this process's share of one).
func Start(cfg Config) (*Live, error) {
	if len(cfg.Clusters) == 0 {
		return nil, fmt.Errorf("runtime: no clusters")
	}
	subset := cfg.LocalNodes != nil
	if subset && cfg.Transport == nil {
		return nil, fmt.Errorf("runtime: a multi-process federation needs a TCP transport with a static address map")
	}
	if cfg.Transport == nil {
		cfg.Transport = NewChanTransport()
	}
	if cfg.Replicas == 0 {
		cfg.Replicas = 1
	}
	if cfg.CLCPeriods == nil {
		cfg.CLCPeriods = make([]time.Duration, len(cfg.Clusters))
	}
	for i := range cfg.CLCPeriods {
		if cfg.CLCPeriods[i] == 0 {
			cfg.CLCPeriods[i] = 50 * time.Millisecond
		}
	}
	f := &Live{
		cfg:        cfg,
		transport:  cfg.Transport,
		nodes:      make(map[topology.NodeID]*liveNode),
		start:      time.Now(),
		stats:      &liveStats{counters: make(map[string]uint64)},
		trace:      cfg.Trace,
		journal:    cfg.Journal,
		stopped:    make(chan struct{}),
		lastDetect: make(map[topology.NodeID]time.Time),
	}
	if tcp, ok := f.transport.(*TCPTransport); ok {
		// Transport counters land in the federation's stat table, and
		// failure suspicions reach the fail-stop handling (onSuspect).
		tcp.SetStat(f.stats.add)
		tcp.SetOnSuspect(f.onSuspect)
	}

	local := func(topology.NodeID) bool { return true }
	if subset {
		set := make(map[topology.NodeID]bool, len(cfg.LocalNodes))
		for _, id := range cfg.LocalNodes {
			if c := int(id.Cluster); c >= len(cfg.Clusters) || id.Index < 0 || id.Index >= cfg.Clusters[c] {
				return nil, fmt.Errorf("runtime: local node %v outside the topology", id)
			}
			set[id] = true
		}
		local = func(id topology.NodeID) bool { return set[id] }
	}

	gcPeriod := sim.Forever
	if cfg.GCPeriod > 0 {
		gcPeriod = sim.Duration(cfg.GCPeriod)
	}
	clampRepl := func(size int) int {
		repl := cfg.Replicas
		if repl > size-1 {
			repl = size - 1
		}
		return repl
	}
	for c, size := range cfg.Clusters {
		for i := 0; i < size; i++ {
			id := topology.NodeID{Cluster: topology.ClusterID(c), Index: i}
			if !local(id) {
				continue
			}
			ln := &liveNode{
				id:        id,
				app:       newLiveApp(),
				mailbox:   make(chan event, 4096),
				fed:       f,
				timers:    make(map[core.TimerKind]*time.Timer),
				rng:       uint64(c*131071+i*8191) + 0x9e3779b97f4a7c15,
				recovered: make(chan struct{}),
			}
			coreCfg := core.Config{
				ID:           id,
				Clusters:     len(cfg.Clusters),
				ClusterSizes: cfg.Clusters,
				CLCPeriod:    sim.Duration(cfg.CLCPeriods[c]),
				GCPeriod:     gcPeriod,
				GCInitiator:  c == 0 && i == 0,
				Replicas:     clampRepl(size),
			}
			ln.node = core.NewNode(coreCfg, liveEnv{ln}, ln.app)
			f.nodes[id] = ln
		}
	}
	// Seed initial replicas. In subset mode a hosted node may hold the
	// replica of a *remote* owner: the initial checkpoint is the same
	// deterministic (fresh app state, SN 1) record on every node, so
	// each process reconstructs its share without talking to anyone.
	// A recovering incarnation skips seeding — its nodes boot with
	// lost state and recover the real thing from the replica holders.
	if !cfg.Recovering {
		for c, size := range cfg.Clusters {
			for i := 0; i < size; i++ {
				owner := topology.NodeID{Cluster: topology.ClusterID(c), Index: i}
				for r := 1; r <= clampRepl(size); r++ {
					tgt := topology.NodeID{Cluster: owner.Cluster, Index: (i + r) % size}
					if !local(tgt) {
						continue
					}
					rep := initialReplicaFor(owner)
					if hosted, ok := f.nodes[owner]; ok {
						rep = hosted.node.InitialReplica()
					}
					f.nodes[tgt].node.SeedReplica(rep)
				}
			}
		}
	}
	for _, ln := range f.nodes {
		ln := ln
		err := f.transport.Register(ln.id, func(env Envelope) {
			if h, ok := env.Msg.(Hello); ok {
				f.onHello(ln, h)
				return
			}
			ln.post(event{kind: 0, src: env.Src, msg: env.Msg})
		})
		if err != nil {
			f.Stop()
			return nil, fmt.Errorf("runtime: register %v: %w", ln.id, err)
		}
	}
	bootKind := 7
	if cfg.Recovering {
		bootKind = 9
	}
	for _, ln := range f.nodes {
		f.wg.Add(1)
		go ln.loop()
		ln.boot(bootKind)
	}
	if cfg.Recovering {
		// Announce the rejoin so a surviving peer runs the failure
		// detector against us — the multi-process analogue of
		// Live.Recover's kind-5 post, with the same ordering: the
		// restart is fully applied before the announcement leaves.
		// The beacon then re-announces until recovery completes: over
		// real TCP any single control message can vanish (a peer's
		// cached connection to our dead predecessor swallows exactly one
		// write before the RST comes back), and the RollbackCmd and
		// RecoverStateResp that recovery hangs on are both one-shot.
		for _, ln := range f.nodes {
			f.announceRejoin(ln)
			f.wg.Add(1)
			go f.rejoinBeacon(ln)
		}
	}
	return f, nil
}

// rejoinPeriod paces a recovering node's Hello beacon; rejoinGrace is
// how long the failure detector lets a triggered rollback run before a
// repeated Hello makes it start over (fresh epoch). Grace must cover a
// healthy recovery round-trip with room to spare, or the re-detection
// would preempt recoveries that were about to succeed.
const (
	rejoinPeriod = 500 * time.Millisecond
	rejoinGrace  = 4 * rejoinPeriod
)

// rejoinBeacon re-announces a recovering node to its cluster until its
// state is back (or the federation stops).
func (f *Live) rejoinBeacon(ln *liveNode) {
	defer f.wg.Done()
	tick := time.NewTicker(rejoinPeriod)
	defer tick.Stop()
	for {
		select {
		case <-f.stopped:
			return
		case <-ln.recovered:
			return
		case <-tick.C:
			ln.post(event{kind: 10})
		}
	}
}

// initialReplicaFor reconstructs a remote owner's bootstrap replica:
// core.NewNode stores the fresh application snapshot as CLC 1 on every
// node, so the record is deterministic across processes.
func initialReplicaFor(owner topology.NodeID) core.Replica {
	state, size := newLiveApp().Snapshot()
	return core.Replica{Seq: 1, Owner: owner, State: state, Size: size}
}

// announceRejoin broadcasts a lost-state Hello to the node's cluster
// peers (journaled, like every control send).
func (f *Live) announceRejoin(ln *liveNode) {
	for i := 0; i < f.cfg.Clusters[ln.id.Cluster]; i++ {
		peer := topology.NodeID{Cluster: ln.id.Cluster, Index: i}
		if peer == ln.id {
			continue
		}
		if f.journal != nil {
			f.journal.Event(oracle.Event{Node: ln.id.String(), Kind: "hello", Dst: peer.String()})
		}
		if err := f.transport.Send(Envelope{Src: ln.id, Dst: peer, Msg: Hello{From: ln.id, LostState: true}}); err != nil {
			f.stats.add("live.send_dropped", 1)
		}
	}
}

// onHello handles a peer's rejoin announcement at a hosted node. The
// failure detector's coordinator choice must be deterministic across
// processes without coordination, so it mirrors Live.Recover: the
// lowest-index cluster node that is not the victim runs the detection.
// Rollback starts only now — after the victim is back and reachable —
// because its RollbackCmd must actually arrive (a command sent while
// the victim was down would be lost, wedging the 2PC rollback barrier;
// transport suspicion alone therefore never triggers it).
//
// The victim beacons its Hello until recovery completes, so repeated
// announcements are the norm, not an anomaly. Re-triggering detection
// on every one would preempt rollbacks mid-flight; never re-triggering
// would wedge the first time a RollbackCmd or RecoverStateResp is
// swallowed by a dead cached connection. The middle ground: a repeat
// Hello restarts the rollback only once the previous detection is older
// than rejoinGrace — long enough that a healthy recovery has finished,
// so a re-detection means the last round really lost a message.
func (f *Live) onHello(ln *liveNode, h Hello) {
	if f.journal != nil {
		f.journal.Event(oracle.Event{Node: ln.id.String(), Kind: "hello", Src: h.From.String()})
	}
	if !h.LostState || h.From.Cluster != ln.id.Cluster || h.From == ln.id {
		return
	}
	detector := 0
	if h.From.Index == 0 {
		detector = 1
	}
	if ln.id.Index != detector {
		return
	}
	f.detectMu.Lock()
	last, seen := f.lastDetect[h.From]
	again := !seen || time.Since(last) >= rejoinGrace
	if again {
		f.lastDetect[h.From] = time.Now()
	}
	f.detectMu.Unlock()
	if !again {
		return
	}
	ln.post(event{kind: 5, failed: h.From})
}

// onSuspect is the transport's failure-suspicion callback: a peer has
// stayed unreachable past the threshold. It feeds the fail-stop
// picture (stat + journal + trace) that operators and the offline
// replay see; the rollback itself waits for the peer's rejoin (see
// onHello).
func (f *Live) onSuspect(peer topology.NodeID) {
	f.stats.add("live.suspected", 1)
	if f.journal != nil {
		f.journal.Event(oracle.Event{Node: peer.String(), Kind: "suspect"})
	}
	if f.trace != nil {
		f.traceMu.Lock()
		fmt.Fprintf(f.trace, "[%8s] %-8v suspected unreachable\n",
			time.Since(f.start).Truncate(time.Microsecond), peer)
		f.traceMu.Unlock()
	}
}

// boot runs the node's start (kind 7) or crash-recovery boot (kind 9)
// on its own goroutine and waits for it to apply.
func (n *liveNode) boot(kind int) {
	done := make(chan struct{})
	n.mailbox <- event{kind: kind, done: done}
	<-done
}

func (n *liveNode) post(e event) {
	select {
	case n.mailbox <- e:
	case <-n.fed.stopped:
	}
}

// loop is the node's serial event loop: every protocol interaction
// happens here, satisfying core.Node's sequential contract.
func (n *liveNode) loop() {
	defer n.fed.wg.Done()
	for {
		select {
		case <-n.fed.stopped:
			return
		case e := <-n.mailbox:
			switch e.kind {
			case 0:
				n.node.OnMessage(e.src, e.msg)
			case 1:
				n.node.OnTimer(e.timer)
			case 2:
				if !n.node.Failed() {
					n.nextSeq++
					n.app.state.Sent++
					p := core.AppPayload{
						ID:   core.LogicalID{Src: n.id, Seq: n.nextSeq},
						Size: e.payload.Size,
					}
					n.node.Send(e.dst, p)
				}
			case 3:
				n.node.Fail()
			case 4:
				n.node.Restart()
			case 5:
				// A failed or lost-state detector cannot coordinate a
				// rollback; the victim will re-announce if needed.
				if !n.node.Failed() && !n.node.LostState() {
					n.node.OnFailureDetected(e.failed)
				}
			case 6:
				close(e.done)
			case 7:
				n.node.Start()
				n.scheduleWorkload()
				close(e.done)
			case 9:
				// Crash-recovery boot of a fresh OS process: the node
				// revives with empty volatile memory and waits for its
				// cluster's RollbackCmd (announceRejoin makes sure one
				// comes). Message identities must not collide with the
				// previous incarnation's — the boot time in nanoseconds
				// is a strictly increasing base for both counters.
				n.node.Restart()
				base := uint64(time.Now().UnixNano())
				n.node.SeedMsgID(base)
				if n.nextSeq < base {
					n.nextSeq = base
				}
				n.scheduleWorkload()
				close(e.done)
			case 10:
				// Rejoin beacon tick: keep announcing while the state is
				// still lost, stop the beacon once it is back.
				if n.node.LostState() {
					n.fed.announceRejoin(n)
				} else {
					n.recoveredOnce.Do(func() { close(n.recovered) })
				}
			case 8: // automatic workload send
				if w := n.fed.cfg.Workload; w != nil {
					select {
					case <-n.fed.stopped:
						return
					default:
					}
					if !n.node.Failed() {
						if dst, ok := n.pickWorkloadDst(w); ok {
							n.nextSeq++
							n.app.state.Sent++
							n.node.Send(dst, core.AppPayload{
								ID:   core.LogicalID{Src: n.id, Seq: n.nextSeq},
								Size: w.Size,
							})
						}
					}
					n.scheduleWorkload()
				}
			}
		}
	}
}

// SendApp injects one application message from src to dst (size bytes).
func (f *Live) SendApp(src, dst topology.NodeID, size int) {
	f.nodes[src].post(event{kind: 2, dst: dst, payload: core.AppPayload{Size: size}})
}

// Crash fail-stops a node.
func (f *Live) Crash(id topology.NodeID) {
	f.transport.SetDown(id, true)
	f.nodes[id].post(event{kind: 3})
}

// Recover restarts a crashed node and notifies the failure detector's
// chosen coordinator (the lowest-index surviving node of the cluster).
func (f *Live) Recover(id topology.NodeID) error {
	f.transport.SetDown(id, false)
	f.nodes[id].post(event{kind: 4})
	for i := 0; i < f.cfg.Clusters[id.Cluster]; i++ {
		cand := topology.NodeID{Cluster: id.Cluster, Index: i}
		if cand == id {
			continue
		}
		f.nodes[cand].post(event{kind: 5, failed: id})
		return nil
	}
	return fmt.Errorf("runtime: no survivor in cluster %d", id.Cluster)
}

// Quiesce waits until every node's mailbox has been processed (a sync
// barrier through each event loop).
func (f *Live) Quiesce() {
	for _, ln := range f.nodes {
		done := make(chan struct{})
		ln.post(event{kind: 6, done: done})
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			return
		}
	}
}

// Stat reads a protocol counter.
func (f *Live) Stat(name string) uint64 { return f.stats.value(name) }

// Stats snapshots every counter (protocol and transport).
func (f *Live) Stats() map[string]uint64 {
	f.stats.mu.Lock()
	defer f.stats.mu.Unlock()
	out := make(map[string]uint64, len(f.stats.counters))
	for k, v := range f.stats.counters {
		out[k] = v
	}
	return out
}

// LocalIDs lists the nodes hosted in this process.
func (f *Live) LocalIDs() []topology.NodeID {
	ids := make([]topology.NodeID, 0, len(f.nodes))
	for id := range f.nodes {
		ids = append(ids, id)
	}
	return ids
}

// Stop halts all node goroutines and closes the transport. After Stop
// the federation's state is frozen and safe to inspect.
func (f *Live) Stop() {
	if f.journal != nil {
		for id := range f.nodes {
			f.journal.Event(oracle.Event{Node: id.String(), Kind: "stop", Stats: f.Stats()})
		}
		f.journal.Sync()
	}
	close(f.stopped)
	for _, ln := range f.nodes {
		ln.timerMu.Lock()
		for _, t := range ln.timers {
			t.Stop()
		}
		ln.timerMu.Unlock()
	}
	f.transport.Close()
	f.wg.Wait()
}

// NodeSN reads a node's cluster sequence number (only safe after Stop
// or Quiesce).
func (f *Live) NodeSN(id topology.NodeID) core.SN { return f.nodes[id].node.SN() }

// NodeStored reads a node's stored checkpoint count (after Stop).
func (f *Live) NodeStored(id topology.NodeID) int { return f.nodes[id].node.StoredCount() }

// Delivered reads how often a node received a logical message (after
// Stop).
func (f *Live) Delivered(id topology.NodeID, lid core.LogicalID) int {
	return f.nodes[id].app.state.Delivered[lid]
}

// DeliveredCount reads a node's distinct delivery count (after Stop).
func (f *Live) DeliveredCount(id topology.NodeID) int {
	return len(f.nodes[id].app.state.Delivered)
}
