package runtime

import (
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/topology"
)

// reservePorts picks n free loopback addresses by binding and
// releasing them (the standard fixed-port test idiom).
func reservePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	return addrs
}

// TestTCPTransportPeerRestart proves the tentpole's core resilience
// claim: a peer whose listener dies and comes back is survived — the
// dead connection is evicted (never permanently cached), sends during
// the outage drop after bounded backoff-paced redials, and once the
// peer returns the redial succeeds with pairwise FIFO intact for the
// new connection epoch.
func TestTCPTransportPeerRestart(t *testing.T) {
	ports := reservePorts(t, 2)
	addrs := map[topology.NodeID]string{a(): ports[0], bN(): ports[1]}
	cfg := TCPConfig{
		Addrs:        addrs,
		DialTimeout:  100 * time.Millisecond,
		SendDeadline: 250 * time.Millisecond,
		BackoffMin:   2 * time.Millisecond,
		BackoffMax:   20 * time.Millisecond,
	}
	sender := NewTCPTransportWith(cfg)
	defer sender.Close()
	if err := sender.Register(a(), func(Envelope) {}); err != nil {
		t.Fatal(err)
	}

	newReceiver := func() (*TCPTransport, func() []Envelope) {
		tr := NewTCPTransportWith(cfg)
		var mu sync.Mutex
		var got []Envelope
		if err := tr.Register(bN(), func(env Envelope) {
			mu.Lock()
			got = append(got, env)
			mu.Unlock()
		}); err != nil {
			t.Fatal(err)
		}
		return tr, func() []Envelope {
			mu.Lock()
			defer mu.Unlock()
			return append([]Envelope(nil), got...)
		}
	}
	send := func(id uint64) {
		// Queue acceptance never fails here; delivery is what the
		// collectors assert.
		if err := sender.Send(Envelope{Src: a(), Dst: bN(), Msg: core.AppMsg{MsgID: id}}); err != nil {
			t.Fatal(err)
		}
	}

	// Epoch 1: a batch flows normally.
	recv1, got1 := newReceiver()
	for i := uint64(1); i <= 50; i++ {
		send(i)
	}
	waitFor(t, func() bool { return len(got1()) == 50 })
	recv1.Close()

	// Outage: these sends break the cached connection, get evicted,
	// redial against nothing and drop at the deadline. (The very first
	// write can still land in the dead socket's buffer before the RST
	// arrives — TCP lets one write through after a peer close — so at
	// least 9 of the 10 must drop, and we wait out every deadline so
	// no straggler retry leaks into the next connection epoch.)
	outageStart := time.Now()
	for i := uint64(51); i <= 60; i++ {
		send(i)
	}
	waitFor(t, func() bool { return sender.Stats()["transport.dropped"] >= 9 })
	time.Sleep(time.Until(outageStart.Add(cfg.SendDeadline + 100*time.Millisecond)))
	st := sender.Stats()
	if st["transport.evictions"] == 0 {
		t.Fatal("dead connection was never evicted")
	}
	if st["transport.redials"] == 0 {
		t.Fatal("no redial attempts during the outage")
	}

	// Epoch 2: the peer restarts on the same address; the next sends
	// redial successfully and arrive in order.
	recv2, got2 := newReceiver()
	defer recv2.Close()
	for i := uint64(61); i <= 160; i++ {
		send(i)
	}
	waitFor(t, func() bool { return len(got2()) == 100 })
	for i, env := range got2() {
		if want := uint64(61 + i); env.Msg.(core.AppMsg).MsgID != want {
			t.Fatalf("FIFO violated after reconnect at %d: got %d want %d",
				i, env.Msg.(core.AppMsg).MsgID, want)
		}
	}
}

// TestTCPTransportTornFrame proves a garbage byte stream on the wire
// kills only its own connection: the decoder goroutine exits, the
// accept loop keeps serving, and real traffic still flows.
func TestTCPTransportTornFrame(t *testing.T) {
	tr := NewTCPTransport()
	defer tr.Close()
	var mu sync.Mutex
	var got []Envelope
	if err := tr.Register(bN(), func(env Envelope) {
		mu.Lock()
		got = append(got, env)
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}

	// A rogue connection writes a torn/garbage frame and vanishes.
	conn, err := net.Dial("tcp", tr.Addr(bN()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("this is not a gob stream\xff\x00\x01")); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	// The listener must still accept and decode fresh connections.
	if err := tr.Send(Envelope{Src: a(), Dst: bN(), Msg: core.AppAck{MsgID: 7}}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == 1
	})
	if got[0].Msg.(core.AppAck).MsgID != 7 {
		t.Fatalf("wrong message after torn frame: %+v", got[0].Msg)
	}
}

// TestTCPTransportBackoffAndSuspicion proves sends under a partition
// stay bounded: redials are backoff-paced (neither one hot loop nor a
// single stalled attempt), the envelope drops at its deadline instead
// of blocking forever, and the failure-suspicion callback fires once
// per outage episode after the threshold.
func TestTCPTransportBackoffAndSuspicion(t *testing.T) {
	ports := reservePorts(t, 2)
	suspects := make(chan topology.NodeID, 4)
	tr := NewTCPTransportWith(TCPConfig{
		Addrs:        map[topology.NodeID]string{a(): ports[0], bN(): ports[1]},
		DialTimeout:  50 * time.Millisecond,
		SendDeadline: 400 * time.Millisecond,
		BackoffMin:   10 * time.Millisecond,
		BackoffMax:   40 * time.Millisecond,
		SuspectAfter: 100 * time.Millisecond,
		OnSuspect:    func(peer topology.NodeID) { suspects <- peer },
	})
	defer tr.Close()
	if err := tr.Register(a(), func(Envelope) {}); err != nil {
		t.Fatal(err)
	}

	// Nobody listens on b's port: the send must redial under backoff
	// and drop at the deadline.
	if err := tr.Send(Envelope{Src: a(), Dst: bN(), Msg: core.AppAck{MsgID: 1}}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return tr.Stats()["transport.dropped"] == 1 })

	redials := tr.Stats()["transport.redials"]
	// Backoff arithmetic: sleeps of 10,20,40,40,... (halved at most by
	// jitter) must fill the 400 ms deadline — between ~10 and ~25
	// attempts. Wide bounds keep CI schedulers honest without flaking.
	if redials < 3 || redials > 60 {
		t.Fatalf("redials = %d, want backoff-paced (3..60) over a 400ms deadline", redials)
	}
	select {
	case peer := <-suspects:
		if peer != bN() {
			t.Fatalf("suspected %v, want %v", peer, bN())
		}
	case <-time.After(2 * time.Second):
		t.Fatal("suspicion callback never fired")
	}
	if n := tr.Stats()["transport.suspects"]; n != 1 {
		t.Fatalf("suspicion fired %d times for one outage episode", n)
	}
}
