package runtime

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/topology"
)

// WorkloadFile is the JSON form of Workload.
type WorkloadFile struct {
	PeriodMS  int     `json:"period_ms"`
	InterProb float64 `json:"inter_prob"`
	Size      int     `json:"size"`
}

// FederationFile is the on-disk topology a multi-process federation
// shares: every hc3id daemon loads the same file and finds its peers
// in Addrs. See cmd/hc3id for the full format documentation.
type FederationFile struct {
	// Clusters is the node count per cluster.
	Clusters []int `json:"clusters"`
	// Addrs maps every node ("c0n1") to its TCP listen address.
	Addrs map[string]string `json:"addrs"`
	// CLCPeriodMS is the wall-clock delay between unforced CLCs
	// (default 50 ms), applied to every cluster.
	CLCPeriodMS int `json:"clc_period_ms,omitempty"`
	// GCPeriodMS enables garbage collection (0 = off).
	GCPeriodMS int `json:"gc_period_ms,omitempty"`
	// Replicas is the stable-storage replication degree (default 1).
	Replicas int `json:"replicas,omitempty"`
	// Workload, when non-nil, makes every daemon generate automatic
	// application traffic.
	Workload *WorkloadFile `json:"workload,omitempty"`
}

// LoadFederationFile reads and validates a federation config file.
func LoadFederationFile(path string) (*FederationFile, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f FederationFile
	if err := json.Unmarshal(b, &f); err != nil {
		return nil, fmt.Errorf("runtime: %s: %v", path, err)
	}
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("runtime: %s: %v", path, err)
	}
	return &f, nil
}

// Validate checks the shape: at least one cluster, every node of the
// topology addressed, no stray addresses.
func (f *FederationFile) Validate() error {
	if len(f.Clusters) == 0 {
		return fmt.Errorf("no clusters")
	}
	total := 0
	for c, size := range f.Clusters {
		if size <= 0 {
			return fmt.Errorf("cluster %d has %d nodes", c, size)
		}
		total += size
	}
	addrs, err := f.AddrMap()
	if err != nil {
		return err
	}
	for c, size := range f.Clusters {
		for i := 0; i < size; i++ {
			id := topology.NodeID{Cluster: topology.ClusterID(c), Index: i}
			if addrs[id] == "" {
				return fmt.Errorf("node %v has no address", id)
			}
		}
	}
	if len(addrs) != total {
		return fmt.Errorf("%d addresses for a %d-node federation", len(addrs), total)
	}
	return nil
}

// AddrMap parses Addrs into transport form.
func (f *FederationFile) AddrMap() (map[topology.NodeID]string, error) {
	out := make(map[topology.NodeID]string, len(f.Addrs))
	for key, addr := range f.Addrs {
		id, err := topology.ParseNodeID(key)
		if err != nil {
			return nil, err
		}
		if c := int(id.Cluster); c >= len(f.Clusters) || id.Index >= f.Clusters[c] {
			return nil, fmt.Errorf("address for %v, which the topology does not contain", id)
		}
		out[id] = addr
	}
	return out, nil
}

// RuntimeConfig translates the file into a live Config for the given
// hosted subset (nil = all nodes in-process). Transport and Journal
// stay for the caller to fill in.
func (f *FederationFile) RuntimeConfig(local []topology.NodeID) Config {
	cfg := Config{
		Clusters:   append([]int(nil), f.Clusters...),
		Replicas:   f.Replicas,
		LocalNodes: local,
	}
	if f.CLCPeriodMS > 0 {
		cfg.CLCPeriods = make([]time.Duration, len(f.Clusters))
		for i := range cfg.CLCPeriods {
			cfg.CLCPeriods[i] = time.Duration(f.CLCPeriodMS) * time.Millisecond
		}
	}
	if f.GCPeriodMS > 0 {
		cfg.GCPeriod = time.Duration(f.GCPeriodMS) * time.Millisecond
	}
	if f.Workload != nil {
		cfg.Workload = &Workload{
			Period:    time.Duration(f.Workload.PeriodMS) * time.Millisecond,
			InterProb: f.Workload.InterProb,
			Size:      f.Workload.Size,
		}
	}
	return cfg
}
