package baseline

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/topology"
)

// GlobalCoordinated checkpoints the entire federation with one
// two-phase commit: the global initiator (cluster 0, node 0) freezes
// every node — across WAN links — snapshots, then commits. It is
// correct and simple, but the freeze window scales with the slowest
// link and the node count, which is exactly why the paper rejects it
// for federations (§2.2). A failure rolls back every node to the last
// global checkpoint.
type GlobalCoordinated struct {
	common

	seq    core.SN
	frozen bool
	sendQ  []core.AppPayloadTo
	inbQ   []wire
	snaps  []*snapshotRec

	// sendLog keeps sent messages until acknowledged, standing in for
	// transport-level reliability across restarts: at restore time
	// unacknowledged messages whose send is part of the restored state
	// are retransmitted.
	sendLog   map[uint64]wire
	nextMsgID uint64

	// Per-cluster commit keys, rendered once (the initiator commits on
	// behalf of every cluster, so common's own-cluster pair is not
	// enough here).
	keysCommitted []string
	keysUnforced  []string

	// initiator state
	inFlight  bool
	acks      map[topology.NodeID]bool
	reqAt     sim.Time
	rbActive  bool
	rbAcks    map[topology.NodeID]bool
	provState any
	provSize  int
}

// NewGlobalCoordinated builds one node of the global-coordinated
// baseline; use it as a federation.NodeFactory.
func NewGlobalCoordinated(cfg core.Config, env core.Env, app core.AppHooks) *GlobalCoordinated {
	g := &GlobalCoordinated{
		common:  newCommon(cfg, env, app),
		sendLog: make(map[uint64]wire),
	}
	state, size := app.Snapshot()
	g.seq = 1
	g.snaps = append(g.snaps, &snapshotRec{Seq: 1, State: state, Size: size, At: env.Now()})
	return g
}

func (g *GlobalCoordinated) initiator() bool {
	return g.id.Cluster == 0 && g.id.Index == 0
}

// Start arms the global checkpoint timer on the initiator.
func (g *GlobalCoordinated) Start() {
	if g.initiator() {
		g.env.SetTimer(core.TimerCLC, g.cfg.CLCPeriod)
	}
}

// SN returns the node's global checkpoint sequence number.
func (g *GlobalCoordinated) SN() core.SN { return g.seq }

// StoredCount returns the stored global checkpoints (always pruned to
// the newest: earlier ones can never be a rollback target).
func (g *GlobalCoordinated) StoredCount() int { return len(g.snaps) }

// LogLen returns the unacknowledged entries of the volatile send log
// (the scenario matrix's log high-water quantity).
func (g *GlobalCoordinated) LogLen() int { return len(g.sendLog) }

// Fail crashes the node.
func (g *GlobalCoordinated) Fail() { g.failed = true }

// Restart revives the node. For simplicity of the baseline, the state
// survives on the neighbour implicitly: the next global rollback
// restores everyone anyway.
func (g *GlobalCoordinated) Restart() {
	g.failed = false
	g.frozen = false
	g.sendQ = nil
	g.inbQ = nil
	g.inFlight = false
	g.sendLog = make(map[uint64]wire)
}

// Send transmits or queues an application payload.
func (g *GlobalCoordinated) Send(dst topology.NodeID, p core.AppPayload) {
	if g.failed {
		return
	}
	if g.frozen {
		g.sendQ = append(g.sendQ, core.AppPayloadTo{Dst: dst, Payload: p})
		return
	}
	g.nextMsgID++
	m := wire{Kind: "app", Epoch: g.epoch, From: g.id, Dst: dst, Payload: p, SendSeq: g.seq, MsgID: g.nextMsgID}
	g.sendLog[m.MsgID] = m
	g.notePeak(len(g.sendLog))
	g.sendApp(dst, m)
}

// OnTimer starts a global checkpoint on the initiator.
func (g *GlobalCoordinated) OnTimer(k core.TimerKind) {
	if g.failed || k != core.TimerCLC || !g.initiator() {
		return
	}
	if g.inFlight || g.rbActive {
		g.env.SetTimer(core.TimerCLC, g.cfg.CLCPeriod)
		return
	}
	g.inFlight = true
	g.acks = make(map[topology.NodeID]bool)
	g.reqAt = g.env.Now()
	req := wire{Kind: "prep", Seq: g.seq + 1, Epoch: g.epoch}
	for _, id := range g.allNodes() {
		if id != g.id {
			g.send(id, req)
		}
	}
	g.prepare(req)
	g.acks[g.id] = true
	g.maybeCommit()
}

func (g *GlobalCoordinated) prepare(m wire) {
	g.frozen = true
	g.provState, g.provSize = g.app.Snapshot()
	// Stable storage: replicate the local state to the neighbour, like
	// HC3I's §3.1 (priced, fire-and-forget in this baseline).
	if g.size > 1 {
		rep := wire{Kind: "replica", From: g.id, Seq: m.Seq, State: g.provState, Size: g.provSize}
		g.send(g.neighbour(), rep)
	}
}

// OnMessage dispatches baseline wire messages.
func (g *GlobalCoordinated) OnMessage(src topology.NodeID, msg core.Msg) {
	if g.failed {
		return
	}
	m, ok := unwrap(msg)
	if !ok {
		return
	}
	switch m.Kind {
	case "app":
		if m.Epoch < g.epoch && m.SendSeq >= g.seq {
			return // aborted-execution traffic (replay regenerates it)
		}
		if g.frozen {
			g.inbQ = append(g.inbQ, m)
			return
		}
		g.deliver(m)
	case "app-ack":
		delete(g.sendLog, m.MsgID)
	case "prep":
		if m.Epoch != g.epoch {
			return
		}
		g.prepare(m)
		ack := wire{Kind: "ack", Seq: m.Seq, Epoch: g.epoch, From: g.id}
		g.send(src, ack)
	case "ack":
		if !g.inFlight || m.Epoch != g.epoch {
			return
		}
		g.acks[m.From] = true
		g.maybeCommit()
	case "commit":
		if m.Epoch != g.epoch {
			return
		}
		g.applyCommit(m.Seq)
	case "rollback":
		if m.Epoch <= g.epoch {
			return
		}
		g.restore(m.Seq, m.Epoch)
		ack := wire{Kind: "rback-ack", Seq: m.Seq, Epoch: m.Epoch, From: g.id}
		g.send(src, ack)
	case "rback-ack":
		if !g.rbActive || m.Epoch != g.epoch {
			return
		}
		g.rbAcks[m.From] = true
		if len(g.rbAcks) == len(g.allNodes()) {
			g.rbActive = false
			res := wire{Kind: "resume", Epoch: g.epoch}
			for _, id := range g.allNodes() {
				if id != g.id {
					g.send(id, res)
				}
			}
			g.resume()
		}
	case "resume":
		if m.Epoch != g.epoch {
			return
		}
		g.resume()
	case "replica":
		// Neighbour state received; stored implicitly (priced only).
	}
}

func (g *GlobalCoordinated) deliver(m wire) {
	if m.SendSeq < g.seq {
		// Crossed one or more global lines: fold into those snapshots.
		for _, s := range g.snaps {
			if s.Seq > m.SendSeq && s.Seq <= g.seq {
				s.Late = append(s.Late, m.Payload)
			}
		}
	}
	g.app.Deliver(m.From, m.Payload)
	ack := wire{Kind: "app-ack", From: g.id, MsgID: m.MsgID}
	g.send(m.From, ack)
}

func (g *GlobalCoordinated) maybeCommit() {
	if len(g.acks) < len(g.allNodes()) {
		return
	}
	g.inFlight = false
	seq := g.seq + 1
	com := wire{Kind: "commit", Seq: seq, Epoch: g.epoch}
	for _, id := range g.allNodes() {
		if id != g.id {
			g.send(id, com)
		}
	}
	g.applyCommit(seq)
	freeze := g.env.Now().Sub(g.reqAt)
	g.env.Stat("gcoord.committed", 1)
	g.env.Stat("gcoord.freeze_us_total", uint64(freeze/sim.Microsecond))
	if g.keysCommitted == nil {
		// Rendered lazily: only the initiator commits on behalf of every
		// cluster, so the other nodes never pay for these nc key strings.
		for c := 0; c < g.cfg.Clusters; c++ {
			g.keysCommitted = append(g.keysCommitted, statCluster("clc.committed", c))
			g.keysUnforced = append(g.keysUnforced, statCluster("clc.committed", c)+".unforced")
		}
	}
	for c := 0; c < g.cfg.Clusters; c++ {
		g.env.Stat(g.keysCommitted[c], 1)
		g.env.Stat(g.keysUnforced[c], 1)
	}
	g.env.SetTimer(core.TimerCLC, g.cfg.CLCPeriod)
}

func statCluster(base string, c int) string {
	return fmt.Sprintf("%s.c%d", base, c)
}

func (g *GlobalCoordinated) applyCommit(seq core.SN) {
	g.seq = seq
	// Only the newest global checkpoint can ever be restored: prune.
	g.snaps = g.snaps[:0]
	g.snaps = append(g.snaps, &snapshotRec{Seq: seq, State: g.provState, Size: g.provSize, At: g.env.Now()})
	g.frozen = false
	g.drain()
}

func (g *GlobalCoordinated) drain() {
	sq := g.sendQ
	g.sendQ = nil
	for _, s := range sq {
		g.Send(s.Dst, s.Payload)
	}
	iq := g.inbQ
	g.inbQ = nil
	for _, m := range iq {
		if m.Epoch == g.epoch {
			g.deliver(m)
		}
	}
}

// OnFailureDetected rolls the whole federation back to the last global
// checkpoint; the notified survivor coordinates.
func (g *GlobalCoordinated) OnFailureDetected(failed topology.NodeID) {
	if g.failed || g.rbActive {
		return
	}
	newEpoch := g.epoch + 1
	g.rbActive = true
	g.rbAcks = map[topology.NodeID]bool{g.id: true}
	last := g.snaps[len(g.snaps)-1]
	cmd := wire{Kind: "rollback", Seq: last.Seq, Epoch: newEpoch}
	for _, id := range g.allNodes() {
		if id != g.id {
			g.send(id, cmd)
		}
	}
	for c := 0; c < g.cfg.Clusters; c++ {
		g.env.Stat(statCluster("rollback.count", c), 1)
	}
	g.env.Stat("gcoord.rollbacks", 1)
	g.restore(last.Seq, newEpoch)
}

func (g *GlobalCoordinated) restore(seq core.SN, epoch core.Epoch) {
	g.inFlight = false
	g.sendQ = nil
	g.inbQ = nil
	var rec *snapshotRec
	for _, s := range g.snaps {
		if s.Seq == seq {
			rec = s
		}
	}
	if rec == nil {
		// A restarted node lost its snapshot; re-adopt the initial
		// application state via a fresh snapshot of whatever the app
		// restored — in this simplified baseline the neighbour copy is
		// modelled as always available.
		state, size := g.app.Snapshot()
		rec = &snapshotRec{Seq: seq, State: state, Size: size, At: g.env.Now()}
		g.snaps = []*snapshotRec{rec}
	}
	g.app.Restore(rec.State)
	for _, p := range rec.Late {
		g.app.Deliver(g.id, p)
	}
	g.seq = seq
	g.epoch = epoch
	g.frozen = true // until resume
}

func (g *GlobalCoordinated) resume() {
	g.frozen = false
	g.drain()
	// Transport-level reliability across the restart: retransmit every
	// unacknowledged message whose send is part of the restored state
	// (newer sends are regenerated by the application's re-execution).
	for id, m := range g.sendLog {
		if m.SendSeq >= g.seq {
			delete(g.sendLog, id)
			continue
		}
		m.Epoch = g.epoch
		g.sendLog[id] = m
		g.sendApp(m.Dst, m)
		g.env.Stat("gcoord.resent", 1)
	}
	if g.initiator() {
		g.env.SetTimer(core.TimerCLC, g.cfg.CLCPeriod)
	}
}
