// Package baseline implements the comparison protocols the paper
// positions HC3I against (§2.2, §6), runnable under the same harness
// and workloads:
//
//   - GlobalCoordinated: one two-phase commit spanning the whole
//     federation — the approach §2.2 rules out because "the large
//     number of nodes and network performance between clusters do not
//     allow a global synchronization".
//   - PessimisticLog: MPICH-V-style message logging ([3]): every
//     message is logged, only the failed node rolls back, but the PWD
//     (piecewise determinism) assumption is required.
//   - HierCoord: the hierarchical *coordinated* protocol of [9]: every
//     cluster checkpoints locally on a federation-wide cadence forming
//     global lines, without communication-induced checkpoints.
//
// Two further baselines are modes of the core protocol itself
// (core.ModeForceAll, core.ModeIndependent) since they share all of its
// machinery.
package baseline

import (
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/topology"
)

// snapshotRec is one stored state on a baseline node.
type snapshotRec struct {
	Seq   core.SN
	State any
	Size  int
	At    sim.Time
	// Late holds application messages that crossed this snapshot's
	// line (sent before, received after); re-delivered on restore.
	Late []core.AppPayload
}

// wire wraps baseline payloads so they satisfy core.Msg.
type wire struct {
	Kind    string
	Seq     core.SN
	Epoch   core.Epoch
	From    topology.NodeID
	Dst     topology.NodeID
	Payload core.AppPayload
	SendSeq core.SN
	State   any
	Size    int
	MsgID   uint64
}

// ProtocolMessage marks wire as a protocol message.
func (wire) ProtocolMessage() {}

// wireBox is a pooled wire message: the sending node takes a box from
// its free list (send/sendApp below), the harness reclaims it after the
// destination's OnMessage returned (core.ReclaimableMsg). wire is a
// large struct, so boxing one per message was the baselines' dominant
// allocation site.
type wireBox struct {
	wire
	home *[]*wireBox // the sending node's free list
}

// ReclaimMsgBox returns the box to its owner, dropping payload refs.
func (b *wireBox) ReclaimMsgBox() {
	b.wire = wire{}
	*b.home = append(*b.home, b)
}

// unwrap extracts the wire payload from a value or pooled-box message.
func unwrap(msg core.Msg) (wire, bool) {
	switch t := msg.(type) {
	case *wireBox:
		return t.wire, true
	case wire:
		return t, true
	}
	return wire{}, false
}

func (w wire) size() int {
	if w.State != nil {
		return 32 + w.Size
	}
	if w.Kind == "app" {
		return 24 + w.Payload.Size
	}
	return 32
}

// common holds what all baseline nodes share.
type common struct {
	cfg  core.Config
	env  core.Env
	app  core.AppHooks
	id   topology.NodeID
	size int // own cluster size

	failed bool
	epoch  core.Epoch

	// logPeak is the running high-water mark of the node's volatile
	// message log (see LogPeak); updated by each protocol at its log
	// append sites.
	logPeak int

	// wireFree recycles this node's outbound message boxes. One box per
	// Send call, even for broadcasts of the same logical message: a box
	// belongs to exactly one in-flight delivery.
	wireFree []*wireBox

	// Pre-rendered per-cluster stat keys (commit-path Stat calls must
	// not build strings; see the same discipline in internal/core).
	keyCommitted string
	keyUnforced  string

	// nodesCache is the lazily built federation node list allNodes
	// returns: the coordinated baselines enumerate it on every commit
	// round, which at wide-federation scale (hundreds of clusters) made
	// the per-call rebuild a dominant allocation site.
	nodesCache []topology.NodeID
}

func newCommon(cfg core.Config, env core.Env, app core.AppHooks) common {
	c := common{
		cfg:  cfg,
		env:  env,
		app:  app,
		id:   cfg.ID,
		size: cfg.ClusterSizes[cfg.ID.Cluster],
	}
	c.keyCommitted = statCluster("clc.committed", int(c.id.Cluster))
	c.keyUnforced = c.keyCommitted + ".unforced"
	return c
}

// Failed reports whether the node is crashed.
func (c *common) Failed() bool { return c.failed }

// box wraps m into a recycled (or fresh) pooled box.
func (c *common) box(m wire) core.Msg {
	if last := len(c.wireFree) - 1; last >= 0 {
		b := c.wireFree[last]
		c.wireFree = c.wireFree[:last]
		b.wire = m
		return b
	}
	return &wireBox{wire: m, home: &c.wireFree}
}

// send transmits a control message through a pooled box.
func (c *common) send(dst topology.NodeID, m wire) {
	c.env.Send(dst, m.size(), c.box(m))
}

// sendApp transmits an application message through a pooled box.
func (c *common) sendApp(dst topology.NodeID, m wire) {
	c.env.SendApp(dst, m.size(), c.box(m))
}

// notePeak folds the current log length into the running high-water
// mark. Log-truncating protocols (snapshots, acks, restarts) only ever
// shrink their live log, so sampling at every append is exact.
func (c *common) notePeak(n int) {
	if n > c.logPeak {
		c.logPeak = n
	}
}

// LogPeak returns the high-water mark of the volatile message log over
// the whole run — unlike LogLen it is not deflated by truncation.
func (c *common) LogPeak() int { return c.logPeak }

// allNodes enumerates every node of the federation. The slice is the
// node's cached copy — callers must not mutate it.
func (c *common) allNodes() []topology.NodeID {
	if c.nodesCache == nil {
		total := 0
		for cl := 0; cl < c.cfg.Clusters; cl++ {
			total += c.cfg.ClusterSizes[cl]
		}
		ids := make([]topology.NodeID, 0, total)
		for cl := 0; cl < c.cfg.Clusters; cl++ {
			for i := 0; i < c.cfg.ClusterSizes[cl]; i++ {
				ids = append(ids, topology.NodeID{Cluster: topology.ClusterID(cl), Index: i})
			}
		}
		c.nodesCache = ids
	}
	return c.nodesCache
}

func (c *common) neighbour() topology.NodeID {
	return topology.NodeID{Cluster: c.id.Cluster, Index: (c.id.Index + 1) % c.size}
}
