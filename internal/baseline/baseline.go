// Package baseline implements the comparison protocols the paper
// positions HC3I against (§2.2, §6), runnable under the same harness
// and workloads:
//
//   - GlobalCoordinated: one two-phase commit spanning the whole
//     federation — the approach §2.2 rules out because "the large
//     number of nodes and network performance between clusters do not
//     allow a global synchronization".
//   - PessimisticLog: MPICH-V-style message logging ([3]): every
//     message is logged, only the failed node rolls back, but the PWD
//     (piecewise determinism) assumption is required.
//   - HierCoord: the hierarchical *coordinated* protocol of [9]: every
//     cluster checkpoints locally on a federation-wide cadence forming
//     global lines, without communication-induced checkpoints.
//
// Two further baselines are modes of the core protocol itself
// (core.ModeForceAll, core.ModeIndependent) since they share all of its
// machinery.
package baseline

import (
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/topology"
)

// snapshotRec is one stored state on a baseline node.
type snapshotRec struct {
	Seq   core.SN
	State any
	Size  int
	At    sim.Time
	// Late holds application messages that crossed this snapshot's
	// line (sent before, received after); re-delivered on restore.
	Late []core.AppPayload
}

// wire wraps baseline payloads so they satisfy core.Msg.
type wire struct {
	Kind    string
	Seq     core.SN
	Epoch   core.Epoch
	From    topology.NodeID
	Dst     topology.NodeID
	Payload core.AppPayload
	SendSeq core.SN
	State   any
	Size    int
	MsgID   uint64
}

// ProtocolMessage marks wire as a protocol message.
func (wire) ProtocolMessage() {}

func (w wire) size() int {
	if w.State != nil {
		return 32 + w.Size
	}
	if w.Kind == "app" {
		return 24 + w.Payload.Size
	}
	return 32
}

// common holds what all baseline nodes share.
type common struct {
	cfg  core.Config
	env  core.Env
	app  core.AppHooks
	id   topology.NodeID
	size int // own cluster size

	failed bool
	epoch  core.Epoch

	// Pre-rendered per-cluster stat keys (commit-path Stat calls must
	// not build strings; see the same discipline in internal/core).
	keyCommitted string
	keyUnforced  string
}

func newCommon(cfg core.Config, env core.Env, app core.AppHooks) common {
	c := common{
		cfg:  cfg,
		env:  env,
		app:  app,
		id:   cfg.ID,
		size: cfg.ClusterSizes[cfg.ID.Cluster],
	}
	c.keyCommitted = statCluster("clc.committed", int(c.id.Cluster))
	c.keyUnforced = c.keyCommitted + ".unforced"
	return c
}

// Failed reports whether the node is crashed.
func (c *common) Failed() bool { return c.failed }

// allNodes enumerates every node of the federation.
func (c *common) allNodes() []topology.NodeID {
	var ids []topology.NodeID
	for cl := 0; cl < c.cfg.Clusters; cl++ {
		for i := 0; i < c.cfg.ClusterSizes[cl]; i++ {
			ids = append(ids, topology.NodeID{Cluster: topology.ClusterID(cl), Index: i})
		}
	}
	return ids
}

func (c *common) neighbour() topology.NodeID {
	return topology.NodeID{Cluster: c.id.Cluster, Index: (c.id.Index + 1) % c.size}
}
