package baseline

import (
	"repro/internal/core"
	"repro/internal/topology"
)

// PessimisticLog models an MPICH-V-style protocol ([3] in the paper):
// every application message is logged so that "a faulty node will
// rollback, but not the others". Each node takes uncoordinated local
// snapshots; every received message is recorded (and mirrored to the
// neighbour, standing in for MPICH-V's channel memories); recovery
// restores the failed node's snapshot and replays its logged receipts
// in order. This requires piecewise determinism (PWD) — the assumption
// HC3I explicitly avoids (§2.2) — so it is only sound under
// deterministic workloads.
type PessimisticLog struct {
	common

	seq     core.SN // local snapshot sequence
	snaps   []*snapshotRec
	recvLog []loggedRecv // receipts since the last snapshot (in order)
	// mirror holds the neighbour's snapshot + receive log (its channel
	// memory), keyed by the owner.
	mirrorSnap map[topology.NodeID]*snapshotRec
	mirrorLog  map[topology.NodeID][]loggedRecv
	// sendLog holds sent messages until the receiver confirms the
	// receipt is safely logged; on a failure alert they are resent.
	sendLog   map[uint64]pendingSend
	nextMsgID uint64
	recovered bool
	// awaitingRecovery buffers application messages that arrive after a
	// restart but before the snapshot+log replay: delivering them first
	// would ack the sender and then lose the receipt when the snapshot
	// restore rewinds the application state.
	awaitingRecovery bool
	pendingApp       []wire
}

type loggedRecv struct {
	From    topology.NodeID
	Payload core.AppPayload
	AtSeq   core.SN
}

type pendingSend struct {
	Dst     topology.NodeID
	Payload core.AppPayload
}

// NewPessimisticLog builds one node of the message-logging baseline.
func NewPessimisticLog(cfg core.Config, env core.Env, app core.AppHooks) *PessimisticLog {
	p := &PessimisticLog{
		common:     newCommon(cfg, env, app),
		mirrorSnap: make(map[topology.NodeID]*snapshotRec),
		mirrorLog:  make(map[topology.NodeID][]loggedRecv),
		sendLog:    make(map[uint64]pendingSend),
	}
	state, size := app.Snapshot()
	p.seq = 1
	p.snaps = append(p.snaps, &snapshotRec{Seq: 1, State: state, Size: size, At: env.Now()})
	return p
}

// Start arms the node's local snapshot timer (every node has one —
// snapshots are uncoordinated).
func (p *PessimisticLog) Start() {
	p.env.SetTimer(core.TimerCLC, p.cfg.CLCPeriod)
}

// SN returns the local snapshot sequence number.
func (p *PessimisticLog) SN() core.SN { return p.seq }

// StoredCount returns stored snapshots (only the newest is kept).
func (p *PessimisticLog) StoredCount() int { return len(p.snaps) }

// LogLen returns the number of volatile message-log entries (receipts
// logged since the last snapshot plus unacknowledged sends), the
// quantity the scenario matrix reports as the log high-water mark.
func (p *PessimisticLog) LogLen() int { return len(p.recvLog) + len(p.sendLog) }

// LogBytes approximates the volatile memory consumed by message logs.
func (p *PessimisticLog) LogBytes() int {
	total := 0
	for _, r := range p.recvLog {
		total += r.Payload.Size
	}
	for _, l := range p.mirrorLog {
		for _, r := range l {
			total += r.Payload.Size
		}
	}
	return total
}

// Fail crashes the node.
func (p *PessimisticLog) Fail() { p.failed = true }

// Restart revives the node; recovery happens on failure detection.
func (p *PessimisticLog) Restart() {
	p.failed = false
	p.recovered = false
	p.awaitingRecovery = true
	p.snaps = nil
	p.recvLog = nil
	p.pendingApp = nil
}

// Send transmits a payload; a copy stays in the send log until the
// receiver confirms it logged the receipt.
func (p *PessimisticLog) Send(dst topology.NodeID, payload core.AppPayload) {
	if p.failed {
		return
	}
	p.nextMsgID++
	p.sendLog[p.nextMsgID] = pendingSend{Dst: dst, Payload: payload}
	p.notePeak(p.LogLen())
	m := wire{Kind: "app", From: p.id, Payload: payload, MsgID: p.nextMsgID}
	p.sendApp(dst, m)
	p.env.Stat("plog.sent", 1)
}

// OnTimer takes a local snapshot: no coordination, no freeze — the
// receive log makes the snapshot recoverable at any cut.
func (p *PessimisticLog) OnTimer(k core.TimerKind) {
	if p.failed || k != core.TimerCLC {
		return
	}
	state, size := p.app.Snapshot()
	p.seq++
	p.snaps = []*snapshotRec{{Seq: p.seq, State: state, Size: size, At: p.env.Now()}}
	p.recvLog = nil // receipts are inside the snapshot now
	// Replicate snapshot to the neighbour (channel memory / stable
	// storage) and let it truncate our mirrored receive log.
	m := wire{Kind: "snap", Seq: p.seq, From: p.id, State: state, Size: size}
	p.send(p.neighbour(), m)
	p.env.Stat(p.keyCommitted, 1)
	p.env.Stat(p.keyUnforced, 1)
	p.env.SetTimer(core.TimerCLC, p.cfg.CLCPeriod)
}

// OnMessage dispatches the baseline's wire messages.
func (p *PessimisticLog) OnMessage(src topology.NodeID, msg core.Msg) {
	if p.failed {
		return
	}
	m, ok := unwrap(msg)
	if !ok {
		return
	}
	switch m.Kind {
	case "app":
		if p.awaitingRecovery {
			// Mid-recovery: hold the message; delivering (and acking)
			// now would lose the receipt when the snapshot restores.
			p.pendingApp = append(p.pendingApp, m)
			return
		}
		p.deliverApp(m)
	case "logcopy":
		p.mirrorLog[src] = append(p.mirrorLog[src], loggedRecv{From: m.From, Payload: m.Payload, AtSeq: m.Seq})
	case "logged":
		delete(p.sendLog, m.MsgID)
	case "snap":
		p.mirrorSnap[m.From] = &snapshotRec{Seq: m.Seq, State: m.State, Size: m.Size, At: p.env.Now()}
		p.mirrorLog[m.From] = nil
	case "recover-req":
		p.serveRecovery(m.From)
	case "recover-resp":
		if m.State != nil {
			p.app.Restore(m.State)
			p.seq = m.Seq
			p.snaps = []*snapshotRec{{Seq: m.Seq, State: m.State, Size: m.Size, At: p.env.Now()}}
		}
		p.recovered = true
		p.awaitingRecovery = false
		p.env.Stat("plog.recoveries", 1)
		p.env.SetTimer(core.TimerCLC, p.cfg.CLCPeriod)
		// Messages buffered during recovery now deliver normally; the
		// mirrored-log replay entries precede them on the wire, so
		// ordering per sender is preserved.
		pend := p.pendingApp
		p.pendingApp = nil
		for _, pm := range pend {
			p.deliverApp(pm)
		}
	case "replay":
		// Re-delivery of a logged receipt (PWD: same order, same content).
		p.recvLog = append(p.recvLog, loggedRecv{From: m.From, Payload: m.Payload, AtSeq: p.seq})
		p.notePeak(p.LogLen())
		p.app.Deliver(m.From, m.Payload)
		p.env.Stat("plog.replayed", 1)
	case "alert":
		p.resendTo(m.From)
	}
}

// serveRecovery ships the restarted node its mirrored snapshot and
// replays its mirrored receive log in order (the channel memory).
func (p *PessimisticLog) serveRecovery(from topology.NodeID) {
	snap := p.mirrorSnap[from]
	resp := wire{Kind: "recover-resp", From: p.id}
	if snap != nil {
		resp.Seq = snap.Seq
		resp.State = snap.State
		resp.Size = snap.Size
	}
	p.send(from, resp)
	for _, r := range p.mirrorLog[from] {
		rm := wire{Kind: "replay", From: r.From, Payload: r.Payload}
		p.send(from, rm)
	}
}

// resendTo resends every unconfirmed message addressed to a failed
// node (its receive log may have missed them).
func (p *PessimisticLog) resendTo(failed topology.NodeID) {
	for id, s := range p.sendLog {
		if s.Dst == failed {
			rm := wire{Kind: "app", From: p.id, Payload: s.Payload, MsgID: id}
			p.sendApp(s.Dst, rm)
			p.env.Stat("plog.resent", 1)
		}
	}
}

// deliverApp performs the pessimistic-logging receive: record, mirror
// to the channel memory, deliver, then confirm to the sender.
func (p *PessimisticLog) deliverApp(m wire) {
	rec := loggedRecv{From: m.From, Payload: m.Payload, AtSeq: p.seq}
	p.recvLog = append(p.recvLog, rec)
	p.notePeak(p.LogLen())
	mir := wire{Kind: "logcopy", From: p.id, Payload: m.Payload, Seq: p.seq, MsgID: m.MsgID}
	p.send(p.neighbour(), mir)
	p.app.Deliver(m.From, m.Payload)
	ack := wire{Kind: "logged", From: p.id, MsgID: m.MsgID}
	p.send(m.From, ack)
	p.env.Stat("plog.logged", 1)
}

// OnFailureDetected recovers the failed node alone: "a faulty node
// will rollback, but not the others" (§6 on MPICH-V). The detector
// notifies a survivor, which triggers the failed node's recovery and
// alerts all nodes to resend unconfirmed traffic.
func (p *PessimisticLog) OnFailureDetected(failed topology.NodeID) {
	if p.failed {
		return
	}
	p.env.Stat(statCluster("rollback.count", int(failed.Cluster)), 1)
	// Tell the failed (now restarted) node to pull its state from its
	// neighbour's channel memory. In a two-node cluster the notified
	// survivor IS the holder: serve the recovery locally instead of
	// sending to self.
	holder := topology.NodeID{Cluster: failed.Cluster, Index: (failed.Index + 1) % p.cfg.ClusterSizes[failed.Cluster]}
	if holder == p.id {
		p.serveRecovery(failed)
	} else {
		// Route the request as if issued by the failed node itself.
		req := wire{Kind: "recover-req", From: failed}
		p.send(holder, req)
	}
	alert := wire{Kind: "alert", From: failed}
	for _, id := range p.allNodes() {
		if id != p.id {
			p.send(id, alert)
		}
	}
	// The alert loop excludes this node; apply its effect locally so
	// the coordinator's own unconfirmed sends are retransmitted too.
	p.resendTo(failed)
}
