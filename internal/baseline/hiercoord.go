package baseline

import (
	"repro/internal/core"
	"repro/internal/topology"
)

// HierCoord models the hierarchical *coordinated* protocol of Paul,
// Gupta and Badrinath ([9] in the paper): checkpointing is coordinated
// at both levels — each cluster runs its local two-phase commit, and a
// federation initiator paces all clusters onto common checkpoint
// *lines* with relaxed synchronization (no global freeze). Unlike
// HC3I, every cluster checkpoints on every line whether it communicated
// or not, and a failure rolls every cluster back to the last complete
// line. "In [9] it is the coordinated checkpointing mechanism that is
// relaxed between clusters. It is not a hybrid protocol like ours" (§6).
type HierCoord struct {
	common

	line   core.SN // completed line number as known here
	frozen bool
	sendQ  []core.AppPayloadTo
	inbQ   []wire
	snaps  []*snapshotRec

	// sendLog keeps sent messages until acknowledged (transport-level
	// reliability across restarts, as in the global baseline).
	sendLog   map[uint64]wire
	nextMsgID uint64

	// cluster-leader state
	clusterInFlight bool
	clusterAcks     map[int]bool
	provState       any
	provSize        int

	// federation-initiator state
	lineInFlight bool
	lineReports  map[topology.ClusterID]bool

	rbActive bool
	rbAcks   map[int]bool
}

// NewHierCoord builds one node of the hierarchical-coordinated
// baseline.
func NewHierCoord(cfg core.Config, env core.Env, app core.AppHooks) *HierCoord {
	h := &HierCoord{common: newCommon(cfg, env, app), sendLog: make(map[uint64]wire)}
	state, size := app.Snapshot()
	h.line = 1
	h.snaps = append(h.snaps, &snapshotRec{Seq: 1, State: state, Size: size, At: env.Now()})
	return h
}

func (h *HierCoord) leader() bool    { return h.id.Index == 0 }
func (h *HierCoord) initiator() bool { return h.id.Cluster == 0 && h.id.Index == 0 }

// Start arms the line timer on the federation initiator.
func (h *HierCoord) Start() {
	if h.initiator() {
		h.env.SetTimer(core.TimerCLC, h.cfg.CLCPeriod)
	}
}

// SN returns the last completed line number.
func (h *HierCoord) SN() core.SN { return h.line }

// StoredCount returns stored line snapshots.
func (h *HierCoord) StoredCount() int { return len(h.snaps) }

// LogLen returns the unacknowledged entries of the volatile send log
// (the scenario matrix's log high-water quantity).
func (h *HierCoord) LogLen() int { return len(h.sendLog) }

// Fail crashes the node.
func (h *HierCoord) Fail() { h.failed = true }

// Restart revives the node with its snapshots intact (the neighbour
// copy is modelled implicitly in this baseline).
func (h *HierCoord) Restart() {
	h.failed = false
	h.frozen = false
	h.sendQ = nil
	h.inbQ = nil
	h.clusterInFlight = false
	h.sendLog = make(map[uint64]wire)
}

// Send transmits or queues an application payload; messages carry the
// sender's line number so stragglers fold into line snapshots.
func (h *HierCoord) Send(dst topology.NodeID, p core.AppPayload) {
	if h.failed {
		return
	}
	if h.frozen {
		h.sendQ = append(h.sendQ, core.AppPayloadTo{Dst: dst, Payload: p})
		return
	}
	h.nextMsgID++
	m := wire{Kind: "app", Epoch: h.epoch, From: h.id, Dst: dst, Payload: p, SendSeq: h.line, MsgID: h.nextMsgID}
	h.sendLog[m.MsgID] = m
	h.notePeak(len(h.sendLog))
	h.sendApp(dst, m)
}

// OnTimer opens a new line on the initiator: one message per cluster
// leader, each cluster checkpoints locally, no global freeze.
func (h *HierCoord) OnTimer(k core.TimerKind) {
	if h.failed || k != core.TimerCLC || !h.initiator() {
		return
	}
	h.env.SetTimer(core.TimerCLC, h.cfg.CLCPeriod)
	if h.lineInFlight || h.rbActive {
		return
	}
	h.lineInFlight = true
	h.lineReports = make(map[topology.ClusterID]bool)
	next := h.line + 1
	for c := 0; c < h.cfg.Clusters; c++ {
		if c == 0 {
			h.startClusterCLC(next)
			continue
		}
		m := wire{Kind: "take", Seq: next, Epoch: h.epoch}
		h.send(topology.NodeID{Cluster: topology.ClusterID(c), Index: 0}, m)
	}
}

func (h *HierCoord) startClusterCLC(seq core.SN) {
	if h.clusterInFlight {
		return
	}
	h.clusterInFlight = true
	h.clusterAcks = map[int]bool{}
	req := wire{Kind: "prep", Seq: seq, Epoch: h.epoch}
	for i := 1; i < h.size; i++ {
		h.send(topology.NodeID{Cluster: h.id.Cluster, Index: i}, req)
	}
	h.prepare(seq)
	h.clusterAcks[0] = true
	h.maybeClusterCommit(seq)
}

func (h *HierCoord) prepare(seq core.SN) {
	h.frozen = true
	h.provState, h.provSize = h.app.Snapshot()
	// Stable storage: replicate to the neighbour (priced).
	if h.size > 1 {
		rep := wire{Kind: "replica", From: h.id, Seq: seq, State: h.provState, Size: h.provSize}
		h.send(h.neighbour(), rep)
	}
}

func (h *HierCoord) maybeClusterCommit(seq core.SN) {
	if len(h.clusterAcks) < h.size {
		return
	}
	h.clusterInFlight = false
	com := wire{Kind: "commit", Seq: seq, Epoch: h.epoch}
	for i := 1; i < h.size; i++ {
		h.send(topology.NodeID{Cluster: h.id.Cluster, Index: i}, com)
	}
	h.applyCommit(seq)
	h.env.Stat(h.keyCommitted, 1)
	h.env.Stat(h.keyUnforced, 1)
	// Report line completion to the federation initiator.
	if h.initiator() {
		h.lineReports[0] = true
		h.maybeLineDone()
		return
	}
	m := wire{Kind: "done", Seq: seq, Epoch: h.epoch, From: h.id}
	h.send(topology.NodeID{Cluster: 0, Index: 0}, m)
}

func (h *HierCoord) maybeLineDone() {
	if !h.lineInFlight || len(h.lineReports) < h.cfg.Clusters {
		return
	}
	h.lineInFlight = false
	h.env.Stat("hiercoord.lines_completed", 1)
}

func (h *HierCoord) applyCommit(seq core.SN) {
	h.line = seq
	h.snaps = append(h.snaps, &snapshotRec{Seq: seq, State: h.provState, Size: h.provSize, At: h.env.Now()})
	// Clusters are at most one line apart (the initiator opens line
	// L+1 only once L completed everywhere), so keeping three lines
	// guarantees that every node still holds any other node's
	// second-newest line — the rollback target.
	if len(h.snaps) > 3 {
		h.snaps = h.snaps[len(h.snaps)-3:]
	}
	h.frozen = false
	h.drain()
}

func (h *HierCoord) drain() {
	sq := h.sendQ
	h.sendQ = nil
	for _, s := range sq {
		h.Send(s.Dst, s.Payload)
	}
	iq := h.inbQ
	h.inbQ = nil
	for _, m := range iq {
		if m.Epoch == h.epoch {
			h.deliver(m)
		}
	}
}

func (h *HierCoord) deliver(m wire) {
	if m.SendSeq < h.line {
		for _, s := range h.snaps {
			if s.Seq > m.SendSeq && s.Seq <= h.line {
				s.Late = append(s.Late, m.Payload)
			}
		}
	}
	h.app.Deliver(m.From, m.Payload)
	ack := wire{Kind: "app-ack", From: h.id, MsgID: m.MsgID}
	h.send(m.From, ack)
}

// OnMessage dispatches the baseline's wire messages.
func (h *HierCoord) OnMessage(src topology.NodeID, msg core.Msg) {
	if h.failed {
		return
	}
	m, ok := unwrap(msg)
	if !ok {
		return
	}
	switch m.Kind {
	case "app":
		if m.Epoch < h.epoch && m.SendSeq >= h.line {
			return // aborted-execution traffic
		}
		if h.frozen {
			h.inbQ = append(h.inbQ, m)
			return
		}
		h.deliver(m)
	case "app-ack":
		delete(h.sendLog, m.MsgID)
	case "replica":
		// Neighbour state received; stored implicitly (priced only).
	case "take":
		if m.Epoch != h.epoch || !h.leader() {
			return
		}
		h.startClusterCLC(m.Seq)
	case "prep":
		if m.Epoch != h.epoch {
			return
		}
		h.prepare(m.Seq)
		ack := wire{Kind: "ack", Seq: m.Seq, Epoch: h.epoch, From: h.id}
		h.send(src, ack)
	case "ack":
		if m.Epoch != h.epoch || !h.clusterInFlight {
			return
		}
		h.clusterAcks[m.From.Index] = true
		h.maybeClusterCommit(m.Seq)
	case "commit":
		if m.Epoch != h.epoch {
			return
		}
		h.applyCommit(m.Seq)
	case "done":
		if m.Epoch != h.epoch || !h.initiator() {
			return
		}
		h.lineReports[m.From.Cluster] = true
		h.maybeLineDone()
	case "rollback":
		if m.Epoch <= h.epoch {
			return
		}
		h.restore(m.Seq, m.Epoch)
		if h.leader() && src.Cluster != h.id.Cluster {
			// Forward the federation-wide rollback inside the cluster.
			for i := 1; i < h.size; i++ {
				h.send(topology.NodeID{Cluster: h.id.Cluster, Index: i}, m)
			}
		}
	}
}

// OnFailureDetected rolls every cluster back to the last complete line.
func (h *HierCoord) OnFailureDetected(failed topology.NodeID) {
	if h.failed {
		return
	}
	newEpoch := h.epoch + 1
	// Restore the coordinator's second-newest line: its newest may
	// still be forming in other clusters, while anything older might
	// already be pruned elsewhere. With the at-most-one-line spread,
	// every node is guaranteed to hold this one.
	target := h.snaps[0].Seq
	if len(h.snaps) >= 2 {
		target = h.snaps[len(h.snaps)-2].Seq
	}
	cmd := wire{Kind: "rollback", Seq: target, Epoch: newEpoch}
	for _, id := range h.allNodes() {
		if id != h.id {
			h.send(id, cmd)
		}
	}
	for c := 0; c < h.cfg.Clusters; c++ {
		h.env.Stat(statCluster("rollback.count", c), 1)
	}
	h.env.Stat("hiercoord.rollbacks", 1)
	h.restore(target, newEpoch)
}

func (h *HierCoord) restore(seq core.SN, epoch core.Epoch) {
	h.clusterInFlight = false
	h.lineInFlight = false
	h.sendQ = nil
	h.inbQ = nil
	var rec *snapshotRec
	for _, s := range h.snaps {
		if s.Seq == seq {
			rec = s
		}
	}
	if rec == nil {
		// Should be unreachable given the one-line spread; falling
		// back to the oldest held line is flagged loudly because the
		// cut is then inconsistent.
		h.env.Stat("hiercoord.inconsistent_restore", 1)
		rec = h.snaps[0]
		seq = rec.Seq
	}
	h.app.Restore(rec.State)
	for _, p := range rec.Late {
		h.app.Deliver(h.id, p)
	}
	h.line = seq
	h.snaps = []*snapshotRec{rec}
	h.epoch = epoch
	h.frozen = false
	// Retransmit unacknowledged messages whose send survives in the
	// restored state; newer sends are regenerated by re-execution.
	for id, m := range h.sendLog {
		if m.SendSeq >= h.line {
			delete(h.sendLog, id)
			continue
		}
		m.Epoch = h.epoch
		h.sendLog[id] = m
		h.sendApp(m.Dst, m)
		h.env.Stat("hiercoord.resent", 1)
	}
}
