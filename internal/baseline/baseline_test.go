package baseline_test

import (
	"testing"

	"repro/internal/app"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/federation"
	"repro/internal/sim"
	"repro/internal/topology"
)

func baseOptions(seed uint64, factory federation.NodeFactory) federation.Options {
	fed := topology.Small(2, 3)
	wl := app.Uniform(2, 400, 20, sim.Hour)
	wl.StateSize = 64 << 10
	return federation.Options{
		Topology:    fed,
		Workload:    wl,
		CLCPeriods:  []sim.Duration{10 * sim.Minute, 10 * sim.Minute},
		Seed:        seed,
		NodeFactory: factory,
	}
}

func run(t *testing.T, opts federation.Options) *federation.Result {
	t.Helper()
	f, err := federation.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func globalFactory(cfg core.Config, env core.Env, hooks core.AppHooks) federation.ProtocolNode {
	return baseline.NewGlobalCoordinated(cfg, env, hooks)
}

func plogFactory(cfg core.Config, env core.Env, hooks core.AppHooks) federation.ProtocolNode {
	return baseline.NewPessimisticLog(cfg, env, hooks)
}

func hierFactory(cfg core.Config, env core.Env, hooks core.AppHooks) federation.ProtocolNode {
	return baseline.NewHierCoord(cfg, env, hooks)
}

func TestGlobalCoordinatedCheckpoints(t *testing.T) {
	res := run(t, baseOptions(1, globalFactory))
	if v := res.Stats.CounterValue("gcoord.committed"); v < 4 || v > 9 {
		t.Fatalf("global checkpoints = %d, want ~6", v)
	}
	// The freeze spans WAN round-trips: strictly positive.
	if res.Stats.CounterValue("gcoord.freeze_us_total") == 0 {
		t.Fatal("no freeze time recorded")
	}
}

func TestGlobalCoordinatedRollsBackEveryone(t *testing.T) {
	opts := baseOptions(2, globalFactory)
	opts.Crashes = []federation.Crash{
		{At: sim.Time(25 * sim.Minute), Node: topology.NodeID{Cluster: 1, Index: 1}},
	}
	res := run(t, opts)
	if res.Stats.CounterValue("gcoord.rollbacks") != 1 {
		t.Fatalf("rollbacks = %d", res.Stats.CounterValue("gcoord.rollbacks"))
	}
	// Both clusters roll back — the scope HC3I avoids.
	for c := 0; c < 2; c++ {
		if res.Clusters[c].Rollbacks == 0 {
			t.Fatalf("cluster %d did not roll back", c)
		}
	}
}

func TestPessimisticLogOnlyFailedNodeRecovers(t *testing.T) {
	opts := baseOptions(3, plogFactory)
	opts.Crashes = []federation.Crash{
		{At: sim.Time(25 * sim.Minute), Node: topology.NodeID{Cluster: 0, Index: 1}},
	}
	res := run(t, opts)
	if v := res.Stats.CounterValue("plog.recoveries"); v != 1 {
		t.Fatalf("recoveries = %d", v)
	}
	if v := res.Stats.CounterValue("plog.logged"); v == 0 {
		t.Fatal("nothing logged")
	}
	// MPICH-V logs every message: the log volume must track traffic.
	logged := res.Stats.CounterValue("plog.logged")
	sent := res.Stats.CounterValue("plog.sent")
	if logged < sent/2 {
		t.Fatalf("logged %d of %d sent", logged, sent)
	}
}

func TestHierCoordCompletesLines(t *testing.T) {
	res := run(t, baseOptions(4, hierFactory))
	lines := res.Stats.CounterValue("hiercoord.lines_completed")
	if lines < 4 || lines > 9 {
		t.Fatalf("lines completed = %d, want ~6", lines)
	}
	// Every cluster checkpoints on every line, communication or not —
	// unlike HC3I where an idle cluster stores nothing.
	for c := 0; c < 2; c++ {
		got := res.Clusters[c].Committed
		if got < lines {
			t.Fatalf("cluster %d committed %d < %d lines", c, got, lines)
		}
	}
}

func TestHierCoordRollsBackWholeFederation(t *testing.T) {
	opts := baseOptions(5, hierFactory)
	opts.Crashes = []federation.Crash{
		{At: sim.Time(35 * sim.Minute), Node: topology.NodeID{Cluster: 0, Index: 2}},
	}
	res := run(t, opts)
	if res.Stats.CounterValue("hiercoord.rollbacks") == 0 {
		t.Fatal("no rollback")
	}
	for c := 0; c < 2; c++ {
		if res.Clusters[c].Rollbacks == 0 {
			t.Fatalf("cluster %d did not roll back", c)
		}
	}
}

func TestForceAllModeForcesPerMessage(t *testing.T) {
	opts := baseOptions(6, func(cfg core.Config, env core.Env, hooks core.AppHooks) federation.ProtocolNode {
		cfg.Mode = core.ModeForceAll
		return core.NewNode(cfg, env, hooks)
	})
	// Modest inter-cluster traffic, no unforced CLCs: every message
	// should force one.
	wl := app.Uniform(2, 200, 10, sim.Hour)
	wl.StateSize = 64 << 10
	opts.Workload = wl
	opts.CLCPeriods = []sim.Duration{sim.Forever, sim.Forever}
	res := run(t, opts)
	inter := res.AppMsgs[0][1] + res.AppMsgs[1][0]
	var forced uint64
	for _, c := range res.Clusters {
		forced += c.Forced
	}
	if forced == 0 {
		t.Fatal("force-all forced nothing")
	}
	// Roughly one forced CLC per inter-cluster message (coalescing
	// during 2PCs can only reduce it).
	if forced > inter {
		t.Fatalf("forced %d > inter messages %d", forced, inter)
	}
	if forced < inter/2 {
		t.Fatalf("forced %d << inter messages %d: not forcing per message", forced, inter)
	}
}

func TestIndependentModeDominoes(t *testing.T) {
	// Bidirectional traffic weaves dependencies in both directions;
	// with no forced checkpoints a failure should drag both clusters
	// far back (domino), where HC3I would stop at a forced CLC.
	opts := baseOptions(7, func(cfg core.Config, env core.Env, hooks core.AppHooks) federation.ProtocolNode {
		cfg.Mode = core.ModeIndependent
		return core.NewNode(cfg, env, hooks)
	})
	wl := app.Uniform(2, 200, 60, sim.Hour)
	wl.StateSize = 64 << 10
	opts.Workload = wl
	opts.Crashes = []federation.Crash{
		{At: sim.Time(55 * sim.Minute), Node: topology.NodeID{Cluster: 0, Index: 1}},
	}
	res := run(t, opts)
	if res.Clusters[0].Rollbacks == 0 {
		t.Fatal("faulty cluster did not roll back")
	}
	if res.Clusters[1].Rollbacks == 0 {
		t.Fatal("independent mode: no cascade despite dependencies")
	}
	var forced uint64
	for _, c := range res.Clusters {
		forced += c.Forced
	}
	if forced != 0 {
		t.Fatalf("independent mode forced %d CLCs", forced)
	}
}
