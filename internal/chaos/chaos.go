// Package chaos is a seeded adversarial scheduler layered on the
// simulated network (netsim.Perturber): it explores legal-but-nasty
// schedules the plain network model never produces, while staying
// inside the contracts the protocol actually relies on —
//
//   - bounded per-link reordering: inter-cluster messages may overtake
//     each other within the link's declared jitter envelope (the paper
//     only assumes delivery "in an arbitrary but finite laps of time";
//     only the FIFO clamp of the in-order transport is released, never
//     the envelope). Intra-cluster SAN traffic stays strictly FIFO.
//   - duplicate deliveries where the wire contract permits: wrapped
//     application messages and acks (receivers deduplicate by logical
//     identity — the resend machinery already relies on it) and
//     rollback alerts (explicitly idempotent, §3.4).
//   - crash/recover injection targeted at protocol-sensitive windows:
//     a two-phase commit in flight (CLCRequest), a rollback wave in
//     flight (RollbackCmd) or a garbage-collection round gathering
//     reports (GCRequest/GCReport) arms a short fuse that fail-stops
//     one involved node mid-window.
//
// Every decision draws from one seeded stream in deterministic
// simulation order, so a chaos run replays exactly from (options,
// seed) — a failing seed from the matrix or CI reproduces locally with
// `hc3ibench -matrix -filter tier=chaos -chaos-seed N`.
//
// Crash injection respects the paper's fault model ("only one fault
// occurs at a time", §2.1): a global cooldown spaces crashes far
// enough apart for the previous rollback wave to complete and for
// fresh checkpoints to commit, so every schedule stays within what the
// protocol claims to survive — nasty timing, legal fault pattern.
package chaos

import (
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Config tunes the adversarial schedule. The zero value of every knob
// selects the default written next to it; Seed alone identifies a
// schedule given fixed options.
type Config struct {
	// Seed drives every chaos decision (reorder draws, duplicate
	// draws, crash fuses). Harnesses derive the stream from it so one
	// integer replays the whole schedule.
	Seed uint64

	// ReorderProb is the probability an inter-cluster message is
	// released from the FIFO clamp with an extra delay drawn from the
	// link's jitter envelope (default 0.25). Links without jitter are
	// never reordered.
	ReorderProb float64
	// DupProb is the probability a duplicate-safe message is delivered
	// twice (default 0.08).
	DupProb float64
	// CrashProb is the probability an observed protocol-sensitive
	// window arms a crash fuse (default 0.015), subject to the global
	// cooldown and MaxCrashes.
	CrashProb float64
	// MaxCrashes caps the injected crashes per run (default 8).
	MaxCrashes int
	// CrashCooldown is the minimum virtual time between two injected
	// crashes (default 6 minutes): long enough for the previous
	// rollback wave to finish and for every cluster to commit a fresh
	// checkpoint, keeping the schedule inside the one-fault-at-a-time
	// model.
	CrashCooldown sim.Duration
	// FuseMax bounds how long after the trigger message the crash
	// fires (default 400ms, drawn uniformly), placing it mid-window:
	// mid-2PC, mid-rollback-wave or mid-GC-round.
	FuseMax sim.Duration

	// OpBudget caps how many perturbation actions (reorder releases,
	// duplicate deliveries, crash fuses) the schedule applies; 0 means
	// unlimited. Every random draw still happens when the budget is
	// exhausted — only the application is suppressed — so a run at
	// budget B applies exactly the first B actions of the unlimited
	// schedule and nothing after them. That prefix property is what the
	// failure auto-minimizer (internal/soak) binary-searches: the
	// smallest B that still reproduces a violation is the shortest
	// reproducing schedule prefix. On sharded runs the budget applies
	// per shard scheduler (each shard draws its own stream), which
	// keeps budgeted sharded replays deterministic per (seed, shard
	// count, budget).
	OpBudget int
}

// Filled returns the configuration with every zero knob replaced by
// its documented default. Harnesses that enforce schedule properties
// themselves (the sharded runner's global crash-cooldown gate) read
// the effective values through it.
func (c Config) Filled() Config { return c.filled() }

func (c Config) filled() Config {
	if c.ReorderProb == 0 {
		c.ReorderProb = 0.25
	}
	if c.DupProb == 0 {
		c.DupProb = 0.08
	}
	if c.CrashProb == 0 {
		c.CrashProb = 0.015
	}
	if c.MaxCrashes == 0 {
		c.MaxCrashes = 8
	}
	if c.CrashCooldown == 0 {
		c.CrashCooldown = 6 * sim.Minute
	}
	if c.FuseMax == 0 {
		c.FuseMax = 400 * sim.Millisecond
	}
	return c
}

// Hooks connect the scheduler to the harness it perturbs.
type Hooks struct {
	// Now reads the virtual clock.
	Now func() sim.Time
	// CrashAt schedules a fail-stop crash (the harness's failure
	// injector handles detection and restart).
	CrashAt func(at sim.Time, id topology.NodeID)
}

// Scheduler implements netsim.Perturber. One instance serves one run;
// it is as single-threaded as the simulation that drives it.
type Scheduler struct {
	cfg   Config
	rng   *sim.RNG
	hooks Hooks

	crashes   int
	nextCrash sim.Time // earliest time the next fuse may arm
	ops       int      // perturbation actions applied so far
}

// New builds a scheduler drawing from rng (derive it from Config.Seed;
// the scheduler never touches other streams).
func New(cfg Config, rng *sim.RNG, hooks Hooks) *Scheduler {
	return &Scheduler{cfg: cfg.filled(), rng: rng, hooks: hooks}
}

// Crashes reports how many crashes the schedule injected.
func (s *Scheduler) Crashes() int { return s.crashes }

// Ops reports how many perturbation actions the schedule applied so
// far: the unlimited run's final count bounds the minimizer's prefix
// search, a budgeted run's count is min(budget, natural schedule).
func (s *Scheduler) Ops() int { return s.ops }

// spend consumes one unit of the op budget, reporting whether the
// action may be applied. Callers must make every random draw before
// asking — the draw sequence has to match the unlimited schedule's
// exactly up to the budget point, or the budgeted run would not be a
// prefix of it.
func (s *Scheduler) spend() bool {
	if s.cfg.OpBudget > 0 && s.ops >= s.cfg.OpBudget {
		return false
	}
	s.ops++
	return true
}

// Perturb implements netsim.Perturber: one deterministic decision per
// message, in simulation order.
func (s *Scheduler) Perturb(m netsim.Message, intra bool, envelope sim.Duration) (netsim.Perturbation, bool) {
	s.maybeArmCrash(m)
	if intra {
		// The SAN stays FIFO and duplicate-free: the 2PC and replica
		// transfer run on it, and the paper models it as a reliable
		// system-area network.
		return netsim.Perturbation{}, false
	}
	var p netsim.Perturbation
	hit := false
	if envelope > 0 && s.rng.Bool(s.cfg.ReorderProb) {
		extra := s.rng.Uniform(0, envelope)
		if s.spend() {
			p.Extra = extra
			p.Unclamped = true
			hit = true
		}
	}
	if dup, ok := s.dupPayload(m.Payload); ok && s.rng.Bool(s.cfg.DupProb) {
		delay := envelope
		if delay <= 0 {
			delay = sim.Millisecond
		}
		after := s.rng.Uniform(sim.Microsecond, delay)
		if s.spend() {
			p.Duplicate = after
			p.DupPayload = dup
			hit = true
		}
	}
	return p, hit
}

// dupPayload reports whether the wire contract permits delivering this
// payload twice, and returns the copy the duplicate must carry. Pooled
// boxes (*AppMsg, *AppAck) are copied because the harness reclaims a
// box right after its first delivery — including the piggyback slices,
// so the duplicate's dependency data never depends on the original's
// backing staying immutable.
func (s *Scheduler) dupPayload(payload any) (any, bool) {
	switch v := payload.(type) {
	case *core.AppMsg:
		cp := *v
		if cp.PiggyDDV != nil {
			cp.PiggyDDV = v.PiggyDDV.Clone()
		}
		if len(cp.PiggyPairs) > 0 {
			cp.PiggyPairs = append([]core.DDVPair(nil), v.PiggyPairs...)
		}
		return &cp, true
	case core.AppMsg:
		return nil, true
	case *core.AppAck:
		cp := *v
		return &cp, true
	case core.AppAck:
		return nil, true
	case core.RollbackAlert:
		return nil, true
	}
	return nil, false
}

// maybeArmCrash inspects the message for a protocol-sensitive window
// and, with CrashProb and outside the cooldown, schedules a fail-stop
// crash of an involved node on a short fuse.
func (s *Scheduler) maybeArmCrash(m netsim.Message) {
	if s.hooks.CrashAt == nil || s.crashes >= s.cfg.MaxCrashes {
		return
	}
	var victim topology.NodeID
	switch m.Payload.(type) {
	case core.CLCRequest:
		// Mid-2PC: kill either the participant about to prepare or the
		// leader waiting for acks.
		if s.rng.Bool(0.5) {
			victim = m.Dst
		} else {
			victim = m.Src
		}
	case core.RollbackCmd:
		// Mid-rollback-wave: kill a node that is about to restore — a
		// second fault the coordinator must absorb by restarting the
		// rollback under a fresh epoch.
		victim = m.Dst
	case core.GCRequest, core.GCReport:
		// Mid-GC-round: kill a reporting leader or the initiator while
		// reports are in flight; the round must die without dropping
		// anything.
		victim = m.Dst
	default:
		return
	}
	now := s.hooks.Now()
	if now < s.nextCrash || !s.rng.Bool(s.cfg.CrashProb) {
		return
	}
	at := now.Add(s.rng.Uniform(0, s.cfg.FuseMax))
	if !s.spend() {
		// Budget exhausted: the fuse is drawn but never armed, and the
		// crash counter/cooldown stay untouched — by this point the
		// budgeted run has already applied its whole prefix, so later
		// decisions no longer need to track the unlimited schedule.
		return
	}
	s.crashes++
	s.nextCrash = at.Add(s.cfg.CrashCooldown)
	s.hooks.CrashAt(at, victim)
}
