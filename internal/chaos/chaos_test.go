package chaos

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/topology"
)

func node(c, i int) topology.NodeID {
	return topology.NodeID{Cluster: topology.ClusterID(c), Index: i}
}

// drive feeds a fixed message sequence and records every decision.
func drive(seed uint64, crashLog *[]topology.NodeID) []netsim.Perturbation {
	var now sim.Time
	s := New(Config{Seed: seed}, sim.NewRNG(seed).Stream("chaos"), Hooks{
		Now: func() sim.Time { return now },
		CrashAt: func(at sim.Time, id topology.NodeID) {
			if crashLog != nil {
				*crashLog = append(*crashLog, id)
			}
		},
	})
	var out []netsim.Perturbation
	msgs := []netsim.Message{
		{Src: node(0, 1), Dst: node(1, 0), Kind: netsim.KindApp, Payload: core.AppMsg{MsgID: 1}},
		{Src: node(0, 0), Dst: node(0, 1), Kind: netsim.KindProto, Payload: core.CLCRequest{Seq: 2}},
		{Src: node(1, 0), Dst: node(0, 0), Kind: netsim.KindProto, Payload: core.RollbackAlert{Cluster: 1}},
		{Src: node(1, 0), Dst: node(1, 1), Kind: netsim.KindProto, Payload: core.RollbackCmd{ToSN: 2}},
		{Src: node(0, 0), Dst: node(1, 0), Kind: netsim.KindProto, Payload: core.GCRequest{Round: 1}},
	}
	for round := 0; round < 200; round++ {
		for _, m := range msgs {
			intra := m.Src.Cluster == m.Dst.Cluster
			p, ok := s.Perturb(m, intra, 30*sim.Millisecond)
			if !ok {
				p = netsim.Perturbation{}
			}
			p.DupPayload = nil // pointers differ across runs; compare decisions
			out = append(out, p)
			now = now.Add(200 * sim.Millisecond)
		}
	}
	return out
}

// TestDeterministicReplay: the whole adversarial schedule is a pure
// function of the seed and the observed message sequence.
func TestDeterministicReplay(t *testing.T) {
	var c1, c2 []topology.NodeID
	a := drive(42, &c1)
	b := drive(42, &c2)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different perturbation sequences")
	}
	if !reflect.DeepEqual(c1, c2) {
		t.Fatal("same seed produced different crash schedules")
	}
	d := drive(43, nil)
	if reflect.DeepEqual(a, d) {
		t.Fatal("different seeds produced identical schedules (stream not seeded?)")
	}
}

// TestIntraClusterUntouched: SAN traffic is never reordered or
// duplicated — the 2PC and replica transfer rely on its FIFO contract.
func TestIntraClusterUntouched(t *testing.T) {
	s := New(Config{Seed: 7}, sim.NewRNG(7).Stream("chaos"), Hooks{
		Now: func() sim.Time { return 0 },
	})
	for i := 0; i < 1000; i++ {
		m := netsim.Message{Src: node(0, 0), Dst: node(0, 1), Payload: core.AppMsg{}}
		if p, ok := s.Perturb(m, true, 30*sim.Millisecond); ok {
			t.Fatalf("intra-cluster message perturbed: %+v", p)
		}
	}
}

// TestCrashBudgetAndCooldown: crashes stop at MaxCrashes and are
// spaced at least CrashCooldown apart.
func TestCrashBudgetAndCooldown(t *testing.T) {
	var now sim.Time
	var times []sim.Time
	cfg := Config{Seed: 3, CrashProb: 1.0, MaxCrashes: 4, CrashCooldown: sim.Minute}
	s := New(cfg, sim.NewRNG(3).Stream("chaos"), Hooks{
		Now: func() sim.Time { return now },
		CrashAt: func(at sim.Time, id topology.NodeID) {
			times = append(times, at)
		},
	})
	m := netsim.Message{Src: node(0, 0), Dst: node(0, 1), Payload: core.CLCRequest{Seq: 2}}
	for i := 0; i < 10000; i++ {
		s.Perturb(m, true, 0)
		now = now.Add(time100ms)
	}
	if len(times) != 4 {
		t.Fatalf("got %d crashes, budget is 4", len(times))
	}
	for i := 1; i < len(times); i++ {
		if times[i].Sub(times[i-1]) < sim.Minute {
			t.Fatalf("crashes %v and %v closer than the cooldown", times[i-1], times[i])
		}
	}
	if s.Crashes() != 4 {
		t.Fatalf("Crashes() = %d, want 4", s.Crashes())
	}
}

const time100ms = 100 * sim.Millisecond

// actions replays the fixed message sequence under cfg and flattens
// every applied perturbation action — crash fuses, reorder releases,
// duplicate deliveries — into one ordered list, the op order spend()
// charges (crash first: Perturb arms fuses before drawing the rest).
func actions(cfg Config, rounds int) (out []string, ops int) {
	var now sim.Time
	var s *Scheduler
	s = New(cfg, sim.NewRNG(cfg.Seed).Stream("chaos"), Hooks{
		Now: func() sim.Time { return now },
		CrashAt: func(at sim.Time, id topology.NodeID) {
			out = append(out, fmt.Sprintf("crash %v %v", at, id))
		},
	})
	msgs := []netsim.Message{
		{Src: node(0, 1), Dst: node(1, 0), Kind: netsim.KindApp, Payload: core.AppMsg{MsgID: 1}},
		{Src: node(0, 0), Dst: node(1, 1), Kind: netsim.KindProto, Payload: core.CLCRequest{Seq: 2}},
		{Src: node(1, 0), Dst: node(0, 0), Kind: netsim.KindProto, Payload: core.RollbackAlert{Cluster: 1}},
		{Src: node(1, 0), Dst: node(0, 1), Kind: netsim.KindProto, Payload: core.RollbackCmd{ToSN: 2}},
		{Src: node(0, 0), Dst: node(1, 0), Kind: netsim.KindProto, Payload: core.GCRequest{Round: 1}},
	}
	for round := 0; round < rounds; round++ {
		for _, m := range msgs {
			p, ok := s.Perturb(m, false, 30*sim.Millisecond)
			if ok && p.Unclamped {
				out = append(out, fmt.Sprintf("reorder %v", p.Extra))
			}
			if ok && p.Duplicate > 0 {
				out = append(out, fmt.Sprintf("dup %v", p.Duplicate))
			}
			now = now.Add(200 * sim.Millisecond)
		}
	}
	return out, s.Ops()
}

// TestOpBudgetPrefix: a run at budget B applies exactly the first B
// actions of the unlimited schedule and nothing after them — the
// property the failure minimizer's binary search stands on. Every
// random draw must survive budget exhaustion (only the application is
// suppressed), or the budgeted stream would drift off the unlimited
// one before the budget is even reached.
func TestOpBudgetPrefix(t *testing.T) {
	for _, seed := range []uint64{3, 17, 92} {
		cfg := Config{Seed: seed, CrashProb: 0.2, CrashCooldown: sim.Second}
		full, ops := actions(cfg, 200)
		if ops != len(full) {
			t.Fatalf("seed %d: Ops() = %d but %d actions recorded", seed, ops, len(full))
		}
		if len(full) < 10 {
			t.Fatalf("seed %d: only %d actions; schedule not adversarial enough to test", seed, len(full))
		}
		for _, b := range []int{1, 2, 3, len(full) / 2, len(full) - 1, len(full), len(full) + 7} {
			cfg.OpBudget = b
			got, gotOps := actions(cfg, 200)
			want := full
			if b < len(full) {
				want = full[:b]
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d budget %d: applied actions are not the unlimited schedule's prefix:\n got %v\nwant %v",
					seed, b, got, want)
			}
			if gotOps != len(want) {
				t.Fatalf("seed %d budget %d: Ops() = %d, want %d", seed, b, gotOps, len(want))
			}
		}
	}
}

// TestDuplicatePayloadRules: pooled boxes are deep-copied, value
// messages shared, and everything else is never duplicated.
func TestDuplicatePayloadRules(t *testing.T) {
	s := New(Config{Seed: 1}, sim.NewRNG(1).Stream("chaos"), Hooks{Now: func() sim.Time { return 0 }})
	box := &core.AppMsg{MsgID: 9}
	cp, ok := s.dupPayload(box)
	if !ok {
		t.Fatal("*AppMsg must be duplicate-safe")
	}
	if cp.(*core.AppMsg) == box {
		t.Fatal("pooled box duplicated without a deep copy")
	}
	if cp.(*core.AppMsg).MsgID != 9 {
		t.Fatal("deep copy lost fields")
	}
	if _, ok := s.dupPayload(core.RollbackAlert{}); !ok {
		t.Fatal("RollbackAlert must be duplicate-safe")
	}
	if _, ok := s.dupPayload(core.CLCCommit{}); ok {
		t.Fatal("CLCCommit must never be duplicated")
	}
	if _, ok := s.dupPayload(core.Replica{}); ok {
		t.Fatal("Replica must never be duplicated")
	}
}
