package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func quick() Config { return Config{Seed: 1, Quick: true} }

func runExp(t *testing.T, id string) *Table {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %s not registered", id)
	}
	tab, err := e.Run(quick())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if len(tab.Rows) == 0 {
		t.Fatalf("%s produced no rows", id)
	}
	return tab
}

func cell(t *testing.T, tab *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tab.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("cell [%d][%d] = %q not numeric", row, col, tab.Rows[row][col])
	}
	return v
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"T1", "F6", "F7", "F8", "F9", "T2", "T3",
		"A1", "A2", "A3", "A4", "A5", "A6", "A7", "A8", "A9"}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("missing experiment %s", id)
		}
	}
	// Paper artifacts sort before ablations.
	ids := IDs()
	if ids[0][0] == 'A' {
		t.Errorf("ablations sorted first: %v", ids)
	}
}

func TestT1TrafficShape(t *testing.T) {
	tab := runExp(t, "T1")
	intra0 := cell(t, tab, 0, 2)
	intra1 := cell(t, tab, 1, 2)
	fwd := cell(t, tab, 2, 2)
	rev := cell(t, tab, 3, 2)
	if intra0 < 10*fwd || intra1 < 10*fwd {
		t.Fatalf("intra traffic (%v, %v) should dwarf inter (%v)", intra0, intra1, fwd)
	}
	if rev >= fwd {
		t.Fatalf("reverse traffic %v should be far below forward %v", rev, fwd)
	}
}

func TestF6Shape(t *testing.T) {
	tab := runExp(t, "F6")
	// Unforced CLCs decrease as the timer grows.
	first := cell(t, tab, 0, 1)
	last := cell(t, tab, len(tab.Rows)-1, 1)
	if first <= last {
		t.Fatalf("unforced not decreasing: %v .. %v", first, last)
	}
	// Forced CLCs stay small and roughly constant (few reverse messages).
	for i := range tab.Rows {
		if f := cell(t, tab, i, 2); f > 8 {
			t.Fatalf("row %d: forced = %v, want small", i, f)
		}
	}
}

func TestF7Shape(t *testing.T) {
	tab := runExp(t, "F7")
	for i := range tab.Rows {
		if u := cell(t, tab, i, 1); u != 0 {
			t.Fatalf("row %d: cluster 1 unforced = %v with infinite timer", i, u)
		}
	}
	// Forced count falls as cluster 0 checkpoints less often.
	first := cell(t, tab, 0, 2)
	last := cell(t, tab, len(tab.Rows)-1, 2)
	if first <= last {
		t.Fatalf("cluster 1 forced should track cluster 0's CLCs: %v .. %v", first, last)
	}
}

func TestF8Shape(t *testing.T) {
	tab := runExp(t, "F8")
	// Cluster 0's total stays flat across cluster 1's timer sweep.
	min, max := cell(t, tab, 0, 1), cell(t, tab, 0, 1)
	for i := range tab.Rows {
		v := cell(t, tab, i, 1)
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if max-min > 3 {
		t.Fatalf("cluster 0 total varies too much: [%v, %v]", min, max)
	}
}

func TestF9Shape(t *testing.T) {
	tab := runExp(t, "F9")
	// Forced CLCs in cluster 0 grow with reverse traffic.
	first := cell(t, tab, 0, 2)
	last := cell(t, tab, len(tab.Rows)-1, 2)
	if last <= first {
		t.Fatalf("cluster 0 forced flat despite growing reverse traffic: %v .. %v", first, last)
	}
	// Totals grow too.
	if cell(t, tab, len(tab.Rows)-1, 1) <= cell(t, tab, 0, 1) {
		t.Fatal("cluster 0 total did not grow")
	}
}

func TestT2GarbageCollection(t *testing.T) {
	tab := runExp(t, "T2")
	rows := tab.Rows[:len(tab.Rows)-1] // last row is the log high-water mark
	if len(rows) == 0 {
		t.Fatal("no GC rounds")
	}
	for i, r := range rows {
		_ = r
		for c := 0; c < 2; c++ {
			before := cell(t, tab, i, 1+2*c)
			after := cell(t, tab, i, 2+2*c)
			if after > before {
				t.Fatalf("round %d cluster %d: GC grew the store", i, c)
			}
			if after < 1 || after > 4 {
				t.Fatalf("round %d cluster %d: %v CLCs after GC, want ~2", i, c, after)
			}
		}
	}
}

func TestT3GarbageCollectionThreeClusters(t *testing.T) {
	tab := runExp(t, "T3")
	rows := tab.Rows[:len(tab.Rows)-1]
	if len(rows) == 0 {
		t.Fatal("no GC rounds")
	}
	for i := range rows {
		for c := 0; c < 3; c++ {
			after := cell(t, tab, i, 2+2*c)
			if after < 1 || after > 4 {
				t.Fatalf("round %d cluster %d: %v CLCs after GC", i, c, after)
			}
		}
	}
}

func TestA2ForceAllCostsMore(t *testing.T) {
	tab := runExp(t, "A2")
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	hc3i := cell(t, tab, 0, 1)
	forceAll := cell(t, tab, 1, 1)
	if forceAll <= hc3i {
		t.Fatalf("force-all forced %v <= hc3i %v", forceAll, hc3i)
	}
}

func TestA4RollbackScope(t *testing.T) {
	tab := runExp(t, "A4")
	scope := map[string]float64{}
	for i, r := range tab.Rows {
		scope[r[0]] = cell(t, tab, i, 1)
	}
	if scope["global-coordinated"] != 2 || scope["hier-coordinated[9]"] != 2 {
		t.Fatalf("coordinated baselines should roll back both clusters: %v", scope)
	}
	if scope["hc3i"] > scope["global-coordinated"] {
		t.Fatalf("hc3i scope %v exceeds global %v", scope["hc3i"], scope["global-coordinated"])
	}
}

func TestA5RingCheaper(t *testing.T) {
	tab := runExp(t, "A5")
	centralMsgs := cell(t, tab, 0, 2)
	ringMsgs := cell(t, tab, 1, 2)
	centralRounds := cell(t, tab, 0, 1)
	ringRounds := cell(t, tab, 1, 1)
	if centralRounds == 0 || ringRounds == 0 {
		t.Fatal("GC rounds missing")
	}
	// Messages per completed round: ring (2N) <= star (3(N-1)) for N=3.
	if ringMsgs/ringRounds > centralMsgs/centralRounds {
		t.Fatalf("ring GC not cheaper per round: %v vs %v",
			ringMsgs/ringRounds, centralMsgs/centralRounds)
	}
}

func TestA6MultiFaultRecovers(t *testing.T) {
	tab := runExp(t, "A6")
	sameCluster := false
	for i := range tab.Rows {
		if f := cell(t, tab, i, 3); f != 2 {
			t.Fatalf("row %d: failures = %v, want 2", i, f)
		}
		if tab.Rows[i][5] != "true" {
			t.Fatalf("row %d: did not recover", i)
		}
		if tab.Rows[i][0] == "same cluster" {
			sameCluster = true
		}
	}
	if !sameCluster {
		t.Fatal("same-cluster scenario missing")
	}
}

func TestRemainingAblationsRun(t *testing.T) {
	for _, id := range []string{"A1", "A3"} {
		runExp(t, id)
	}
}

func TestA7FreezeScalesWithStateSize(t *testing.T) {
	tab := runExp(t, "A7")
	// Rows: (1MB,4) (1MB,12) (8MB,4) (8MB,12). Freeze grows with the
	// state size at a fixed node count.
	small := cell(t, tab, 0, 2)
	big := cell(t, tab, 2, 2)
	if big <= small {
		t.Fatalf("freeze did not grow with state size: %v vs %v", small, big)
	}
	// And it grows far slower with node count than with size: the
	// 3x-node increase must cost less than the 8x size increase.
	nodeGrowth := cell(t, tab, 1, 2) / small
	sizeGrowth := big / small
	if nodeGrowth > sizeGrowth {
		t.Fatalf("node count dominates freeze: %v vs %v", nodeGrowth, sizeGrowth)
	}
}

func TestA8OverheadTiny(t *testing.T) {
	tab := runExp(t, "A8")
	disabled := cell(t, tab, 0, 4)
	enabled := cell(t, tab, 1, 4)
	// With timers off the protocol costs well under 1% of application
	// bytes (acks + piggybacked SNs + the rare first-contact forces).
	if disabled > 1.0 {
		t.Fatalf("overhead with checkpointing disabled = %v%%", disabled)
	}
	if enabled <= disabled {
		t.Fatalf("checkpointing should cost more: %v%% vs %v%%", enabled, disabled)
	}
}

func TestA9MemoryBounded(t *testing.T) {
	tab := runExp(t, "A9")
	noGC := cell(t, tab, 0, 1)
	periodic := cell(t, tab, 1, 1)
	saturation := cell(t, tab, 2, 1)
	if periodic >= noGC {
		t.Fatalf("periodic GC did not bound memory: %v vs %v", periodic, noGC)
	}
	if saturation >= periodic {
		t.Fatalf("saturation trigger looser than periodic: %v vs %v", saturation, periodic)
	}
	if demand := cell(t, tab, 2, 4); demand == 0 {
		t.Fatal("no demand-driven rounds")
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		ID:      "X",
		Title:   "demo",
		Headers: []string{"a", "bbbb"},
		Notes:   []string{"a note"},
	}
	tab.AddRow(1, 2.5)
	tab.AddRow("xx", "y")
	out := tab.Render()
	for _, want := range []string{"== X: demo ==", "a note", "2.5", "xx"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
