package experiments

import (
	"os"
	"strings"
	"testing"
)

// Wide-federation tier coverage: filter/axis plumbing, a pinned
// determinism golden for the 64-cluster slice (sequential and through
// the worker pool — the suite runs under -race in CI), a delta-vs-
// dense differential at width 256, and a smoke run of the remaining
// widths.

func TestWideMatrixSelection(t *testing.T) {
	scs, err := MatrixScenarios("tier=wide")
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != len(WideTopologies)*len(WideFailures) {
		t.Fatalf("tier=wide selected %d scenarios", len(scs))
	}
	for _, s := range scs {
		if !s.Wide() {
			t.Errorf("scenario %s not wide", s.Name())
		}
		if _, err := ParseScenario(s.Name()); err != nil {
			t.Errorf("round-trip of %s: %v", s.Name(), err)
		}
	}
	// Naming a wide topology implies the tier.
	scs, err = MatrixScenarios("topology=128c,failure=none")
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 1 || scs[0].Topology != "128c" {
		t.Fatalf("topology=128c selected %v", scs)
	}
	// The classic matrix must not leak wide scenarios and vice versa.
	if scs, _ := MatrixScenarios(""); len(scs) != 192 {
		t.Fatalf("classic matrix changed size: %d", len(scs))
	}
	if _, err := MatrixScenarios("tier=wide,workload=uniform"); err == nil {
		t.Fatal("uniform workload accepted in the wide tier")
	}
	if _, err := MatrixScenarios("tier=classic,topology=64c"); err == nil {
		t.Fatal("64c accepted in the classic tier")
	}
	if !strings.Contains(MatrixAxes(), "tier") {
		t.Fatal("MatrixAxes does not mention the wide tier")
	}
}

// wideCSV renders the 64c wide slice for the pinned seed.
func wideCSV(t *testing.T, workers int, dense bool) string {
	t.Helper()
	scs, err := MatrixScenarios("tier=wide,topology=64c")
	if err != nil {
		t.Fatal(err)
	}
	tab, err := RunMatrix(RunnerConfig{Workers: workers, Seed: 11, Quick: true, DenseWire: dense}, scs)
	if err != nil {
		t.Fatal(err)
	}
	return tab.CSV()
}

// TestWideMatrixGolden pins the 64-cluster wide slice byte-for-byte,
// sequentially and through the worker pool; the dense encoding must
// reproduce the same bytes (the wide tier runs the transitive
// extension, so this differential covers the piggyback codec at
// federation scale). Re-record with -update-golden.
func TestWideMatrixGolden(t *testing.T) {
	path := goldenPath("wide")
	seq := wideCSV(t, 1, false)
	if *updateGolden {
		if err := os.WriteFile(path, []byte(seq), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update-golden once): %v", err)
	}
	if seq != string(want) {
		t.Errorf("sequential wide CSV diverged:\n--- got\n%s--- want\n%s", seq, want)
	}
	if par := wideCSV(t, 8, false); par != string(want) {
		t.Errorf("parallel wide CSV diverged:\n--- got\n%s--- want\n%s", par, want)
	}
	if dense := wideCSV(t, 8, true); dense != string(want) {
		t.Errorf("dense-wire wide CSV diverged:\n--- got\n%s--- want\n%s", dense, want)
	}
}

// TestWide256Differential runs the widest scenario under HC3I in both
// encodings: identical tables, with the 256-entry vectors riding the
// delta wire.
func TestWide256Differential(t *testing.T) {
	if testing.Short() {
		t.Skip("256-cluster differential skipped in -short mode")
	}
	sc := Scenario{Topology: "256c", Workload: "ring", Failure: "crash", Network: "lan"}
	delta, err := RunScenario(Config{Seed: 7, Quick: true}, sc, "hc3i")
	if err != nil {
		t.Fatal(err)
	}
	dense, err := RunScenario(Config{Seed: 7, Quick: true, DenseWire: true}, sc, "hc3i")
	if err != nil {
		t.Fatal(err)
	}
	if delta.Events != dense.Events {
		t.Fatalf("event counts diverged: %d vs %d", delta.Events, dense.Events)
	}
	if d, s := delta.Stats.Dump(), dense.Stats.Dump(); d != s {
		t.Errorf("256c stats diverged between encodings:\n--- delta\n%s\n--- dense\n%s", d, s)
	}
}

// TestWideSmoke runs one scenario of each remaining width end-to-end
// under every protocol (the 64c slice is covered by the golden).
func TestWideSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("wide smoke skipped in -short mode")
	}
	for _, topo := range []string{"128c", "256c"} {
		sc := Scenario{Topology: topo, Workload: "ring", Failure: "crash", Network: "lan"}
		for _, proto := range MatrixProtocols {
			res, err := RunScenario(Config{Seed: 3, Quick: true}, sc, proto)
			if err != nil {
				t.Fatalf("%s under %s: %v", sc.Name(), proto, err)
			}
			if res.Events == 0 {
				t.Fatalf("%s under %s: empty run", sc.Name(), proto)
			}
		}
	}
}
