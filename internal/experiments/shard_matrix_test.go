package experiments

import (
	"os"
	"testing"

	"repro/internal/federation"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Sharded-execution coverage at the experiments layer: the pinned
// golden slices — every classic failure pattern and the wide tier —
// must come out byte-identical at every shard count, with and without
// the oracle attached, and multi-shard splits of the deeper topologies
// must reproduce the sequential statistics registry exactly. The suite
// runs under -race in CI, so the coordinator's barrier hand-off is
// exercised with the detector watching.

// shardedCSV renders a golden slice through RunMatrix with the given
// shard count (and optionally the oracle).
func shardedCSV(t *testing.T, filter string, shards int, oracle bool) string {
	t.Helper()
	scs, err := MatrixScenarios(filter)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := RunMatrix(RunnerConfig{Workers: 4, Seed: 11, Quick: true, Shards: shards, Oracle: oracle}, scs)
	if err != nil {
		t.Fatal(err)
	}
	return tab.CSV()
}

// TestParallelShardDifferential asserts CSV byte-identity against the
// pinned goldens at shards = 1, 2, 4 and 8 for every classic failure
// pattern (2 clusters: counts above 2 exercise the cap) and, outside
// -short mode, for the 64-cluster wide slice (which splits into all 8
// shards and runs the transitive delta pipes across them).
func TestParallelShardDifferential(t *testing.T) {
	shardCounts := []int{1, 2, 4, 8}
	for _, failure := range MatrixFailures {
		failure := failure
		t.Run(failure, func(t *testing.T) {
			want, err := os.ReadFile(goldenPath(failure))
			if err != nil {
				t.Fatalf("missing golden: %v", err)
			}
			filter := "topology=2c,workload=uniform,network=lan,failure=" + failure
			for _, shards := range shardCounts {
				if got := shardedCSV(t, filter, shards, false); got != string(want) {
					t.Errorf("shards=%d matrix CSV diverged from the golden:\n--- got\n%s--- want\n%s",
						shards, got, want)
				}
			}
		})
	}
	t.Run("wide", func(t *testing.T) {
		if testing.Short() {
			t.Skip("wide shard differential skipped in -short mode")
		}
		want, err := os.ReadFile(goldenPath("wide"))
		if err != nil {
			t.Fatalf("missing golden: %v", err)
		}
		for _, shards := range shardCounts {
			if got := shardedCSV(t, "tier=wide,topology=64c", shards, false); got != string(want) {
				t.Errorf("shards=%d wide CSV diverged from the golden:\n--- got\n%s--- want\n%s",
					shards, got, want)
			}
		}
	})
}

// TestParallelShardStatsIdentity compares the full statistics registry
// (Stats.Dump, which renders every counter, summary and series) between
// the sequential reference and real multi-shard splits of the deeper
// classic topologies — 2c goldens cap at two shards, so this is where
// 4- and 8-way partitions actually run.
func TestParallelShardStatsIdentity(t *testing.T) {
	cases := []struct {
		sc     Scenario
		shards []int
	}{
		{Scenario{"4c", "hotspot", "crash", "lan"}, []int{2, 4}},
		{Scenario{"8c", "coupling", "churn", "wan"}, []int{2, 4, 8}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.sc.Name(), func(t *testing.T) {
			ref, err := RunScenario(Config{Seed: 11, Quick: true}, tc.sc, "hc3i")
			if err != nil {
				t.Fatal(err)
			}
			refDump := ref.Stats.Dump()
			for _, shards := range tc.shards {
				res, err := RunScenario(Config{Seed: 11, Quick: true, Shards: shards}, tc.sc, "hc3i")
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				if res.Events != ref.Events {
					t.Errorf("shards=%d: %d events, sequential ran %d", shards, res.Events, ref.Events)
				}
				if got := res.Stats.Dump(); got != refDump {
					t.Errorf("shards=%d stats dump diverged:\n--- got\n%s--- want\n%s", shards, got, refDump)
				}
			}
		})
	}
}

// TestOracleShardedGoldenByteIdentity is the sharded leg of
// TestOracleGoldenByteIdentity: the oracle attached to a sharded run —
// where its observation stream is journaled per shard and replayed at
// window barriers — must still be pure observation.
func TestOracleShardedGoldenByteIdentity(t *testing.T) {
	for _, failure := range MatrixFailures {
		failure := failure
		t.Run(failure, func(t *testing.T) {
			want, err := os.ReadFile(goldenPath(failure))
			if err != nil {
				t.Fatalf("missing golden: %v", err)
			}
			filter := "topology=2c,workload=uniform,network=lan,failure=" + failure
			if got := shardedCSV(t, filter, 2, true); got != string(want) {
				t.Errorf("oracle-attached sharded CSV diverged from the golden:\n--- got\n%s--- want\n%s", got, want)
			}
		})
	}
	t.Run("wide", func(t *testing.T) {
		if testing.Short() {
			t.Skip("wide sharded oracle identity skipped in -short mode")
		}
		want, err := os.ReadFile(goldenPath("wide"))
		if err != nil {
			t.Fatalf("missing golden: %v", err)
		}
		if got := shardedCSV(t, "tier=wide,topology=64c", 8, true); got != string(want) {
			t.Errorf("oracle-attached sharded wide CSV diverged from the golden:\n--- got\n%s--- want\n%s", got, want)
		}
	})
}

// TestWide1024Sharded smoke-tests the widest rung, which exists for
// sharded execution at scale: 1024 clusters split across 8 engines,
// oracle attached, with a crash and recovery in flight. The virtual
// time is cut to one minute: the conservative window width is the
// 150µs inter-cluster latency, so windows number in the hundreds of
// thousands and the full quick duration would dominate the suite
// (sequential-vs-sharded byte identity is proven on the 64c slice
// above; here the oracle and harness invariants carry the check).
// The full-duration rung runs through `hc3ibench -matrix -filter
// topology=1024c -shards N`.
func TestWide1024Sharded(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-cluster smoke skipped in -short mode")
	}
	sc := Scenario{Topology: "1024c", Workload: "ring", Failure: "crash", Network: "lan"}
	opts, err := ScenarioOptions(Config{Seed: 3, Quick: true}, sc, "hc3i")
	if err != nil {
		t.Fatal(err)
	}
	opts.Workload.TotalTime = sim.Minute
	opts.Crashes = []federation.Crash{
		{At: sim.Time(0).Add(30 * sim.Second), Node: topology.NodeID{Cluster: 0, Index: 1}},
	}
	opts.Shards = 8
	opts.Oracle = true
	res, err := runFed(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Events == 0 {
		t.Fatal("empty run")
	}
	if len(res.Clusters) != 1024 {
		t.Fatalf("expected 1024 cluster results, got %d", len(res.Clusters))
	}
	if res.Failures != 1 {
		t.Fatalf("expected the scheduled crash, got %d failures", res.Failures)
	}
}
