package experiments

import (
	"fmt"

	"repro/internal/app"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/federation"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Ablations: the paper's §7 future-work items and the design choices
// DESIGN.md calls out, each measured against the base protocol.

func init() {
	register(Experiment{
		ID:    "A1",
		Title: "Transitive dependency tracking (whole-DDV piggybacking)",
		Description: "§7: 'sending the whole DDV instead of the SN' lets a " +
			"cluster learn checkpoints transitively, avoiding forced CLCs on " +
			"later direct messages.",
		Run: runA1,
	})
	register(Experiment{
		ID:    "A2",
		Title: "Naive CIC: force a CLC on every inter-cluster message",
		Description: "The Figure 4 strawman against HC3I's dependency-driven " +
			"forcing, on the Table 1 workload.",
		Run: runA2,
	})
	register(Experiment{
		ID:    "A3",
		Title: "Stable-storage replication degree",
		Description: "§7: configurable replication degree inside a cluster; " +
			"protocol bytes and memory grow with the degree.",
		Run: runA3,
	})
	register(Experiment{
		ID:    "A4",
		Title: "Rollback scope across protocols",
		Description: "Clusters dragged back by one failure: HC3I vs independent " +
			"checkpointing (domino), global coordinated, hierarchical " +
			"coordinated [9] and MPICH-V-style logging [3].",
		Run: runA4,
	})
	register(Experiment{
		ID:    "A5",
		Title: "Centralized vs distributed (ring) garbage collection",
		Description: "§7: 'the garbage collector could be more distributed'; " +
			"inter-cluster message cost per completed round.",
		Run: runA5,
	})
	register(Experiment{
		ID:    "A7",
		Title: "Checkpoint cost: freeze window vs state size and cluster size",
		Description: "The 2PC freezes application traffic while states " +
			"replicate to neighbour memory over the SAN (§3.1); the window " +
			"scales with the per-node state size, not with the node count " +
			"(transfers are parallel).",
		Run: runA7,
	})
	register(Experiment{
		ID:    "A8",
		Title: "Protocol overhead with checkpointing disabled",
		Description: "§5.2: 'If no CLC is initiated, the only protocol cost " +
			"consists in logging optimistically in volatile memory " +
			"inter-cluster messages and transmitting an integer (SN) with " +
			"them' — measured as bytes per application byte.",
		Run: runA8,
	})
	register(Experiment{
		ID:    "A9",
		Title: "Memory footprint: no GC vs periodic vs saturation-triggered",
		Description: "§3.5: 'Periodically, or when a node memory saturates, a " +
			"garbage collection is initiated' — high-water checkpoint memory " +
			"per node under the three policies.",
		Run: runA9,
	})
	register(Experiment{
		ID:    "A6",
		Title: "Simultaneous faults in different clusters",
		Description: "§7: the protocol extended to tolerate concurrent faults " +
			"in distinct clusters (epoch-tagged cascades).",
		Run: runA6,
	})
}

// ablationScale is a smaller-than-paper scale: ablations compare
// protocols rather than reproduce figures.
func ablationScale(cfg Config) (nodes int, total sim.Duration) {
	if cfg.Quick {
		return 4, 2 * sim.Hour
	}
	return 20, 6 * sim.Hour
}

func runA1(cfg Config) (*Table, error) {
	nodes, total := ablationScale(cfg)
	t := &Table{
		ID:      "A1",
		Title:   "Forced CLCs and rollback depth with/without transitive DDVs",
		Headers: []string{"variant", "forced_total", "rollback_depth", "alerts"},
	}
	err := sweep(cfg, t, []bool{false, true}, func(transitive bool) ([]Row, error) {
		fed := topology.Small(3, nodes)
		// A triangle: c0 -> c1 -> c2 plus a direct c0 -> c2 flow whose
		// forces the transitive variant can avoid.
		wl := app.Pipeline(3, 300, 40, total)
		wl.RatesPerHour[0][2] = 40
		wl.StateSize = 256 << 10
		opts := federation.Options{
			Topology:   fed,
			Workload:   wl,
			CLCPeriods: []sim.Duration{20 * sim.Minute, 20 * sim.Minute, 20 * sim.Minute},
			Transitive: transitive,
			Seed:       cfg.Seed,
			Crashes: []federation.Crash{
				{At: sim.Time(total / 2), Node: topology.NodeID{Cluster: 1, Index: 0}},
			},
		}
		res, err := cfg.runFed(opts)
		if err != nil {
			return nil, err
		}
		var forced, rolled uint64
		for _, c := range res.Clusters {
			forced += c.Forced
			if c.Rollbacks > 0 {
				rolled++
			}
		}
		name := "base (SN piggyback)"
		if transitive {
			name = "transitive (DDV piggyback)"
		}
		return []Row{{name, forced, rolled, res.Stats.CounterValue("rollback.alerts_sent")}}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"shape: the transitive variant avoids forces on direct edges whose",
		"dependency was already learned through the pipeline")
	return t, nil
}

func runA2(cfg Config) (*Table, error) {
	nodes, total := ablationScale(cfg)
	t := &Table{
		ID:      "A2",
		Title:   "HC3I vs force-on-every-message",
		Headers: []string{"variant", "forced_total", "total_clcs", "proto_mbytes"},
	}
	err := sweep(cfg, t, []core.ProtocolMode{core.ModeHC3I, core.ModeForceAll},
		func(mode core.ProtocolMode) ([]Row, error) {
			fed := topology.Small(2, nodes)
			wl := app.PaperTable1()
			wl.TotalTime = total
			wl.StateSize = 256 << 10
			opts := federation.Options{
				Topology:   fed,
				Workload:   wl,
				CLCPeriods: []sim.Duration{30 * sim.Minute, 30 * sim.Minute},
				Seed:       cfg.Seed,
			}
			if mode != core.ModeHC3I {
				opts.NodeFactory = func(c core.Config, e core.Env, h core.AppHooks) federation.ProtocolNode {
					c.Mode = mode
					return core.NewNode(c, e, h)
				}
			}
			res, err := cfg.runFed(opts)
			if err != nil {
				return nil, err
			}
			var forced, totalCLCs uint64
			for _, c := range res.Clusters {
				forced += c.Forced
				totalCLCs += c.Total()
			}
			return []Row{{mode.String(), forced, totalCLCs,
				float64(res.Stats.CounterValue("net.bytes.proto")) / 1e6}}, nil
		})
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"shape: force-all takes a CLC per inter-cluster message — 'the",
		"overhead would be huge as it would force useless checkpoints' (§3.2)")
	return t, nil
}

func runA3(cfg Config) (*Table, error) {
	nodes, total := ablationScale(cfg)
	t := &Table{
		ID:      "A3",
		Title:   "Replication degree in stable storage",
		Headers: []string{"replicas", "proto_mbytes", "replica_copies", "survives_2_faults"},
	}
	err := sweep(cfg, t, []int{1, 2, 3}, func(repl int) ([]Row, error) {
		fed := topology.Small(2, nodes)
		wl := app.Uniform(2, 300, 10, total)
		wl.StateSize = 256 << 10
		opts := federation.Options{
			Topology:   fed,
			Workload:   wl,
			CLCPeriods: []sim.Duration{20 * sim.Minute, 20 * sim.Minute},
			Replicas:   repl,
			Seed:       cfg.Seed,
		}
		res, err := cfg.runFed(opts)
		if err != nil {
			return nil, err
		}
		copies := res.Stats.CounterValue("net.sent.proto") // includes replicas
		return []Row{{repl,
			float64(res.Stats.CounterValue("net.bytes.proto")) / 1e6,
			copies, repl >= 2}}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"shape: protocol bytes scale with the replication degree; degree k",
		"tolerates k simultaneous faults inside one cluster (§7)")
	return t, nil
}

func runA4(cfg Config) (*Table, error) {
	nodes, total := ablationScale(cfg)
	t := &Table{
		ID:    "A4",
		Title: "Rollback scope for one failure",
		Headers: []string{"protocol", "clusters_rolled_back", "lost_work_hours",
			"forced_clcs", "proto_mbytes", "notes"},
	}
	type variant struct {
		name    string
		factory federation.NodeFactory
		note    string
	}
	variants := []variant{
		{"hc3i", nil, "rolls back only dependent clusters"},
		{"independent", func(c core.Config, e core.Env, h core.AppHooks) federation.ProtocolNode {
			c.Mode = core.ModeIndependent
			return core.NewNode(c, e, h)
		}, "domino: falls behind every dependency"},
		{"global-coordinated", func(c core.Config, e core.Env, h core.AppHooks) federation.ProtocolNode {
			return baseline.NewGlobalCoordinated(c, e, h)
		}, "whole federation freezes and rolls back"},
		{"hier-coordinated[9]", func(c core.Config, e core.Env, h core.AppHooks) federation.ProtocolNode {
			return baseline.NewHierCoord(c, e, h)
		}, "whole federation rolls to last line"},
		{"pessimistic-log[3]", func(c core.Config, e core.Env, h core.AppHooks) federation.ProtocolNode {
			return baseline.NewPessimisticLog(c, e, h)
		}, "only the failed node, but needs PWD"},
	}
	err := sweep(cfg, t, variants, func(v variant) ([]Row, error) {
		fed := topology.Small(2, nodes)
		wl := app.Uniform(2, 300, 30, total)
		wl.StateSize = 256 << 10
		opts := federation.Options{
			Topology:    fed,
			Workload:    wl,
			CLCPeriods:  []sim.Duration{20 * sim.Minute, 20 * sim.Minute},
			Seed:        cfg.Seed,
			NodeFactory: v.factory,
			Crashes: []federation.Crash{
				{At: sim.Time(total * 3 / 4), Node: topology.NodeID{Cluster: 0, Index: 1}},
			},
		}
		res, err := cfg.runFed(opts)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", v.name, err)
		}
		var rolled, forced uint64
		for _, c := range res.Clusters {
			if c.Rollbacks > 0 {
				rolled++
			}
			forced += c.Forced
		}
		lost := res.Stats.Summary("app.lost_work_seconds")
		lostHours := lost.Mean() * float64(lost.N()) / 3600
		return []Row{{v.name, rolled, fmt.Sprintf("%.2f", lostHours), forced,
			float64(res.Stats.CounterValue("net.bytes.proto")) / 1e6, v.note}}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"shape: HC3I's forced checkpoints sit just before each dependency, so",
		"its cascades discard little work; independent checkpointing dominos;",
		"coordinated baselines drag every node back; message logging limits",
		"the scope to one node but needs the PWD assumption (§6)")
	return t, nil
}

func runA5(cfg Config) (*Table, error) {
	nodes, total := ablationScale(cfg)
	t := &Table{
		ID:      "A5",
		Title:   "Garbage collector topology",
		Headers: []string{"collector", "rounds_completed", "gc_messages", "clcs_removed"},
	}
	err := sweep(cfg, t, []bool{false, true}, func(ring bool) ([]Row, error) {
		// Four clusters: at N=3 the star (3(N-1)=6) and the ring
		// (2N=6) happen to cost the same; N=4 separates them (9 vs 8).
		fed := topology.Small(4, nodes)
		wl := app.Uniform(4, 300, 15, total)
		wl.StateSize = 256 << 10
		opts := federation.Options{
			Topology: fed,
			Workload: wl,
			CLCPeriods: []sim.Duration{
				15 * sim.Minute, 15 * sim.Minute, 15 * sim.Minute, 15 * sim.Minute,
			},
			GCPeriod: total / 4,
			RingGC:   ring,
			Seed:     cfg.Seed,
		}
		res, err := cfg.runFed(opts)
		if err != nil {
			return nil, err
		}
		name := "centralized (paper §3.5)"
		if ring {
			name = "ring (paper §7)"
		}
		return []Row{{name,
			res.Stats.CounterValue("gc.rounds_completed"),
			res.Stats.CounterValue("gc.messages"),
			res.Stats.CounterValue("gc.clcs_removed")}}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"shape: both collectors reclaim the same checkpoints; the ring",
		"replaces 3(N-1) star messages with 2N token hops")
	return t, nil
}

func runA7(cfg Config) (*Table, error) {
	_, total := ablationScale(cfg)
	t := &Table{
		ID:      "A7",
		Title:   "Mean CLC freeze window",
		Headers: []string{"state_size", "nodes_per_cluster", "mean_freeze_s", "clcs"},
	}
	sizes := []int{1 << 20, 4 << 20, 16 << 20}
	nodeCounts := []int{10, 50}
	if cfg.Quick {
		sizes = []int{1 << 20, 8 << 20}
		nodeCounts = []int{4, 12}
	}
	type point struct{ stateSize, nodes int }
	var points []point
	for _, stateSize := range sizes {
		for _, nodes := range nodeCounts {
			points = append(points, point{stateSize, nodes})
		}
	}
	err := sweep(cfg, t, points, func(p point) ([]Row, error) {
		fed := topology.Small(2, p.nodes)
		wl := app.Uniform(2, 200, 5, total)
		wl.StateSize = p.stateSize
		opts := federation.Options{
			Topology:   fed,
			Workload:   wl,
			CLCPeriods: []sim.Duration{15 * sim.Minute, 15 * sim.Minute},
			Seed:       cfg.Seed,
		}
		res, err := cfg.runFed(opts)
		if err != nil {
			return nil, err
		}
		s := res.Stats.Series("clc.freeze_seconds.c0")
		var mean float64
		for _, v := range s.Values {
			mean += v
		}
		if s.Len() > 0 {
			mean /= float64(s.Len())
		}
		return []Row{{fmt.Sprintf("%dMB", p.stateSize>>20), p.nodes,
			fmt.Sprintf("%.3f", mean), res.Clusters[0].Total()}}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"shape: the freeze window tracks the state-transfer time (size/SAN",
		"bandwidth) and is nearly flat in the node count — replication is",
		"pairwise-parallel; only the 2PC fan-in adds a small per-node cost")
	return t, nil
}

func runA8(cfg Config) (*Table, error) {
	nodes, total := ablationScale(cfg)
	t := &Table{
		ID:    "A8",
		Title: "Protocol cost relative to application traffic",
		Headers: []string{"clc_timers", "proto_msgs", "proto_kb", "app_mb",
			"overhead_pct", "max_log"},
	}
	variants := []struct {
		label    string
		period   sim.Duration
		replicas int
	}{
		// The paper's claim concerns the pure message path: no unforced
		// CLCs and no stable-storage traffic, leaving only acks, the
		// piggybacked SN and the volatile log.
		{"disabled, no stable storage", sim.Forever, -1}, // -1 = zero replicas
		{"disabled (first-contact forces only)", sim.Forever, 1},
		{"30 minutes", 30 * sim.Minute, 1},
	}
	err := sweep(cfg, t, variants, func(v struct {
		label    string
		period   sim.Duration
		replicas int
	}) ([]Row, error) {
		fed := topology.Small(2, nodes)
		wl := app.PaperTable1()
		wl.TotalTime = total
		wl.StateSize = 256 << 10
		opts := federation.Options{
			Topology:   fed,
			Workload:   wl,
			CLCPeriods: []sim.Duration{v.period, v.period},
			Replicas:   v.replicas,
			Seed:       cfg.Seed,
		}
		res, err := cfg.runFed(opts)
		if err != nil {
			return nil, err
		}
		protoBytes := res.Stats.CounterValue("net.bytes.proto")
		appBytes := res.Stats.CounterValue("net.bytes.app")
		overhead := 100 * float64(protoBytes) / float64(appBytes)
		return []Row{{v.label,
			res.Stats.CounterValue("net.sent.proto"),
			float64(protoBytes) / 1e3,
			float64(appBytes) / 1e6,
			fmt.Sprintf("%.2f", overhead),
			res.MaxLoggedMessages}}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"shape: with timers disabled the protocol sends only inter-cluster",
		"acks plus the piggybacked SN — a fraction of a percent of the",
		"application bytes; enabling checkpoints adds the 2PC and the state",
		"replication to neighbour memory, the real (and tunable) cost")
	return t, nil
}

func runA9(cfg Config) (*Table, error) {
	nodes, total := ablationScale(cfg)
	t := &Table{
		ID:    "A9",
		Title: "Checkpoint memory per node (cluster 0 leader)",
		Headers: []string{"policy", "high_water_mb", "final_mb", "gc_rounds",
			"demand_rounds"},
	}
	const stateSize = 256 << 10
	policies := []struct {
		label     string
		period    sim.Duration
		threshold uint64
	}{
		{"no GC", sim.Forever, 0},
		{"periodic (total/4)", total / 4, 0},
		{"saturation (8 states)", sim.Forever, 8 * stateSize},
	}
	err := sweep(cfg, t, policies, func(p struct {
		label     string
		period    sim.Duration
		threshold uint64
	}) ([]Row, error) {
		fed := topology.Small(2, nodes)
		wl := app.Uniform(2, 300, 25, total)
		wl.StateSize = stateSize
		opts := federation.Options{
			Topology:          fed,
			Workload:          wl,
			CLCPeriods:        []sim.Duration{10 * sim.Minute, 10 * sim.Minute},
			GCPeriod:          p.period,
			GCMemoryThreshold: p.threshold,
			Seed:              cfg.Seed,
		}
		res, err := cfg.runFed(opts)
		if err != nil {
			return nil, err
		}
		s := res.Stats.Series("storage.bytes.c0")
		var high, final float64
		for _, v := range s.Values {
			if v > high {
				high = v
			}
			final = v
		}
		return []Row{{p.label,
			fmt.Sprintf("%.1f", high/1e6),
			fmt.Sprintf("%.1f", final/1e6),
			res.Stats.CounterValue("gc.rounds_completed"),
			res.Stats.CounterValue("gc.demand_rounds")}}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"shape: without collection memory grows linearly with committed CLCs",
		"(own states + neighbour replicas); both GC policies bound it, the",
		"saturation trigger exactly at its threshold (§3.5)")
	return t, nil
}

func runA6(cfg Config) (*Table, error) {
	nodes, total := ablationScale(cfg)
	t := &Table{
		ID:    "A6",
		Title: "Simultaneous faults",
		Headers: []string{"scenario", "gap", "replicas", "failures",
			"rollbacks_total", "recovered"},
	}
	type scenario struct {
		name     string
		gap      sim.Duration
		replicas int
		second   topology.NodeID
	}
	scenarios := []scenario{
		{"different clusters", 0, 1, topology.NodeID{Cluster: 1, Index: 1}},
		{"different clusters", sim.Second, 1, topology.NodeID{Cluster: 1, Index: 1}},
		{"different clusters", 30 * sim.Second, 1, topology.NodeID{Cluster: 1, Index: 1}},
		// Two nodes of the SAME cluster down at once: needs replication
		// degree 2 so both states survive on other holders (§7).
		{"same cluster", sim.Second, 2, topology.NodeID{Cluster: 0, Index: 2}},
	}
	err := sweep(cfg, t, scenarios, func(sc scenario) ([]Row, error) {
		fed := topology.Small(3, nodes)
		wl := app.Uniform(3, 300, 15, total)
		wl.StateSize = 256 << 10
		at := sim.Time(total / 2)
		opts := federation.Options{
			Topology:   fed,
			Workload:   wl,
			CLCPeriods: []sim.Duration{15 * sim.Minute, 15 * sim.Minute, 15 * sim.Minute},
			Replicas:   sc.replicas,
			Seed:       cfg.Seed,
			Crashes: []federation.Crash{
				{At: at, Node: topology.NodeID{Cluster: 0, Index: 1}},
				{At: at.Add(sc.gap), Node: sc.second},
			},
		}
		res, err := cfg.runFed(opts)
		if err != nil {
			return nil, fmt.Errorf("%s gap %v: %w", sc.name, sc.gap, err)
		}
		var rollbacks uint64
		for _, c := range res.Clusters {
			rollbacks += c.Rollbacks
		}
		return []Row{{sc.name, sc.gap.String(), sc.replicas, res.Failures, rollbacks, true}}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"shape: concurrent faults in different clusters recover through the",
		"epoch-tagged cascades; same-cluster simultaneity recovers when the",
		"replication degree covers it — the second detection restarts the",
		"cluster rollback under a fresh epoch (§7)")
	return t, nil
}
