package experiments

import (
	"os"
	"testing"
)

// The batching differential suite: batched pipe deliveries (the
// default) must be observationally byte-identical to the per-message
// reference (Config.UnbatchedWire), because a batch only coalesces the
// *mechanics* of same-tick deliveries — every member still fires at its
// own (arrival, key) position in the global event order. The classic
// goldens pin the claim per failure pattern and shard count, the wide
// slice pins it at width 64, and the chaos leg pins it under
// adversarial perturbation (perturbed messages leave the batch path
// entirely and must not disturb members that stayed on it).

// unbatchedCSV renders a golden slice with per-message deliveries.
func unbatchedCSV(t *testing.T, filter string, shards int, oracle bool) string {
	t.Helper()
	scs, err := MatrixScenarios(filter)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := RunMatrix(RunnerConfig{
		Workers: 4, Seed: 11, Quick: true,
		Shards: shards, Oracle: oracle, UnbatchedWire: true,
	}, scs)
	if err != nil {
		t.Fatal(err)
	}
	return tab.CSV()
}

// TestUnbatchedWireMatchesGoldenSlices runs every classic failure
// pattern with per-message deliveries at shards = 1, 2 and 4: the CSVs
// must match the pinned goldens that the batched default also
// reproduces (TestMatrixCSVMatchesSeedGolden and the shard suite), so
// batched == unbatched == golden byte-for-byte.
func TestUnbatchedWireMatchesGoldenSlices(t *testing.T) {
	for _, failure := range MatrixFailures {
		failure := failure
		t.Run(failure, func(t *testing.T) {
			want, err := os.ReadFile(goldenPath(failure))
			if err != nil {
				t.Fatalf("missing golden: %v", err)
			}
			filter := "topology=2c,workload=uniform,network=lan,failure=" + failure
			for _, shards := range []int{1, 2, 4} {
				if got := unbatchedCSV(t, filter, shards, false); got != string(want) {
					t.Errorf("unbatched shards=%d CSV diverged from the golden:\n--- got\n%s--- want\n%s",
						shards, got, want)
				}
			}
		})
	}
	t.Run("wide", func(t *testing.T) {
		if testing.Short() {
			t.Skip("wide unbatched differential skipped in -short mode")
		}
		want, err := os.ReadFile(goldenPath("wide"))
		if err != nil {
			t.Fatalf("missing golden: %v", err)
		}
		for _, shards := range []int{1, 4} {
			if got := unbatchedCSV(t, "tier=wide,topology=64c", shards, false); got != string(want) {
				t.Errorf("unbatched shards=%d wide CSV diverged from the golden:\n--- got\n%s--- want\n%s",
					shards, got, want)
			}
		}
	})
}

// TestUnbatchedWireOracleGoldenIdentity is the oracle leg: the
// invariant checker attached to an unbatched sharded run must stay
// pure observation, exactly as it does on the batched default.
func TestUnbatchedWireOracleGoldenIdentity(t *testing.T) {
	for _, failure := range MatrixFailures {
		failure := failure
		t.Run(failure, func(t *testing.T) {
			want, err := os.ReadFile(goldenPath(failure))
			if err != nil {
				t.Fatalf("missing golden: %v", err)
			}
			filter := "topology=2c,workload=uniform,network=lan,failure=" + failure
			if got := unbatchedCSV(t, filter, 2, true); got != string(want) {
				t.Errorf("oracle-attached unbatched CSV diverged from the golden:\n--- got\n%s--- want\n%s", got, want)
			}
		})
	}
}

// TestChaosBatchingDifferential compares the full statistics registry
// between batched and unbatched chaos runs: adversarial reordering,
// duplication and crash injection route individual messages off the
// batch path (perturbed copies deliver standalone), and every routing
// split must leave the observable run untouched. Sequential and
// sharded schedules are each deterministic per seed, so the dumps must
// match per (seed, shards) pair.
func TestChaosBatchingDifferential(t *testing.T) {
	seeds := []uint64{11, 12, 13}
	if testing.Short() {
		seeds = seeds[:1]
	}
	cases := []struct {
		sc     Scenario
		shards int
	}{
		{Scenario{"2c", "uniform", "storm", "jitter"}, 0},
		{Scenario{"4c", "bursty", "storm", "jitter"}, 0},
		{Scenario{"4c", "uniform", "storm", "jitter"}, 2},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.sc.Name(), func(t *testing.T) {
			t.Parallel()
			for _, seed := range seeds {
				cfg := Config{Seed: seed, Quick: true, ChaosSeed: seed, Shards: tc.shards, Oracle: true}
				ref, err := RunScenario(cfg, tc.sc, "hc3i")
				if err != nil {
					t.Fatalf("seed %d (batched): %v", seed, err)
				}
				cfg.UnbatchedWire = true
				raw, err := RunScenario(cfg, tc.sc, "hc3i")
				if err != nil {
					t.Fatalf("seed %d (unbatched): %v", seed, err)
				}
				if ref.Events != raw.Events {
					t.Errorf("seed %d: batched ran %d events, unbatched %d", seed, ref.Events, raw.Events)
				}
				if b, u := ref.Stats.Dump(), raw.Stats.Dump(); b != u {
					t.Errorf("seed %d stats dump diverged:\n--- batched\n%s--- unbatched\n%s", seed, b, u)
				}
			}
		})
	}
}
