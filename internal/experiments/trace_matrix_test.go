package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sim"
)

// traceCSV renders the full trace tier (both topologies, both failure
// patterns, HC3I only) for the pinned golden seed.
func traceCSV(t *testing.T, rc RunnerConfig) string {
	t.Helper()
	scs, err := MatrixScenarios("tier=trace")
	if err != nil {
		t.Fatal(err)
	}
	rc.Seed = 11
	rc.Quick = true
	tab, err := RunMatrix(rc, scs)
	if err != nil {
		t.Fatal(err)
	}
	return tab.CSV()
}

// TestTraceMatrixGolden pins the trace tier's CSV — including the
// p50/p99/p999 stable-delivery latency columns — byte-for-byte,
// sequentially and through the worker pool.
func TestTraceMatrixGolden(t *testing.T) {
	seq := traceCSV(t, RunnerConfig{Workers: 1})
	if *updateGolden {
		if err := os.WriteFile(goldenPath("trace"), []byte(seq), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath("trace"))
	if err != nil {
		t.Fatalf("missing golden (run with -update-golden once): %v", err)
	}
	if seq != string(want) {
		t.Errorf("sequential trace CSV diverged:\n--- got\n%s--- want\n%s", seq, want)
	}
	par := traceCSV(t, RunnerConfig{Workers: 8})
	if par != string(want) {
		t.Errorf("parallel trace CSV diverged:\n--- got\n%s--- want\n%s", par, want)
	}
}

// TestTraceLatencyIdentityAcrossExecutionModes is the tier's
// acceptance gate: the latency percentile columns (and everything
// else) are byte-identical across shard counts 1/2/4, batched vs
// unbatched wire, and with or without the invariant oracle.
func TestTraceLatencyIdentityAcrossExecutionModes(t *testing.T) {
	base := traceCSV(t, RunnerConfig{Workers: 1})
	variants := []struct {
		name string
		rc   RunnerConfig
	}{
		{"shards2", RunnerConfig{Workers: 1, Shards: 2}},
		{"shards4", RunnerConfig{Workers: 1, Shards: 4}},
		{"unbatched", RunnerConfig{Workers: 1, UnbatchedWire: true}},
		{"oracle", RunnerConfig{Workers: 1, Oracle: true}},
		{"sharded-unbatched-oracle", RunnerConfig{Workers: 1, Shards: 2, UnbatchedWire: true, Oracle: true}},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			if got := traceCSV(t, v.rc); got != base {
				t.Errorf("%s diverged from the sequential reference:\n--- got\n%s--- want\n%s", v.name, got, base)
			}
		})
	}
}

func TestMatrixScenariosTraceTier(t *testing.T) {
	scs, err := MatrixScenarios("tier=trace")
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != len(TraceTopologies)*len(TraceFailures) {
		t.Fatalf("trace tier selected %d scenarios", len(scs))
	}
	for _, sc := range scs {
		if !sc.TraceTier() || sc.Workload != "openloop" || sc.Network != "trace" {
			t.Fatalf("non-trace scenario selected: %v", sc.Name())
		}
		if got := ProtocolsFor(sc); len(got) != 1 || got[0] != "hc3i" {
			t.Fatalf("trace protocols = %v", got)
		}
	}
	// The tier is inferred from its unambiguous axis values too.
	for _, filter := range []string{"network=trace", "workload=openloop"} {
		inferred, err := MatrixScenarios(filter)
		if err != nil {
			t.Fatalf("%s: %v", filter, err)
		}
		if len(inferred) != len(scs) {
			t.Fatalf("%s inferred %d scenarios, want %d", filter, len(inferred), len(scs))
		}
	}
	if _, err := MatrixScenarios("tier=trace,topology=8c"); err == nil {
		t.Fatal("8c accepted on the trace tier")
	}
	if _, err := MatrixScenarios("tier=classic,network=trace"); err == nil {
		t.Fatal("network=trace accepted on the classic tier")
	}
	if _, err := ParseScenario("2c/openloop/none/trace"); err != nil {
		t.Fatalf("trace scenario name round-trip: %v", err)
	}
}

func TestScenarioOptionsTrace(t *testing.T) {
	sc := Scenario{Topology: "2c", Workload: "openloop", Failure: "none", Network: "trace"}
	opts, err := ScenarioOptions(Config{Quick: true, Seed: 1}, sc, "hc3i")
	if err != nil {
		t.Fatal(err)
	}
	if opts.LinkTrace == nil {
		t.Fatal("trace scenario built without a link trace")
	}
	if opts.Workload.OpenLoop == nil {
		t.Fatal("trace scenario workload is not open-loop")
	}
	if opts.CLCPeriods[0] != 5*sim.Minute {
		t.Fatalf("trace CLC period = %v", opts.CLCPeriods[0])
	}
	// The inter links carry the trace minimum so the perturber's
	// surplus is never negative.
	if got := opts.Topology.InterLink(0, 1).Latency; got != opts.LinkTrace.MinLatency() {
		t.Fatalf("inter latency %v != trace min %v", got, opts.LinkTrace.MinLatency())
	}
	if opts.Topology.InterLink(0, 1).Jitter != 0 {
		t.Fatal("trace links must not add static jitter on top of the replay")
	}
}

// TestScenarioOptionsTraceFile points the tier at a custom schedule
// and checks it displaces the embedded fixture.
func TestScenarioOptionsTraceFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "custom.jsonl")
	custom := `{"t_ms": 0, "latency_ms": 5, "jitter_ms": 0, "loss": 0}
{"t_ms": 1000, "latency_ms": 9, "jitter_ms": 1, "loss": 0}
`
	if err := os.WriteFile(path, []byte(custom), 0o644); err != nil {
		t.Fatal(err)
	}
	sc := Scenario{Topology: "2c", Workload: "openloop", Failure: "none", Network: "trace"}
	opts, err := ScenarioOptions(Config{Quick: true, Seed: 1, TraceFile: path}, sc, "hc3i")
	if err != nil {
		t.Fatal(err)
	}
	if got := opts.LinkTrace.MinLatency(); got != 5*sim.Millisecond {
		t.Fatalf("custom trace min latency = %v", got)
	}
	if _, err := ScenarioOptions(Config{Quick: true, Seed: 1, TraceFile: filepath.Join(t.TempDir(), "absent.jsonl")}, sc, "hc3i"); err == nil {
		t.Fatal("missing trace file accepted")
	}
}

// TestRunMatrixTraceHeaders: the latency columns appear on trace-tier
// tables only, so the classic/wide/chaos goldens keep their shape.
func TestRunMatrixTraceHeaders(t *testing.T) {
	scs, err := MatrixScenarios("tier=trace,topology=2c,failure=none")
	if err != nil {
		t.Fatal(err)
	}
	tab, err := RunMatrix(RunnerConfig{Workers: 1, Seed: 3, Quick: true}, scs)
	if err != nil {
		t.Fatal(err)
	}
	h := strings.Join(tab.Headers, ",")
	for _, want := range []string{"p50_ms", "p99_ms", "p999_ms"} {
		if !strings.Contains(h, want) {
			t.Fatalf("trace headers missing %s: %v", want, tab.Headers)
		}
	}
	for _, row := range tab.Rows {
		if len(row) != len(tab.Headers) {
			t.Fatalf("row width %d != header width %d", len(row), len(tab.Headers))
		}
		p50 := row[len(row)-3]
		if p50 == "0.0" || p50 == "" {
			t.Fatalf("empty latency column in %v", row)
		}
	}
	classic, err := MatrixScenarios("topology=2c,workload=uniform,failure=none,network=lan")
	if err != nil {
		t.Fatal(err)
	}
	ctab, err := RunMatrix(RunnerConfig{Workers: 1, Seed: 3, Quick: true}, classic)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(strings.Join(ctab.Headers, ","), "p50_ms") {
		t.Fatalf("classic table grew latency columns: %v", ctab.Headers)
	}
}
