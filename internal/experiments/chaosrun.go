package experiments

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/federation"
	"repro/internal/sim"
)

// This file is the chaos tier's single-scenario re-entry surface: one
// (scenario, seed) replayed on demand, outside the matrix table
// machinery. The soak service (internal/soak, cmd/hc3isoak) drives it
// for every sweep run and for every minimizer probe, and hc3ibench
// renders its failures as one-command repros.

// ChaosRun names one adversarial schedule: a chaos-tier scenario, the
// seed that replays it, and the harness knobs that are part of the
// schedule's identity (shard count — sharded schedules differ from
// sequential ones — and the op budget that truncates it to a prefix).
type ChaosRun struct {
	Scenario Scenario
	Protocol string // "" = hc3i (the only chaos-tier protocol)
	Seed     uint64 // drives the run and the chaos stream alike
	Quick    bool
	Shards   int           // <= 1 = single-engine reference
	OpBudget int           // chaos schedule prefix (0 = unlimited)
	Timeout  time.Duration // wall-clock watchdog (0 = none)
}

// ChaosOutcome is one replay's result. Ops is the number of
// perturbation actions the schedule applied and is valid on failing
// runs too (the minimizer reads it off the failure it shrinks); it is
// 0 on sharded runs, whose schedulers live inside the shard harness.
type ChaosOutcome struct {
	Result *federation.Result // nil when Err != nil
	Ops    int
	Err    error
}

// Run executes the schedule once.
func (r ChaosRun) Run() ChaosOutcome {
	proto := r.Protocol
	if proto == "" {
		proto = ChaosProtocols[0]
	}
	cfg := Config{Seed: r.Seed, Quick: r.Quick, ChaosSeed: r.Seed,
		ChaosOps: r.OpBudget, Shards: r.Shards}
	opts, err := ScenarioOptions(cfg, r.Scenario, proto)
	if err != nil {
		return ChaosOutcome{Err: err}
	}
	opts.Watchdog = r.Timeout
	if r.Shards > 1 {
		opts.Shards = r.Shards
		res, err := federation.RunSharded(opts)
		return ChaosOutcome{Result: res, Err: err}
	}
	// The sequential path holds the Fed so the op count is readable
	// whether the run finished or aborted on a violation.
	f, err := federation.New(opts)
	if err != nil {
		return ChaosOutcome{Err: err}
	}
	res, err := f.Run()
	out := ChaosOutcome{Result: res, Ops: f.ChaosOps(), Err: err}
	f.Release()
	return out
}

// ReplayCommand renders the exact hc3ibench invocation that replays
// this schedule.
func (r ChaosRun) ReplayCommand() string {
	return ReplayCommand(r.Scenario, r.Seed, r.Shards, r.Quick, r.OpBudget)
}

// ReplayCommand renders the one-command repro for a chaos schedule: the
// scenario filter, the seed, and (when they shape the schedule) the
// shard count and op budget.
func ReplayCommand(sc Scenario, seed uint64, shards int, quick bool, opBudget int) string {
	var b strings.Builder
	b.WriteString("go run ./cmd/hc3ibench")
	if quick {
		b.WriteString(" -quick")
	}
	fmt.Fprintf(&b, " -matrix -filter topology=%s,workload=%s,failure=%s,network=%s -chaos-seed %d",
		sc.Topology, sc.Workload, sc.Failure, sc.Network, seed)
	if shards > 1 {
		fmt.Fprintf(&b, " -shards %d", shards)
	}
	if opBudget > 0 {
		fmt.Fprintf(&b, " -chaos-ops %d", opBudget)
	}
	return b.String()
}

// ChaosFailure is a failing run of a chaos-tier seed sweep: the exact
// (scenario, protocol, seed, shard count, budget) that reproduces it.
// Its Error text keeps the inner diagnostic (tests match on the oracle
// check name); callers that want structure unwrap with errors.As.
type ChaosFailure struct {
	Scenario Scenario
	Protocol string
	Seed     uint64
	Shards   int
	Quick    bool
	OpBudget int
	Err      error
}

func (e *ChaosFailure) Error() string {
	return fmt.Sprintf("chaos seed %d: %v", e.Seed, e.Err)
}

func (e *ChaosFailure) Unwrap() error { return e.Err }

// Check names the violated check (see CheckName).
func (e *ChaosFailure) Check() string { return CheckName(e.Err) }

// ReplayCommand renders the one-command repro for the failing seed.
func (e *ChaosFailure) ReplayCommand() string {
	return ReplayCommand(e.Scenario, e.Seed, e.Shards, e.Quick, e.OpBudget)
}

// CheckName classifies a run failure: the oracle check that fired
// ("oracle: commit agreement"), a watchdog kill ("watchdog"), an
// end-of-run harness invariant ("federation invariant"), or "error".
func CheckName(err error) string {
	if err == nil {
		return ""
	}
	if errors.Is(err, sim.ErrInterrupted) {
		return "watchdog"
	}
	msg := err.Error()
	if i := strings.Index(msg, "oracle: "); i >= 0 {
		msg = msg[i+len("oracle: "):]
		// Skip the "t=<virtual time>" context token if present.
		if strings.HasPrefix(msg, "t=") {
			if sp := strings.IndexByte(msg, ' '); sp >= 0 {
				msg = msg[sp+1:]
			}
		}
		if c := strings.IndexByte(msg, ':'); c > 0 {
			return "oracle: " + msg[:c]
		}
		return "oracle"
	}
	if strings.Contains(msg, "federation: ") {
		return "federation invariant"
	}
	return "error"
}

// ParseSeedBudget parses a seed-budget value: a positive decimal count,
// with underscores allowed as digit separators and an optional k/K
// (x1000) or m/M (x1e6) suffix — "250", "5_000" and "5k" all work. The
// budget must be at least 1; zero, negative and malformed values are
// rejected here, at parse time, with the accepted forms in the message.
func ParseSeedBudget(s string) (int, error) {
	t := strings.ReplaceAll(strings.TrimSpace(s), "_", "")
	mult := 1
	switch {
	case strings.HasSuffix(t, "k"), strings.HasSuffix(t, "K"):
		mult, t = 1_000, t[:len(t)-1]
	case strings.HasSuffix(t, "m"), strings.HasSuffix(t, "M"):
		mult, t = 1_000_000, t[:len(t)-1]
	}
	n := 0
	ok := t != ""
	for _, c := range t {
		if c < '0' || c > '9' || n > 1<<40 {
			ok = false
			break
		}
		n = n*10 + int(c-'0')
	}
	if !ok || n*mult < 1 {
		return 0, fmt.Errorf(
			"seed budget %q: want a positive seed count — accepted forms: a decimal count (\"250\"), underscore separators (\"5_000\"), or a k/m multiplier suffix (\"5k\", \"2M\")", s)
	}
	return n * mult, nil
}

// ChaosSeedBudget resolves the chaos sweep's seed budget: the
// CHAOS_SEED_BUDGET environment override when set (the nightly job
// raises it), otherwise fallback.
func ChaosSeedBudget(fallback int) (int, error) {
	s := os.Getenv("CHAOS_SEED_BUDGET")
	if s == "" {
		return fallback, nil
	}
	n, err := ParseSeedBudget(s)
	if err != nil {
		return 0, fmt.Errorf("CHAOS_SEED_BUDGET: %w", err)
	}
	return n, nil
}
