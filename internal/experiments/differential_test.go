package experiments

import (
	"os"
	"testing"
)

// The delta-vs-dense differential suite: the delta DDV wire encoding
// (the default) must be observationally identical to the dense
// reference encoding — same CSV bytes for every table — because both
// are priced at the dense width and the delta form reconstructs every
// vector exactly. The matrix goldens cover the piggyback/commit paths
// across all four failure patterns; the ablation runs cover the
// transitive codec (A1), the garbage collectors (T2, A5) and — under
// the full seed sweep — the crash/recovery/cascade machinery (A4, A6).

// TestDenseWireMatchesGoldenSlices runs the golden matrix slices with
// the dense reference encoding: both encodings must reproduce the
// pre-refactor recordings byte-for-byte (the delta run is asserted by
// TestMatrixCSVMatchesSeedGolden).
func TestDenseWireMatchesGoldenSlices(t *testing.T) {
	for _, failure := range MatrixFailures {
		failure := failure
		t.Run(failure, func(t *testing.T) {
			scs, err := MatrixScenarios("topology=2c,workload=uniform,network=lan,failure=" + failure)
			if err != nil {
				t.Fatal(err)
			}
			tab, err := RunMatrix(RunnerConfig{Workers: 4, Seed: 11, Quick: true, DenseWire: true}, scs)
			if err != nil {
				t.Fatal(err)
			}
			want, err := os.ReadFile(goldenPath(failure))
			if err != nil {
				t.Fatalf("missing golden: %v", err)
			}
			if got := tab.CSV(); got != string(want) {
				t.Errorf("dense-wire matrix CSV diverged from the golden:\n--- got\n%s--- want\n%s", got, want)
			}
		})
	}
}

// runBothEncodings renders one experiment under both encodings and
// asserts byte-identical CSV output.
func runBothEncodings(t *testing.T, id string, seed uint64) {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %s missing", id)
	}
	delta, err := e.Run(Config{Seed: seed, Quick: true})
	if err != nil {
		t.Fatalf("%s seed %d (delta): %v", id, seed, err)
	}
	dense, err := e.Run(Config{Seed: seed, Quick: true, DenseWire: true})
	if err != nil {
		t.Fatalf("%s seed %d (dense): %v", id, seed, err)
	}
	if d, s := delta.CSV(), dense.CSV(); d != s {
		t.Errorf("%s seed %d: delta and dense encodings diverged:\n--- delta\n%s--- dense\n%s", id, seed, d, s)
	}
}

// TestDeltaWireDifferentialQuick covers one seed of the encoding-
// sensitive experiments: the transitive piggyback codec (A1), the
// centralized and ring garbage collectors' chain-delta reports (T2,
// A5) and the saturation-triggered collector (A9).
func TestDeltaWireDifferentialQuick(t *testing.T) {
	for _, id := range []string{"A1", "T2", "A5", "A9"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			runBothEncodings(t, id, 11)
		})
	}
}

// TestDeltaWireDifferentialRecoverySweeps sweeps the failure-heavy
// ablations (rollback cascades under all five protocols, simultaneous
// multi-cluster faults) across 25 seeds under both encodings: every
// crash/rollback/recovery alignment must produce identical tables.
func TestDeltaWireDifferentialRecoverySweeps(t *testing.T) {
	if testing.Short() {
		t.Skip("differential seed sweep skipped in -short mode")
	}
	for _, id := range []string{"A4", "A6"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			for seed := uint64(1); seed <= 25; seed++ {
				runBothEncodings(t, id, seed)
			}
		})
	}
}
