package experiments

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestMatrixCrossProduct(t *testing.T) {
	all := Matrix()
	want := len(MatrixTopologies) * len(MatrixWorkloads) * len(MatrixFailures) * len(MatrixNetworks)
	if len(all) != want {
		t.Fatalf("matrix has %d scenarios, want %d", len(all), want)
	}
	seen := map[string]bool{}
	for _, s := range all {
		if seen[s.Name()] {
			t.Fatalf("duplicate scenario %s", s.Name())
		}
		seen[s.Name()] = true
	}
}

func TestScenarioNameRoundTrip(t *testing.T) {
	for _, s := range Matrix() {
		back, err := ParseScenario(s.Name())
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if back != s {
			t.Fatalf("round trip changed %v into %v", s, back)
		}
	}
}

func TestParseScenarioErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"2c/uniform/none",
		"2c/uniform/none/lan/extra",
		"3c/uniform/none/lan",
		"2c/spiky/none/lan",
		"2c/uniform/meteor/lan",
		"2c/uniform/none/avian",
	} {
		if _, err := ParseScenario(bad); err == nil {
			t.Errorf("ParseScenario(%q) accepted", bad)
		}
	}
}

func TestMatrixScenariosFilter(t *testing.T) {
	all, err := MatrixScenarios("")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(Matrix()) {
		t.Fatalf("empty filter selected %d of %d", len(all), len(Matrix()))
	}
	some, err := MatrixScenarios("topology=2c, failure=churn")
	if err != nil {
		t.Fatal(err)
	}
	want := len(MatrixWorkloads) * len(MatrixNetworks)
	if len(some) != want {
		t.Fatalf("filter selected %d, want %d", len(some), want)
	}
	for _, s := range some {
		if s.Topology != "2c" || s.Failure != "churn" {
			t.Fatalf("filter leaked %s", s.Name())
		}
	}
	for _, bad := range []string{"topology", "color=red", "topology=3c", "workload=spiky"} {
		if _, err := MatrixScenarios(bad); err == nil {
			t.Errorf("filter %q accepted", bad)
		}
	}
}

func TestScenarioOptionsBuildEverywhere(t *testing.T) {
	cfg := Config{Seed: 1, Quick: true}
	for _, s := range Matrix() {
		for _, p := range MatrixProtocols {
			opts, err := ScenarioOptions(cfg, s, p)
			if err != nil {
				t.Fatalf("%s under %s: %v", s.Name(), p, err)
			}
			if opts.Topology == nil || opts.Workload == nil {
				t.Fatalf("%s under %s: incomplete options", s.Name(), p)
			}
			if err := opts.Workload.Validate(opts.Topology); err != nil {
				t.Fatalf("%s: workload invalid: %v", s.Name(), err)
			}
		}
	}
	if _, err := ScenarioOptions(cfg, Scenario{Topology: "2c", Workload: "uniform", Failure: "none", Network: "lan"}, "quantum"); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

// TestMatrixParallelDeterminism proves the acceptance property on a
// matrix slice: parallel execution renders byte-identical output to
// sequential execution for a fixed seed, and repeats reproduce it.
func TestMatrixParallelDeterminism(t *testing.T) {
	scs, err := MatrixScenarios("topology=2c,workload=uniform,network=lan")
	if err != nil {
		t.Fatal(err)
	}
	render := func(workers int) string {
		tab, err := RunMatrix(RunnerConfig{Workers: workers, Seed: 5, Quick: true}, scs)
		if err != nil {
			t.Fatal(err)
		}
		return tab.Render()
	}
	seq := render(1)
	par := render(8)
	if seq != par {
		t.Fatalf("matrix parallel output differs from sequential:\n--- sequential\n%s\n--- parallel\n%s", seq, par)
	}
	if again := render(8); again != par {
		t.Fatal("two parallel matrix runs with the same seed differ")
	}
	if !strings.Contains(seq, "hc3i") || !strings.Contains(seq, "pessimistic-log") {
		t.Fatal("matrix table misses protocols")
	}
}

// TestMatrixFailurePatterns runs one scenario per failure pattern under
// HC3I and checks the pattern injected what it promises.
func TestMatrixFailurePatterns(t *testing.T) {
	cfg := Config{Seed: 2, Quick: true}
	wantFailures := map[string]uint64{"none": 0, "crash": 1, "corr": 2, "churn": 4}
	for _, fl := range MatrixFailures {
		sc := Scenario{Topology: "4c", Workload: "uniform", Failure: fl, Network: "lan"}
		res, err := RunScenario(cfg, sc, "hc3i")
		if err != nil {
			t.Fatalf("%s: %v", sc.Name(), err)
		}
		if res.Failures != wantFailures[fl] {
			t.Errorf("%s injected %d failures, want %d", fl, res.Failures, wantFailures[fl])
		}
		var rollbacks uint64
		for _, c := range res.Clusters {
			rollbacks += c.Rollbacks
		}
		if fl == "none" && rollbacks != 0 {
			t.Errorf("failure-free scenario rolled back %d times", rollbacks)
		}
		if fl != "none" && rollbacks == 0 {
			t.Errorf("%s produced no rollbacks", fl)
		}
	}
}

// TestMatrixBurstyWorkloadBunches checks the bursty workload carries a
// real on-off envelope (the per-send behaviour is tested in
// internal/app).
func TestMatrixBurstyWorkloadBunches(t *testing.T) {
	wl, err := matrixWorkload("bursty", 2, 90*sim.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if wl.Burst == nil {
		t.Fatal("bursty workload has no burst envelope")
	}
	on := wl.Burst.Warp(wl.TotalTime)
	if on >= wl.TotalTime {
		t.Fatalf("burst envelope is always on: on-time %v of %v", on, wl.TotalTime)
	}
}
