package experiments

import (
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/app"
	"repro/internal/baseline"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/federation"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/topology"
)

// The scenario matrix goes beyond the paper's handful of fixed tables:
// it cross-products topologies, workloads, failure patterns and network
// profiles into dozens of scenarios and runs each one under HC3I and
// all three baseline protocols, reporting forced/unforced CLCs,
// rollbacks and the volatile-log high-water mark. It is the seam every
// scaling PR (sharding, trace-driven workloads, multi-backend) plugs
// new dimensions into.

// Scenario names one cell of the matrix by its four dimension values.
type Scenario struct {
	Topology string // "2c", "4c", "8c", "asym"
	Workload string // "uniform", "bursty", "hotspot", "coupling"
	Failure  string // "none", "crash", "corr", "churn"
	Network  string // "lan", "wan", "jitter"
}

// Name renders the scenario as "topology/workload/failure/network".
func (s Scenario) Name() string {
	return strings.Join([]string{s.Topology, s.Workload, s.Failure, s.Network}, "/")
}

// ParseScenario is the inverse of Name. It validates every dimension
// value, so Name/ParseScenario round-trip exactly over the matrix.
func ParseScenario(name string) (Scenario, error) {
	parts := strings.Split(name, "/")
	if len(parts) != 4 {
		return Scenario{}, fmt.Errorf("experiments: scenario %q: want topology/workload/failure/network", name)
	}
	s := Scenario{Topology: parts[0], Workload: parts[1], Failure: parts[2], Network: parts[3]}
	if err := s.Validate(); err != nil {
		return Scenario{}, err
	}
	return s, nil
}

// Validate checks each dimension value against the axes of the
// scenario's tier (classic, wide or chaos).
func (s Scenario) Validate() error {
	dims := []struct {
		dim, val string
		all      []string
	}{
		{"topology", s.Topology, MatrixTopologies},
		{"workload", s.Workload, MatrixWorkloads},
		{"failure", s.Failure, MatrixFailures},
		{"network", s.Network, MatrixNetworks},
	}
	if s.Wide() {
		dims[0].all = WideTopologies
		dims[1].all = WideWorkloads
		dims[2].all = WideFailures
		dims[3].all = WideNetworks
	}
	if s.ChaosTier() {
		dims[0].all = ChaosTopologies
		dims[1].all = ChaosWorkloads
		dims[2].all = ChaosFailures
		dims[3].all = ChaosNetworks
	}
	if s.TraceTier() {
		dims[0].all = TraceTopologies
		dims[1].all = TraceWorkloads
		dims[2].all = TraceFailures
		dims[3].all = TraceNetworks
	}
	for _, d := range dims {
		found := false
		for _, v := range d.all {
			if v == d.val {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("experiments: unknown %s %q (have %v)", d.dim, d.val, d.all)
		}
	}
	return nil
}

// The classic matrix axes. Every combination is a valid scenario.
var (
	MatrixTopologies = []string{"2c", "4c", "8c", "asym"}
	MatrixWorkloads  = []string{"uniform", "bursty", "hotspot", "coupling"}
	MatrixFailures   = []string{"none", "crash", "corr", "churn"}
	MatrixNetworks   = []string{"lan", "wan", "jitter"}
)

// The wide-federation tier: 64–256 clusters, where dependency-vector
// width is the scaling axis under test. The workload is a sparse ring
// (local chatter, a ring neighbour, one long-haul partner) — a dense
// all-pairs rate matrix at this width would swamp the run with
// inter-cluster traffic — and runs under HC3I with the transitive
// (whole-DDV) extension plus all three baselines, so the piggyback,
// commit, force and alert paths all scale with width. Selected with
// the filter `tier=wide` (or by naming a wide topology); the classic
// matrix and its goldens are untouched.
var (
	WideTopologies = []string{"64c", "128c", "256c", "1024c"}
	WideWorkloads  = []string{"ring"}
	WideFailures   = []string{"none", "crash"}
	WideNetworks   = []string{"lan"}
)

// wideTopology reports whether topo names a wide-tier topology.
func wideTopology(topo string) bool {
	for _, t := range WideTopologies {
		if t == topo {
			return true
		}
	}
	return false
}

// Wide reports whether the scenario belongs to the wide-federation
// tier.
func (s Scenario) Wide() bool { return wideTopology(s.Topology) }

// The chaos tier: classic topology shapes driven by the seeded
// adversarial scheduler (internal/chaos) with the protocol invariant
// oracle (internal/oracle) attached. The failure dimension value
// "storm" marks the tier: crashes are injected by the scheduler into
// protocol-sensitive windows (mid-2PC, mid-rollback-wave,
// mid-GC-round) rather than scheduled up front, the jitter network
// gives the reordering envelope, garbage collection runs so its
// safety rule is under fire, and every run is replayable from a
// single chaos seed (hc3ibench -chaos-seed). Chaos scenarios run
// under HC3I only — the baselines make no inter-cluster consistency
// claims for the oracle to check.
var (
	ChaosTopologies = []string{"2c", "4c", "8c"}
	ChaosWorkloads  = []string{"uniform", "bursty"}
	ChaosFailures   = []string{"storm"}
	ChaosNetworks   = []string{"jitter"}
	ChaosProtocols  = []string{"hc3i"}
)

// ChaosTier reports whether the scenario belongs to the chaos tier
// (its failure dimension is the tier marker: chaos topologies reuse
// the classic shapes).
func (s Scenario) ChaosTier() bool { return s.Failure == "storm" }

// The trace tier: open-loop heavy-traffic scenarios on trace-driven
// links. The workload is a population of millions of users issuing
// requests open-loop (arrivals never wait for the system), Zipf-skewed
// across destination clusters; the network dimension value "trace"
// marks the tier and replays a measured (latency, jitter, loss)
// schedule over every inter-cluster link (hc3ibench -trace-file, or
// the embedded mobile-broadband fixture). The tier's headline metric
// is user-perceived stable-delivery latency — arrival to first
// covering committed CLC — reported as p50/p99/p999 columns. Trace
// scenarios run under HC3I only: stable delivery is defined by the
// commit wave, which the baselines either don't have or trivialize.
var (
	TraceTopologies = []string{"2c", "4c"}
	TraceWorkloads  = []string{"openloop"}
	TraceFailures   = []string{"none", "crash"}
	TraceNetworks   = []string{"trace"}
	TraceProtocols  = []string{"hc3i"}
)

// TraceTier reports whether the scenario belongs to the trace tier
// (its network dimension is the tier marker: trace topologies reuse
// the classic shapes).
func (s Scenario) TraceTier() bool { return s.Network == "trace" }

// TraceMatrix returns the trace tier's cross product, in axis order.
func TraceMatrix() []Scenario {
	var out []Scenario
	for _, topo := range TraceTopologies {
		for _, wl := range TraceWorkloads {
			for _, fl := range TraceFailures {
				for _, net := range TraceNetworks {
					out = append(out, Scenario{Topology: topo, Workload: wl, Failure: fl, Network: net})
				}
			}
		}
	}
	return out
}

// ChaosMatrix returns the chaos tier's cross product, in axis order.
func ChaosMatrix() []Scenario {
	var out []Scenario
	for _, topo := range ChaosTopologies {
		for _, wl := range ChaosWorkloads {
			for _, fl := range ChaosFailures {
				for _, net := range ChaosNetworks {
					out = append(out, Scenario{Topology: topo, Workload: wl, Failure: fl, Network: net})
				}
			}
		}
	}
	return out
}

// WideMatrix returns the wide tier's cross product, in axis order.
func WideMatrix() []Scenario {
	var out []Scenario
	for _, topo := range WideTopologies {
		for _, wl := range WideWorkloads {
			for _, fl := range WideFailures {
				for _, net := range WideNetworks {
					out = append(out, Scenario{Topology: topo, Workload: wl, Failure: fl, Network: net})
				}
			}
		}
	}
	return out
}

// MatrixProtocols lists the protocols every scenario runs under:
// HC3I plus the three baseline protocols.
var MatrixProtocols = []string{"hc3i", "global-coordinated", "hier-coordinated", "pessimistic-log"}

// Matrix returns the full cross product of the axes, in axis order.
func Matrix() []Scenario {
	var out []Scenario
	for _, topo := range MatrixTopologies {
		for _, wl := range MatrixWorkloads {
			for _, fl := range MatrixFailures {
				for _, net := range MatrixNetworks {
					out = append(out, Scenario{Topology: topo, Workload: wl, Failure: fl, Network: net})
				}
			}
		}
	}
	return out
}

// MatrixScenarios returns the scenarios selected by a filter: a
// comma-separated list of dim=value constraints ("topology=2c,
// failure=churn"), where dim is topology, workload, failure, network
// or tier. The filter value tier=wide (or naming a wide topology)
// selects from the wide-federation tier; otherwise the classic matrix
// is searched. An empty filter selects the whole classic matrix.
func MatrixScenarios(filter string) ([]Scenario, error) {
	want := map[string]string{}
	if strings.TrimSpace(filter) != "" {
		for _, part := range strings.Split(filter, ",") {
			kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
			if len(kv) != 2 {
				return nil, fmt.Errorf("experiments: matrix filter %q: want dim=value", part)
			}
			dim := strings.ToLower(strings.TrimSpace(kv[0]))
			switch dim {
			case "topology", "workload", "failure", "network", "tier":
				if _, dup := want[dim]; dup {
					return nil, fmt.Errorf("experiments: matrix filter names %s twice", dim)
				}
				want[dim] = strings.TrimSpace(kv[1])
			default:
				return nil, fmt.Errorf("experiments: matrix filter: unknown key %q (valid keys: topology, workload, failure, network, tier; valid tiers: classic, wide, chaos, trace)", kv[0])
			}
		}
	}
	universe := Matrix
	probe := Scenario{Topology: MatrixTopologies[0], Workload: MatrixWorkloads[0],
		Failure: MatrixFailures[0], Network: MatrixNetworks[0]}
	tier := want["tier"]
	if tier == "" {
		// Infer the tier from unambiguous axis values, so e.g.
		// topology=64c, failure=storm or network=trace select their
		// tier directly.
		switch {
		case wideTopology(want["topology"]):
			tier = "wide"
		case want["failure"] == ChaosFailures[0]:
			tier = "chaos"
		case want["network"] == TraceNetworks[0] || want["workload"] == TraceWorkloads[0]:
			tier = "trace"
		default:
			tier = "classic"
		}
	}
	switch tier {
	case "classic":
	case "wide":
		universe = WideMatrix
		probe = Scenario{Topology: WideTopologies[0], Workload: WideWorkloads[0],
			Failure: WideFailures[0], Network: WideNetworks[0]}
	case "chaos":
		universe = ChaosMatrix
		probe = Scenario{Topology: ChaosTopologies[0], Workload: ChaosWorkloads[0],
			Failure: ChaosFailures[0], Network: ChaosNetworks[0]}
	case "trace":
		universe = TraceMatrix
		probe = Scenario{Topology: TraceTopologies[0], Workload: TraceWorkloads[0],
			Failure: TraceFailures[0], Network: TraceNetworks[0]}
	default:
		return nil, fmt.Errorf("experiments: unknown tier %q (have classic, wide, chaos, trace)", tier)
	}
	delete(want, "tier")
	// Reject unknown axis values up front, so a typo like topology=3c
	// reports the axis and its values instead of "selects no scenarios".
	for dim, val := range want {
		p := probe
		switch dim {
		case "topology":
			p.Topology = val
		case "workload":
			p.Workload = val
		case "failure":
			p.Failure = val
		case "network":
			p.Network = val
		}
		if err := p.Validate(); err != nil {
			return nil, err
		}
	}
	var out []Scenario
	for _, s := range universe() {
		if v, ok := want["topology"]; ok && v != s.Topology {
			continue
		}
		if v, ok := want["workload"]; ok && v != s.Workload {
			continue
		}
		if v, ok := want["failure"]; ok && v != s.Failure {
			continue
		}
		if v, ok := want["network"]; ok && v != s.Network {
			continue
		}
		out = append(out, s)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("experiments: matrix filter %q selects no scenarios", filter)
	}
	return out, nil
}

// matrixScale returns the per-cluster node counts for a topology and
// the run duration. Quick mode keeps the full matrix in the tens of
// seconds; full mode stresses the protocols at a heavier scale. Wide
// topologies (64–256 clusters) use uniform small clusters — the axis
// under test is federation width, not cluster depth — and a shorter
// virtual run, since event volume grows with width.
func matrixScale(cfg Config, topo string) (sizes []int, total sim.Duration, err error) {
	if n, ok := map[string]int{"64c": 64, "128c": 128, "256c": 256, "1024c": 1024}[topo]; ok {
		per := 3
		total := 2 * sim.Hour
		if cfg.Quick {
			per = 2
			total = 30 * sim.Minute
		}
		if n >= 1024 {
			// The widest rung exists to exercise sharded execution at
			// scale; a quarter of the virtual time keeps its event
			// volume (which grows with width) near the 256c rung's.
			total /= 4
		}
		sizes := make([]int, n)
		for i := range sizes {
			sizes[i] = per
		}
		return sizes, total, nil
	}
	type dims struct{ quick, full []int }
	shapes := map[string]dims{
		"2c":   {quick: []int{4, 4}, full: []int{20, 20}},
		"4c":   {quick: []int{4, 4, 4, 4}, full: []int{12, 12, 12, 12}},
		"8c":   {quick: []int{3, 3, 3, 3, 3, 3, 3, 3}, full: []int{8, 8, 8, 8, 8, 8, 8, 8}},
		"asym": {quick: []int{2, 4, 6}, full: []int{4, 8, 16}},
	}
	d, ok := shapes[topo]
	if !ok {
		return nil, 0, fmt.Errorf("experiments: unknown matrix topology %q", topo)
	}
	if cfg.Quick {
		return d.quick, 90 * sim.Minute, nil
	}
	return d.full, 6 * sim.Hour, nil
}

// matrixTopology assembles the federation for a scenario: cluster
// shapes from the topology dimension, inter-cluster links from the
// network profile. trace is the link schedule of trace-tier scenarios
// (nil elsewhere): its minimum latency becomes the inter links' static
// latency — so the perturber's surplus is never negative and the
// sharded runner's conservative lookahead stays positive — with zero
// static jitter, since all variation comes from the trace replay.
func matrixTopology(sizes []int, network string, trace *netsim.LinkTrace) (*topology.Federation, error) {
	clusters := make([]topology.Cluster, len(sizes))
	for i, n := range sizes {
		clusters[i] = topology.Cluster{
			Name:  fmt.Sprintf("cluster%d", i),
			Nodes: n,
			Intra: topology.MyrinetLike(),
		}
	}
	fed := topology.New(clusters...)
	switch network {
	case "lan":
		fed.SetAllInterLinks(topology.EthernetLike())
	case "wan":
		fed.SetAllInterLinks(topology.WANLike())
	case "jitter":
		fed.SetAllInterLinks(topology.HighJitterWAN())
	case "trace":
		if trace == nil {
			return nil, fmt.Errorf("experiments: network %q needs a link trace", network)
		}
		fed.SetAllInterLinks(topology.Link{
			Latency:   trace.MinLatency(),
			Bandwidth: topology.Mbps(10),
		})
	default:
		return nil, fmt.Errorf("experiments: unknown matrix network %q", network)
	}
	return fed, nil
}

// matrixWorkload builds the workload for a scenario.
func matrixWorkload(kind string, n int, total sim.Duration) (*app.Workload, error) {
	const (
		intra = 240.0 // aggregate intra-cluster messages per hour
		inter = 24.0  // aggregate messages per hour per cluster pair
	)
	var wl *app.Workload
	switch kind {
	case "uniform":
		wl = app.Uniform(n, intra, inter, total)
	case "bursty":
		wl = app.Uniform(n, intra, inter, total)
		wl.Burst = &app.Burst{Period: 30 * sim.Minute, Duty: 0.25}
	case "hotspot":
		// Every cluster hammers cluster 0 (a shared service); the rest
		// of the inter-cluster fabric stays almost idle.
		rates := make([][]float64, n)
		for i := range rates {
			rates[i] = make([]float64, n)
			rates[i][i] = intra
			if i != 0 {
				rates[i][0] = 2 * inter
				rates[0][i] = inter / 4
			}
		}
		wl = &app.Workload{
			TotalTime:     total,
			RatesPerHour:  rates,
			MsgSize:       4096,
			MeanCompute:   2 * sim.Second,
			Deterministic: true,
		}
	case "coupling":
		// The paper's Figure 1 pipeline: simulation -> treatment ->
		// display, heavy inside each stage, a directed flow along it.
		wl = app.Pipeline(n, intra, inter, total)
	case "openloop":
		// Open-loop heavy traffic: two million users, each issuing
		// requests at a tiny independent rate, destinations Zipf-skewed
		// across the clusters. Poisson superposition compiles the
		// population exactly into a per-cluster-pair rate matrix, so
		// millions of users cost nothing at run time; arrivals never
		// wait for the system (the open-loop property under test).
		wl = app.NewOpenLoop(n, 2_000_000, 3e-4, 1.1, total)
	case "ring":
		// The wide tier's sparse pattern: local chatter, a ring
		// neighbour and one long-haul partner per cluster — the
		// paper's "rare inter-cluster communication" premise at scale.
		// Note the ring closes a dependency cycle, so every unforced
		// checkpoint seeds a forced-CLC wave that circulates for the
		// rest of the run: wide runs exercise sustained width-wide
		// dependency churn, not just quiescent pipes.
		rates := make([][]float64, n)
		for i := range rates {
			rates[i] = make([]float64, n)
			rates[i][i] = 60
			rates[i][(i+1)%n] = 60
			rates[i][(i+n/2)%n] = 15
		}
		wl = &app.Workload{
			TotalTime:     total,
			RatesPerHour:  rates,
			MsgSize:       4096,
			MeanCompute:   2 * sim.Second,
			Deterministic: true,
		}
		wl.StateSize = 64 << 10
		return wl, nil
	default:
		return nil, fmt.Errorf("experiments: unknown matrix workload %q", kind)
	}
	wl.StateSize = 256 << 10
	return wl, nil
}

// matrixFailures builds the crash schedule and the replication degree a
// failure pattern needs.
func matrixFailures(kind string, sizes []int, total sim.Duration) (crashes []federation.Crash, replicas int, err error) {
	replicas = 1
	switch kind {
	case "storm":
		// Chaos tier: crashes are injected by the adversarial
		// scheduler into protocol-sensitive windows at run time, not
		// scheduled here. Replication degree 2 keeps every state
		// recoverable when a fuse hits a node that is itself mid-
		// recovery.
		replicas = 2
	case "none":
	case "crash":
		// One fail-stop crash mid-run.
		crashes = []federation.Crash{
			{At: sim.Time(total / 2), Node: topology.NodeID{Cluster: 0, Index: 1}},
		}
	case "corr":
		// Correlated cluster failure: a shared-infrastructure event
		// (power, backbone) takes one node down in two different
		// clusters one second apart — the §7 simultaneous-faults case.
		// Replication degree 2 keeps every state recoverable.
		if len(sizes) < 2 {
			return nil, 0, fmt.Errorf("experiments: correlated failure needs >= 2 clusters")
		}
		last := topology.ClusterID(len(sizes) - 1)
		at := sim.Time(total / 2)
		crashes = []federation.Crash{
			{At: at, Node: topology.NodeID{Cluster: 0, Index: 1}},
			{At: at.Add(sim.Second), Node: topology.NodeID{Cluster: last, Index: 1}},
		}
		replicas = 2
	case "churn":
		// Repeated single crashes spread through the run, round-robin
		// over the clusters, well separated so each rollback completes.
		const waves = 4
		for k := 0; k < waves; k++ {
			c := k % len(sizes)
			crashes = append(crashes, federation.Crash{
				At:   sim.Time(total * sim.Duration(k+1) / (waves + 2)),
				Node: topology.NodeID{Cluster: topology.ClusterID(c), Index: 1},
			})
		}
	default:
		return nil, 0, fmt.Errorf("experiments: unknown matrix failure pattern %q", kind)
	}
	return crashes, replicas, nil
}

// matrixFactory maps a protocol name to its node factory (nil = HC3I).
func matrixFactory(protocol string) (federation.NodeFactory, error) {
	switch protocol {
	case "hc3i":
		return nil, nil
	case "global-coordinated":
		return func(c core.Config, e core.Env, h core.AppHooks) federation.ProtocolNode {
			return baseline.NewGlobalCoordinated(c, e, h)
		}, nil
	case "hier-coordinated":
		return func(c core.Config, e core.Env, h core.AppHooks) federation.ProtocolNode {
			return baseline.NewHierCoord(c, e, h)
		}, nil
	case "pessimistic-log":
		return func(c core.Config, e core.Env, h core.AppHooks) federation.ProtocolNode {
			return baseline.NewPessimisticLog(c, e, h)
		}, nil
	default:
		return nil, fmt.Errorf("experiments: unknown matrix protocol %q", protocol)
	}
}

// ScenarioOptions assembles the federation options for one scenario
// under one protocol. Exported for tests that need run-level access
// (e.g. asserting worker isolation of sim.Stats).
func ScenarioOptions(cfg Config, sc Scenario, protocol string) (federation.Options, error) {
	if err := sc.Validate(); err != nil {
		return federation.Options{}, err
	}
	sizes, total, err := matrixScale(cfg, sc.Topology)
	if err != nil {
		return federation.Options{}, err
	}
	if sc.ChaosTier() {
		// Chaos runs trade virtual length for schedule density: the
		// crash cooldown and short CLC timers pack the run with
		// protocol-sensitive windows.
		total = 3 * sim.Hour
		if cfg.Quick {
			total = sim.Hour
		}
	}
	var trace *netsim.LinkTrace
	if sc.TraceTier() {
		if trace, err = cfg.linkTrace(); err != nil {
			return federation.Options{}, err
		}
	}
	fed, err := matrixTopology(sizes, sc.Network, trace)
	if err != nil {
		return federation.Options{}, err
	}
	wl, err := matrixWorkload(sc.Workload, len(sizes), total)
	if err != nil {
		return federation.Options{}, err
	}
	crashes, replicas, err := matrixFailures(sc.Failure, sizes, total)
	if err != nil {
		return federation.Options{}, err
	}
	factory, err := matrixFactory(protocol)
	if err != nil {
		return federation.Options{}, err
	}
	periods := make([]sim.Duration, len(sizes))
	clcEvery := 20 * sim.Minute
	if sc.Wide() {
		// Frequent unforced checkpoints keep neighbour SNs moving, so
		// wide runs continually exercise the width-sensitive forced-CLC
		// machinery rather than idling between rare commits.
		clcEvery = 10 * sim.Minute
	}
	if sc.ChaosTier() {
		// Short commit timers multiply the 2PC windows the crash
		// injector aims at, and keep fresh checkpoints committing
		// between crash waves (the one-fault-at-a-time model assumes
		// recovery completes before the next fault).
		clcEvery = 4 * sim.Minute
	}
	if sc.TraceTier() {
		// Stable-delivery latency is dominated by the wait for the next
		// committed CLC wave; a short commit period keeps the reported
		// distribution about the protocol and the link schedule, not
		// about an idle timer.
		clcEvery = 5 * sim.Minute
	}
	for i := range periods {
		periods[i] = clcEvery
	}
	opts := federation.Options{
		Topology:   fed,
		Workload:   wl,
		CLCPeriods: periods,
		Replicas:   replicas,
		Seed:       cfg.Seed,
		Crashes:    crashes,
		// The wide tier runs HC3I with the §7 transitive extension:
		// whole-DDV piggybacks are exactly the O(width) per-message
		// cost the delta wire representation exists to flatten, and
		// wide federations are where the difference shows. Baseline
		// protocols ignore the flag.
		Transitive:  sc.Wide(),
		DenseWire:   cfg.DenseWire,
		NodeFactory: factory,
	}
	if sc.ChaosTier() {
		// Garbage collection runs so its §3.5 safety rule is under
		// fire too; the oracle is always attached — an un-checked
		// hostile schedule proves nothing.
		opts.GCPeriod = 10 * sim.Minute
		opts.Oracle = true
		seed := cfg.ChaosSeed
		if seed == 0 {
			seed = cfg.Seed
		}
		opts.Chaos = &chaos.Config{Seed: seed, OpBudget: cfg.ChaosOps}
	}
	if sc.TraceTier() {
		opts.LinkTrace = trace
	}
	return opts, nil
}

// linkTrace resolves the trace tier's link schedule: the configured
// -trace-file when set, the embedded mobile-broadband fixture
// otherwise.
func (c Config) linkTrace() (*netsim.LinkTrace, error) {
	if c.TraceFile == "" {
		return netsim.DefaultTrace(), nil
	}
	f, err := os.Open(c.TraceFile)
	if err != nil {
		return nil, fmt.Errorf("experiments: link trace: %w", err)
	}
	defer f.Close()
	t, err := netsim.ParseTrace(f)
	if err != nil {
		return nil, fmt.Errorf("experiments: link trace %s: %w", c.TraceFile, err)
	}
	return t, nil
}

// RunScenario executes one scenario under one protocol and returns the
// raw federation result.
func RunScenario(cfg Config, sc Scenario, protocol string) (*federation.Result, error) {
	opts, err := ScenarioOptions(cfg, sc, protocol)
	if err != nil {
		return nil, err
	}
	res, err := cfg.runFed(opts)
	if err != nil {
		return nil, fmt.Errorf("%s under %s: %w", sc.Name(), protocol, err)
	}
	return res, nil
}

// ProtocolsFor lists the protocols a scenario runs under: HC3I plus
// the three baselines on the classic and wide tiers, HC3I alone on the
// chaos tier (the baselines make no inter-cluster consistency claims
// for the oracle to check) and on the trace tier (stable delivery is
// defined by HC3I's commit wave).
func ProtocolsFor(sc Scenario) []string {
	if sc.ChaosTier() {
		return ChaosProtocols
	}
	if sc.TraceTier() {
		return TraceProtocols
	}
	return MatrixProtocols
}

// RunChaosScenario runs one chaos-tier scenario across the
// configuration's chaos-seed budget (cfg.ChaosSeeds schedules, base
// seed cfg.ChaosSeed or cfg.Seed) and returns the per-seed results in
// seed order. Any oracle violation or harness invariant failure
// aborts with an error naming the chaos seed that reproduces it.
func RunChaosScenario(cfg Config, sc Scenario, protocol string) ([]*federation.Result, error) {
	seeds := cfg.ChaosSeeds
	if seeds < 1 {
		seeds = 1
	}
	base := cfg.ChaosSeed
	if base == 0 {
		base = cfg.Seed
	}
	out := make([]*federation.Result, 0, seeds)
	for k := 0; k < seeds; k++ {
		runCfg := cfg
		runCfg.ChaosSeed = base + uint64(k)
		res, err := RunScenario(runCfg, sc, protocol)
		if err != nil {
			// The typed wrapper names the exact (scenario, seed, shard
			// count) that reproduces the failure; hc3ibench unwraps it to
			// print the one-command replay instead of a bare error.
			return nil, &ChaosFailure{
				Scenario: sc, Protocol: protocol, Seed: base + uint64(k),
				Shards: runCfg.Shards, Quick: runCfg.Quick, OpBudget: runCfg.ChaosOps,
				Err: err,
			}
		}
		out = append(out, res)
	}
	return out, nil
}

// RunMatrix executes every scenario under its tier's protocols through
// the worker pool and renders one table, rows in (scenario, protocol)
// order. The unit of parallelism is one federation run, so -parallel N
// keeps N runs in flight regardless of how the matrix is shaped.
// Chaos-tier rows aggregate across the configured chaos-seed budget.
func RunMatrix(rc RunnerConfig, scenarios []Scenario) (*Table, error) {
	if scenarios == nil {
		scenarios = Matrix()
	}
	cfg := rc.config()
	type runKey struct {
		sc    int
		proto string
	}
	var runs []runKey
	for i, sc := range scenarios {
		for _, p := range ProtocolsFor(sc) {
			runs = append(runs, runKey{sc: i, proto: p})
		}
	}
	// Trace-tier tables carry the tier's headline metric — the
	// stable-delivery latency percentiles — as extra columns. Tiers
	// never mix inside one MatrixScenarios selection, so the classic,
	// wide and chaos tables (and their goldens) keep their shape.
	traceTier := len(scenarios) > 0
	for _, sc := range scenarios {
		traceTier = traceTier && sc.TraceTier()
	}
	t := &Table{
		ID:    "MX",
		Title: fmt.Sprintf("Scenario matrix (%d scenarios, %d runs)", len(scenarios), len(runs)),
		Headers: []string{"scenario", "protocol", "forced", "unforced", "rollbacks",
			"failures", "max_log", "events"},
	}
	if traceTier {
		t.Headers = append(t.Headers, "p50_ms", "p99_ms", "p999_ms")
	}
	rows := make([]Row, len(runs))
	err := forEach(rc.workers(), len(runs), func(i int) error {
		sc, proto := scenarios[runs[i].sc], runs[i].proto
		var results []*federation.Result
		var err error
		if sc.ChaosTier() {
			results, err = RunChaosScenario(cfg, sc, proto)
		} else {
			var res *federation.Result
			res, err = RunScenario(cfg, sc, proto)
			results = []*federation.Result{res}
		}
		if err != nil {
			return err
		}
		var forced, unforced, rollbacks, failures, events uint64
		maxLog := 0
		for _, res := range results {
			for _, c := range res.Clusters {
				forced += c.Forced
				unforced += c.Unforced
				rollbacks += c.Rollbacks
			}
			failures += res.Failures
			events += res.Events
			if res.MaxLoggedMessages > maxLog {
				maxLog = res.MaxLoggedMessages
			}
		}
		row := Row{sc.Name(), proto, forced, unforced, rollbacks,
			failures, maxLog, events}
		if traceTier {
			lat := &sim.Histogram{}
			for _, res := range results {
				lat.Merge(res.Stats.Histogram(federation.StableLatencyMetric))
			}
			row = append(row,
				lat.Quantile(0.50)*1e3, lat.Quantile(0.99)*1e3, lat.Quantile(0.999)*1e3)
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		t.AddRow(r...)
	}
	t.Notes = append(t.Notes,
		"shape: HC3I's forced CLCs track inter-cluster chatter; coordinated",
		"baselines roll every cluster back on any failure; the message log",
		"high-water mark bounds the volatile memory the protocol pins")
	return t, nil
}

// MatrixAxes summarizes the axes for -list style output, one line per
// dimension, values sorted.
func MatrixAxes() string {
	var b strings.Builder
	dims := []struct {
		name string
		vals []string
	}{
		{"topology", MatrixTopologies},
		{"workload", MatrixWorkloads},
		{"failure", MatrixFailures},
		{"network", MatrixNetworks},
		{"protocol", MatrixProtocols},
	}
	for _, d := range dims {
		vals := append([]string(nil), d.vals...)
		sort.Strings(vals)
		fmt.Fprintf(&b, "%-9s %s\n", d.name, strings.Join(vals, " "))
	}
	fmt.Fprintf(&b, "%-9s %s\n", "tier", "chaos classic trace wide")
	fmt.Fprintf(&b, "wide tier (tier=wide): %s x %s x %s x %s\n",
		strings.Join(WideTopologies, "/"), strings.Join(WideWorkloads, "/"),
		strings.Join(WideFailures, "/"), strings.Join(WideNetworks, "/"))
	fmt.Fprintf(&b, "chaos tier (tier=chaos): %s x %s x %s x %s under %s, oracle-checked,\n",
		strings.Join(ChaosTopologies, "/"), strings.Join(ChaosWorkloads, "/"),
		strings.Join(ChaosFailures, "/"), strings.Join(ChaosNetworks, "/"),
		strings.Join(ChaosProtocols, "/"))
	fmt.Fprintf(&b, "  adversarial schedules replayable via -chaos-seed (sweep width via -chaos-seeds)\n")
	fmt.Fprintf(&b, "trace tier (tier=trace): %s x %s x %s x %s under %s,\n",
		strings.Join(TraceTopologies, "/"), strings.Join(TraceWorkloads, "/"),
		strings.Join(TraceFailures, "/"), strings.Join(TraceNetworks, "/"),
		strings.Join(TraceProtocols, "/"))
	fmt.Fprintf(&b, "  open-loop user arrivals over trace-driven links (-trace-file), p50/p99/p999 stable-delivery latency\n")
	return b.String()
}
