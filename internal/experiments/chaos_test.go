package experiments

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"repro/internal/core"
)

// The chaos-tier suite: adversarial schedules (bounded reordering,
// duplicate deliveries, crash injection into protocol-sensitive
// windows) with the invariant oracle attached. This discipline has
// already paid for itself: the seed sweeps surfaced three real
// protocol bugs — rollback alerts deferred during crash recovery were
// dropped on the floor (never deciding the cascade, leaving orphan
// deliveries); reexamineHeld could deliver a held message inside the
// *next* checkpoint's freeze window, breaking the ack convention that
// a delivery at SN k is captured by checkpoint k+1 (a crash plus
// rollback to that checkpoint then lost the message permanently); and
// the cascade-suppression memo silenced a genuinely new rollback to a
// repeated target, leaving covered post-restore deliveries as
// permanent orphans (fixed by the post-restore anchor CLC).

// chaosSeedBudget returns how many adversarial schedules the sweep
// runs: 1000 by default (the tier's acceptance budget), a quick
// fraction in -short mode, or whatever CHAOS_SEED_BUDGET asks for
// (the nightly CI job raises it). Parsing and the >= 1 validation live
// in ChaosSeedBudget, so a malformed override fails here, up front,
// with the accepted forms — not after the sweep already started.
func chaosSeedBudget(t *testing.T) int {
	fallback := 1000
	if testing.Short() {
		fallback = 60
	}
	n, err := ChaosSeedBudget(fallback)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestChaosTierSeeds sweeps the seed budget across the chaos tier,
// weighted toward the cheap topologies so the default budget stays in
// seconds: every run must finish with the oracle clean and every
// harness invariant (message completeness, SN/DDV agreement) intact.
// A failure names the chaos seed: replay it with
// `hc3ibench -quick -matrix -filter tier=chaos,... -chaos-seed N`.
func TestChaosTierSeeds(t *testing.T) {
	budget := chaosSeedBudget(t)
	type slice struct {
		sc     Scenario
		weight int // per mille of the budget
		shards int // 0/1 = single-engine reference
	}
	// The sharded slices aim the same adversarial scheduler at the
	// conservative-window coordinator: per-shard chaos streams produce a
	// different (still seed-deterministic) schedule than the sequential
	// reference, with crash injections for non-owned victims crossing
	// the window barrier. The oracle replays the merged journal, so a
	// lookahead violation or barrier-order bug fails the run.
	slices := []slice{
		{Scenario{"2c", "uniform", "storm", "jitter"}, 220, 0},
		{Scenario{"2c", "bursty", "storm", "jitter"}, 220, 0},
		{Scenario{"4c", "uniform", "storm", "jitter"}, 180, 0},
		{Scenario{"4c", "bursty", "storm", "jitter"}, 180, 0},
		{Scenario{"8c", "uniform", "storm", "jitter"}, 50, 0},
		{Scenario{"8c", "bursty", "storm", "jitter"}, 50, 0},
		{Scenario{"4c", "uniform", "storm", "jitter"}, 40, 2},
		{Scenario{"4c", "bursty", "storm", "jitter"}, 30, 4},
		{Scenario{"8c", "uniform", "storm", "jitter"}, 30, 4},
	}
	type run struct {
		sc     Scenario
		seed   uint64
		shards int
	}
	var runs []run
	for si, s := range slices {
		n := budget * s.weight / 1000
		if n < 1 {
			n = 1
		}
		for k := 0; k < n; k++ {
			runs = append(runs, run{sc: s.sc, seed: uint64(1000*si + k + 1), shards: s.shards})
		}
	}
	err := forEach(DefaultWorkers(), len(runs), func(i int) error {
		cfg := Config{Seed: runs[i].seed, Quick: true, ChaosSeed: runs[i].seed, Shards: runs[i].shards}
		_, err := RunScenario(cfg, runs[i].sc, "hc3i")
		if err != nil && runs[i].shards > 1 {
			// Sharded schedules replay with the same shard count:
			// hc3ibench ... -chaos-seed N -shards S.
			return fmt.Errorf("shards=%d: %w", runs[i].shards, err)
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%d adversarial schedules clean", len(runs))
}

// TestChaosReplayDeterminism: one chaos seed is one schedule — the
// whole run (every statistic, every event) replays identically.
func TestChaosReplayDeterminism(t *testing.T) {
	sc := Scenario{Topology: "4c", Workload: "uniform", Failure: "storm", Network: "jitter"}
	cfg := Config{Seed: 21, Quick: true, ChaosSeed: 77}
	a, err := RunScenario(cfg, sc, "hc3i")
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScenario(cfg, sc, "hc3i")
	if err != nil {
		t.Fatal(err)
	}
	if a.Events != b.Events {
		t.Fatalf("replay diverged: %d vs %d events", a.Events, b.Events)
	}
	if d1, d2 := a.Stats.Dump(), b.Stats.Dump(); d1 != d2 {
		t.Errorf("replay diverged in stats:\n--- first\n%s\n--- second\n%s", d1, d2)
	}
	if a.Failures == 0 {
		t.Error("chaos run injected no crashes; the schedule is not adversarial")
	}
}

// TestChaosShardedReplayDeterminism: a sharded chaos run is keyed by
// (seed, shard count) — per-shard chaos streams make the schedule
// differ from the sequential reference, but replaying with the same
// shard count reproduces every statistic and event exactly. The chaos
// tier always attaches the oracle, so both runs are also
// invariant-checked through the sharded journal-replay path.
func TestChaosShardedReplayDeterminism(t *testing.T) {
	sc := Scenario{Topology: "4c", Workload: "uniform", Failure: "storm", Network: "jitter"}
	cfg := Config{Seed: 21, Quick: true, ChaosSeed: 77, Shards: 4}
	a, err := RunScenario(cfg, sc, "hc3i")
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScenario(cfg, sc, "hc3i")
	if err != nil {
		t.Fatal(err)
	}
	if a.Events != b.Events {
		t.Fatalf("sharded replay diverged: %d vs %d events", a.Events, b.Events)
	}
	if d1, d2 := a.Stats.Dump(), b.Stats.Dump(); d1 != d2 {
		t.Errorf("sharded replay diverged in stats:\n--- first\n%s\n--- second\n%s", d1, d2)
	}
	if a.Failures == 0 {
		t.Error("sharded chaos run injected no crashes; the schedule is not adversarial")
	}
}

// TestOracleCatchesMutations is the oracle's mutation smoke test: each
// seeded protocol break (core.Mutate) must be flagged by the oracle
// within a bounded number of adversarial schedules — a checker that
// stays silent while the protocol is deliberately broken proves
// nothing.
func TestOracleCatchesMutations(t *testing.T) {
	sc := Scenario{Topology: "4c", Workload: "uniform", Failure: "storm", Network: "jitter"}
	cases := []struct {
		name   string
		arm    func()
		expect string // substring of the oracle violation
		seeds  int
	}{
		{
			name:   "AcceptStaleEpoch",
			arm:    func() { core.Mutate.AcceptStaleEpoch = true },
			expect: "oracle:",
			seeds:  40,
		},
		{
			name:   "GCOverCollect",
			arm:    func() { core.Mutate.GCOverCollect = true },
			expect: "gc safety",
			seeds:  10,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.arm()
			defer func() { core.Mutate = core.MutationFlags{} }()
			for seed := uint64(1); seed <= uint64(tc.seeds); seed++ {
				cfg := Config{Seed: seed, Quick: true, ChaosSeed: seed}
				_, err := RunScenario(cfg, sc, "hc3i")
				if err == nil {
					continue // this schedule never reached the broken path
				}
				if !strings.Contains(err.Error(), "oracle:") {
					t.Fatalf("seed %d failed outside the oracle: %v", seed, err)
				}
				if !strings.Contains(err.Error(), tc.expect) {
					t.Fatalf("seed %d: oracle fired but not the expected check (%q): %v", seed, tc.expect, err)
				}
				t.Logf("caught at seed %d: %v", seed, err)
				return
			}
			t.Fatalf("oracle never flagged mutation %s within %d seeds", tc.name, tc.seeds)
		})
	}
}

// TestOracleGoldenByteIdentity re-runs the pinned golden slices —
// every classic failure pattern and the 64-cluster wide slice (whose
// transitive piggybacks exercise the pipe-lockstep check) — with the
// oracle attached: the CSV must stay byte-identical to the recordings,
// proving the oracle is pure observation.
func TestOracleGoldenByteIdentity(t *testing.T) {
	for _, failure := range MatrixFailures {
		failure := failure
		t.Run(failure, func(t *testing.T) {
			scs, err := MatrixScenarios("topology=2c,workload=uniform,network=lan,failure=" + failure)
			if err != nil {
				t.Fatal(err)
			}
			tab, err := RunMatrix(RunnerConfig{Workers: 4, Seed: 11, Quick: true, Oracle: true}, scs)
			if err != nil {
				t.Fatal(err)
			}
			want, err := os.ReadFile(goldenPath(failure))
			if err != nil {
				t.Fatalf("missing golden: %v", err)
			}
			if got := tab.CSV(); got != string(want) {
				t.Errorf("oracle-attached matrix CSV diverged from the golden:\n--- got\n%s--- want\n%s", got, want)
			}
		})
	}
	t.Run("wide", func(t *testing.T) {
		if testing.Short() {
			t.Skip("wide oracle identity skipped in -short mode")
		}
		scs, err := MatrixScenarios("tier=wide,topology=64c")
		if err != nil {
			t.Fatal(err)
		}
		tab, err := RunMatrix(RunnerConfig{Workers: 8, Seed: 11, Quick: true, Oracle: true}, scs)
		if err != nil {
			t.Fatal(err)
		}
		want, err := os.ReadFile(goldenPath("wide"))
		if err != nil {
			t.Fatalf("missing golden: %v", err)
		}
		if got := tab.CSV(); got != string(want) {
			t.Errorf("oracle-attached wide CSV diverged from the golden:\n--- got\n%s--- want\n%s", got, want)
		}
	})
}

// TestChaosTierSelection covers the tier's filter plumbing: explicit
// tier=chaos, inference from failure=storm, and the chaos axes'
// validation errors.
func TestChaosTierSelection(t *testing.T) {
	scs, err := MatrixScenarios("tier=chaos")
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != len(ChaosMatrix()) {
		t.Fatalf("tier=chaos selected %d scenarios, want %d", len(scs), len(ChaosMatrix()))
	}
	for _, sc := range scs {
		if !sc.ChaosTier() {
			t.Fatalf("non-chaos scenario %s in the chaos tier", sc.Name())
		}
		if err := sc.Validate(); err != nil {
			t.Fatalf("chaos scenario %s invalid: %v", sc.Name(), err)
		}
	}
	inferred, err := MatrixScenarios("failure=storm,topology=2c")
	if err != nil {
		t.Fatal(err)
	}
	if len(inferred) != 2 {
		t.Fatalf("failure=storm inference selected %d scenarios, want 2", len(inferred))
	}
	if _, err := MatrixScenarios("tier=chaos,failure=crash"); err == nil {
		t.Fatal("classic failure accepted on the chaos tier")
	}
	if _, err := MatrixScenarios("tier=chaos,network=lan"); err == nil {
		t.Fatal("chaos tier must demand the jitter network (the reorder envelope)")
	}
}

// TestMatrixFilterUnknownKeyErrors pins the -filter error contract: an
// unknown key must not silently match nothing — it errors listing the
// valid keys and tiers, and unknown values keep listing their axis.
func TestMatrixFilterUnknownKeyErrors(t *testing.T) {
	_, err := MatrixScenarios("topo=2c")
	if err == nil {
		t.Fatal("unknown filter key accepted")
	}
	for _, want := range []string{"unknown key", "topology", "workload", "failure", "network", "tier", "classic", "wide", "chaos"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("unknown-key error %q does not list %q", err, want)
		}
	}
	if _, err := MatrixScenarios("tier=quantum"); err == nil ||
		!strings.Contains(err.Error(), "classic, wide, chaos") {
		t.Errorf("unknown tier error must list the tiers, got: %v", err)
	}
	if _, err := MatrixScenarios("topology=3c"); err == nil ||
		!strings.Contains(err.Error(), "2c") {
		t.Errorf("unknown topology error must list the axis values, got: %v", err)
	}
	if _, err := MatrixScenarios("topology=2c,topology=4c"); err == nil {
		t.Error("duplicate key accepted")
	}
}

// TestChaosRejectsDeltaTransitive pins the wire-contract guard: the
// chaos scheduler cannot run on delta-encoded transitive piggybacks
// (duplicate deliveries would desync the per-pipe codecs).
func TestChaosRejectsDeltaTransitive(t *testing.T) {
	sc := Scenario{Topology: "2c", Workload: "uniform", Failure: "storm", Network: "jitter"}
	opts, err := ScenarioOptions(Config{Seed: 1, Quick: true}, sc, "hc3i")
	if err != nil {
		t.Fatal(err)
	}
	opts.Transitive = true
	opts.DenseWire = false
	if _, err := runFed(opts); err == nil || !strings.Contains(err.Error(), "chaos") {
		t.Fatalf("delta-transitive chaos run accepted: %v", err)
	}
}
