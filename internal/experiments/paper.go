package experiments

import (
	"fmt"

	"repro/internal/app"
	"repro/internal/federation"
	"repro/internal/sim"
	"repro/internal/topology"
)

// paperScale returns the evaluation scale: the paper's 2×100-node,
// 10-hour configuration, or a reduced one in Quick mode. Node count
// does not change the traffic (rates are cluster-aggregate), only the
// protocol's intra-cluster fan-out.
func paperScale(cfg Config) (nodes int, hours sim.Duration) {
	if cfg.Quick {
		return 8, 3 * sim.Hour
	}
	return 100, 10 * sim.Hour
}

// paperOptions assembles the §5.2 configuration: Myrinet-like SANs,
// Ethernet-like inter-cluster links, Table 1 traffic.
func paperOptions(cfg Config, clusters int) federation.Options {
	nodes, hours := paperScale(cfg)
	fed := topology.Small(clusters, nodes)
	var wl *app.Workload
	if clusters == 3 {
		wl = app.Paper3Clusters()
	} else {
		wl = app.PaperTable1()
	}
	wl.TotalTime = hours
	if cfg.Quick {
		wl.StateSize = 256 << 10
	}
	periods := make([]sim.Duration, clusters)
	for i := range periods {
		periods[i] = 30 * sim.Minute
	}
	return federation.Options{
		Topology:   fed,
		Workload:   wl,
		CLCPeriods: periods,
		Seed:       cfg.Seed,
	}
}

func runFed(opts federation.Options) (*federation.Result, error) {
	if opts.Shards > 1 {
		// Conservative-window parallel execution; releases its shards'
		// scratch itself and falls back to the path below for
		// configurations it cannot split.
		return federation.RunSharded(opts)
	}
	f, err := federation.New(opts)
	if err != nil {
		return nil, err
	}
	res, err := f.Run()
	// The Result carries value copies (and the run's own sim.Stats), so
	// the federation's pooled scratch can go back to the arena now.
	f.Release()
	return res, err
}

// scaleCounts rescales an expected full-run count to the configured
// duration (Quick mode runs fewer hours).
func expectScaled(cfg Config, full float64) float64 {
	_, hours := paperScale(cfg)
	return full * hours.Seconds() / (10 * sim.Hour).Seconds()
}

func init() {
	register(Experiment{
		ID:    "T1",
		Title: "Application messages (paper Table 1)",
		Description: "Message counts per cluster pair for the §5.2 workload: a " +
			"simulation on cluster 0 feeding a trace processor on cluster 1.",
		Run: runT1,
	})
	register(Experiment{
		ID:    "F6",
		Title: "Interval between CLCs: cluster 0 (paper Figure 6)",
		Description: "Forced and unforced committed CLCs in cluster 0 as its " +
			"unforced-CLC timer sweeps; cluster 1's timer is infinite.",
		Run: func(cfg Config) (*Table, error) { return runF6F7(cfg, 0) },
	})
	register(Experiment{
		ID:    "F7",
		Title: "Interval between CLCs: cluster 1 (paper Figure 7)",
		Description: "Same sweep as F6, counting cluster 1's CLCs: no unforced " +
			"ones (its timer is infinite), forced ones proportional to cluster 0's.",
		Run: func(cfg Config) (*Table, error) { return runF6F7(cfg, 1) },
	})
	register(Experiment{
		ID:    "F8",
		Title: "Increasing the number of CLCs in cluster 1 (paper Figure 8)",
		Description: "Cluster 0's CLC count stays flat as cluster 1's timer " +
			"sweeps, thanks to the very few cluster 1 -> cluster 0 messages.",
		Run: runF8,
	})
	register(Experiment{
		ID:    "F9",
		Title: "Communication patterns (paper Figure 9)",
		Description: "Forced CLCs grow quickly as the number of cluster 1 -> " +
			"cluster 0 messages rises (both timers at 30 minutes).",
		Run: runF9,
	})
	register(Experiment{
		ID:    "T2",
		Title: "Garbage collection, 2 clusters (paper Table 2)",
		Description: "Stored CLCs just before and just after each 2-hourly " +
			"garbage collection, F9 workload at ~103 reverse messages.",
		Run: runT2,
	})
	register(Experiment{
		ID:    "T3",
		Title: "Garbage collection, 3 clusters (paper Table 3)",
		Description: "Same with three clusters (~200 messages in/out each); " +
			"only ~2 CLCs remain per cluster after every collection.",
		Run: runT3,
	})
}

func runT1(cfg Config) (*Table, error) {
	opts := paperOptions(cfg, 2)
	res, err := cfg.runFed(opts)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "T1",
		Title:   "Application messages",
		Headers: []string{"sender", "receiver", "measured", "paper(10h)", "expected(scaled)"},
	}
	paper := [][2]float64{{0, 0}, {1, 1}, {0, 1}, {1, 0}}
	counts := []float64{2920, 2497, 145, 11}
	for k, pair := range paper {
		i, j := int(pair[0]), int(pair[1])
		t.AddRow(
			fmt.Sprintf("Cluster %d", i),
			fmt.Sprintf("Cluster %d", j),
			res.AppMsgs[i][j],
			counts[k],
			expectScaled(cfg, counts[k]),
		)
	}
	t.Notes = append(t.Notes,
		"shape: heavy intra-cluster traffic, light 0->1 flow, almost none 1->0")
	return t, nil
}

// f6Sweep returns the x axis of Figures 6/7 (minutes between unforced
// CLCs in cluster 0).
func f6Sweep(cfg Config) []int {
	if cfg.Quick {
		return []int{10, 30, 60, 120}
	}
	return []int{5, 10, 15, 20, 30, 45, 60, 90, 120}
}

func runF6F7(cfg Config, report int) (*Table, error) {
	id := "F6"
	if report == 1 {
		id = "F7"
	}
	t := &Table{
		ID:      id,
		Title:   fmt.Sprintf("CLCs committed in cluster %d vs cluster 0 timer", report),
		Headers: []string{"delay_c0_min", "unforced", "forced", "total"},
	}
	err := sweep(cfg, t, f6Sweep(cfg), func(mins int) ([]Row, error) {
		opts := paperOptions(cfg, 2)
		opts.CLCPeriods = []sim.Duration{sim.Duration(mins) * sim.Minute, sim.Forever}
		res, err := cfg.runFed(opts)
		if err != nil {
			return nil, fmt.Errorf("%s at %d min: %w", id, mins, err)
		}
		c := res.Clusters[report]
		return []Row{{mins, c.Unforced, c.Forced, c.Total()}}, nil
	})
	if err != nil {
		return nil, err
	}
	if report == 0 {
		t.Notes = append(t.Notes,
			"shape: unforced falls hyperbolically with the timer; forced stays small",
			"and flat (induced by the few cluster1->cluster0 messages)")
	} else {
		t.Notes = append(t.Notes,
			"shape: zero unforced (infinite timer); forced tracks cluster 0's",
			"CLC count since most inter-cluster messages come from cluster 0")
	}
	return t, nil
}

func runF8(cfg Config) (*Table, error) {
	points := []int{15, 20, 30, 45, 60}
	if cfg.Quick {
		points = []int{15, 30, 60}
	}
	t := &Table{
		ID:      "F8",
		Title:   "Impact of cluster 1's timer on both clusters",
		Headers: []string{"delay_c1_min", "c0_total", "c1_total", "c1_forced"},
	}
	err := sweep(cfg, t, points, func(mins int) ([]Row, error) {
		opts := paperOptions(cfg, 2)
		opts.CLCPeriods = []sim.Duration{30 * sim.Minute, sim.Duration(mins) * sim.Minute}
		res, err := cfg.runFed(opts)
		if err != nil {
			return nil, fmt.Errorf("F8 at %d min: %w", mins, err)
		}
		return []Row{{mins, res.Clusters[0].Total(), res.Clusters[1].Total(), res.Clusters[1].Forced}}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"shape: cluster 0's total is insensitive to cluster 1's timer",
		"(few cluster1->cluster0 messages, so few forced CLCs in cluster 0)")
	return t, nil
}

// f9Sweep is the x axis of Figure 9: messages from cluster 1 to 0.
func f9Sweep(cfg Config) []int {
	if cfg.Quick {
		return []int{10, 50, 110}
	}
	return []int{10, 30, 50, 70, 90, 110}
}

func runF9(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "F9",
		Title:   "Increasing communication from cluster 1 to cluster 0",
		Headers: []string{"msgs_c1_to_c0", "c0_total", "c0_forced", "c1_total", "c1_forced"},
	}
	err := sweep(cfg, t, f9Sweep(cfg), func(reverse int) ([]Row, error) {
		opts := paperOptions(cfg, 2)
		wl := app.PaperTable1WithReverse(float64(reverse))
		_, hours := paperScale(cfg)
		wl.TotalTime = hours
		if cfg.Quick {
			wl.StateSize = 256 << 10
		}
		opts.Workload = wl
		opts.CLCPeriods = []sim.Duration{30 * sim.Minute, 30 * sim.Minute}
		res, err := cfg.runFed(opts)
		if err != nil {
			return nil, fmt.Errorf("F9 at %d msgs: %w", reverse, err)
		}
		return []Row{{reverse,
			res.Clusters[0].Total(), res.Clusters[0].Forced,
			res.Clusters[1].Total(), res.Clusters[1].Forced}}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"shape: forced CLCs (especially in cluster 0) grow fast with the",
		"reverse traffic; with chatter in both directions most messages force")
	return t, nil
}

func runT2(cfg Config) (*Table, error) {
	opts := paperOptions(cfg, 2)
	wl := app.PaperTable1WithReverse(103)
	_, hours := paperScale(cfg)
	wl.TotalTime = hours
	if cfg.Quick {
		wl.StateSize = 256 << 10
	}
	opts.Workload = wl
	opts.GCPeriod = 2 * sim.Hour
	if cfg.Quick {
		opts.GCPeriod = 45 * sim.Minute
	}
	res, err := cfg.runFed(opts)
	if err != nil {
		return nil, err
	}
	return gcTable("T2", res, 2)
}

func runT3(cfg Config) (*Table, error) {
	opts := paperOptions(cfg, 3)
	opts.GCPeriod = 2 * sim.Hour
	if cfg.Quick {
		opts.GCPeriod = 45 * sim.Minute
	}
	res, err := cfg.runFed(opts)
	if err != nil {
		return nil, err
	}
	return gcTable("T3", res, 3)
}

func gcTable(id string, res *federation.Result, clusters int) (*Table, error) {
	headers := []string{"gc_at"}
	for c := 0; c < clusters; c++ {
		headers = append(headers,
			fmt.Sprintf("c%d_before", c), fmt.Sprintf("c%d_after", c))
	}
	t := &Table{ID: id, Title: "Stored CLCs around each garbage collection", Headers: headers}
	if len(res.GCRounds) == 0 {
		return nil, fmt.Errorf("%s: no garbage collection rounds recorded", id)
	}
	for _, r := range res.GCRounds {
		cells := []any{r.At.String()}
		for c := 0; c < clusters; c++ {
			cells = append(cells, r.Before[c], r.After[c])
		}
		t.AddRow(cells...)
	}
	t.AddRow(append([]any{"max logged msgs"}, res.MaxLoggedMessages)...)
	t.Notes = append(t.Notes,
		"shape: each collection shrinks every cluster's store to ~2 CLCs;",
		"only the oldest CLCs are removed (rollbacks never get deeper)")
	return t, nil
}
