package experiments

import (
	"runtime"
	"sync"
	"time"

	"repro/internal/federation"
)

// RunnerConfig drives a registry or matrix run through a bounded worker
// pool. Every federation is an isolated single-threaded simulation (its
// own sim.Engine, sim.Stats and RNG streams), so sweep points and whole
// experiments fan out across goroutines without sharing state; results
// are collected back into input order, making parallel output
// byte-identical to a sequential run of the same seed.
type RunnerConfig struct {
	// Workers bounds the number of concurrently executing federations
	// at each level (experiments across the registry, sweep points
	// inside one experiment). <= 1 runs strictly sequentially; 0 is
	// treated as 1. DefaultWorkers picks a machine-sized value.
	Workers int
	// Seed drives all randomness, exactly as Config.Seed.
	Seed uint64
	// Quick selects the reduced scale, exactly as Config.Quick.
	Quick bool
	// DenseWire selects the dense DDV wire encoding, exactly as
	// Config.DenseWire.
	DenseWire bool
	// UnbatchedWire selects per-message delivery events, exactly as
	// Config.UnbatchedWire.
	UnbatchedWire bool
	// Oracle attaches the protocol invariant checker to every run,
	// exactly as Config.Oracle.
	Oracle bool
	// ChaosSeed/ChaosSeeds drive the chaos tier, exactly as
	// Config.ChaosSeed/Config.ChaosSeeds.
	ChaosSeed  uint64
	ChaosSeeds int
	// ChaosOps caps every chaos schedule at its first N perturbation
	// actions, exactly as Config.ChaosOps.
	ChaosOps int
	// TraceFile selects a custom trace-tier link schedule, exactly as
	// Config.TraceFile.
	TraceFile string
	// RunTimeout arms the per-federation wall-clock watchdog, exactly
	// as Config.RunTimeout.
	RunTimeout time.Duration
	// Shards runs every federation across this many conservative-window
	// engines, exactly as Config.Shards.
	Shards int
}

// DefaultWorkers returns a reasonable pool size: one worker per CPU.
func DefaultWorkers() int { return runtime.NumCPU() }

func (rc RunnerConfig) workers() int {
	if rc.Workers < 1 {
		return 1
	}
	return rc.Workers
}

// config converts the runner configuration into the per-experiment
// Config. With more than one worker it attaches a shared semaphore
// sized to Workers: every federation execution — whichever experiment
// or sweep point launches it — holds one token, so Workers bounds the
// number of concurrently simulated federations globally rather than
// per level.
func (rc RunnerConfig) config() Config {
	cfg := Config{Seed: rc.Seed, Quick: rc.Quick, Workers: rc.workers(), DenseWire: rc.DenseWire,
		UnbatchedWire: rc.UnbatchedWire, Oracle: rc.Oracle, ChaosSeed: rc.ChaosSeed,
		ChaosSeeds: rc.ChaosSeeds, ChaosOps: rc.ChaosOps, TraceFile: rc.TraceFile,
		RunTimeout: rc.RunTimeout, Shards: rc.Shards}
	if cfg.Workers > 1 {
		cfg.sem = make(chan struct{}, cfg.Workers)
	}
	// One scratch arena per runner invocation: each worker's successive
	// federation runs reuse the engine buffers of the run before it.
	cfg.arena = federation.NewArena()
	return cfg
}

// RunResult pairs one experiment's rendered table with its error, so a
// registry run can report partial failures without losing the rest.
type RunResult struct {
	ID    string
	Table *Table
	Err   error
}

// Run executes the experiments with the given IDs (all registered ones
// when ids is nil) through the worker pool and returns one RunResult
// per requested ID, in request order. Unknown IDs yield an error entry
// rather than aborting the batch.
func Run(rc RunnerConfig, ids []string) []RunResult {
	if ids == nil {
		ids = IDs()
	}
	cfg := rc.config()
	// With the shared semaphore bounding federation executions, every
	// experiment can be in flight at once — its simulations queue on
	// the semaphore. One worker means strictly sequential.
	outer := len(ids)
	if rc.workers() <= 1 {
		outer = 1
	}
	out := make([]RunResult, len(ids))
	forEach(outer, len(ids), func(i int) error {
		out[i].ID = ids[i]
		e, ok := ByID(ids[i])
		if !ok {
			out[i].Err = &UnknownExperimentError{ID: ids[i]}
			return nil
		}
		out[i].Table, out[i].Err = e.Run(cfg)
		return nil
	})
	return out
}

// UnknownExperimentError reports a request for an unregistered ID.
type UnknownExperimentError struct{ ID string }

func (e *UnknownExperimentError) Error() string {
	return "experiments: unknown experiment " + e.ID
}

// forEach runs fn(0..n-1) on up to workers goroutines and returns the
// lowest-index error, if any. With workers <= 1 it degenerates to a
// plain loop, keeping the sequential path trivially identical.
func forEach(workers, n int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Row is the cell list of one table row, as Table.AddRow accepts it.
type Row []any

// sweep executes one experiment's sweep points concurrently and
// appends each point's rows to t in point order, so the rendered table
// is independent of execution interleaving. With a shared semaphore
// (registry runs) every point may start — its federation queues on the
// semaphore; otherwise cfg.Workers bounds the local pool.
func sweep[P any](cfg Config, t *Table, points []P, run func(P) ([]Row, error)) error {
	workers := cfg.workers()
	if cfg.sem != nil {
		workers = len(points)
	}
	out := make([][]Row, len(points))
	err := forEach(workers, len(points), func(i int) error {
		rows, err := run(points[i])
		out[i] = rows
		return err
	})
	if err != nil {
		return err
	}
	for _, rows := range out {
		for _, r := range rows {
			t.AddRow(r...)
		}
	}
	return nil
}
