package experiments

import "testing"

// TestManySeedsRecoveryExperiments sweeps the failure-heavy experiments
// across many seeds: every crash/rollback/recovery alignment must
// satisfy the harness invariants (no lost messages, SN agreement,
// recovered nodes). This is the regression net for the timing races
// found during development (resends overtaking rollback commands,
// mid-recovery deliveries, same-cluster double faults).
func TestManySeedsRecoveryExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep skipped in -short mode")
	}
	for _, id := range []string{"A4", "A6"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("experiment %s missing", id)
		}
		for seed := uint64(1); seed <= 25; seed++ {
			if _, err := e.Run(Config{Seed: seed, Quick: true}); err != nil {
				t.Errorf("%s seed %d: %v", id, seed, err)
			}
		}
	}
}
