// Package experiments defines one runnable experiment per table and
// figure of the paper's evaluation (§5), plus the ablations listed in
// DESIGN.md. Each experiment builds federations through
// internal/federation, sweeps the parameter the paper sweeps, and
// renders the same rows/series the paper reports. The benchmark
// harness (bench_test.go) and the hc3ibench tool both run this
// registry.
package experiments

import (
	"encoding/csv"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/federation"
)

// Config scales an experiment run.
type Config struct {
	// Seed drives all randomness (runs are deterministic per seed).
	Seed uint64
	// Quick shrinks node counts, durations and sweeps so the whole
	// registry finishes in seconds (tests, smoke runs). Full mode uses
	// the paper's parameters: 100-node clusters and 10-hour runs.
	Quick bool
	// Workers bounds how many of the experiment's sweep points run
	// concurrently. Each point is an isolated federation simulation, so
	// fan-out never changes results: rows are collected in point order
	// and every point derives the same seeds as a sequential run.
	// <= 1 runs sequentially.
	Workers int
	// DenseWire runs every federation with the dense DDV wire encoding
	// instead of the default delta form. Results are identical by
	// construction (the differential suite proves it); the switch
	// exists for those tests and for width-scaling benchmarks.
	DenseWire bool
	// UnbatchedWire runs every federation with per-message delivery
	// events instead of the default batched pipe deliveries
	// (federation.Options.UnbatchedWire). Results are byte-identical by
	// construction (the batching differential suite proves it); the
	// switch exists for those tests.
	UnbatchedWire bool
	// Oracle attaches the online protocol invariant checker
	// (internal/oracle) to every federation run, whatever tier or
	// experiment launches it. Results stay byte-identical; a violated
	// invariant fails the run with a diagnostic instead.
	Oracle bool
	// ChaosSeed overrides the chaos tier's adversarial-schedule seed
	// (0 derives it from Seed). One integer replays one schedule —
	// the seed a failing chaos run reports reproduces it here.
	ChaosSeed uint64
	// ChaosSeeds is how many consecutive chaos schedules each
	// chaos-tier scenario runs (rows aggregate across them; <= 1 runs
	// one).
	ChaosSeeds int
	// ChaosOps caps the adversarial schedule at its first N
	// perturbation actions (chaos.Config.OpBudget): a budgeted run
	// replays exactly that prefix of the unlimited schedule. 0 =
	// unlimited; set by minimized-repro replay commands.
	ChaosOps int
	// TraceFile points trace-tier scenarios at a JSONL link schedule
	// (the netsim.ParseTrace format) instead of the embedded
	// mobile-broadband fixture.
	TraceFile string
	// RunTimeout, when > 0, arms a per-federation wall-clock watchdog
	// (federation.Options.Watchdog): a wedged run is killed and
	// reported as an error wrapping sim.ErrInterrupted instead of
	// stalling its worker.
	RunTimeout time.Duration
	// Shards runs every federation across this many conservative-window
	// event engines (federation.RunSharded). Classic and wide results
	// are byte-identical to the single-engine reference; chaos-tier
	// schedules are deterministic per (seed, shard count) but differ
	// from the sequential schedule. <= 1 keeps the reference path.
	Shards int
	// sem, when non-nil, is the shared federation-run semaphore of a
	// registry-level parallel run (see RunnerConfig): every federation
	// execution acquires one token, so "Workers" bounds the number of
	// concurrently simulated federations globally, not per level.
	sem chan struct{}
	// arena, when non-nil, is the shared scratch pool of a runner-level
	// execution: consecutive federation runs on each worker recycle the
	// previous run's event-engine buffers instead of rebuilding from
	// zero per sweep point (see federation.Arena).
	arena *federation.Arena
}

func (c Config) workers() int {
	if c.Workers < 1 {
		return 1
	}
	return c.Workers
}

// runFed executes one federation under the configuration's concurrency
// budget: with a shared semaphore every simulation holds one token for
// its duration, whatever level of the runner launched it.
func (c Config) runFed(opts federation.Options) (*federation.Result, error) {
	if c.sem != nil {
		c.sem <- struct{}{}
		defer func() { <-c.sem }()
	}
	if opts.Arena == nil {
		opts.Arena = c.arena
	}
	if c.DenseWire {
		opts.DenseWire = true
	}
	if c.UnbatchedWire {
		opts.UnbatchedWire = true
	}
	if c.Oracle {
		opts.Oracle = true
	}
	if c.Shards > 1 {
		opts.Shards = c.Shards
	}
	if c.RunTimeout > 0 {
		opts.Watchdog = c.RunTimeout
	}
	return runFed(opts)
}

// Table is a rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Headers []string
	Rows    [][]string
	// Notes records the expected shape from the paper and any
	// deviation worth flagging.
	Notes []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.1f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (header row first),
// ready for gnuplot/matplotlib to redraw the paper's figures.
func (t *Table) CSV() string {
	var b strings.Builder
	w := csv.NewWriter(&b)
	_ = w.Write(t.Headers)
	for _, r := range t.Rows {
		_ = w.Write(r)
	}
	w.Flush()
	return b.String()
}

// Markdown renders the table as a GitHub-flavoured markdown table with
// the notes underneath — the format EXPERIMENTS.md records.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s — %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Headers, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Headers)) + "\n")
	for _, r := range t.Rows {
		b.WriteString("| " + strings.Join(r, " | ") + " |\n")
	}
	if len(t.Notes) > 0 {
		b.WriteString("\n")
		for _, n := range t.Notes {
			b.WriteString("> " + n + "\n")
		}
	}
	return b.String()
}

// Experiment is one registry entry.
type Experiment struct {
	ID          string
	Title       string
	Description string
	Run         func(cfg Config) (*Table, error)
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("experiments: duplicate id " + e.ID)
	}
	registry[e.ID] = e
}

// All returns every experiment, paper artifacts first, then ablations,
// each group in ID order.
func All() []Experiment {
	var es []Experiment
	for _, e := range registry {
		es = append(es, e)
	}
	sort.Slice(es, func(i, j int) bool {
		gi, gj := es[i].ID[0] == 'A', es[j].ID[0] == 'A'
		if gi != gj {
			return !gi
		}
		return es[i].ID < es[j].ID
	})
	return es
}

// ByID returns one experiment.
func ByID(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// IDs lists all registered experiment IDs in All() order.
func IDs() []string {
	var ids []string
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	return ids
}
