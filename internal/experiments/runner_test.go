package experiments

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/sim"
)

func TestForEachSequentialAndParallel(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		var mu sync.Mutex
		seen := map[int]int{}
		err := forEach(workers, 10, func(i int) error {
			mu.Lock()
			seen[i]++
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(seen) != 10 {
			t.Fatalf("workers=%d: ran %d of 10 tasks", workers, len(seen))
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	err := forEach(4, 8, func(i int) error {
		switch i {
		case 3:
			return errB
		case 1:
			return errA
		}
		return nil
	})
	if err != errA {
		t.Fatalf("got %v, want the error of the lowest index", err)
	}
}

func TestSweepKeepsPointOrder(t *testing.T) {
	cfg := Config{Workers: 8}
	tab := &Table{Headers: []string{"point", "sq"}}
	points := make([]int, 20)
	for i := range points {
		points[i] = i
	}
	err := sweep(cfg, tab, points, func(p int) ([]Row, error) {
		return []Row{{p, p * p}}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range tab.Rows {
		if row[0] != fmt.Sprint(i) {
			t.Fatalf("row %d holds point %s; parallel sweep must keep input order", i, row[0])
		}
	}
}

func TestRunUnknownIDReportsWithoutAborting(t *testing.T) {
	out := Run(RunnerConfig{Workers: 2, Seed: 1, Quick: true}, []string{"nope", "F6"})
	if len(out) != 2 {
		t.Fatalf("got %d results", len(out))
	}
	if out[0].Err == nil {
		t.Fatal("unknown ID must error")
	}
	if out[1].Err != nil || out[1].Table == nil {
		t.Fatalf("valid ID alongside an unknown one must still run: %v", out[1].Err)
	}
}

// TestWorkersShareNoStats runs many federations concurrently and fails
// if any two of them hand back the same sim.Stats registry — the
// isolation property the whole parallel runner rests on. Running it
// under `go test -race` additionally catches any shared mutable state
// inside the simulations themselves.
func TestWorkersShareNoStats(t *testing.T) {
	cfg := Config{Seed: 7, Quick: true}
	scs, err := MatrixScenarios("topology=2c,workload=uniform")
	if err != nil {
		t.Fatal(err)
	}
	type run struct {
		sc    Scenario
		proto string
	}
	var runs []run
	for _, sc := range scs {
		for _, p := range MatrixProtocols {
			runs = append(runs, run{sc, p})
		}
	}
	stats := make([]*sim.Stats, len(runs))
	err = forEach(8, len(runs), func(i int) error {
		res, err := RunScenario(cfg, runs[i].sc, runs[i].proto)
		if err != nil {
			return err
		}
		stats[i] = res.Stats
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[*sim.Stats]int{}
	for i, s := range stats {
		if s == nil {
			t.Fatalf("run %d returned no stats", i)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("runs %d and %d share one sim.Stats registry", prev, i)
		}
		seen[s] = i
	}
}

// TestRegistryParallelDeterminism is the determinism regression test:
// for a fixed seed, the rendered tables of a parallel run must be
// byte-identical to a sequential run, and two repeated parallel runs
// must be byte-identical to each other.
func TestRegistryParallelDeterminism(t *testing.T) {
	ids := []string{"F6", "F8", "A5"}
	render := func(workers int) string {
		var out string
		for _, r := range Run(RunnerConfig{Workers: workers, Seed: 3, Quick: true}, ids) {
			if r.Err != nil {
				t.Fatalf("%s: %v", r.ID, r.Err)
			}
			out += r.Table.Render()
		}
		return out
	}
	seq := render(1)
	par := render(8)
	if seq != par {
		t.Fatalf("parallel output differs from sequential:\n--- sequential\n%s\n--- parallel\n%s", seq, par)
	}
	if again := render(8); again != par {
		t.Fatal("two parallel runs with the same seed differ")
	}
}
