package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// The determinism regression suite: the scenario-matrix CSV output for a
// fixed seed is pinned byte-for-byte in testdata/, one golden file per
// failure pattern (the four patterns exercise disjoint protocol paths:
// quiescent runs, single rollback, simultaneous faults, repeated churn).
// The goldens were recorded from the seed implementation, before the
// allocation-slim engine and the pooled-DDV core landed; any divergence
// means an "optimization" changed simulation behaviour. Run with
// -update-golden to re-record after an intentional semantic change.
//
// The suite runs under `go test -race` in CI, so parallel execution of
// the matrix is also exercised with the race detector watching.

var updateGolden = flag.Bool("update-golden", false,
	"re-record the matrix determinism goldens from the current implementation")

func goldenPath(failure string) string {
	return filepath.Join("testdata", "matrix_golden_"+failure+".csv")
}

// matrixCSV renders the golden slice (2c/uniform/<failure>/lan under all
// four protocols) for the pinned seed with the given worker count.
func matrixCSV(t *testing.T, failure string, workers int) string {
	t.Helper()
	scs, err := MatrixScenarios("topology=2c,workload=uniform,network=lan,failure=" + failure)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := RunMatrix(RunnerConfig{Workers: workers, Seed: 11, Quick: true}, scs)
	if err != nil {
		t.Fatal(err)
	}
	return tab.CSV()
}

// TestMatrixCSVMatchesSeedGolden asserts byte-identical matrix CSV
// output against the pre-refactor recordings, for at least one scenario
// per failure pattern, both sequentially and through the worker pool.
func TestMatrixCSVMatchesSeedGolden(t *testing.T) {
	for _, failure := range MatrixFailures {
		failure := failure
		t.Run(failure, func(t *testing.T) {
			seq := matrixCSV(t, failure, 1)
			if *updateGolden {
				if err := os.WriteFile(goldenPath(failure), []byte(seq), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(goldenPath(failure))
			if err != nil {
				t.Fatalf("missing golden (run with -update-golden once): %v", err)
			}
			if seq != string(want) {
				t.Errorf("sequential matrix CSV diverged from the seed recording:\n--- got\n%s--- want\n%s", seq, want)
			}
			par := matrixCSV(t, failure, 8)
			if par != string(want) {
				t.Errorf("parallel matrix CSV diverged from the seed recording:\n--- got\n%s--- want\n%s", par, want)
			}
		})
	}
}
