package experiments

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
)

// TestChaosRunBudgetIdentity: capping the schedule at exactly the op
// count the unlimited run applied must change nothing — the budget is
// a true prefix, so budget == len(schedule) is the whole schedule.
// Budgets beyond it are equally inert.
func TestChaosRunBudgetIdentity(t *testing.T) {
	sc := Scenario{Topology: "4c", Workload: "uniform", Failure: "storm", Network: "jitter"}
	base := ChaosRun{Scenario: sc, Seed: 77, Quick: true}
	full := base.Run()
	if full.Err != nil {
		t.Fatal(full.Err)
	}
	if full.Ops == 0 {
		t.Fatal("unlimited chaos run applied no perturbations; nothing to budget")
	}
	for _, budget := range []int{full.Ops, full.Ops + 1000} {
		capped := base
		capped.OpBudget = budget
		got := capped.Run()
		if got.Err != nil {
			t.Fatalf("budget %d: %v", budget, got.Err)
		}
		if got.Ops != full.Ops {
			t.Fatalf("budget %d applied %d ops, unlimited applied %d", budget, got.Ops, full.Ops)
		}
		if got.Result.Events != full.Result.Events {
			t.Fatalf("budget %d diverged: %d vs %d events", budget, got.Result.Events, full.Result.Events)
		}
		if d1, d2 := got.Result.Stats.Dump(), full.Result.Stats.Dump(); d1 != d2 {
			t.Errorf("budget %d diverged in stats:\n--- budgeted\n%s\n--- unlimited\n%s", budget, d1, d2)
		}
	}
	// A tight budget must actually truncate (the run stays clean — the
	// protocol tolerates any legal schedule — but applies fewer ops).
	capped := base
	capped.OpBudget = full.Ops / 2
	got := capped.Run()
	if got.Err != nil {
		t.Fatal(got.Err)
	}
	if got.Ops != full.Ops/2 {
		t.Fatalf("budget %d applied %d ops", full.Ops/2, got.Ops)
	}
}

// TestRunTimeoutWatchdog: a wall-clock timeout no simulation can meet
// kills the run with an error wrapping sim.ErrInterrupted, classified
// as "watchdog" — instead of hanging its worker.
func TestRunTimeoutWatchdog(t *testing.T) {
	// Full scale: the run takes long enough that the 1ns timer always
	// fires mid-simulation (a quick run can finish before the watchdog
	// goroutine is even scheduled).
	sc := Scenario{Topology: "4c", Workload: "uniform", Failure: "storm", Network: "jitter"}
	run := ChaosRun{Scenario: sc, Seed: 3, Timeout: time.Nanosecond}
	out := run.Run()
	if out.Err == nil {
		t.Fatal("1ns watchdog let the run finish")
	}
	if !errors.Is(out.Err, sim.ErrInterrupted) {
		t.Fatalf("watchdog kill does not wrap sim.ErrInterrupted: %v", out.Err)
	}
	if got := CheckName(out.Err); got != "watchdog" {
		t.Fatalf("CheckName(%v) = %q, want watchdog", out.Err, got)
	}
}

// TestChaosFailureShape: a failing sweep seed surfaces as *ChaosFailure
// with the seed, the check name and a paste-ready replay command, while
// the error text keeps the oracle diagnostic older tooling greps for.
func TestChaosFailureShape(t *testing.T) {
	core.Mutate.AcceptStaleEpoch = true
	defer func() { core.Mutate = core.MutationFlags{} }()
	sc := Scenario{Topology: "4c", Workload: "uniform", Failure: "storm", Network: "jitter"}
	for seed := uint64(1); seed <= 40; seed++ {
		cfg := Config{Seed: seed, Quick: true, ChaosSeed: seed}
		_, err := RunChaosScenario(cfg, sc, "hc3i")
		if err == nil {
			continue
		}
		var cf *ChaosFailure
		if !errors.As(err, &cf) {
			t.Fatalf("chaos failure is not a *ChaosFailure: %v", err)
		}
		if cf.Seed != seed {
			t.Fatalf("failure names seed %d, sweep ran seed %d", cf.Seed, seed)
		}
		if !strings.Contains(err.Error(), fmt.Sprintf("chaos seed %d:", seed)) ||
			!strings.Contains(err.Error(), "oracle:") {
			t.Fatalf("failure text lost the grep-able diagnostic: %v", err)
		}
		if !strings.HasPrefix(cf.Check(), "oracle: ") {
			t.Fatalf("Check() = %q, want an oracle check name", cf.Check())
		}
		cmd := cf.ReplayCommand()
		for _, want := range []string{"-quick", "-matrix", "topology=4c", "workload=uniform",
			"failure=storm", "network=jitter", fmt.Sprintf("-chaos-seed %d", seed)} {
			if !strings.Contains(cmd, want) {
				t.Fatalf("replay command %q misses %q", cmd, want)
			}
		}
		return
	}
	t.Fatal("mutation never failed within 40 seeds (the oracle smoke test expects it to)")
}

// TestCheckName pins the failure classifier the soak ledger and the
// minimizer predicate key on.
func TestCheckName(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{nil, ""},
		{fmt.Errorf("chaos seed 9: oracle: t=1h3m0.2s gc safety: cluster 2 collected CLC 5"), "oracle: gc safety"},
		{fmt.Errorf("oracle: t=4s commit agreement: leaders disagree"), "oracle: commit agreement"},
		{fmt.Errorf("wrapped: %w", fmt.Errorf("federation: watchdog: run exceeded 1ns wall clock: %w", sim.ErrInterrupted)), "watchdog"},
		{fmt.Errorf("federation: 3 rollback targets missing (GC unsafe)"), "federation invariant"},
		{fmt.Errorf("something else entirely"), "error"},
	}
	for _, tc := range cases {
		if got := CheckName(tc.err); got != tc.want {
			t.Errorf("CheckName(%v) = %q, want %q", tc.err, got, tc.want)
		}
	}
}

// TestParseSeedBudget pins the accepted forms and the parse-time
// validation of the CHAOS_SEED_BUDGET override.
func TestParseSeedBudget(t *testing.T) {
	good := map[string]int{
		"1":      1,
		"250":    250,
		"5_000":  5000,
		"5k":     5000,
		"5K":     5000,
		"2M":     2_000_000,
		" 250 ":  250,
		"1_2_3":  123,
		"10_00k": 1_000_000,
	}
	for in, want := range good {
		n, err := ParseSeedBudget(in)
		if err != nil || n != want {
			t.Errorf("ParseSeedBudget(%q) = %d, %v; want %d", in, n, err, want)
		}
	}
	for _, in := range []string{"", "0", "-3", "abc", "1.5", "k", "0k", "10x", "1e6"} {
		n, err := ParseSeedBudget(in)
		if err == nil {
			t.Errorf("ParseSeedBudget(%q) = %d, want error", in, n)
			continue
		}
		for _, form := range []string{"250", "5_000", "5k"} {
			if !strings.Contains(err.Error(), form) {
				t.Errorf("ParseSeedBudget(%q) error does not show accepted form %q: %v", in, form, err)
			}
		}
	}

	t.Setenv("CHAOS_SEED_BUDGET", "")
	if n, err := ChaosSeedBudget(42); err != nil || n != 42 {
		t.Errorf("unset env: got %d, %v; want fallback 42", n, err)
	}
	t.Setenv("CHAOS_SEED_BUDGET", "3k")
	if n, err := ChaosSeedBudget(42); err != nil || n != 3000 {
		t.Errorf("env 3k: got %d, %v; want 3000", n, err)
	}
	t.Setenv("CHAOS_SEED_BUDGET", "zero")
	if _, err := ChaosSeedBudget(42); err == nil || !strings.Contains(err.Error(), "CHAOS_SEED_BUDGET") {
		t.Errorf("bad env value must name the variable: %v", err)
	}
}
