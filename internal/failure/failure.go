// Package failure injects fail-stop node crashes into a simulated
// federation (§2.1 failure assumptions: fail-stop, one fault at a
// time) and models the failure detector, which the paper deliberately
// leaves out of scope (§3.4).
package failure

import (
	"repro/internal/sim"
	"repro/internal/topology"
)

// Hooks are the harness actions the injector drives.
type Hooks struct {
	// Crash makes the node fail-stop (cut traffic, stop the protocol).
	Crash func(topology.NodeID)
	// Detect fires after the detection delay: the node is repaired
	// (restarted empty) and a surviving node of its cluster is told to
	// coordinate the rollback.
	Detect func(topology.NodeID)
}

// Injector schedules crashes. Two modes compose freely: explicit
// crashes at fixed times (experiments), and a Poisson process with the
// federation MTBF from the topology file.
type Injector struct {
	engine *sim.Engine
	fed    *topology.Federation
	rng    *sim.RNG
	hooks  Hooks

	// DetectionDelay is the time between a crash and its detection.
	DetectionDelay sim.Duration
	// Quiet is the minimum spacing inserted after a detection before
	// the next MTBF-driven crash ("only one fault occurs at a time").
	Quiet sim.Duration

	// Crashes counts injected failures.
	Crashes uint64
	open    bool
}

// NewInjector builds an injector; call EnableMTBF and/or CrashAt.
func NewInjector(e *sim.Engine, fed *topology.Federation, rng *sim.RNG, hooks Hooks) *Injector {
	return &Injector{
		engine:         e,
		fed:            fed,
		rng:            rng,
		hooks:          hooks,
		DetectionDelay: 2 * sim.Second,
		Quiet:          5 * sim.Minute,
	}
}

// CrashAt schedules an explicit crash of node id at absolute time t.
func (in *Injector) CrashAt(t sim.Time, id topology.NodeID) {
	in.engine.ScheduleAt(t, func(*sim.Engine) { in.crash(id) })
}

// EnableMTBF starts the Poisson crash process using the federation's
// MTBF (no-op when the MTBF is zero or Forever).
func (in *Injector) EnableMTBF() {
	if in.fed.MTBF <= 0 || in.fed.MTBF >= sim.Forever {
		return
	}
	in.scheduleNext(in.rng.Exp(in.fed.MTBF))
}

func (in *Injector) scheduleNext(d sim.Duration) {
	if d >= sim.Forever {
		return
	}
	in.engine.Schedule(d, func(*sim.Engine) {
		if in.open {
			// A failure is still being handled: respect the
			// one-fault-at-a-time assumption and retry later.
			in.scheduleNext(in.Quiet)
			return
		}
		in.crash(in.randomNode())
		in.scheduleNext(in.rng.Exp(in.fed.MTBF))
	})
}

func (in *Injector) randomNode() topology.NodeID {
	all := in.fed.AllNodes()
	return all[in.rng.Intn(len(all))]
}

func (in *Injector) crash(id topology.NodeID) {
	in.Crashes++
	in.open = true
	in.hooks.Crash(id)
	in.engine.Schedule(in.DetectionDelay, func(*sim.Engine) {
		in.open = false
		in.hooks.Detect(id)
	})
}
