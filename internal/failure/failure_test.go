package failure

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

func TestExplicitCrashAndDetection(t *testing.T) {
	e := sim.NewEngine()
	fed := topology.Small(1, 3)
	var crashed, detected []topology.NodeID
	var crashAt, detectAt sim.Time
	in := NewInjector(e, fed, sim.NewRNG(1), Hooks{
		Crash:  func(id topology.NodeID) { crashed = append(crashed, id); crashAt = e.Now() },
		Detect: func(id topology.NodeID) { detected = append(detected, id); detectAt = e.Now() },
	})
	in.DetectionDelay = 3 * sim.Second
	victim := topology.NodeID{Cluster: 0, Index: 1}
	in.CrashAt(sim.Time(10*sim.Second), victim)
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(crashed) != 1 || crashed[0] != victim {
		t.Fatalf("crashed = %v", crashed)
	}
	if len(detected) != 1 || detected[0] != victim {
		t.Fatalf("detected = %v", detected)
	}
	if crashAt != sim.Time(10*sim.Second) || detectAt != sim.Time(13*sim.Second) {
		t.Fatalf("times: crash %v detect %v", crashAt, detectAt)
	}
	if in.Crashes != 1 {
		t.Fatalf("Crashes = %d", in.Crashes)
	}
}

func TestMTBFProcessRespectsRate(t *testing.T) {
	e := sim.NewEngine()
	fed := topology.Small(2, 2)
	fed.MTBF = 30 * sim.Minute
	count := 0
	in := NewInjector(e, fed, sim.NewRNG(5), Hooks{
		Crash:  func(topology.NodeID) { count++ },
		Detect: func(topology.NodeID) {},
	})
	in.EnableMTBF()
	if _, err := e.Run(sim.Time(20 * sim.Hour)); err != nil {
		t.Fatal(err)
	}
	e.Stop()
	// ~40 failures expected over 20h at a 30-minute MTBF.
	if count < 20 || count > 70 {
		t.Fatalf("MTBF crashes over 20h = %d, want ~40", count)
	}
}

func TestMTBFDisabledWhenZero(t *testing.T) {
	e := sim.NewEngine()
	fed := topology.Small(1, 2) // MTBF zero
	in := NewInjector(e, fed, sim.NewRNG(3), Hooks{
		Crash:  func(topology.NodeID) { t.Fatal("crash without MTBF") },
		Detect: func(topology.NodeID) {},
	})
	in.EnableMTBF()
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
}

func TestOneFaultAtATime(t *testing.T) {
	e := sim.NewEngine()
	fed := topology.Small(1, 4)
	fed.MTBF = sim.Second // pathologically frequent
	open := 0
	maxOpen := 0
	in := NewInjector(e, fed, sim.NewRNG(7), Hooks{
		Crash: func(topology.NodeID) {
			open++
			if open > maxOpen {
				maxOpen = open
			}
		},
		Detect: func(topology.NodeID) { open-- },
	})
	in.DetectionDelay = 5 * sim.Second
	in.Quiet = 2 * sim.Second
	in.EnableMTBF()
	if _, err := e.Run(sim.Time(5 * sim.Minute)); err != nil {
		t.Fatal(err)
	}
	if maxOpen > 1 {
		t.Fatalf("overlapping failures: %d", maxOpen)
	}
	if in.Crashes == 0 {
		t.Fatal("no crashes at 1s MTBF")
	}
}
