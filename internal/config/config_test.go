package config

import (
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

const topoText = `
# the §5.2 evaluation topology
clusters = 2
mtbf = 5h

[cluster 0]
name = simulation
nodes = 100
latency = 10us
bandwidth = 80Mbps

[cluster 1]
name = trace-processor
nodes = 100
latency = 10us
bandwidth = 80Mbps

[link 0 1]
latency = 150us
bandwidth = 100Mbps
`

const appText = `
total = 10h
msgsize = 4KB
statesize = 4MB
compute = 2s
deterministic = true

[rates]
0 = 292 14.5
1 = 1.1 249.7
`

const timersText = `
gc = 2h
detection = 2s

[clc]
0 = 30m
1 = forever
`

func TestParseBasics(t *testing.T) {
	f, err := Parse(strings.NewReader("a = 1\n[sec x y]\nb = two # comment\n"))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := f.Top().Get("a"); v != "1" {
		t.Fatalf("a = %q", v)
	}
	secs := f.Find("sec")
	if len(secs) != 1 || len(secs[0].Args) != 2 {
		t.Fatalf("sections = %+v", secs)
	}
	if v, _ := secs[0].Get("b"); v != "two" {
		t.Fatalf("b = %q", v)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"unterminated": "[sec\n",
		"empty header": "[]\n",
		"no equals":    "justaword\n",
		"empty key":    "= 3\n",
		"duplicate":    "a = 1\na = 2\n",
	}
	for name, text := range cases {
		if _, err := Parse(strings.NewReader(text)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestLoadTopology(t *testing.T) {
	fed, err := LoadTopology(strings.NewReader(topoText))
	if err != nil {
		t.Fatal(err)
	}
	if fed.NumClusters() != 2 || fed.NumNodes() != 200 {
		t.Fatalf("federation: %d clusters %d nodes", fed.NumClusters(), fed.NumNodes())
	}
	if fed.Clusters[0].Name != "simulation" {
		t.Fatalf("name = %q", fed.Clusters[0].Name)
	}
	san := fed.Clusters[0].Intra
	if san.Latency != 10*sim.Microsecond || san.Bandwidth != 80e6 {
		t.Fatalf("SAN = %+v", san)
	}
	wan := fed.InterLink(0, 1)
	if wan.Latency != 150*sim.Microsecond || wan.Bandwidth != 100e6 {
		t.Fatalf("WAN = %+v", wan)
	}
	if fed.MTBF != 5*sim.Hour {
		t.Fatalf("MTBF = %v", fed.MTBF)
	}
}

func TestLoadTopologyErrors(t *testing.T) {
	cases := map[string]string{
		"no clusters":   "clusters = 0\n",
		"missing block": "clusters = 2\n[cluster 0]\nnodes = 1\n",
		"bad index":     "clusters = 1\n[cluster 5]\nnodes = 1\n",
		"dup cluster":   "clusters = 1\n[cluster 0]\nnodes=1\n[cluster 0]\nnodes=1\n",
		"self link":     "clusters = 1\n[cluster 0]\nnodes=1\n[link 0 0]\n",
		"bad bandwidth": "clusters = 1\n[cluster 0]\nnodes=1\nbandwidth = fast\n",
	}
	for name, text := range cases {
		if _, err := LoadTopology(strings.NewReader(text)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestLoadWorkload(t *testing.T) {
	wl, err := LoadWorkload(strings.NewReader(appText), 2)
	if err != nil {
		t.Fatal(err)
	}
	if wl.TotalTime != 10*sim.Hour {
		t.Fatalf("total = %v", wl.TotalTime)
	}
	if wl.MsgSize != 4096 || wl.StateSize != 4<<20 {
		t.Fatalf("sizes = %d %d", wl.MsgSize, wl.StateSize)
	}
	if wl.RatesPerHour[0][0] != 292 || wl.RatesPerHour[1][0] != 1.1 {
		t.Fatalf("rates = %v", wl.RatesPerHour)
	}
	// Calibration matches Table 1 of the paper.
	if got := wl.ExpectedMessages(0, 0); got != 2920 {
		t.Fatalf("expected c0->c0 = %v", got)
	}
	if !wl.Deterministic {
		t.Fatal("deterministic flag lost")
	}
}

func TestLoadWorkloadErrors(t *testing.T) {
	if _, err := LoadWorkload(strings.NewReader("total = 1h\n"), 2); err == nil {
		t.Error("missing rates accepted")
	}
	bad := "total=1h\n[rates]\n0 = 1 2\n"
	if _, err := LoadWorkload(strings.NewReader(bad), 2); err == nil {
		t.Error("missing rate row accepted")
	}
	bad = "total=1h\n[rates]\n0 = 1\n1 = 1 2\n"
	if _, err := LoadWorkload(strings.NewReader(bad), 2); err == nil {
		t.Error("short rate row accepted")
	}
}

func TestLoadTimers(t *testing.T) {
	tm, err := LoadTimers(strings.NewReader(timersText), 2)
	if err != nil {
		t.Fatal(err)
	}
	if tm.CLCPeriods[0] != 30*sim.Minute {
		t.Fatalf("clc0 = %v", tm.CLCPeriods[0])
	}
	if tm.CLCPeriods[1] != sim.Forever {
		t.Fatalf("clc1 = %v", tm.CLCPeriods[1])
	}
	if tm.GCPeriod != 2*sim.Hour || tm.DetectionDelay != 2*sim.Second {
		t.Fatalf("gc = %v det = %v", tm.GCPeriod, tm.DetectionDelay)
	}
}

func TestLoadTimersDefaults(t *testing.T) {
	tm, err := LoadTimers(strings.NewReader(""), 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range tm.CLCPeriods {
		if d != 30*sim.Minute {
			t.Fatalf("clc%d default = %v", i, d)
		}
	}
	if tm.GCPeriod != sim.Forever {
		t.Fatalf("gc default = %v", tm.GCPeriod)
	}
}

func TestParseBandwidthAndSize(t *testing.T) {
	for in, want := range map[string]float64{
		"80Mbps": 80e6, "1Gbps": 1e9, "500Kbps": 5e5, "1000": 1000, "9bps": 9,
	} {
		got, err := ParseBandwidth(in)
		if err != nil || got != want {
			t.Errorf("ParseBandwidth(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseBandwidth("-3Mbps"); err == nil {
		t.Error("negative bandwidth accepted")
	}
	for in, want := range map[string]int{
		"4MB": 4 << 20, "64KB": 64 << 10, "1GB": 1 << 30, "100": 100, "12B": 12,
	} {
		got, err := ParseSize(in)
		if err != nil || got != want {
			t.Errorf("ParseSize(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSize("huge"); err == nil {
		t.Error("bad size accepted")
	}
}

func TestTopologyRoundTripThroughFederation(t *testing.T) {
	fed, err := LoadTopology(strings.NewReader(topoText))
	if err != nil {
		t.Fatal(err)
	}
	wl, err := LoadWorkload(strings.NewReader(appText), fed.NumClusters())
	if err != nil {
		t.Fatal(err)
	}
	if err := wl.Validate(fed); err != nil {
		t.Fatal(err)
	}
	if fed.LinkBetween(topology.NodeID{Cluster: 0, Index: 0}, topology.NodeID{Cluster: 1, Index: 0}).Latency != 150*sim.Microsecond {
		t.Fatal("inter link wrong after load")
	}
}
