package config

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

// Fuzz targets: the parser and every scalar-value parser must never
// panic and must either succeed or return an error, whatever bytes the
// simulator's three input files contain.

func FuzzParse(f *testing.F) {
	f.Add("clusters = 2\n[cluster 0]\nnodes = 4\n")
	f.Add("# comment only\n")
	f.Add("[a b c]\nk=v\nk2 = v2 # trailing\n")
	f.Add("[unterminated\n")
	f.Add("=nokey\n")
	f.Add("dup=1\ndup=2\n")
	f.Fuzz(func(t *testing.T, input string) {
		file, err := Parse(strings.NewReader(input))
		if err != nil {
			return
		}
		// A successful parse must produce a well-formed structure.
		if len(file.Sections) == 0 {
			t.Fatal("parse succeeded with no sections")
		}
		for _, s := range file.Sections {
			if len(s.Order) != len(s.Keys) {
				t.Fatalf("section %q: %d ordered keys but %d stored", s.Name, len(s.Order), len(s.Keys))
			}
			for _, k := range s.Order {
				if _, ok := s.Keys[k]; !ok {
					t.Fatalf("section %q: ordered key %q missing from map", s.Name, k)
				}
			}
		}
	})
}

func FuzzParseBandwidth(f *testing.F) {
	for _, seed := range []string{"80Mbps", "1Gbps", "12.5kbps", "1e9", "-3Mbps", "Mbps", "", "NaN"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		v, err := ParseBandwidth(input)
		if err == nil && v <= 0 {
			t.Fatalf("ParseBandwidth(%q) accepted non-positive %v", input, v)
		}
	})
}

func FuzzParseSize(f *testing.F) {
	for _, seed := range []string{"4MB", "64KB", "1GB", "0", "123", "-1KB", "kb", "", "9e99GB"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		v, err := ParseSize(input)
		if err == nil && v < 0 {
			t.Fatalf("ParseSize(%q) accepted negative %v", input, v)
		}
	})
}

func FuzzLoadTopology(f *testing.F) {
	f.Add("clusters = 2\n[cluster 0]\nnodes = 4\n[cluster 1]\nnodes = 4\n[link 0 1]\n")
	f.Add("clusters = 1\n[cluster 0]\nnodes = 0\n")
	f.Add("clusters = -3\n")
	f.Fuzz(func(t *testing.T, input string) {
		fed, err := LoadTopology(strings.NewReader(input))
		if err != nil {
			return
		}
		// Whatever loads must satisfy the topology's own validator.
		if err := fed.Validate(); err != nil {
			t.Fatalf("LoadTopology accepted an invalid federation: %v", err)
		}
	})
}

func FuzzLoadWorkload(f *testing.F) {
	f.Add("total = 1h\n[rates]\n0 = 10 1\n1 = 1 10\n", 2)
	f.Add("msgsize = -4\n[rates]\n0 = 1\n", 1)
	f.Fuzz(func(t *testing.T, input string, clusters int) {
		if clusters < 1 || clusters > 16 {
			return
		}
		wl, err := LoadWorkload(strings.NewReader(input), clusters)
		if err != nil {
			return
		}
		if len(wl.RatesPerHour) != clusters {
			t.Fatalf("loaded %d rate rows for %d clusters", len(wl.RatesPerHour), clusters)
		}
	})
}

// TestLoadMalformed is the table-driven companion: one representative
// malformed input per failure class, each of which must be rejected
// with an error (never a panic, never silent acceptance).
func TestLoadMalformed(t *testing.T) {
	topo := func(s string) error {
		_, err := LoadTopology(strings.NewReader(s))
		return err
	}
	wl := func(s string) error {
		_, err := LoadWorkload(strings.NewReader(s), 2)
		return err
	}
	timers := func(s string) error {
		_, err := LoadTimers(strings.NewReader(s), 2)
		return err
	}
	cases := []struct {
		name string
		load func(string) error
		in   string
	}{
		{"topology/no clusters key", topo, "[cluster 0]\nnodes = 2\n"},
		{"topology/zero clusters", topo, "clusters = 0\n"},
		{"topology/negative clusters", topo, "clusters = -1\n"},
		{"topology/cluster index out of range", topo, "clusters = 1\n[cluster 7]\nnodes = 2\n"},
		{"topology/cluster index not a number", topo, "clusters = 1\n[cluster x]\nnodes = 2\n"},
		{"topology/duplicate cluster", topo, "clusters = 1\n[cluster 0]\nnodes = 2\n[cluster 0]\nnodes = 2\n"},
		{"topology/missing cluster", topo, "clusters = 2\n[cluster 0]\nnodes = 2\n"},
		{"topology/bad bandwidth", topo, "clusters = 1\n[cluster 0]\nnodes = 2\nbandwidth = fast\n"},
		{"topology/bad latency", topo, "clusters = 1\n[cluster 0]\nnodes = 2\nlatency = soon\n"},
		{"topology/self link", topo, "clusters = 2\n[cluster 0]\nnodes = 2\n[cluster 1]\nnodes = 2\n[link 0 0]\n"},
		{"topology/link out of range", topo, "clusters = 2\n[cluster 0]\nnodes = 2\n[cluster 1]\nnodes = 2\n[link 0 5]\n"},
		{"workload/no rates section", wl, "total = 1h\n"},
		{"workload/two rates sections", wl, "[rates]\n0 = 1 1\n1 = 1 1\n[rates]\n0 = 1 1\n1 = 1 1\n"},
		{"workload/missing row", wl, "[rates]\n0 = 1 1\n"},
		{"workload/short row", wl, "[rates]\n0 = 1\n1 = 1 1\n"},
		{"workload/bad float", wl, "[rates]\n0 = 1 x\n1 = 1 1\n"},
		{"workload/bad duration", wl, "total = yesterday\n[rates]\n0 = 1 1\n1 = 1 1\n"},
		{"workload/bad size", wl, "msgsize = big\n[rates]\n0 = 1 1\n1 = 1 1\n"},
		{"workload/bad bool", wl, "deterministic = maybe\n[rates]\n0 = 1 1\n1 = 1 1\n"},
		{"timers/bad gc", timers, "gc = never-ish\n"},
		{"timers/bad detection", timers, "detection = x\n"},
		{"timers/clc index out of range", timers, "[clc]\n5 = 30m\n"},
		{"timers/clc index not a number", timers, "[clc]\nzero = 30m\n"},
		{"timers/clc bad duration", timers, "[clc]\n0 = soonish\n"},
	}
	for _, c := range cases {
		if err := c.load(c.in); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

// TestRoundTripMatrixFields loads a config carrying every field the
// scenario-matrix runner consumes (cluster shapes, link classes,
// per-cluster timers, workload rates/sizes/duration/determinism) and
// checks each one lands intact in the loaded structures.
func TestRoundTripMatrixFields(t *testing.T) {
	topoText := `
clusters = 3
mtbf = forever
[cluster 0]
name = sim
nodes = 2
latency = 10us
bandwidth = 80Mbps
[cluster 1]
nodes = 4
[cluster 2]
nodes = 6
[link 0 1]
latency = 20ms
bandwidth = 10Mbps
[link 0 2]
[link 1 2]
`
	fed, err := LoadTopology(strings.NewReader(topoText))
	if err != nil {
		t.Fatal(err)
	}
	if got := []int{fed.Clusters[0].Nodes, fed.Clusters[1].Nodes, fed.Clusters[2].Nodes}; got[0] != 2 || got[1] != 4 || got[2] != 6 {
		t.Fatalf("cluster shapes %v, want [2 4 6]", got)
	}
	if fed.Clusters[0].Name != "sim" || fed.Clusters[1].Name != "cluster1" {
		t.Fatalf("names %q %q", fed.Clusters[0].Name, fed.Clusters[1].Name)
	}
	if l := fed.InterLink(0, 1); l.Latency != 20*sim.Millisecond || l.Bandwidth != 10e6 {
		t.Fatalf("link 0-1 = %+v", l)
	}
	if l := fed.InterLink(0, 2); l.Latency != 150*sim.Microsecond || l.Bandwidth != 100e6 {
		t.Fatalf("link 0-2 defaults = %+v", l)
	}
	if fed.MTBF != 0 {
		t.Fatalf("mtbf forever must disable failures, got %v", fed.MTBF)
	}

	wlText := `
total = 90m
msgsize = 4KB
statesize = 256KB
compute = 2s
deterministic = true
[rates]
0 = 240 24 24
1 = 24 240 24
2 = 24 24 240
`
	wl, err := LoadWorkload(strings.NewReader(wlText), 3)
	if err != nil {
		t.Fatal(err)
	}
	if wl.TotalTime != 90*sim.Minute || wl.MsgSize != 4096 || wl.StateSize != 256<<10 ||
		wl.MeanCompute != 2*sim.Second || !wl.Deterministic {
		t.Fatalf("workload fields wrong: %+v", wl)
	}
	if wl.RatesPerHour[1][0] != 24 || wl.RatesPerHour[2][2] != 240 {
		t.Fatalf("rates wrong: %v", wl.RatesPerHour)
	}
	if err := wl.Validate(fed); err != nil {
		t.Fatal(err)
	}

	timerText := `
gc = 45m
detection = 2s
[clc]
0 = 20m
1 = forever
`
	tm, err := LoadTimers(strings.NewReader(timerText), 3)
	if err != nil {
		t.Fatal(err)
	}
	if tm.GCPeriod != 45*sim.Minute || tm.DetectionDelay != 2*sim.Second {
		t.Fatalf("timers wrong: %+v", tm)
	}
	if tm.CLCPeriods[0] != 20*sim.Minute || tm.CLCPeriods[1] != sim.Forever || tm.CLCPeriods[2] != 30*sim.Minute {
		t.Fatalf("clc periods wrong: %v", tm.CLCPeriods)
	}
}
