package config

import (
	"fmt"
	"io"
	"os"
	"strconv"

	"repro/internal/app"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Timers carries the timers-file values (the paper's third input file).
type Timers struct {
	// CLCPeriods is the per-cluster delay between unforced CLCs.
	CLCPeriods []sim.Duration
	// GCPeriod is the garbage-collection period.
	GCPeriod sim.Duration
	// DetectionDelay is the failure detector latency.
	DetectionDelay sim.Duration
}

// LoadTopology reads a topology file:
//
//	clusters = 2
//	mtbf = forever
//	[cluster 0]
//	name = simulation
//	nodes = 100
//	latency = 10us
//	bandwidth = 80Mbps
//	[link 0 1]
//	latency = 150us
//	bandwidth = 100Mbps
func LoadTopology(r io.Reader) (*topology.Federation, error) {
	f, err := Parse(r)
	if err != nil {
		return nil, err
	}
	top := f.Top()
	nClusters, err := top.Int("clusters", 0)
	if err != nil {
		return nil, err
	}
	if nClusters <= 0 {
		return nil, fmt.Errorf("config: topology needs clusters > 0")
	}
	mtbf, err := top.Duration("mtbf", sim.Forever)
	if err != nil {
		return nil, err
	}

	clusters := make([]topology.Cluster, nClusters)
	seen := make([]bool, nClusters)
	for _, s := range f.Find("cluster") {
		if len(s.Args) != 1 {
			return nil, fmt.Errorf("config: [cluster] needs an index")
		}
		idx, err := strconv.Atoi(s.Args[0])
		if err != nil || idx < 0 || idx >= nClusters {
			return nil, fmt.Errorf("config: bad cluster index %q", s.Args[0])
		}
		if seen[idx] {
			return nil, fmt.Errorf("config: duplicate cluster %d", idx)
		}
		seen[idx] = true
		nodes, err := s.Int("nodes", 0)
		if err != nil {
			return nil, err
		}
		lat, err := s.Duration("latency", 10*sim.Microsecond)
		if err != nil {
			return nil, err
		}
		bw, err := s.Bandwidth("bandwidth", topology.Mbps(80))
		if err != nil {
			return nil, err
		}
		name, _ := s.Get("name")
		if name == "" {
			name = fmt.Sprintf("cluster%d", idx)
		}
		clusters[idx] = topology.Cluster{
			Name:  name,
			Nodes: nodes,
			Intra: topology.Link{Latency: lat, Bandwidth: bw},
		}
	}
	for i, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("config: missing [cluster %d]", i)
		}
	}

	fed := topology.New(clusters...)
	fed.MTBF = mtbf
	if mtbf >= sim.Forever {
		fed.MTBF = 0
	}
	for _, s := range f.Find("link") {
		if len(s.Args) != 2 {
			return nil, fmt.Errorf("config: [link] needs two cluster indices")
		}
		a, err1 := strconv.Atoi(s.Args[0])
		b, err2 := strconv.Atoi(s.Args[1])
		if err1 != nil || err2 != nil || a == b ||
			a < 0 || b < 0 || a >= nClusters || b >= nClusters {
			return nil, fmt.Errorf("config: bad link %v", s.Args)
		}
		lat, err := s.Duration("latency", 150*sim.Microsecond)
		if err != nil {
			return nil, err
		}
		bw, err := s.Bandwidth("bandwidth", topology.Mbps(100))
		if err != nil {
			return nil, err
		}
		fed.SetInterLink(topology.ClusterID(a), topology.ClusterID(b),
			topology.Link{Latency: lat, Bandwidth: bw})
	}
	if err := fed.Validate(); err != nil {
		return nil, err
	}
	return fed, nil
}

// LoadWorkload reads an application file:
//
//	total = 10h
//	msgsize = 4KB
//	statesize = 4MB
//	compute = 2s
//	deterministic = true
//	[rates]
//	0 = 292 14.5
//	1 = 1.1 249.7
//
// Rate rows are messages per hour from the row's cluster to each
// cluster.
func LoadWorkload(r io.Reader, clusters int) (*app.Workload, error) {
	f, err := Parse(r)
	if err != nil {
		return nil, err
	}
	top := f.Top()
	total, err := top.Duration("total", 10*sim.Hour)
	if err != nil {
		return nil, err
	}
	msgSize, err := top.Size("msgsize", 4096)
	if err != nil {
		return nil, err
	}
	stateSize, err := top.Size("statesize", 4<<20)
	if err != nil {
		return nil, err
	}
	compute, err := top.Duration("compute", 2*sim.Second)
	if err != nil {
		return nil, err
	}
	det, err := top.Bool("deterministic", true)
	if err != nil {
		return nil, err
	}

	rates := make([][]float64, clusters)
	sections := f.Find("rates")
	if len(sections) != 1 {
		return nil, fmt.Errorf("config: application file needs exactly one [rates] section")
	}
	for i := range rates {
		row, ok := sections[0].Get(strconv.Itoa(i))
		if !ok {
			return nil, fmt.Errorf("config: [rates] missing row %d", i)
		}
		vals, err := Floats(row)
		if err != nil {
			return nil, err
		}
		if len(vals) != clusters {
			return nil, fmt.Errorf("config: [rates] row %d has %d entries, want %d", i, len(vals), clusters)
		}
		rates[i] = vals
	}
	return &app.Workload{
		TotalTime:     total,
		RatesPerHour:  rates,
		MsgSize:       msgSize,
		StateSize:     stateSize,
		MeanCompute:   compute,
		Deterministic: det,
	}, nil
}

// LoadTimers reads a timers file:
//
//	gc = 2h
//	detection = 2s
//	[clc]
//	0 = 30m
//	1 = forever
func LoadTimers(r io.Reader, clusters int) (*Timers, error) {
	f, err := Parse(r)
	if err != nil {
		return nil, err
	}
	top := f.Top()
	gc, err := top.Duration("gc", sim.Forever)
	if err != nil {
		return nil, err
	}
	det, err := top.Duration("detection", 2*sim.Second)
	if err != nil {
		return nil, err
	}
	t := &Timers{
		CLCPeriods:     make([]sim.Duration, clusters),
		GCPeriod:       gc,
		DetectionDelay: det,
	}
	for i := range t.CLCPeriods {
		t.CLCPeriods[i] = 30 * sim.Minute
	}
	for _, s := range f.Find("clc") {
		for _, key := range s.Order {
			idx, err := strconv.Atoi(key)
			if err != nil || idx < 0 || idx >= clusters {
				return nil, fmt.Errorf("config: [clc] bad cluster index %q", key)
			}
			d, err := sim.ParseDuration(s.Keys[key])
			if err != nil {
				return nil, err
			}
			t.CLCPeriods[idx] = d
		}
	}
	return t, nil
}

// LoadTopologyFile, LoadWorkloadFile and LoadTimersFile are the
// path-based conveniences used by the command-line tools.
func LoadTopologyFile(path string) (*topology.Federation, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	return LoadTopology(fh)
}

// LoadWorkloadFile reads an application file from disk.
func LoadWorkloadFile(path string, clusters int) (*app.Workload, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	return LoadWorkload(fh, clusters)
}

// LoadTimersFile reads a timers file from disk.
func LoadTimersFile(path string, clusters int) (*Timers, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	return LoadTimers(fh, clusters)
}
