// Package config reads the simulator's three input files, mirroring the
// paper's C++SIM simulator configuration (§5.1): a topology file (the
// clusters, the latency/bandwidth matrix and the federation MTBF), an
// application file (computation times, communication patterns, total
// time) and a timers file (delays between CLCs, garbage collection).
//
// The format is line-oriented: `key = value` pairs grouped under
// `[section]` headers, with `#` comments. Durations use Go syntax plus
// the literal "forever"; bandwidths accept Mbps/Gbps/Kbps suffixes;
// sizes accept KB/MB/GB suffixes.
package config

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/sim"
)

// File is a parsed configuration file: ordered sections of key/value
// pairs. The unnamed leading section has an empty name.
type File struct {
	Sections []Section
}

// Section is one `[name arg...]` block.
type Section struct {
	Name string   // first word of the header, lowercased
	Args []string // remaining header words
	Keys map[string]string
	// Order preserves key order for deterministic iteration.
	Order []string
}

// Parse reads a config file.
func Parse(r io.Reader) (*File, error) {
	f := &File{Sections: []Section{{Keys: map[string]string{}}}}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "[") {
			if !strings.HasSuffix(line, "]") {
				return nil, fmt.Errorf("config: line %d: unterminated section header", lineNo)
			}
			words := strings.Fields(line[1 : len(line)-1])
			if len(words) == 0 {
				return nil, fmt.Errorf("config: line %d: empty section header", lineNo)
			}
			f.Sections = append(f.Sections, Section{
				Name: strings.ToLower(words[0]),
				Args: words[1:],
				Keys: map[string]string{},
			})
			continue
		}
		eq := strings.IndexByte(line, '=')
		if eq < 0 {
			return nil, fmt.Errorf("config: line %d: expected key = value", lineNo)
		}
		key := strings.TrimSpace(line[:eq])
		val := strings.TrimSpace(line[eq+1:])
		if key == "" {
			return nil, fmt.Errorf("config: line %d: empty key", lineNo)
		}
		sec := &f.Sections[len(f.Sections)-1]
		if _, dup := sec.Keys[key]; dup {
			return nil, fmt.Errorf("config: line %d: duplicate key %q", lineNo, key)
		}
		sec.Keys[key] = val
		sec.Order = append(sec.Order, key)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	return f, nil
}

// Find returns sections with the given name.
func (f *File) Find(name string) []Section {
	var out []Section
	for _, s := range f.Sections {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

// Top returns the unnamed leading section.
func (f *File) Top() Section { return f.Sections[0] }

// Get returns a key's value and whether it exists.
func (s Section) Get(key string) (string, bool) {
	v, ok := s.Keys[key]
	return v, ok
}

// Duration parses a duration key ("30m", "forever"); missing keys
// return def.
func (s Section) Duration(key string, def sim.Duration) (sim.Duration, error) {
	v, ok := s.Keys[key]
	if !ok {
		return def, nil
	}
	d, err := sim.ParseDuration(v)
	if err != nil {
		return 0, fmt.Errorf("config: key %q: %w", key, err)
	}
	return d, nil
}

// Int parses an integer key; missing keys return def.
func (s Section) Int(key string, def int) (int, error) {
	v, ok := s.Keys[key]
	if !ok {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("config: key %q: %w", key, err)
	}
	return n, nil
}

// Bool parses a boolean key; missing keys return def.
func (s Section) Bool(key string, def bool) (bool, error) {
	v, ok := s.Keys[key]
	if !ok {
		return def, nil
	}
	b, err := strconv.ParseBool(v)
	if err != nil {
		return false, fmt.Errorf("config: key %q: %w", key, err)
	}
	return b, nil
}

// Bandwidth parses a bandwidth key ("80Mbps", "1Gbps", raw bits/s).
func (s Section) Bandwidth(key string, def float64) (float64, error) {
	v, ok := s.Keys[key]
	if !ok {
		return def, nil
	}
	return ParseBandwidth(v)
}

// Size parses a byte-size key ("4MB", "64KB", raw bytes).
func (s Section) Size(key string, def int) (int, error) {
	v, ok := s.Keys[key]
	if !ok {
		return def, nil
	}
	return ParseSize(v)
}

// ParseBandwidth converts "80Mbps"-style strings to bits per second.
func ParseBandwidth(v string) (float64, error) {
	lower := strings.ToLower(strings.TrimSpace(v))
	mult := 1.0
	switch {
	case strings.HasSuffix(lower, "gbps"):
		mult, lower = 1e9, strings.TrimSuffix(lower, "gbps")
	case strings.HasSuffix(lower, "mbps"):
		mult, lower = 1e6, strings.TrimSuffix(lower, "mbps")
	case strings.HasSuffix(lower, "kbps"):
		mult, lower = 1e3, strings.TrimSuffix(lower, "kbps")
	case strings.HasSuffix(lower, "bps"):
		lower = strings.TrimSuffix(lower, "bps")
	}
	x, err := strconv.ParseFloat(strings.TrimSpace(lower), 64)
	if err != nil || !(x > 0) || math.IsInf(x*mult, 0) {
		return 0, fmt.Errorf("config: bad bandwidth %q", v)
	}
	return x * mult, nil
}

// ParseSize converts "4MB"-style strings to bytes.
func ParseSize(v string) (int, error) {
	lower := strings.ToLower(strings.TrimSpace(v))
	mult := 1
	switch {
	case strings.HasSuffix(lower, "gb"):
		mult, lower = 1<<30, strings.TrimSuffix(lower, "gb")
	case strings.HasSuffix(lower, "mb"):
		mult, lower = 1<<20, strings.TrimSuffix(lower, "mb")
	case strings.HasSuffix(lower, "kb"):
		mult, lower = 1<<10, strings.TrimSuffix(lower, "kb")
	case strings.HasSuffix(lower, "b"):
		lower = strings.TrimSuffix(lower, "b")
	}
	x, err := strconv.ParseFloat(strings.TrimSpace(lower), 64)
	if err != nil || !(x >= 0) {
		return 0, fmt.Errorf("config: bad size %q", v)
	}
	bytes := x * float64(mult)
	// Reject sizes an int cannot hold: the float conversion would
	// otherwise wrap to a huge negative count.
	if bytes >= float64(math.MaxInt64) {
		return 0, fmt.Errorf("config: size %q too large", v)
	}
	return int(bytes), nil
}

// Floats parses a whitespace-separated float list.
func Floats(v string) ([]float64, error) {
	fields := strings.Fields(v)
	out := make([]float64, len(fields))
	for i, f := range fields {
		x, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("config: bad float %q", f)
		}
		out[i] = x
	}
	return out, nil
}
