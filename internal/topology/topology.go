// Package topology describes cluster federations: clusters of nodes
// linked by a fast SAN internally and by slower LAN/WAN links between
// clusters, as assumed by the HC3I paper (§2.1 architecture model).
package topology

import (
	"fmt"

	"repro/internal/sim"
)

// ClusterID identifies a cluster within a federation (0-based, dense).
type ClusterID int

// NodeID identifies a node by its cluster and its index inside the
// cluster. The paper's protocol never needs a flat global namespace:
// all addressing is "node i of cluster c".
type NodeID struct {
	Cluster ClusterID
	Index   int
}

// String formats the node as "c<cluster>n<index>".
func (n NodeID) String() string { return fmt.Sprintf("c%dn%d", n.Cluster, n.Index) }

// ParseNodeID parses the canonical "c<cluster>n<index>" form produced
// by NodeID.String — the identifier format of federation config files
// and live-run journals.
func ParseNodeID(s string) (NodeID, error) {
	var c, i int
	n, err := fmt.Sscanf(s, "c%dn%d", &c, &i)
	if err != nil || n != 2 || c < 0 || i < 0 {
		return NodeID{}, fmt.Errorf("topology: bad node id %q (want cXnY)", s)
	}
	if got := (NodeID{Cluster: ClusterID(c), Index: i}).String(); got != s {
		return NodeID{}, fmt.Errorf("topology: bad node id %q (want cXnY)", s)
	}
	return NodeID{Cluster: ClusterID(c), Index: i}, nil
}

// Link models one network class by latency and bandwidth, exactly the
// two parameters the paper's topology file specifies per link, plus an
// optional jitter bound for the high-variance WAN profiles of the
// scenario matrix.
type Link struct {
	Latency   sim.Duration
	Bandwidth float64 // bits per simulated second
	// Jitter is the maximum extra propagation delay added per message,
	// drawn uniformly from [0, Jitter] by the network model. Zero (the
	// paper's configuration) keeps delays deterministic per link.
	Jitter sim.Duration
}

// TransmitTime returns serialization delay for a message of size bytes.
func (l Link) TransmitTime(sizeBytes int) sim.Duration {
	if l.Bandwidth <= 0 {
		return 0
	}
	bits := float64(sizeBytes) * 8
	return sim.Duration(bits / l.Bandwidth * float64(sim.Second))
}

// Delay returns the total one-way delay for a message of size bytes:
// latency plus serialization.
func (l Link) Delay(sizeBytes int) sim.Duration {
	return l.Latency + l.TransmitTime(sizeBytes)
}

// Cluster describes one cluster: a name, a node count and its internal
// SAN link class.
type Cluster struct {
	Name  string
	Nodes int
	Intra Link
}

// Federation is the full architecture model: clusters plus a triangular
// matrix of inter-cluster link classes and the federation MTBF.
type Federation struct {
	Clusters []Cluster
	// inter[i][j] with i < j holds the link class between clusters i
	// and j. Built through SetInterLink, read through InterLink.
	inter [][]Link
	// MTBF is the federation-wide mean time between failures used by
	// the failure injector (0 = no failures).
	MTBF sim.Duration
}

// New returns a federation with the given clusters and no inter-cluster
// links configured yet.
func New(clusters ...Cluster) *Federation {
	f := &Federation{Clusters: clusters}
	n := len(clusters)
	f.inter = make([][]Link, n)
	for i := range f.inter {
		f.inter[i] = make([]Link, n)
	}
	return f
}

// NumClusters returns the number of clusters.
func (f *Federation) NumClusters() int { return len(f.Clusters) }

// NumNodes returns the total number of nodes in the federation.
func (f *Federation) NumNodes() int {
	n := 0
	for _, c := range f.Clusters {
		n += c.Nodes
	}
	return n
}

// SetInterLink sets the link class between two distinct clusters
// (symmetric).
func (f *Federation) SetInterLink(a, b ClusterID, l Link) {
	if a == b {
		panic("topology: SetInterLink with identical clusters")
	}
	f.inter[a][b] = l
	f.inter[b][a] = l
}

// SetAllInterLinks sets the same link class between every pair of
// distinct clusters.
func (f *Federation) SetAllInterLinks(l Link) {
	for i := range f.Clusters {
		for j := range f.Clusters {
			if i != j {
				f.inter[i][j] = l
			}
		}
	}
}

// InterLink returns the link class between two distinct clusters.
func (f *Federation) InterLink(a, b ClusterID) Link {
	if a == b {
		panic("topology: InterLink with identical clusters")
	}
	return f.inter[a][b]
}

// LinkBetween returns the link class used for a message from node a to
// node b: the source cluster's SAN if they share a cluster, the
// inter-cluster link otherwise.
func (f *Federation) LinkBetween(a, b NodeID) Link {
	if a.Cluster == b.Cluster {
		return f.Clusters[a.Cluster].Intra
	}
	return f.InterLink(a.Cluster, b.Cluster)
}

// SameCluster reports whether two nodes are in the same cluster.
func SameCluster(a, b NodeID) bool { return a.Cluster == b.Cluster }

// Nodes returns all node IDs of one cluster, in index order.
func (f *Federation) Nodes(c ClusterID) []NodeID {
	ids := make([]NodeID, f.Clusters[c].Nodes)
	for i := range ids {
		ids[i] = NodeID{Cluster: c, Index: i}
	}
	return ids
}

// AllNodes returns every node ID in the federation, cluster by cluster.
func (f *Federation) AllNodes() []NodeID {
	ids := make([]NodeID, 0, f.NumNodes())
	for c := range f.Clusters {
		ids = append(ids, f.Nodes(ClusterID(c))...)
	}
	return ids
}

// NodeIndex maps NodeIDs onto dense ordinals [0, NumNodes), cluster by
// cluster in index order. Hot paths use it to replace NodeID-keyed maps
// with flat slices: hashing a two-word struct per message turned up as
// a top profile entry in the simulation's delivery loop.
type NodeIndex struct {
	offsets []int
	sizes   []int
	total   int
}

// Index builds the dense ordinal mapping for the federation's current
// cluster layout.
func (f *Federation) Index() NodeIndex {
	off := make([]int, len(f.Clusters))
	sizes := make([]int, len(f.Clusters))
	total := 0
	for i, c := range f.Clusters {
		off[i] = total
		sizes[i] = c.Nodes
		total += c.Nodes
	}
	return NodeIndex{offsets: off, sizes: sizes, total: total}
}

// Ord returns the dense ordinal of a node. An out-of-range ID panics:
// the map lookups this replaces failed loudly on invalid IDs, and a
// silent alias onto another node's slot would corrupt a run instead.
func (ix NodeIndex) Ord(n NodeID) int {
	if n.Index < 0 || n.Index >= ix.sizes[n.Cluster] {
		panic(fmt.Sprintf("topology: node %v outside its cluster", n))
	}
	return ix.offsets[n.Cluster] + n.Index
}

// Len returns the number of nodes covered by the index.
func (ix NodeIndex) Len() int { return ix.total }

// Valid reports whether a node ID addresses an existing node.
func (f *Federation) Valid(n NodeID) bool {
	return n.Cluster >= 0 && int(n.Cluster) < len(f.Clusters) &&
		n.Index >= 0 && n.Index < f.Clusters[n.Cluster].Nodes
}

// Validate checks structural soundness: at least one cluster, every
// cluster non-empty with a usable SAN, and every inter-cluster link
// configured with positive latency/bandwidth.
func (f *Federation) Validate() error {
	if len(f.Clusters) == 0 {
		return fmt.Errorf("topology: federation has no clusters")
	}
	for i, c := range f.Clusters {
		if c.Nodes <= 0 {
			return fmt.Errorf("topology: cluster %d (%s) has %d nodes", i, c.Name, c.Nodes)
		}
		if c.Intra.Bandwidth <= 0 || c.Intra.Latency < 0 {
			return fmt.Errorf("topology: cluster %d (%s) has invalid SAN link %+v", i, c.Name, c.Intra)
		}
	}
	for i := range f.Clusters {
		for j := i + 1; j < len(f.Clusters); j++ {
			l := f.inter[i][j]
			if l.Bandwidth <= 0 || l.Latency < 0 {
				return fmt.Errorf("topology: missing or invalid link between clusters %d and %d: %+v", i, j, l)
			}
		}
	}
	if f.MTBF < 0 {
		return fmt.Errorf("topology: negative MTBF")
	}
	return nil
}
