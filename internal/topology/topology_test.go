package topology

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestLinkDelay(t *testing.T) {
	l := Link{Latency: 100 * sim.Microsecond, Bandwidth: Mbps(8)} // 1 byte/µs
	if got := l.TransmitTime(1000); got != sim.Millisecond {
		t.Fatalf("TransmitTime(1000B@8Mbps) = %v, want 1ms", got)
	}
	if got := l.Delay(1000); got != sim.Millisecond+100*sim.Microsecond {
		t.Fatalf("Delay = %v", got)
	}
	zero := Link{}
	if zero.TransmitTime(100) != 0 {
		t.Fatal("zero-bandwidth link should have zero transmit time")
	}
}

func TestPaperTopologies(t *testing.T) {
	f2 := Paper2Clusters()
	if err := f2.Validate(); err != nil {
		t.Fatal(err)
	}
	if f2.NumClusters() != 2 || f2.NumNodes() != 200 {
		t.Fatalf("2-cluster topology: %d clusters, %d nodes", f2.NumClusters(), f2.NumNodes())
	}
	san := f2.Clusters[0].Intra
	if san.Latency != 10*sim.Microsecond || san.Bandwidth != Mbps(80) {
		t.Fatalf("SAN link = %+v, want Myrinet-like", san)
	}
	wan := f2.InterLink(0, 1)
	if wan.Latency != 150*sim.Microsecond || wan.Bandwidth != Mbps(100) {
		t.Fatalf("inter link = %+v, want Ethernet-like", wan)
	}

	f3 := Paper3Clusters()
	if err := f3.Validate(); err != nil {
		t.Fatal(err)
	}
	if f3.NumClusters() != 3 || f3.NumNodes() != 300 {
		t.Fatalf("3-cluster topology: %d clusters, %d nodes", f3.NumClusters(), f3.NumNodes())
	}
}

func TestLinkBetween(t *testing.T) {
	f := Small(2, 3)
	a := NodeID{Cluster: 0, Index: 0}
	b := NodeID{Cluster: 0, Index: 2}
	c := NodeID{Cluster: 1, Index: 1}
	if !SameCluster(a, b) || SameCluster(a, c) {
		t.Fatal("SameCluster misclassified")
	}
	if got := f.LinkBetween(a, b); got != f.Clusters[0].Intra {
		t.Fatalf("intra link = %+v", got)
	}
	if got := f.LinkBetween(a, c); got != f.InterLink(0, 1) {
		t.Fatalf("inter link = %+v", got)
	}
}

func TestInterLinkSymmetric(t *testing.T) {
	f := New(
		Cluster{Name: "a", Nodes: 1, Intra: MyrinetLike()},
		Cluster{Name: "b", Nodes: 1, Intra: MyrinetLike()},
		Cluster{Name: "c", Nodes: 1, Intra: MyrinetLike()},
	)
	l := WANLike()
	f.SetInterLink(2, 0, l)
	if f.InterLink(0, 2) != l || f.InterLink(2, 0) != l {
		t.Fatal("inter-cluster link not symmetric")
	}
}

func TestNodesEnumeration(t *testing.T) {
	f := Small(3, 4)
	all := f.AllNodes()
	if len(all) != 12 {
		t.Fatalf("AllNodes = %d, want 12", len(all))
	}
	seen := make(map[NodeID]bool)
	for _, n := range all {
		if !f.Valid(n) {
			t.Fatalf("invalid node %v enumerated", n)
		}
		if seen[n] {
			t.Fatalf("duplicate node %v", n)
		}
		seen[n] = true
	}
	if f.Valid(NodeID{Cluster: 3, Index: 0}) || f.Valid(NodeID{Cluster: 0, Index: 4}) {
		t.Fatal("Valid accepted out-of-range node")
	}
	if s := (NodeID{Cluster: 1, Index: 7}).String(); s != "c1n7" {
		t.Fatalf("String = %q", s)
	}
}

func TestValidateRejectsBrokenFederations(t *testing.T) {
	if err := New().Validate(); err == nil {
		t.Error("empty federation accepted")
	}
	f := New(Cluster{Name: "x", Nodes: 0, Intra: MyrinetLike()})
	if err := f.Validate(); err == nil {
		t.Error("zero-node cluster accepted")
	}
	f = New(Cluster{Name: "x", Nodes: 1, Intra: Link{}})
	if err := f.Validate(); err == nil {
		t.Error("zero-bandwidth SAN accepted")
	}
	f = New(
		Cluster{Name: "a", Nodes: 1, Intra: MyrinetLike()},
		Cluster{Name: "b", Nodes: 1, Intra: MyrinetLike()},
	)
	if err := f.Validate(); err == nil {
		t.Error("missing inter-cluster link accepted")
	}
	f.SetAllInterLinks(EthernetLike())
	f.MTBF = -1
	if err := f.Validate(); err == nil {
		t.Error("negative MTBF accepted")
	}
}

// Property: transmission delay is monotone in message size and additive
// with latency for any sane link.
func TestLinkDelayMonotoneProperty(t *testing.T) {
	f := func(lat uint32, bwRaw uint16, s1, s2 uint16) bool {
		bw := Mbps(float64(bwRaw%1000) + 1)
		l := Link{Latency: sim.Duration(lat), Bandwidth: bw}
		a, b := int(s1), int(s2)
		if a > b {
			a, b = b, a
		}
		return l.Delay(a) <= l.Delay(b) && l.Delay(a) >= l.Latency
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
