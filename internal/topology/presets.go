package topology

import "repro/internal/sim"

// Mbps converts megabits per second to the Link bandwidth unit
// (bits per simulated second).
func Mbps(m float64) float64 { return m * 1e6 }

// MyrinetLike is the SAN link class of the paper's evaluation:
// 10 µs latency, 80 Mb/s bandwidth (§5.2).
func MyrinetLike() Link {
	return Link{Latency: 10 * sim.Microsecond, Bandwidth: Mbps(80)}
}

// EthernetLike is the inter-cluster link class of the paper's
// evaluation: 150 µs latency, 100 Mb/s bandwidth (§5.2).
func EthernetLike() Link {
	return Link{Latency: 150 * sim.Microsecond, Bandwidth: Mbps(100)}
}

// WANLike is a higher-latency wide-area link class used by the
// additional experiments (dedicated WAN or Internet links, §2.1).
func WANLike() Link {
	return Link{Latency: 20 * sim.Millisecond, Bandwidth: Mbps(10)}
}

// HighJitterWAN is an Internet-like link class for the scenario
// matrix: WAN latency and bandwidth plus a large uniform jitter bound,
// so inter-cluster delays vary per message (FIFO order is preserved by
// the network model).
func HighJitterWAN() Link {
	return Link{Latency: 20 * sim.Millisecond, Bandwidth: Mbps(10), Jitter: 30 * sim.Millisecond}
}

// Paper2Clusters builds the evaluation topology of §5.2: two clusters of
// 100 nodes with Myrinet-like SANs joined by an Ethernet-like link.
func Paper2Clusters() *Federation {
	f := New(
		Cluster{Name: "cluster0", Nodes: 100, Intra: MyrinetLike()},
		Cluster{Name: "cluster1", Nodes: 100, Intra: MyrinetLike()},
	)
	f.SetAllInterLinks(EthernetLike())
	return f
}

// Paper3Clusters builds the 3-cluster topology of §5.4 (cluster 2 is a
// clone of cluster 1).
func Paper3Clusters() *Federation {
	f := New(
		Cluster{Name: "cluster0", Nodes: 100, Intra: MyrinetLike()},
		Cluster{Name: "cluster1", Nodes: 100, Intra: MyrinetLike()},
		Cluster{Name: "cluster2", Nodes: 100, Intra: MyrinetLike()},
	)
	f.SetAllInterLinks(EthernetLike())
	return f
}

// Small builds a reduced federation (nClusters clusters of nodesPer
// nodes) with the paper's link classes; useful for fast unit and
// integration tests.
func Small(nClusters, nodesPer int) *Federation {
	clusters := make([]Cluster, nClusters)
	for i := range clusters {
		clusters[i] = Cluster{
			Name:  "cluster" + string(rune('0'+i)),
			Nodes: nodesPer,
			Intra: MyrinetLike(),
		}
	}
	f := New(clusters...)
	f.SetAllInterLinks(EthernetLike())
	return f
}
