package soak

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

func sweepOpts(dir string, seeds uint64, units ...Unit) Options {
	return Options{
		Dir:          dir,
		Units:        units,
		SeedsPerUnit: seeds,
		Quick:        true,
		Workers:      4,
		RunTimeout:   time.Minute,
	}
}

// TestSweepCleanAndIdempotent: a full sweep journals every (unit,
// seed) exactly once, passes the ledger audit, and running the same
// sweep again finds nothing left to do.
func TestSweepCleanAndIdempotent(t *testing.T) {
	dir := t.TempDir()
	opts := sweepOpts(dir, 4, unit("2c", "uniform", 1), unit("2c", "bursty", 1))
	var tee bytes.Buffer
	opts.Tee = NewWriterExporter(&tee)
	sum, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Completed != 8 || sum.Remaining != 0 {
		t.Fatalf("summary = %d completed %d remaining, want 8 and 0", sum.Completed, sum.Remaining)
	}
	if sum.Violations+sum.Wedged+sum.Panics != 0 {
		t.Fatalf("clean protocol produced failures: %+v", sum)
	}
	if n := strings.Count(tee.String(), "\n"); n != 8 {
		t.Fatalf("tee exporter saw %d records, want 8", n)
	}
	var r Record
	if err := json.Unmarshal([]byte(strings.SplitN(tee.String(), "\n", 2)[0]), &r); err != nil {
		t.Fatalf("tee output is not JSONL: %v", err)
	}
	if _, err := Verify(dir); err != nil {
		t.Fatalf("ledger audit: %v", err)
	}
	opts.Tee = nil
	again, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if again.Completed != 8 {
		t.Fatalf("idempotent resume saw %d completed, want 8", again.Completed)
	}
	data, err := os.ReadFile(JournalPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(data, []byte("\n")); n != 8 {
		t.Fatalf("journal holds %d records after the no-op resume, want still 8", n)
	}
}

// TestSweepJournalsMinimizedViolations: with a protocol break armed,
// the sweep records violations with the check name and a replay
// command carrying the minimized -chaos-ops prefix, and the ledger
// still audits clean.
func TestSweepJournalsMinimizedViolations(t *testing.T) {
	core.Mutate.AcceptStaleEpoch = true
	defer func() { core.Mutate = core.MutationFlags{} }()
	dir := t.TempDir()
	opts := sweepOpts(dir, 40, unit("4c", "uniform", 1))
	opts.Minimize = true
	sum, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Violations == 0 {
		t.Fatal("armed mutation produced no violations across 40 seeds")
	}
	minimized := false
	for _, f := range sum.Failures {
		if f.Status != StatusViolation {
			continue
		}
		if f.Check == "" || f.Replay == "" {
			t.Fatalf("violation record lacks check/replay: %+v", f)
		}
		if !strings.Contains(f.Replay, "-chaos-seed") {
			t.Fatalf("replay command misses the seed: %q", f.Replay)
		}
		if f.MinOps > 0 {
			minimized = true
			if !strings.Contains(f.Replay, "-chaos-ops") {
				t.Fatalf("minimized record's replay misses -chaos-ops: %q", f.Replay)
			}
		}
	}
	if !minimized {
		t.Fatal("no violation carried a minimized prefix budget")
	}
	if _, err := Verify(dir); err != nil {
		t.Fatalf("ledger audit: %v", err)
	}
}

// TestSweepDrainsOnCancel: cancelling the context stops assignment but
// journals in-flight work; the summary reports the remaining seeds and
// a resume finishes them.
func TestSweepDrainsOnCancel(t *testing.T) {
	dir := t.TempDir()
	opts := sweepOpts(dir, 50, unit("2c", "uniform", 1))
	opts.Workers = 1
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // drain immediately: nothing (or almost nothing) starts
	sum, err := Run(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Remaining == 0 {
		t.Fatal("cancelled sweep claims completion")
	}
	sum2, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if sum2.Completed != 50 || sum2.Remaining != 0 {
		t.Fatalf("resume after drain = %d completed %d remaining, want 50 and 0", sum2.Completed, sum2.Remaining)
	}
	if _, err := Verify(dir); err != nil {
		t.Fatalf("ledger audit: %v", err)
	}
}

// TestSweepSurvivesSIGKILL is the real mid-sweep kill: a child process
// (this test binary re-executed) runs the sweep with DieAfter armed
// and SIGKILLs itself right after journaling the Nth record — between
// checkpoints, with workers in flight. The parent then resumes the
// same state dir and audits the ledger: every pre-kill record kept,
// none double-counted, the sweep completed.
func TestSweepSurvivesSIGKILL(t *testing.T) {
	const target = 30
	if dir := os.Getenv("SOAK_KILL_DIR"); dir != "" {
		// Child: die after 11 records with a checkpoint every 4 — the
		// kill lands with journal records the checkpoint never saw.
		opts := sweepOpts(dir, target, unit("2c", "uniform", 1), unit("2c", "bursty", 1))
		opts.CheckpointEvery = 4
		opts.DieAfter = 11
		_, err := Run(context.Background(), opts)
		// Unreachable when DieAfter fires; reaching here is the failure.
		t.Fatalf("child survived DieAfter: %v", err)
	}

	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=TestSweepSurvivesSIGKILL$", "-test.v")
	cmd.Env = append(os.Environ(), "SOAK_KILL_DIR="+dir)
	out, err := cmd.CombinedOutput()
	var xerr *exec.ExitError
	if !errors.As(err, &xerr) || xerr.ExitCode() != -1 {
		t.Fatalf("child did not die by signal (err=%v):\n%s", err, out)
	}
	data, err := os.ReadFile(JournalPath(dir))
	if err != nil {
		t.Fatalf("killed child left no journal: %v", err)
	}
	preKill := bytes.Count(data, []byte("\n"))
	if preKill != 11 {
		t.Fatalf("journal holds %d records at the kill point, want exactly 11 (DieAfter)", preKill)
	}

	// Resume and finish.
	opts := sweepOpts(dir, target, unit("2c", "uniform", 1), unit("2c", "bursty", 1))
	sum, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Completed != 2*target || sum.Remaining != 0 {
		t.Fatalf("resumed sweep = %d completed %d remaining, want %d and 0", sum.Completed, sum.Remaining, 2*target)
	}
	if _, err := Verify(dir); err != nil {
		t.Fatalf("exactly-once audit after SIGKILL: %v", err)
	}
	// Every pre-kill record survived verbatim at the head of the journal.
	after, err := os.ReadFile(JournalPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(after, data) {
		t.Fatal("resume rewrote the pre-kill journal prefix")
	}
	seen := map[string]bool{}
	for _, line := range bytes.Split(bytes.TrimRight(after, "\n"), []byte("\n")) {
		var r Record
		if err := json.Unmarshal(line, &r); err != nil {
			t.Fatalf("journal line unparseable after resume: %v", err)
		}
		if seen[r.Key()] {
			t.Fatalf("slot %s journaled twice", r.Key())
		}
		seen[r.Key()] = true
	}
	if len(seen) != 2*target {
		t.Fatalf("journal covers %d slots, want %d", len(seen), 2*target)
	}
}
