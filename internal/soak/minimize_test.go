package soak

import (
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
)

// TestMinimizeShrinksMutationFailure: with a seeded protocol break
// armed (core.Mutate), the sweep finds failing schedules within a
// bounded seed budget — and the minimizer must shrink at least one of
// them to a strictly shorter reproducing prefix: replaying with
// -chaos-ops <min> still violates the same check, using fewer
// perturbation actions than the original failing run applied.
func TestMinimizeShrinksMutationFailure(t *testing.T) {
	core.Mutate.AcceptStaleEpoch = true
	defer func() { core.Mutate = core.MutationFlags{} }()
	sc := experiments.Scenario{Topology: "4c", Workload: "uniform", Failure: "storm", Network: "jitter"}
	failures, shrunk := 0, 0
	for seed := uint64(1); seed <= 40; seed++ {
		run := experiments.ChaosRun{Scenario: sc, Seed: seed, Quick: true}
		out := run.Run()
		if out.Err == nil {
			continue
		}
		failures++
		min := Minimize(run, out.Err, out.Ops)
		if min.OpBudget == 0 {
			continue // this failure is not budget-reducible
		}
		if min.OpBudget > out.Ops {
			t.Fatalf("seed %d: minimized budget %d exceeds the %d ops the failing run applied",
				seed, min.OpBudget, out.Ops)
		}
		// The minimized budget is a real repro, not an extrapolation.
		short := run
		short.OpBudget = min.OpBudget
		rep := short.Run()
		if rep.Err == nil || experiments.CheckName(rep.Err) != min.Check {
			t.Fatalf("seed %d: minimized budget %d does not reproduce check %q: %v",
				seed, min.OpBudget, min.Check, rep.Err)
		}
		if min.OpBudget < out.Ops {
			shrunk++
			t.Logf("seed %d: %d ops -> %d (%d probes, check %q)",
				seed, out.Ops, min.OpBudget, min.Probes, min.Check)
		}
		if failures >= 3 && shrunk >= 1 {
			break // enough evidence; keep the suite fast
		}
	}
	if failures == 0 {
		t.Fatal("mutation never failed within 40 seeds; the sweep is not adversarial enough")
	}
	if shrunk == 0 {
		t.Fatalf("no failing schedule (of %d) shrank to a strictly shorter prefix", failures)
	}
}
