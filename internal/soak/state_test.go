package soak

import (
	"os"
	"reflect"
	"testing"

	"repro/internal/experiments"
)

func unit(topo, wl string, shards int) Unit {
	return Unit{
		Scenario: experiments.Scenario{Topology: topo, Workload: wl, Failure: "storm", Network: "jitter"},
		Shards:   shards,
	}
}

func rec(u Unit, seed uint64, status string) Record {
	r := Record{Scenario: u.Scenario.Name(), Protocol: u.protocol(), Seed: seed, Status: status}
	if s := u.shards(); s > 1 {
		r.Shards = s
	}
	return r
}

// TestCursorNormalization: out-of-order completions accumulate as
// extras and fold back into the contiguous prefix as gaps fill, and a
// repeated completion never advances the cursor twice.
func TestCursorNormalization(t *testing.T) {
	c := &Cursor{}
	for _, seed := range []uint64{3, 1, 5, 2} {
		if !c.Complete(seed) {
			t.Fatalf("first completion of seed %d rejected", seed)
		}
	}
	if c.Done != 3 || !reflect.DeepEqual(c.Extras, []uint64{5}) {
		t.Fatalf("cursor = done %d extras %v, want 3 + [5]", c.Done, c.Extras)
	}
	for _, seed := range []uint64{1, 3, 5} {
		if c.Complete(seed) {
			t.Fatalf("seed %d double-counted", seed)
		}
	}
	if !c.Complete(4) {
		t.Fatal("gap seed rejected")
	}
	if c.Done != 5 || c.Extras != nil {
		t.Fatalf("cursor = done %d extras %v, want 5 + none", c.Done, c.Extras)
	}
	if c.CompletedCount() != 5 {
		t.Fatalf("CompletedCount = %d, want 5", c.CompletedCount())
	}
}

// TestRecoverAfterTornWrite is the fault-injected kill: the journal
// holds completed records past the checkpoint offset plus a record
// torn mid-write (the moment a kill -9 lands), and the checkpoint lags
// several records behind. Recovery must keep every completed record
// (merged, not re-run), drop the torn tail (re-run), and never count
// anything twice.
func TestRecoverAfterTornWrite(t *testing.T) {
	dir := t.TempDir()
	units := []Unit{unit("2c", "uniform", 1), unit("2c", "bursty", 1)}
	fp := "test-sweep"

	st, j, err := Recover(dir, fp, units)
	if err != nil {
		t.Fatal(err)
	}
	// Session 1: journal five records, checkpoint after the first three,
	// then two more land past the checkpoint, then a kill tears a sixth
	// mid-line.
	all := []Record{
		rec(units[0], 1, StatusOK),
		rec(units[1], 1, StatusOK),
		rec(units[0], 3, StatusViolation), // out of order: seed 2 in flight
		rec(units[0], 2, StatusOK),
		rec(units[1], 2, StatusWedged),
	}
	for i, r := range all {
		if err := j.Export(r); err != nil {
			t.Fatal(err)
		}
		st.Absorb(r)
		if i == 2 {
			st.JournalBytes = j.Offset()
			if err := SaveState(dir, st); err != nil {
				t.Fatal(err)
			}
		}
	}
	j.Close()
	f, err := os.OpenFile(JournalPath(dir), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"scenario":"2c/uniform/storm/jitter","protocol":"hc3i","seed":4,"sta`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Session 2: recover. The checkpoint knows 3 records; the journal
	// holds 5 complete + 1 torn.
	st2, j2, err := Recover(dir, fp, units)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if st2.Completed != 5 {
		t.Fatalf("recovered %d completed, want all 5 journaled", st2.Completed)
	}
	if st2.Violations != 1 || st2.Wedged != 1 {
		t.Fatalf("ledger = %d violations %d wedged, want 1 and 1", st2.Violations, st2.Wedged)
	}
	c0 := st2.Cursor(units[0].Scenario.Name(), 1)
	if c0.Done != 3 || len(c0.Extras) != 0 {
		t.Fatalf("unit 0 cursor = %d + %v, want contiguous 3", c0.Done, c0.Extras)
	}
	if c0.Completed(4) {
		t.Fatal("torn seed-4 record counted as complete; it must be re-run")
	}
	if st2.JournalBytes != j2.Offset() {
		t.Fatalf("recovered offset %d != journal end %d", st2.JournalBytes, j2.Offset())
	}
	// The torn bytes are gone: appending now must yield a parseable
	// journal.
	if err := j2.Export(rec(units[0], 4, StatusOK)); err != nil {
		t.Fatal(err)
	}
	st2.Absorb(rec(units[0], 4, StatusOK))
	st2.JournalBytes = j2.Offset()
	if err := SaveState(dir, st2); err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(dir); err != nil {
		t.Fatalf("ledger audit after recovery: %v", err)
	}
	// Monotonic progress: a third recovery sees strictly more work done.
	st3, j3, err := Recover(dir, fp, units)
	if err != nil {
		t.Fatal(err)
	}
	j3.Close()
	if st3.Completed != 6 {
		t.Fatalf("third recovery sees %d completed, want 6", st3.Completed)
	}
}

// TestRecoverRejectsForeignState: resuming a state dir under a
// different sweep configuration must fail loudly, not mix schedules.
func TestRecoverRejectsForeignState(t *testing.T) {
	dir := t.TempDir()
	units := []Unit{unit("2c", "uniform", 1)}
	st, j, err := Recover(dir, "sweep-a", units)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if err := SaveState(dir, st); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Recover(dir, "sweep-b", units); err == nil {
		t.Fatal("foreign fingerprint accepted")
	}
}

// TestVerifyCatchesDuplicates: the auditor must flag a journal that
// counts one sweep slot twice.
func TestVerifyCatchesDuplicates(t *testing.T) {
	dir := t.TempDir()
	units := []Unit{unit("2c", "uniform", 1)}
	st, j, err := Recover(dir, "dup-sweep", units)
	if err != nil {
		t.Fatal(err)
	}
	r := rec(units[0], 1, StatusOK)
	j.Export(r)
	j.Export(r) // the bug Verify exists to catch
	st.Absorb(r)
	st.JournalBytes = j.Offset()
	j.Close()
	if err := SaveState(dir, st); err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(dir); err == nil {
		t.Fatal("duplicate journal record passed the audit")
	}
}
