package soak

import (
	"repro/internal/experiments"
)

// Minimized is the shrink result for one failing chaos schedule.
type Minimized struct {
	// OpBudget is the smallest perturbation-prefix budget found that
	// still reproduces the failure (0 = minimization failed; the
	// unlimited schedule is the repro).
	OpBudget int
	// Check is the check the minimized prefix violates (it must match
	// the original failure's).
	Check string
	// Probes is how many replays the search spent.
	Probes int
}

// maxMinimizeProbes bounds the search: exponential ramp plus binary
// search over op counts that are at most a few thousand per quick run
// stays far below this; the cap only guards a pathological predicate.
const maxMinimizeProbes = 64

// Minimize shrinks a failing chaos schedule to a short reproducing
// prefix: the failing run is replayed under a perturbation op budget
// (chaos.Config.OpBudget — a budget-B run applies exactly the first B
// actions of the unlimited schedule), ramping the budget exponentially
// until the failure reproduces and then binary-searching the boundary.
// The result is the smallest budget the search visited that reproduces
// the same check — a true repro by construction (the final budget was
// re-run, not extrapolated), and in practice a schedule orders of
// magnitude shorter than the unlimited one.
//
// run must be the failing run's identity (OpBudget 0); failure its
// error. fullOps, when > 0, seeds the upper bound with the op count
// the failing run actually applied (sequential runs report it;
// sharded runs pass 0 and the ramp discovers the bound).
func Minimize(run experiments.ChaosRun, failure error, fullOps int) Minimized {
	want := experiments.CheckName(failure)
	m := Minimized{Check: want}
	reproduces := func(budget int) bool {
		m.Probes++
		probe := run
		probe.OpBudget = budget
		out := probe.Run()
		return out.Err != nil && experiments.CheckName(out.Err) == want
	}

	// Ramp: find the first power-of-two budget that reproduces. fullOps
	// caps the ramp — budgets past the ops the failing run applied
	// cannot change the schedule.
	lo, hi := 0, 0
	for b := 1; m.Probes < maxMinimizeProbes; b *= 2 {
		if fullOps > 0 && b > fullOps {
			b = fullOps
		}
		if reproduces(b) {
			hi = b
			break
		}
		lo = b
		if fullOps > 0 && b >= fullOps {
			break // even the full prefix missed: not budget-reducible
		}
		if b >= 1<<20 {
			break // schedule applies at most ~1e6 ops in any quick run
		}
	}
	if hi == 0 {
		return m // minimization failed; keep the unlimited repro
	}

	// Binary search (lo, hi]: lo never reproduced, hi did.
	for hi-lo > 1 && m.Probes < maxMinimizeProbes {
		mid := lo + (hi-lo)/2
		if reproduces(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	m.OpBudget = hi
	return m
}
