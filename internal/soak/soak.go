package soak

import (
	"context"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/experiments"
)

// Unit is one sweep slice: a chaos-tier scenario at one shard count.
type Unit struct {
	Scenario experiments.Scenario
	Protocol string // "" = hc3i
	Shards   int    // <= 1 = single-engine reference
}

func (u Unit) shards() int {
	if u.Shards <= 1 {
		return 1
	}
	return u.Shards
}

func (u Unit) protocol() string {
	if u.Protocol == "" {
		return experiments.ChaosProtocols[0]
	}
	return u.Protocol
}

// Options configures one soak sweep.
type Options struct {
	// Dir is the state directory (state.json + journal.jsonl). One dir
	// is one sweep: resuming continues it, a different sweep
	// configuration is rejected by the fingerprint guard.
	Dir string
	// Units are the sweep slices; SeedsPerUnit is each slice's seed
	// budget (seeds 1..SeedsPerUnit). Raising the budget on resume
	// extends the sweep in place.
	Units        []Unit
	SeedsPerUnit uint64
	Quick        bool
	// Workers bounds concurrent runs (<= 1 = sequential).
	Workers int
	// RunTimeout arms the per-run wall-clock watchdog; a wedged run is
	// journaled as status "wedged" and the sweep moves on. 0 disables
	// it (a wedged run then stalls its worker forever — set one).
	RunTimeout time.Duration
	// CheckpointEvery publishes the checkpoint after this many
	// journaled records (0 = every 32). Smaller = less re-verified work
	// after a kill, more fsyncs.
	CheckpointEvery int
	// Minimize shrinks every violation to the shortest reproducing
	// schedule prefix before journaling it (see Minimize).
	Minimize bool
	// DieAfter > 0 makes the collector SIGKILL the whole process right
	// after journaling that many records this session — the CI smoke
	// test's deterministic mid-sweep kill.
	DieAfter int
	// Tee, when non-nil, additionally receives every record (stdout
	// streaming). The journal stays the source of truth.
	Tee Exporter
	// Log receives progress lines (nil = silent).
	Log io.Writer
}

func (o Options) workers() int {
	if o.Workers < 1 {
		return 1
	}
	return o.Workers
}

func (o Options) checkpointEvery() int {
	if o.CheckpointEvery < 1 {
		return 32
	}
	return o.CheckpointEvery
}

// Fingerprint pins the sweep identity a state dir belongs to: the unit
// grid and the scale. The seed budget and operational knobs (workers,
// timeout, checkpoint cadence) are deliberately excluded — raising the
// budget or retuning the service must resume, not restart.
func Fingerprint(o Options) string {
	names := make([]string, len(o.Units))
	for i, u := range o.Units {
		names[i] = fmt.Sprintf("%s|%s|%d", u.Scenario.Name(), u.protocol(), u.shards())
	}
	sort.Strings(names)
	return fmt.Sprintf("soak-v1 quick=%t units=%s", o.Quick, strings.Join(names, ","))
}

// Summary is a finished (or drained) sweep session's ledger.
type Summary struct {
	Completed  uint64 // journaled seeds, all sessions of this state dir
	Violations uint64
	Wedged     uint64
	Panics     uint64
	// Remaining is how many of the sweep's seeds still lack records
	// (> 0 after a SIGTERM drain; resume picks them up).
	Remaining uint64
	// Failures holds every failing record, oldest first.
	Failures []Record
}

type job struct {
	unit Unit
	seed uint64
}

// Run executes the sweep: recover the state dir, fan the pending seeds
// across the worker pool, journal every completion, checkpoint on a
// cadence, and drain gracefully when ctx is cancelled (in-flight runs
// finish — bounded by RunTimeout — and are journaled; unstarted seeds
// wait for the next resume).
func Run(ctx context.Context, o Options) (*Summary, error) {
	if len(o.Units) == 0 {
		return nil, fmt.Errorf("soak: no sweep units")
	}
	if o.SeedsPerUnit < 1 {
		return nil, fmt.Errorf("soak: seed budget must be >= 1")
	}
	st, j, err := Recover(o.Dir, Fingerprint(o), o.Units)
	if err != nil {
		return nil, err
	}
	defer j.Close()
	// Publish the recovered checkpoint immediately: the fingerprint
	// guard and the merged journal tail are on disk before any new work.
	st.JournalBytes = j.Offset()
	if err := SaveState(o.Dir, st); err != nil {
		return nil, err
	}

	// The pending list: every (unit, seed) without a journal record,
	// interleaved across units so progress spreads over the grid.
	var pending []job
	perUnit := make([][]uint64, len(o.Units))
	for i, u := range o.Units {
		c := st.Cursor(u.Scenario.Name(), u.shards())
		for seed := uint64(1); seed <= o.SeedsPerUnit; seed++ {
			if !c.Completed(seed) {
				perUnit[i] = append(perUnit[i], seed)
			}
		}
	}
	for k := 0; ; k++ {
		added := false
		for i, u := range o.Units {
			if k < len(perUnit[i]) {
				pending = append(pending, job{unit: u, seed: perUnit[i][k]})
				added = true
			}
		}
		if !added {
			break
		}
	}
	o.logf("soak: %d units x %d seeds, %d pending, %d already journaled",
		len(o.Units), o.SeedsPerUnit, len(pending), st.Completed)

	jobs := make(chan job)
	results := make(chan Record, o.workers())
	go func() {
		defer close(jobs)
		for _, jb := range pending {
			select {
			case jobs <- jb:
			case <-ctx.Done():
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < o.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for jb := range jobs {
				results <- runOne(jb, o)
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// The collector is the only writer of the journal and checkpoint.
	written, sinceCkpt := 0, 0
	checkpoint := func() error {
		if err := j.Sync(); err != nil {
			return err
		}
		st.JournalBytes = j.Offset()
		if err := SaveState(o.Dir, st); err != nil {
			return err
		}
		sinceCkpt = 0
		return nil
	}
	for rec := range results {
		if err := j.Export(rec); err != nil {
			return nil, fmt.Errorf("soak: journal write: %w", err)
		}
		if o.Tee != nil {
			if err := o.Tee.Export(rec); err != nil {
				return nil, fmt.Errorf("soak: exporter: %w", err)
			}
		}
		st.Absorb(rec)
		written++
		sinceCkpt++
		if rec.Failed() {
			o.logf("soak: %s seed %d (%s): %s — replay: %s",
				rec.Scenario, rec.Seed, rec.Status, rec.Check, rec.Replay)
		}
		if o.DieAfter > 0 && written >= o.DieAfter {
			// The deterministic mid-sweep kill: the journal holds exactly
			// `written` records this session, the checkpoint references
			// some prefix of them, and nothing gets to clean up — the
			// recovery path must reassemble the truth.
			_ = j.Sync()
			_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
			select {} // unreachable: SIGKILL is not handleable
		}
		if sinceCkpt >= o.checkpointEvery() {
			if err := checkpoint(); err != nil {
				return nil, err
			}
			o.logf("soak: checkpoint at %d/%d seeds (%d violations, %d wedged)",
				st.Completed, uint64(len(o.Units))*o.SeedsPerUnit, st.Violations, st.Wedged)
		}
	}
	if err := checkpoint(); err != nil {
		return nil, err
	}
	if o.Tee != nil {
		if err := o.Tee.Close(); err != nil {
			return nil, err
		}
	}

	sum := &Summary{
		Completed:  st.Completed,
		Violations: st.Violations,
		Wedged:     st.Wedged,
		Panics:     st.Panics,
		Failures:   append([]Record(nil), st.Failures...),
	}
	for _, u := range o.Units {
		c := st.Cursor(u.Scenario.Name(), u.shards())
		for seed := uint64(1); seed <= o.SeedsPerUnit; seed++ {
			if !c.Completed(seed) {
				sum.Remaining++
			}
		}
	}
	return sum, nil
}

// runOne executes one seed, translating every way a run can end —
// clean, violation, watchdog kill, panic — into a Record. A panic is
// contained to the worker: the schedule that crashed the harness is
// journaled like any other failure instead of taking the sweep down.
func runOne(jb job, o Options) (rec Record) {
	start := time.Now()
	run := experiments.ChaosRun{
		Scenario: jb.unit.Scenario,
		Protocol: jb.unit.Protocol,
		Seed:     jb.seed,
		Quick:    o.Quick,
		Shards:   jb.unit.Shards,
		Timeout:  o.RunTimeout,
	}
	rec = Record{
		Scenario: jb.unit.Scenario.Name(),
		Protocol: jb.unit.protocol(),
		Seed:     jb.seed,
	}
	if s := jb.unit.shards(); s > 1 {
		rec.Shards = s
	}
	defer func() {
		rec.ElapsedMS = time.Since(start).Milliseconds()
		if p := recover(); p != nil {
			rec.Status = StatusPanic
			rec.Check = "panic"
			rec.Error = fmt.Sprint(p)
			rec.Replay = run.ReplayCommand()
		}
	}()
	out := run.Run()
	rec.Ops = out.Ops
	if out.Err == nil {
		rec.Status = StatusOK
		rec.Events = out.Result.Events
		rec.Failures = out.Result.Failures
		return rec
	}
	check := experiments.CheckName(out.Err)
	if check == "watchdog" {
		rec.Status = StatusWedged
	} else {
		rec.Status = StatusViolation
	}
	rec.Check = check
	rec.Error = out.Err.Error()
	rec.Replay = run.ReplayCommand()
	if o.Minimize && rec.Status == StatusViolation {
		if min := Minimize(run, out.Err, out.Ops); min.OpBudget > 0 {
			rec.MinOps = min.OpBudget
			short := run
			short.OpBudget = min.OpBudget
			rec.Replay = short.ReplayCommand()
		}
	}
	return rec
}

func (o Options) logf(format string, args ...any) {
	if o.Log != nil {
		fmt.Fprintf(o.Log, format+"\n", args...)
	}
}
