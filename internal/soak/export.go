// Package soak is the continuous chaos service behind cmd/hc3isoak: a
// long-running sweep of adversarial schedules (internal/chaos) across
// the chaos-tier scenario grid, journaling every completed seed,
// checkpointing its cursor so a killed service resumes without losing
// or double-counting work, and shrinking every failure to the shortest
// reproducing schedule prefix before reporting it.
//
// The durability contract has one source of truth: the JSONL journal.
// A seed counts as done exactly when its record line is fully in the
// journal. The checkpoint (state.json) is a cache — a cursor plus the
// journal byte offset it has absorbed — rewritten atomically, so a
// kill -9 at any instant loses at most the seeds that were in flight:
// on restart the journal tail past the checkpoint offset is merged
// back (never re-run), a torn final line is truncated (re-run), and
// the sweep continues from the first seed with no record.
package soak

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Record is one journaled chaos run — the JSONL schema of
// journal.jsonl and of every exporter backend.
type Record struct {
	// Scenario is the chaos-tier cell ("4c/uniform/storm/jitter") and
	// Protocol the protocol under test.
	Scenario string `json:"scenario"`
	Protocol string `json:"protocol"`
	// Seed replays the schedule; Shards (when > 1) is part of the
	// schedule's identity.
	Seed   uint64 `json:"seed"`
	Shards int    `json:"shards,omitempty"`
	// Status is "ok", "violation" (oracle or harness invariant),
	// "wedged" (wall-clock watchdog killed the run) or "panic".
	Status string `json:"status"`
	// Check names the violated check on failures ("oracle: gc safety",
	// "watchdog", ...); Error carries the full diagnostic.
	Check string `json:"check,omitempty"`
	Error string `json:"error,omitempty"`
	// Ops is how many perturbation actions the schedule applied
	// (sequential runs only); MinOps, when > 0, is the minimized
	// reproducing prefix and Replay the one-command repro.
	Ops    int    `json:"ops,omitempty"`
	MinOps int    `json:"min_ops,omitempty"`
	Replay string `json:"replay,omitempty"`
	// Events and Failures summarize clean runs (simulated events,
	// injected crashes).
	Events   uint64 `json:"events,omitempty"`
	Failures uint64 `json:"failures,omitempty"`
	// ElapsedMS is the run's wall-clock cost in milliseconds.
	ElapsedMS int64 `json:"elapsed_ms"`
}

// Key identifies the sweep slot a record fills: one (scenario, shard
// count, seed) runs exactly once per sweep.
func (r Record) Key() string {
	return fmt.Sprintf("%s|%d|%d", r.Scenario, r.Shards, r.Seed)
}

// Failed reports whether the record is anything but a clean run.
func (r Record) Failed() bool { return r.Status != StatusOK }

// Record statuses.
const (
	StatusOK        = "ok"
	StatusViolation = "violation"
	StatusWedged    = "wedged"
	StatusPanic     = "panic"
)

// Exporter receives every completed record. Export must be safe to
// call from the collector goroutine only; the service serializes all
// calls.
type Exporter interface {
	Export(Record) error
	Close() error
}

// NewWriterExporter streams records as JSONL to any writer (stdout
// tee, test buffers). Close flushes but does not close the underlying
// writer.
func NewWriterExporter(w io.Writer) Exporter {
	return &writerExporter{bw: bufio.NewWriter(w)}
}

type writerExporter struct{ bw *bufio.Writer }

func (e *writerExporter) Export(r Record) error {
	b, err := json.Marshal(r)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if _, err := e.bw.Write(b); err != nil {
		return err
	}
	return e.bw.Flush()
}

func (e *writerExporter) Close() error { return e.bw.Flush() }

// LineJournal is the generic durable line store underneath Journal:
// an append-only file of newline-terminated records whose byte offset
// a checkpoint can reference. Every append is one full-line write
// followed by the offset advance, so the only possible damage from a
// kill is a torn final line — which Open truncates away. The live
// runtime's per-node event journals (internal/runtime) reuse it with
// their own record schema.
type LineJournal struct {
	f   *os.File
	off int64
}

// OpenLineJournal opens (creating if needed) the line journal at path,
// truncates a torn trailing line left by a previous kill, and
// positions for append.
func OpenLineJournal(path string) (*LineJournal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	end, err := truncateTorn(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(end, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	return &LineJournal{f: f, off: end}, nil
}

// AppendLine writes one record line (the trailing newline is added
// here) and advances the offset.
func (j *LineJournal) AppendLine(b []byte) error {
	n, err := j.f.Write(append(b, '\n'))
	j.off += int64(n)
	return err
}

// Offset is the current append position — the value a checkpoint
// records as absorbed.
func (j *LineJournal) Offset() int64 { return j.off }

// Sync flushes the journal to stable storage.
func (j *LineJournal) Sync() error { return j.f.Sync() }

func (j *LineJournal) Close() error { return j.f.Close() }

// Journal is the soak service's durable record store: a LineJournal of
// JSONL Record lines.
type Journal struct {
	lj *LineJournal
}

// OpenJournal opens (creating if needed) the journal at path, truncates
// a torn trailing line left by a previous kill, and positions for
// append.
func OpenJournal(path string) (*Journal, error) {
	lj, err := OpenLineJournal(path)
	if err != nil {
		return nil, err
	}
	return &Journal{lj: lj}, nil
}

// truncateTorn scans for the last newline-terminated byte and truncates
// anything after it (a record interrupted mid-write).
func truncateTorn(f *os.File) (int64, error) {
	fi, err := f.Stat()
	if err != nil {
		return 0, err
	}
	size := fi.Size()
	if size == 0 {
		return 0, nil
	}
	// Walk back from the end in small chunks until a newline shows up.
	const chunk = 4096
	end := int64(-1)
	for lo := size; lo > 0 && end < 0; {
		n := int64(chunk)
		if n > lo {
			n = lo
		}
		lo -= n
		buf := make([]byte, n)
		if _, err := f.ReadAt(buf, lo); err != nil {
			return 0, err
		}
		if i := bytes.LastIndexByte(buf, '\n'); i >= 0 {
			end = lo + int64(i) + 1
		}
	}
	if end < 0 {
		end = 0 // no newline at all: the whole file is one torn line
	}
	if end != size {
		if err := f.Truncate(end); err != nil {
			return 0, err
		}
	}
	return end, nil
}

// Export appends one record line and advances the offset.
func (j *Journal) Export(r Record) error {
	b, err := json.Marshal(r)
	if err != nil {
		return err
	}
	return j.lj.AppendLine(b)
}

// Offset is the current append position — the value a checkpoint
// records as absorbed.
func (j *Journal) Offset() int64 { return j.lj.Offset() }

// Sync flushes the journal to stable storage (each checkpoint calls it
// before publishing the offset it references).
func (j *Journal) Sync() error { return j.lj.Sync() }

func (j *Journal) Close() error { return j.lj.Close() }

// ReadFrom replays every journal record starting at byte offset off,
// calling fn for each. A torn or malformed line stops the scan there
// (returning how far it got); OpenJournal truncation makes that the
// file end in practice.
func ReadFrom(path string, off int64, fn func(Record) error) (int64, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) && off == 0 {
		return 0, nil
	}
	if err != nil {
		return off, err
	}
	defer f.Close()
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		return off, err
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	pos := off
	for sc.Scan() {
		line := sc.Bytes()
		var r Record
		if err := json.Unmarshal(line, &r); err != nil {
			return pos, nil // torn tail: stop before it
		}
		if err := fn(r); err != nil {
			return pos, err
		}
		pos += int64(len(line)) + 1
	}
	if err := sc.Err(); err != nil {
		return pos, err
	}
	return pos, nil
}
