package soak

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// stateVersion guards the checkpoint schema.
const stateVersion = 1

// Cursor is one sweep unit's progress: which seeds of one (scenario,
// shard count) slice have journaled records. Seeds are assigned
// sequentially from 1; completions can land out of order (worker
// pool), so coverage is a contiguous prefix plus sparse extras above
// it.
type Cursor struct {
	Scenario string `json:"scenario"`
	Protocol string `json:"protocol"`
	Shards   int    `json:"shards,omitempty"`
	// Done: every seed in [1, Done] has a journal record.
	Done uint64 `json:"done"`
	// Extras: completed seeds above Done (normalized: sorted, unique,
	// all > Done). They fold into Done as the gap below them fills.
	Extras []uint64 `json:"extras,omitempty"`
}

func cursorKey(scenario string, shards int) string {
	return fmt.Sprintf("%s|%d", scenario, shards)
}

// Complete marks seed done and renormalizes. It reports false when the
// seed was already complete — the double-count a resume must not make.
func (c *Cursor) Complete(seed uint64) bool {
	if seed <= c.Done {
		return false
	}
	for _, e := range c.Extras {
		if e == seed {
			return false
		}
	}
	c.Extras = append(c.Extras, seed)
	sort.Slice(c.Extras, func(i, j int) bool { return c.Extras[i] < c.Extras[j] })
	// Fold the contiguous run above Done back into the prefix.
	k := 0
	for k < len(c.Extras) && c.Extras[k] == c.Done+1 {
		c.Done++
		k++
	}
	c.Extras = append(c.Extras[:0], c.Extras[k:]...)
	if len(c.Extras) == 0 {
		c.Extras = nil
	}
	return true
}

// Completed reports whether seed already has a record.
func (c *Cursor) Completed(seed uint64) bool {
	if seed <= c.Done {
		return true
	}
	for _, e := range c.Extras {
		if e == seed {
			return true
		}
	}
	return false
}

// CompletedCount is how many seeds of the slice have records.
func (c *Cursor) CompletedCount() uint64 {
	return c.Done + uint64(len(c.Extras))
}

// State is the checkpoint: sweep identity, per-unit cursors, the
// journal offset it has absorbed, and the failure ledger.
type State struct {
	Version int `json:"version"`
	// Fingerprint pins the sweep configuration the state belongs to; a
	// resume under a different grid or budget must start a fresh state
	// dir, not silently mix schedules.
	Fingerprint string `json:"fingerprint"`
	// JournalBytes is the journal offset every cursor reflects. Journal
	// records past it are merged on load (they were written after the
	// last checkpoint).
	JournalBytes int64     `json:"journal_bytes"`
	Cursors      []*Cursor `json:"cursors"`
	// The ledger: counts by status, plus every failing record kept
	// verbatim for the report.
	Completed  uint64   `json:"completed"`
	Violations uint64   `json:"violations"`
	Wedged     uint64   `json:"wedged"`
	Panics     uint64   `json:"panics"`
	Failures   []Record `json:"failures,omitempty"`
}

// NewState starts a fresh checkpoint for the given sweep units.
func NewState(fingerprint string, units []Unit) *State {
	s := &State{Version: stateVersion, Fingerprint: fingerprint}
	for _, u := range units {
		s.Cursors = append(s.Cursors, &Cursor{
			Scenario: u.Scenario.Name(), Protocol: u.protocol(), Shards: u.shards(),
		})
	}
	return s
}

// Cursor returns the unit's cursor, or nil for a record outside the
// sweep (a foreign journal line).
func (s *State) Cursor(scenario string, shards int) *Cursor {
	if shards <= 0 {
		shards = 1
	}
	key := cursorKey(scenario, shards)
	for _, c := range s.Cursors {
		if cursorKey(c.Scenario, c.shards()) == key {
			return c
		}
	}
	return nil
}

func (c *Cursor) shards() int {
	if c.Shards <= 0 {
		return 1
	}
	return c.Shards
}

// Absorb merges one journal record into the cursors and ledger. It
// reports whether the record was new (false = already counted, the
// exactly-once guard).
func (s *State) Absorb(r Record) bool {
	c := s.Cursor(r.Scenario, r.Shards)
	if c == nil || !c.Complete(r.Seed) {
		return false
	}
	s.Completed++
	switch r.Status {
	case StatusViolation:
		s.Violations++
	case StatusWedged:
		s.Wedged++
	case StatusPanic:
		s.Panics++
	}
	if r.Failed() {
		s.Failures = append(s.Failures, r)
	}
	return true
}

const (
	stateFile   = "state.json"
	journalFile = "journal.jsonl"
)

// StatePath and JournalPath name the two files of a soak state dir.
func StatePath(dir string) string   { return filepath.Join(dir, stateFile) }
func JournalPath(dir string) string { return filepath.Join(dir, journalFile) }

// SaveState checkpoints atomically: write a temp file in the same
// directory, fsync, rename over state.json. A kill at any point leaves
// either the old or the new checkpoint, never a partial one.
func SaveState(dir string, s *State) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	tmp := filepath.Join(dir, stateFile+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, StatePath(dir))
}

// LoadState reads the checkpoint; a missing file returns (nil, nil) —
// a fresh sweep.
func LoadState(dir string) (*State, error) {
	b, err := os.ReadFile(StatePath(dir))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var s State
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("soak: corrupt %s: %w", StatePath(dir), err)
	}
	if s.Version != stateVersion {
		return nil, fmt.Errorf("soak: %s has version %d, this binary speaks %d",
			StatePath(dir), s.Version, stateVersion)
	}
	return &s, nil
}

// Recover opens a state dir for a sweep: load the checkpoint (or start
// fresh), truncate the journal's torn tail, and absorb every journal
// record past the checkpoint offset — the completions a kill raced.
// The journal is the source of truth: anything it holds is merged
// (never re-run), anything it lacks is re-run (never lost).
func Recover(dir, fingerprint string, units []Unit) (*State, *Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	st, err := LoadState(dir)
	if err != nil {
		return nil, nil, err
	}
	if st == nil {
		st = NewState(fingerprint, units)
	} else if st.Fingerprint != fingerprint {
		return nil, nil, fmt.Errorf(
			"soak: state dir %s belongs to a different sweep configuration:\n  have %s\n  want %s\nuse a fresh -state dir (or the original flags) — mixing sweeps would corrupt the ledger",
			dir, st.Fingerprint, fingerprint)
	}
	j, err := OpenJournal(JournalPath(dir))
	if err != nil {
		return nil, nil, err
	}
	if st.JournalBytes > j.Offset() {
		j.Close()
		return nil, nil, fmt.Errorf(
			"soak: checkpoint references journal offset %d but the journal holds %d bytes (journal truncated externally?)",
			st.JournalBytes, j.Offset())
	}
	merged := 0
	end, err := ReadFrom(JournalPath(dir), st.JournalBytes, func(r Record) error {
		if st.Absorb(r) {
			merged++
		}
		return nil
	})
	if err != nil {
		j.Close()
		return nil, nil, err
	}
	st.JournalBytes = end
	_ = merged
	return st, j, nil
}

// Verify re-derives the ledger from the whole journal and checks it
// against the checkpoint: every record slots into exactly one sweep
// position, no position holds two records, the checkpoint's cursors
// and counts match the journal exactly, and coverage is monotone (a
// contiguous prefix plus extras). It is the CI smoke test's oracle for
// the exactly-once guarantee.
func Verify(dir string) (*State, error) {
	st, err := LoadState(dir)
	if err != nil {
		return nil, err
	}
	if st == nil {
		return nil, fmt.Errorf("soak: no checkpoint in %s", dir)
	}
	seen := map[string]bool{}
	fresh := &State{Version: stateVersion, Fingerprint: st.Fingerprint}
	for _, c := range st.Cursors {
		fresh.Cursors = append(fresh.Cursors, &Cursor{
			Scenario: c.Scenario, Protocol: c.Protocol, Shards: c.Shards,
		})
	}
	n := 0
	end, err := ReadFrom(JournalPath(dir), 0, func(r Record) error {
		n++
		if seen[r.Key()] {
			return fmt.Errorf("soak: journal record %d duplicates slot %s", n, r.Key())
		}
		seen[r.Key()] = true
		if fresh.Cursor(r.Scenario, r.Shards) == nil {
			return fmt.Errorf("soak: journal record %d names unit %s/shards=%d outside the sweep",
				n, r.Scenario, r.Shards)
		}
		if !fresh.Absorb(r) {
			return fmt.Errorf("soak: journal record %d (slot %s) did not advance the ledger", n, r.Key())
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if st.JournalBytes > end {
		return nil, fmt.Errorf("soak: checkpoint offset %d beyond journal end %d", st.JournalBytes, end)
	}
	// The checkpoint may lag the journal (its offset is published every
	// N records): absorb the unreferenced tail before comparing, exactly
	// as a resume would.
	if _, err := ReadFrom(JournalPath(dir), st.JournalBytes, func(r Record) error {
		st.Absorb(r)
		return nil
	}); err != nil {
		return nil, err
	}
	if fresh.Completed != st.Completed || fresh.Violations != st.Violations ||
		fresh.Wedged != st.Wedged || fresh.Panics != st.Panics {
		return nil, fmt.Errorf(
			"soak: ledger mismatch: journal says %d completed (%d violations, %d wedged, %d panics), checkpoint says %d (%d, %d, %d)",
			fresh.Completed, fresh.Violations, fresh.Wedged, fresh.Panics,
			st.Completed, st.Violations, st.Wedged, st.Panics)
	}
	for _, c := range st.Cursors {
		fc := fresh.Cursor(c.Scenario, c.shards())
		if fc.Done != c.Done || len(fc.Extras) != len(c.Extras) {
			return nil, fmt.Errorf("soak: cursor %s/shards=%d mismatch: journal %d+%d extras, checkpoint %d+%d",
				c.Scenario, c.shards(), fc.Done, len(fc.Extras), c.Done, len(c.Extras))
		}
		for i := range c.Extras {
			if c.Extras[i] != fc.Extras[i] {
				return nil, fmt.Errorf("soak: cursor %s/shards=%d extras diverge", c.Scenario, c.shards())
			}
		}
	}
	return st, nil
}
