package app

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/topology"
)

// sendEvent is one scheduled application send on a node's private
// application-time axis.
type sendEvent struct {
	At   sim.Duration // application time since the node's logical start
	Dst  topology.NodeID
	Size int
}

// State is a NodeApp snapshot handed to the checkpointing protocol. It
// is intentionally tiny: the simulated application's "virtual memory"
// is priced separately through Workload.StateSize. Delivery state is
// captured as a position in the node's append-only delivery journal —
// snapshotting is O(1) instead of copying the whole delivered map per
// checkpoint (which dominated the simulator's CPU profile), and the
// snapshot value is immutable, so replicas shipped to neighbours share
// nothing mutable.
type State struct {
	NextSend int
	AppClock sim.Duration
	// Journal is the delivery-journal length at snapshot time; Restore
	// rewinds the journal (and the derived delivered counts) to it.
	Journal int
	Epoch   uint64 // increments at every restore; salts non-deterministic replay
}

// NodeApp is the simulated application process on one node: it draws a
// Poisson send schedule from the workload's rate matrix and records
// every delivery. It implements core.AppHooks so the protocol can
// snapshot and restore it transparently.
type NodeApp struct {
	id  topology.NodeID
	wl  *Workload
	fed *topology.Federation
	rng *sim.RNG

	// schedule is the lazily generated, cached send timeline. With
	// Deterministic replay the cache makes re-execution after a
	// rollback reproduce exactly the same sends.
	schedule []sendEvent
	genState genCursor

	next      int // index of the next send in schedule
	appStart  sim.Duration
	clockBase sim.Time // sim time corresponding to appStart of current incarnation
	delivered map[core.LogicalID]int
	// journal records every delivery in order; delivered is the derived
	// count index. A snapshot is a journal position, a restore rewinds
	// the tail (decrementing the counts it added).
	journal []core.LogicalID
	epoch   uint64

	// Stable-delivery tracking (open-loop workloads only): stableAt is
	// parallel to journal and holds, for every entry below stableMark,
	// the simulation time at which the delivery became covered by a
	// committed checkpoint. A rollback truncates both with the journal,
	// so an entry that survives to the end of the run keeps the time of
	// the first covering commit that was itself never rolled back behind
	// — exactly when the delivery became permanent in this execution.
	trackStable bool
	stableAt    []sim.Time
	stableMark  int

	// Now supplies the current simulation time; the harness must set it
	// before the first snapshot so application clocks survive restores.
	Now func() sim.Time
	// Restored is invoked after every Restore so the harness can
	// re-schedule the node's pending send timer.
	Restored func()
	// OnLost, when set, receives the application progress a restore
	// discarded (the work to re-execute).
	OnLost func(sim.Duration)

	// TotalDeliveries counts every Deliver call, duplicates included.
	TotalDeliveries uint64
}

// genCursor tracks the per-destination Poisson streams used to extend
// the schedule. Only destinations with a nonzero rate get a slot: on
// wide federations the rate matrix is sparse (a 1024-cluster ring row
// has 3 live entries), and building 1024 RNGs per node — then scanning
// all 1024 cursors per generated event — dominated the simulator's
// setup profile. The three slices are parallel, indexed by slot;
// active lists the live destination clusters in ascending order, so
// the earliest-event argmin (first slot wins ties, i.e. the lowest
// cluster index, unchanged from the full-width cursor) touches only
// live streams and the per-node footprint is O(live), not O(width).
type genCursor struct {
	active []int32        // live destination clusters, ascending
	nextAt []sim.Duration // next event time, parallel to active
	rngs   []*sim.RNG     // Poisson stream, parallel to active
}

// NewNodeApp builds the application of one node. rng must be a private
// stream for this node.
func NewNodeApp(id topology.NodeID, wl *Workload, fed *topology.Federation, rng *sim.RNG) *NodeApp {
	a := &NodeApp{
		id:          id,
		wl:          wl,
		fed:         fed,
		rng:         rng,
		delivered:   make(map[core.LogicalID]int, deliveredHint(id, wl, fed)),
		schedule:    make([]sendEvent, 0, scheduleHint(id, wl, fed)),
		trackStable: wl.OpenLoop != nil,
	}
	a.initCursor(rng)
	return a
}

// scheduleHint estimates this node's send count from its row of the
// rate matrix, so the cached schedule is sized once instead of
// repeatedly regrowing during the run.
func scheduleHint(id topology.NodeID, wl *Workload, fed *topology.Federation) int {
	row, _ := wl.rateSums()
	perHour := row[id.Cluster]
	expected := perHour * wl.TotalTime.Seconds() / 3600 / float64(fed.Clusters[id.Cluster].Nodes)
	const maxHint = 1 << 16
	if expected > maxHint {
		return maxHint
	}
	return int(expected)
}

// deliveredHint estimates this node's delivery count from the rate
// matrix (everything addressed to its cluster, split across the
// cluster's nodes), so the delivery map is sized once instead of
// rehashing throughout the run.
func deliveredHint(id topology.NodeID, wl *Workload, fed *topology.Federation) int {
	_, col := wl.rateSums()
	perHour := col[id.Cluster]
	expected := perHour * wl.TotalTime.Seconds() / 3600 / float64(fed.Clusters[id.Cluster].Nodes)
	const maxHint = 1 << 16 // hint only: never pre-reserve absurd amounts
	if expected > maxHint {
		return maxHint
	}
	return int(expected)
}

func (a *NodeApp) initCursor(rng *sim.RNG) {
	n := a.fed.NumClusters()
	row := a.wl.RatesPerHour[a.id.Cluster]
	live := 0
	for d := 0; d < n; d++ {
		if row[d] > 0 {
			live++
		}
	}
	a.genState = genCursor{
		active: make([]int32, 0, live),
		nextAt: make([]sim.Duration, 0, live),
		rngs:   make([]*sim.RNG, 0, live),
	}
	for d := 0; d < n; d++ {
		if row[d] <= 0 {
			// Dead pipe: consume the parent draw StreamN would have
			// taken — live destinations then derive byte-identical
			// streams — but skip the stream object itself (drawGap
			// never touches the RNG of a zero-rate destination).
			rng.Uint64()
			continue
		}
		k := len(a.genState.active)
		a.genState.active = append(a.genState.active, int32(d))
		a.genState.rngs = append(a.genState.rngs, rng.StreamN("dst", d))
		a.genState.nextAt = append(a.genState.nextAt, a.nextEvent(k, 0))
	}
}

// drawGap draws the next inter-send gap towards the destination in
// cursor slot k. With a burst envelope the gap lives on the on-time
// axis (and is scaled by the duty cycle so the long-run average rate
// is preserved); nextEvent maps it back to absolute application time.
func (a *NodeApp) drawGap(k int) sim.Duration {
	d := a.genState.active[k]
	rate := a.wl.RatesPerHour[a.id.Cluster][d] // cluster-aggregate msgs/hour
	size := float64(a.fed.Clusters[a.id.Cluster].Nodes)
	perNode := rate / size
	if perNode <= 0 {
		return sim.Forever
	}
	mean := sim.Duration(float64(sim.Hour) / perNode)
	if a.wl.Burst != nil {
		mean = sim.Duration(float64(mean) * a.wl.Burst.Duty)
	}
	return a.genState.rngs[k].Exp(mean)
}

// nextEvent returns the absolute application time of the next send
// towards the destination in cursor slot k, given the previous one at
// from.
func (a *NodeApp) nextEvent(k int, from sim.Duration) sim.Duration {
	g := a.drawGap(k)
	if g >= sim.Forever {
		return sim.Forever
	}
	if b := a.wl.Burst; b != nil {
		return b.Unwarp(b.Warp(from) + g)
	}
	return from + g
}

// extendTo grows the cached schedule until it covers index i or the
// workload's end.
func (a *NodeApp) extendTo(i int) {
	for len(a.schedule) <= i {
		// Pick the cursor slot with the earliest next event; slots are
		// in ascending cluster order, so the first-wins tie-break keeps
		// the lowest destination cluster, as the full-width scan did.
		best := -1
		at := sim.Duration(math.MaxInt64)
		for k, t := range a.genState.nextAt {
			if t < at {
				best, at = k, t
			}
		}
		if best == -1 || at > a.wl.TotalTime {
			return // workload finished
		}
		dst := a.pickNode(best)
		a.schedule = append(a.schedule, sendEvent{At: at, Dst: dst, Size: a.wl.MsgSize})
		a.genState.nextAt[best] = a.nextEvent(best, at)
	}
}

// pickNode selects a uniform destination node in the cluster of cursor
// slot k (never the sender itself).
func (a *NodeApp) pickNode(k int) topology.NodeID {
	c := topology.ClusterID(a.genState.active[k])
	size := a.fed.Clusters[c].Nodes
	r := a.genState.rngs[k]
	if c == a.id.Cluster {
		if size == 1 {
			panic(fmt.Sprintf("app: node %v has intra-cluster traffic but no peer", a.id))
		}
		idx := r.Intn(size - 1)
		if idx >= a.id.Index {
			idx++
		}
		return topology.NodeID{Cluster: c, Index: idx}
	}
	return topology.NodeID{Cluster: c, Index: r.Intn(size)}
}

// ID returns the node this application instance belongs to.
func (a *NodeApp) ID() topology.NodeID { return a.id }

// NextSend returns the application time of the next send and whether
// one remains.
func (a *NodeApp) NextSend() (sim.Duration, bool) {
	a.extendTo(a.next)
	if a.next >= len(a.schedule) {
		return 0, false
	}
	return a.schedule[a.next].At, true
}

// TakeSend consumes the next scheduled send, returning its destination
// and payload. The logical ID embeds the schedule index and the replay
// epoch: with deterministic replay the epoch stays 0 and re-executions
// regenerate identical IDs.
func (a *NodeApp) TakeSend() (topology.NodeID, core.AppPayload, bool) {
	a.extendTo(a.next)
	if a.next >= len(a.schedule) {
		return topology.NodeID{}, core.AppPayload{}, false
	}
	ev := a.schedule[a.next]
	seq := uint64(a.next + 1)
	if !a.wl.Deterministic {
		seq += a.epoch << 32 // distinct identity per incarnation
	}
	a.next++
	return ev.Dst, core.AppPayload{
		ID:   core.LogicalID{Src: a.id, Seq: seq},
		Size: ev.Size,
	}, true
}

// SimTimeOf maps an application time to the current simulation time
// axis (it shifts at every restore).
func (a *NodeApp) SimTimeOf(appAt sim.Duration) sim.Time {
	return a.clockBase.Add(appAt - a.appStart)
}

// AppClock returns the node's application progress at sim time now.
func (a *NodeApp) AppClock(now sim.Time) sim.Duration {
	return a.appStart + now.Sub(a.clockBase)
}

// SyncClock records that application time appAt corresponds to sim time
// now (called at start and at every restore).
func (a *NodeApp) SyncClock(now sim.Time, appAt sim.Duration) {
	a.clockBase = now
	a.appStart = appAt
}

// LostWork returns how much application progress a restore to snapshot
// clock c discards, given progress p at the failure.
func LostWork(p, c sim.Duration) sim.Duration {
	if p < c {
		return 0
	}
	return p - c
}

// ---- core.AppHooks ----

// Snapshot captures the application state; its reported size is the
// workload's StateSize (the simulated process image).
func (a *NodeApp) Snapshot() (any, int) {
	var clock sim.Duration
	if a.Now != nil {
		clock = a.AppClock(a.Now())
	}
	return State{
		NextSend: a.next,
		AppClock: clock,
		Journal:  len(a.journal),
		Epoch:    a.epoch,
	}, a.wl.StateSize
}

// Restore reinstalls a snapshot, rewinding the application clock; the
// harness re-schedules the send timer through Restored.
func (a *NodeApp) Restore(state any) {
	s := state.(State)
	a.next = s.NextSend
	if a.Now != nil {
		now := a.Now()
		if a.OnLost != nil {
			a.OnLost(LostWork(a.AppClock(now), s.AppClock))
		}
		a.SyncClock(now, s.AppClock)
	}
	// Rewind the delivery journal: forget (exactly) the deliveries that
	// happened after the snapshot.
	for _, id := range a.journal[s.Journal:] {
		if n := a.delivered[id] - 1; n > 0 {
			a.delivered[id] = n
		} else {
			delete(a.delivered, id)
		}
	}
	a.journal = a.journal[:s.Journal]
	if a.trackStable {
		// Stability marks past the restore point were premature — the
		// covering commit is being rolled back behind; re-delivery will
		// re-mark them at their next permanent coverage.
		a.stableAt = a.stableAt[:s.Journal]
		if a.stableMark > s.Journal {
			a.stableMark = s.Journal
		}
	}
	a.epoch++
	if !a.wl.Deterministic {
		// Forget the cached future: re-execution draws a fresh
		// schedule beyond the restore point.
		a.schedule = a.schedule[:a.next]
		fresh := a.rng.StreamN("replay", int(a.epoch))
		a.initCursor(fresh)
		// Future events must not precede the restore point.
		var base sim.Duration
		if a.next > 0 {
			base = a.schedule[a.next-1].At
		}
		for d := range a.genState.nextAt {
			if a.genState.nextAt[d] != sim.Forever {
				a.genState.nextAt[d] += base
			}
		}
	}
	if a.Restored != nil {
		a.Restored()
	}
}

// Deliver records a payload receipt.
func (a *NodeApp) Deliver(from topology.NodeID, p core.AppPayload) {
	a.delivered[p.ID]++
	a.journal = append(a.journal, p.ID)
	if a.trackStable {
		a.stableAt = append(a.stableAt, 0) // unstable until a commit covers it
	}
	a.TotalDeliveries++
}

// Stabilized implements core.Stabilizer: the protocol committed a
// checkpoint whose snapshot is state, so every journal entry the
// snapshot covers is now backed by stable storage. Entries between the
// previous mark and the snapshot's journal position get the current
// time as their (provisional — see Restore) stability time.
func (a *NodeApp) Stabilized(state any) {
	if !a.trackStable {
		return
	}
	s := state.(State)
	if s.Journal > len(a.stableAt) {
		panic(fmt.Sprintf("app: commit covers %d journal entries, only %d delivered", s.Journal, len(a.stableAt)))
	}
	var now sim.Time
	if a.Now != nil {
		now = a.Now()
	}
	for j := a.stableMark; j < s.Journal; j++ {
		a.stableAt[j] = now
	}
	if s.Journal > a.stableMark {
		a.stableMark = s.Journal
	}
}

// StableCount returns how many leading journal entries are covered by
// a committed checkpoint (0 unless the workload is open-loop).
func (a *NodeApp) StableCount() int { return a.stableMark }

// JournalEntry returns the logical ID of the j-th delivery in the
// node's current journal.
func (a *NodeApp) JournalEntry(j int) core.LogicalID { return a.journal[j] }

// StableTime returns when the j-th delivery became stable; valid for
// j < StableCount().
func (a *NodeApp) StableTime(j int) sim.Time { return a.stableAt[j] }

// ArrivalTime returns when the i-th scheduled request (0-based) entered
// the system: open-loop arrivals are fixed by the users' schedule on
// the original time axis, so rollbacks delay service, never arrival.
func (a *NodeApp) ArrivalTime(i int) sim.Time {
	a.extendTo(i)
	return sim.Time(0).Add(a.schedule[i].At)
}

// DeliveredCount returns how many distinct logical messages this node
// has received in its current state.
func (a *NodeApp) DeliveredCount() int { return len(a.delivered) }

// DeliveredTimes returns the delivery count of one logical message.
func (a *NodeApp) DeliveredTimes(id core.LogicalID) int { return a.delivered[id] }

// SentCount returns how many sends this node has performed in its
// current incarnation's history.
func (a *NodeApp) SentCount() int { return a.next }

// ScheduleLen returns the number of generated schedule entries so far.
func (a *NodeApp) ScheduleLen() int { return len(a.schedule) }

// ScheduledIDs lists the logical IDs of all sends up to the node's
// current progress, for end-of-run invariant checking.
func (a *NodeApp) ScheduledIDs() []core.LogicalID {
	ids := make([]core.LogicalID, 0, a.next)
	for i := 0; i < a.next; i++ {
		seq := uint64(i + 1)
		if !a.wl.Deterministic {
			seq += a.epoch << 32
		}
		ids = append(ids, core.LogicalID{Src: a.id, Seq: seq})
	}
	return ids
}

// DestinationOf returns the destination of the i-th scheduled send
// (0-based), which is stable under deterministic replay.
func (a *NodeApp) DestinationOf(i int) topology.NodeID {
	a.extendTo(i)
	return a.schedule[i].Dst
}
