package app

import (
	"math"
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

// TestNewOpenLoopCompilesRates checks the Poisson-superposition
// compilation: the rate matrix's total equals users x per-user rate,
// every source cluster carries an equal share, and destination columns
// follow the Zipf weights.
func TestNewOpenLoopCompilesRates(t *testing.T) {
	const (
		n       = 4
		users   = int64(1_000_000)
		perUser = 0.002
		zipfS   = 1.0
	)
	wl := NewOpenLoop(n, users, perUser, zipfS, sim.Hour)
	var total float64
	rowSums := make([]float64, n)
	colSums := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := wl.RatesPerHour[i][j]
			if v <= 0 {
				t.Fatalf("rate[%d][%d] = %v, want positive", i, j, v)
			}
			total += v
			rowSums[i] += v
			colSums[j] += v
		}
	}
	if want := float64(users) * perUser; math.Abs(total-want)/want > 1e-9 {
		t.Fatalf("aggregate rate = %v, want %v", total, want)
	}
	for i := 1; i < n; i++ {
		if math.Abs(rowSums[i]-rowSums[0])/rowSums[0] > 1e-9 {
			t.Fatalf("source shares unequal: %v", rowSums)
		}
	}
	// Zipf with s=1: destination j+1 gets 1/(j+1) of destination 1's
	// share.
	for j := 1; j < n; j++ {
		want := colSums[0] / float64(j+1)
		if math.Abs(colSums[j]-want)/want > 1e-9 {
			t.Fatalf("column %d = %v, want %v (Zipf s=1)", j, colSums[j], want)
		}
	}
	if wl.OpenLoop == nil || !wl.Deterministic {
		t.Fatal("open-loop workload must be marked and deterministic")
	}
	if err := wl.Validate(topology.Small(n, 2)); err != nil {
		t.Fatalf("valid open-loop workload rejected: %v", err)
	}
}

func TestOpenLoopValidate(t *testing.T) {
	fed := topology.Small(2, 2)
	wl := NewOpenLoop(2, 1000, 0.1, 1.1, sim.Hour)
	wl.Deterministic = false
	if err := wl.Validate(fed); err == nil {
		t.Fatal("open-loop workload without deterministic replay accepted")
	}
	for _, bad := range []*OpenLoop{
		{Users: 0, RequestsPerUserHour: 1},
		{Users: 10, RequestsPerUserHour: 0},
		{Users: 10, RequestsPerUserHour: 1, ZipfS: -1},
	} {
		wl := NewOpenLoop(2, 1000, 0.1, 1.1, sim.Hour)
		wl.OpenLoop = bad
		if err := wl.Validate(fed); err == nil {
			t.Errorf("open-loop %+v accepted", bad)
		}
	}
}

// TestWorkloadFreezeRebuildsRateSums pins the staleness regression: a
// sweep harness that edits RatesPerHour on a shared Workload must see
// the edited rates after Freeze. The broken implementation cached the
// sums behind a sync.Once, so every run after the first used the first
// run's totals.
func TestWorkloadFreezeRebuildsRateSums(t *testing.T) {
	wl := Uniform(2, 100, 10, sim.Hour)
	row1, col1 := wl.rateSums()
	if row1[0] != 110 || col1[0] != 110 {
		t.Fatalf("initial sums = %v, %v", row1, col1)
	}
	wl.RatesPerHour[0][1] = 1000
	wl.Freeze()
	row2, col2 := wl.rateSums()
	if row2[0] != 1100 || col2[1] != 1100 {
		t.Fatalf("sums stale after Freeze: %v, %v", row2, col2)
	}
	// A second read without further edits keeps the rebuilt values.
	row3, _ := wl.rateSums()
	if row3[0] != 1100 {
		t.Fatalf("sums changed without an edit: %v", row3)
	}
}

// TestNodeAppSeesFrozenRates drives the per-node scheduler end to end:
// after editing the shared workload's rates and freezing, a fresh node
// draws a schedule matching the new rates.
func TestNodeAppSeesFrozenRates(t *testing.T) {
	fed := topology.Small(2, 2)
	wl := Uniform(2, 60, 6, 10*sim.Hour)
	count := func(seed uint64) int {
		a := NewNodeApp(topology.NodeID{Cluster: 0, Index: 0}, wl, fed, sim.NewRNG(seed))
		n := 0
		for {
			if _, ok := a.NextSend(); !ok {
				break
			}
			if _, _, ok := a.TakeSend(); !ok {
				break
			}
			n++
		}
		return n
	}
	base := count(11)
	// Cluster aggregate 66/h over 10h across 2 nodes => ~330 per node.
	if base < 230 || base > 450 {
		t.Fatalf("baseline schedule produced %d sends, want ~330", base)
	}
	for i := range wl.RatesPerHour {
		for j := range wl.RatesPerHour[i] {
			wl.RatesPerHour[i][j] *= 10
		}
	}
	wl.Freeze()
	boosted := count(11)
	if boosted < 5*base {
		t.Fatalf("rates x10 after Freeze produced %d sends vs baseline %d (stale sums?)", boosted, base)
	}
}

// FuzzBurstWarpRoundTrip checks the Warp/Unwarp inverse property over
// arbitrary envelopes: for any on-time budget s, Unwarp maps it to the
// earliest absolute time with that much on-time elapsed, so
// Warp(Unwarp(s)) == s. Seeds cover the rem == on boundary and the
// Duty == 1 degenerate envelope.
func FuzzBurstWarpRoundTrip(f *testing.F) {
	f.Add(int64(30*sim.Minute), 0.25, int64(0))
	f.Add(int64(30*sim.Minute), 0.25, int64(7*sim.Minute))
	f.Add(int64(30*sim.Minute), 0.25, int64(30*sim.Minute)/4) // rem == on
	f.Add(int64(sim.Hour), 1.0, int64(90*sim.Minute))         // Duty == 1
	f.Add(int64(1), 0.5, int64(12345))
	f.Add(int64(sim.Second), 0.001, int64(3))
	f.Fuzz(func(t *testing.T, period int64, duty float64, s int64) {
		if period <= 0 || period > int64(1000*sim.Hour) {
			t.Skip()
		}
		if duty <= 0 || duty > 1 || math.IsNaN(duty) {
			t.Skip()
		}
		if s < 0 || s > int64(100000*sim.Hour) {
			t.Skip()
		}
		b := &Burst{Period: sim.Duration(period), Duty: duty}
		on := b.onPerPeriod()
		if on <= 0 {
			// Degenerate envelope: no on-time ever accumulates.
			if b.Unwarp(sim.Duration(s)) != sim.Forever && s > 0 {
				t.Fatal("positive on-time reachable with an empty on-window")
			}
			t.Skip()
		}
		got := b.Warp(b.Unwarp(sim.Duration(s)))
		if got != sim.Duration(s) {
			t.Fatalf("Warp(Unwarp(%d)) = %d (period %d, duty %v)", s, got, period, duty)
		}
		// Warp never exceeds the on-time physically available.
		tAbs := sim.Duration(s)
		if w := b.Warp(tAbs); w > tAbs {
			t.Fatalf("Warp(%d) = %d exceeds elapsed time", tAbs, w)
		}
	})
}
