package app

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/topology"
)

func testApp(t *testing.T, wl *Workload, seed uint64) *NodeApp {
	t.Helper()
	fed := topology.Small(2, 4)
	if err := wl.Validate(fed); err != nil {
		t.Fatal(err)
	}
	id := topology.NodeID{Cluster: 0, Index: 1}
	return NewNodeApp(id, wl, fed, sim.NewRNG(seed))
}

func TestWorkloadValidation(t *testing.T) {
	fed := topology.Small(2, 2)
	cases := map[string]*Workload{
		"wrong rows":  {TotalTime: sim.Hour, MsgSize: 1, RatesPerHour: [][]float64{{1, 1}}},
		"wrong cols":  {TotalTime: sim.Hour, MsgSize: 1, RatesPerHour: [][]float64{{1}, {1}}},
		"negative":    {TotalTime: sim.Hour, MsgSize: 1, RatesPerHour: [][]float64{{-1, 0}, {0, 0}}},
		"no time":     {TotalTime: 0, MsgSize: 1, RatesPerHour: [][]float64{{1, 1}, {1, 1}}},
		"no msg size": {TotalTime: sim.Hour, MsgSize: 0, RatesPerHour: [][]float64{{1, 1}, {1, 1}}},
	}
	for name, wl := range cases {
		if err := wl.Validate(fed); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if err := Uniform(2, 10, 1, sim.Hour).Validate(fed); err != nil {
		t.Errorf("valid workload rejected: %v", err)
	}
}

func TestPaperTable1Expectations(t *testing.T) {
	wl := PaperTable1()
	cases := []struct {
		i, j int
		want float64
	}{
		{0, 0, 2920}, {1, 1, 2497}, {0, 1, 145}, {1, 0, 11},
	}
	for _, c := range cases {
		if got := wl.ExpectedMessages(c.i, c.j); math.Abs(got-c.want) > 0.5 {
			t.Errorf("expected[%d][%d] = %v, want %v", c.i, c.j, got, c.want)
		}
	}
}

func TestPipelineShape(t *testing.T) {
	wl := Pipeline(3, 100, 10, sim.Hour)
	if wl.RatesPerHour[0][1] != 10 || wl.RatesPerHour[1][2] != 10 {
		t.Fatal("pipeline flow missing")
	}
	if wl.RatesPerHour[1][0] != 0 || wl.RatesPerHour[2][0] != 0 {
		t.Fatal("pipeline must be directed")
	}
	if wl.RatesPerHour[2][2] != 100 {
		t.Fatal("intra traffic missing")
	}
}

func TestScheduleDeterministicAndOrdered(t *testing.T) {
	wl := Uniform(2, 100, 10, sim.Hour)
	a := testApp(t, wl, 7)
	b := testApp(t, wl, 7)
	var prev sim.Duration
	for k := 0; k < 50; k++ {
		at1, ok1 := a.NextSend()
		at2, ok2 := b.NextSend()
		if ok1 != ok2 || at1 != at2 {
			t.Fatalf("schedules diverge at %d", k)
		}
		if !ok1 {
			break
		}
		if at1 < prev {
			t.Fatalf("schedule not ordered: %v < %v", at1, prev)
		}
		prev = at1
		d1, p1, _ := a.TakeSend()
		d2, p2, _ := b.TakeSend()
		if d1 != d2 || p1.ID != p2.ID {
			t.Fatalf("sends diverge at %d", k)
		}
		if d1 == a.id {
			t.Fatal("node sends to itself")
		}
	}
}

func TestScheduleRespectsTotalTime(t *testing.T) {
	wl := Uniform(2, 50, 5, 30*sim.Minute)
	a := testApp(t, wl, 9)
	for {
		at, ok := a.NextSend()
		if !ok {
			break
		}
		if at > wl.TotalTime {
			t.Fatalf("send at %v past total time %v", at, wl.TotalTime)
		}
		a.TakeSend()
	}
	if a.SentCount() == 0 {
		t.Fatal("no sends generated")
	}
}

func TestSnapshotRestoreReplaysDeterministically(t *testing.T) {
	wl := Uniform(2, 200, 20, sim.Hour)
	a := testApp(t, wl, 11)
	now := sim.Time(0)
	a.Now = func() sim.Time { return now }
	a.SyncClock(0, 0)

	var taken []core.LogicalID
	for k := 0; k < 10; k++ {
		_, p, ok := a.TakeSend()
		if !ok {
			t.Fatal("schedule too short")
		}
		taken = append(taken, p.ID)
	}
	now = sim.Time(10 * sim.Minute)
	snap, size := a.Snapshot()
	if size != wl.StateSize {
		t.Fatalf("state size = %d", size)
	}
	for k := 0; k < 5; k++ {
		a.TakeSend()
	}
	a.Deliver(topology.NodeID{Cluster: 1, Index: 0}, core.AppPayload{ID: core.LogicalID{Seq: 99}})

	now = sim.Time(20 * sim.Minute)
	restored := false
	a.Restored = func() { restored = true }
	a.Restore(snap)
	if !restored {
		t.Fatal("Restored callback not invoked")
	}
	if a.SentCount() != 10 {
		t.Fatalf("restored SentCount = %d", a.SentCount())
	}
	if a.DeliveredTimes(core.LogicalID{Seq: 99}) != 0 {
		t.Fatal("post-snapshot delivery survived restore")
	}
	// Replay regenerates identical sends.
	for k := 0; k < 5; k++ {
		_, p, ok := a.TakeSend()
		if !ok {
			t.Fatal("replay too short")
		}
		want := uint64(10 + k + 1)
		if p.ID.Seq != want {
			t.Fatalf("replay send %d has seq %d", k, p.ID.Seq)
		}
	}
	_ = taken
}

func TestClockMappingAcrossRestore(t *testing.T) {
	wl := Uniform(2, 100, 0, sim.Hour)
	a := testApp(t, wl, 13)
	now := sim.Time(0)
	a.Now = func() sim.Time { return now }
	a.SyncClock(0, 0)

	now = sim.Time(5 * sim.Minute)
	snap, _ := a.Snapshot()

	// 3 minutes later the node rolls back to the 5-minute snapshot:
	// application time 5m now corresponds to sim time 8m.
	now = sim.Time(8 * sim.Minute)
	a.Restore(snap)
	if got := a.AppClock(now); got != 5*sim.Minute {
		t.Fatalf("app clock after restore = %v", got)
	}
	if got := a.SimTimeOf(6 * sim.Minute); got != sim.Time(9*sim.Minute) {
		t.Fatalf("SimTimeOf(6m) = %v, want 9m", got)
	}
	if lost := LostWork(7*sim.Minute, 5*sim.Minute); lost != 2*sim.Minute {
		t.Fatalf("LostWork = %v", lost)
	}
	if lost := LostWork(4*sim.Minute, 5*sim.Minute); lost != 0 {
		t.Fatalf("LostWork negative case = %v", lost)
	}
}

func TestNonDeterministicReplayDrawsFreshSchedule(t *testing.T) {
	wl := Uniform(2, 500, 50, sim.Hour)
	wl.Deterministic = false
	a := testApp(t, wl, 17)
	now := sim.Time(0)
	a.Now = func() sim.Time { return now }
	a.SyncClock(0, 0)

	for k := 0; k < 5; k++ {
		a.TakeSend()
	}
	snap, _ := a.Snapshot()
	var origDst []topology.NodeID
	var origAt []sim.Duration
	for k := 0; k < 10; k++ {
		at, _ := a.NextSend()
		d, _, _ := a.TakeSend()
		origDst = append(origDst, d)
		origAt = append(origAt, at)
	}
	a.Restore(snap)
	same := 0
	for k := 0; k < 10; k++ {
		at, ok := a.NextSend()
		if !ok {
			break
		}
		d, p, _ := a.TakeSend()
		if d == origDst[k] && at == origAt[k] {
			same++
		}
		// Fresh incarnations mint distinct logical identities.
		if p.ID.Seq>>32 == 0 {
			t.Fatal("non-deterministic replay reused logical identity space")
		}
	}
	if same == 10 {
		t.Fatal("non-deterministic replay reproduced the old schedule exactly")
	}
}

func TestDeliveryAccounting(t *testing.T) {
	wl := Uniform(2, 10, 1, sim.Hour)
	a := testApp(t, wl, 19)
	id := core.LogicalID{Src: topology.NodeID{Cluster: 1, Index: 0}, Seq: 1}
	a.Deliver(id.Src, core.AppPayload{ID: id})
	a.Deliver(id.Src, core.AppPayload{ID: id}) // duplicate (resend)
	if a.DeliveredTimes(id) != 2 {
		t.Fatalf("delivered times = %d", a.DeliveredTimes(id))
	}
	if a.DeliveredCount() != 1 {
		t.Fatalf("distinct deliveries = %d", a.DeliveredCount())
	}
	if a.TotalDeliveries != 2 {
		t.Fatalf("total deliveries = %d", a.TotalDeliveries)
	}
}

func TestPoissonRateCalibration(t *testing.T) {
	// The per-node thinning must reproduce the cluster-aggregate rate:
	// sum the sends of all nodes of cluster 0 towards cluster 1.
	fed := topology.Small(2, 4)
	wl := Uniform(2, 0, 120, 10*sim.Hour) // 120 inter msgs/hour expected
	total := 0
	for i := 0; i < 4; i++ {
		a := NewNodeApp(topology.NodeID{Cluster: 0, Index: i}, wl, fed, sim.NewRNG(uint64(100+i)))
		for {
			_, _, ok := a.TakeSend()
			if !ok {
				break
			}
			total++
		}
	}
	want := 1200.0
	if math.Abs(float64(total)-want) > 150 {
		t.Fatalf("aggregate sends = %d, want ~%v", total, want)
	}
}
