// Package app models the code-coupling applications the paper targets:
// processes grouped into modules, each module pinned to one cluster,
// heavy traffic inside modules and light traffic between them (§2.1).
// It corresponds to the "application file" of the paper's simulator:
// mean computation times, communication patterns and total time.
package app

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/sim"
	"repro/internal/topology"
)

// Workload is a rate-based description of the application traffic.
// Rates are expressed as aggregate messages per hour from cluster i to
// cluster j, which maps directly onto the message counts the paper
// reports (Table 1) for a given total execution time.
type Workload struct {
	// TotalTime is the application's execution time (10 h in §5.2).
	TotalTime sim.Duration
	// RatesPerHour[i][j] is the expected number of application
	// messages per hour from cluster i to cluster j (i == j is
	// intra-cluster traffic).
	RatesPerHour [][]float64
	// MsgSize is the application payload size in bytes.
	MsgSize int
	// StateSize is the per-node application state footprint in bytes;
	// it prices checkpoint replication to stable storage.
	StateSize int
	// MeanCompute is the mean computation phase between protocol-visible
	// steps; it only affects reported lost-work statistics.
	MeanCompute sim.Duration
	// Deterministic controls replay: when true (the default behaviour
	// of code-coupling restarts), a node re-executes exactly the same
	// sends after a rollback; when false every re-execution draws a
	// fresh schedule — the protocol must stay consistent either way,
	// since HC3I makes no PWD assumption (§2.2).
	Deterministic bool
	// Burst, when non-nil, modulates the Poisson process with an on-off
	// envelope: traffic only flows during the first Duty fraction of
	// every Period, at a rate scaled by 1/Duty so the long-run average
	// still matches RatesPerHour. The scenario matrix uses it for its
	// bursty workloads.
	Burst *Burst
	// OpenLoop, when non-nil, marks the rate matrix as the compiled
	// form of an open-loop user population (see NewOpenLoop): arrivals
	// are scheduled by the users, never by the system's progress, and
	// the harness tracks per-request stable-delivery latency.
	OpenLoop *OpenLoop

	// sums caches the row and column totals of RatesPerHour. The
	// per-node sizing hints each need one row sum (outbound rate) and
	// one column sum (inbound rate); recomputing them per node is an
	// O(width) scan that dominated wide-federation setup. Computed on
	// first use and rebuilt by Freeze — a harness that edits
	// RatesPerHour between runs must call Freeze (federation.Options
	// does) or the cached sums go stale.
	sums      struct{ row, col []float64 }
	sumsMu    sync.Mutex
	sumsValid bool
}

// rateSums returns the cached per-cluster outbound (row) and inbound
// (column) rate totals, computing them on first call.
func (w *Workload) rateSums() (row, col []float64) {
	w.sumsMu.Lock()
	defer w.sumsMu.Unlock()
	if !w.sumsValid {
		w.rebuildSums()
	}
	return w.sums.row, w.sums.col
}

// rebuildSums recomputes the cached totals; callers hold sumsMu.
func (w *Workload) rebuildSums() {
	n := len(w.RatesPerHour)
	w.sums.row = make([]float64, n)
	w.sums.col = make([]float64, n)
	for i, r := range w.RatesPerHour {
		for j, v := range r {
			w.sums.row[i] += v
			w.sums.col[j] += v
		}
	}
	w.sumsValid = true
}

// Freeze rebuilds the cached rate sums from the current RatesPerHour.
// Sweep harnesses that reuse one Workload across points while editing
// its rates call it before each run; without it the first run's sums
// would silently survive the edit.
func (w *Workload) Freeze() {
	w.sumsMu.Lock()
	defer w.sumsMu.Unlock()
	w.rebuildSums()
}

// OpenLoop describes an open-loop arrival process: a large population
// of independent users, each issuing requests at a fixed mean rate
// regardless of how the system is keeping up (heavy-traffic semantics:
// arrivals never wait for completions). NewOpenLoop compiles it into
// the per-cluster-pair rate matrix by Poisson superposition — the sum
// of the users' independent Poisson streams is itself Poisson at the
// aggregate rate — so the existing deterministic-replay generator
// reproduces the population's traffic exactly.
type OpenLoop struct {
	// Users is the modeled population size.
	Users int64
	// RequestsPerUserHour is each user's mean request rate.
	RequestsPerUserHour float64
	// ZipfS skews the per-destination-cluster popularity: cluster j is
	// chosen with probability proportional to 1/(j+1)^ZipfS. 0 means
	// uniform destinations.
	ZipfS float64
}

// validate checks the open-loop parameters.
func (o *OpenLoop) validate() error {
	if o.Users <= 0 {
		return fmt.Errorf("app: open-loop population must be positive")
	}
	if o.RequestsPerUserHour <= 0 {
		return fmt.Errorf("app: open-loop per-user rate must be positive")
	}
	if o.ZipfS < 0 {
		return fmt.Errorf("app: open-loop zipf exponent %v negative", o.ZipfS)
	}
	return nil
}

// NewOpenLoop builds the workload of an open-loop user population over
// nClusters clusters: users are spread uniformly across the clusters
// as request sources, and each request targets a destination cluster
// drawn from the Zipf(s) popularity law (the skew of real user traffic
// — a few hot services take most of the load). The aggregate stream
// from cluster i to cluster j is Poisson at Users/n * perUserHour *
// p(j), which the deterministic per-destination generator replays
// identically after rollbacks, so millions of users cost no more
// simulator state than the closed-loop rate matrix. Deterministic
// replay is required: request identity (and therefore the arrival a
// latency sample is measured from) must survive re-execution.
func NewOpenLoop(nClusters int, users int64, perUserHour, zipfS float64, total sim.Duration) *Workload {
	probs := make([]float64, nClusters)
	var norm float64
	for j := range probs {
		probs[j] = 1 / math.Pow(float64(j+1), zipfS)
		norm += probs[j]
	}
	perSource := float64(users) * perUserHour / float64(nClusters)
	rates := make([][]float64, nClusters)
	for i := range rates {
		rates[i] = make([]float64, nClusters)
		for j := range rates[i] {
			rates[i][j] = perSource * probs[j] / norm
		}
	}
	return &Workload{
		TotalTime:     total,
		RatesPerHour:  rates,
		MsgSize:       4096,
		StateSize:     4 << 20,
		MeanCompute:   2 * sim.Second,
		Deterministic: true,
		OpenLoop: &OpenLoop{
			Users:               users,
			RequestsPerUserHour: perUserHour,
			ZipfS:               zipfS,
		},
	}
}

// Burst is an on-off traffic envelope (see Workload.Burst).
type Burst struct {
	// Period is one on+off cycle.
	Period sim.Duration
	// Duty is the on fraction of each period, in (0, 1].
	Duty float64
}

// onPerPeriod returns the on-time within one period.
func (b *Burst) onPerPeriod() sim.Duration {
	return sim.Duration(float64(b.Period) * b.Duty)
}

// Warp maps absolute application time to cumulative on-time: the time
// axis the modulated Poisson process is homogeneous on.
func (b *Burst) Warp(t sim.Duration) sim.Duration {
	on := b.onPerPeriod()
	full := t / b.Period
	rem := t - full*b.Period
	if rem > on {
		rem = on
	}
	return full*on + rem
}

// Unwarp maps cumulative on-time back to the earliest absolute time
// with that much on-time elapsed (the inverse of Warp on on-windows).
func (b *Burst) Unwarp(s sim.Duration) sim.Duration {
	on := b.onPerPeriod()
	if on <= 0 {
		return sim.Forever
	}
	full := s / on
	rem := s - full*on
	return full*b.Period + rem
}

// validate checks the burst envelope.
func (b *Burst) validate() error {
	if b.Period <= 0 {
		return fmt.Errorf("app: burst period must be positive")
	}
	if b.Duty <= 0 || b.Duty > 1 {
		return fmt.Errorf("app: burst duty %v outside (0, 1]", b.Duty)
	}
	return nil
}

// Validate checks the workload against a federation.
func (w *Workload) Validate(fed *topology.Federation) error {
	n := fed.NumClusters()
	if len(w.RatesPerHour) != n {
		return fmt.Errorf("app: rate matrix has %d rows for %d clusters", len(w.RatesPerHour), n)
	}
	for i, row := range w.RatesPerHour {
		if len(row) != n {
			return fmt.Errorf("app: rate row %d has %d entries", i, len(row))
		}
		for j, r := range row {
			if r < 0 {
				return fmt.Errorf("app: negative rate [%d][%d]", i, j)
			}
		}
		if row[i] > 0 && fed.Clusters[i].Nodes < 2 {
			return fmt.Errorf("app: cluster %d has intra-cluster traffic but only one node", i)
		}
	}
	if w.TotalTime <= 0 {
		return fmt.Errorf("app: non-positive total time")
	}
	if w.MsgSize <= 0 {
		return fmt.Errorf("app: non-positive message size")
	}
	if w.Burst != nil {
		if err := w.Burst.validate(); err != nil {
			return err
		}
	}
	if w.OpenLoop != nil {
		if err := w.OpenLoop.validate(); err != nil {
			return err
		}
		if !w.Deterministic {
			return fmt.Errorf("app: open-loop workloads require deterministic replay (request identity must survive re-execution)")
		}
	}
	return nil
}

// ExpectedMessages returns the expected message count from cluster i to
// cluster j over the whole run.
func (w *Workload) ExpectedMessages(i, j int) float64 {
	return w.RatesPerHour[i][j] * w.TotalTime.Seconds() / 3600
}

// PaperTable1 builds the workload of §5.2, calibrated so the expected
// counts over 10 hours match Table 1 of the paper:
//
//	cluster 0 -> cluster 0: 2920 messages
//	cluster 1 -> cluster 1: 2497 messages
//	cluster 0 -> cluster 1:  145 messages
//	cluster 1 -> cluster 0:   11 messages
//
// ("lots of communications inside each cluster and few between them ...
// a simulation running on cluster 0 and a trace processor on cluster 1").
func PaperTable1() *Workload {
	const hours = 10
	return &Workload{
		TotalTime: hours * sim.Hour,
		RatesPerHour: [][]float64{
			{2920.0 / hours, 145.0 / hours},
			{11.0 / hours, 2497.0 / hours},
		},
		MsgSize:       4096,
		StateSize:     4 << 20,
		MeanCompute:   2 * sim.Second,
		Deterministic: true,
	}
}

// PaperTable1WithReverse returns the §5.3 variant: the same workload
// with the cluster 1 -> cluster 0 message count raised to reverse
// (Figure 9 sweeps it from ~10 to ~110).
func PaperTable1WithReverse(reverse float64) *Workload {
	w := PaperTable1()
	w.RatesPerHour[1][0] = reverse / 10
	return w
}

// Paper3Clusters builds the §5.4 three-cluster workload: clusters 1 and
// 2 are clones, with roughly 200 messages leaving and arriving at each
// cluster over the run.
func Paper3Clusters() *Workload {
	const hours = 10
	return &Workload{
		TotalTime: hours * sim.Hour,
		RatesPerHour: [][]float64{
			{2920.0 / hours, 100.0 / hours, 100.0 / hours},
			{100.0 / hours, 2497.0 / hours, 100.0 / hours},
			{100.0 / hours, 100.0 / hours, 2497.0 / hours},
		},
		MsgSize:       4096,
		StateSize:     4 << 20,
		MeanCompute:   2 * sim.Second,
		Deterministic: true,
	}
}

// Pipeline builds a code-coupling pipeline like Figure 1 of the paper
// (simulation -> treatment -> display): heavy intra-cluster traffic and
// a directed inter-cluster flow along the chain.
func Pipeline(nClusters int, intraPerHour, flowPerHour float64, total sim.Duration) *Workload {
	rates := make([][]float64, nClusters)
	for i := range rates {
		rates[i] = make([]float64, nClusters)
		rates[i][i] = intraPerHour
		if i+1 < nClusters {
			rates[i][i+1] = flowPerHour
		}
	}
	return &Workload{
		TotalTime:     total,
		RatesPerHour:  rates,
		MsgSize:       4096,
		StateSize:     4 << 20,
		MeanCompute:   2 * sim.Second,
		Deterministic: true,
	}
}

// Uniform builds an all-to-all workload, used by stress tests and the
// multi-fault ablation.
func Uniform(nClusters int, intraPerHour, interPerHour float64, total sim.Duration) *Workload {
	rates := make([][]float64, nClusters)
	for i := range rates {
		rates[i] = make([]float64, nClusters)
		for j := range rates[i] {
			if i == j {
				rates[i][i] = intraPerHour
			} else {
				rates[i][j] = interPerHour
			}
		}
	}
	return &Workload{
		TotalTime:     total,
		RatesPerHour:  rates,
		MsgSize:       4096,
		StateSize:     4 << 20,
		MeanCompute:   2 * sim.Second,
		Deterministic: true,
	}
}
