package app

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

func TestBurstWarpUnwarpInverse(t *testing.T) {
	b := &Burst{Period: 30 * sim.Minute, Duty: 0.25}
	for _, s := range []sim.Duration{
		0, sim.Second, 7 * sim.Minute, b.onPerPeriod() - 1,
		b.onPerPeriod(), 3 * b.onPerPeriod(), 100 * b.onPerPeriod(),
	} {
		if got := b.Warp(b.Unwarp(s)); got != s {
			t.Fatalf("Warp(Unwarp(%v)) = %v", s, got)
		}
	}
	// Warp is monotone and saturates inside off-windows.
	if b.Warp(8*sim.Minute) != b.Warp(29*sim.Minute) {
		t.Fatal("off-window time must not accumulate on-time")
	}
	if b.Warp(31*sim.Minute) <= b.Warp(29*sim.Minute) {
		t.Fatal("the next on-window must accumulate on-time again")
	}
}

func TestBurstValidate(t *testing.T) {
	fed := topology.Small(2, 2)
	for _, bad := range []*Burst{
		{Period: 0, Duty: 0.5},
		{Period: sim.Minute, Duty: 0},
		{Period: sim.Minute, Duty: 1.5},
	} {
		wl := Uniform(2, 10, 10, sim.Hour)
		wl.Burst = bad
		if err := wl.Validate(fed); err == nil {
			t.Errorf("burst %+v accepted", bad)
		}
	}
	wl := Uniform(2, 10, 10, sim.Hour)
	wl.Burst = &Burst{Period: 30 * sim.Minute, Duty: 0.25}
	if err := wl.Validate(fed); err != nil {
		t.Fatalf("valid burst rejected: %v", err)
	}
}

// TestBurstScheduleRespectsEnvelope draws a full schedule under a burst
// envelope and checks every send sits inside an on-window, while the
// long-run count stays near the configured average rate.
func TestBurstScheduleRespectsEnvelope(t *testing.T) {
	fed := topology.Small(2, 2)
	wl := Uniform(2, 600, 60, 10*sim.Hour)
	wl.Burst = &Burst{Period: 30 * sim.Minute, Duty: 0.25}
	on := wl.Burst.onPerPeriod()
	a := NewNodeApp(topology.NodeID{Cluster: 0, Index: 0}, wl, fed, sim.NewRNG(11))
	count := 0
	for {
		at, ok := a.NextSend()
		if !ok {
			break
		}
		phase := at % wl.Burst.Period
		if phase > on {
			t.Fatalf("send %d at %v: phase %v outside the on-window %v", count, at, phase, on)
		}
		if _, _, ok := a.TakeSend(); !ok {
			break
		}
		count++
	}
	// Cluster-aggregate 600+60 msgs/h over 10 h across 2 nodes => ~3300
	// per node on average; allow generous Poisson slack.
	if count < 2600 || count > 4000 {
		t.Fatalf("bursty schedule produced %d sends, want ~3300", count)
	}
}
