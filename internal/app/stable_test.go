package app

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/topology"
)

// TestNodeAppStableTracking drives the stable-delivery machinery by
// hand: deliveries are unstable until a Stabilized call covers them,
// a later Stabilized must not move an already-stable mark, and a
// Restore rewinds stability along with the journal — so the marks that
// survive are exactly the commits never rolled back behind.
func TestNodeAppStableTracking(t *testing.T) {
	fed := topology.Small(2, 2)
	wl := NewOpenLoop(2, 1000, 1.0, 1.0, sim.Hour)
	a := NewNodeApp(topology.NodeID{Cluster: 0, Index: 0}, wl, fed, sim.NewRNG(1))
	var now sim.Time
	a.Now = func() sim.Time { return now }

	src := topology.NodeID{Cluster: 1, Index: 0}
	deliver := func(seq uint64) {
		a.Deliver(src, core.AppPayload{ID: core.LogicalID{Src: src, Seq: seq}, Size: 1})
	}

	deliver(1)
	deliver(2)
	preCommit, _ := a.Snapshot() // journal = 2
	deliver(3)

	if a.StableCount() != 0 {
		t.Fatalf("stable before any commit: %d", a.StableCount())
	}
	now = sim.Time(0).Add(10 * sim.Minute)
	a.Stabilized(preCommit)
	if a.StableCount() != 2 {
		t.Fatalf("stable after commit = %d, want 2", a.StableCount())
	}
	for j := 0; j < 2; j++ {
		if a.StableTime(j) != now {
			t.Fatalf("entry %d stabilized at %v, want %v", j, a.StableTime(j), now)
		}
	}

	// A later commit covering the same prefix must not re-stamp it.
	now = sim.Time(0).Add(20 * sim.Minute)
	a.Stabilized(preCommit)
	if a.StableTime(0) != sim.Time(0).Add(10*sim.Minute) {
		t.Fatal("already-stable entry re-stamped by a later commit")
	}

	// Rolling back behind the commit rescinds its coverage...
	deliver(4)
	fullCommit, _ := a.Snapshot() // journal = 4
	a.Stabilized(fullCommit)
	if a.StableCount() != 4 {
		t.Fatalf("stable = %d, want 4", a.StableCount())
	}
	a.Restore(preCommit)
	if a.StableCount() != 2 {
		t.Fatalf("stable after rollback = %d, want 2", a.StableCount())
	}
	// ...and a replayed delivery stabilizes at the new commit's time.
	deliver(3)
	s, _ := a.Snapshot()
	now = sim.Time(0).Add(40 * sim.Minute)
	a.Stabilized(s)
	if a.StableCount() != 3 {
		t.Fatalf("stable after replay = %d, want 3", a.StableCount())
	}
	if a.StableTime(2) != now {
		t.Fatalf("replayed entry stabilized at %v, want %v", a.StableTime(2), now)
	}
	// The surviving prefix keeps its original (earlier) stability time.
	if a.StableTime(0) != sim.Time(0).Add(10*sim.Minute) {
		t.Fatal("rollback disturbed the surviving prefix's stability times")
	}
}

// TestNodeAppArrivalTime checks arrivals are read off the schedule on
// the original time axis: entry i of the deterministic schedule is
// request Seq i+1, whatever the current incarnation's clock says.
func TestNodeAppArrivalTime(t *testing.T) {
	fed := topology.Small(2, 2)
	wl := NewOpenLoop(2, 100000, 0.5, 1.0, sim.Hour)
	a := NewNodeApp(topology.NodeID{Cluster: 0, Index: 0}, wl, fed, sim.NewRNG(3))
	first := a.ArrivalTime(0)
	if a.ArrivalTime(1) < first {
		t.Fatal("arrivals not monotone")
	}
	// The arrival axis is fixed: asking again (after schedule extension)
	// returns the same instant.
	a.ArrivalTime(50)
	if a.ArrivalTime(0) != first {
		t.Fatal("arrival time changed after schedule extension")
	}
}
