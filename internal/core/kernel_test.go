package core

import (
	"math/rand"
	"testing"
)

// refMerge is the per-element reference the chunked kernels are fuzzed
// against.
func refMerge(d, o []SN) bool {
	changed := false
	for i, v := range o {
		if v > d[i] {
			d[i] = v
			changed = true
		}
	}
	return changed
}

func refEqual(d, o []SN) bool {
	if len(d) != len(o) {
		return false
	}
	for i := range d {
		if d[i] != o[i] {
			return false
		}
	}
	return true
}

func refDominates(d, o []SN) bool {
	for i := range d {
		if d[i] < o[i] {
			return false
		}
	}
	return true
}

func refDiff(buf []DDVPair, cur, base []SN) []DDVPair {
	for i, v := range cur {
		if v != base[i] {
			buf = append(buf, DDVPair{Idx: int32(i), SN: v})
		}
	}
	return buf
}

func refRaised(buf []DDVPair, cur, base []SN, skip int32) []DDVPair {
	for i, v := range cur {
		if int32(i) != skip && v > base[i] {
			buf = append(buf, DDVPair{Idx: int32(i), SN: v})
		}
	}
	return buf
}

// randomVectorPair builds two vectors that agree on most blocks (the
// protocol's steady state) with scattered raises, drops and ties.
func randomVectorPair(rng *rand.Rand, width int) (a, b DDV) {
	a, b = NewDDV(width), NewDDV(width)
	for i := 0; i < width; i++ {
		v := SN(rng.Intn(50))
		a[i], b[i] = v, v
	}
	for k := rng.Intn(width + 1); k > 0; k-- {
		i := rng.Intn(width)
		switch rng.Intn(3) {
		case 0:
			b[i] = a[i] + SN(rng.Intn(5)+1)
		case 1:
			if a[i] > 0 {
				b[i] = a[i] - SN(rng.Intn(int(a[i]))+1)
			}
		case 2:
			a[i] = SN(rng.Intn(50))
		}
	}
	return a, b
}

// kernelWidths spans sub-block, one-block, mid and wide vectors,
// including non-multiples of the block size.
var kernelWidths = []int{1, 7, 8, 9, 64, 100, 256, 1024}

func TestKernelsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, w := range kernelWidths {
		for iter := 0; iter < 200; iter++ {
			a, b := randomVectorPair(rng, w)

			if got, want := equalSN(a, b), refEqual(a, b); got != want {
				t.Fatalf("width %d: equalSN = %v, ref %v (a=%v b=%v)", w, got, want, a, b)
			}
			if got, want := dominatesSN(a, b), refDominates(a, b); got != want {
				t.Fatalf("width %d: dominatesSN = %v, ref %v (a=%v b=%v)", w, got, want, a, b)
			}

			gotDiff := diffPairsKernel(nil, a, b)
			wantDiff := refDiff(nil, a, b)
			comparePairs(t, "diffPairs", w, gotDiff, wantDiff)

			skip := int32(rng.Intn(w))
			gotRaised := raisedPairs(nil, a, b, skip)
			wantRaised := refRaised(nil, a, b, skip)
			comparePairs(t, "raisedPairs", w, gotRaised, wantRaised)

			d1, d2 := a.Clone(), a.Clone()
			if got, want := mergeMax(d1, b), refMerge(d2, b); got != want {
				t.Fatalf("width %d: mergeMax changed = %v, ref %v", w, got, want)
			}
			if !refEqual(d1, d2) {
				t.Fatalf("width %d: mergeMax result %v, ref %v", w, d1, d2)
			}

			d3 := a.Clone()
			var dirty DirtySet
			dirty.Init(w)
			mergeMaxDirty(d3, b, &dirty)
			if !refEqual(d3, d2) {
				t.Fatalf("width %d: mergeMaxDirty result %v, ref %v", w, d3, d2)
			}
			// The dirty set must hold exactly the raised indices.
			raised := map[int32]bool{}
			for i := range a {
				if b[i] > a[i] {
					raised[int32(i)] = true
				}
			}
			if len(raised) != dirty.Len() {
				t.Fatalf("width %d: dirty len %d, want %d", w, dirty.Len(), len(raised))
			}
			for _, i := range dirty.Indices() {
				if !raised[i] {
					t.Fatalf("width %d: index %d dirty but not raised", w, i)
				}
			}
		}
	}
}

func comparePairs(t *testing.T, what string, w int, got, want []DDVPair) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("width %d: %s emitted %d pairs, ref %d (got=%v want=%v)", w, what, len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("width %d: %s pair %d = %+v, ref %+v", w, what, i, got[i], want[i])
		}
	}
}

// FuzzDDVKernels drives the merge kernel (the protocol's hottest
// vector loop) against the per-element reference with fully random
// vectors — no agree-on-most-blocks bias.
func FuzzDDVKernels(f *testing.F) {
	f.Add(uint64(1), 8)
	f.Add(uint64(2), 64)
	f.Add(uint64(3), 256)
	f.Add(uint64(4), 1024)
	f.Fuzz(func(t *testing.T, seed uint64, width int) {
		if width < 1 || width > 2048 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(int64(seed)))
		a, b := NewDDV(width), NewDDV(width)
		for i := range a {
			a[i] = SN(rng.Intn(8))
			b[i] = SN(rng.Intn(8))
		}
		d1, d2 := a.Clone(), a.Clone()
		if got, want := mergeMax(d1, b), refMerge(d2, b); got != want {
			t.Fatalf("mergeMax changed = %v, ref %v", got, want)
		}
		if !refEqual(d1, d2) {
			t.Fatalf("mergeMax result %v, ref %v", d1, d2)
		}
		if got, want := equalSN(a, b), refEqual(a, b); got != want {
			t.Fatalf("equalSN = %v, ref %v", got, want)
		}
		if got, want := dominatesSN(d1, b), refDominates(d1, b); got != want {
			t.Fatalf("dominatesSN = %v, ref %v", got, want)
		}
		comparePairs(t, "diffPairs", width, diffPairsKernel(nil, a, b), refDiff(nil, a, b))
	})
}
