package core

import (
	"fmt"
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

// ---- mock environment: synchronous, zero-latency, FIFO network ----

type sentMsg struct {
	src  topology.NodeID
	dst  topology.NodeID
	msg  Msg
	app  bool
	size int
}

type mockEnv struct {
	id     topology.NodeID
	bed    *testbed
	timers map[TimerKind]sim.Duration
}

func (e *mockEnv) Now() sim.Time { return e.bed.now }
func (e *mockEnv) Send(dst topology.NodeID, size int, msg Msg) {
	e.bed.queue = append(e.bed.queue, sentMsg{src: e.id, dst: dst, msg: msg, size: size})
}
func (e *mockEnv) SendApp(dst topology.NodeID, size int, msg Msg) {
	e.bed.queue = append(e.bed.queue, sentMsg{src: e.id, dst: dst, msg: msg, app: true, size: size})
}
func (e *mockEnv) SetTimer(k TimerKind, d sim.Duration)                   { e.timers[k] = d }
func (e *mockEnv) Trace(level sim.TraceLevel, format string, args ...any) {}
func (e *mockEnv) Stat(name string, delta uint64)                         { e.bed.stats[name] += delta }
func (e *mockEnv) StatSeries(name string, value float64)                  {}

// The testbed implements PiggyCodecs when built with useCodecs, so
// unit tests and benchmarks can cover the delta transitive path; the
// pump decodes at pipe exit exactly like netsim.
func (e *mockEnv) PiggyCodec(src, dst topology.ClusterID) *DeltaCodec {
	b := e.bed
	if !b.useCodecs {
		return nil
	}
	k := [2]topology.ClusterID{src, dst}
	cd := b.codecs[k]
	if cd == nil {
		cd = new(DeltaCodec)
		cd.Init(b.width)
		b.codecs[k] = cd
	}
	return cd
}

func (e *mockEnv) ResetPiggyExam(dst topology.ClusterID) {
	for k, cd := range e.bed.codecs {
		if k[1] == dst {
			cd.ResetSeen()
		}
	}
}

// The testbed implements BoxPool like the federation harness, so unit
// tests and benchmarks cover the pooled-box message path.
func (e *mockEnv) AppMsgBox() *AppMsg {
	b := e.bed
	if last := len(b.appBoxes) - 1; last >= 0 {
		m := b.appBoxes[last]
		b.appBoxes = b.appBoxes[:last]
		return m
	}
	return new(AppMsg)
}

func (e *mockEnv) AppAckBox() *AppAck {
	b := e.bed
	if last := len(b.ackBoxes) - 1; last >= 0 {
		m := b.ackBoxes[last]
		b.ackBoxes = b.ackBoxes[:last]
		return m
	}
	return new(AppAck)
}

type mockApp struct {
	progress  int
	delivered []LogicalID
}

type mockState struct {
	progress  int
	delivered []LogicalID
}

func (a *mockApp) Snapshot() (any, int) {
	return mockState{progress: a.progress, delivered: append([]LogicalID(nil), a.delivered...)}, 1024
}
func (a *mockApp) Restore(state any) {
	s := state.(mockState)
	a.progress = s.progress
	a.delivered = append([]LogicalID(nil), s.delivered...)
}
func (a *mockApp) Deliver(from topology.NodeID, p AppPayload) {
	a.delivered = append(a.delivered, p.ID)
}

// testbed wires Nodes through a synchronous FIFO network.
type testbed struct {
	t     testing.TB
	nodes map[topology.NodeID]*Node
	apps  map[topology.NodeID]*mockApp
	envs  map[topology.NodeID]*mockEnv
	queue []sentMsg
	stats map[string]uint64
	now   sim.Time

	appBoxes []*AppMsg
	ackBoxes []*AppAck

	// Delta piggyback support (see mockEnv.PiggyCodec).
	useCodecs bool
	width     int
	codecs    map[[2]topology.ClusterID]*DeltaCodec
}

// reclaim returns a pooled message box after its dispatch, mirroring
// the federation harness's post-OnMessage reclamation.
func (b *testbed) reclaim(msg Msg) {
	switch m := msg.(type) {
	case *AppMsg:
		*m = AppMsg{}
		b.appBoxes = append(b.appBoxes, m)
	case *AppAck:
		*m = AppAck{}
		b.ackBoxes = append(b.ackBoxes, m)
	}
}

// newTestbed builds clusters with sizes[i] nodes each, replicas state
// copies, and the given per-cluster CLC periods.
func newTestbed(t testing.TB, sizes []int, replicas int, transitive bool) *testbed {
	bed := &testbed{
		t:      t,
		nodes:  make(map[topology.NodeID]*Node),
		apps:   make(map[topology.NodeID]*mockApp),
		envs:   make(map[topology.NodeID]*mockEnv),
		stats:  make(map[string]uint64),
		width:  len(sizes),
		codecs: make(map[[2]topology.ClusterID]*DeltaCodec),
	}
	for c, size := range sizes {
		repl := replicas
		if repl > size-1 {
			repl = size - 1
		}
		for i := 0; i < size; i++ {
			id := topology.NodeID{Cluster: topology.ClusterID(c), Index: i}
			env := &mockEnv{id: id, bed: bed, timers: make(map[TimerKind]sim.Duration)}
			app := &mockApp{}
			cfg := Config{
				ID:           id,
				Clusters:     len(sizes),
				ClusterSizes: sizes,
				CLCPeriod:    sim.Forever,
				GCPeriod:     sim.Forever,
				Replicas:     repl,
				Transitive:   transitive,
			}
			n := NewNode(cfg, env, app)
			bed.nodes[id] = n
			bed.apps[id] = app
			bed.envs[id] = env
			n.Start()
		}
	}
	// Seed initial replicas, as the federation harness does.
	for _, n := range bed.nodes {
		for _, tgt := range n.replicaTargets() {
			bed.nodes[tgt].SeedReplica(n.InitialReplica())
		}
	}
	return bed
}

// newWideTestbed declares a federation of `width` single-node clusters
// but instantiates only clusters 0 and 1 — enough to drive one
// directed inter-cluster pipe at an arbitrary dependency-vector width
// without building hundreds of nodes. Transitive piggybacking is on;
// dense selects the reference wire encoding (delta otherwise).
func newWideTestbed(t testing.TB, width int, dense bool) *testbed {
	bed := &testbed{
		t:         t,
		nodes:     make(map[topology.NodeID]*Node),
		apps:      make(map[topology.NodeID]*mockApp),
		envs:      make(map[topology.NodeID]*mockEnv),
		stats:     make(map[string]uint64),
		width:     width,
		codecs:    make(map[[2]topology.ClusterID]*DeltaCodec),
		useCodecs: !dense,
	}
	sizes := make([]int, width)
	for i := range sizes {
		sizes[i] = 1
	}
	for c := 0; c < 2; c++ {
		id := topology.NodeID{Cluster: topology.ClusterID(c), Index: 0}
		env := &mockEnv{id: id, bed: bed, timers: make(map[TimerKind]sim.Duration)}
		app := &mockApp{}
		cfg := Config{
			ID:           id,
			Clusters:     width,
			ClusterSizes: sizes,
			CLCPeriod:    sim.Forever,
			GCPeriod:     sim.Forever,
			Transitive:   true,
			DenseWire:    dense,
		}
		n := NewNode(cfg, env, app)
		bed.nodes[id] = n
		bed.apps[id] = app
		bed.envs[id] = env
		n.Start()
	}
	return bed
}

func (b *testbed) node(c, i int) *Node {
	return b.nodes[topology.NodeID{Cluster: topology.ClusterID(c), Index: i}]
}
func (b *testbed) app(c, i int) *mockApp {
	return b.apps[topology.NodeID{Cluster: topology.ClusterID(c), Index: i}]
}

// pump delivers queued messages FIFO until quiescent.
func (b *testbed) pump() {
	for steps := 0; len(b.queue) > 0; steps++ {
		if steps > 2_000_000 {
			b.t.Fatal("testbed: message storm")
		}
		m := b.queue[0]
		b.queue = b.queue[1:]
		dst := b.nodes[m.dst]
		if dst == nil {
			b.t.Fatalf("message to unknown node %v", m.dst)
		}
		// Pipe-exit decode, exactly like netsim: the decoder advances
		// for every delta-piggybacked message leaving the queue, even
		// one about to be dropped at a down endpoint.
		if b.useCodecs && m.src.Cluster != m.dst.Cluster {
			var pairs []DDVPair
			switch am := m.msg.(type) {
			case *AppMsg:
				pairs = am.PiggyPairs
			case AppMsg:
				pairs = am.PiggyPairs
			}
			if len(pairs) > 0 {
				b.codecs[[2]topology.ClusterID{m.src.Cluster, m.dst.Cluster}].Decode(pairs)
			}
		}
		if dst.Failed() || b.nodes[m.src].Failed() {
			continue // fail-stop: traffic to/from down nodes vanishes
		}
		b.now++
		dst.OnMessage(m.src, m.msg)
		b.reclaim(m.msg)
	}
}

// commitCLC triggers an unforced CLC on cluster c and settles it.
func (b *testbed) commitCLC(c int) {
	b.node(c, 0).OnTimer(TimerCLC)
	b.pump()
}

func payload(src topology.NodeID, seq uint64) AppPayload {
	return AppPayload{ID: LogicalID{Src: src, Seq: seq}, Size: 100}
}

// ---- tests ----

func TestInitialCheckpointIsSNOne(t *testing.T) {
	b := newTestbed(t, []int{3}, 1, false)
	for _, n := range b.nodes {
		if n.SN() != 1 || n.StoredCount() != 1 {
			t.Fatalf("node %v: sn=%d stored=%d", n.ID(), n.SN(), n.StoredCount())
		}
		if !n.DDVSnapshot().Equal(DDV{1}) {
			t.Fatalf("ddv = %v", n.DDVSnapshot())
		}
		if n.ReplicaCount() != 1 {
			t.Fatalf("seeded replicas = %d", n.ReplicaCount())
		}
	}
}

func TestUnforcedCLCTwoPhaseCommit(t *testing.T) {
	b := newTestbed(t, []int{3}, 1, false)
	b.commitCLC(0)
	for _, n := range b.nodes {
		if n.SN() != 2 {
			t.Fatalf("node %v sn=%d after commit", n.ID(), n.SN())
		}
		if n.StoredCount() != 2 {
			t.Fatalf("node %v stored=%d", n.ID(), n.StoredCount())
		}
		if got := n.DDVSnapshot(); !got.Equal(DDV{2}) {
			t.Fatalf("ddv = %v", got)
		}
		if n.Frozen() {
			t.Fatalf("node %v still frozen after commit", n.ID())
		}
		if n.ReplicaCount() != 2 { // initial + CLC 1
			t.Fatalf("node %v replicas=%d", n.ID(), n.ReplicaCount())
		}
	}
	if b.stats["clc.committed.c0"] != 1 || b.stats["clc.committed.c0.unforced"] != 1 {
		t.Fatalf("stats = %v", b.stats)
	}
	if b.stats["clc.committed.c0.forced"] != 0 {
		t.Fatal("unforced CLC counted as forced")
	}
}

func TestSNStaysAgreedAcrossManyCLCs(t *testing.T) {
	b := newTestbed(t, []int{4}, 1, false)
	for k := 0; k < 10; k++ {
		b.commitCLC(0)
		for _, n := range b.nodes {
			if n.SN() != SN(k+2) {
				t.Fatalf("round %d: node %v sn=%d", k, n.ID(), n.SN())
			}
		}
	}
}

func TestSendsFrozenDuringTwoPhaseCommit(t *testing.T) {
	b := newTestbed(t, []int{2}, 1, false)
	leader := b.node(0, 0)
	peer := b.node(0, 1)
	leader.OnTimer(TimerCLC) // leader snapshots and freezes immediately
	if !leader.Frozen() {
		t.Fatal("leader not frozen at request")
	}
	leader.Send(peer.ID(), payload(leader.ID(), 1))
	if got := b.stats["app.sends_frozen"]; got != 1 {
		t.Fatalf("frozen sends = %d", got)
	}
	b.pump() // completes the 2PC, releasing the queued send
	if len(b.app(0, 1).delivered) != 1 {
		t.Fatalf("delivered = %v", b.app(0, 1).delivered)
	}
	// The send was released after the commit, so its SendSN is the new
	// SN and no late-log fold happened.
	if b.stats["app.late_logged"] != 0 {
		t.Fatal("released send should not be late-logged")
	}
}

func TestInterClusterMessageForcesCLC(t *testing.T) {
	b := newTestbed(t, []int{1, 1}, 0, false)
	src, dst := b.node(0, 0), b.node(1, 0)

	// The very first message carries the sender's initial SN 1, which
	// exceeds the receiver's DDV entry 0: a CLC is forced before
	// delivery — exactly m1 in the paper's §4 sample.
	src.Send(dst.ID(), payload(src.ID(), 1))
	b.pump()
	if dst.SN() != 2 {
		t.Fatalf("dst sn=%d, want forced CLC", dst.SN())
	}
	if got := b.stats["clc.committed.c1.forced"]; got != 1 {
		t.Fatalf("forced commits = %d", got)
	}
	if got := b.stats["clc.committed.c1.unforced"]; got != 0 {
		t.Fatalf("unforced commits = %d", got)
	}
	if len(b.app(1, 0).delivered) != 1 {
		t.Fatal("held message not delivered after forced CLC")
	}
	if got := dst.DDVSnapshot(); !got.Equal(DDV{1, 2}) {
		t.Fatalf("dst ddv = %v", got)
	}

	// Same SN again: no further forced CLC — m2 in the sample ("the
	// received SN is equal to cluster 1's DDV entry").
	src.Send(dst.ID(), payload(src.ID(), 2))
	b.pump()
	if dst.SN() != 2 || b.stats["clc.committed.c1.forced"] != 1 {
		t.Fatalf("redundant forced CLC: sn=%d forced=%d", dst.SN(), b.stats["clc.committed.c1.forced"])
	}

	// A new CLC in cluster 0 re-arms the trigger.
	b.commitCLC(0)
	src.Send(dst.ID(), payload(src.ID(), 3))
	b.pump()
	if dst.SN() != 3 || b.stats["clc.committed.c1.forced"] != 2 {
		t.Fatalf("second force missing: sn=%d forced=%d", dst.SN(), b.stats["clc.committed.c1.forced"])
	}
}

func TestAcksRecordedInSenderLog(t *testing.T) {
	b := newTestbed(t, []int{1, 1}, 0, false)
	src, dst := b.node(0, 0), b.node(1, 0)
	src.Send(dst.ID(), payload(src.ID(), 1))
	b.pump()
	if src.LogLen() != 1 {
		t.Fatalf("log len = %d", src.LogLen())
	}
	e := src.log[0]
	if !e.acked || e.ackSN != 2 {
		// Delivered after the forced CLC committed: "acknowledged with
		// the local SN + 1" (§4) — receiver was at SN 1, delivers at 2.
		t.Fatalf("ack: acked=%v sn=%d, want acked with 2", e.acked, e.ackSN)
	}
	if e.piggySN != 1 || e.sendSN != 1 {
		t.Fatalf("entry piggy=%d send=%d", e.piggySN, e.sendSN)
	}
}

func TestTransitiveDDVPreventsLaterForce(t *testing.T) {
	b := newTestbed(t, []int{1, 1, 1}, 0, true)
	c0, c1, c2 := b.node(0, 0), b.node(1, 0), b.node(2, 0)

	b.commitCLC(0)
	c0.Send(c1.ID(), payload(c0.ID(), 1)) // c1 learns ddv[c0]=2, forces
	b.pump()
	if got := c1.DDVSnapshot(); !got.Equal(DDV{2, 2, 0}) {
		t.Fatalf("c1 ddv = %v", got)
	}
	c1.Send(c2.ID(), payload(c1.ID(), 1)) // piggybacks the whole DDV
	b.pump()
	// c2 absorbed both the direct (c1) and transitive (c0) dependency.
	if got := c2.DDVSnapshot(); !got.Equal(DDV{2, 2, 2}) {
		t.Fatalf("c2 ddv = %v", got)
	}
	forcedBefore := b.stats["clc.committed.c2.forced"]

	// A direct message from c0 with SN 2 now forces nothing: c2 already
	// knows about c0's checkpoint transitively (§7's rationale).
	c0.Send(c2.ID(), payload(c0.ID(), 2))
	b.pump()
	if got := b.stats["clc.committed.c2.forced"]; got != forcedBefore {
		t.Fatalf("transitive knowledge should prevent the force: %d -> %d", forcedBefore, got)
	}
	if len(b.app(2, 0).delivered) != 2 {
		t.Fatal("message not delivered")
	}
}

func TestResendRuleOnRollbackAlert(t *testing.T) {
	b := newTestbed(t, []int{1, 1}, 0, false)
	src, dst := b.node(0, 0), b.node(1, 0)
	src.Send(dst.ID(), payload(src.ID(), 1)) // forces CLC 2, acked with SN 2
	b.pump()
	b.commitCLC(1)                           // cluster 1 commits CLC 3
	src.Send(dst.ID(), payload(src.ID(), 2)) // acked with SN 3
	b.pump()
	if src.LogLen() != 2 {
		t.Fatalf("log len = %d", src.LogLen())
	}

	// Cluster 1 announces a rollback to SN 3: the message acked with 2
	// is captured by CLC 3 and is NOT resent; the message acked with 3
	// was delivered after CLC 3 committed and IS resent.
	src.OnMessage(dst.ID(), RollbackAlert{Cluster: 1, NewSN: 3, NewEpoch: 1})
	resent := 0
	for _, m := range b.queue {
		// The pooled send path queues *AppMsg boxes.
		am, ok := m.msg.(AppMsg)
		if !ok {
			if p, pok := m.msg.(*AppMsg); pok {
				am, ok = *p, true
			}
		}
		if ok && am.Resend {
			resent++
			if am.Payload.ID.Seq != 2 {
				t.Fatalf("resent wrong message %v", am.Payload.ID)
			}
			if am.DstEpoch != 1 {
				t.Fatalf("resend DstEpoch = %d", am.DstEpoch)
			}
		}
	}
	if resent != 1 {
		t.Fatalf("resent = %d, want 1", resent)
	}
	b.queue = nil // drop; this unit test only inspects the resend set
}

func TestClusterRollbackRestoresState(t *testing.T) {
	b := newTestbed(t, []int{3, 1}, 1, false)
	leader := b.node(0, 0)

	// Some intra-cluster traffic, then a checkpoint, then more traffic.
	b.node(0, 1).Send(b.node(0, 2).ID(), payload(b.node(0, 1).ID(), 1))
	b.pump()
	b.commitCLC(0)
	b.node(0, 1).Send(b.node(0, 2).ID(), payload(b.node(0, 1).ID(), 2))
	b.pump()
	if got := len(b.app(0, 2).delivered); got != 2 {
		t.Fatalf("delivered before failure = %d", got)
	}

	// Node 2 fails; the detector notifies the leader.
	b.node(0, 2).Fail()
	b.node(0, 2).Restart()
	leader.OnFailureDetected(b.node(0, 2).ID())
	b.pump()

	for i := 0; i < 3; i++ {
		n := b.node(0, i)
		if n.SN() != 2 || n.CurrentEpoch() != 1 {
			t.Fatalf("node %d: sn=%d epoch=%d", i, n.SN(), n.CurrentEpoch())
		}
		if n.Frozen() {
			t.Fatalf("node %d still frozen after resume", i)
		}
	}
	// The post-checkpoint delivery was rolled back.
	if got := len(b.app(0, 2).delivered); got != 1 {
		t.Fatalf("delivered after rollback = %d, want 1", got)
	}
	// The restarted node rebuilt its checkpoint list from its
	// neighbour's metadata.
	if got := b.node(0, 2).StoredCount(); got != 2 {
		t.Fatalf("restarted node stores %d CLCs", got)
	}
	if b.stats["storage.recovered_states"] != 1 {
		t.Fatalf("recovered states = %d", b.stats["storage.recovered_states"])
	}
	// Cluster 1 received an alert.
	if b.stats["rollback.alerts_sent"] != 1 {
		t.Fatalf("alerts = %d", b.stats["rollback.alerts_sent"])
	}
}

func TestCascadingRollbackAcrossClusters(t *testing.T) {
	b := newTestbed(t, []int{2, 2}, 1, false)
	c0l, c1l := b.node(0, 0), b.node(1, 0)

	b.commitCLC(0)
	c0l.Send(b.node(1, 1).ID(), payload(c0l.ID(), 1)) // forces CLC in c1
	b.pump()
	if c1l.SN() != 2 {
		t.Fatalf("c1 sn=%d", c1l.SN())
	}
	b.commitCLC(1) // an extra CLC in c1 after the dependency

	// Cluster 0 fails: roll back to its last CLC (SN 2); cluster 1's
	// DDV entry for c0 is 2 >= 2, so it must cascade to its oldest CLC
	// with entry >= 2 — the forced CLC 2.
	b.node(0, 1).Fail()
	b.node(0, 1).Restart()
	c0l.OnFailureDetected(b.node(0, 1).ID())
	b.pump()

	if c0l.SN() != 2 {
		t.Fatalf("c0 sn=%d", c0l.SN())
	}
	for i := 0; i < 2; i++ {
		n := b.node(1, i)
		if n.SN() != 2 || n.CurrentEpoch() != 1 {
			t.Fatalf("c1 node %d: sn=%d epoch=%d (no cascade?)", i, n.SN(), n.CurrentEpoch())
		}
	}
	if b.stats["rollback.cascaded"] != 1 {
		t.Fatalf("cascaded = %d", b.stats["rollback.cascaded"])
	}
	if b.stats["invariant.rollback_target_missing"] != 0 {
		t.Fatal("rollback target missing")
	}
}

func TestIndependentClusterSurvivesForeignFailure(t *testing.T) {
	b := newTestbed(t, []int{2, 2}, 1, false)
	// No inter-cluster traffic at all: "it is independent checkpointing
	// if there are no inter-cluster messages" (§6).
	b.commitCLC(0)
	b.commitCLC(1)
	b.commitCLC(1)

	b.node(0, 1).Fail()
	b.node(0, 1).Restart()
	b.node(0, 0).OnFailureDetected(b.node(0, 1).ID())
	b.pump()

	for i := 0; i < 2; i++ {
		n := b.node(1, i)
		if n.SN() != 3 || n.CurrentEpoch() != 0 {
			t.Fatalf("cluster 1 perturbed: sn=%d epoch=%d", n.SN(), n.CurrentEpoch())
		}
	}
}

func TestGarbageCollectionDropsOldCLCs(t *testing.T) {
	sizes := []int{2, 2}
	b := newTestbed(t, sizes, 1, false)
	// Make the leader of cluster 0 the GC initiator.
	b.node(0, 0).cfg.GCInitiator = true

	for k := 0; k < 5; k++ {
		b.commitCLC(0)
		b.commitCLC(1)
	}
	if got := b.node(0, 1).StoredCount(); got != 6 {
		t.Fatalf("stored before GC = %d", got)
	}
	b.node(0, 0).OnTimer(TimerGC)
	b.pump()

	// No inter-cluster dependencies: every cluster can only ever roll
	// back to its own last CLC, so exactly one survives per node.
	for _, n := range b.nodes {
		if got := n.StoredCount(); got != 1 {
			t.Fatalf("node %v stores %d CLCs after GC", n.ID(), got)
		}
	}
	if b.stats["gc.rounds_completed"] != 1 {
		t.Fatalf("gc rounds = %v", b.stats)
	}

	// Rollback still works after GC.
	b.node(0, 1).Fail()
	b.node(0, 1).Restart()
	b.node(0, 0).OnFailureDetected(b.node(0, 1).ID())
	b.pump()
	if b.stats["invariant.rollback_target_missing"] != 0 {
		t.Fatal("GC removed a needed checkpoint")
	}
	if b.node(0, 0).SN() != 6 {
		t.Fatalf("post-GC rollback sn=%d", b.node(0, 0).SN())
	}
}

func TestGarbageCollectionKeepsCrossClusterTargets(t *testing.T) {
	b := newTestbed(t, []int{1, 1}, 0, false)
	b.node(0, 0).cfg.GCInitiator = true
	src, dst := b.node(0, 0), b.node(1, 0)

	b.commitCLC(0)                           // c0 at SN 2
	src.Send(dst.ID(), payload(src.ID(), 1)) // c1 forces CLC 2
	b.pump()
	b.commitCLC(0) // c0 at SN 3
	b.commitCLC(1) // c1 at SN 3
	b.commitCLC(1) // c1 at SN 4

	src.OnTimer(TimerGC)
	b.pump()

	// If c0 fails it restores SN 3; c1's DDV entry for c0 is 2 < 3, so
	// c1 keeps SN 4. If c1 fails it restores SN 4; c0's entry for c1 is
	// 0 < 4: no cascade. So min SNs are (3, 4): each cluster keeps only
	// its newest CLC.
	if got := src.StoredCount(); got != 1 {
		t.Fatalf("c0 stores %d", got)
	}
	if got := dst.StoredCount(); got != 1 {
		t.Fatalf("c1 stores %d", got)
	}
	// And the logged message, acknowledged with SN 1 < 3, was purged.
	if got := src.LogLen(); got != 0 {
		t.Fatalf("log len after GC = %d", got)
	}
}

func TestRingGCEquivalentToCentralized(t *testing.T) {
	for _, ring := range []bool{false, true} {
		b := newTestbed(t, []int{1, 1, 1}, 0, false)
		init := b.node(0, 0)
		init.cfg.GCInitiator = true
		init.cfg.RingGC = ring

		b.commitCLC(0)
		b.node(0, 0).Send(b.node(1, 0).ID(), payload(b.node(0, 0).ID(), 1))
		b.pump()
		for k := 0; k < 3; k++ {
			b.commitCLC(0)
			b.commitCLC(1)
			b.commitCLC(2)
		}
		init.OnTimer(TimerGC)
		b.pump()
		if b.stats["gc.rounds_completed"] != 1 {
			t.Fatalf("ring=%v: rounds = %d", ring, b.stats["gc.rounds_completed"])
		}
		for _, n := range b.nodes {
			if n.StoredCount() < 1 || n.StoredCount() > 2 {
				t.Fatalf("ring=%v: node %v stores %d", ring, n.ID(), n.StoredCount())
			}
		}
		// A post-GC failure in each cluster must still resolve.
		lists := [][]Meta{b.node(0, 0).StoredMetas(), b.node(1, 0).StoredMetas(), b.node(2, 0).StoredMetas()}
		currents := []DDV{b.node(0, 0).DDVSnapshot(), b.node(1, 0).DDVSnapshot(), b.node(2, 0).DDVSnapshot()}
		for f := 0; f < 3; f++ {
			if _, err := SimulateFailure(lists, currents, topology.ClusterID(f)); err != nil {
				t.Fatalf("ring=%v faulty=%d: %v", ring, f, err)
			}
		}
	}
}

func TestConfigValidation(t *testing.T) {
	mk := func(mut func(*Config)) func() {
		return func() {
			cfg := Config{
				ID:           topology.NodeID{Cluster: 0, Index: 0},
				Clusters:     2,
				ClusterSizes: []int{2, 2},
			}
			mut(&cfg)
			NewNode(cfg, &mockEnv{timers: map[TimerKind]sim.Duration{}, bed: &testbed{stats: map[string]uint64{}}}, &mockApp{})
		}
	}
	cases := map[string]func(){
		"size mismatch":  mk(func(c *Config) { c.ClusterSizes = []int{2} }),
		"bad cluster":    mk(func(c *Config) { c.ID.Cluster = 5 }),
		"bad index":      mk(func(c *Config) { c.ID.Index = 7 }),
		"replica excess": mk(func(c *Config) { c.Replicas = 2 }),
	}
	for name, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestMessageWireSizes(t *testing.T) {
	m := AppMsg{Payload: AppPayload{Size: 100}}
	if m.WireSize() <= 100 {
		t.Fatal("wire size must include protocol overhead")
	}
	withDDV := AppMsg{Payload: AppPayload{Size: 100}, PiggyDDV: NewDDV(8)}
	if withDDV.WireSize() <= m.WireSize() {
		t.Fatal("piggybacked DDV must cost wire bytes")
	}
	if controlSize(Replica{Size: 1 << 20}) < 1<<20 {
		t.Fatal("replica transfer must be priced at state size")
	}
	if controlSize(CLCAck{}) <= 0 {
		t.Fatal("control messages must have positive size")
	}
}

func ExampleDDV_String() {
	fmt.Println(DDV{3, 0, 4})
	// Output: [3 0 4]
}
