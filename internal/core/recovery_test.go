package core

import (
	"math/rand"
	"testing"

	"repro/internal/topology"
)

func TestOldestWith(t *testing.T) {
	list := []Meta{
		{SN: 1, DDV: DDV{1, 0, 0}},
		{SN: 2, DDV: DDV{2, 3, 0}},
		{SN: 3, DDV: DDV{3, 5, 0}},
	}
	if i := OldestWith(list, 1, 3); i != 1 {
		t.Fatalf("OldestWith(c1,3) = %d, want 1", i)
	}
	if i := OldestWith(list, 1, 4); i != 2 {
		t.Fatalf("OldestWith(c1,4) = %d, want 2", i)
	}
	if i := OldestWith(list, 1, 6); i != -1 {
		t.Fatalf("OldestWith(c1,6) = %d, want -1", i)
	}
	if i := OldestWith(list, 2, 1); i != -1 {
		t.Fatalf("OldestWith(c2,1) = %d, want -1", i)
	}
}

func TestNeedsRollback(t *testing.T) {
	ddv := DDV{3, 0, 4}
	if !NeedsRollback(ddv, 2, 4) || !NeedsRollback(ddv, 2, 3) {
		t.Fatal("should need rollback when entry >= alerted SN")
	}
	if NeedsRollback(ddv, 1, 1) || NeedsRollback(ddv, 2, 5) {
		t.Fatal("should not need rollback when entry < alerted SN")
	}
}

// TestSimulateFailurePaperExample mirrors the structure of the paper's
// §4 sample execution on three clusters: a failure in cluster 1 (the
// paper's "cluster 2") rolls it back to its last CLC; cluster 2 (the
// paper's "cluster 3") depends on it and rolls back; cluster 0 (the
// paper's "cluster 1") survives the first alert but is dragged back by
// cluster 2's alert because of a DDV entry of 4 for cluster 2; no
// further rollbacks occur after the third alert.
func TestSimulateFailurePaperExample(t *testing.T) {
	lists := [][]Meta{
		{ // cluster 0: forced CLC 3 records the m5 dependency on cluster 2
			{SN: 1, DDV: DDV{1, 0, 0}},
			{SN: 2, DDV: DDV{2, 0, 0}},
			{SN: 3, DDV: DDV{3, 0, 4}},
		},
		{ // cluster 1 (faulty): three CLCs, last has SN 3
			{SN: 1, DDV: DDV{1, 1, 0}},
			{SN: 2, DDV: DDV{1, 2, 0}},
			{SN: 3, DDV: DDV{1, 3, 0}},
		},
		{ // cluster 2: forced CLC 3 depends on cluster 1's SN 3
			{SN: 1, DDV: DDV{0, 0, 1}},
			{SN: 2, DDV: DDV{0, 2, 2}},
			{SN: 3, DDV: DDV{0, 3, 3}},
		},
	}
	currents := []DDV{
		{3, 0, 4},
		{1, 3, 0},
		{0, 4, 4}, // received one more message from cluster 1 since CLC 3
	}
	rl, err := SimulateFailure(lists, currents, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Faulty cluster 1 restores its last CLC (SN 3).
	if !rl.RolledBack[1] || rl.SN[1] != 3 || rl.Index[1] != 2 {
		t.Fatalf("faulty cluster: %+v", rl)
	}
	// Cluster 2 had DDV entry 4 >= 3 for cluster 1: rolls back to its
	// oldest CLC with entry >= 3, which is CLC 3.
	if !rl.RolledBack[2] || rl.SN[2] != 3 || rl.Index[2] != 2 {
		t.Fatalf("cluster 2: %+v", rl)
	}
	// Cluster 0 does not depend on cluster 1 (entry 0), but its entry 4
	// for cluster 2 >= 3 drags it to CLC 3.
	if !rl.RolledBack[0] || rl.SN[0] != 3 || rl.Index[0] != 2 {
		t.Fatalf("cluster 0: %+v", rl)
	}
	// The paper's cascade: faulty alert + cluster 2's alert + cluster
	// 0's alert, each to 2 clusters.
	if rl.Alerts != 6 {
		t.Fatalf("alerts = %d, want 6", rl.Alerts)
	}
	if rl.Depth() != 3 {
		t.Fatalf("depth = %d", rl.Depth())
	}
}

func TestSimulateFailureNoDependencies(t *testing.T) {
	// Two clusters that never communicated: a failure rolls back only
	// the faulty one ("independent checkpointing if there are no
	// inter-cluster messages", §6).
	lists := [][]Meta{
		{{SN: 1, DDV: DDV{1, 0}}, {SN: 2, DDV: DDV{2, 0}}},
		{{SN: 1, DDV: DDV{0, 1}}},
	}
	currents := []DDV{{2, 0}, {0, 1}}
	rl, err := SimulateFailure(lists, currents, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rl.RolledBack[0] || rl.RolledBack[1] {
		t.Fatalf("rollback set = %v", rl.RolledBack)
	}
	if rl.SN[0] != 2 || rl.SN[1] != 1 {
		t.Fatalf("SNs = %v", rl.SN)
	}
}

func TestSimulateFailureErrors(t *testing.T) {
	if _, err := SimulateFailure([][]Meta{{}}, []DDV{{0}}, 0); err == nil {
		t.Fatal("empty checkpoint list should error")
	}
	if _, err := SimulateFailure([][]Meta{{}}, []DDV{{0}, {0}}, 0); err == nil {
		t.Fatal("length mismatch should error")
	}
}

// abstractFederation evolves n clusters under the protocol's abstract
// semantics (unforced CLCs, message receipt forcing CLCs) and yields
// valid checkpoint histories for property testing.
type abstractFederation struct {
	n        int
	sn       []SN
	ddv      []DDV
	lists    [][]Meta
	rng      *rand.Rand
	received int
}

func newAbstractFederation(n int, seed int64) *abstractFederation {
	f := &abstractFederation{n: n, rng: rand.New(rand.NewSource(seed))}
	f.sn = make([]SN, n)
	f.ddv = make([]DDV, n)
	f.lists = make([][]Meta, n)
	for i := 0; i < n; i++ {
		// Mirror the protocol: the initial "beginning of the
		// application" checkpoint carries SN 1.
		f.sn[i] = 1
		f.ddv[i] = NewDDV(n)
		f.ddv[i][i] = 1
		f.lists[i] = []Meta{{SN: 1, DDV: f.ddv[i].Clone()}}
	}
	return f
}

func (f *abstractFederation) commit(j int, forcedEntries DDV) {
	f.sn[j]++
	if forcedEntries != nil {
		f.ddv[j].Merge(forcedEntries)
	}
	f.ddv[j][j] = f.sn[j]
	f.lists[j] = append(f.lists[j], Meta{SN: f.sn[j], DDV: f.ddv[j].Clone()})
}

func (f *abstractFederation) step() {
	switch f.rng.Intn(3) {
	case 0: // unforced CLC somewhere
		f.commit(f.rng.Intn(f.n), nil)
	default: // inter-cluster message
		src := f.rng.Intn(f.n)
		dst := f.rng.Intn(f.n)
		if src == dst {
			return
		}
		f.received++
		piggy := f.sn[src]
		if piggy > f.ddv[dst][src] {
			forced := NewDDV(f.n)
			forced[src] = piggy
			f.commit(dst, forced) // forced CLC before delivery
		}
	}
}

// Property: on any protocol-consistent history, SimulateFailure
// terminates without errors, never rolls a cluster forward, and the
// faulty cluster restores exactly its newest stored checkpoint.
func TestSimulateFailureOnRandomHistories(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		for _, n := range []int{2, 3, 5} {
			f := newAbstractFederation(n, seed)
			steps := 5 + f.rng.Intn(60)
			for s := 0; s < steps; s++ {
				f.step()
			}
			for faulty := 0; faulty < n; faulty++ {
				rl, err := SimulateFailure(f.lists, f.ddv, topology.ClusterID(faulty))
				if err != nil {
					t.Fatalf("seed=%d n=%d faulty=%d: %v", seed, n, faulty, err)
				}
				for j := 0; j < n; j++ {
					if rl.SN[j] > f.sn[j] {
						t.Fatalf("cluster %d rolled forward: %d > %d", j, rl.SN[j], f.sn[j])
					}
					if rl.RolledBack[j] && rl.Index[j] >= len(f.lists[j]) {
						t.Fatalf("cluster %d bogus index", j)
					}
				}
				last := f.lists[faulty][len(f.lists[faulty])-1]
				if rl.SN[faulty] > last.SN {
					t.Fatalf("faulty cluster above its last checkpoint")
				}
			}
		}
	}
}

// Property (GC safety): after dropping checkpoints below SmallestSNs,
// every single-cluster failure still finds all its rollback targets,
// and the recovery line is unchanged.
func TestGarbageCollectionSafetyProperty(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		n := 2 + int(seed%3)
		f := newAbstractFederation(n, seed*7+1)
		steps := 10 + f.rng.Intn(80)
		for s := 0; s < steps; s++ {
			f.step()
		}
		min, err := SmallestSNs(f.lists, f.ddv)
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		before := make([][]SN, n)
		for faulty := 0; faulty < n; faulty++ {
			rl, err := SimulateFailure(f.lists, f.ddv, topology.ClusterID(faulty))
			if err != nil {
				t.Fatal(err)
			}
			before[faulty] = rl.SN
		}
		// Apply the GC drop rule.
		pruned := make([][]Meta, n)
		for j := 0; j < n; j++ {
			if min[j] > f.sn[j] {
				t.Fatalf("threshold above current SN")
			}
			for _, m := range f.lists[j] {
				if m.SN >= min[j] {
					pruned[j] = append(pruned[j], m)
				}
			}
			if len(pruned[j]) == 0 {
				t.Fatalf("seed=%d: GC emptied cluster %d's store", seed, j)
			}
		}
		for faulty := 0; faulty < n; faulty++ {
			rl, err := SimulateFailure(pruned, f.ddv, topology.ClusterID(faulty))
			if err != nil {
				t.Fatalf("seed=%d faulty=%d after GC: %v", seed, faulty, err)
			}
			for j := 0; j < n; j++ {
				if rl.SN[j] != before[faulty][j] {
					t.Fatalf("seed=%d: GC changed recovery line (faulty=%d cluster=%d %d != %d)",
						seed, faulty, j, rl.SN[j], before[faulty][j])
				}
			}
		}
	}
}

// Property: rollback targets are always forced checkpoints whose state
// precedes the dangerous delivery — i.e. the restored SN of any
// non-faulty rolled-back cluster equals the SN of a stored checkpoint.
func TestRecoveryLinePointsAtStoredCheckpoints(t *testing.T) {
	for seed := int64(100); seed < 130; seed++ {
		f := newAbstractFederation(3, seed)
		for s := 0; s < 70; s++ {
			f.step()
		}
		for faulty := 0; faulty < 3; faulty++ {
			rl, err := SimulateFailure(f.lists, f.ddv, topology.ClusterID(faulty))
			if err != nil {
				t.Fatal(err)
			}
			for j := 0; j < 3; j++ {
				if !rl.RolledBack[j] {
					continue
				}
				m := f.lists[j][rl.Index[j]]
				if m.SN != rl.SN[j] {
					t.Fatalf("restored SN %d != checkpoint SN %d", rl.SN[j], m.SN)
				}
			}
		}
	}
}
