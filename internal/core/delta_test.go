package core

import (
	"math/rand"
	"testing"
)

// Unit and fuzz coverage for the delta wire primitives: the dirty set,
// the pair arena's isolation guarantees, and — most importantly — that
// random delta apply/merge sequences reconstruct exactly what the dense
// DDV operations compute (the oracle the whole encoding leans on).

func TestDirtySetBasics(t *testing.T) {
	var s DirtySet
	s.Init(8)
	s.Add(3)
	s.Add(5)
	s.Add(3) // duplicate
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	got := append([]int32(nil), s.Indices()...)
	if got[0] != 3 || got[1] != 5 {
		t.Fatalf("Indices = %v, want [3 5]", got)
	}
	s.Refresh(func(i int) bool { return i == 5 })
	if s.Len() != 1 || s.Indices()[0] != 5 {
		t.Fatalf("after Refresh: %v", s.Indices())
	}
	s.Add(3) // must be re-addable after Refresh dropped it
	if s.Len() != 2 {
		t.Fatalf("re-Add after Refresh failed: %v", s.Indices())
	}
	s.Reset()
	if s.Len() != 0 {
		t.Fatalf("Reset left %v", s.Indices())
	}
	s.Add(0)
	if s.Len() != 1 {
		t.Fatal("Add after Reset failed")
	}
}

func TestPairArenaCloneIsolation(t *testing.T) {
	var ar PairArena
	a := ar.Clone([]DDVPair{{Idx: 1, SN: 2}, {Idx: 3, SN: 4}})
	b := ar.Clone([]DDVPair{{Idx: 5, SN: 6}})
	// Appending to an earlier cut must never bleed into a later one
	// (full-capacity slicing).
	a = append(a, DDVPair{Idx: 9, SN: 9})
	if b[0].Idx != 5 || b[0].SN != 6 {
		t.Fatalf("arena cut corrupted by neighbour append: %v", b)
	}
	if ar.Clone(nil) != nil {
		t.Fatal("Clone(nil) must stay nil")
	}
	// Oversized requests get their own chunk.
	big := make([]DDVPair, 3*pairArenaChunk)
	c := ar.Clone(big)
	if len(c) != len(big) {
		t.Fatalf("oversized clone len %d", len(c))
	}
}

// TestDeltaMergeOracle drives random sparse merges against the dense
// Merge oracle: a DDV updated through mergePairs (with dirty tracking)
// must equal one updated through dense element-wise max, and the dirty
// set must hold exactly the indices that ever rose.
func TestDeltaMergeOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		w := 2 + rng.Intn(30)
		sparse := NewDDV(w)
		dense := NewDDV(w)
		var dirty DirtySet
		dirty.Init(w)
		rose := make(map[int32]bool)
		for step := 0; step < 50; step++ {
			np := rng.Intn(4)
			pairs := make([]DDVPair, 0, np)
			other := NewDDV(w)
			for p := 0; p < np; p++ {
				i := int32(rng.Intn(w))
				v := SN(rng.Intn(20))
				pairs = append(pairs, DDVPair{Idx: i, SN: v})
				if v > other[i] {
					other[i] = v
				}
			}
			for _, pr := range pairs {
				if pr.SN > sparse[pr.Idx] {
					rose[pr.Idx] = true
				}
			}
			sparse.mergePairs(pairs, &dirty)
			dense.Merge(other)
		}
		if !sparse.Equal(dense) {
			t.Fatalf("trial %d: sparse %v != dense %v", trial, sparse, dense)
		}
		if dirty.Len() != len(rose) {
			t.Fatalf("trial %d: dirty %v, want %v", trial, dirty.Indices(), rose)
		}
		for _, i := range dirty.Indices() {
			if !rose[i] {
				t.Fatalf("trial %d: index %d dirty but never rose", trial, i)
			}
		}
	}
}

// storageBytesRecount is the pre-counter walk of StorageBytes,
// including the map iterations the running counters replaced; the two
// must always agree.
func (n *Node) storageBytesRecount() uint64 {
	var total uint64
	for _, r := range n.clcs {
		if !r.remote {
			total += uint64(r.stateSize)
		}
		for _, l := range r.lateLog {
			total += uint64(l.msg.Payload.Size)
		}
	}
	for _, rep := range n.replicas {
		total += uint64(rep.Size)
	}
	for _, e := range n.log {
		total += uint64(e.payload.Size)
	}
	for _, ml := range n.mirrorLogs {
		for _, e := range ml {
			total += uint64(e.Payload.Size)
		}
	}
	return total
}

// TestStorageBytesCountersExact drives a testbed cluster through
// commits and checks the running replica/mirror byte counters against
// a full recount (rollback and GC sites are covered by the federation
// differential suite, which pins the storage.bytes series).
func TestStorageBytesCountersExact(t *testing.T) {
	bed := newTestbed(t, []int{3, 3}, 1, false)
	bed.pump()
	for c := 0; c < 2; c++ {
		for i := 0; i < 4; i++ {
			bed.commitCLC(c)
		}
	}
	for c := 0; c < 2; c++ {
		for i := 0; i < 3; i++ {
			n := bed.node(c, i)
			if got, want := n.StorageBytes(), n.storageBytesRecount(); got != want {
				t.Errorf("node c%d/%d: StorageBytes %d != recount %d", c, i, got, want)
			}
		}
	}
}

// TestExamCursorEpochQualified pins the rollback-window guard of the
// cluster-shared clean-exam cursor: a cursor advanced under one epoch
// must not let a node whose epoch moved on (rollback — its DDV may
// have dropped) skip its own full re-examination, even when the pipe
// decoder saw no new deltas. Without the epoch qualifier the message
// below would be delivered without forcing a CLC; the dense encoding
// (and therefore the delta contract) requires a hold.
func TestExamCursorEpochQualified(t *testing.T) {
	bed := newWideTestbed(t, 4, false)
	sender, receiver := bed.node(1, 0), bed.node(0, 0)
	dst := receiver.ID()
	// Warm up: first message forces the initial dependency, commit
	// settles, second message examines cleanly and advances the
	// cursor at epoch 0.
	sender.Send(dst, payload(sender.ID(), 1))
	sender.Send(dst, payload(sender.ID(), 2))
	bed.pump()
	if bed.stats["cic.held"] != 1 {
		t.Fatalf("warmup: held = %d, want 1", bed.stats["cic.held"])
	}
	// Mimic the hazard window of a cluster rollback observed from a
	// peer: this node's DDV dropped and its epoch advanced, but the
	// shared cursor was re-advanced by a not-yet-rolled-back peer (so
	// no ResetSeen happened after the advance).
	receiver.ddv[1] = 0
	receiver.ddvChanged()
	receiver.epoch = 1
	// The sender's vector is unchanged, so the pipe carries no new
	// pairs — the cursor alone would claim "covered". The stale-epoch
	// cursor must be distrusted: a full exam re-raises the dependency
	// and holds the message for a forced CLC.
	sender.Send(dst, payload(sender.ID(), 3))
	bed.pump()
	if bed.stats["cic.held"] != 2 {
		t.Fatalf("post-rollback-window message was not re-examined: held = %d, want 2",
			bed.stats["cic.held"])
	}
}

// FuzzDeltaCodec feeds a codec random vector histories interleaved
// with decodes, receiver epoch boundaries (rollbacks that lower the
// receiver's DDV) and exam-cursor traffic, and asserts:
//
//   - the decoder reconstructs every shipped vector exactly (the
//     lockstep contract),
//   - the clean-exam cursor machinery — replayed exactly as
//     examineDeltaPiggy runs it, epoch qualifier included — never
//     claims an entry covered that actually exceeds the receiver's
//     DDV, even when epoch boundaries arrive duplicated (repeated
//     ResetSeen) or reordered against decodes, and even when the
//     boundary happens *without* a reset (a not-yet-rolled-back peer
//     re-advanced the shared cursor with the old epoch's higher DDV —
//     the hazard the seenEpoch guard exists for).
func FuzzDeltaCodec(f *testing.F) {
	f.Add(uint64(1), 4, 40)
	f.Add(uint64(99), 16, 120)
	f.Add(uint64(7), 64, 30)
	f.Add(uint64(1234), 8, 400)
	f.Fuzz(func(t *testing.T, seed uint64, width, steps int) {
		if width < 1 || width > 256 || steps < 1 || steps > 400 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(int64(seed)))
		var cd DeltaCodec
		cd.Init(width)
		var ar PairArena
		cur := NewDDV(width)
		gen := uint64(1)

		type shipped struct {
			vec   DDV
			pairs []DDVPair
		}
		var inflight []shipped // encoded, not yet decoded (FIFO pipe)
		rddv := NewDDV(width)  // the receiver's committed DDV
		recvEpoch := Epoch(0)

		// exam replays examineDeltaPiggy's cursor logic against the
		// decoder state and asserts the safety direction: every entry
		// of the decoded vector above the receiver's DDV is reported.
		exam := func() {
			var raised []int32
			cursorValid := cd.seenEpoch == recvEpoch
			switch {
			case cursorValid && cd.ver == cd.seen:
				// Claimed covered: nothing may exceed rddv.
			case cursorValid && cd.ver-cd.seen <= examReplayMax:
				for v := cd.seen; v < cd.ver; v++ {
					for _, p := range cd.journal[v%codecJournal] {
						if cd.dec[p.Idx] > rddv[p.Idx] {
							raised = append(raised, p.Idx)
						}
					}
				}
			default:
				for i, v := range cd.dec {
					if v > rddv[i] {
						raised = append(raised, int32(i))
					}
				}
			}
			reported := make(map[int32]bool, len(raised))
			for _, i := range raised {
				reported[i] = true
			}
			for i, v := range cd.dec {
				if v > rddv[i] && !reported[int32(i)] {
					t.Fatalf("exam missed entry %d: decoded %d > receiver %d (seen=%d ver=%d seenEpoch=%d epoch=%d)",
						i, v, rddv[i], cd.seen, cd.ver, cd.seenEpoch, recvEpoch)
				}
			}
			if len(raised) == 0 {
				cd.seen = cd.ver
				cd.seenEpoch = recvEpoch
			} else {
				// The raised entries force a CLC; model its commit so
				// later exams run against the raised vector.
				for _, i := range raised {
					if cd.dec[i] > rddv[i] {
						rddv[i] = cd.dec[i]
					}
				}
			}
		}

		for s := 0; s < steps; s++ {
			switch rng.Intn(5) {
			case 0: // mutate the sender vector (raises and drops)
				i := rng.Intn(width)
				cur[i] = SN(rng.Intn(30))
				gen++
			case 1: // encode one message onto the pipe
				pairs := cd.Encode(cur, gen, &ar)
				if pairs == nil {
					// Unchanged-generation or no-diff sends ship no
					// delta and never reach the decoder.
					continue
				}
				inflight = append(inflight, shipped{vec: cur.Clone(), pairs: pairs})
			case 2: // deliver the oldest in-flight message, then examine
				if len(inflight) == 0 {
					continue
				}
				m := inflight[0]
				inflight = inflight[1:]
				cd.Decode(m.pairs)
				if !cd.Current().Equal(m.vec) {
					t.Fatalf("decode mismatch: got %v want %v", cd.Current(), m.vec)
				}
				exam()
			case 3: // epoch boundary with reset: the receiver rolled
				// back (its DDV drops) and discarded the cursor. A
				// duplicated boundary (this case drawn twice in a row)
				// must be as harmless as one.
				for i := range rddv {
					if rddv[i] > 0 && rng.Intn(2) == 0 {
						rddv[i] = SN(rng.Intn(int(rddv[i]) + 1))
					}
				}
				recvEpoch++
				cd.ResetSeen()
			case 4: // epoch boundary without reset: a peer still in the
				// old epoch re-advanced the shared cursor after the
				// reset — only the seenEpoch qualifier protects the
				// next exam.
				for i := range rddv {
					if rddv[i] > 0 && rng.Intn(2) == 0 {
						rddv[i] = SN(rng.Intn(int(rddv[i]) + 1))
					}
				}
				recvEpoch++
			}
		}
	})
}
