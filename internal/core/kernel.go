package core

// This file holds the width-strided DDV kernels: the element-wise merge,
// compare and diff loops of the protocol rewritten to stride over the
// vector in fixed-size blocks. Each block is viewed through an array
// pointer, which both eliminates bounds checks in the inner loop and
// lets a whole block be compared in one shot — the common case on wide
// federations is that almost every block is untouched, so merges and
// diffs become a sequence of 64-byte equality probes that skip straight
// past the unchanged regions, and the loops run at memory bandwidth
// rather than per-element branch cost. The kernels are exact drop-in
// replacements for the naive loops; kernel_test.go fuzzes them against
// the per-element references at widths 8/64/256/1024.

// ddvBlock is the kernel stride in SN entries (64 bytes, one cache
// line). Vectors shorter than a block fall through to the scalar tail.
const ddvBlock = 8

// equalSN reports element-wise equality of two equal-length vectors.
func equalSN(d, o []SN) bool {
	if len(d) != len(o) {
		return false
	}
	i := 0
	for ; i+ddvBlock <= len(d); i += ddvBlock {
		if *(*[ddvBlock]SN)(d[i:]) != *(*[ddvBlock]SN)(o[i:]) {
			return false
		}
	}
	for ; i < len(d); i++ {
		if d[i] != o[i] {
			return false
		}
	}
	return true
}

// mergeMax raises d to the element-wise maximum with o and reports
// whether any entry changed. Blocks where o equals d cannot raise
// anything and are skipped whole.
func mergeMax(d, o []SN) bool {
	changed := false
	i := 0
	for ; i+ddvBlock <= len(o); i += ddvBlock {
		db := (*[ddvBlock]SN)(d[i:])
		ob := (*[ddvBlock]SN)(o[i:])
		if *db == *ob {
			continue
		}
		for j := 0; j < ddvBlock; j++ {
			if ob[j] > db[j] {
				db[j] = ob[j]
				changed = true
			}
		}
	}
	for ; i < len(o); i++ {
		if o[i] > d[i] {
			d[i] = o[i]
			changed = true
		}
	}
	return changed
}

// mergeMaxDirty is mergeMax recording every raised index into dirty,
// the kernel behind the pending-force accumulation: later scans walk
// the dirty set instead of the full width.
func mergeMaxDirty(d, o []SN, dirty *DirtySet) bool {
	changed := false
	i := 0
	for ; i+ddvBlock <= len(o); i += ddvBlock {
		db := (*[ddvBlock]SN)(d[i:])
		ob := (*[ddvBlock]SN)(o[i:])
		if *db == *ob {
			continue
		}
		for j := 0; j < ddvBlock; j++ {
			if ob[j] > db[j] {
				db[j] = ob[j]
				dirty.Add(i + j)
				changed = true
			}
		}
	}
	for ; i < len(o); i++ {
		if o[i] > d[i] {
			d[i] = o[i]
			dirty.Add(i)
			changed = true
		}
	}
	return changed
}

// dominatesSN reports whether d[i] >= o[i] for every entry. Equal
// blocks dominate trivially and are skipped whole.
func dominatesSN(d, o []SN) bool {
	i := 0
	for ; i+ddvBlock <= len(d); i += ddvBlock {
		db := (*[ddvBlock]SN)(d[i:])
		ob := (*[ddvBlock]SN)(o[i:])
		if *db == *ob {
			continue
		}
		for j := 0; j < ddvBlock; j++ {
			if db[j] < ob[j] {
				return false
			}
		}
	}
	for ; i < len(d); i++ {
		if d[i] < o[i] {
			return false
		}
	}
	return true
}

// raisedPairs appends one pair per entry where cur exceeds base,
// skipping index skip (the examining node's own cluster); equal blocks
// raise nothing and are skipped whole. This is the dense exam scan of
// the CIC test.
func raisedPairs(buf []DDVPair, cur, base []SN, skip int32) []DDVPair {
	i := 0
	for ; i+ddvBlock <= len(cur); i += ddvBlock {
		cb := (*[ddvBlock]SN)(cur[i:])
		bb := (*[ddvBlock]SN)(base[i:])
		if *cb == *bb {
			continue
		}
		for j := 0; j < ddvBlock; j++ {
			if idx := int32(i + j); idx != skip && cb[j] > bb[j] {
				buf = append(buf, DDVPair{Idx: idx, SN: cb[j]})
			}
		}
	}
	for ; i < len(cur); i++ {
		if idx := int32(i); idx != skip && cur[i] > base[i] {
			buf = append(buf, DDVPair{Idx: idx, SN: cur[i]})
		}
	}
	return buf
}

// diffPairsKernel appends one pair per entry where cur differs from
// base; equal blocks contribute nothing and are skipped whole.
func diffPairsKernel(buf []DDVPair, cur, base []SN) []DDVPair {
	i := 0
	for ; i+ddvBlock <= len(cur); i += ddvBlock {
		cb := (*[ddvBlock]SN)(cur[i:])
		bb := (*[ddvBlock]SN)(base[i:])
		if *cb == *bb {
			continue
		}
		for j := 0; j < ddvBlock; j++ {
			if cb[j] != bb[j] {
				buf = append(buf, DDVPair{Idx: int32(i + j), SN: cb[j]})
			}
		}
	}
	for ; i < len(cur); i++ {
		if cur[i] != base[i] {
			buf = append(buf, DDVPair{Idx: int32(i), SN: cur[i]})
		}
	}
	return buf
}
