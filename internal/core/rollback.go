package core

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/topology"
)

// This file implements failure handling (§3.4): the failed node's
// cluster rolls back to its last committed CLC, alerts every other
// cluster, and alerts cascade — each receiving cluster rolls back to
// the oldest checkpoint whose DDV entry for the alerting cluster is >=
// the alerted SN — until the recovery line is reached. Clusters that do
// not roll back resend the logged messages the restored clusters lost.

// recoverPending tracks a restarted node waiting for its replica.
type recoverPending struct {
	cmd         RollbackCmd
	coordinator topology.NodeID
}

// cascadeRecord remembers one acted-on rollback alert (see
// Node.cascadeMemo).
type cascadeRecord struct {
	alertSN  SN
	targetSN SN
}

// startClusterRollback begins a rollback of this node's cluster to its
// last committed CLC, with this node as coordinator (it is the node the
// failure detector notified). A detection arriving while a rollback is
// already in flight — a *second* simultaneous fault in this cluster —
// restarts the rollback under a fresh epoch so the newly restarted node
// receives its command too; with replication degree >= 2 its state is
// still recoverable (§7's configurable-replication extension).
func (n *Node) startClusterRollback() {
	if n.rbActive {
		n.env.Stat(n.keys.rollbackRestarted, 1)
	}
	last := n.clcs[len(n.clcs)-1]
	n.initiateRollback(last.meta.SN)
}

// initiateRollback coordinates a rollback of the whole cluster to the
// stored checkpoint with sequence number toSN.
func (n *Node) initiateRollback(toSN SN) {
	newEpoch := n.epoch + 1
	n.rbActive = true
	n.rbSeq = toSN
	n.rbEpoch = newEpoch
	n.rbSince = n.env.Now()
	n.rbAcks = make(map[int]bool, n.size)
	n.alertsSeen++
	n.env.Stat(n.keys.rollbackCount, 1)
	n.env.Trace(sim.TraceInfo, "ROLLBACK to CLC %d (epoch %d)", toSN, newEpoch)

	cmd := RollbackCmd{ToSN: toSN, NewEpoch: newEpoch}
	for i := 0; i < n.size; i++ {
		if i == n.id.Index {
			continue
		}
		n.env.Send(topology.NodeID{Cluster: n.cluster, Index: i}, controlSize(cmd), cmd)
	}
	// "One node in each other cluster in the federation receives a
	// rollback alert. It contains the faulty cluster's SN that
	// corresponds to the CLC to which it rolls back."
	alert := RollbackAlert{Cluster: n.cluster, NewSN: toSN, NewEpoch: newEpoch}
	for c := topology.ClusterID(0); int(c) < n.cfg.Clusters; c++ {
		if c == n.cluster {
			continue
		}
		n.env.Stat("rollback.alerts_sent", 1)
		n.env.Send(n.leaderOf(c), controlSize(alert), alert)
	}

	if n.performLocalRollback(toSN, newEpoch, n.id) {
		n.rbAcks[n.id.Index] = true
		n.checkRollbackDone()
	}
}

// performLocalRollback restores this node to the stored checkpoint with
// sequence number toSN and moves to newEpoch. Application sends stay
// frozen until the coordinator's RollbackResume barrier. It reports
// whether the restore completed synchronously; when the checkpoint's
// local state is remote (lost in an earlier crash) it returns false and
// onRecoverStateResp finishes the job, acking coordinator.
func (n *Node) performLocalRollback(toSN SN, newEpoch Epoch, coordinator topology.NodeID) bool {
	n.abortCheckpoint()
	n.sendQueue = nil // sends of the aborted execution are re-executed
	n.heldInter = nil // in-flight senders will resend (they are logged)
	// Deferred messages addressed to the post-rollback epoch survive;
	// everything else belongs to the aborted execution.
	kept := n.inboundQueue[:0]
	for _, in := range n.inboundQueue {
		if in.msg.DstEpoch >= newEpoch {
			kept = append(kept, in)
		}
	}
	n.inboundQueue = kept

	// Discard checkpoints from the aborted future.
	for len(n.clcs) > 0 && n.clcs[len(n.clcs)-1].meta.SN > toSN {
		n.clcs = n.clcs[:len(n.clcs)-1]
	}
	for k, rep := range n.replicas {
		if k.seq > toSN {
			n.dropReplica(k, rep)
		}
	}
	for owner, entries := range n.mirrorLogs {
		kept := entries[:0]
		for _, e := range entries {
			if e.SendSN < toSN {
				kept = append(kept, e)
			} else {
				n.mirrorBytes -= uint64(e.Payload.Size)
			}
		}
		n.mirrorLogs[owner] = kept
	}

	rec := n.recordWith(toSN)
	if rec == nil {
		panic(fmt.Sprintf("core: %v has no checkpoint %d to restore", n.id, toSN))
	}
	if rec.remote {
		// Our local copy was lost in an earlier crash; fetch it back
		// from the replica holders before acking (async). All holders
		// are asked — one of them may be down itself under multiple
		// simultaneous faults; the first response wins.
		n.recoverWait = &recoverPending{
			cmd:         RollbackCmd{ToSN: toSN, NewEpoch: newEpoch},
			coordinator: coordinator,
		}
		req := RecoverStateReq{Seq: toSN, Epoch: newEpoch, Owner: n.id}
		for _, h := range n.replicaTargets() {
			n.env.Send(h, controlSize(req), req)
		}
		return false
	}
	n.finishLocalRollback(rec, toSN, newEpoch)
	return true
}

func (n *Node) finishLocalRollback(rec *clcRecord, toSN SN, newEpoch Epoch) {
	n.app.Restore(rec.state)
	for _, late := range rec.lateLog {
		n.env.Stat("app.redelivered_late", 1)
		n.app.Deliver(late.src, late.msg.Payload)
	}
	n.sn = toSN
	// Copy into the node's owned DDV buffer; the stored Meta keeps its
	// own vector, so neither side aliases the other.
	n.ddv.CopyFrom(rec.meta.DDV)
	n.resyncDeltaState(rec.meta.DDV)
	n.epoch = newEpoch
	n.knownEpoch[n.cluster] = newEpoch
	n.pruneLogForOwnRollback(toSN)
	n.anchorPending = true
	n.frozenSends = true // until RollbackResume
	n.frozenDelivs = false
	if n.obs != nil {
		n.obs.ObserveRollback(n.id, toSN, newEpoch, n.ddv)
	}
	n.drainInbound()
}

// resyncDeltaState re-anchors the delta-tracking state after this
// node's DDV was restored from the stored dense vector ddv: the commit
// base becomes that vector (the commit chain restarts from it on both
// leader and participants — they restore the same checkpoint), lazy
// receipts are gone (the restored DDV covers exactly the checkpoint),
// and the per-pipe piggyback cursors are zeroed because the DDV may
// have decreased — the next message on each pipe re-examines the full
// width, exactly as the dense encoding would compare it.
func (n *Node) resyncDeltaState(ddv DDV) {
	n.commitBase.CopyFrom(ddv)
	n.recvDirty.Reset()
	n.gcScanValid = false
	n.resetAckAccum()
	n.ddvChanged()
	n.resetPiggyExam()
}

// rebuildDeltaChain recomputes the stored records' commit-delta pairs
// by diffing consecutive metas — used after a recovery rebuilt the
// checkpoint list from RecoverStateResp metadata, where the original
// pairs are unknown. O(width x stored CLCs), on the rare crash-recovery
// path only.
func (n *Node) rebuildDeltaChain() {
	if n.denseWire {
		return
	}
	for i, r := range n.clcs {
		if i == 0 {
			r.deltaPairs = nil // chain anchor: the dense Meta is shipped
			continue
		}
		n.pairScratch = diffPairs(n.pairScratch[:0], r.meta.DDV, n.clcs[i-1].meta.DDV)
		r.deltaPairs = n.pairArena.Clone(n.pairScratch)
	}
}

// recordWith returns the stored record with the given SN, or nil.
func (n *Node) recordWith(sn SN) *clcRecord {
	for _, r := range n.clcs {
		if r.meta.SN == sn {
			return r
		}
	}
	return nil
}

// onRollbackCmd executes the coordinator's rollback order on a peer.
func (n *Node) onRollbackCmd(src topology.NodeID, m RollbackCmd) {
	if src.Cluster != n.cluster {
		return
	}
	if n.lostState {
		// Restarted after a crash: volatile memory (including the
		// local checkpoint parts) is gone; fetch the state back from
		// the stable-storage neighbours (§3.1). Every holder is asked
		// in case some are down too; the first response wins.
		n.recoverWait = &recoverPending{cmd: m, coordinator: src}
		req := RecoverStateReq{Seq: m.ToSN, Epoch: m.NewEpoch, Owner: n.id}
		for _, h := range n.replicaTargets() {
			n.env.Send(h, controlSize(req), req)
		}
		return
	}
	if m.NewEpoch <= n.epoch {
		return // stale duplicate
	}
	if n.rbActive && m.NewEpoch > n.rbEpoch {
		// A newer rollback supersedes the one we were coordinating.
		n.rbActive = false
	}
	if n.performLocalRollback(m.ToSN, m.NewEpoch, src) {
		ack := RollbackAck{ToSN: m.ToSN, Epoch: m.NewEpoch, From: n.id}
		n.env.Send(src, controlSize(ack), ack)
	}
}

// onRecoverStateReq serves a stored replica back to its owner.
func (n *Node) onRecoverStateReq(src topology.NodeID, m RecoverStateReq) {
	rep, ok := n.replicas[replicaKey{owner: m.Owner, seq: m.Seq}]
	if !ok {
		// The owner queries every holder; this one cannot serve (e.g.
		// it restarted recently itself). Another holder usually can —
		// a truly unrecoverable state shows up as a stalled rollback,
		// which the harness invariants catch.
		n.env.Stat("storage.replica_miss_queries", 1)
		n.env.Trace(sim.TraceInfo, "replica %d for %v not held here", m.Seq, m.Owner)
		return
	}
	metas := make([]Meta, 0, len(n.clcs))
	var older []OlderState
	for _, r := range n.clcs {
		if r.meta.SN > m.Seq {
			continue
		}
		metas = append(metas, Meta{SN: r.meta.SN, DDV: r.meta.DDV.Clone()})
		if r.meta.SN == m.Seq {
			continue
		}
		if old, ok := n.replicas[replicaKey{owner: m.Owner, seq: r.meta.SN}]; ok {
			older = append(older, OlderState{SN: old.Seq, State: old.State, Size: old.Size})
		}
	}
	resp := RecoverStateResp{
		Seq: m.Seq, Epoch: m.Epoch, Owner: m.Owner,
		State: rep.State, Size: rep.Size, Metas: metas, Older: older,
		Log: append([]LogMirror(nil), n.mirrorLogs[m.Owner]...),
	}
	n.env.Send(src, controlSize(resp), resp)
}

// onRecoverStateResp completes a restarted node's recovery: rebuild the
// checkpoint list from the cluster metadata (local states stay remote
// on the neighbour), restore the fetched state and ack the rollback.
func (n *Node) onRecoverStateResp(src topology.NodeID, m RecoverStateResp) {
	if n.recoverWait == nil || m.Seq != n.recoverWait.cmd.ToSN {
		return
	}
	pend := *n.recoverWait
	n.recoverWait = nil
	n.lostState = false

	olderBySN := make(map[SN]OlderState, len(m.Older))
	for _, o := range m.Older {
		olderBySN[o.SN] = o
	}
	n.clcs = n.clcs[:0]
	for _, meta := range m.Metas {
		if meta.SN > pend.cmd.ToSN {
			continue
		}
		rec := &clcRecord{
			meta:   Meta{SN: meta.SN, DDV: meta.DDV.Clone()},
			at:     n.env.Now(),
			remote: true,
		}
		switch {
		case meta.SN == pend.cmd.ToSN:
			rec.state = m.State
			rec.stateSize = m.Size
			rec.remote = false
		default:
			if o, ok := olderBySN[meta.SN]; ok {
				rec.state = o.State
				rec.stateSize = o.Size
				rec.remote = false
			}
		}
		n.clcs = append(n.clcs, rec)
	}
	n.app.Restore(m.State)
	n.sn = pend.cmd.ToSN
	rec := n.recordWith(pend.cmd.ToSN)
	n.ddv.CopyFrom(rec.meta.DDV)
	n.resyncDeltaState(rec.meta.DDV)
	n.rebuildDeltaChain()
	n.epoch = pend.cmd.NewEpoch
	n.knownEpoch[n.cluster] = n.epoch
	n.anchorPending = true
	n.frozenSends = true
	n.frozenDelivs = false
	n.env.Stat("storage.recovered_states", 1)
	if n.obs != nil {
		n.obs.ObserveRollback(n.id, pend.cmd.ToSN, pend.cmd.NewEpoch, n.ddv)
	}

	// Re-adopt the mirrored message log: entries whose send belongs to
	// the restored state, conservatively unacknowledged — the resume
	// barrier re-pushes them and receivers deduplicate.
	n.log = n.log[:0]
	for _, e := range m.Log {
		if e.SendSN >= pend.cmd.ToSN {
			continue
		}
		n.log = append(n.log, &logEntry{
			msgID: e.MsgID, dst: e.Dst, dstCluster: e.Dst.Cluster,
			payload: e.Payload, piggySN: e.PiggySN, piggyDDV: e.PiggyDDV,
			sendSN: e.SendSN,
		})
		n.env.Stat("log.recovered_entries", 1)
	}
	// Re-adoption is a log-append site like doSend: fold it into the
	// running high-water mark so a crash never deflates LogPeak.
	if len(n.log) > n.logPeak {
		n.logPeak = len(n.log)
	}

	// The crash lost the replicas this node held for its neighbours;
	// ask their owners to push them again so the next fault is covered.
	for r := 1; r <= n.cfg.Replicas; r++ {
		owner := topology.NodeID{Cluster: n.cluster, Index: (n.id.Index - r + n.size) % n.size}
		req := ReReplicateReq{Epoch: n.epoch}
		n.env.Send(owner, controlSize(req), req)
	}

	if pend.coordinator == n.id {
		// We were restoring a remote state during a self-coordinated
		// rollback step.
		n.rbAcks[n.id.Index] = true
		n.checkRollbackDone()
		return
	}
	ack := RollbackAck{ToSN: pend.cmd.ToSN, Epoch: pend.cmd.NewEpoch, From: n.id}
	n.env.Send(pend.coordinator, controlSize(ack), ack)
}

// onReReplicateReq pushes this node's stored checkpoint parts (and its
// message-log mirror) back to a restarted replica holder.
func (n *Node) onReReplicateReq(src topology.NodeID, m ReReplicateReq) {
	if m.Epoch != n.epoch || src.Cluster != n.cluster {
		return
	}
	for _, rec := range n.clcs {
		if rec.remote {
			continue // our own copy lives remotely; nothing to push
		}
		rep := Replica{Seq: rec.meta.SN, Epoch: n.epoch, Owner: n.id, State: rec.state, Size: rec.stateSize}
		n.env.Send(src, controlSize(rep), rep)
		n.env.Stat("storage.rereplicated", 1)
	}
	for _, e := range n.log {
		mir := LogMirror{
			Owner: n.id, MsgID: e.msgID, Dst: e.dst, Payload: e.payload,
			PiggySN: e.piggySN, PiggyDDV: e.piggyDDV, SendSN: e.sendSN,
		}
		n.env.Send(src, controlSize(mir), mir)
	}
}

// onLogMirror stores a neighbour's message-log entry.
func (n *Node) onLogMirror(src topology.NodeID, m LogMirror) {
	if src.Cluster != n.cluster {
		return
	}
	for _, e := range n.mirrorLogs[m.Owner] {
		if e.MsgID == m.MsgID {
			return // duplicate (re-replication)
		}
	}
	n.mirrorBytes += uint64(m.Payload.Size)
	n.mirrorLogs[m.Owner] = append(n.mirrorLogs[m.Owner], m)
}

// onLogTrim intersects a neighbour's mirrored log with its live set.
func (n *Node) onLogTrim(src topology.NodeID, m LogTrim) {
	if src.Cluster != n.cluster {
		return
	}
	alive := make(map[uint64]bool, len(m.Kept))
	for _, id := range m.Kept {
		alive[id] = true
	}
	kept := n.mirrorLogs[src][:0]
	for _, e := range n.mirrorLogs[src] {
		if alive[e.MsgID] {
			kept = append(kept, e)
		} else {
			n.mirrorBytes -= uint64(e.Payload.Size)
		}
	}
	n.mirrorLogs[src] = kept
}

// onRollbackAck gathers restoration confirmations at the coordinator.
func (n *Node) onRollbackAck(src topology.NodeID, m RollbackAck) {
	if !n.rbActive || m.Epoch != n.rbEpoch {
		return
	}
	n.rbAcks[src.Index] = true
	n.checkRollbackDone()
}

func (n *Node) checkRollbackDone() {
	if !n.rbActive || len(n.rbAcks) < n.size {
		return
	}
	n.rbActive = false
	// Recovery time: detection-to-resume for the whole cluster,
	// dominated by state restores (and replica fetches after a crash).
	n.env.StatSeries(n.keys.rollbackDuration,
		n.env.Now().Sub(n.rbSince).Seconds())
	n.env.Trace(sim.TraceInfo, "rollback to %d complete, resuming (epoch %d)", n.rbSeq, n.rbEpoch)
	res := RollbackResume{Epoch: n.rbEpoch}
	for i := 0; i < n.size; i++ {
		if i == n.id.Index {
			continue
		}
		n.env.Send(topology.NodeID{Cluster: n.cluster, Index: i}, controlSize(res), res)
	}
	n.resumeAfterRollback()
	// Alerts that arrived while restoring are decided now.
	pending := n.deferredAlert
	n.deferredAlert = nil
	for _, a := range pending {
		n.decideRollbackFromAlert(a)
	}
}

// onRollbackResume releases the send freeze on a peer.
func (n *Node) onRollbackResume(src topology.NodeID, m RollbackResume) {
	if m.Epoch != n.epoch {
		return
	}
	n.resumeAfterRollback()
	// Alerts that arrived while this node was recovering its lost
	// state were deferred (onRollbackAlert); decide them now that the
	// cluster's rollback completed. Without this, an alert reaching a
	// leader mid-recovery was deferred forever — the cluster never
	// cascaded, leaving orphan deliveries in place (found by the
	// invariant oracle under chaos schedules; the coordinator path
	// has always drained its own deferred alerts in checkRollbackDone).
	pending := n.deferredAlert
	n.deferredAlert = nil
	for _, a := range pending {
		n.decideRollbackFromAlert(a)
	}
}

func (n *Node) resumeAfterRollback() {
	n.frozenSends = false
	n.drainSendQueue()
	n.drainInbound()
	// Held inter-cluster messages re-demand their forced CLC now: a
	// force request issued while the leader was mid-recovery was
	// dropped, and without this retry a cluster with an infinite
	// unforced-CLC timer would hold such messages forever.
	n.reexamineHeld()
	// Re-issue every surviving log entry that is not (or no longer)
	// acknowledged. This closes a race the paper does not discuss: a
	// resend triggered by another cluster's alert can be emitted just
	// before our own cascaded rollback and then be discarded by the
	// receiver as stale-epoch traffic; the entry survives our rollback
	// (its send is part of the restored state), so pushing it again
	// under the new epoch guarantees delivery. Duplicates are
	// acceptable — receivers deduplicate by logical message identity.
	for _, e := range n.log {
		if e.acked {
			continue
		}
		m := AppMsg{
			MsgID:      e.msgID,
			Payload:    e.payload,
			SrcCluster: n.cluster,
			SrcEpoch:   n.epoch,
			SendSN:     e.piggySN,
			PiggyDDV:   e.piggyDDV,
			Resend:     true,
			// Target the receiver cluster's newest known epoch: if its
			// own rollback command is still in flight (it can queue
			// behind bulk state transfers), the receiver defers this
			// copy instead of consuming it in the doomed state.
			DstEpoch: n.knownEpoch[e.dstCluster],
		}
		n.env.Stat("log.resent_after_recovery", 1)
		n.env.SendApp(e.dst, m.WireSize(), m)
	}
	if n.leader() {
		n.env.SetTimer(TimerCLC, n.cfg.CLCPeriod)
		n.recordStoredStat()
	}
}

// onRollbackAlert handles the §3.4 alert, both the inter-cluster
// original (at the leader) and its intra-cluster re-broadcast (at every
// node): update the known epoch, resend qualifying logged messages and
// — at the leader — decide whether this cluster must roll back too.
func (n *Node) onRollbackAlert(src topology.NodeID, m RollbackAlert) {
	if m.Cluster == n.cluster {
		return // echo of our own alert; impossible in practice
	}
	if m.NewEpoch > n.knownEpoch[m.Cluster] {
		n.knownEpoch[m.Cluster] = m.NewEpoch
	}
	if m.NewEpoch > n.alertEpoch[m.Cluster] {
		n.alertEpoch[m.Cluster] = m.NewEpoch
		n.alertSN[m.Cluster] = m.NewSN
	}
	n.alertsSeen++
	// "Even if its cluster does not need to rollback, a node receiving
	// a rollback alert broadcasts it in its cluster. Logged messages
	// sent to nodes in the faulty cluster ... will then be resent."
	n.resendLoggedTo(m.Cluster, m.NewSN, m.NewEpoch)
	external := src.Cluster != n.cluster
	if external {
		for i := 0; i < n.size; i++ {
			if i == n.id.Index {
				continue
			}
			n.env.Send(topology.NodeID{Cluster: n.cluster, Index: i}, controlSize(m), m)
		}
		if n.lostState || n.rbActive {
			n.deferredAlert = append(n.deferredAlert, m)
			return
		}
		n.decideRollbackFromAlert(m)
	}
}

// decideRollbackFromAlert applies the rollback test of §3.4 at the
// leader: roll back iff the DDV entry for the alerting cluster is >=
// the alerted SN, to the oldest checkpoint whose entry is >= that SN.
func (n *Node) decideRollbackFromAlert(m RollbackAlert) {
	if !NeedsRollback(n.ddv, m.Cluster, m.NewSN) {
		return
	}
	var idx int
	if n.cfg.Mode == ModeIndependent {
		// No forced checkpoints exist: fall back behind the dependency
		// (domino effect; the initial CLC always qualifies).
		idx = n.newestStoredBelow(m.Cluster, m.NewSN)
		if idx < 0 {
			idx = 0
		}
	} else {
		idx = n.oldestStoredWith(m.Cluster, m.NewSN)
		if idx == -1 {
			// The garbage collector's safety rule makes this unreachable;
			// fall back to the initial checkpoint, which depends on nothing.
			n.env.Stat("invariant.rollback_target_missing", 1)
			n.env.Trace(sim.TraceInfo, "NO rollback target for alert c%d sn=%d; using oldest", m.Cluster, m.NewSN)
			idx = 0
		}
	}
	target := n.clcs[idx].meta.SN
	// Live counterpart of SimulateFailure's "only roll back further"
	// rule: the restored forced CLC's recorded DDV still names the
	// dependency that triggered the rollback (its *state* does not —
	// the dangerous delivery happened after its commit), so the §3.4
	// test keeps firing on repeats of the same alert. If we already
	// rolled back to this very checkpoint for this alert SN and have
	// not committed since, there is nothing left to undo; acting again
	// would bump our epoch, re-alert every cluster and feed a mutual
	// cascade that never terminates. The "not committed since" leg is
	// what makes this sound: any post-restore delivery forces the
	// anchor CLC first (see Node.anchorPending), so a *new* sender
	// rollback to the same SN — whose discarded sends this cluster may
	// have consumed — finds n.sn above the target and re-rolls instead
	// of being mistaken for a duplicate alert.
	if memo, ok := n.cascadeMemo[m.Cluster]; ok &&
		memo.alertSN == m.NewSN && memo.targetSN == target && n.sn == target {
		n.env.Stat("rollback.cascade_suppressed", 1)
		return
	}
	n.cascadeMemo[m.Cluster] = cascadeRecord{alertSN: m.NewSN, targetSN: target}
	n.env.Stat("rollback.cascaded", 1)
	n.initiateRollback(target)
}
