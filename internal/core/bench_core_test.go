package core

import (
	"fmt"
	"testing"

	"repro/internal/topology"
)

// Micro-benchmarks of the protocol's hot paths: DDV operations, the
// recovery-line fixpoint and the garbage collector's analysis.

func benchHistory(nClusters, steps int) ([][]Meta, []DDV) {
	f := newAbstractFederation(nClusters, 42)
	for s := 0; s < steps; s++ {
		f.step()
	}
	return f.lists, f.ddv
}

// BenchmarkDDVMerge measures the clone+merge pair exactly as the
// production commit path performs it: the copy is cut from the node's
// DDV arena (one chunk allocation per 64 vectors, 0 amortized
// allocs/op), then raised element-wise.
func BenchmarkDDVMerge(b *testing.B) {
	var ar DDVArena
	ar.Init(8)
	a := DDV{5, 3, 9, 0, 2, 7, 1, 4}
	c := DDV{4, 6, 8, 1, 3, 5, 2, 0}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := ar.Clone(a)
		d.Merge(c)
	}
}

// BenchmarkDDVMergeHeap is the pre-arena variant (one heap slice per
// clone), kept for comparison.
func BenchmarkDDVMergeHeap(b *testing.B) {
	a := DDV{5, 3, 9, 0, 2, 7, 1, 4}
	c := DDV{4, 6, 8, 1, 3, 5, 2, 0}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := a.Clone()
		d.Merge(c)
	}
}

// BenchmarkDDVClone isolates the clone itself — it runs on every
// inter-cluster receive that raises a dependency and on every
// checkpoint commit, so its allocation count is a protocol hot path.
// The heap variant allocates per clone by design (DDV.Clone is the
// plain-Go escape hatch); the arena sub-benches are the production
// path — one chunk allocation per 64 vectors, 0 amortized allocs/op
// at every width.
func BenchmarkDDVClone(b *testing.B) {
	names := map[int]string{2: "2clusters", 8: "8clusters", 64: "64clusters", 256: "256clusters"}
	for _, size := range []int{2, 8, 64, 256} {
		d := NewDDV(size)
		for i := range d {
			d[i] = SN(i * 3)
		}
		b.Run(names[size], func(b *testing.B) {
			b.ReportAllocs()
			var sink DDV
			for i := 0; i < b.N; i++ {
				sink = d.Clone()
			}
			_ = sink
		})
		b.Run("arena/"+names[size], func(b *testing.B) {
			var ar DDVArena
			ar.Init(size)
			b.ReportAllocs()
			var sink DDV
			for i := 0; i < b.N; i++ {
				sink = ar.Clone(d)
			}
			_ = sink
		})
	}
}

// BenchmarkDDVSnapshot measures the public DDV accessor the harness's
// invariant checks and tests call: arena-backed, so the steady state
// allocates nothing at any width.
func BenchmarkDDVSnapshot(b *testing.B) {
	bed := newTestbed(b, []int{2, 2}, 1, false)
	n := bed.node(0, 0)
	b.ReportAllocs()
	var sink DDV
	for i := 0; i < b.N; i++ {
		sink = n.DDVSnapshot()
	}
	_ = sink
}

// BenchmarkPiggybackMessage is the width-parameterized steady-state
// per-message bench of the dependency piggyback path: one transitive
// inter-cluster application message (send, wire transit, receive-side
// examination, ack) between two clusters of a `width`-cluster
// federation, with the dependency already covered so no checkpoint is
// forced — the fast path every message takes between commits. The
// dense wire encoding clones and examines one SN per cluster on every
// message (cost grows with width); the delta encoding ships only
// changed entries (none in steady state), so its cost is near-flat
// across widths.
func BenchmarkPiggybackMessage(b *testing.B) {
	for _, enc := range []struct {
		name  string
		dense bool
	}{{"delta", false}, {"dense", true}} {
		for _, width := range []int{8, 64, 256, 1024} {
			b.Run(fmt.Sprintf("%s/%dclusters", enc.name, width), func(b *testing.B) {
				bed := newWideTestbed(b, width, enc.dense)
				sender, receiver := bed.node(1, 0), bed.node(0, 0)
				dst := receiver.ID()
				app := bed.app(0, 0)
				// Warm up: the first message forces the initial-SN
				// dependency; settle the forced commit, then the
				// steady state begins.
				sender.Send(dst, payload(sender.ID(), 1))
				bed.pump()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sender.Send(dst, payload(sender.ID(), uint64(i+2)))
					bed.pump()
					// Keep the bench on the message path: drop the
					// sender's optimistic log (otherwise the ack scan
					// and the log append grow O(N)) and the mock
					// app's delivery journal.
					sender.log = sender.log[:0]
					app.delivered = app.delivered[:0]
				}
			})
		}
	}
}

// BenchmarkNodeOnMessage measures the per-message protocol cost at a
// receiving node through the public OnMessage entry point: an
// inter-cluster application message whose dependency is already
// covered (the non-forcing fast path every message takes between
// checkpoints). It drives the pooled-box path the simulation harness
// uses — a *AppMsg in, the AppAck out through a recycled box — so the
// steady state performs no allocation at all.
func BenchmarkNodeOnMessage(b *testing.B) {
	bed := newTestbed(b, []int{2, 2}, 1, false)
	dst := bed.node(0, 0)
	src := topology.NodeID{Cluster: 1, Index: 0}
	bed.pump()
	m := &AppMsg{
		MsgID:      1,
		Payload:    AppPayload{ID: LogicalID{Src: src, Seq: 1}, Size: 4096},
		SrcCluster: 1,
		SendSN:     0, // below the receiver's DDV entry: no force
	}
	app := bed.app(0, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MsgID = uint64(i + 2)
		m.Payload.ID.Seq = uint64(i + 2)
		dst.OnMessage(src, m)
		// Recycle the emitted ack boxes and keep the harness buffers
		// flat so the measurement stays on the protocol path, not on
		// the mock's unbounded growth.
		for _, qm := range bed.queue {
			bed.reclaim(qm.msg)
		}
		bed.queue = bed.queue[:0]
		app.delivered = app.delivered[:0]
	}
}

func BenchmarkOldestWith(b *testing.B) {
	lists, _ := benchHistory(4, 400)
	list := lists[1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		OldestWith(list, 0, SN(i%50))
	}
}

func BenchmarkSimulateFailure(b *testing.B) {
	for _, size := range []struct {
		name              string
		clusters, history int
	}{
		{"3clusters/100clcs", 3, 300},
		{"8clusters/400clcs", 8, 1200},
	} {
		b.Run(size.name, func(b *testing.B) {
			lists, currents := benchHistory(size.clusters, size.history)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := SimulateFailure(lists, currents, topology.ClusterID(i%size.clusters)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSmallestSNs(b *testing.B) {
	lists, currents := benchHistory(5, 600)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SmallestSNs(lists, currents); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterCheckpoint measures one full two-phase commit across
// a cluster through the synchronous testbed (protocol cost without
// network latency).
func BenchmarkClusterCheckpoint(b *testing.B) {
	for _, nodes := range []int{4, 16, 64} {
		b.Run(map[int]string{4: "4nodes", 16: "16nodes", 64: "64nodes"}[nodes], func(b *testing.B) {
			bed := newTestbed(b, []int{nodes}, 1, false)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bed.commitCLC(0)
			}
		})
	}
}
