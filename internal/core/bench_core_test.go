package core

import (
	"testing"

	"repro/internal/topology"
)

// Micro-benchmarks of the protocol's hot paths: DDV operations, the
// recovery-line fixpoint and the garbage collector's analysis.

func benchHistory(nClusters, steps int) ([][]Meta, []DDV) {
	f := newAbstractFederation(nClusters, 42)
	for s := 0; s < steps; s++ {
		f.step()
	}
	return f.lists, f.ddv
}

func BenchmarkDDVMerge(b *testing.B) {
	a := DDV{5, 3, 9, 0, 2, 7, 1, 4}
	c := DDV{4, 6, 8, 1, 3, 5, 2, 0}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := a.Clone()
		d.Merge(c)
	}
}

func BenchmarkOldestWith(b *testing.B) {
	lists, _ := benchHistory(4, 400)
	list := lists[1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		OldestWith(list, 0, SN(i%50))
	}
}

func BenchmarkSimulateFailure(b *testing.B) {
	for _, size := range []struct {
		name              string
		clusters, history int
	}{
		{"3clusters/100clcs", 3, 300},
		{"8clusters/400clcs", 8, 1200},
	} {
		b.Run(size.name, func(b *testing.B) {
			lists, currents := benchHistory(size.clusters, size.history)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := SimulateFailure(lists, currents, topology.ClusterID(i%size.clusters)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSmallestSNs(b *testing.B) {
	lists, currents := benchHistory(5, 600)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SmallestSNs(lists, currents); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterCheckpoint measures one full two-phase commit across
// a cluster through the synchronous testbed (protocol cost without
// network latency).
func BenchmarkClusterCheckpoint(b *testing.B) {
	for _, nodes := range []int{4, 16, 64} {
		b.Run(map[int]string{4: "4nodes", 16: "16nodes", 64: "64nodes"}[nodes], func(b *testing.B) {
			bed := newTestbed(&testing.T{}, []int{nodes}, 1, false)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bed.commitCLC(0)
			}
		})
	}
}
