package core
