package core

import (
	"repro/internal/topology"
)

// Msg is implemented by every protocol wire message. All fields are
// exported so the live runtime can encode them with encoding/gob.
type Msg interface{ ProtocolMessage() }

// ReclaimableMsg is implemented by pooled message boxes (e.g. the
// baseline protocols' wire boxes): the simulation harness calls
// ReclaimMsgBox after the destination's OnMessage returned, handing the
// box back to its owner's free list. Receivers copy what they keep and
// never retain the box itself.
type ReclaimableMsg interface {
	Msg
	ReclaimMsgBox()
}

// Wire sizes in bytes, used to price protocol traffic in the network
// model. Piggybacked vectors add 8 bytes per cluster.
//
// Pricing note for the delta wire representation (delta.go): messages
// carry dependency metadata either as a dense DDV or as sparse
// (index, SN) pairs plus the width they stand for, and both forms are
// priced at the dense width. Transmission delays, byte counters and
// recorded goldens are therefore invariant under the encoding switch;
// the delta form saves simulator time and allocations, not modeled
// bytes. (A real deployment would also shrink the wire; modeling that
// would change every recorded result, so it is deliberately not done.)
const (
	snBytes        = 8
	headerBytes    = 16 // ids, flags
	controlBytes   = 32 // fixed part of small control messages
	perClusterByte = 8
)

// AppMsg wraps one application message. Intra-cluster messages carry
// SendSN so stragglers that cross a checkpoint line can be folded into
// that checkpoint (channel state); inter-cluster messages additionally
// piggyback the sender cluster's SN (and, with the transitive
// extension, its whole DDV) — the heart of the CIC mechanism (§3.2).
type AppMsg struct {
	MsgID      uint64 // unique per sender node
	Payload    AppPayload
	SrcCluster topology.ClusterID
	SrcEpoch   Epoch
	SendSN     SN  // sender cluster's SN at send time
	PiggyDDV   DDV // dense transitive piggyback (nil unless enabled)
	// PiggyPairs/PiggyWidth are the delta form of the transitive
	// piggyback: the entries that changed since the last message on the
	// same directed inter-cluster pipe (see DeltaCodec). PiggyWidth > 0
	// marks a delta-encoded piggyback (possibly with zero changed
	// pairs) and prices the message at the dense width. Exactly one of
	// PiggyDDV / PiggyWidth is set by a sender.
	PiggyPairs []DDVPair
	PiggyWidth int32
	Resend     bool
	// DstEpoch carries the receiver cluster's newest epoch known to the
	// sender — on every inter-cluster send, not just resends (plain
	// sends target n.knownEpoch so a delivery cannot land in a state
	// the receiver's in-flight rollback is about to erase): a receiver
	// that has not yet executed its local rollback defers the message
	// instead of delivering it into doomed state.
	DstEpoch Epoch
}

func (AppMsg) ProtocolMessage() {}

// WireSize returns the bytes occupied on the network, payload plus
// protocol overhead ("transmitting an integer (SN) with them", §5.2).
func (m AppMsg) WireSize() int {
	s := m.Payload.Size + headerBytes + snBytes
	if m.PiggyDDV != nil {
		s += perClusterByte * len(m.PiggyDDV)
	}
	s += perClusterByte * int(m.PiggyWidth)
	return s
}

// AppAck acknowledges an inter-cluster application message with the
// receiver cluster's SN at delivery time; the sender stores it in its
// volatile log (§3.3).
type AppAck struct {
	MsgID      uint64
	SrcCluster topology.ClusterID // cluster of the *acking* node
	SrcEpoch   Epoch
	ReceiverSN SN
}

func (AppAck) ProtocolMessage() {}

// CLCRequest opens the two-phase commit for checkpoint Seq within a
// cluster (§3.1). For a forced CLC, DDVUpdate carries the new
// dependency entries that every node must adopt at commit.
type CLCRequest struct {
	Seq    SN
	Epoch  Epoch
	Forced bool
	// DDVUpdate is the dense form (nil for unforced CLCs);
	// UpdatePairs/UpdateWidth the delta form (raised entries only,
	// priced at the dense width). One of the two is set when forced.
	DDVUpdate   DDV
	UpdatePairs []DDVPair
	UpdateWidth int
}

func (CLCRequest) ProtocolMessage() {}

// CLCAck tells the initiator a node has saved its local state (and
// replicated it to stable storage) for checkpoint Seq. In
// ModeIndependent it also carries the node's locally accumulated DDV,
// which the commit merges cluster-wide (lazy dependency tracking).
type CLCAck struct {
	Seq   SN
	Epoch Epoch
	// NodeDDV is the dense form; NodePairs the delta form (only the
	// entries this node raised above the last committed vector — the
	// commit's element-wise-max merge makes the omitted entries exact
	// no-ops). Both are nil outside ModeIndependent.
	NodeDDV   DDV
	NodePairs []DDVPair
}

func (CLCAck) ProtocolMessage() {}

// CLCCommit completes the two-phase commit: every node adopts the new
// SN and DDV, unfreezes application traffic and finalizes the stored
// checkpoint.
type CLCCommit struct {
	Seq   SN
	Epoch Epoch
	// DDV is the dense committed vector; Pairs/Width the delta form:
	// every entry that differs from the previous commit's vector, which
	// each participant holds as its commitBase (the 2PC's Seq
	// continuity guarantees no commit is ever skipped, and every
	// rollback/recovery path restores the base from a stored dense
	// Meta). Priced at the dense width either way.
	DDV   DDV
	Pairs []DDVPair
	Width int
}

func (CLCCommit) ProtocolMessage() {}

// ForceCLC asks the cluster leader to initiate a forced CLC because an
// inter-cluster message raised a DDV entry (§3.2). NewDDV carries the
// required entries (element-wise max semantics). Always requests an
// unconditional checkpoint even without new entries (ModeForceAll).
type ForceCLC struct {
	Epoch Epoch
	// NewDDV is the dense force target; Pairs/Width the delta form
	// (raised entries only — the leader's element-wise-max absorb makes
	// entries at the current DDV value exact no-ops).
	NewDDV DDV
	Pairs  []DDVPair
	Width  int
	Always bool
}

func (ForceCLC) ProtocolMessage() {}

// Replica carries one node's local state to its stable-storage
// neighbour(s) inside the cluster (§3.1: "each node record its part of
// the CLCs ... in the memory of an other node").
type Replica struct {
	Seq   SN
	Epoch Epoch
	Owner topology.NodeID
	State any
	Size  int
}

func (Replica) ProtocolMessage() {}

// ReplicaAck confirms a Replica was stored; the owner only acks the 2PC
// once its state is safely replicated.
type ReplicaAck struct {
	Seq   SN
	Epoch Epoch
	From  topology.NodeID
}

func (ReplicaAck) ProtocolMessage() {}

// RollbackAlert is the inter-cluster alert of §3.4: cluster Cluster has
// rolled back and now runs from SN NewSN in epoch NewEpoch.
type RollbackAlert struct {
	Cluster  topology.ClusterID
	NewSN    SN
	NewEpoch Epoch
}

func (RollbackAlert) ProtocolMessage() {}

// RollbackCmd is broadcast inside a cluster by the rollback coordinator:
// restore the stored CLC with sequence number ToSN and move to NewEpoch.
type RollbackCmd struct {
	ToSN     SN
	NewEpoch Epoch
}

func (RollbackCmd) ProtocolMessage() {}

// RollbackAck confirms a node finished restoring.
type RollbackAck struct {
	ToSN  SN
	Epoch Epoch
	From  topology.NodeID
}

func (RollbackAck) ProtocolMessage() {}

// RecoverStateReq asks a neighbour for the replica of a failed node's
// state at checkpoint Seq (used when the failed node restarts).
type RecoverStateReq struct {
	Seq   SN
	Epoch Epoch
	Owner topology.NodeID
}

func (RecoverStateReq) ProtocolMessage() {}

// OlderState carries one additional repatriated checkpoint state.
type OlderState struct {
	SN    SN
	State any
	Size  int
}

// RecoverStateResp returns the replica plus the cluster's checkpoint
// metadata so the restarted node can rebuild its (lost) CLC list. All
// of the owner's surviving states are repatriated in bulk (Older), so
// that after recovery both the owner and the neighbour again hold a
// full copy — successive single faults stay tolerable.
type RecoverStateResp struct {
	Seq   SN
	Epoch Epoch
	Owner topology.NodeID
	State any
	Size  int
	Metas []Meta
	Older []OlderState
	// Log repatriates the owner's mirrored message-log entries; the
	// owner re-adopts those whose send is part of the restored state.
	Log []LogMirror
}

func (RecoverStateResp) ProtocolMessage() {}

// LogMirror copies one freshly logged inter-cluster message to the
// sender's stable-storage neighbour. The paper keeps the log in the
// sender's volatile memory (§3.3), which loses it if the *sender node*
// is the one that crashes — and a receiver cluster that later rolls
// back would then miss resends. Mirroring the log alongside the
// checkpoint replicas closes that hole for the price of one cheap
// intra-cluster (SAN) message per rare inter-cluster send.
type LogMirror struct {
	Owner    topology.NodeID
	MsgID    uint64
	Dst      topology.NodeID
	Payload  AppPayload
	PiggySN  SN
	PiggyDDV DDV
	SendSN   SN
}

func (LogMirror) ProtocolMessage() {}

// LogTrim tells the holder which of the owner's mirrored log entries
// are still alive (sent after the owner garbage-collected its log).
type LogTrim struct {
	Kept []uint64
}

func (LogTrim) ProtocolMessage() {}

// ReReplicateReq is sent by a restarted node to the neighbours whose
// checkpoint parts it used to hold: its crash lost those replicas, so
// the owners push them again. Without this, a *later* (non-simultaneous)
// failure of a neighbour would find no replica — the paper tolerates
// one fault at a time, and successive faults must each be tolerable.
type ReReplicateReq struct {
	Epoch Epoch
}

func (ReReplicateReq) ProtocolMessage() {}

// RollbackResume is the coordinator's end-of-rollback barrier: nodes
// froze application sends at RollbackCmd and resume them here, so no
// post-rollback message can overtake another node's restoration.
type RollbackResume struct {
	Epoch Epoch
}

func (RollbackResume) ProtocolMessage() {}

// GCRequest opens a garbage-collection round (§3.5); sent by the
// federation GC initiator to one node (the leader) of each cluster.
type GCRequest struct {
	Round uint64
}

func (GCRequest) ProtocolMessage() {}

// GCReport returns a cluster's stored-CLC metadata and current DDV to
// the initiator. Dense form: CurrentDDV + CLCs. Delta form: the stored
// chain as one dense anchor (the oldest CLC's vector) plus, per
// subsequent CLC, the pairs it was committed with — consecutive stored
// CLCs are consecutive commits (GC drops a prefix, rollback a suffix),
// so the chain reconstructs every Meta exactly. CurPairs patches the
// newest CLC's vector into the cluster's current DDV (empty in
// ModeHC3I, where the DDV only changes at commits).
type GCReport struct {
	Round      uint64
	Cluster    topology.ClusterID
	Epoch      Epoch
	CurrentDDV DDV
	CLCs       []Meta

	FirstSN     SN
	FirstDDV    DDV
	ChainSNs    []SN
	ChainCounts []int32
	ChainPairs  []DDVPair
	CurPairs    []DDVPair
}

func (GCReport) ProtocolMessage() {}

// GCCollect distributes the per-cluster smallest SNs; each cluster
// discards CLCs older than its own entry and logged messages
// acknowledged below the receiver cluster's entry.
type GCCollect struct {
	Round  uint64
	MinSNs []SN
}

func (GCCollect) ProtocolMessage() {}

// GCDrop is the intra-cluster broadcast of GCCollect.
type GCDrop struct {
	Round  uint64
	Epoch  Epoch
	MinSNs []SN
}

func (GCDrop) ProtocolMessage() {}

// GCDemand asks the federation GC initiator for an immediate
// collection because a node's checkpoint memory is saturating —
// "Periodically, *or when a node memory saturates*, a garbage
// collection is initiated" (§3.5).
type GCDemand struct {
	From  topology.NodeID
	Bytes uint64
}

func (GCDemand) ProtocolMessage() {}

// GCToken implements the distributed (ring) garbage collector of the
// paper's future work (§7): it circulates across cluster leaders,
// accumulating reports; the last hop computes the thresholds and a
// second pass distributes them.
type GCToken struct {
	Round   uint64
	Phase   int // 0 = collecting reports, 1 = distributing MinSNs
	Reports []GCReport
	MinSNs  []SN
}

func (GCToken) ProtocolMessage() {}

// controlSize estimates the wire size of a control message. Pooled
// boxes (*AppAck) price identically to their value forms so BoxPool
// and plain environments account traffic the same way, and the delta
// wire forms price identically to their dense equivalents (see the
// pricing note above): a message sets either the dense vector or the
// delta width, and the formulas sum both so one expression covers
// both encodings.
func controlSize(m Msg) int {
	switch v := m.(type) {
	case AppAck, *AppAck:
		return controlBytes
	case CLCRequest:
		return controlBytes + perClusterByte*(len(v.DDVUpdate)+v.UpdateWidth)
	case CLCCommit:
		return controlBytes + perClusterByte*(len(v.DDV)+v.Width)
	case ForceCLC:
		return controlBytes + perClusterByte*(len(v.NewDDV)+v.Width)
	case Replica:
		return controlBytes + v.Size
	case RecoverStateResp:
		s := controlBytes + v.Size + perClusterByte*len(v.Metas)
		for _, o := range v.Older {
			s += o.Size
		}
		return s
	case GCReport:
		return controlBytes + perClusterByte*gcReportVectorCells(v)
	case GCCollect:
		return controlBytes + perClusterByte*len(v.MinSNs)
	case GCDrop:
		return controlBytes + perClusterByte*len(v.MinSNs)
	case GCToken:
		s := controlBytes + perClusterByte*len(v.MinSNs)
		for _, r := range v.Reports {
			s += controlBytes + perClusterByte*gcReportVectorCells(r)
		}
		return s
	default:
		return controlBytes
	}
}

// gcReportVectorCells prices a GC report's dependency metadata at its
// dense footprint — width x (current vector + one per stored CLC) —
// for either encoding: the delta chain stands for 1+len(ChainSNs)
// stored CLCs of width len(FirstDDV).
func gcReportVectorCells(r GCReport) int {
	cells := len(r.CurrentDDV) * (1 + len(r.CLCs))
	cells += len(r.FirstDDV) * (2 + len(r.ChainSNs))
	return cells
}
