package core

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

// newModeTestbed builds a testbed whose nodes run the given protocol
// mode.
func newModeTestbed(t *testing.T, sizes []int, mode ProtocolMode) *testbed {
	t.Helper()
	b := newTestbed(t, sizes, 0, false)
	for _, n := range b.nodes {
		n.cfg.Mode = mode
	}
	return b
}

func TestForceAllForcesOnEveryMessage(t *testing.T) {
	b := newModeTestbed(t, []int{1, 1}, ModeForceAll)
	src, dst := b.node(0, 0), b.node(1, 0)

	// Three messages, no new sender checkpoints: HC3I would force once
	// (the first contact); force-all forces three times.
	for k := 1; k <= 3; k++ {
		src.Send(dst.ID(), payload(src.ID(), uint64(k)))
		b.pump()
		if got := len(b.app(1, 0).delivered); got != k {
			t.Fatalf("delivered = %d after message %d", got, k)
		}
		if got := dst.SN(); got != SN(k+1) {
			t.Fatalf("dst sn = %d after message %d (no forced CLC?)", got, k)
		}
	}
	if got := b.stats["clc.committed.c1.forced"]; got != 3 {
		t.Fatalf("forced = %d, want 3", got)
	}
}

func TestForceAllDeliversAfterCommitOnly(t *testing.T) {
	b := newModeTestbed(t, []int{1, 2}, ModeForceAll)
	src := b.node(0, 0)
	dst := b.node(1, 1) // non-leader receiver: force must route to leader
	src.Send(dst.ID(), payload(src.ID(), 1))
	b.pump()
	if got := len(b.app(1, 1).delivered); got != 1 {
		t.Fatalf("delivered = %d", got)
	}
	// The ack carries the post-commit SN ("local SN + 1").
	if e := src.log[0]; !e.acked || e.ackSN != 2 {
		t.Fatalf("ack = %+v", *e)
	}
}

func TestIndependentModeNeverForces(t *testing.T) {
	b := newModeTestbed(t, []int{1, 1}, ModeIndependent)
	src, dst := b.node(0, 0), b.node(1, 0)

	b.commitCLC(0) // sender at SN 2
	src.Send(dst.ID(), payload(src.ID(), 1))
	b.pump()
	// Delivered immediately, no forced CLC, dependency recorded lazily.
	if got := len(b.app(1, 0).delivered); got != 1 {
		t.Fatalf("delivered = %d", got)
	}
	if dst.SN() != 1 {
		t.Fatalf("dst sn = %d, want untouched 1", dst.SN())
	}
	if got := b.stats["clc.committed.c1.forced"]; got != 0 {
		t.Fatalf("forced = %d", got)
	}
	if got := dst.DDVSnapshot(); !got.Equal(DDV{2, 1}) {
		t.Fatalf("lazy ddv = %v", got)
	}
	// The lazy entry is folded into the next committed checkpoint.
	b.commitCLC(1)
	if got := dst.StoredMetas()[1].DDV; !got.Equal(DDV{2, 2}) {
		t.Fatalf("committed ddv = %v", got)
	}
}

func TestIndependentModeDominoRollback(t *testing.T) {
	b := newTestbed(t, []int{2, 2}, 1, false)
	for _, n := range b.nodes {
		n.cfg.Mode = ModeIndependent
	}
	src, dstl := b.node(0, 0), b.node(1, 0)

	// Interleave sender checkpoints and messages so every receiver
	// checkpoint depends on the previous sender interval:
	//   c0: CLC2  m1  CLC3  m2
	//   c1:      CLC2      CLC3
	for k := 0; k < 2; k++ {
		b.commitCLC(0)
		src.Send(b.node(1, 1).ID(), payload(src.ID(), uint64(k+1)))
		b.pump()
		b.commitCLC(1)
	}
	if got := dstl.DDVSnapshot()[0]; got != 3 {
		t.Fatalf("c1 committed ddv[c0] = %d, want 3", got)
	}

	// Cluster 0 fails back to its last CLC (SN 3): c1's entry is
	// 3 >= 3, and with no forced CLCs it must fall back behind the
	// dependency entirely — its newest checkpoint with entry < 3 is
	// CLC 2 (the domino step HC3I's forced checkpoint would avoid).
	b.node(0, 1).Fail()
	b.node(0, 1).Restart()
	src.OnFailureDetected(b.node(0, 1).ID())
	b.pump()
	if got := src.SN(); got != 3 {
		t.Fatalf("c0 rolled to %d", got)
	}
	if got := dstl.SN(); got != 2 {
		t.Fatalf("c1 rolled to %d, want domino to 2", got)
	}
	if b.stats["rollback.cascaded"] != 1 {
		t.Fatalf("cascades = %d", b.stats["rollback.cascaded"])
	}
}

func TestIndependentAckCarriesNodeDDV(t *testing.T) {
	// A non-leader's lazily recorded dependency must reach the commit
	// through its CLCAck.
	b := newModeTestbed(t, []int{1, 2}, ModeIndependent)
	src := b.node(0, 0)
	b.commitCLC(0)
	src.Send(b.node(1, 1).ID(), payload(src.ID(), 1)) // to the non-leader
	b.pump()
	if got := b.node(1, 1).DDVSnapshot()[0]; got != 2 {
		t.Fatalf("receiver ddv[c0] = %d", got)
	}
	if got := b.node(1, 0).DDVSnapshot()[0]; got != 0 {
		t.Fatalf("leader learned the dependency early: %v", b.node(1, 0).DDVSnapshot())
	}
	b.commitCLC(1)
	// After the commit every node of cluster 1 agrees on the entry.
	for i := 0; i < 2; i++ {
		if got := b.node(1, i).DDVSnapshot()[0]; got != 2 {
			t.Fatalf("node %d ddv[c0] = %d after commit", i, got)
		}
	}
}

func TestModeString(t *testing.T) {
	if ModeHC3I.String() != "hc3i" || ModeForceAll.String() != "force-all" ||
		ModeIndependent.String() != "independent" {
		t.Fatal("mode names")
	}
	if ProtocolMode(99).String() == "" {
		t.Fatal("unknown mode must still print")
	}
}

func TestNewestBelow(t *testing.T) {
	list := []Meta{
		{SN: 1, DDV: DDV{1, 0}},
		{SN: 2, DDV: DDV{2, 2}},
		{SN: 3, DDV: DDV{2, 5}},
	}
	if i := NewestBelow(list, 1, 3); i != 1 {
		t.Fatalf("NewestBelow(c1,3) = %d, want 1", i)
	}
	if i := NewestBelow(list, 1, 6); i != 2 {
		t.Fatalf("NewestBelow(c1,6) = %d, want 2", i)
	}
	if i := NewestBelow(list, 1, 1); i != 0 {
		t.Fatalf("NewestBelow(c1,1) = %d, want 0", i)
	}
	if i := NewestBelow([]Meta{{SN: 1, DDV: DDV{0, 7}}}, 1, 2); i != -1 {
		t.Fatalf("NewestBelow impossible = %d, want -1", i)
	}
}

// Property: on protocol-consistent histories, the HC3I target (oldest
// with entry >= s) sits immediately after the independent-mode target
// (newest with entry < s) whenever both exist — the forced checkpoint
// is exactly the boundary.
func TestRollbackTargetBoundaryProperty(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		f := newAbstractFederation(3, seed)
		for s := 0; s < 80; s++ {
			f.step()
		}
		for j := 0; j < 3; j++ {
			for c := topology.ClusterID(0); c < 3; c++ {
				if int(c) == j {
					continue
				}
				s := f.sn[c]
				if s == 0 {
					continue
				}
				oldest := OldestWith(f.lists[j], c, s)
				newest := NewestBelow(f.lists[j], c, s)
				if oldest == -1 {
					if newest != len(f.lists[j])-1 {
						t.Fatalf("seed=%d: no dependency but NewestBelow=%d", seed, newest)
					}
					continue
				}
				if newest != oldest-1 {
					t.Fatalf("seed=%d cluster=%d c=%d s=%d: oldest=%d newest=%d",
						seed, j, c, s, oldest, newest)
				}
			}
		}
	}
}

// keep sim import used when the testbed grows
var _ = sim.Second
