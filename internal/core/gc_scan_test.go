package core

import (
	"math/rand"
	"testing"
)

// This file is the differential suite for the incremental GC scan
// (curPairsVsNewest): every check compares the dirty-set probe against
// the full-width diffPairs reference on live nodes, across commits,
// inter-cluster receipts, rollbacks, recoveries and GC rounds.

// pairSet collapses a pair list to index->SN, failing on duplicates —
// neither scan may emit the same index twice.
func pairSet(t *testing.T, what string, ps []DDVPair) map[int32]SN {
	t.Helper()
	m := make(map[int32]SN, len(ps))
	for _, p := range ps {
		if _, dup := m[p.Idx]; dup {
			t.Fatalf("%s emitted index %d twice: %v", what, p.Idx, ps)
		}
		m[p.Idx] = p.SN
	}
	return m
}

// checkScanMatchesReference asserts, for every live node, that the
// incremental scan and the width-scan reference report the same pair
// set. Returns how many nodes were probed via the incremental path.
func checkScanMatchesReference(t *testing.T, b *testbed) (incremental int) {
	t.Helper()
	for _, n := range b.nodes {
		if n.Failed() || n.lostState || len(n.clcs) == 0 {
			continue
		}
		newest := n.clcs[len(n.clcs)-1].meta.DDV
		got := pairSet(t, "curPairsVsNewest", n.curPairsVsNewest(nil, newest))
		want := pairSet(t, "diffPairs", diffPairs(nil, n.ddv, newest))
		if len(got) != len(want) {
			t.Fatalf("node %v: incremental scan %v, reference %v (valid=%v dirty=%v)",
				n.ID(), got, want, n.gcScanValid, n.gcScanDirty.Indices())
		}
		for i, v := range want {
			if got[i] != v {
				t.Fatalf("node %v: index %d = %d incrementally, %d by reference",
					n.ID(), i, got[i], v)
			}
		}
		if n.gcScanValid && n.cfg.Mode == ModeHC3I {
			incremental++
		}
	}
	return incremental
}

// TestIncrementalScanDeterministic walks the invariant's lifecycle by
// hand: valid at start, dirty after a CIC receipt, reset at the next
// commit, invalidated by a rollback, revalidated by the commit after.
func TestIncrementalScanDeterministic(t *testing.T) {
	b := newTestbed(t, []int{2, 2}, 1, false)
	c0, c1 := b.node(0, 0), b.node(1, 0)

	if !c0.gcScanValid {
		t.Fatal("scan invalid right after the initial CLC")
	}
	checkScanMatchesReference(t, b)

	// A cross-cluster receipt raises c1's entry for c0 via a forced
	// CLC: in HC3I the raise lands *at the commit*, so once the pump
	// settles the vector equals the stored CLC again — scan valid,
	// dirty set empty, and the differential check passes.
	b.commitCLC(0)
	c0.Send(b.node(1, 1).ID(), payload(c0.ID(), 1))
	b.pump()
	if !c1.gcScanValid || c1.gcScanDirty.Len() != 0 {
		t.Fatalf("after forced commit: valid=%v dirty=%v", c1.gcScanValid, c1.gcScanDirty.Indices())
	}
	if !c1.DDVSnapshot().Equal(c1.clcs[len(c1.clcs)-1].meta.DDV) {
		t.Fatal("HC3I invariant broken: ddv != newest stored DDV between commits")
	}
	checkScanMatchesReference(t, b)

	// A rollback breaks the invariant on every touched node; the scan
	// must fall back to the full-width reference until the next commit.
	b.node(0, 1).Fail()
	b.node(0, 1).Restart()
	c0.OnFailureDetected(b.node(0, 1).ID())
	b.pump()
	if c0.gcScanValid {
		t.Fatal("scan still marked valid after a rollback")
	}
	checkScanMatchesReference(t, b)

	// The commit after the rollback re-establishes ddv == newest CLC
	// and revalidates the incremental path.
	b.commitCLC(0)
	if !c0.gcScanValid {
		t.Fatal("scan not revalidated by the first post-rollback commit")
	}
	checkScanMatchesReference(t, b)
}

// TestIncrementalScanWide drives the single wide pipe of the
// width-parameterized testbed: receipts at width 64 must keep the
// dirty probe and the chunked full scan in agreement.
func TestIncrementalScanWide(t *testing.T) {
	for _, dense := range []bool{false, true} {
		b := newWideTestbed(t, 64, dense)
		src, dst := b.node(0, 0), b.node(1, 0)
		for k := 0; k < 4; k++ {
			b.commitCLC(0)
			src.Send(dst.ID(), payload(src.ID(), uint64(k+1)))
			b.pump()
			checkScanMatchesReference(t, b)
		}
		b.commitCLC(1)
		if checkScanMatchesReference(t, b) == 0 {
			t.Fatalf("dense=%v: no node used the incremental path", dense)
		}
	}
}

// TestIncrementalScanRandomized is the chaos arm: random cross-cluster
// sends, commits, failures and GC rounds over a 4-cluster federation,
// with the differential check after every settled step.
func TestIncrementalScanRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	b := newTestbed(t, []int{2, 2, 2, 2}, 1, true)
	b.node(0, 0).cfg.GCInitiator = true

	incremental, fallback := 0, 0
	for step := 0; step < 400; step++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4: // cross-cluster app message
			src := rng.Intn(4)
			dst := (src + 1 + rng.Intn(3)) % 4
			from := b.node(src, rng.Intn(2))
			from.Send(b.node(dst, rng.Intn(2)).ID(), payload(from.ID(), uint64(step)))
			b.pump()
		case 5, 6, 7: // unforced CLC somewhere
			b.commitCLC(rng.Intn(4))
		case 8: // node failure and cluster rollback
			c := rng.Intn(4)
			b.node(c, 1).Fail()
			b.node(c, 1).Restart()
			b.node(c, 0).OnFailureDetected(b.node(c, 1).ID())
			b.pump()
		case 9: // GC round (exercises makeGCReport on every leader)
			b.node(0, 0).OnTimer(TimerGC)
			b.pump()
		}
		incremental += checkScanMatchesReference(t, b)
		for _, n := range b.nodes {
			if !n.gcScanValid {
				fallback++
			}
		}
	}
	// The suite is only meaningful if both paths actually ran: the
	// incremental probe in steady state and the full-width fallback in
	// the windows a rollback opened.
	if incremental == 0 {
		t.Fatal("incremental path never exercised")
	}
	if fallback == 0 {
		t.Fatal("full-scan fallback never exercised")
	}
}

// TestIncrementalScanDirtyProbe white-boxes the dirty-set loop itself:
// hand-raised entries flagged dirty must surface exactly the indices
// that differ from the stored vector, matching the full-width diff.
func TestIncrementalScanDirtyProbe(t *testing.T) {
	b := newWideTestbed(t, 64, false)
	n := b.node(0, 0)
	b.commitCLC(0)
	if !n.gcScanValid {
		t.Fatal("scan invalid after a clean commit")
	}
	// Raise a few foreign entries the way a lazy receipt site would,
	// including one "touched but unchanged" index that must not emit.
	n.ddv[3] += 2
	n.gcScanDirty.Add(3)
	n.ddv[40] += 1
	n.gcScanDirty.Add(40)
	n.gcScanDirty.Add(17) // dirty but equal: probe must skip it
	newest := n.clcs[len(n.clcs)-1].meta.DDV
	got := pairSet(t, "curPairsVsNewest", n.curPairsVsNewest(nil, newest))
	want := pairSet(t, "diffPairs", diffPairs(nil, n.ddv, newest))
	if len(got) != 2 || len(want) != 2 {
		t.Fatalf("probe sets: incremental %v, reference %v", got, want)
	}
	for i, v := range want {
		if got[i] != v {
			t.Fatalf("index %d: incremental %d, reference %d", i, got[i], v)
		}
	}
}
