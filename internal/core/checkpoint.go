package core

import (
	"repro/internal/sim"
	"repro/internal/topology"
)

// This file implements cluster-level checkpointing (§3.1): the
// traditional two-phase commit run over the cluster's SAN. The leader
// (node 0 of each cluster) is the initiator; application messages are
// frozen between the request and the commit; each node stores its local
// state and replicates it to neighbour memory (stable storage) before
// acknowledging.

// onCLCTimer fires on the cluster leader when the unforced-CLC delay
// elapses ("each cluster takes its CLC periodically, independently from
// the others").
func (n *Node) onCLCTimer() {
	if !n.leader() {
		return
	}
	if n.inFlight || n.rbActive || n.lostState || n.phase != cpIdle {
		// Busy: skip this tick; commit/resume will re-arm the timer.
		n.env.SetTimer(TimerCLC, n.cfg.CLCPeriod)
		return
	}
	n.startCLC(false, nil)
}

// requestForce routes a forced-CLC demand to the cluster leader. target
// is the full DDV the cluster must reach (element-wise max semantics).
// Callers may pass the node's scratch buffer (buildForceTarget):
// sendForce copies it before anything escapes the current event.
func (n *Node) requestForce(target DDV) {
	n.sendForce(target, false)
}

// requestForceAlways demands an unconditional forced CLC (ModeForceAll).
func (n *Node) requestForceAlways(target DDV) {
	n.sendForce(target, true)
}

// buildForceTarget resets the node's force-target scratch buffer to the
// current DDV and returns it. Ownership: the buffer belongs to the
// current event only — it is overwritten by the next buildForceTarget
// and must never be stored; sendForce clones it when the target leaves
// the node over the network.
func (n *Node) buildForceTarget() DDV {
	n.forceScratch.CopyFrom(n.ddv)
	return n.forceScratch
}

func (n *Node) sendForce(target DDV, always bool) {
	n.env.Stat("cic.force_requested", 1)
	if n.leader() {
		// absorbForce only merges target into pendingForce, so the
		// scratch buffer never escapes on the local path.
		n.absorbForce(target, always)
		return
	}
	// The message outlives this event (it sits in the network until
	// delivery): hand it an owned copy of the scratch target.
	msg := ForceCLC{Epoch: n.epoch, NewDDV: n.arena.Clone(target), Always: always}
	n.env.Send(n.leaderOf(n.cluster), controlSize(msg), msg)
}

// onForceCLC handles a forced-CLC demand at the leader.
func (n *Node) onForceCLC(src topology.NodeID, m ForceCLC) {
	if !n.leader() || m.Epoch != n.epoch {
		return
	}
	n.absorbForce(m.NewDDV, m.Always)
}

// absorbForce merges a force target into the pending set and starts a
// forced CLC if none is in flight.
func (n *Node) absorbForce(target DDV, always bool) {
	if n.pendingForce == nil {
		n.pendingForce = n.arena.New()
	}
	n.pendingForce.Merge(target)
	if always {
		n.pendingAlways = true
	}
	n.tryStartForced()
}

// tryStartForced starts a forced CLC for any pending entries still
// above the committed DDV (or unconditionally, when one is owed).
func (n *Node) tryStartForced() {
	if n.inFlight || n.rbActive || n.lostState || n.phase != cpIdle || (n.pendingForce == nil && !n.pendingAlways) {
		return
	}
	update := n.arena.New()
	needed := false
	if n.pendingForce != nil {
		for i, v := range n.pendingForce {
			if v > n.ddv[i] {
				update[i] = v
				needed = true
			}
		}
	}
	if !needed && !n.pendingAlways {
		n.pendingForce = nil
		return
	}
	n.pendingAlways = false
	n.startCLC(true, update)
}

// startCLC opens the two-phase commit for the next checkpoint. Runs on
// the leader only.
func (n *Node) startCLC(forced bool, update DDV) {
	seq := n.sn + 1
	n.inFlight = true
	n.inFlightForced = forced
	n.inFlightSeq = seq
	n.inFlightSince = n.env.Now()
	for i := range n.ackedNodes {
		n.ackedNodes[i] = false
	}
	n.ackedCount = 0
	n.env.Trace(sim.TraceDebug, "CLC %d request (forced=%v update=%v)", seq, forced, update)
	n.env.Stat(n.keys.clcRequested, 1)

	req := CLCRequest{Seq: seq, Epoch: n.epoch, Forced: forced, DDVUpdate: update}
	for i := 0; i < n.size; i++ {
		if i == n.id.Index {
			continue
		}
		n.env.Send(topology.NodeID{Cluster: n.cluster, Index: i}, controlSize(req), req)
	}
	n.prepareLocal(seq, forced)
}

// onCLCRequest is the participant side: freeze application traffic,
// snapshot local state, replicate it, then acknowledge.
func (n *Node) onCLCRequest(src topology.NodeID, m CLCRequest) {
	if m.Epoch != n.epoch || n.lostState {
		return
	}
	if n.phase != cpIdle {
		// The leader serializes CLCs, so this indicates a stale
		// retransmission; ignore.
		n.env.Trace(sim.TraceDebug, "ignoring CLC request %d while in phase %d", m.Seq, n.phase)
		return
	}
	if m.Seq != n.sn+1 {
		n.env.Trace(sim.TraceDebug, "ignoring out-of-sequence CLC request %d (sn=%d)", m.Seq, n.sn)
		return
	}
	n.prepareLocal(m.Seq, m.Forced)
}

// prepareLocal performs the participant prepare step on this node
// (leader included).
func (n *Node) prepareLocal(seq SN, forced bool) {
	n.phase = cpPrepared
	n.prepSeq = seq
	n.frozenSends = true
	n.frozenDelivs = true
	state, size := n.app.Snapshot()
	n.provisional = &clcRecord{
		meta:      Meta{SN: seq},
		forced:    forced,
		at:        n.env.Now(),
		state:     state,
		stateSize: size,
	}
	targets := n.replicaTargets()
	n.replWanted = len(targets)
	n.replGot = 0
	if n.replWanted == 0 {
		n.sendPrepAck(seq)
		return
	}
	rep := Replica{Seq: seq, Epoch: n.epoch, Owner: n.id, State: state, Size: size}
	for _, t := range targets {
		n.env.Send(t, controlSize(rep), rep)
	}
}

// onReplica stores a neighbour's checkpoint part in local memory (the
// stable-storage implementation of §3.1) and confirms.
func (n *Node) onReplica(src topology.NodeID, m Replica) {
	if m.Epoch != n.epoch || src.Cluster != n.cluster {
		return
	}
	n.replicas[replicaKey{owner: m.Owner, seq: m.Seq}] = m
	ack := ReplicaAck{Seq: m.Seq, Epoch: n.epoch, From: n.id}
	n.env.Send(m.Owner, controlSize(ack), ack)
}

// onReplicaAck counts stable-storage confirmations; the 2PC ack goes
// out only once the local state is safely replicated.
func (n *Node) onReplicaAck(src topology.NodeID, m ReplicaAck) {
	if m.Epoch != n.epoch || n.phase != cpPrepared || m.Seq != n.prepSeq {
		return
	}
	n.replGot++
	if n.replGot == n.replWanted {
		n.sendPrepAck(m.Seq)
	}
}

// sendPrepAck acknowledges the prepare phase to the leader. In
// ModeIndependent the ack carries the node's local DDV so the commit
// can merge the dependencies accumulated since the last checkpoint.
func (n *Node) sendPrepAck(seq SN) {
	var nodeDDV DDV
	if n.cfg.Mode == ModeIndependent {
		nodeDDV = n.arena.Clone(n.ddv)
	}
	if n.leader() {
		n.ackFrom(n.id.Index, seq, nodeDDV)
		return
	}
	ack := CLCAck{Seq: seq, Epoch: n.epoch, NodeDDV: nodeDDV}
	n.env.Send(n.leaderOf(n.cluster), controlSize(ack), ack)
}

// onCLCAck counts prepare acks at the leader.
func (n *Node) onCLCAck(src topology.NodeID, m CLCAck) {
	if !n.inFlight || m.Epoch != n.epoch || m.Seq != n.inFlightSeq {
		return
	}
	n.ackFrom(src.Index, m.Seq, m.NodeDDV)
}

func (n *Node) ackFrom(index int, seq SN, nodeDDV DDV) {
	if !n.ackedNodes[index] {
		n.ackedNodes[index] = true
		n.ackedCount++
	}
	if nodeDDV != nil {
		n.ackedDDVs = append(n.ackedDDVs, nodeDDV)
	}
	if n.ackedCount < n.size {
		return
	}
	// Every node saved and replicated its state: commit.
	newDDV := n.arena.Clone(n.ddv)
	if n.inFlightForced && n.pendingForce != nil {
		for i, v := range n.pendingForce {
			if topology.ClusterID(i) != n.cluster && v > newDDV[i] {
				newDDV[i] = v
			}
		}
	}
	for _, d := range n.ackedDDVs {
		newDDV.Merge(d)
	}
	n.ackedDDVs = nil
	newDDV[n.cluster] = seq
	commit := CLCCommit{Seq: seq, Epoch: n.epoch, DDV: newDDV}
	for i := 0; i < n.size; i++ {
		if i == n.id.Index {
			continue
		}
		n.env.Send(topology.NodeID{Cluster: n.cluster, Index: i}, controlSize(commit), commit)
	}
	n.applyCommit(seq, newDDV, n.inFlightForced)
}

// onCLCCommit finalizes the checkpoint on a participant.
func (n *Node) onCLCCommit(src topology.NodeID, m CLCCommit) {
	if m.Epoch != n.epoch || n.phase != cpPrepared || m.Seq != n.prepSeq {
		return
	}
	n.applyCommit(m.Seq, m.DDV, n.provisional.forced)
}

// applyCommit installs the committed checkpoint: adopt the SN and DDV,
// store the record, unfreeze application traffic and drain the queues.
func (n *Node) applyCommit(seq SN, ddv DDV, forced bool) {
	n.sn = seq
	if n.cfg.Mode == ModeIndependent {
		// Lazy tracking: receipts that arrived after this node's ack
		// are not in the commit DDV; keep them for the next merge.
		// Merging in place yields the same element-wise maximum the
		// seed computed into a fresh clone.
		n.ddv.Merge(ddv)
		n.ddv[n.cluster] = seq
	} else {
		// n.ddv is this node's owned buffer (nothing aliases it: every
		// escape point clones), so the commit DDV is copied in place.
		n.ddv.CopyFrom(ddv)
	}
	rec := n.provisional
	// The record outlives the commit message, which is shared across
	// the cluster: the stored Meta needs its own copy.
	rec.meta = Meta{SN: seq, DDV: n.arena.Clone(ddv)}
	n.clcs = append(n.clcs, rec)
	n.provisional = nil
	n.phase = cpIdle
	n.frozenSends = false
	n.frozenDelivs = false
	n.env.Trace(sim.TraceDebug, "CLC %d committed ddv=%v forced=%v", seq, ddv, forced)

	if n.leader() {
		n.inFlight = false
		// The 2PC window during which application traffic was frozen:
		// dominated by the state replication to stable storage.
		n.env.StatSeries(n.keys.clcFreeze,
			n.env.Now().Sub(n.inFlightSince).Seconds())
		n.env.Stat(n.keys.clcCommitted, 1)
		if forced {
			n.env.Stat(n.keys.clcForced, 1)
		} else {
			n.env.Stat(n.keys.clcUnforced, 1)
		}
		// "the timer is reset when a forced CLC is established" (§5.2):
		// every commit re-arms the unforced-CLC delay.
		n.env.SetTimer(TimerCLC, n.cfg.CLCPeriod)
		n.recordStoredStat()
		// Drop the pending force set if this commit satisfied it; a
		// remaining excess starts the next forced CLC below.
		if n.pendingForce != nil {
			still := false
			for i, v := range n.pendingForce {
				if v > n.ddv[i] {
					still = true
					break
				}
			}
			if !still {
				n.pendingForce = nil
			}
		}
	}

	n.drainSendQueue()
	n.drainInbound()
	n.reexamineHeld()
	if n.leader() {
		n.env.StatSeries(n.keys.storageBytes, float64(n.StorageBytes()))
		n.tryStartForced()
	}
	n.checkMemoryPressure()
}

// abortCheckpoint discards any in-progress 2PC state; invoked by the
// rollback path, which supersedes whatever the checkpoint was doing.
func (n *Node) abortCheckpoint() {
	if n.phase == cpPrepared || n.inFlight {
		n.env.Stat(n.keys.clcAborted, 1)
	}
	n.phase = cpIdle
	n.provisional = nil
	n.inFlight = false
	n.pendingForce = nil
	n.pendingAlways = false
	n.ackedDDVs = nil
	n.frozenSends = false
	n.frozenDelivs = false
}
