package core

import (
	"repro/internal/sim"
	"repro/internal/topology"
)

// This file implements cluster-level checkpointing (§3.1): the
// traditional two-phase commit run over the cluster's SAN. The leader
// (node 0 of each cluster) is the initiator; application messages are
// frozen between the request and the commit; each node stores its local
// state and replicates it to neighbour memory (stable storage) before
// acknowledging.

// onCLCTimer fires on the cluster leader when the unforced-CLC delay
// elapses ("each cluster takes its CLC periodically, independently from
// the others").
func (n *Node) onCLCTimer() {
	if !n.leader() {
		return
	}
	if n.inFlight || n.rbActive || n.lostState || n.phase != cpIdle {
		// Busy: skip this tick; commit/resume will re-arm the timer.
		n.env.SetTimer(TimerCLC, n.cfg.CLCPeriod)
		return
	}
	n.startCLC(false, nil)
}

// requestForce routes a forced-CLC demand to the cluster leader. In the
// dense encoding target is the full DDV the cluster must reach
// (element-wise max semantics); callers may pass the node's scratch
// buffer (buildForceTarget): sendForce copies it before anything
// escapes the current event.
func (n *Node) requestForce(target DDV) {
	n.sendForce(target, false)
}

// requestForceAlways demands an unconditional forced CLC (ModeForceAll).
func (n *Node) requestForceAlways(target DDV) {
	n.sendForce(target, true)
}

// requestForcePairs is the delta-wire counterpart of requestForce: the
// target is just the raised entries. pairs may be the node's
// pairScratch; sendForcePairs copies it before anything escapes.
func (n *Node) requestForcePairs(pairs []DDVPair) {
	n.sendForcePairs(pairs, false)
}

// requestForceAlwaysPairs is the delta-wire requestForceAlways.
func (n *Node) requestForceAlwaysPairs(pairs []DDVPair) {
	n.sendForcePairs(pairs, true)
}

// buildForceTarget resets the node's force-target scratch buffer to the
// current DDV and returns it. Ownership: the buffer belongs to the
// current event only — it is overwritten by the next buildForceTarget
// and must never be stored; sendForce clones it when the target leaves
// the node over the network.
func (n *Node) buildForceTarget() DDV {
	n.forceScratch.CopyFrom(n.ddv)
	return n.forceScratch
}

func (n *Node) sendForce(target DDV, always bool) {
	n.env.Stat("cic.force_requested", 1)
	if n.leader() {
		// absorbForce only merges target into pendingForce, so the
		// scratch buffer never escapes on the local path.
		n.absorbForce(target, always)
		return
	}
	// The message outlives this event (it sits in the network until
	// delivery): hand it an owned copy of the scratch target.
	msg := ForceCLC{Epoch: n.epoch, NewDDV: n.arena.Clone(target), Always: always}
	n.env.Send(n.leaderOf(n.cluster), controlSize(msg), msg)
}

func (n *Node) sendForcePairs(pairs []DDVPair, always bool) {
	n.env.Stat("cic.force_requested", 1)
	if n.leader() {
		n.absorbForcePairs(pairs, always)
		return
	}
	// Owned copy: the message outlives this event. Width prices the
	// demand at its dense footprint (see messages.go).
	msg := ForceCLC{Epoch: n.epoch, Pairs: n.pairArena.Clone(pairs),
		Width: n.cfg.Clusters, Always: always}
	n.env.Send(n.leaderOf(n.cluster), controlSize(msg), msg)
}

// onForceCLC handles a forced-CLC demand at the leader, in either
// encoding.
func (n *Node) onForceCLC(src topology.NodeID, m ForceCLC) {
	if !n.leader() || m.Epoch != n.epoch {
		return
	}
	if m.NewDDV != nil {
		n.absorbForce(m.NewDDV, m.Always)
		return
	}
	n.absorbForcePairs(m.Pairs, m.Always)
}

// ensurePendingForce (re)creates the pending force set. pendingDirty is
// only meaningful while pendingForce is non-nil, so it is reset here.
func (n *Node) ensurePendingForce() {
	if n.pendingForce == nil {
		n.pendingForce = n.arena.New()
		n.pendingDirty.Reset()
	}
}

// absorbForce merges a dense force target into the pending set and
// starts a forced CLC if none is in flight.
func (n *Node) absorbForce(target DDV, always bool) {
	n.ensurePendingForce()
	mergeMaxDirty(n.pendingForce, target, &n.pendingDirty)
	if always {
		n.pendingAlways = true
	}
	n.tryStartForced()
}

// absorbForcePairs merges a sparse force target. Entries the pairs omit
// sit at the demanding node's DDV values — merging them would never
// raise pendingForce above what the committed DDV already covers, so
// omitting them is exact.
func (n *Node) absorbForcePairs(pairs []DDVPair, always bool) {
	n.ensurePendingForce()
	n.pendingForce.mergePairs(pairs, &n.pendingDirty)
	if always {
		n.pendingAlways = true
	}
	n.tryStartForced()
}

// tryStartForced starts a forced CLC for any pending entries still
// above the committed DDV (or unconditionally, when one is owed). Only
// dirty indices are scanned: entries never raised are zero and cannot
// exceed the DDV.
func (n *Node) tryStartForced() {
	if n.inFlight || n.rbActive || n.lostState || n.phase != cpIdle || (n.pendingForce == nil && !n.pendingAlways) {
		return
	}
	pairs := n.pairScratch[:0]
	if n.pendingForce != nil {
		for _, i := range n.pendingDirty.Indices() {
			if v := n.pendingForce[i]; v > n.ddv[i] {
				pairs = append(pairs, DDVPair{Idx: i, SN: v})
			}
		}
	}
	n.pairScratch = pairs
	if len(pairs) == 0 && !n.pendingAlways {
		n.pendingForce = nil
		return
	}
	n.pendingAlways = false
	n.startCLC(true, pairs)
}

// startCLC opens the two-phase commit for the next checkpoint. Runs on
// the leader only. updatePairs (raised entries; may alias pairScratch)
// is nil for unforced CLCs.
func (n *Node) startCLC(forced bool, updatePairs []DDVPair) {
	seq := n.sn + 1
	n.inFlight = true
	n.inFlightForced = forced
	n.inFlightSeq = seq
	n.inFlightSince = n.env.Now()
	for i := range n.ackedNodes {
		n.ackedNodes[i] = false
	}
	n.ackedCount = 0
	n.env.Trace(sim.TraceDebug, "CLC %d request (forced=%v update=%v)", seq, forced, updatePairs)
	n.env.Stat(n.keys.clcRequested, 1)

	req := CLCRequest{Seq: seq, Epoch: n.epoch, Forced: forced}
	if forced {
		if n.denseWire {
			update := n.arena.New()
			update.applyPairs(updatePairs)
			req.DDVUpdate = update
		} else {
			req.UpdatePairs = n.pairArena.Clone(updatePairs)
			req.UpdateWidth = n.cfg.Clusters
		}
	}
	for i := 0; i < n.size; i++ {
		if i == n.id.Index {
			continue
		}
		n.env.Send(topology.NodeID{Cluster: n.cluster, Index: i}, controlSize(req), req)
	}
	n.prepareLocal(seq, forced)
}

// onCLCRequest is the participant side: freeze application traffic,
// snapshot local state, replicate it, then acknowledge.
func (n *Node) onCLCRequest(src topology.NodeID, m CLCRequest) {
	if m.Epoch != n.epoch || n.lostState {
		return
	}
	if n.phase != cpIdle {
		// The leader serializes CLCs, so this indicates a stale
		// retransmission; ignore.
		n.env.Trace(sim.TraceDebug, "ignoring CLC request %d while in phase %d", m.Seq, n.phase)
		return
	}
	if m.Seq != n.sn+1 {
		n.env.Trace(sim.TraceDebug, "ignoring out-of-sequence CLC request %d (sn=%d)", m.Seq, n.sn)
		return
	}
	n.prepareLocal(m.Seq, m.Forced)
}

// prepareLocal performs the participant prepare step on this node
// (leader included).
func (n *Node) prepareLocal(seq SN, forced bool) {
	n.phase = cpPrepared
	n.prepSeq = seq
	n.frozenSends = true
	n.frozenDelivs = true
	state, size := n.app.Snapshot()
	n.provisional = &clcRecord{
		meta:      Meta{SN: seq},
		forced:    forced,
		at:        n.env.Now(),
		state:     state,
		stateSize: size,
	}
	targets := n.replicaTargets()
	n.replWanted = len(targets)
	n.replGot = 0
	if n.replWanted == 0 {
		n.sendPrepAck(seq)
		return
	}
	rep := Replica{Seq: seq, Epoch: n.epoch, Owner: n.id, State: state, Size: size}
	for _, t := range targets {
		n.env.Send(t, controlSize(rep), rep)
	}
}

// onReplica stores a neighbour's checkpoint part in local memory (the
// stable-storage implementation of §3.1) and confirms.
func (n *Node) onReplica(src topology.NodeID, m Replica) {
	if m.Epoch != n.epoch || src.Cluster != n.cluster {
		return
	}
	n.storeReplica(replicaKey{owner: m.Owner, seq: m.Seq}, m)
	ack := ReplicaAck{Seq: m.Seq, Epoch: n.epoch, From: n.id}
	n.env.Send(m.Owner, controlSize(ack), ack)
}

// onReplicaAck counts stable-storage confirmations; the 2PC ack goes
// out only once the local state is safely replicated.
func (n *Node) onReplicaAck(src topology.NodeID, m ReplicaAck) {
	if m.Epoch != n.epoch || n.phase != cpPrepared || m.Seq != n.prepSeq {
		return
	}
	n.replGot++
	if n.replGot == n.replWanted {
		n.sendPrepAck(m.Seq)
	}
}

// sendPrepAck acknowledges the prepare phase to the leader. In
// ModeIndependent the ack carries the node's local DDV so the commit
// can merge the dependencies accumulated since the last checkpoint —
// dense, or as just the entries this node raised above the last
// committed vector (recvDirty): the commit merge starts from a
// superset of that base, so the omitted entries are exact no-ops.
func (n *Node) sendPrepAck(seq SN) {
	var nodeDDV DDV
	var nodePairs []DDVPair
	if n.cfg.Mode == ModeIndependent {
		if n.denseWire {
			nodeDDV = n.arena.Clone(n.ddv)
		} else {
			pairs := n.pairScratch[:0]
			for _, i := range n.recvDirty.Indices() {
				if v := n.ddv[i]; v > n.commitBase[i] {
					pairs = append(pairs, DDVPair{Idx: i, SN: v})
				}
			}
			n.pairScratch = pairs
			nodePairs = n.pairArena.Clone(pairs)
		}
	}
	if n.leader() {
		n.ackFrom(n.id.Index, seq, nodeDDV, nodePairs)
		return
	}
	ack := CLCAck{Seq: seq, Epoch: n.epoch, NodeDDV: nodeDDV, NodePairs: nodePairs}
	n.env.Send(n.leaderOf(n.cluster), controlSize(ack), ack)
}

// onCLCAck counts prepare acks at the leader.
func (n *Node) onCLCAck(src topology.NodeID, m CLCAck) {
	if !n.inFlight || m.Epoch != n.epoch || m.Seq != n.inFlightSeq {
		return
	}
	n.ackFrom(src.Index, m.Seq, m.NodeDDV, m.NodePairs)
}

func (n *Node) ackFrom(index int, seq SN, nodeDDV DDV, nodePairs []DDVPair) {
	if !n.ackedNodes[index] {
		n.ackedNodes[index] = true
		n.ackedCount++
	}
	if nodeDDV != nil {
		n.ackedDDVs = append(n.ackedDDVs, nodeDDV)
	}
	if len(nodePairs) > 0 {
		// Element-wise max is order-independent: accumulating on
		// arrival equals the dense path's merge-at-commit.
		n.ackAccum.mergePairs(nodePairs, &n.ackDirty)
	}
	if n.ackedCount < n.size {
		return
	}
	// Every node saved and replicated its state: commit.
	newDDV := n.arena.Clone(n.ddv)
	if n.denseWire {
		if n.inFlightForced && n.pendingForce != nil {
			for i, v := range n.pendingForce {
				if topology.ClusterID(i) != n.cluster && v > newDDV[i] {
					newDDV[i] = v
				}
			}
		}
		for _, d := range n.ackedDDVs {
			newDDV.Merge(d)
		}
		n.ackedDDVs = nil
		newDDV[n.cluster] = seq
		commit := CLCCommit{Seq: seq, Epoch: n.epoch, DDV: newDDV}
		n.broadcastCommit(commit)
		n.applyCommit(seq, newDDV, nil, n.inFlightForced)
		return
	}
	// Delta wire: raise newDDV and track every index that can differ
	// from commitBase — the leader's own lazy receipts (recvDirty),
	// forced entries, ack-accumulated entries and the new sequence
	// number. The pair list is the exact diff against the previous
	// commit, which every participant patches into its own base.
	dirty := &n.commitScratch
	dirty.Reset()
	for _, i := range n.recvDirty.Indices() {
		dirty.Add(int(i))
	}
	if n.inFlightForced && n.pendingForce != nil {
		for _, i := range n.pendingDirty.Indices() {
			if v := n.pendingForce[i]; topology.ClusterID(i) != n.cluster && v > newDDV[i] {
				newDDV[i] = v
				dirty.Add(int(i))
			}
		}
	}
	for _, i := range n.ackDirty.Indices() {
		if v := n.ackAccum[i]; v > newDDV[i] {
			newDDV[i] = v
			dirty.Add(int(i))
		}
	}
	n.resetAckAccum()
	newDDV[n.cluster] = seq
	dirty.Add(int(n.cluster))
	pairs := n.pairScratch[:0]
	for _, i := range dirty.Indices() {
		if v := newDDV[i]; v != n.commitBase[i] {
			pairs = append(pairs, DDVPair{Idx: i, SN: v})
		}
	}
	n.pairScratch = pairs
	owned := n.pairArena.Clone(pairs)
	commit := CLCCommit{Seq: seq, Epoch: n.epoch, Pairs: owned, Width: n.cfg.Clusters}
	n.broadcastCommit(commit)
	n.applyCommit(seq, newDDV, owned, n.inFlightForced)
}

// broadcastCommit sends the commit to every other node of the cluster.
func (n *Node) broadcastCommit(commit CLCCommit) {
	for i := 0; i < n.size; i++ {
		if i == n.id.Index {
			continue
		}
		n.env.Send(topology.NodeID{Cluster: n.cluster, Index: i}, controlSize(commit), commit)
	}
}

// onCLCCommit finalizes the checkpoint on a participant, in either
// encoding.
func (n *Node) onCLCCommit(src topology.NodeID, m CLCCommit) {
	if m.Epoch != n.epoch || n.phase != cpPrepared || m.Seq != n.prepSeq {
		return
	}
	if m.DDV != nil {
		n.applyCommit(m.Seq, m.DDV, nil, n.provisional.forced)
		return
	}
	n.applyCommit(m.Seq, nil, m.Pairs, n.provisional.forced)
}

// applyCommit installs the committed checkpoint: adopt the SN and DDV,
// store the record, unfreeze application traffic and drain the queues.
// The committed vector arrives dense (commitVec, leaders and the dense
// wire) or as the pairs that changed since the previous commit (pairs,
// delta-wire participants) — the commitBase invariant reconstructs the
// dense vector in O(changed entries). Leaders on the delta wire pass
// both.
func (n *Node) applyCommit(seq SN, commitVec DDV, pairs []DDVPair, forced bool) {
	n.sn = seq
	n.anchorPending = false
	if commitVec == nil {
		// Delta participant: patch the base into the committed vector.
		n.commitBase.applyPairs(pairs)
		commitVec = n.commitBase
		if n.cfg.Mode == ModeIndependent {
			// Lazy tracking: receipts that arrived after this node's
			// ack are not in the commit; keep them. Entries the pairs
			// omit equal the previous base, which this node's DDV
			// already covers — merging just the pairs is exact.
			n.ddv.mergePairs(pairs, nil)
			n.ddv[n.cluster] = seq
		} else {
			// n.ddv equals the previous base outside commit windows, so
			// patching the same pairs lands on the committed vector.
			n.ddv.applyPairs(pairs)
		}
	} else {
		if n.cfg.Mode == ModeIndependent {
			// Merging in place yields the same element-wise maximum the
			// seed computed into a fresh clone.
			n.ddv.Merge(commitVec)
			n.ddv[n.cluster] = seq
		} else {
			// n.ddv is this node's owned buffer (nothing aliases it:
			// every escape point clones), so the commit DDV is copied
			// in place.
			n.ddv.CopyFrom(commitVec)
		}
		n.commitBase.CopyFrom(commitVec)
	}
	n.ddvChanged()
	if !n.denseWire && n.cfg.Mode == ModeIndependent {
		// Entries still above the new base stay dirty for the next ack.
		n.recvDirty.Refresh(func(i int) bool { return n.ddv[i] > n.commitBase[i] })
	}
	if n.cfg.Mode == ModeHC3I {
		// ddv now equals the Meta stored below (HC3I holds the whole
		// cluster at the committed vector between commits): restart the
		// incremental GC-report scan from this clean anchor.
		n.gcScanDirty.Reset()
		n.gcScanValid = true
	}
	rec := n.provisional
	// The record outlives the commit message, which is shared across
	// the cluster: the stored Meta needs its own copy.
	rec.meta = Meta{SN: seq, DDV: n.arena.Clone(commitVec)}
	if !n.denseWire {
		// The commit's pair set, kept for the GC's chain-delta reports
		// (owned: cut from a pair arena here or on the leader, or
		// decoded fresh by the live runtime).
		rec.deltaPairs = pairs
	}
	n.clcs = append(n.clcs, rec)
	n.provisional = nil
	n.phase = cpIdle
	n.frozenSends = false
	n.frozenDelivs = false
	n.env.Trace(sim.TraceDebug, "CLC %d committed ddv=%v forced=%v", seq, commitVec, forced)
	if n.obs != nil {
		n.obs.ObserveCommit(n.id, seq, n.epoch, commitVec, pairs, forced)
	}
	if n.stab != nil {
		// The committed record's snapshot is now on stable storage:
		// everything it covers is permanent unless a later rollback
		// restores an older checkpoint.
		n.stab.Stabilized(rec.state)
	}

	if n.leader() {
		n.inFlight = false
		// The 2PC window during which application traffic was frozen:
		// dominated by the state replication to stable storage.
		n.env.StatSeries(n.keys.clcFreeze,
			n.env.Now().Sub(n.inFlightSince).Seconds())
		n.env.Stat(n.keys.clcCommitted, 1)
		if forced {
			n.env.Stat(n.keys.clcForced, 1)
		} else {
			n.env.Stat(n.keys.clcUnforced, 1)
		}
		// "the timer is reset when a forced CLC is established" (§5.2):
		// every commit re-arms the unforced-CLC delay.
		n.env.SetTimer(TimerCLC, n.cfg.CLCPeriod)
		n.recordStoredStat()
		// Drop the pending force set if this commit satisfied it; a
		// remaining excess starts the next forced CLC below. Only dirty
		// indices can hold non-zero entries.
		if n.pendingForce != nil {
			still := false
			for _, i := range n.pendingDirty.Indices() {
				if n.pendingForce[i] > n.ddv[i] {
					still = true
					break
				}
			}
			if !still {
				n.pendingForce = nil
			}
		}
	}

	n.drainSendQueue()
	n.drainInbound()
	n.reexamineHeld()
	if n.leader() {
		n.env.StatSeries(n.keys.storageBytes, float64(n.StorageBytes()))
		n.tryStartForced()
	}
	n.checkMemoryPressure()
}

// abortCheckpoint discards any in-progress 2PC state; invoked by the
// rollback path, which supersedes whatever the checkpoint was doing.
func (n *Node) abortCheckpoint() {
	if n.phase == cpPrepared || n.inFlight {
		n.env.Stat(n.keys.clcAborted, 1)
	}
	n.phase = cpIdle
	n.provisional = nil
	n.inFlight = false
	n.pendingForce = nil
	n.pendingDirty.Reset()
	n.pendingAlways = false
	n.ackedDDVs = nil
	n.resetAckAccum()
	n.frozenSends = false
	n.frozenDelivs = false
}
