package core

import (
	"fmt"

	"repro/internal/topology"
)

// This file holds the pure recovery-line algorithms of §3.4/§3.5. They
// are shared by the live rollback path and by the garbage collector
// (which "simulates a failure in each cluster"), and are the most
// heavily property-tested part of the protocol.

// OldestWith returns the index of the oldest checkpoint in list whose
// DDV entry for cluster c is >= s, or -1 if none qualifies. Per §3.4,
// this is the checkpoint a cluster must restore when it receives a
// rollback alert (c, s) and its current DDV entry for c is >= s: the
// oldest qualifying checkpoint is the forced CLC taken just *before*
// delivering the first message that created the dangerous dependency,
// so its state does not depend on the rolled-back execution.
func OldestWith(list []Meta, c topology.ClusterID, s SN) int {
	for i, m := range list {
		if m.DDV[c] >= s {
			return i
		}
	}
	return -1
}

// NeedsRollback applies the §3.4 test: given the cluster's effective
// DDV, must it roll back on alert (c, s)?
func NeedsRollback(current DDV, c topology.ClusterID, s SN) bool {
	return current[c] >= s
}

// NewestBelow returns the index of the newest checkpoint in list whose
// DDV entry for cluster c is < s, or -1 if none. This is the rollback
// target under *independent* checkpointing (no forced CLCs exist, so
// the receiver must fall back behind the dependency entirely) — the
// rule whose repeated application produces the domino effect (§2.2).
func NewestBelow(list []Meta, c topology.ClusterID, s SN) int {
	for i := len(list) - 1; i >= 0; i-- {
		if list[i].DDV[c] < s {
			return i
		}
	}
	return -1
}

// RecoveryLine is the outcome of a (real or simulated) failure: for
// each cluster, the checkpoint index it restores (len(list) means "kept
// its current state") and the SN it runs from afterwards.
type RecoveryLine struct {
	// Index[j] is the restored checkpoint's position in cluster j's
	// stored list, or len(list) if cluster j did not roll back.
	Index []int
	// SN[j] is cluster j's sequence number after the cascade.
	SN []SN
	// RolledBack[j] reports whether cluster j had to roll back.
	RolledBack []bool
	// Alerts counts the inter-cluster rollback alerts the cascade
	// would emit (the faulty cluster alerts everyone; every further
	// rollback alerts everyone again).
	Alerts int
}

// Depth returns how many clusters rolled back.
func (r RecoveryLine) Depth() int {
	n := 0
	for _, b := range r.RolledBack {
		if b {
			n++
		}
	}
	return n
}

// SimulateFailure computes the recovery line for a failure in cluster
// f. lists[j] is cluster j's stored checkpoints in commit order
// (ascending SN); currents[j] is cluster j's present DDV (so
// currents[j][j] is its present SN). The faulty cluster first restores
// its newest stored checkpoint; alerts then cascade to a fixpoint.
//
// It returns an error if the cascade needs a checkpoint that does not
// exist — which the garbage collector's safety rule must make
// impossible; the error path exists so tests can prove it never fires.
func SimulateFailure(lists [][]Meta, currents []DDV, f topology.ClusterID) (RecoveryLine, error) {
	n := len(lists)
	if len(currents) != n {
		return RecoveryLine{}, fmt.Errorf("core: %d checkpoint lists but %d current DDVs", n, len(currents))
	}
	rl := RecoveryLine{
		Index:      make([]int, n),
		SN:         make([]SN, n),
		RolledBack: make([]bool, n),
	}
	eff := make([]DDV, n) // effective DDV after rollbacks so far
	for j := 0; j < n; j++ {
		rl.Index[j] = len(lists[j])
		rl.SN[j] = currents[j][j]
		eff[j] = currents[j]
	}

	type alert struct {
		c topology.ClusterID
		s SN
	}
	var queue []alert

	rollTo := func(j topology.ClusterID, idx int) {
		m := lists[j][idx]
		rl.Index[j] = idx
		rl.SN[j] = m.SN
		rl.RolledBack[j] = true
		eff[j] = m.DDV
		queue = append(queue, alert{j, m.SN})
		rl.Alerts += n - 1
	}

	if len(lists[f]) == 0 {
		return rl, fmt.Errorf("core: faulty cluster %d has no stored checkpoint", f)
	}
	rollTo(f, len(lists[f])-1)

	for len(queue) > 0 {
		a := queue[0]
		queue = queue[1:]
		for j := topology.ClusterID(0); int(j) < n; j++ {
			if j == a.c || !NeedsRollback(eff[j], a.c, a.s) {
				continue
			}
			idx := OldestWith(lists[j], a.c, a.s)
			if idx == -1 {
				return rl, fmt.Errorf("core: cluster %d depends on cluster %d SN>=%d but stores no qualifying checkpoint", j, a.c, a.s)
			}
			if idx < rl.Index[j] {
				rollTo(j, idx)
			}
		}
	}
	return rl, nil
}

// SmallestSNs implements the garbage collector's analysis (§3.5): it
// simulates a failure in every cluster and returns, per cluster, the
// smallest SN that cluster might ever have to roll back to. Checkpoints
// strictly older than this threshold can never be a rollback target and
// may be discarded.
func SmallestSNs(lists [][]Meta, currents []DDV) ([]SN, error) {
	n := len(lists)
	min := make([]SN, n)
	for j := 0; j < n; j++ {
		min[j] = currents[j][j]
	}
	for f := 0; f < n; f++ {
		rl, err := SimulateFailure(lists, currents, topology.ClusterID(f))
		if err != nil {
			return nil, err
		}
		for j := 0; j < n; j++ {
			if rl.SN[j] < min[j] {
				min[j] = rl.SN[j]
			}
		}
	}
	return min, nil
}
