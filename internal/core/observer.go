package core

import "repro/internal/topology"

// Observer is an optional upgrade interface of Env: a harness that
// implements it receives a callback at every protocol event that
// changes the global safety picture — checkpoint commits, rollbacks
// and recoveries, inter-cluster deliveries, delta-piggyback sends and
// garbage-collection drops. The online invariant oracle
// (internal/oracle) is the one implementation; runs without an
// observer pay exactly one nil check per site.
//
// Contract: callbacks run synchronously inside the protocol event that
// triggered them, on the harness's single simulation goroutine. DDV
// and pair arguments may alias node-owned buffers that mutate after
// the callback returns — an observer copies what it keeps.
type Observer interface {
	// ObserveMode reports a node's protocol mode at construction.
	// Mode-specific claims are scoped by it: the no-orphan obligation
	// assumes eager dependency tracking (ModeHC3I / ModeForceAll raise
	// the cluster DDV before delivering), which ModeIndependent's lazy
	// tracking deliberately gives up — orphans between commits are the
	// documented cost of that baseline (§2.2), not a violation.
	ObserveMode(id topology.NodeID, mode ProtocolMode)
	// ObserveCommit fires once per node per committed CLC, after the
	// node adopted the new SN and DDV and stored the record, before any
	// queued traffic drains. ddv is the committed cluster-wide vector;
	// pairs is the commit's delta against the previous commit (nil on
	// the dense wire, where ddv is the only encoding).
	ObserveCommit(id topology.NodeID, seq SN, epoch Epoch, ddv DDV, pairs []DDVPair, forced bool)
	// ObserveRollback fires once per node per completed local restore —
	// both the in-place rollback path and the crash-recovery path
	// (replica fetched back from a neighbour). ddv is the restored
	// vector.
	ObserveRollback(id topology.NodeID, toSN SN, newEpoch Epoch, ddv DDV)
	// ObserveDeliver fires at every inter-cluster application delivery:
	// the receiving node dst hands src's payload up with the message's
	// piggybacked (srcEpoch, sendSN) while itself at (recvEpoch,
	// recvSN).
	ObserveDeliver(dst, src topology.NodeID, srcEpoch Epoch, sendSN SN, recvEpoch Epoch, recvSN SN)
	// ObservePiggySend fires for every fresh delta-encoded transitive
	// inter-cluster send: dense is the exact vector the message stands
	// for (the node's shared piggy clone — immutable once handed out),
	// entering the src.Cluster→dstCluster pipe in FIFO order. The pipe
	// decoder must reproduce it at pipe exit (see netsim.PipeExit).
	ObservePiggySend(src topology.NodeID, dstCluster topology.ClusterID, dense DDV)
	// ObserveGCDrop fires once per node per applied garbage-collection
	// threshold vector.
	ObserveGCDrop(id topology.NodeID, minSNs []SN)
}

// MutationFlags deliberately break one protocol rule each, so the
// invariant oracle's mutation smoke tests can prove it detects real
// protocol damage (a checker that never fires proves nothing). Test
// instrumentation only — never set outside oracle smoke tests, and
// always reset afterwards.
var Mutate MutationFlags

// MutationFlags is the set of seedable protocol breaks.
type MutationFlags struct {
	// AcceptStaleEpoch disables the inter-cluster stale-epoch guard:
	// messages from an aborted (rolled-back) execution are delivered
	// instead of dropped, creating orphan deliveries no cascade will
	// ever erase — the exact damage the §3.4 epoch discipline prevents.
	AcceptStaleEpoch bool
	// GCOverCollect makes the garbage collector distribute thresholds
	// one past the safe minimum, discarding the oldest checkpoint a
	// future recovery could still need — violating the §3.5 safety
	// rule.
	GCOverCollect bool
}
