package core

import "repro/internal/topology"

// This file implements the delta wire representation of Direct
// Dependencies Vectors: instead of shipping one SN per cluster on every
// message that carries dependency metadata (O(width) to build, copy and
// examine), messages carry only the (index, SN) pairs that changed, and
// receivers patch a stored dense copy in place. The dense DDV type
// remains the canonical in-node state; the delta form exists only on
// the wire, so protocol logic and recorded results are untouched.
//
// Exactness, not convergence, is the contract: every decode must yield
// byte-for-byte the vector the dense encoding would have shipped. Each
// escape point gets it from a different invariant:
//
//   - Forced-CLC demands (ForceCLC, CLCRequest) carry only raised
//     entries; the leader merges them element-wise, and entries equal
//     to the cluster DDV merge to nothing — so omitting them is exact.
//   - Prepare acks (CLCAck, ModeIndependent) carry the entries this
//     node raised above the last committed vector; the commit merge
//     starts from a superset of that base, so unraised entries are
//     no-ops there too.
//   - Commit broadcasts (CLCCommit) are deltas against the previous
//     commit; the two-phase commit's Seq continuity guarantees every
//     participant holds exactly that base (commitBase), and every
//     rollback/recovery path resets the base from a stored dense Meta.
//   - Transitive piggybacks (AppMsg) ride a per-directed-cluster-pair
//     DeltaCodec: the simulated inter-cluster pipe is FIFO and
//     loss-free (drops happen at the destination node, after the
//     pipe), so decoding at pipe exit replays the encoder's exact
//     write sequence (see netsim.PipeExit).
//   - GC reports ship the stored-CLC chain as one dense anchor plus
//     the per-commit pairs each checkpoint was committed with.
//
// The network model keeps pricing dependency metadata at its dense
// width (perClusterByte per cluster): transmission delays, byte
// counters and therefore all recorded goldens are invariant under the
// encoding switch (core.Config.DenseWire selects the dense reference
// encoding for differential tests and benchmarks).

// DDVPair is one sparse DDV entry: the cluster index and its SN.
type DDVPair struct {
	Idx int32
	SN  SN
}

// applyPairs patches d in place with the pairs (d[Idx] = SN).
func (d DDV) applyPairs(pairs []DDVPair) {
	for _, p := range pairs {
		d[p.Idx] = p.SN
	}
}

// mergePairs raises d to the element-wise maximum with the pairs and
// reports into dirty which indices changed. dirty may be nil.
func (d DDV) mergePairs(pairs []DDVPair, dirty *DirtySet) {
	for _, p := range pairs {
		if p.SN > d[p.Idx] {
			d[p.Idx] = p.SN
			if dirty != nil {
				dirty.Add(int(p.Idx))
			}
		}
	}
}

// diffPairs appends to buf one pair per entry where cur differs from
// base, and returns the extended buffer. O(width) worst case, but the
// chunked kernel skips unchanged blocks whole; callers that know
// nothing changed (generation counters) skip the call entirely.
func diffPairs(buf []DDVPair, cur, base DDV) []DDVPair {
	return diffPairsKernel(buf, cur, base)
}

// DirtySet tracks which DDV indices changed since it was last reset,
// so merges and scans iterate O(dirty entries) instead of O(width).
// The zero value is unusable; call Init first.
type DirtySet struct {
	mark []bool
	idx  []int32
}

// Init sizes the set for vectors of the given width.
func (s *DirtySet) Init(width int) {
	s.mark = make([]bool, width)
	s.idx = s.idx[:0]
}

// Add marks index i dirty.
func (s *DirtySet) Add(i int) {
	if !s.mark[i] {
		s.mark[i] = true
		s.idx = append(s.idx, int32(i))
	}
}

// Len returns the number of dirty indices.
func (s *DirtySet) Len() int { return len(s.idx) }

// Indices returns the dirty indices in first-marked order. The slice is
// owned by the set: valid only until the next Add or Reset.
func (s *DirtySet) Indices() []int32 { return s.idx }

// Reset clears the set in O(dirty entries).
func (s *DirtySet) Reset() {
	for _, i := range s.idx {
		s.mark[i] = false
	}
	s.idx = s.idx[:0]
}

// Refresh drops every dirty index for which keep returns false,
// preserving first-marked order of the survivors.
func (s *DirtySet) Refresh(keep func(i int) bool) {
	kept := s.idx[:0]
	for _, i := range s.idx {
		if keep(int(i)) {
			kept = append(kept, i)
		} else {
			s.mark[i] = false
		}
	}
	s.idx = kept
}

// PairArena hands out DDVPair slices cut from chunked backing storage,
// the sparse counterpart of DDVArena: one chunk allocation per
// pairArenaChunk pairs instead of one slice per escaping message.
// Slices are full-capacity cuts, so appends can never bleed into a
// neighbouring slice, and chunks stay valid as long as any cut
// references them.
type PairArena struct {
	chunk []DDVPair
	off   int
}

// pairArenaChunk is how many pairs one backing chunk holds.
const pairArenaChunk = 256

// Clone returns an arena-backed copy of pairs; nil stays nil (and empty
// stays empty without consuming arena space).
func (a *PairArena) Clone(pairs []DDVPair) []DDVPair {
	if len(pairs) == 0 {
		return pairs
	}
	n := len(pairs)
	if a.off+n > len(a.chunk) {
		size := pairArenaChunk
		if n > size {
			size = n
		}
		a.chunk = make([]DDVPair, size)
		a.off = 0
	}
	c := a.chunk[a.off : a.off+n : a.off+n]
	a.off += n
	copy(c, pairs)
	return c
}

// codecJournal is how many decoded deltas a DeltaCodec remembers. A
// receiver node that examined the pipe less than codecJournal deltas
// ago re-examines only the union of the journalled pairs; one that
// fell further behind rescans the full width once.
const codecJournal = 32

// DeltaCodec is the piggyback codec of one directed inter-cluster pipe
// (the LAN/WAN uplink netsim serializes src→dst traffic through). The
// encoder half lives at the sending cluster's gateway: enc is the last
// vector shipped on the pipe, and Encode emits the pairs that changed
// since. The decoder half lives at the receiving gateway: dec replays
// the encoder's writes in pipe (FIFO) order, so after decoding message
// m, dec is byte-identical to the dense vector m would have carried.
// Node restarts do not touch the codec — like the pipe itself, the
// gateway is part of the network model, not of node volatile memory.
type DeltaCodec struct {
	enc DDV // last vector encoded onto the pipe
	dec DDV // last vector decoded off the pipe

	// encGen is the sender-side DDV generation enc reflects: when the
	// sending node's generation still matches, nothing changed and
	// Encode is O(1). Generation 0 means "never encoded".
	encGen uint64

	// ver counts non-empty decodes; journal[ (ver-1) % codecJournal ]
	// holds the pairs of the most recent one.
	ver     uint64
	journal [codecJournal][]DDVPair

	// seen is the newest version any node of the receiving cluster
	// examined with a clean (no dependency raised) outcome, qualified
	// by the epoch that node was in (seenEpoch). It is shared
	// deliberately: outside commit windows every node of an HC3I
	// cluster holds the same committed DDV (and frozen nodes do not
	// examine), so one node's clean exam covers the others. The epoch
	// qualifier closes the rollback window: while a cluster rollback
	// is in flight, a peer that has not yet executed its RollbackCmd
	// still examines with the old epoch's higher DDV, and a cursor it
	// advances must not let an already-rolled-back node (whose DDV
	// dropped) skip its own full re-examination — an exam only trusts
	// the cursor when seenEpoch matches its own epoch, and epochs
	// never go backwards. ResetSeen additionally discards the cursor
	// outright on every DDV-lowering event.
	seen      uint64
	seenEpoch Epoch

	// scratch is the encoder's reusable diff buffer.
	scratch []DDVPair
}

// Init sizes the codec for the federation width. Both ends start from
// the all-zero vector, matching a DDV's initial state.
func (c *DeltaCodec) Init(width int) {
	c.enc = NewDDV(width)
	c.dec = NewDDV(width)
}

// Encode emits the pairs that changed since the last vector shipped on
// this pipe and advances the encoder state. gen is the sender's DDV
// generation: if it matches the previous call's, the vector is
// unchanged and no diff runs. The returned slice is cut from ar and
// owned by the message (journalled by the decoder later).
func (c *DeltaCodec) Encode(cur DDV, gen uint64, ar *PairArena) []DDVPair {
	if gen != 0 && gen == c.encGen {
		return nil
	}
	pairs := diffPairs(c.scratch[:0], cur, c.enc)
	c.scratch = pairs
	c.encGen = gen
	if len(pairs) == 0 {
		return nil
	}
	c.enc.applyPairs(pairs)
	return ar.Clone(pairs)
}

// Decode patches the decoder vector with one message's pairs, in pipe
// order. Empty deltas never reach the decoder (Encode returns nil).
func (c *DeltaCodec) Decode(pairs []DDVPair) {
	c.dec.applyPairs(pairs)
	c.journal[c.ver%codecJournal] = pairs
	c.ver++
}

// EncodeBatch encodes count same-tick messages onto the pipe in one
// codec pass and appends their pair sets to out (one entry per
// message, nil for "unchanged"). The sender's vector cannot change
// between same-tick messages, so only the first member can carry a
// diff — the batch costs one diff and at most one arena claim, where
// per-message encoding would re-run the (empty) diff for every member
// whenever the sender has no generation counter. Byte-equivalent to
// count sequential Encode calls with the same arguments; FuzzBatchCodec
// pins the equivalence.
func (c *DeltaCodec) EncodeBatch(out [][]DDVPair, cur DDV, gen uint64, count int, ar *PairArena) [][]DDVPair {
	if count <= 0 {
		return out
	}
	out = append(out, c.Encode(cur, gen, ar))
	for i := 1; i < count; i++ {
		out = append(out, nil)
	}
	// A successful Encode recorded gen; when the sender has no
	// generation counter (gen 0), the members after the first would
	// each re-diff against an already-synced enc and find nothing —
	// the loop above skips those no-op passes outright.
	return out
}

// DecodeBatch replays a batch of same-pipe messages in FIFO order —
// one journal entry and version step per non-empty member, exactly as
// per-message decoding would — and returns the decoder vector after
// the last member. Callers that need the vector a *specific* member
// carried (the per-message examination does) still call Decode
// member-by-member at unpack time; this entry point serves consumers
// that only need the batch's final vector.
func (c *DeltaCodec) DecodeBatch(members [][]DDVPair) DDV {
	for _, pairs := range members {
		if len(pairs) > 0 {
			c.Decode(pairs)
		}
	}
	return c.dec
}

// Current returns the decoder vector: the exact dense vector the
// message just decoded would have carried. Owned by the codec — valid
// only until the next Decode on this pipe; callers that defer a
// message clone it first.
func (c *DeltaCodec) Current() DDV { return c.dec }

// Version returns the decode version.
func (c *DeltaCodec) Version() uint64 { return c.ver }

// ResetSeen discards the clean-exam cursor: the next examination
// rescans the full width. Receiving nodes call it (through
// PiggyCodecs.ResetPiggyExam) whenever their DDV may have decreased.
func (c *DeltaCodec) ResetSeen() {
	c.seen = 0
	c.seenEpoch = 0
}

// examReplayMax bounds how many journalled deltas an examination
// replays before falling back to one full-width scan (the scan is a
// tight compare loop — the dense encoding's exam — so replaying long
// windows is never cheaper).
const examReplayMax = 8

// PiggyCodecs is an optional upgrade interface of Env: a harness that
// transports transitive piggybacks in delta form returns the codec of
// the directed inter-cluster pipe src→dst (nil when the pipe has no
// codec, e.g. dense-wire runs). Environments that do not implement it
// (the live runtime) get dense piggybacks.
type PiggyCodecs interface {
	PiggyCodec(src, dst topology.ClusterID) *DeltaCodec
	// ResetPiggyExam discards the clean-exam cursor of every existing
	// pipe into cluster dst (without instantiating absent ones).
	ResetPiggyExam(dst topology.ClusterID)
}
