package core

import (
	"testing"
	"testing/quick"
)

func TestDDVCloneIndependent(t *testing.T) {
	d := DDV{1, 2, 3}
	c := d.Clone()
	c[0] = 99
	if d[0] != 1 {
		t.Fatal("Clone shares backing storage")
	}
	if !d.Equal(DDV{1, 2, 3}) {
		t.Fatal("original mutated")
	}
}

func TestDDVMerge(t *testing.T) {
	d := DDV{5, 0, 3}
	changed := d.Merge(DDV{4, 2, 3})
	if !changed {
		t.Fatal("Merge should report change")
	}
	if !d.Equal(DDV{5, 2, 3}) {
		t.Fatalf("merged = %v", d)
	}
	if d.Merge(DDV{1, 1, 1}) {
		t.Fatal("Merge reported change when nothing rose")
	}
}

func TestDDVEqual(t *testing.T) {
	if (DDV{1, 2}).Equal(DDV{1, 2, 3}) {
		t.Fatal("length mismatch compared equal")
	}
	if !(DDV{}).Equal(DDV{}) {
		t.Fatal("empty DDVs unequal")
	}
}

func TestDDVString(t *testing.T) {
	if s := (DDV{1, 0, 3}).String(); s != "[1 0 3]" {
		t.Fatalf("String = %q", s)
	}
}

// Properties: merge is idempotent, commutative in outcome, monotone.
func TestDDVMergeProperties(t *testing.T) {
	mk := func(raw []uint8) DDV {
		d := NewDDV(4)
		for i := range d {
			if i < len(raw) {
				d[i] = SN(raw[i])
			}
		}
		return d
	}
	f := func(aRaw, bRaw []uint8) bool {
		a, b := mk(aRaw), mk(bRaw)
		ab := a.Clone()
		ab.Merge(b)
		ba := b.Clone()
		ba.Merge(a)
		if !ab.Equal(ba) {
			return false
		}
		again := ab.Clone()
		if again.Merge(b) || again.Merge(a) {
			return false // idempotent
		}
		for i := range ab {
			if ab[i] < a[i] || ab[i] < b[i] {
				return false // monotone
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
