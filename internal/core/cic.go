package core

import (
	"repro/internal/sim"
	"repro/internal/topology"
)

// This file implements the application-message path: interception of
// every inter-process message (system model, §2.1), the
// communication-induced checkpointing rules between clusters (§3.2) and
// the optimistic sender-side message log (§3.3).

// Send is the application-facing entry point: transmit payload to dst.
// Sends issued while the node is frozen by a 2PC (or by an in-progress
// rollback) are queued and released at commit/resume, which is exactly
// the paper's "application messages are queued to prevent intra-cluster
// dependencies".
func (n *Node) Send(dst topology.NodeID, p AppPayload) {
	if n.failed {
		return
	}
	if dst == n.id {
		panic("core: node sending to itself")
	}
	if n.frozenSends || n.lostState {
		n.sendQueue = append(n.sendQueue, AppPayloadTo{Dst: dst, Payload: p})
		n.env.Stat("app.sends_frozen", 1)
		return
	}
	n.doSend(dst, p)
}

func (n *Node) doSend(dst topology.NodeID, p AppPayload) {
	n.nextMsgID++
	m := AppMsg{
		MsgID:      n.nextMsgID,
		Payload:    p,
		SrcCluster: n.cluster,
		SrcEpoch:   n.epoch,
		SendSN:     n.sn,
	}
	if dst.Cluster != n.cluster {
		// Target the receiver cluster's newest known epoch, like
		// resends do: if the receiver's own rollback command is still
		// in flight, a plain send could be delivered (and acked) into
		// the doomed state and then erased by the restore, with no
		// later alert to trigger a resend. The receiver defers such
		// messages until its epoch catches up.
		m.DstEpoch = n.knownEpoch[dst.Cluster]
		// Inter-cluster: piggyback the dependency information and log
		// the message optimistically in volatile memory (§3.3),
		// mirroring the entry to the stable-storage neighbour so a
		// crash of *this* node does not lose it.
		var logPiggy DDV
		if n.cfg.Transitive {
			if cd := n.pipeCodecTo(dst.Cluster); cd != nil {
				// Delta wire: the message carries only the entries that
				// changed since the last message on this pipe (O(1)
				// while the DDV generation is unchanged); the log entry
				// keeps the exact dense vector for resends, shared
				// across all sends of one generation.
				m.PiggyPairs = cd.Encode(n.ddv, n.piggyVecID(), &n.pairArena)
				m.PiggyWidth = int32(n.cfg.Clusters)
				logPiggy = n.sharedPiggy()
				if n.obs != nil {
					n.obs.ObservePiggySend(n.id, dst.Cluster, logPiggy)
				}
			} else {
				// Dense wire: retained by both the wire message and the
				// log entry below, so it needs an owned copy.
				m.PiggyDDV = n.arena.Clone(n.ddv)
				logPiggy = m.PiggyDDV
			}
		}
		n.log = append(n.log, &logEntry{
			msgID:      m.MsgID,
			dst:        dst,
			dstCluster: dst.Cluster,
			payload:    p,
			piggySN:    n.sn,
			piggyDDV:   logPiggy,
			sendSN:     n.sn,
		})
		if len(n.log) > n.logPeak {
			n.logPeak = len(n.log)
		}
		n.env.Stat("log.appended", 1)
		if n.cfg.Replicas > 0 {
			mir := LogMirror{
				Owner: n.id, MsgID: m.MsgID, Dst: dst, Payload: p,
				PiggySN: n.sn, PiggyDDV: logPiggy, SendSN: n.sn,
			}
			n.env.Send(n.holderFor(), controlSize(mir), mir)
		}
	}
	n.sendAppMsg(dst, m)
}

// sendAppMsg transmits an application wrapper, through a recycled box
// when the harness offers one (see BoxPool).
func (n *Node) sendAppMsg(dst topology.NodeID, m AppMsg) {
	if n.boxes != nil {
		b := n.boxes.AppMsgBox()
		*b = m
		n.env.SendApp(dst, m.WireSize(), b)
		return
	}
	n.env.SendApp(dst, m.WireSize(), m)
}

func (n *Node) drainSendQueue() {
	q := n.sendQueue
	n.sendQueue = nil
	for _, s := range q {
		n.doSend(s.Dst, s.Payload)
	}
}

// DebugHook, when non-nil, observes every application-message routing
// decision: stage is one of "drop_stale", "defer_epoch", "defer_frozen",
// "held", "deliver_inter", "deliver_intra". Test instrumentation only —
// never set in production paths.
var DebugHook func(node topology.NodeID, stage string, m AppMsg)

func (n *Node) debug(stage string, m AppMsg) {
	if DebugHook != nil {
		DebugHook(n.id, stage, m)
	}
}

// onAppMsg applies the receive-side guards, then routes the message to
// the intra- or inter-cluster delivery path.
func (n *Node) onAppMsg(src topology.NodeID, m AppMsg) {
	if src.Cluster == n.cluster {
		// Intra-cluster: drop traffic from an aborted execution.
		if m.SrcEpoch != n.epoch || n.lostState {
			n.debug("drop_stale", m)
			n.env.Stat("app.dropped_stale", 1)
			return
		}
	} else {
		// Inter-cluster: epochs of other clusters are learned lazily.
		known := n.knownEpoch[src.Cluster]
		if m.SrcEpoch < known {
			// One epoch behind, sent before the rollback point the
			// alert announced: the send is part of the sender's
			// restored state and the content is still valid (it may be
			// the only surviving copy of a resend that raced our own
			// rollback). Anything else is aborted-execution traffic.
			if !n.priorEpochValid(src, m) && !Mutate.AcceptStaleEpoch {
				n.debug("drop_stale", m)
				n.env.Stat("app.dropped_stale", 1)
				return
			}
			n.env.Stat("app.accepted_prior_epoch", 1)
		}
		if m.SrcEpoch > known {
			n.knownEpoch[src.Cluster] = m.SrcEpoch
		}
		if m.DstEpoch > n.epoch || n.lostState {
			// A resent message overtook our own rollback command (or
			// we are mid-recovery): defer it.
			n.debug("defer_epoch", m)
			n.materializePiggy(&m, src)
			n.inboundQueue = append(n.inboundQueue, inbound{src: src, msg: m})
			n.env.Stat("app.deferred_epoch", 1)
			return
		}
	}
	if n.frozenDelivs {
		// Frozen by an in-progress 2PC: queue until commit (§3.1).
		n.debug("defer_frozen", m)
		n.materializePiggy(&m, src)
		n.inboundQueue = append(n.inboundQueue, inbound{src: src, msg: m})
		n.env.Stat("app.deferred_frozen", 1)
		return
	}
	if src.Cluster == n.cluster {
		n.deliverIntra(src, m)
	} else {
		n.cicReceive(src, m)
	}
}

// drainInbound re-runs deferred messages whose guards may now pass
// (after a commit unfreezes delivery or a rollback bumps the epoch).
func (n *Node) drainInbound() {
	if len(n.inboundQueue) == 0 {
		return
	}
	q := n.inboundQueue
	n.inboundQueue = nil
	for _, in := range q {
		n.onAppMsg(in.src, in.msg)
	}
}

// deliverIntra hands an intra-cluster message to the application. If
// one or more checkpoint lines passed between send and receive, the
// message is folded into those checkpoints' channel state (lateLog) so
// a restore re-delivers it — keeping every committed CLC free of lost
// in-transit messages (§2.2).
func (n *Node) deliverIntra(src topology.NodeID, m AppMsg) {
	if m.SendSN < n.sn {
		for _, rec := range n.clcs {
			if rec.meta.SN > m.SendSN && rec.meta.SN <= n.sn {
				rec.lateLog = append(rec.lateLog, inbound{src: src, msg: m})
			}
		}
		n.env.Stat("app.late_logged", 1)
	}
	n.env.Stat("app.delivered.intra", 1)
	n.app.Deliver(src, m.Payload)
}

// cicReceive applies the communication-induced rule of §3.2 to an
// inter-cluster message: deliver directly when the piggybacked
// dependency information is already covered by the DDV; otherwise hold
// the message and force a CLC, delivering only after it commits. The
// baseline modes replace the rule: ModeForceAll checkpoints before
// every delivery, ModeIndependent never does.
func (n *Node) cicReceive(src topology.NodeID, m AppMsg) {
	switch n.cfg.Mode {
	case ModeForceAll:
		// The Figure 4 strawman: every inter-cluster message forces a
		// CLC before delivery, useful or not.
		n.heldInter = append(n.heldInter, inbound{src: src, msg: m, heldAt: n.sn})
		n.env.Stat("cic.held", 1)
		if n.denseWire {
			target := n.buildForceTarget()
			if m.SendSN > target[src.Cluster] {
				target[src.Cluster] = m.SendSN
			}
			n.requestForceAlways(target)
			return
		}
		pairs := n.pairScratch[:0]
		if m.SendSN > n.ddv[src.Cluster] {
			pairs = append(pairs, DDVPair{Idx: int32(src.Cluster), SN: m.SendSN})
		}
		n.pairScratch = pairs
		n.requestForceAlwaysPairs(pairs)
		return
	case ModeIndependent:
		// Lazy tracking: remember the dependency locally (merged
		// cluster-wide at the next commit), deliver immediately.
		if m.SendSN > n.ddv[src.Cluster] {
			n.ddv[src.Cluster] = m.SendSN
			n.ddvChanged()
			n.recvDirty.Add(int(src.Cluster))
			n.gcScanDirty.Add(int(src.Cluster))
		}
		n.deliverInter(src, m)
		return
	}
	// ModeHC3I. Collect the entries of the piggybacked dependency
	// information that exceed the DDV — as a dense force target (dense
	// wire) or as sparse pairs (delta wire).
	var target DDV
	var pairs []DDVPair
	raised := false
	switch {
	case n.cfg.Transitive && m.PiggyDDV == nil && m.PiggyWidth > 0:
		// Delta-encoded transitive piggyback: examine only the entries
		// that changed since this node's last clean exam of the pipe.
		pairs = n.examineDeltaPiggy(src.Cluster)
		raised = len(pairs) > 0
		if raised {
			// The held copy is re-examined after the forced commit, by
			// which time the pipe decoder has moved on: pin the exact
			// dense vector this message carried onto the held copy.
			m.PiggyDDV = n.arena.Clone(n.pipeCodecFrom(src.Cluster).Current())
			m.PiggyPairs = nil
		}
	case n.cfg.Transitive && m.PiggyDDV != nil:
		// Transitive extension (§7), dense vector (dense wire, resends
		// and replayed deferred/held copies): merge the whole DDV; any
		// raised entry is a new dependency.
		for i, v := range m.PiggyDDV {
			if topology.ClusterID(i) == n.cluster {
				continue
			}
			if v > n.ddv[i] {
				raised = true
				if n.denseWire {
					if target == nil {
						target = n.buildForceTarget()
					}
					target[i] = v
				} else {
					if pairs == nil {
						pairs = n.pairScratch[:0]
					}
					pairs = append(pairs, DDVPair{Idx: int32(i), SN: v})
				}
			}
		}
		if pairs != nil {
			n.pairScratch = pairs
		}
	case m.SendSN > n.ddv[src.Cluster]:
		raised = true
		if n.denseWire {
			target = n.buildForceTarget()
			target[src.Cluster] = m.SendSN
		} else {
			pairs = append(n.pairScratch[:0], DDVPair{Idx: int32(src.Cluster), SN: m.SendSN})
			n.pairScratch = pairs
		}
	}
	if !raised {
		if n.anchorPending {
			// First covered delivery since the restore: take the
			// post-restore anchor CLC first (see Node.anchorPending).
			n.debug("held", m)
			n.heldInter = append(n.heldInter, inbound{src: src, msg: m})
			n.env.Stat("cic.held", 1)
			n.env.Stat("cic.post_restore_anchor", 1)
			if n.denseWire {
				n.requestForceAlways(n.buildForceTarget())
			} else {
				n.requestForceAlwaysPairs(n.pairScratch[:0])
			}
			return
		}
		n.deliverInter(src, m)
		return
	}
	// "a CLC is forced in the receiver's cluster only when a CLC has
	// been stored in the sender's cluster since the last communication"
	n.debug("held", m)
	n.heldInter = append(n.heldInter, inbound{src: src, msg: m})
	n.env.Stat("cic.held", 1)
	n.env.Trace(sim.TraceDebug, "hold msg %v from %v (piggy %d > ddv %v), forcing CLC",
		m.Payload.ID, src, m.SendSN, n.ddv)
	if n.denseWire {
		n.requestForce(target)
	} else {
		n.requestForcePairs(pairs)
	}
}

// pipeCodecTo returns the delta codec of the outbound pipe to cluster
// dst, nil when piggybacks travel dense.
func (n *Node) pipeCodecTo(dst topology.ClusterID) *DeltaCodec {
	if n.piggyCodecs == nil {
		return nil
	}
	return n.piggyCodecs.PiggyCodec(n.cluster, dst)
}

// pipeCodecFrom returns the delta codec of the inbound pipe from
// cluster src.
func (n *Node) pipeCodecFrom(src topology.ClusterID) *DeltaCodec {
	if n.piggyCodecs == nil {
		return nil
	}
	return n.piggyCodecs.PiggyCodec(src, n.cluster)
}

// examineDeltaPiggy returns the entries of a delta-encoded transitive
// piggyback that exceed this node's DDV. Only entries that changed
// since the pipe's last clean exam can newly exceed it (the cluster's
// DDV is non-decreasing between exams — any decrease resets the
// cursor through ResetPiggyExam), so the steady state examines
// nothing; short change windows replay the codec journal, longer ones
// fall back to one full-width compare loop — the dense encoding's
// exam, paid only right after a change. The cursor advances only on a
// clean (no raise) outcome: while a forced CLC is pending, later
// messages must re-examine the still-uncovered entries, exactly as
// the dense encoding re-compares the full vector every time.
func (n *Node) examineDeltaPiggy(srcCluster topology.ClusterID) []DDVPair {
	cd := n.pipeCodecFrom(srcCluster)
	// The cursor is only trusted when it was advanced in this node's
	// epoch: a peer that has not yet executed an in-flight RollbackCmd
	// examines with the old epoch's higher DDV, and its advances must
	// not cover a node whose DDV already dropped (see DeltaCodec.seen).
	cursorValid := cd.seenEpoch == n.epoch
	if cursorValid && cd.ver == cd.seen {
		return nil // nothing changed since the last clean exam
	}
	cur := cd.dec
	pairs := n.pairScratch[:0]
	own := int32(n.cluster)
	if cursorValid && cd.ver-cd.seen <= examReplayMax {
		// Replay the journalled change indices directly. No dedup: a
		// repeated index yields a duplicate pair, and every consumer
		// merges pairs element-wise-max, so duplicates are no-ops —
		// cheaper than maintaining a dedup set for windows this short.
		for v := cd.seen; v < cd.ver; v++ {
			for _, p := range cd.journal[v%codecJournal] {
				if p.Idx == own {
					continue
				}
				if v := cur[p.Idx]; v > n.ddv[p.Idx] {
					pairs = append(pairs, DDVPair{Idx: p.Idx, SN: v})
				}
			}
		}
	} else {
		pairs = raisedPairs(pairs, cur, n.ddv, own)
	}
	n.pairScratch = pairs
	if len(pairs) == 0 {
		cd.seen = cd.ver
		cd.seenEpoch = n.epoch
	}
	return pairs
}

// materializePiggy pins the dense piggyback vector onto a
// delta-encoded transitive message that is about to be stored for
// later replay (deferred by an epoch gap or a delivery freeze): the
// pipe decoder advances with every later message, so the exact vector
// must be captured now. No-op for intra-cluster, dense or
// non-transitive messages.
func (n *Node) materializePiggy(m *AppMsg, src topology.NodeID) {
	if m.PiggyWidth == 0 || m.PiggyDDV != nil || src.Cluster == n.cluster {
		return
	}
	cd := n.pipeCodecFrom(src.Cluster)
	if cd == nil {
		return
	}
	m.PiggyDDV = n.arena.Clone(cd.Current())
	m.PiggyPairs = nil
}

// priorEpochValid is the §3.4 prior-epoch validity window, shared by
// the arrival-time guard (onAppMsg) and the held-message re-check
// (staleWhileHeld) so the two can never drift apart: a message exactly
// one epoch behind whose send predates the alerted rollback point is
// part of the sender's restored state and still valid.
func (n *Node) priorEpochValid(src topology.NodeID, m AppMsg) bool {
	known := n.knownEpoch[src.Cluster]
	return m.SrcEpoch+1 == known &&
		known == n.alertEpoch[src.Cluster] &&
		m.SendSN < n.alertSN[src.Cluster]
}

// staleWhileHeld reports whether a held inter-cluster message turned
// stale while it waited: the sender's rollback alert arrived after the
// arrival-time epoch guard ran, so its epoch now trails the sender's
// known epoch without qualifying for the prior-epoch validity window.
// Without this re-check, a resend emitted just before the sender's own
// cascaded rollback (its send is then *not* part of the restored
// state) could be held for a forced CLC and delivered as an orphan —
// the §3.4 discipline re-applied at delivery time. Found by the
// invariant oracle under chaos schedules.
func (n *Node) staleWhileHeld(src topology.NodeID, m AppMsg) bool {
	if src.Cluster == n.cluster || m.SrcEpoch >= n.knownEpoch[src.Cluster] {
		return false
	}
	return !n.priorEpochValid(src, m)
}

// reexamineHeld retries held inter-cluster messages after a commit:
// drop those whose sender rolled back while they waited, deliver those
// the new DDV covers, re-demand a forced CLC for the rest (they
// arrived mid-2PC with an even newer dependency). Never delivers while
// deliveries are frozen: on the leader, an uncovered message's force
// demand opens the next 2PC *synchronously* (snapshot already taken),
// and a delivery slipped in behind that snapshot would be acked at the
// pre-commit SN — "captured by the next checkpoint" by the ack
// convention — while the checkpoint's state predates it; a later
// rollback to that checkpoint then erased a delivery the sender
// believed stable, losing the message. Found by the chaos tier's
// mid-2PC crash injection via the message-completeness invariant.
func (n *Node) reexamineHeld() {
	if len(n.heldInter) == 0 || n.frozenDelivs {
		// Frozen: the in-flight commit re-examines on completion.
		return
	}
	held := n.heldInter
	n.heldInter = nil
	for i, in := range held {
		if n.frozenDelivs {
			// An earlier iteration re-opened the next 2PC: hold the
			// rest for its commit, past the fresh snapshot.
			n.heldInter = append(n.heldInter, held[i:]...)
			return
		}
		if n.staleWhileHeld(in.src, in.msg) && !Mutate.AcceptStaleEpoch {
			n.debug("drop_stale", in.msg)
			n.env.Stat("app.dropped_stale_held", 1)
			continue
		}
		if n.cfg.Mode == ModeForceAll {
			if n.sn > in.heldAt {
				n.deliverInter(in.src, in.msg)
			} else {
				n.heldInter = append(n.heldInter, in)
				n.requestForceAlways(n.buildForceTarget())
			}
			continue
		}
		n.cicReceive(in.src, in.msg)
	}
}

// deliverInter hands an inter-cluster message to the application and
// acknowledges it with the receiver cluster's SN at delivery time; the
// sender attaches that SN to its log entry (§3.3). Forced-CLC
// deliveries therefore carry "the local SN + 1" exactly as in §4.
func (n *Node) deliverInter(src topology.NodeID, m AppMsg) {
	n.debug("deliver_inter", m)
	n.env.Stat("app.delivered.inter", 1)
	if m.Resend {
		n.env.Stat("app.delivered.resent", 1)
	}
	if n.obs != nil {
		n.obs.ObserveDeliver(n.id, src, m.SrcEpoch, m.SendSN, n.epoch, n.sn)
	}
	n.app.Deliver(src, m.Payload)
	ack := AppAck{MsgID: m.MsgID, SrcCluster: n.cluster, SrcEpoch: n.epoch, ReceiverSN: n.sn}
	if n.boxes != nil {
		b := n.boxes.AppAckBox()
		*b = ack
		n.env.Send(src, controlSize(ack), b)
		return
	}
	n.env.Send(src, controlSize(ack), ack)
}

// onAppAck records the receiver SN on the matching log entry.
func (n *Node) onAppAck(src topology.NodeID, m AppAck) {
	if m.SrcEpoch < n.knownEpoch[src.Cluster] {
		return
	}
	if m.SrcEpoch > n.knownEpoch[src.Cluster] {
		n.knownEpoch[src.Cluster] = m.SrcEpoch
	}
	for _, e := range n.log {
		if e.msgID == m.MsgID {
			e.acked = true
			e.ackSN = m.ReceiverSN
			return
		}
	}
	// Entry already garbage-collected or pruned by a rollback: ignore.
	n.env.Stat("log.ack_orphan", 1)
}

// resendLoggedTo retransmits the logged messages the rolled-back
// cluster needs: those not yet acknowledged, or acknowledged with an SN
// not captured by the restored checkpoint (§3.4). The paper states the
// rule as "acknowledged with a SN greater than the alert one (or not
// acknowledged at all)" under its ack = SN+1 convention; with our acks
// carrying the delivery-time SN the equivalent test is ackSN >= alertSN
// (a delivery at SN k is first captured by the checkpoint with SN k+1).
func (n *Node) resendLoggedTo(c topology.ClusterID, alertSN SN, newEpoch Epoch) {
	for _, e := range n.log {
		if e.dstCluster != c {
			continue
		}
		if e.acked && e.ackSN < alertSN {
			continue
		}
		e.acked = false
		m := AppMsg{
			MsgID:      e.msgID,
			Payload:    e.payload,
			SrcCluster: n.cluster,
			SrcEpoch:   n.epoch,
			SendSN:     e.piggySN,
			PiggyDDV:   e.piggyDDV,
			Resend:     true,
			DstEpoch:   newEpoch,
		}
		n.env.Stat("log.resent", 1)
		n.env.Trace(sim.TraceDebug, "resend %v to %v (alert sn=%d)", e.payload.ID, e.dst, alertSN)
		n.sendAppMsg(e.dst, m)
	}
}

// pruneLogForOwnRollback drops log entries whose sends are not part of
// the restored state (they will be re-executed by the application):
// "logged messages are used only if the sender does not rollback".
func (n *Node) pruneLogForOwnRollback(toSN SN) {
	kept := n.log[:0]
	for _, e := range n.log {
		if e.sendSN < toSN {
			kept = append(kept, e)
		}
	}
	n.log = kept
}
