package core

import (
	"testing"
	"testing/quick"

	"repro/internal/topology"
)

// Property-based tests (testing/quick) over the pure helpers.

// randomMetaList builds a protocol-plausible checkpoint list from raw
// fuzz input: SNs ascend from 1, DDV entries are monotone per column.
func randomMetaList(raw []uint8, clusters int) []Meta {
	list := []Meta{{SN: 1, DDV: NewDDV(clusters)}}
	list[0].DDV[0] = 1
	for i, b := range raw {
		prev := list[len(list)-1]
		m := Meta{SN: prev.SN + 1, DDV: prev.DDV.Clone()}
		m.DDV[0] = m.SN
		col := 1 + i%(clusters-1)
		m.DDV[col] += SN(b % 4)
		list = append(list, m)
		if len(list) > 48 {
			break
		}
	}
	return list
}

// Property: OldestWith and NewestBelow partition the list — everything
// before the oldest qualifying index is below the threshold and
// everything from it onwards is at or above it (per-column
// monotonicity), so the two searches always return adjacent indices.
func TestOldestNewestPartitionProperty(t *testing.T) {
	f := func(raw []uint8, sRaw uint8) bool {
		const clusters = 3
		list := randomMetaList(raw, clusters)
		c := topology.ClusterID(1)
		s := SN(sRaw % 12)
		if s == 0 {
			s = 1
		}
		oldest := OldestWith(list, c, s)
		newest := NewestBelow(list, c, s)
		switch {
		case oldest == -1:
			return newest == len(list)-1
		case newest == -1:
			return oldest == 0
		default:
			return newest == oldest-1
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: every rollback test result is consistent with the chosen
// target — the target's entry satisfies the alert and any earlier
// checkpoint's does not.
func TestOldestWithIsMinimalProperty(t *testing.T) {
	f := func(raw []uint8, sRaw uint8) bool {
		list := randomMetaList(raw, 4)
		c := topology.ClusterID(2)
		s := SN(sRaw%10) + 1
		idx := OldestWith(list, c, s)
		if idx == -1 {
			for _, m := range list {
				if m.DDV[c] >= s {
					return false
				}
			}
			return true
		}
		if list[idx].DDV[c] < s {
			return false
		}
		for i := 0; i < idx; i++ {
			if list[i].DDV[c] >= s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: control messages always have a positive wire size, and
// state-bearing ones are priced at least at their state size.
func TestControlSizePositiveProperty(t *testing.T) {
	f := func(sz uint16, nClusters uint8) bool {
		n := int(nClusters%8) + 1
		msgs := []Msg{
			AppAck{}, CLCAck{}, CLCRequest{DDVUpdate: NewDDV(n)},
			CLCCommit{DDV: NewDDV(n)}, ForceCLC{NewDDV: NewDDV(n)},
			RollbackAlert{}, RollbackCmd{}, RollbackAck{}, RollbackResume{},
			GCRequest{}, GCCollect{MinSNs: make([]SN, n)},
			GCDrop{MinSNs: make([]SN, n)}, GCDemand{},
			Replica{Size: int(sz)}, RecoverStateResp{Size: int(sz)},
			LogMirror{}, LogTrim{}, ReReplicateReq{},
		}
		for _, m := range msgs {
			s := controlSize(m)
			if s <= 0 {
				return false
			}
		}
		if controlSize(Replica{Size: int(sz)}) < int(sz) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: SmallestSNs never exceeds any cluster's current SN and is
// monotone under appending a fresh checkpoint to any cluster (new
// checkpoints can only move the collectable frontier forward).
func TestSmallestSNsBoundedProperty(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		f := newAbstractFederation(3, seed)
		for s := 0; s < 50; s++ {
			f.step()
		}
		min, err := SmallestSNs(f.lists, f.ddv)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 3; j++ {
			if min[j] > f.sn[j] {
				t.Fatalf("seed=%d: min %d > current %d", seed, min[j], f.sn[j])
			}
			if min[j] < 1 {
				t.Fatalf("seed=%d: min below the initial checkpoint", seed)
			}
		}
		// Commit one more checkpoint somewhere and recompute.
		f.commit(seed2cluster(seed), nil)
		min2, err := SmallestSNs(f.lists, f.ddv)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 3; j++ {
			if min2[j] < min[j] {
				t.Fatalf("seed=%d: frontier moved backwards (%d -> %d)", seed, min[j], min2[j])
			}
		}
	}
}

func seed2cluster(seed int64) int { return int(seed) % 3 }
