// Package core implements the HC3I checkpointing protocol — the primary
// contribution of the paper: coordinated (two-phase commit) checkpointing
// inside each cluster combined with communication-induced checkpointing
// between clusters, sender-side optimistic message logging, cascading
// rollback with recovery-line computation, and garbage collection.
//
// The protocol is written as a deterministic event-driven state machine
// (Node). A harness supplies an Env (clock, transport, timers, tracing)
// and AppHooks (application snapshot/restore/delivery); the discrete
// event simulator (internal/federation) and the live goroutine runtime
// (internal/runtime) drive the very same code.
package core

import (
	"fmt"
	"strings"

	"repro/internal/sim"
	"repro/internal/topology"
)

// SN is a cluster sequence number: the count of cluster-level
// checkpoints (CLCs) committed by a cluster. The two-phase commit keeps
// it identical on every node of the cluster outside commit windows
// (paper §3.1).
type SN uint64

// Epoch counts the rollbacks a cluster has performed. Inter-cluster
// messages are stamped with the sender cluster's epoch so that messages
// from an aborted (rolled-back) execution can be recognized and dropped.
// The paper leaves this implicit ("a sent message will be received in an
// arbitrary but finite laps of time"); an implementation needs it to
// separate pre- and post-rollback traffic.
type Epoch uint64

// DDV is a Direct Dependencies Vector: one SN entry per *cluster* of the
// federation (paper §3.2). For cluster j, DDV[j] is j's own SN and
// DDV[i] (i != j) is the highest SN received from cluster i.
type DDV []SN

// NewDDV returns an all-zero DDV for n clusters.
func NewDDV(n int) DDV { return make(DDV, n) }

// Clone returns an independent copy. Use it when the copy escapes the
// current event (stored in a Meta, handed to Env.Send); for transient
// element-wise work prefer CopyFrom into a reusable buffer.
func (d DDV) Clone() DDV {
	c := make(DDV, len(d))
	copy(c, d)
	return c
}

// CopyFrom overwrites d with o's entries. The vectors must have the
// same length (all DDVs of one federation do). It is the
// allocation-free counterpart of Clone for buffers the caller owns.
func (d DDV) CopyFrom(o DDV) {
	if len(d) != len(o) {
		panic(fmt.Sprintf("core: CopyFrom length mismatch %d != %d", len(d), len(o)))
	}
	copy(d, o)
}

// DDVArena hands out DDVs sliced from chunked backing storage, so the
// protocol's hot paths (checkpoint commits, piggybacked vectors, GC
// reports) allocate one chunk per 64 vectors instead of one slice per
// Clone. Each Node owns one arena; a vector handed out lives as long as
// whatever retains it (the chunk is garbage-collected once every
// vector cut from it is dropped), and chunks are never reallocated, so
// outstanding slices stay valid forever. Full-capacity slicing means a
// misplaced append can never bleed into a neighbouring vector.
type DDVArena struct {
	width int
	chunk []SN
	off   int
	// vecs is the size (in vectors) of the next chunk. Chunks grow
	// geometrically from arenaFirstVectors to arenaChunkVectors, so a
	// node that only ever cuts its handful of setup vectors does not
	// strand a full-size chunk — at 1024 clusters a 64-vector chunk is
	// half a megabyte, per node.
	vecs int
}

// arenaChunkVectors is how many DDVs one steady-state backing chunk
// holds; arenaFirstVectors is the size of an arena's first chunk.
const (
	arenaChunkVectors = 64
	arenaFirstVectors = 8
)

// Init sizes the arena for vectors of the given width (the federation's
// cluster count). Width never changes over a node's lifetime.
func (a *DDVArena) Init(width int) { a.width = width }

// cut slices the next uninitialized vector off the arena. Callers must
// overwrite every entry before the vector is read.
func (a *DDVArena) cut() DDV {
	if a.off+a.width > len(a.chunk) {
		switch {
		case a.vecs == 0:
			a.vecs = arenaFirstVectors
		case a.vecs < arenaChunkVectors:
			a.vecs *= 2
		}
		a.chunk = make([]SN, a.width*a.vecs)
		a.off = 0
	}
	d := a.chunk[a.off : a.off+a.width : a.off+a.width]
	a.off += a.width
	return DDV(d)
}

// New returns a zeroed DDV backed by the arena.
func (a *DDVArena) New() DDV {
	d := a.cut()
	for i := range d {
		d[i] = 0
	}
	return d
}

// Clone returns an arena-backed copy of d.
func (a *DDVArena) Clone(d DDV) DDV {
	c := a.cut()
	copy(c, d)
	return c
}

// Merge raises each entry to the element-wise maximum with o and
// reports whether any entry changed. Used by the transitive-dependency
// extension (paper §7 future work).
func (d DDV) Merge(o DDV) bool { return mergeMax(d, o) }

// Equal reports element-wise equality.
func (d DDV) Equal(o DDV) bool { return equalSN(d, o) }

// Dominates reports whether every entry of d is at least the
// corresponding entry of o — "d already covers the dependencies o
// demands". The vectors must have the same length.
func (d DDV) Dominates(o DDV) bool { return dominatesSN(d, o) }

// String renders the vector like "[1 0 3]".
func (d DDV) String() string {
	parts := make([]string, len(d))
	for i, v := range d {
		parts[i] = fmt.Sprintf("%d", v)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// Meta is the metadata of one stored CLC: its own-cluster sequence
// number and the DDV recorded at commit time. The garbage collector
// exchanges lists of Meta between clusters (paper §3.5), and the
// recovery-line computation operates on them.
type Meta struct {
	SN  SN
	DDV DDV
}

// LogicalID identifies an application message independently of
// retransmissions: the sending node plus a per-sender sequence number.
// The consistency checker uses it to detect ghost and lost messages.
type LogicalID struct {
	Src topology.NodeID
	Seq uint64
}

// String renders the logical ID.
func (l LogicalID) String() string { return fmt.Sprintf("%v#%d", l.Src, l.Seq) }

// AppPayload is what the application hands to the protocol for
// transmission: opaque data plus its logical identity and size.
type AppPayload struct {
	ID   LogicalID
	Data any
	Size int // bytes of application data
}

// TimerKind distinguishes the protocol's timers (the paper's "timers
// file" configures their periods per cluster).
type TimerKind int

// Timer kinds.
const (
	// TimerCLC is the delay between unforced CLCs; armed on the cluster
	// leader only and reset at every commit, forced or not (§5.2).
	TimerCLC TimerKind = iota
	// TimerGC is the garbage-collection period; armed on the federation
	// GC initiator only (§3.5).
	TimerGC
	// NumTimerKinds bounds the enum; harnesses that index per-kind
	// storage size it from this constant.
	NumTimerKinds
)

// String names the timer kind.
func (k TimerKind) String() string {
	switch k {
	case TimerCLC:
		return "clc"
	case TimerGC:
		return "gc"
	default:
		return fmt.Sprintf("TimerKind(%d)", int(k))
	}
}

// Env is everything the protocol needs from its execution environment.
// Implementations must invoke the Node strictly sequentially (the DES is
// single-threaded; the live runtime uses one goroutine per node).
type Env interface {
	// Now returns the current virtual (or scaled wall-clock) time.
	Now() sim.Time
	// Send transmits a protocol control message of the given wire size.
	Send(dst topology.NodeID, size int, msg Msg)
	// SendApp transmits a wrapped application message (accounted as
	// application traffic, like the paper's Table 1).
	SendApp(dst topology.NodeID, size int, msg Msg)
	// SetTimer (re)arms one of the node's timers; sim.Forever disarms.
	SetTimer(k TimerKind, d sim.Duration)
	// Trace emits a trace record attributed to this node.
	Trace(level sim.TraceLevel, format string, args ...any)
	// Stat adds delta to a named counter (per-run statistics).
	Stat(name string, delta uint64)
	// StatSeries records a named time-series point (e.g. stored CLCs).
	StatSeries(name string, value float64)
}

// BoxPool is an optional upgrade interface of Env: a harness that
// implements it hands the protocol recycled wire-message boxes for the
// per-message hot path, eliminating the interface-boxing allocation of
// every AppMsg/AppAck send. Ownership contract: a box obtained here is
// filled and passed to exactly one Send/SendApp call; the harness
// reclaims it after the destination's OnMessage returns (receivers copy
// anything they keep, never the box). Environments that do not
// implement BoxPool (e.g. the live runtime) get plain value messages.
type BoxPool interface {
	AppMsgBox() *AppMsg
	AppAckBox() *AppAck
}

// AppHooks connects the protocol to the application layer of one node:
// checkpointing captures application state through Snapshot/Restore and
// received payloads are handed up through Deliver. The system-level
// placement ("programmers do not need to write specific code", §6) is
// preserved: the application is unaware of the protocol.
type AppHooks interface {
	// Snapshot captures the node's application state. The returned
	// value is opaque to the protocol; size is its footprint in bytes
	// (it prices checkpoint transfers to stable storage).
	Snapshot() (state any, size int)
	// Restore reinstalls a state previously captured by Snapshot.
	Restore(state any)
	// Deliver hands an application payload to the application.
	Deliver(from topology.NodeID, p AppPayload)
}

// Stabilizer is an optional upgrade interface of AppHooks, resolved
// once at node construction like BoxPool on Env: an application that
// implements it is told whenever a checkpoint commits, with the
// Snapshot value the committed record holds. Everything the snapshot
// covers is then backed by stable storage — the basis of the
// stable-delivery latency metric (a later rollback can still rescind
// the coverage; the application rewinds its marks in Restore). Nil
// for applications that don't implement it: the protocol is unchanged.
type Stabilizer interface {
	Stabilized(state any)
}
