package core

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/topology"
)

// ProtocolMode selects the inter-cluster checkpointing strategy. The
// non-default modes exist as baselines for the paper's design
// discussion (§3.2 argues forcing on every message is wasteful; §2.2
// argues independent checkpointing dominos).
type ProtocolMode int

// Protocol modes.
const (
	// ModeHC3I is the paper's protocol: force a CLC only when a
	// message raises a DDV entry.
	ModeHC3I ProtocolMode = iota
	// ModeForceAll forces a CLC before delivering *every*
	// inter-cluster message (the strawman of Figure 4).
	ModeForceAll
	// ModeIndependent never forces: clusters checkpoint on their
	// timers only, dependencies are tracked lazily (merged at each
	// commit), and a rollback restores the newest checkpoint that does
	// not depend on the alerted state — which can domino to the
	// beginning of the application.
	ModeIndependent
)

// String names the mode.
func (m ProtocolMode) String() string {
	switch m {
	case ModeHC3I:
		return "hc3i"
	case ModeForceAll:
		return "force-all"
	case ModeIndependent:
		return "independent"
	default:
		return fmt.Sprintf("ProtocolMode(%d)", int(m))
	}
}

// Config parameterizes one protocol node. The per-cluster timer values
// come from the paper's "timers file"; the structural fields from its
// "topology file".
type Config struct {
	// Mode selects the inter-cluster strategy (default ModeHC3I).
	Mode ProtocolMode

	ID           topology.NodeID
	Clusters     int   // number of clusters in the federation
	ClusterSizes []int // nodes per cluster

	// CLCPeriod is the delay between unforced CLCs of this node's
	// cluster (sim.Forever disables unforced CLCs, as in Figure 7).
	CLCPeriod sim.Duration
	// GCPeriod is the garbage-collection period; only meaningful on
	// the GC initiator (sim.Forever disables GC).
	GCPeriod sim.Duration
	// GCInitiator marks the single node that runs the centralized
	// garbage collector (§3.5).
	GCInitiator bool
	// RingGC switches the garbage collector to the distributed ring
	// variant (§7 future work).
	RingGC bool
	// GCMemoryThreshold, when positive, makes a node demand an
	// immediate collection from the initiator once its checkpoint
	// memory (states, replicas, logs) exceeds this many bytes — the
	// "when a node memory saturates" trigger of §3.5.
	GCMemoryThreshold uint64
	// Transitive enables transitive dependency tracking: inter-cluster
	// messages piggyback the whole DDV instead of just the SN (§7).
	Transitive bool
	// Replicas is the number of neighbour nodes each local checkpoint
	// part is replicated to (§3.1 uses 1; §7 suggests making it
	// configurable to tolerate more simultaneous faults per cluster).
	Replicas int
	// DenseWire selects the dense (one SN per cluster) wire encoding
	// for dependency metadata instead of the default delta form (see
	// delta.go). Both encodings are priced identically and produce
	// identical runs; the dense path is kept as the reference for
	// differential tests and width-scaling benchmarks.
	DenseWire bool
}

// validate panics on malformed configurations: these are programming
// errors of the harness, not runtime conditions.
func (c Config) validate() {
	if c.Clusters != len(c.ClusterSizes) {
		panic(fmt.Sprintf("core: %d clusters but %d sizes", c.Clusters, len(c.ClusterSizes)))
	}
	if int(c.ID.Cluster) >= c.Clusters || c.ID.Cluster < 0 {
		panic(fmt.Sprintf("core: node %v outside federation", c.ID))
	}
	if c.ID.Index < 0 || c.ID.Index >= c.ClusterSizes[c.ID.Cluster] {
		panic(fmt.Sprintf("core: node %v outside its cluster", c.ID))
	}
	if c.Replicas < 0 || c.Replicas >= c.ClusterSizes[c.ID.Cluster] {
		panic(fmt.Sprintf("core: %d replicas impossible in a %d-node cluster",
			c.Replicas, c.ClusterSizes[c.ID.Cluster]))
	}
}

// clcRecord is one stored cluster-level checkpoint from this node's
// perspective: the cluster-wide metadata plus this node's local state.
type clcRecord struct {
	meta      Meta
	forced    bool
	at        sim.Time
	state     any
	stateSize int
	// deltaPairs is the set of DDV entries this commit changed relative
	// to the predecessor checkpoint (the CLCCommit's wire pairs); the
	// garbage collector's delta reports ship the stored chain as these
	// pairs off one dense anchor. nil on the initial record (the chain
	// anchor) and in dense-wire runs.
	deltaPairs []DDVPair
	// remote marks a record whose local state was lost in a crash and
	// lives only on the neighbour replicas; restoring it requires a
	// RecoverStateReq round-trip.
	remote bool
	// lateLog holds intra-cluster application messages that crossed
	// this checkpoint's line (sent before it, received after it); they
	// are re-delivered on restore so the checkpoint stays consistent
	// (no lost in-transit messages, §2.2).
	lateLog []inbound
}

// logEntry is one optimistically logged inter-cluster message (§3.3).
type logEntry struct {
	msgID      uint64
	dst        topology.NodeID
	dstCluster topology.ClusterID
	payload    AppPayload
	piggySN    SN  // sender cluster SN piggybacked on the original send
	piggyDDV   DDV // transitive variant
	sendSN     SN  // == piggySN; kept separate for clarity in pruning
	acked      bool
	ackSN      SN
}

// replicaKey identifies a neighbour state held in this node's memory.
type replicaKey struct {
	owner topology.NodeID
	seq   SN
}

// inbound is an application message awaiting processing (frozen during
// a 2PC, deferred to a future epoch, or held for a forced CLC).
type inbound struct {
	src topology.NodeID
	msg AppMsg
	// heldAt is the cluster SN when the message was held for an
	// unconditional forced CLC (ModeForceAll): it is deliverable once
	// the SN has advanced past it.
	heldAt SN
}

// cpPhase is the participant-side two-phase-commit state.
type cpPhase int

const (
	cpIdle     cpPhase = iota
	cpPrepared         // snapshot taken, waiting for commit
)

// Node is the HC3I protocol engine of one federation node. All methods
// must be invoked sequentially by the harness.
type Node struct {
	cfg Config
	env Env
	app AppHooks

	id      topology.NodeID
	cluster topology.ClusterID
	size    int // nodes in own cluster

	failed    bool
	lostState bool // restarted after a crash; volatile memory gone

	sn    SN
	epoch Epoch
	ddv   DDV
	// ddvGen counts mutations of ddv (any site that can change an
	// entry bumps it); the piggyback encoder and the shared log-entry
	// piggy clone use it to skip O(width) work while the vector is
	// unchanged. Starts at 1; 0 means "never" on consumers.
	ddvGen uint64
	// commitBase is the dense vector of the newest committed CLC — the
	// base every delta-encoded CLCCommit patches. Invariant: equal on
	// all non-failed nodes of the cluster outside commit windows, and
	// re-synced from a stored dense Meta on every rollback/recovery.
	commitBase DDV
	knownEpoch []Epoch // latest known epoch per cluster
	// alertEpoch/alertSN record the most recent rollback alert per
	// cluster: a message one epoch behind whose SendSN is below the
	// alerted SN was sent *before* the rollback point — its send is
	// part of the sender's restored state, so the content is valid
	// even though the epoch tag is stale.
	alertEpoch []Epoch
	alertSN    []SN

	// ---- two-phase commit (participant side) ----
	phase        cpPhase
	prepSeq      SN
	provisional  *clcRecord
	replWanted   int
	replGot      int
	frozenSends  bool
	frozenDelivs bool

	// ---- two-phase commit (leader side) ----
	inFlight       bool
	inFlightForced bool
	inFlightSeq    SN
	inFlightSince  sim.Time
	ackedNodes     []bool // reusable per-index ack flags, reset at startCLC
	ackedCount     int
	ackedDDVs      []DDV // node DDVs gathered with acks (dense wire, ModeIndependent)
	// ackAccum/ackDirty accumulate delta-encoded ack pairs by
	// element-wise max (order-independent, so merging on arrival equals
	// the dense path's merge-at-commit); reset at startCLC/abort.
	ackAccum      DDV
	ackDirty      DirtySet
	pendingForce  DDV  // accumulated force targets not yet committed
	pendingAlways bool // an unconditional force is pending (ModeForceAll)
	// pendingDirty tracks which pendingForce entries were ever raised,
	// so the forced-CLC scans iterate O(dirty) instead of O(width).
	// Entries outside the set are zero and can never exceed the DDV.
	pendingDirty DirtySet

	// ---- queues ----
	sendQueue    []AppPayloadTo // app sends issued while frozen
	inboundQueue []inbound      // deliveries deferred (freeze / future epoch)
	heldInter    []inbound      // inter-cluster messages awaiting a forced CLC

	// ---- storage ----
	clcs     []*clcRecord
	replicas map[replicaKey]Replica
	// mirrorLogs holds neighbours' message-log mirrors (stable storage
	// for §3.3's volatile log), keyed by the owning node.
	mirrorLogs map[topology.NodeID][]LogMirror
	// replicaBytes/mirrorBytes are the running byte totals of the two
	// map-backed stores, maintained at their mutation sites:
	// StorageBytes runs once per commit on every leader, and iterating
	// the maps there was a top profile entry at wide-federation scale.
	replicaBytes uint64
	mirrorBytes  uint64

	// ---- message log ----
	log       []*logEntry
	logPeak   int // running high-water mark of len(log) over the run
	nextMsgID uint64

	// ---- rollback ----
	// anchorPending is set by every restore and cleared by the next
	// commit: the first covered inter-cluster delivery after a restore
	// forces one unconditional "anchor" CLC before delivering, so the
	// delivery lands above the restored checkpoint in SN order. This
	// keeps the cascadeMemo suppression sound: a repeated alert for
	// the same rollback target is a no-op only while n.sn still equals
	// the target — any post-restore delivery advances it via the
	// anchor, so a *new* rollback of the sender (same SN, fresh epoch)
	// correctly re-rolls this cluster and erases the delivery instead
	// of being suppressed as a duplicate. Found by the invariant
	// oracle's orphan obligations under the churn pattern.
	anchorPending bool
	rbActive      bool // this node coordinates an ongoing cluster rollback
	rbSeq         SN
	rbSince       sim.Time
	rbEpoch       Epoch
	rbAcks        map[int]bool
	deferredAlert []RollbackAlert
	recoverWait   *recoverPending // restarted node waiting for its replica
	// cascadeMemo records, per alerting cluster, the last alert SN this
	// leader acted on and the checkpoint it restored. It is the live
	// counterpart of SimulateFailure's index monotonicity: a repeated
	// alert whose target is the checkpoint the cluster already sits on
	// is suppressed, which is what terminates mutual alert cascades
	// (the restored forced CLC's recorded DDV still names the
	// dependency, so the §3.4 test alone would fire forever).
	cascadeMemo map[topology.ClusterID]cascadeRecord

	// ---- garbage collection (initiator side) ----
	gcRound       uint64
	gcReports     map[topology.ClusterID]GCReport
	alertsSeen    uint64
	gcAlertsMark  uint64
	gcLastStart   sim.Time
	gcStartedOnce bool
	gcDemanded    bool // a memory-pressure demand is outstanding here

	// forceScratch is the reusable buffer for building forced-CLC
	// targets. Ownership: valid only until the next buildForceTarget
	// call on this node; sendForce clones it before anything escapes
	// the current event (see cic.go), so it must never be stored.
	forceScratch DDV
	// arena backs every DDV this node hands out at an escape point
	// (stored Metas, piggybacked vectors, commit broadcasts); see
	// DDVArena for the ownership rules.
	arena DDVArena
	// pairArena backs every DDVPair slice that escapes on a wire
	// message or into a stored record; pairScratch is the reusable
	// build buffer (valid until the next pair-building call, cloned
	// through pairArena before escaping — same discipline as
	// forceScratch).
	pairArena   PairArena
	pairScratch []DDVPair
	// recvDirty tracks the entries this node raised above commitBase
	// by local receipts (ModeIndependent's lazy tracking): exactly the
	// pairs a delta prepare-ack must carry.
	recvDirty DirtySet
	// commitScratch is the per-event dirty-set scratch for building
	// commit pairs.
	commitScratch DirtySet
	// gcScanDirty tracks the entries where ddv may differ from the
	// newest stored CLC's DDV, so GC reports diff O(dirty) instead of
	// O(width). Valid only while gcScanValid: every HC3I commit
	// re-establishes ddv == newest-stored-DDV and resets the set, every
	// CIC receipt that raises ddv adds its index, and every path that
	// lowers ddv or rewrites the stored chain (rollback, recovery,
	// restart) invalidates — makeGCReport then falls back to the
	// chunked full-width diff and the next commit revalidates.
	gcScanDirty DirtySet
	gcScanValid bool
	// piggyCodecs is the env's per-pipe delta codec registry when it
	// offers one (PiggyCodecs); nil means dense piggybacks. Each codec
	// carries the cluster-shared clean-exam cursor (DeltaCodec.seen);
	// resetPiggyExam discards the cursors whenever this node's DDV may
	// have decreased (rollback, recovery), forcing a full-width
	// re-examination per pipe.
	piggyCodecs PiggyCodecs
	// lastPiggy is the shared dense clone of ddv at generation
	// lastPiggyGen: log entries of all sends between two DDV changes
	// reference one immutable vector instead of cloning per message.
	lastPiggy    DDV
	lastPiggyGen uint64
	// denseWire mirrors cfg.DenseWire (hot-path read).
	denseWire bool
	// replTargets is the fixed ring of neighbour nodes holding this
	// node's checkpoint parts, computed once (the per-prepare slice
	// build showed up as a top allocation site).
	replTargets []topology.NodeID
	// boxes is the env's message-box recycler when it offers one
	// (BoxPool); nil means plain value sends.
	boxes BoxPool
	// obs is the env's protocol observer when it offers one (the
	// invariant oracle); nil means no observation — one nil check per
	// hook site.
	obs Observer
	// stab is the application's stability hook when it offers one
	// (Stabilizer); nil means commits don't notify the application.
	stab Stabilizer
	// keys holds the node's pre-rendered per-cluster stat names, so
	// hot-path Stat/StatSeries calls build no strings.
	keys statKeys
}

// statKeys caches the per-cluster stat names a node emits repeatedly.
type statKeys struct {
	rollbackRestarted string
	rollbackCount     string
	rollbackDuration  string
	clcRequested      string
	clcCommitted      string
	clcForced         string
	clcUnforced       string
	clcAborted        string
	clcFreeze         string
	storageBytes      string
	clcStored         string
	logSize           string
	gcBefore          string
	gcAfter           string
}

func makeStatKeys(c topology.ClusterID) statKeys {
	suffix := fmt.Sprintf(".c%d", c)
	return statKeys{
		rollbackRestarted: "rollback.restarted" + suffix,
		rollbackCount:     "rollback.count" + suffix,
		rollbackDuration:  "rollback.duration_seconds" + suffix,
		clcRequested:      "clc.requested" + suffix,
		clcCommitted:      "clc.committed" + suffix,
		clcForced:         "clc.committed" + suffix + ".forced",
		clcUnforced:       "clc.committed" + suffix + ".unforced",
		clcAborted:        "clc.aborted" + suffix,
		clcFreeze:         "clc.freeze_seconds" + suffix,
		storageBytes:      "storage.bytes" + suffix,
		clcStored:         "clc.stored" + suffix,
		logSize:           "log.size" + suffix,
		gcBefore:          "gc.before" + suffix,
		gcAfter:           "gc.after" + suffix,
	}
}

// AppPayloadTo pairs a payload with its destination; used for the
// frozen-send queue and by harnesses that batch application sends.
type AppPayloadTo struct {
	Dst     topology.NodeID
	Payload AppPayload
}

// NewNode builds a protocol node. The application's initial state is
// snapshotted immediately as the first CLC ("each cluster stores a
// first CLC which is the beginning of the application", §4). That
// checkpoint carries SN 1, exactly as in the paper's sample execution
// where cluster 1 piggybacks SN 1 on its very first message: a DDV
// entry of 0 then unambiguously means "no dependency" ("0 if none",
// §3.2), the first message from any cluster forces a CLC at the
// receiver (m1 in the sample), and a rollback alert from a cluster that
// restored its initial state only drags back clusters that actually
// received something from it. Starting at 0 instead would make the
// rollback test "entry >= alerted SN" degenerate (0 >= 0 everywhere)
// and a pre-first-checkpoint failure would cascade forever.
func NewNode(cfg Config, env Env, app AppHooks) *Node {
	cfg.validate()
	n := &Node{
		cfg:        cfg,
		env:        env,
		app:        app,
		id:         cfg.ID,
		cluster:    cfg.ID.Cluster,
		size:       cfg.ClusterSizes[cfg.ID.Cluster],
		sn:         1,
		ddv:        NewDDV(cfg.Clusters),
		knownEpoch: make([]Epoch, cfg.Clusters),
		alertEpoch: make([]Epoch, cfg.Clusters),
		alertSN:    make([]SN, cfg.Clusters),
		// The volatile-storage maps are sized from the topology: a node
		// holds replicas for its cfg.Replicas ring predecessors (a few
		// checkpoints each) and mirrors the same neighbours' logs.
		replicas:     make(map[replicaKey]Replica, 4*(cfg.Replicas+1)),
		mirrorLogs:   make(map[topology.NodeID][]LogMirror, cfg.Replicas),
		// cascadeMemo stays unsized: it only ever holds the few clusters
		// that alerted a rollback, so a width-sized hint wastes ~50KB of
		// empty buckets per node on wide federations.
		cascadeMemo:  make(map[topology.ClusterID]cascadeRecord),
		forceScratch: NewDDV(cfg.Clusters),
		ackedNodes:   make([]bool, cfg.ClusterSizes[cfg.ID.Cluster]),
		keys:         makeStatKeys(cfg.ID.Cluster),
	}
	n.arena.Init(cfg.Clusters)
	n.boxes, _ = env.(BoxPool)
	if n.obs, _ = env.(Observer); n.obs != nil {
		n.obs.ObserveMode(cfg.ID, cfg.Mode)
	}
	n.stab, _ = app.(Stabilizer)
	n.denseWire = cfg.DenseWire
	n.ddvGen = 1
	n.commitBase = NewDDV(cfg.Clusters)
	n.ackAccum = NewDDV(cfg.Clusters)
	n.ackDirty.Init(cfg.Clusters)
	n.pendingDirty.Init(cfg.Clusters)
	n.recvDirty.Init(cfg.Clusters)
	n.commitScratch.Init(cfg.Clusters)
	n.gcScanDirty.Init(cfg.Clusters)
	n.pairScratch = make([]DDVPair, 0, 8)
	if !n.denseWire {
		n.piggyCodecs, _ = env.(PiggyCodecs)
	}
	n.replTargets = make([]topology.NodeID, 0, cfg.Replicas)
	for r := 1; r <= cfg.Replicas; r++ {
		n.replTargets = append(n.replTargets,
			topology.NodeID{Cluster: n.cluster, Index: (n.id.Index + r) % n.size})
	}
	n.ddv[n.cluster] = 1
	n.commitBase.CopyFrom(n.ddv)
	state, size := app.Snapshot()
	n.clcs = append(n.clcs, &clcRecord{
		meta:      Meta{SN: 1, DDV: n.arena.Clone(n.ddv)},
		at:        env.Now(),
		state:     state,
		stateSize: size,
	})
	// ddv equals the initial CLC's Meta: the incremental GC-report scan
	// starts valid (see gcScanDirty).
	n.gcScanValid = true
	return n
}

// Start arms the node's timers; the harness calls it once the whole
// federation is constructed.
func (n *Node) Start() {
	if n.leader() {
		n.env.SetTimer(TimerCLC, n.cfg.CLCPeriod)
		n.recordStoredStat()
	}
	if n.cfg.GCInitiator {
		n.env.SetTimer(TimerGC, n.cfg.GCPeriod)
	}
}

// ---- identity helpers ----

func (n *Node) leader() bool { return n.id.Index == 0 }

func (n *Node) leaderOf(c topology.ClusterID) topology.NodeID {
	return topology.NodeID{Cluster: c, Index: 0}
}

// replicaTargets returns the neighbour nodes that store this node's
// checkpoint parts: the next cfg.Replicas indices, ring order. The
// slice is the node's cached copy — callers must not mutate it.
func (n *Node) replicaTargets() []topology.NodeID { return n.replTargets }

// holderFor returns the first replica holder of this node's state.
func (n *Node) holderFor() topology.NodeID {
	return topology.NodeID{Cluster: n.cluster, Index: (n.id.Index + 1) % n.size}
}

// ---- accessors (tests, statistics, invariant checking) ----

// ID returns the node's identity.
func (n *Node) ID() topology.NodeID { return n.id }

// SN returns the committed cluster sequence number as seen here.
func (n *Node) SN() SN { return n.sn }

// CurrentEpoch returns the node's rollback epoch.
func (n *Node) CurrentEpoch() Epoch { return n.epoch }

// DDVSnapshot returns a copy of the node's current DDV. The copy is
// cut from the node's arena: the caller owns it indefinitely (chunks
// live as long as any vector cut from them), and the steady-state
// cost is zero heap allocations.
func (n *Node) DDVSnapshot() DDV { return n.arena.Clone(n.ddv) }

// StoredMetas returns the metadata of the stored CLCs, oldest first.
// The vectors are arena-backed copies owned by the caller.
func (n *Node) StoredMetas() []Meta {
	ms := make([]Meta, len(n.clcs))
	for i, r := range n.clcs {
		ms[i] = Meta{SN: r.meta.SN, DDV: n.arena.Clone(r.meta.DDV)}
	}
	return ms
}

// oldestStoredWith is OldestWith over the stored records without
// materializing a Meta list — the rollback-alert decision runs it per
// alert, which made StoredMetas' O(width x stored) cloning an
// allocation hot spot during cascades.
func (n *Node) oldestStoredWith(c topology.ClusterID, s SN) int {
	for i, r := range n.clcs {
		if r.meta.DDV[c] >= s {
			return i
		}
	}
	return -1
}

// newestStoredBelow is NewestBelow over the stored records, without
// cloning (see oldestStoredWith).
func (n *Node) newestStoredBelow(c topology.ClusterID, s SN) int {
	for i := len(n.clcs) - 1; i >= 0; i-- {
		if n.clcs[i].meta.DDV[c] < s {
			return i
		}
	}
	return -1
}

// ddvChanged records a mutation of n.ddv (or of an entry of it): the
// piggyback encoder and the shared log-piggy clone key off the
// generation to skip O(width) work while the vector is unchanged.
func (n *Node) ddvChanged() { n.ddvGen++ }

// piggyVecID identifies the current DDV's content for the shared
// per-pipe piggyback encoder, which is written to by *every* node of
// this cluster: a per-node mutation counter would collide across
// nodes, so the identity must be well-defined pipe-wide. In
// ModeHC3I/ModeForceAll the DDV is a pure function of (epoch, sn) —
// application sends are frozen throughout commit and rollback windows,
// so a sending node always holds the committed vector that pair names.
// Under ModeIndependent vectors are per-node (lazy receipts), so the
// identity is qualified by the node's index; a node handover on the
// pipe then re-runs one O(width) diff, which usually finds nothing.
// Zero is never returned (sn starts at 1): the encoder treats zero as
// "unknown".
func (n *Node) piggyVecID() uint64 {
	if n.cfg.Mode == ModeIndependent {
		return 1<<63 | uint64(n.id.Index)<<40 | (n.ddvGen & (1<<40 - 1))
	}
	return uint64(n.epoch)<<32 | uint64(n.sn)
}

// sharedPiggy returns a dense copy of the current DDV shared by every
// log entry created while the vector is unchanged: at most one O(width)
// copy per DDV generation instead of one per inter-cluster send. The
// returned vector is immutable by convention (log entries and resends
// only read it). Between HC3I commits the working DDV equals the newest
// stored CLC's vector exactly (the incremental-scan invariant:
// gcScanValid with an empty dirty set), and that stored copy is already
// immutable — share it instead of cloning, so steady-state sends
// allocate nothing even across commit generations.
func (n *Node) sharedPiggy() DDV {
	if n.lastPiggyGen != n.ddvGen {
		if n.cfg.Mode == ModeHC3I && n.gcScanValid && n.gcScanDirty.Len() == 0 && len(n.clcs) > 0 {
			n.lastPiggy = n.clcs[len(n.clcs)-1].meta.DDV
		} else {
			n.lastPiggy = n.arena.Clone(n.ddv)
		}
		n.lastPiggyGen = n.ddvGen
	}
	return n.lastPiggy
}

// StoredCount returns how many CLCs this node currently stores.
func (n *Node) StoredCount() int { return len(n.clcs) }

// LogLen returns the number of logged inter-cluster messages.
func (n *Node) LogLen() int { return len(n.log) }

// LogPeak returns the running high-water mark of the volatile message
// log over the whole run — unlike LogLen it is not deflated by GC
// trims, rollback pruning or crashes.
func (n *Node) LogPeak() int { return n.logPeak }

// ReplicaCount returns the neighbour states held in this node's memory.
func (n *Node) ReplicaCount() int { return len(n.replicas) }

// StorageBytes approximates the volatile memory this node devotes to
// fault tolerance: its own checkpoint states, the neighbour replicas it
// holds, its message log and the mirrored logs — the footprint §3.5's
// garbage collection exists to bound. The map-backed stores contribute
// through running counters (replicaBytes, mirrorBytes); the slice
// walks stay, they are cache-friendly and bounded by GC.
func (n *Node) StorageBytes() uint64 {
	total := n.replicaBytes + n.mirrorBytes
	for _, r := range n.clcs {
		if !r.remote {
			total += uint64(r.stateSize)
		}
		for _, l := range r.lateLog {
			total += uint64(l.msg.Payload.Size)
		}
	}
	for _, e := range n.log {
		total += uint64(e.payload.Size)
	}
	return total
}

// storeReplica installs (or overwrites) a neighbour state, keeping the
// running byte total exact.
func (n *Node) storeReplica(k replicaKey, r Replica) {
	if old, ok := n.replicas[k]; ok {
		n.replicaBytes -= uint64(old.Size)
	}
	n.replicaBytes += uint64(r.Size)
	n.replicas[k] = r
}

// dropReplica removes a stored neighbour state.
func (n *Node) dropReplica(k replicaKey, r Replica) {
	n.replicaBytes -= uint64(r.Size)
	delete(n.replicas, k)
}

// Failed reports whether the node is crashed.
func (n *Node) Failed() bool { return n.failed }

// LostState reports whether the node restarted after a crash and has
// not yet recovered its state from the replica holders.
func (n *Node) LostState() bool { return n.lostState }

// Frozen reports whether application traffic is currently frozen by an
// in-progress 2PC (test hook).
func (n *Node) Frozen() bool { return n.frozenSends }

// SeedReplica installs a checkpoint replica directly (used only at
// bootstrap to pre-distribute the initial checkpoint).
func (n *Node) SeedReplica(r Replica) {
	n.storeReplica(replicaKey{owner: r.Owner, seq: r.Seq}, r)
}

// InitialReplica returns the Replica record of this node's initial
// checkpoint, for bootstrap seeding.
func (n *Node) InitialReplica() Replica {
	r0 := n.clcs[0]
	return Replica{Seq: r0.meta.SN, Owner: n.id, State: r0.state, Size: r0.stateSize}
}

// ReplicaTargets lists the neighbours that hold this node's checkpoint
// parts; harnesses use it to pre-distribute the initial checkpoint.
func (n *Node) ReplicaTargets() []topology.NodeID {
	return append([]topology.NodeID(nil), n.replTargets...)
}

// SeedMsgID raises the node's message-identity counter to at least
// base. The protocol deduplicates and acks by MsgID, and a node that
// restarts as a fresh OS process would otherwise count from zero
// again — colliding with pre-crash identities still alive in mirrored
// logs and in flight. A live runtime seeds each incarnation with a
// strictly increasing base (e.g. the boot time in nanoseconds); the
// in-process simulator never needs it because its Node objects keep
// their counters across Restart.
func (n *Node) SeedMsgID(base uint64) {
	if base > n.nextMsgID {
		n.nextMsgID = base
	}
}

// ---- lifecycle ----

// Fail crashes the node (fail-stop): it stops reacting to anything.
// The harness must also cut its network traffic.
func (n *Node) Fail() {
	n.failed = true
	n.env.Trace(sim.TraceInfo, "FAILED")
}

// Restart revives a crashed node with empty volatile memory. It waits
// passively for its cluster's RollbackCmd, then recovers its state from
// its replica holder.
func (n *Node) Restart() {
	n.failed = false
	n.lostState = true
	n.sn = 0
	n.ddv = NewDDV(n.cfg.Clusters)
	n.ddvChanged()
	n.resetDeltaState()
	n.knownEpoch = make([]Epoch, n.cfg.Clusters)
	n.alertEpoch = make([]Epoch, n.cfg.Clusters)
	n.alertSN = make([]SN, n.cfg.Clusters)
	n.clcs = nil
	n.replicas = make(map[replicaKey]Replica, 4*(n.cfg.Replicas+1))
	n.mirrorLogs = make(map[topology.NodeID][]LogMirror, n.cfg.Replicas)
	n.replicaBytes = 0
	n.mirrorBytes = 0
	n.log = nil
	n.phase = cpIdle
	n.provisional = nil
	n.inFlight = false
	n.pendingForce = nil
	n.pendingDirty.Reset()
	n.pendingAlways = false
	n.ackedDDVs = nil
	n.frozenSends = false
	n.frozenDelivs = false
	n.sendQueue = nil
	n.inboundQueue = nil
	n.heldInter = nil
	n.rbActive = false
	n.deferredAlert = nil
	n.recoverWait = nil
	n.cascadeMemo = make(map[topology.ClusterID]cascadeRecord)
	n.env.Trace(sim.TraceInfo, "RESTARTED (volatile memory lost)")
}

// resetDeltaState clears the delta-tracking state that derives from the
// DDV/commit history: the commit base (re-synced from a dense Meta by
// the recovery path), the lazy-receipt and ack accumulators, the shared
// log-piggy clone, and the per-pipe examination cursors (a reset
// forces a full-width re-exam, which any decrease of this node's own
// DDV requires for equivalence with the dense encoding).
func (n *Node) resetDeltaState() {
	for i := range n.commitBase {
		n.commitBase[i] = 0
	}
	n.recvDirty.Reset()
	n.gcScanValid = false
	n.resetAckAccum()
	n.lastPiggyGen = 0
	n.lastPiggy = nil
	n.resetPiggyExam()
}

// resetPiggyExam discards the clean-exam cursor of every inbound pipe.
func (n *Node) resetPiggyExam() {
	if n.piggyCodecs != nil {
		n.piggyCodecs.ResetPiggyExam(n.cluster)
	}
}

// resetAckAccum zeroes the delta ack accumulator in O(dirty entries).
func (n *Node) resetAckAccum() {
	for _, i := range n.ackDirty.Indices() {
		n.ackAccum[i] = 0
	}
	n.ackDirty.Reset()
}

// ---- event entry points ----

// OnTimer handles a timer expiry.
func (n *Node) OnTimer(k TimerKind) {
	if n.failed {
		return
	}
	switch k {
	case TimerCLC:
		n.onCLCTimer()
	case TimerGC:
		n.onGCTimer()
	}
}

// OnMessage handles a protocol or wrapped application message.
func (n *Node) OnMessage(src topology.NodeID, msg Msg) {
	if n.failed {
		return
	}
	switch m := msg.(type) {
	case *AppMsg:
		// Pooled-box variant of the per-message hot path (see BoxPool).
		// The box is the harness's to reclaim; the handler gets a copy.
		n.onAppMsg(src, *m)
	case *AppAck:
		n.onAppAck(src, *m)
	case AppMsg:
		n.onAppMsg(src, m)
	case AppAck:
		n.onAppAck(src, m)
	case CLCRequest:
		n.onCLCRequest(src, m)
	case CLCAck:
		n.onCLCAck(src, m)
	case CLCCommit:
		n.onCLCCommit(src, m)
	case ForceCLC:
		n.onForceCLC(src, m)
	case Replica:
		n.onReplica(src, m)
	case ReplicaAck:
		n.onReplicaAck(src, m)
	case RollbackAlert:
		n.onRollbackAlert(src, m)
	case RollbackCmd:
		n.onRollbackCmd(src, m)
	case RollbackAck:
		n.onRollbackAck(src, m)
	case RollbackResume:
		n.onRollbackResume(src, m)
	case RecoverStateReq:
		n.onRecoverStateReq(src, m)
	case RecoverStateResp:
		n.onRecoverStateResp(src, m)
	case ReReplicateReq:
		n.onReReplicateReq(src, m)
	case LogMirror:
		n.onLogMirror(src, m)
	case LogTrim:
		n.onLogTrim(src, m)
	case GCRequest:
		n.onGCRequest(src, m)
	case GCReport:
		n.onGCReport(src, m)
	case GCCollect:
		n.onGCCollect(src, m)
	case GCDrop:
		n.onGCDrop(src, m)
	case GCDemand:
		n.onGCDemand(src, m)
	case GCToken:
		n.onGCToken(src, m)
	default:
		panic(fmt.Sprintf("core: unknown message %T", msg))
	}
}

// OnFailureDetected is invoked by the failure detector on a surviving
// node of the failed node's cluster (the paper leaves the detector out
// of scope, §3.4); that node coordinates the cluster rollback.
func (n *Node) OnFailureDetected(failedNode topology.NodeID) {
	if n.failed {
		return
	}
	if failedNode.Cluster != n.cluster {
		panic("core: failure detected for a foreign cluster")
	}
	n.env.Stat("failure.detected", 1)
	n.startClusterRollback()
}

// recordStoredStat refreshes the stored-CLC series for this cluster
// (leader only, so it is recorded once per cluster).
func (n *Node) recordStoredStat() {
	if n.leader() {
		n.env.StatSeries(n.keys.clcStored, float64(len(n.clcs)))
		n.env.StatSeries(n.keys.logSize, float64(len(n.log)))
	}
}
