package core

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/topology"
)

// This file implements garbage collection (§3.5). The protocol stores
// multiple CLCs per cluster (and logs every inter-cluster message), so
// memory must be reclaimed: the centralized collector gathers every
// cluster's stored-CLC DDVs, simulates a failure in each cluster, and
// distributes the smallest SN each cluster might ever roll back to;
// older checkpoints and sufficiently-acknowledged log entries are
// dropped. The ring variant (§7 future work) replaces the star-shaped
// exchange with a circulating token.

// onGCTimer starts a collection round on the federation GC initiator.
func (n *Node) onGCTimer() {
	if !n.cfg.GCInitiator {
		return
	}
	n.env.SetTimer(TimerGC, n.cfg.GCPeriod)
	n.startGCRound()
}

// checkMemoryPressure demands a collection when this node's
// fault-tolerance memory saturates (§3.5). The demand flag clears once
// a GCDrop arrives, so a node asks at most once per saturation episode.
func (n *Node) checkMemoryPressure() {
	if n.cfg.GCMemoryThreshold == 0 || n.gcDemanded {
		return
	}
	bytes := n.StorageBytes()
	if bytes <= n.cfg.GCMemoryThreshold {
		return
	}
	n.gcDemanded = true
	n.env.Stat("gc.demands", 1)
	d := GCDemand{From: n.id, Bytes: bytes}
	if n.cfg.GCInitiator {
		n.onGCDemand(n.id, d)
		return
	}
	n.env.Send(n.leaderOf(0), controlSize(d), d)
}

// onGCDemand reacts to a saturation demand at the initiator (the
// initiator is node 0 of cluster 0 by convention).
func (n *Node) onGCDemand(src topology.NodeID, m GCDemand) {
	if !n.cfg.GCInitiator {
		return
	}
	// Rate-limit: at most one demand-driven round per minute, and none
	// while a round is already gathering reports.
	if n.gcReports != nil ||
		(n.gcStartedOnce && n.env.Now().Sub(n.gcLastStart) < sim.Minute) {
		n.env.Stat("gc.demands_coalesced", 1)
		return
	}
	n.env.Stat("gc.demand_rounds", 1)
	n.startGCRound()
}

// startGCRound opens a collection round (timer- or demand-driven).
func (n *Node) startGCRound() {
	if n.cfg.Mode != ModeHC3I {
		// The GC analysis simulates failures under the HC3I rollback
		// rule; the baseline modes keep everything.
		n.env.Stat("gc.unsupported_mode", 1)
		return
	}
	if n.rbActive || n.lostState {
		n.env.Stat("gc.skipped_busy", 1)
		return
	}
	n.gcLastStart = n.env.Now()
	n.gcStartedOnce = true
	n.gcRound++
	n.gcAlertsMark = n.alertsSeen
	n.env.Stat("gc.rounds_started", 1)
	n.env.Trace(sim.TraceInfo, "GC round %d starting", n.gcRound)

	if n.cfg.RingGC {
		tok := GCToken{Round: n.gcRound, Phase: 0, Reports: []GCReport{n.makeGCReport(n.gcRound)}}
		n.forwardToken(tok)
		return
	}
	n.gcReports = map[topology.ClusterID]GCReport{n.cluster: n.makeGCReport(n.gcRound)}
	req := GCRequest{Round: n.gcRound}
	for c := topology.ClusterID(0); int(c) < n.cfg.Clusters; c++ {
		if c == n.cluster {
			continue
		}
		n.env.Stat("gc.messages", 1)
		n.env.Send(n.leaderOf(c), controlSize(req), req)
	}
	n.maybeFinishGCRound()
}

func (n *Node) makeGCReport(round uint64) GCReport {
	if n.denseWire {
		return GCReport{
			Round:      round,
			Cluster:    n.cluster,
			Epoch:      n.epoch,
			CurrentDDV: n.arena.Clone(n.ddv),
			CLCs:       n.StoredMetas(),
		}
	}
	// Delta form: one dense anchor (the oldest stored CLC) plus each
	// subsequent commit's pair set — O(width + total changed entries)
	// instead of O(width x stored CLCs). Consecutive stored CLCs are
	// consecutive commits (GC drops a prefix, rollback a suffix), so
	// the chain reconstructs every Meta exactly; rebuildDeltaChain
	// restores the pairs after a crash-recovery rebuilt the list.
	rep := GCReport{
		Round:    round,
		Cluster:  n.cluster,
		Epoch:    n.epoch,
		FirstSN:  n.clcs[0].meta.SN,
		FirstDDV: n.arena.Clone(n.clcs[0].meta.DDV),
	}
	if k := len(n.clcs) - 1; k > 0 {
		rep.ChainSNs = make([]SN, 0, k)
		rep.ChainCounts = make([]int32, 0, k)
		for _, r := range n.clcs[1:] {
			rep.ChainSNs = append(rep.ChainSNs, r.meta.SN)
			rep.ChainCounts = append(rep.ChainCounts, int32(len(r.deltaPairs)))
			rep.ChainPairs = append(rep.ChainPairs, r.deltaPairs...)
		}
	}
	newest := n.clcs[len(n.clcs)-1].meta.DDV
	n.pairScratch = n.curPairsVsNewest(n.pairScratch[:0], newest)
	rep.CurPairs = n.pairArena.Clone(n.pairScratch)
	return rep
}

// curPairsVsNewest appends the (index, SN) pairs where ddv differs from
// the newest stored CLC's vector. While the incremental scan is valid
// (HC3I steady state), only the indices raised since the last commit
// are probed — O(dirty) instead of O(width); any path that broke the
// invariant (rollback, recovery, restart) cleared gcScanValid and the
// chunked full-width diff runs instead. gc_scan_test.go diffs the two
// against each other across chaos runs.
func (n *Node) curPairsVsNewest(buf []DDVPair, newest DDV) []DDVPair {
	if !n.gcScanValid || n.cfg.Mode != ModeHC3I {
		return diffPairs(buf, n.ddv, newest)
	}
	for _, i := range n.gcScanDirty.Indices() {
		if v := n.ddv[i]; v != newest[i] {
			buf = append(buf, DDVPair{Idx: i, SN: v})
		}
	}
	return buf
}

// materializeGCReport expands a report into its dense stored-CLC list
// and current vector, whichever encoding it arrived in. Runs at the GC
// initiator once per report per round; the recovery-line analysis
// (SmallestSNs) operates on dense metadata.
func materializeGCReport(rep GCReport) ([]Meta, DDV) {
	if rep.CLCs != nil || rep.FirstDDV == nil {
		return rep.CLCs, rep.CurrentDDV
	}
	metas := make([]Meta, 0, 1+len(rep.ChainSNs))
	metas = append(metas, Meta{SN: rep.FirstSN, DDV: rep.FirstDDV})
	cur := rep.FirstDDV.Clone()
	off := 0
	for j, sn := range rep.ChainSNs {
		cnt := int(rep.ChainCounts[j])
		cur.applyPairs(rep.ChainPairs[off : off+cnt])
		off += cnt
		metas = append(metas, Meta{SN: sn, DDV: cur.Clone()})
	}
	cur.applyPairs(rep.CurPairs)
	return metas, cur
}

// onGCRequest answers the initiator with this cluster's checkpoint
// metadata; a cluster busy rolling back stays silent and the round is
// superseded by the next timer tick.
func (n *Node) onGCRequest(src topology.NodeID, m GCRequest) {
	if !n.leader() || n.rbActive || n.lostState {
		return
	}
	rep := n.makeGCReport(m.Round)
	n.env.Stat("gc.messages", 1)
	n.env.Send(src, controlSize(rep), rep)
}

// onGCReport collects cluster reports at the initiator.
func (n *Node) onGCReport(src topology.NodeID, m GCReport) {
	if !n.cfg.GCInitiator || m.Round != n.gcRound || n.gcReports == nil {
		return
	}
	n.gcReports[m.Cluster] = m
	n.maybeFinishGCRound()
}

func (n *Node) maybeFinishGCRound() {
	if len(n.gcReports) < n.cfg.Clusters {
		return
	}
	reports := n.gcReports
	n.gcReports = nil
	if n.alertsSeen != n.gcAlertsMark {
		// A rollback happened mid-round: the reports may be mutually
		// inconsistent, so the round is abandoned (safe: GC only ever
		// delays reclamation).
		n.env.Stat("gc.rounds_aborted", 1)
		return
	}
	minSNs, err := n.computeMinSNs(reports)
	if err != nil {
		n.env.Stat("gc.rounds_aborted", 1)
		n.env.Trace(sim.TraceInfo, "GC round %d failed: %v", n.gcRound, err)
		return
	}
	coll := GCCollect{Round: n.gcRound, MinSNs: minSNs}
	for c := topology.ClusterID(0); int(c) < n.cfg.Clusters; c++ {
		if c == n.cluster {
			continue
		}
		n.env.Stat("gc.messages", 1)
		n.env.Send(n.leaderOf(c), controlSize(coll), coll)
	}
	n.env.Stat("gc.rounds_completed", 1)
	n.distributeDropLocally(coll.MinSNs)
}

// computeMinSNs runs the paper's analysis: simulate a failure in every
// cluster and keep, per cluster, the smallest SN it might roll back to.
func (n *Node) computeMinSNs(reports map[topology.ClusterID]GCReport) ([]SN, error) {
	lists := make([][]Meta, n.cfg.Clusters)
	currents := make([]DDV, n.cfg.Clusters)
	for c := topology.ClusterID(0); int(c) < n.cfg.Clusters; c++ {
		rep, ok := reports[c]
		if !ok {
			return nil, fmt.Errorf("core: GC round missing report for cluster %d", c)
		}
		lists[c], currents[c] = materializeGCReport(rep)
	}
	mins, err := SmallestSNs(lists, currents)
	if err == nil && Mutate.GCOverCollect {
		// Seeded protocol break for oracle smoke tests: threshold one
		// past the safe minimum discards a checkpoint a future recovery
		// could need.
		for i := range mins {
			mins[i]++
		}
	}
	return mins, err
}

// onGCCollect applies the thresholds at a cluster leader and broadcasts
// them in the cluster.
func (n *Node) onGCCollect(src topology.NodeID, m GCCollect) {
	if !n.leader() {
		return
	}
	n.distributeDropLocally(m.MinSNs)
}

// distributeDropLocally broadcasts the drop thresholds inside the
// cluster and applies them here.
func (n *Node) distributeDropLocally(minSNs []SN) {
	drop := GCDrop{Round: n.gcRound, Epoch: n.epoch, MinSNs: minSNs}
	for i := 0; i < n.size; i++ {
		if i == n.id.Index {
			continue
		}
		n.env.Send(topology.NodeID{Cluster: n.cluster, Index: i}, controlSize(drop), drop)
	}
	n.applyGCDrop(minSNs)
}

// onGCDrop applies the thresholds on a cluster member.
func (n *Node) onGCDrop(src topology.NodeID, m GCDrop) {
	if m.Epoch != n.epoch || src.Cluster != n.cluster {
		return
	}
	n.applyGCDrop(m.MinSNs)
}

// applyGCDrop discards checkpoints that can never again be a rollback
// target, neighbour replicas for the same range, and logged messages
// whose delivery is captured by every checkpoint the receiver cluster
// might restore ("acknowledged with a SN smaller than the receiver's
// cluster smallest SN").
func (n *Node) applyGCDrop(minSNs []SN) {
	if len(minSNs) != n.cfg.Clusters {
		return
	}
	if n.obs != nil {
		n.obs.ObserveGCDrop(n.id, minSNs)
	}
	before := len(n.clcs)
	threshold := minSNs[n.cluster]
	keptCLCs := n.clcs[:0]
	for _, r := range n.clcs {
		if r.meta.SN >= threshold {
			keptCLCs = append(keptCLCs, r)
		}
	}
	n.clcs = keptCLCs
	for k, rep := range n.replicas {
		if k.seq < threshold {
			n.dropReplica(k, rep)
		}
	}
	logBefore := len(n.log)
	keptLog := n.log[:0]
	for _, e := range n.log {
		if e.acked && e.ackSN < minSNs[e.dstCluster] {
			continue
		}
		keptLog = append(keptLog, e)
	}
	n.log = keptLog
	if len(n.log) < logBefore && n.cfg.Replicas > 0 {
		// Let the stable-storage neighbour trim its mirror too.
		trim := LogTrim{Kept: make([]uint64, 0, len(n.log))}
		for _, e := range n.log {
			trim.Kept = append(trim.Kept, e.msgID)
		}
		n.env.Send(n.holderFor(), controlSize(trim), trim)
	}

	n.env.Stat("gc.clcs_removed", uint64(before-len(n.clcs)))
	n.env.Stat("gc.log_entries_removed", uint64(logBefore-len(n.log)))
	n.gcDemanded = false // saturation episode over; may demand again
	if n.leader() {
		// The before/after pairs of Tables 2 and 3.
		n.env.StatSeries(n.keys.gcBefore, float64(before))
		n.env.StatSeries(n.keys.gcAfter, float64(len(n.clcs)))
		n.env.StatSeries(n.keys.storageBytes, float64(n.StorageBytes()))
		n.recordStoredStat()
	}
}

// ---- distributed (ring) variant ----

// forwardToken passes the token to the next cluster's leader on the
// ring.
func (n *Node) forwardToken(tok GCToken) {
	next := topology.ClusterID((int(n.cluster) + 1) % n.cfg.Clusters)
	n.env.Stat("gc.messages", 1)
	n.env.Send(n.leaderOf(next), controlSize(tok), tok)
}

// onGCToken advances the ring protocol: phase 0 accumulates reports
// around the ring; once the token returns to the initiator it computes
// the thresholds and circulates them as phase 1.
func (n *Node) onGCToken(src topology.NodeID, m GCToken) {
	if !n.leader() {
		return
	}
	switch m.Phase {
	case 0:
		if n.cfg.GCInitiator {
			if m.Round != n.gcRound || len(m.Reports) != n.cfg.Clusters {
				return // stale or incomplete round
			}
			if n.alertsSeen != n.gcAlertsMark {
				n.env.Stat("gc.rounds_aborted", 1)
				return
			}
			byCluster := make(map[topology.ClusterID]GCReport, len(m.Reports))
			for _, r := range m.Reports {
				byCluster[r.Cluster] = r
			}
			minSNs, err := n.computeMinSNs(byCluster)
			if err != nil {
				n.env.Stat("gc.rounds_aborted", 1)
				return
			}
			n.env.Stat("gc.rounds_completed", 1)
			n.distributeDropLocally(minSNs)
			n.forwardToken(GCToken{Round: m.Round, Phase: 1, MinSNs: minSNs})
			return
		}
		if n.rbActive || n.lostState {
			return // round dies; the next timer tick retries
		}
		m.Reports = append(m.Reports, n.makeGCReport(m.Round))
		n.forwardToken(m)
	case 1:
		if n.cfg.GCInitiator {
			return // token completed the distribution lap
		}
		n.distributeDropLocally(m.MinSNs)
		n.forwardToken(m)
	}
}
