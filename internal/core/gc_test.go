package core

import (
	"testing"

	"repro/internal/topology"
)

// TestGCSkipsWhileRollbackActive: the initiator refuses to open a round
// mid-rollback; a cluster leader mid-rollback stays silent and the
// round dies instead of shipping inconsistent reports.
func TestGCSkipsWhileRollbackActive(t *testing.T) {
	b := newTestbed(t, []int{2, 2}, 1, false)
	init := b.node(0, 0)
	init.cfg.GCInitiator = true
	b.commitCLC(0)

	// Force rbActive on the initiator by starting a rollback and
	// withholding the peer's ack (don't pump).
	init.startClusterRollback()
	init.OnTimer(TimerGC)
	if b.stats["gc.skipped_busy"] != 1 {
		t.Fatalf("busy initiator did not skip: %v", b.stats["gc.rounds_started"])
	}
	b.pump() // finish the rollback
	if init.rbActive {
		t.Fatal("rollback stuck")
	}

	// A remote leader that is mid-rollback keeps the round incomplete.
	remote := b.node(1, 0)
	remote.startClusterRollback()
	init.OnTimer(TimerGC)
	// Deliver only the GC request, not the rollback traffic: the
	// remote leader must not reply.
	var rest []sentMsg
	for _, m := range b.queue {
		if _, ok := m.msg.(GCRequest); ok && m.dst == remote.ID() {
			remote.OnMessage(m.src, m.msg)
			continue
		}
		rest = append(rest, m)
	}
	b.queue = rest
	b.pump()
	if b.stats["gc.rounds_completed"] != 0 {
		t.Fatal("round completed despite a busy cluster")
	}
}

// TestGCAbortsWhenAlertArrivesMidRound: reports gathered before and
// after a rollback are mutually inconsistent; the round must abort.
func TestGCAbortsWhenAlertArrivesMidRound(t *testing.T) {
	b := newTestbed(t, []int{1, 1}, 0, false)
	init := b.node(0, 0)
	init.cfg.GCInitiator = true
	b.commitCLC(0)
	b.commitCLC(1)

	init.OnTimer(TimerGC)
	// The initiator already has its own report; before cluster 1's
	// report arrives, an alert lands.
	init.OnMessage(b.node(1, 0).ID(), RollbackAlert{Cluster: 1, NewSN: 2, NewEpoch: 1})
	b.pump()
	if b.stats["gc.rounds_aborted"] == 0 {
		t.Fatal("mid-round alert did not abort the GC")
	}
	if b.stats["gc.rounds_completed"] != 0 {
		t.Fatal("round completed despite the alert")
	}
}

// TestGCUnsupportedInBaselineModes: the collector's analysis assumes
// the HC3I rollback rule; baseline modes must refuse to collect.
func TestGCUnsupportedInBaselineModes(t *testing.T) {
	b := newModeTestbed(t, []int{1, 1}, ModeIndependent)
	init := b.node(0, 0)
	init.cfg.GCInitiator = true
	init.OnTimer(TimerGC)
	b.pump()
	if b.stats["gc.unsupported_mode"] != 1 {
		t.Fatal("independent mode ran the GC")
	}
}

// TestGCStaleRoundReportsIgnored: reports from a superseded round are
// discarded.
func TestGCStaleRoundReportsIgnored(t *testing.T) {
	b := newTestbed(t, []int{1, 1}, 0, false)
	init := b.node(0, 0)
	init.cfg.GCInitiator = true
	b.commitCLC(0)

	init.OnTimer(TimerGC) // round 1
	// Capture cluster 1's report but hold it; start round 2 first.
	var held []sentMsg
	for _, m := range b.queue {
		held = append(held, m)
	}
	b.queue = nil
	// Deliver round-1 request to cluster 1 to produce a stale report.
	for _, m := range held {
		if _, ok := m.msg.(GCRequest); ok {
			b.nodes[m.dst].OnMessage(m.src, m.msg)
		}
	}
	staleReports := b.queue
	b.queue = nil

	init.OnTimer(TimerGC) // round 2 supersedes round 1
	// Deliver the stale round-1 report now.
	for _, m := range staleReports {
		if rep, ok := m.msg.(GCReport); ok {
			init.OnMessage(m.src, rep)
		}
	}
	// The stale report must not complete round 2 on its own.
	if b.stats["gc.rounds_completed"] != 0 {
		t.Fatal("stale report completed the round")
	}
	b.pump() // round 2's own exchange completes normally
	if b.stats["gc.rounds_completed"] != 1 {
		t.Fatalf("rounds completed = %d", b.stats["gc.rounds_completed"])
	}
}

// TestGCNeverEmptiesAStore: even after aggressive collection, at least
// one checkpoint (the newest) survives everywhere.
func TestGCNeverEmptiesAStore(t *testing.T) {
	b := newTestbed(t, []int{2, 2, 2}, 1, false)
	b.node(0, 0).cfg.GCInitiator = true
	for round := 0; round < 6; round++ {
		for c := 0; c < 3; c++ {
			b.commitCLC(c)
		}
		b.node(0, 0).OnTimer(TimerGC)
		b.pump()
		for _, n := range b.nodes {
			if n.StoredCount() < 1 {
				t.Fatalf("round %d: node %v emptied", round, n.ID())
			}
		}
	}
	if b.stats["gc.rounds_completed"] != 6 {
		t.Fatalf("completed = %d", b.stats["gc.rounds_completed"])
	}
}

// TestRingGCDiesWhenLeaderBusy: a busy leader drops the token; the next
// timer tick starts a fresh round.
func TestRingGCDiesWhenLeaderBusy(t *testing.T) {
	b := newTestbed(t, []int{2, 2}, 1, false)
	init := b.node(0, 0)
	init.cfg.GCInitiator = true
	init.cfg.RingGC = true
	b.commitCLC(0)
	b.commitCLC(1)

	remote := b.node(1, 0)
	remote.startClusterRollback() // keeps rbActive (acks not pumped yet)
	init.OnTimer(TimerGC)
	// Deliver the token only.
	var rest []sentMsg
	for _, m := range b.queue {
		if _, ok := m.msg.(GCToken); ok {
			remote.OnMessage(m.src, m.msg)
			continue
		}
		rest = append(rest, m)
	}
	b.queue = rest
	b.pump()
	if b.stats["gc.rounds_completed"] != 0 {
		t.Fatal("token survived a busy leader")
	}
	// Next round succeeds once the rollback settled.
	init.OnTimer(TimerGC)
	b.pump()
	if b.stats["gc.rounds_completed"] != 1 {
		t.Fatalf("completed = %d", b.stats["gc.rounds_completed"])
	}
}

// TestMemoryPressureDemandsGC: a node whose checkpoint memory passes
// the threshold demands a collection from the initiator (§3.5 "when a
// node memory saturates").
func TestMemoryPressureDemandsGC(t *testing.T) {
	b := newTestbed(t, []int{2, 2}, 1, false)
	init := b.node(0, 0)
	init.cfg.GCInitiator = true
	// Threshold: roughly four stored states (snapshots are 1024 B in
	// the mock app; each commit adds own state + one replica).
	for _, n := range b.nodes {
		n.cfg.GCMemoryThreshold = 4 * 1024
	}
	if got := init.StorageBytes(); got == 0 {
		t.Fatal("initial storage unaccounted")
	}
	for k := 0; k < 4; k++ {
		b.commitCLC(1) // pressure builds in cluster 1, away from the initiator
	}
	if b.stats["gc.demands"] == 0 {
		t.Fatal("no saturation demand issued")
	}
	if b.stats["gc.demand_rounds"] == 0 {
		t.Fatal("demand did not start a round")
	}
	if b.stats["gc.rounds_completed"] == 0 {
		t.Fatal("demand round did not complete")
	}
	// The demand round reclaimed checkpoints; commits after it may
	// re-grow the store (the next saturation demands again, modulo the
	// rate limit), but it stays below the uncollected count.
	if b.stats["gc.clcs_removed"] == 0 {
		t.Fatal("demand round reclaimed nothing")
	}
	if got := b.node(1, 0).StoredCount(); got >= 5 {
		t.Fatalf("cluster 1 stores %d CLCs, pressure unrelieved", got)
	}
}

// TestMemoryDemandsRateLimited: repeated saturation demands inside the
// rate-limit window coalesce.
func TestMemoryDemandsRateLimited(t *testing.T) {
	b := newTestbed(t, []int{1, 2}, 1, false)
	init := b.node(0, 0)
	init.cfg.GCInitiator = true
	// Demands from two different nodes in quick succession (the
	// testbed clock advances nanoseconds per message, far below the
	// one-minute limit).
	init.OnMessage(b.node(1, 0).ID(), GCDemand{From: b.node(1, 0).ID(), Bytes: 1 << 30})
	b.pump()
	init.OnMessage(b.node(1, 1).ID(), GCDemand{From: b.node(1, 1).ID(), Bytes: 1 << 30})
	b.pump()
	if b.stats["gc.demand_rounds"] != 1 {
		t.Fatalf("demand rounds = %d, want 1", b.stats["gc.demand_rounds"])
	}
	if b.stats["gc.demands_coalesced"] != 1 {
		t.Fatalf("coalesced = %d, want 1", b.stats["gc.demands_coalesced"])
	}
}

var _ = topology.NodeID{} // test helpers address nodes by ID
