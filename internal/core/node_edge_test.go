package core

import (
	"math/rand"
	"testing"

	"repro/internal/topology"
)

// TestStragglerFoldsIntoCheckpoint delivers an intra-cluster message
// whose send predates a committed checkpoint: the receiver must fold it
// into that checkpoint's channel state so a restore re-delivers it
// (no lost in-transit messages, §2.2).
func TestStragglerFoldsIntoCheckpoint(t *testing.T) {
	b := newTestbed(t, []int{3}, 1, false)
	b.commitCLC(0) // SN 2
	receiver := b.node(0, 2)

	// Hand-craft a straggler: sent under SN 1, arriving at SN 2.
	late := AppMsg{
		MsgID:      991,
		Payload:    payload(b.node(0, 1).ID(), 77),
		SrcCluster: 0,
		SrcEpoch:   0,
		SendSN:     1,
	}
	receiver.OnMessage(b.node(0, 1).ID(), late)
	if got := len(b.app(0, 2).delivered); got != 1 {
		t.Fatalf("straggler not delivered: %d", got)
	}
	if b.stats["app.late_logged"] != 1 {
		t.Fatal("straggler not folded into the checkpoint")
	}

	// Roll the cluster back to CLC 2: the straggler must be
	// re-delivered from the channel state.
	b.node(0, 1).Fail()
	b.node(0, 1).Restart()
	b.node(0, 0).OnFailureDetected(b.node(0, 1).ID())
	b.pump()
	found := 0
	for _, id := range b.app(0, 2).delivered {
		if id.Seq == 77 {
			found++
		}
	}
	if found == 0 {
		t.Fatal("straggler lost after restore")
	}
	if b.stats["app.redelivered_late"] == 0 {
		t.Fatal("late log not replayed")
	}
}

// TestStaleEpochMessagesDropped verifies that traffic from an aborted
// execution is discarded.
func TestStaleEpochMessagesDropped(t *testing.T) {
	b := newTestbed(t, []int{2, 1}, 1, false)
	// Roll cluster 0 forward one epoch.
	b.node(0, 1).Fail()
	b.node(0, 1).Restart()
	b.node(0, 0).OnFailureDetected(b.node(0, 1).ID())
	b.pump()
	if b.node(0, 0).CurrentEpoch() != 1 {
		t.Fatal("epoch not bumped")
	}

	// An intra message from epoch 0 arrives late: dropped.
	stale := AppMsg{MsgID: 5, Payload: payload(b.node(0, 1).ID(), 9), SrcCluster: 0, SrcEpoch: 0, SendSN: 1}
	before := len(b.app(0, 0).delivered)
	b.node(0, 0).OnMessage(b.node(0, 1).ID(), stale)
	if len(b.app(0, 0).delivered) != before {
		t.Fatal("stale intra message delivered")
	}
	if b.stats["app.dropped_stale"] == 0 {
		t.Fatal("no stale drop recorded")
	}

	// Inter-cluster: cluster 1 learned epoch 1 from the alert; an
	// epoch-0 message from cluster 0 is stale there too.
	staleInter := AppMsg{MsgID: 6, Payload: payload(b.node(0, 0).ID(), 10), SrcCluster: 0, SrcEpoch: 0, SendSN: 1}
	beforeInter := len(b.app(1, 0).delivered)
	b.node(1, 0).OnMessage(b.node(0, 0).ID(), staleInter)
	if len(b.app(1, 0).delivered) != beforeInter {
		t.Fatal("stale inter message delivered")
	}
}

// TestResendDeferredUntilLocalRollback checks the DstEpoch mechanism: a
// resent message that overtakes the receiver's own rollback command is
// parked and delivered only after the receiver reaches that epoch.
func TestResendDeferredUntilLocalRollback(t *testing.T) {
	b := newTestbed(t, []int{1, 2}, 1, false)
	receiver := b.node(1, 1)

	// A resend targeted at epoch 1 arrives while the receiver is still
	// at epoch 0.
	resend := AppMsg{
		MsgID: 7, Payload: payload(b.node(0, 0).ID(), 42),
		SrcCluster: 0, SrcEpoch: 0, SendSN: 1, Resend: true, DstEpoch: 1,
	}
	receiver.OnMessage(b.node(0, 0).ID(), resend)
	if len(b.app(1, 1).delivered) != 0 {
		t.Fatal("future-epoch resend delivered early")
	}
	if b.stats["app.deferred_epoch"] != 1 {
		t.Fatal("resend not deferred")
	}

	// The receiver's cluster now rolls back (epoch 1): the parked
	// message is released.
	b.node(1, 0).Fail()
	b.node(1, 0).Restart()
	b.node(1, 1).OnFailureDetected(b.node(1, 0).ID())
	b.pump()
	if got := len(b.app(1, 1).delivered); got != 1 {
		t.Fatalf("deferred resend not released: %d", got)
	}
}

// TestInterDeliveryDeferredDuringFreeze: an inter-cluster message
// arriving mid-2PC is queued and handled only after the commit
// ("application messages are queued", §3.1).
func TestInterDeliveryDeferredDuringFreeze(t *testing.T) {
	b := newTestbed(t, []int{2, 1}, 1, false)
	leader := b.node(0, 0)
	leader.OnTimer(TimerCLC) // freezes the leader immediately
	if !leader.Frozen() {
		t.Fatal("not frozen")
	}
	m := AppMsg{MsgID: 3, Payload: payload(b.node(1, 0).ID(), 5), SrcCluster: 1, SrcEpoch: 0, SendSN: 1}
	leader.OnMessage(b.node(1, 0).ID(), m)
	if len(b.app(0, 0).delivered) != 0 {
		t.Fatal("delivered during freeze")
	}
	if b.stats["app.deferred_frozen"] != 1 {
		t.Fatal("not deferred")
	}
	b.pump() // the 2PC completes; the queued message then forces a CLC
	if len(b.app(0, 0).delivered) != 1 {
		t.Fatal("deferred message never delivered")
	}
	// The dependency (piggy 1 > 0) forced a second checkpoint after the
	// unforced one.
	if got := b.stats["clc.committed.c0.forced"]; got != 1 {
		t.Fatalf("forced = %d", got)
	}
}

// TestForceCoalescing: two held messages demanding different DDV
// entries while a 2PC is in flight coalesce into a single forced CLC
// (the leader merges pending targets at commit).
func TestForceCoalescing(t *testing.T) {
	b := newTestbed(t, []int{1, 1, 2}, 1, false)
	dst := b.node(2, 1) // non-leader receiver: forces travel as messages
	b.commitCLC(0)      // c0 at 2
	b.commitCLC(1)      // c1 at 2

	// Both arrive before the leader's 2PC commits: one forced CLC
	// covers both dependencies.
	m0 := AppMsg{MsgID: 1, Payload: payload(b.node(0, 0).ID(), 1), SrcCluster: 0, SendSN: 2}
	m1 := AppMsg{MsgID: 1, Payload: payload(b.node(1, 0).ID(), 1), SrcCluster: 1, SendSN: 2}
	dst.OnMessage(b.node(0, 0).ID(), m0)
	dst.OnMessage(b.node(1, 0).ID(), m1)
	b.pump()
	if got := len(b.app(2, 1).delivered); got != 2 {
		t.Fatalf("delivered = %d", got)
	}
	if got := dst.DDVSnapshot(); !got.Equal(DDV{2, 2, 2}) {
		t.Fatalf("ddv = %v", got)
	}
	if forced := b.stats["clc.committed.c2.forced"]; forced != 1 {
		t.Fatalf("forced = %d, want 1 (coalesced)", forced)
	}

	// Contrast: on a single-node cluster each force commits instantly
	// (no in-flight window), so the same pair costs two forced CLCs.
	solo := newTestbed(t, []int{1, 1, 1}, 0, false)
	solo.commitCLC(0)
	solo.commitCLC(1)
	soloDst := solo.node(2, 0)
	soloDst.OnMessage(solo.node(0, 0).ID(), m0)
	soloDst.OnMessage(solo.node(1, 0).ID(), m1)
	solo.pump()
	if forced := solo.stats["clc.committed.c2.forced"]; forced != 2 {
		t.Fatalf("solo forced = %d, want 2", forced)
	}
}

// TestHeldMessageSurvivesLeaderRecovery: a message arriving while the
// receiver cluster's leader is mid-recovery gets held (the ForceCLC
// request dies at the lostState leader), is discarded by the cluster's
// rollback, and must come back through the sender's log: the rollback
// alert makes the (unacknowledged) entry resend, the resend re-raises
// the force at the now-recovered leader, and the message finally
// delivers — all with infinite unforced-CLC timers.
func TestHeldMessageSurvivesLeaderRecovery(t *testing.T) {
	b := newTestbed(t, []int{1, 2}, 1, false)
	src := b.node(0, 0)
	receiver := b.node(1, 1)

	// The leader crashes (restarting empty); traffic keeps flowing.
	b.node(1, 0).Fail()
	b.node(1, 0).Restart()
	src.Send(receiver.ID(), payload(src.ID(), 1))
	b.pump()
	if len(b.app(1, 1).delivered) != 0 {
		t.Fatal("delivered without the forced CLC")
	}
	if src.log[0].acked {
		t.Fatal("held message acked prematurely")
	}

	// Detection triggers the rollback: recovery, alert, resend, forced
	// CLC, delivery.
	receiver.OnFailureDetected(b.node(1, 0).ID())
	b.pump()
	if got := b.app(1, 1).delivered; len(got) != 1 || got[0].Seq != 1 {
		t.Fatalf("delivered = %v", got)
	}
	if b.stats["clc.committed.c1.forced"] == 0 {
		t.Fatal("no forced CLC for the resent message")
	}
	if !src.log[0].acked {
		t.Fatal("resend not acknowledged")
	}
}

// TestLogMirroringAndRecovery: a crashed sender recovers its message
// log from the neighbour's mirror, so a later receiver rollback still
// gets its resends.
func TestLogMirroringAndRecovery(t *testing.T) {
	b := newTestbed(t, []int{2, 1}, 1, false)
	sender := b.node(0, 1)
	holder := b.node(0, 0) // (index+1)%2 of node 1 is node 0

	sender.Send(b.node(1, 0).ID(), payload(sender.ID(), 1))
	b.pump()
	if got := len(holder.mirrorLogs[sender.ID()]); got != 1 {
		t.Fatalf("mirror entries at holder = %d", got)
	}
	// A checkpoint captures the send; the cluster will roll back to it.
	b.commitCLC(0)

	// The sender crashes and recovers: the entry's send is part of the
	// restored state (sendSN 1 < restored SN 2), so the mirror must
	// hand the entry back.
	sender.Fail()
	sender.Restart()
	holder.OnFailureDetected(sender.ID())
	b.pump()
	if got := sender.LogLen(); got != 1 {
		t.Fatalf("recovered log entries = %d", got)
	}
	if b.stats["log.recovered_entries"] != 1 {
		t.Fatal("log recovery not recorded")
	}

	// Contrast: had the cluster rolled back *behind* the send, the
	// entry would be dropped — the app re-executes the send instead.
	// (Covered by TestRandomizedProtocolStress via replay.)

	// A receiver-cluster rollback now triggers a resend of the
	// recovered entry.
	resentBefore := b.stats["log.resent"] + b.stats["log.resent_after_recovery"]
	sender.OnMessage(b.node(1, 0).ID(), RollbackAlert{Cluster: 1, NewSN: 1, NewEpoch: 1})
	resent := b.stats["log.resent"] + b.stats["log.resent_after_recovery"] - resentBefore
	if resent < 1 {
		t.Fatalf("resent = %d", resent)
	}
	b.queue = nil
}

// TestGCLogTrimReachesMirror: after the collector purges acknowledged
// log entries, the neighbour's mirror shrinks too.
func TestGCLogTrimReachesMirror(t *testing.T) {
	b := newTestbed(t, []int{2, 1}, 1, false)
	b.node(0, 0).cfg.GCInitiator = true
	sender, holder := b.node(0, 1), b.node(0, 0)

	sender.Send(b.node(1, 0).ID(), payload(sender.ID(), 1)) // forces CLC in c1, acked with 2
	b.pump()
	// Another CLC in the sender's cluster keeps a failure there from
	// dragging the receiver back to SN 2 (its oldest qualifying target
	// would then re-need the entry). With it, the receiver's smallest
	// rollback SN is 3 > ackSN 2, so the entry is collectable.
	b.commitCLC(0)
	b.commitCLC(1)
	b.node(0, 0).OnTimer(TimerGC)
	b.pump()
	if got := sender.LogLen(); got != 0 {
		t.Fatalf("log after GC = %d", got)
	}
	if got := len(holder.mirrorLogs[sender.ID()]); got != 0 {
		t.Fatalf("mirror after GC trim = %d", got)
	}
}

// TestSimultaneousFaultsSameCluster: with replication degree 2, two
// nodes of one cluster can be down at once — the second detection
// restarts the rollback under a fresh epoch, and both restarted nodes
// recover their states from whichever holders survived (§7).
func TestSimultaneousFaultsSameCluster(t *testing.T) {
	b := newTestbed(t, []int{4, 1}, 2, false)
	b.commitCLC(0) // SN 2, states replicated twice

	// Two adjacent nodes crash together (adjacent is the worst case:
	// node 1 is a holder for some of node 2's neighbours' states).
	b.node(0, 1).Fail()
	b.node(0, 2).Fail()
	b.node(0, 1).Restart()
	b.node(0, 2).Restart()
	// Detections arrive one after the other at the coordinator.
	b.node(0, 0).OnFailureDetected(b.node(0, 1).ID())
	b.node(0, 0).OnFailureDetected(b.node(0, 2).ID())
	b.pump()

	if b.stats["rollback.restarted.c0"] == 0 {
		t.Fatal("second detection did not restart the rollback")
	}
	for i := 0; i < 4; i++ {
		n := b.node(0, i)
		if n.LostState() {
			t.Fatalf("node %d never recovered", i)
		}
		if n.SN() != 2 {
			t.Fatalf("node %d sn=%d, want 2", i, n.SN())
		}
		if n.Frozen() {
			t.Fatalf("node %d stuck frozen", i)
		}
	}
	if b.stats["storage.recovered_states"] < 2 {
		t.Fatalf("recovered = %d", b.stats["storage.recovered_states"])
	}
}

// TestRandomizedProtocolStress drives random operations (sends,
// checkpoints, crashes with recovery, garbage collections) through the
// synchronous testbed and asserts the protocol's global invariants
// after every quiescent point.
func TestRandomizedProtocolStress(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		sizes := []int{1 + rng.Intn(3), 1 + rng.Intn(3), 1 + rng.Intn(3)}
		b := newTestbed(t, sizes, 1, rng.Intn(2) == 0)
		b.node(0, 0).cfg.GCInitiator = true

		var seq uint64
		for op := 0; op < 120; op++ {
			switch rng.Intn(10) {
			case 0, 1, 2, 3, 4: // application send
				src := topology.NodeID{
					Cluster: topology.ClusterID(rng.Intn(3)),
					Index:   0,
				}
				src.Index = rng.Intn(sizes[src.Cluster])
				dst := topology.NodeID{Cluster: topology.ClusterID(rng.Intn(3))}
				dst.Index = rng.Intn(sizes[dst.Cluster])
				if src == dst {
					continue
				}
				seq++
				if n := b.nodes[src]; !n.Failed() {
					n.Send(dst, payload(src, seq))
				}
			case 5, 6: // unforced checkpoint somewhere
				b.node(rng.Intn(3), 0).OnTimer(TimerCLC)
			case 7: // garbage collection
				b.node(0, 0).OnTimer(TimerGC)
			case 8, 9: // crash + immediate detection/recovery
				c := rng.Intn(3)
				if sizes[c] < 2 {
					continue
				}
				victim := b.node(c, 1+rng.Intn(sizes[c]-1))
				if victim.Failed() {
					continue
				}
				victim.Fail()
				victim.Restart()
				b.node(c, 0).OnFailureDetected(victim.ID())
			}
			b.pump()

			// Invariants at quiescence.
			for c := 0; c < 3; c++ {
				ref := b.node(c, 0)
				for i := 1; i < sizes[c]; i++ {
					n := b.node(c, i)
					if n.SN() != ref.SN() {
						t.Fatalf("seed=%d op=%d: cluster %d SN split %d vs %d",
							seed, op, c, n.SN(), ref.SN())
					}
					if !n.DDVSnapshot().Equal(ref.DDVSnapshot()) {
						t.Fatalf("seed=%d op=%d: cluster %d DDV split", seed, op, c)
					}
					if n.Frozen() {
						t.Fatalf("seed=%d op=%d: node %v stuck frozen", seed, op, n.ID())
					}
				}
				if ref.StoredCount() == 0 {
					t.Fatalf("seed=%d op=%d: cluster %d has no checkpoints", seed, op, c)
				}
			}
			if b.stats["invariant.rollback_target_missing"] != 0 {
				t.Fatalf("seed=%d op=%d: rollback target missing", seed, op)
			}
			for _, n := range b.nodes {
				if !n.Failed() && n.LostState() {
					t.Fatalf("seed=%d op=%d: node %v never recovered", seed, op, n.ID())
				}
			}
		}
	}
}
