package core

import (
	"math/rand"
	"testing"
)

// TestEncodeBatchMatchesPerMessage pins the batch encode contract
// deterministically: for every batch size and generation discipline,
// EncodeBatch emits exactly what sequential Encode calls would.
func TestEncodeBatchMatchesPerMessage(t *testing.T) {
	for _, withGen := range []bool{true, false} {
		rng := rand.New(rand.NewSource(7))
		var batched, seq DeltaCodec
		batched.Init(16)
		seq.Init(16)
		var arB, arS PairArena
		cur := NewDDV(16)
		gen := uint64(0)
		for round := 0; round < 50; round++ {
			if rng.Intn(2) == 0 {
				cur[rng.Intn(16)] += SN(rng.Intn(3) + 1)
				gen++
			}
			g := gen
			if !withGen {
				g = 0
			}
			count := rng.Intn(4) + 1
			got := batched.EncodeBatch(nil, cur, g, count, &arB)
			if len(got) != count {
				t.Fatalf("EncodeBatch emitted %d entries for count %d", len(got), count)
			}
			for k := 0; k < count; k++ {
				want := seq.Encode(cur, g, &arS)
				comparePairs(t, "EncodeBatch", 16, got[k], want)
			}
			if !batched.enc.Equal(seq.enc) {
				t.Fatalf("encoder vectors diverged: batch %v, seq %v", batched.enc, seq.enc)
			}
		}
	}
}

// FuzzBatchCodec fuzzes batched encode/decode against the per-message
// DeltaCodec oracle: random vector histories are shipped in random
// batch sizes; the batch side must produce identical wire pairs,
// decoder vectors, versions and journal windows.
func FuzzBatchCodec(f *testing.F) {
	f.Add(uint64(1), 8, 60)
	f.Add(uint64(9), 64, 120)
	f.Add(uint64(77), 3, 200)
	f.Fuzz(func(t *testing.T, seed uint64, width, steps int) {
		if width < 1 || width > 256 || steps < 1 || steps > 300 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(int64(seed)))
		var batched, seq DeltaCodec
		batched.Init(width)
		seq.Init(width)
		var arB, arS PairArena
		cur := NewDDV(width)
		gen := uint64(1)

		var pipeB, pipeS [][]DDVPair
		for s := 0; s < steps; s++ {
			switch rng.Intn(3) {
			case 0: // mutate the sender vector
				cur[rng.Intn(width)] = SN(rng.Intn(30))
				gen++
			case 1: // ship a batch of same-tick messages
				count := rng.Intn(5) + 1
				g := gen
				if rng.Intn(4) == 0 {
					g = 0 // sender without a generation counter
				}
				outB := batched.EncodeBatch(nil, cur, g, count, &arB)
				for k := 0; k < count; k++ {
					outS := seq.Encode(cur, g, &arS)
					comparePairs(t, "batch member", width, outB[k], outS)
					pipeB = append(pipeB, outB[k])
					pipeS = append(pipeS, outS)
				}
			case 2: // drain the pipe through both decoders
				if len(pipeB) == 0 {
					continue
				}
				k := rng.Intn(len(pipeB)) + 1
				decB := batched.DecodeBatch(pipeB[:k])
				for _, pairs := range pipeS[:k] {
					if len(pairs) > 0 {
						seq.Decode(pairs)
					}
				}
				pipeB, pipeS = pipeB[k:], pipeS[k:]
				if !decB.Equal(seq.Current()) {
					t.Fatalf("decoders diverged: batch %v, seq %v", decB, seq.Current())
				}
				if batched.Version() != seq.Version() {
					t.Fatalf("versions diverged: batch %d, seq %d", batched.Version(), seq.Version())
				}
				for v := uint64(0); v < batched.ver && v < codecJournal; v++ {
					idx := v % codecJournal
					comparePairs(t, "journal", width, batched.journal[idx], seq.journal[idx])
				}
			}
		}
	})
}
