package sim

import (
	"testing"
)

// TestPostBatchFiresInAddOrder checks the PostBatch contract: members
// added with non-decreasing times and increasing keys fire exactly in
// Add order, each at its own time, sharing one handler/arg.
func TestPostBatchFiresInAddOrder(t *testing.T) {
	e := NewEngine()
	var got []Time
	b := e.NewPostBatch(func(any) { got = append(got, e.Now()) }, nil)
	times := []Time{Time(Millisecond), Time(Millisecond), Time(2 * Millisecond), Time(5 * Millisecond)}
	for i, at := range times {
		b.Add(at, uint64(i+1))
	}
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(times) {
		t.Fatalf("fired %d members, want %d", len(got), len(times))
	}
	for i, at := range times {
		if got[i] != at {
			t.Fatalf("member %d fired at %v, want %v (all: %v)", i, got[i], at, got)
		}
	}
}

// TestPostBatchInterleavesWithStandalonePosts checks that batch members
// keep their global (time, key) positions relative to independently
// scheduled post events — batching is mechanics, not ordering.
func TestPostBatchInterleavesWithStandalonePosts(t *testing.T) {
	e := NewEngine()
	var got []int
	mk := func(tag int) func(any) { return func(any) { got = append(got, tag) } }
	b := e.NewPostBatch(mk(1), nil)
	// Same instant: key decides. Batch members get keys 2 and 4;
	// standalone posts take 1, 3 and 5.
	at := Time(3 * Millisecond)
	e.SchedulePostCallAt(at, 1, mk(0), nil)
	b.Add(at, 2)
	e.SchedulePostCallAt(at, 3, mk(0), nil)
	b.Add(at, 4)
	e.SchedulePostCallAt(at, 5, mk(0), nil)
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 0, 1, 0}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("interleave %v, want %v", got, want)
		}
	}
}

// TestPostBatchFarSpill drives members beyond the near-tier window:
// they must spill as standalone far-tier events and still fire in
// global time order with the near-tier members.
func TestPostBatchFarSpill(t *testing.T) {
	e := NewEngine()
	var got []Time
	b := e.NewPostBatch(func(any) { got = append(got, e.Now()) }, nil)
	// The near window spans ladBuckets<<ladShift ≈ 537ms from the
	// current window start; a member a full hour out is far-tier.
	times := []Time{Time(Millisecond), Time(Hour), Time(Millisecond * 2), Time(2 * Hour)}
	for i, at := range times {
		b.Add(at, uint64(i+1))
	}
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := []Time{Time(Millisecond), Time(Millisecond * 2), Time(Hour), Time(2 * Hour)}
	if len(got) != len(want) {
		t.Fatalf("fired %d members, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fire order %v, want %v", got, want)
		}
	}
}

// TestPostBatchSlotReuse checks slab accounting: after a batch fully
// fires, its slot is recycled and a fresh batch reuses the slab without
// leaking entries (engine count returns to zero).
func TestPostBatchSlotReuse(t *testing.T) {
	e := NewEngine()
	fired := 0
	for round := 0; round < 100; round++ {
		b := e.NewPostBatch(func(any) { fired++ }, nil)
		base := e.Now() + Time(Millisecond)
		for i := 0; i < 7; i++ {
			b.Add(base, uint64(i+1))
		}
		if _, err := e.RunAll(); err != nil {
			t.Fatal(err)
		}
	}
	if fired != 700 {
		t.Fatalf("fired %d members, want 700", fired)
	}
	if e.count != 0 {
		t.Fatalf("engine count %d after all batches drained, want 0", e.count)
	}
	if len(e.slab) > 64 {
		t.Fatalf("slab grew to %d slots across 100 sequential batches; slots are not being recycled", len(e.slab))
	}
}

// TestPostBatchMembersCarryOwnTimes regression-tests the stale-slab-at
// hazard: the shared slot records the first member's time, so the
// engine must take each member's fire time from its ladder entry, not
// from the slab.
func TestPostBatchMembersCarryOwnTimes(t *testing.T) {
	e := NewEngine()
	var got []Time
	b := e.NewPostBatch(func(any) { got = append(got, e.Now()) }, nil)
	b.Add(Time(Millisecond), 1)
	b.Add(Time(100*Millisecond), 2) // same near window, different bucket
	// A standalone event between the two members: if member 2 fired at
	// the slab's recorded time (1ms) it would run before this one.
	var betweenAt Time
	e.Schedule(50*Millisecond, func(e *Engine) { betweenAt = e.Now() })
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != Time(Millisecond) || got[1] != Time(100*Millisecond) {
		t.Fatalf("member times %v, want [1ms 100ms]", got)
	}
	if betweenAt != Time(50*Millisecond) {
		t.Fatalf("standalone event fired at %v, want 50ms", betweenAt)
	}
}
