package sim

import "fmt"

// Handler is a callback executed when an event fires. It receives the
// engine so it can schedule further events.
type Handler func(e *Engine)

// event is one slot of the engine's event slab. A slot is either live
// (scheduled, heapPos >= 0), firing (popped, fields being consumed) or
// free (linked into the free list through nextFree). The generation
// counter increments every time a slot is released, so an EventRef into
// a recycled slot can never cancel its successor.
//
// Exactly one of fn/call is set: fn is the classic closure handler,
// call+arg the closure-free path (ScheduleCall).
type event struct {
	at       Time
	seq      uint64 // FIFO tie-break for events scheduled at the same instant
	gen      uint32
	heapPos  int32 // position in the heap; -1 once popped or freed
	nextFree int32 // free-list link, meaningful only for free slots
	fn       Handler
	call     func(arg any)
	arg      any
}

// EventRef identifies a scheduled event so it can be cancelled. The zero
// value is inert. A ref stays valid after its event fired, was cancelled
// or its slab slot was recycled: Cancel and Pending compare the slot's
// generation stamp and degrade to no-ops on a mismatch.
type EventRef struct {
	engine *Engine
	slot   int32
	gen    uint32
}

// Cancel prevents the referenced event from firing. Cancelling an event
// that already fired or was already cancelled is a no-op. It reports
// whether the event was actually cancelled.
func (r EventRef) Cancel() bool {
	if r.engine == nil {
		return false
	}
	e := r.engine
	if int(r.slot) >= len(e.slab) {
		return false
	}
	ev := &e.slab[r.slot]
	if ev.gen != r.gen || ev.heapPos < 0 {
		return false
	}
	e.heapRemove(int(ev.heapPos))
	e.freeSlot(r.slot)
	return true
}

// Pending reports whether the referenced event is still scheduled.
func (r EventRef) Pending() bool {
	if r.engine == nil || int(r.slot) >= len(r.engine.slab) {
		return false
	}
	ev := &r.engine.slab[r.slot]
	return ev.gen == r.gen && ev.heapPos >= 0
}

// Engine is a discrete event simulation engine: a virtual clock plus an
// ordered queue of pending events. It is not safe for concurrent use; a
// simulation is a single-threaded deterministic computation.
//
// Events live in a slab ([]event) indexed by a typed binary heap of
// slot numbers, so scheduling performs no per-event allocation: slots
// are recycled through a free list and guarded by generation stamps
// (see EventRef). Cancel removes the event from the heap eagerly, which
// keeps Len O(1) and the heap free of dead entries.
type Engine struct {
	now      Time
	slab     []event
	heap     []int32 // slot numbers ordered by (at, seq)
	freeHead int32   // head of the free-slot list, -1 when empty
	seq      uint64
	stopped  bool
	// Executed counts events that have fired; useful for progress
	// reporting and as a runaway guard in tests.
	Executed uint64
	// MaxEvents aborts Run with an error when more than this many events
	// fire (0 = unlimited). A safety net against non-terminating
	// simulations in tests.
	MaxEvents uint64
}

// NewEngine returns an empty engine with the clock at zero.
func NewEngine() *Engine { return &Engine{freeHead: -1} }

// Reset returns the engine to its initial state (clock at zero, empty
// queue) while keeping the slab and heap capacity, so a pooled engine
// re-runs without re-growing its buffers. Every slot's generation is
// bumped, invalidating all EventRefs handed out before the reset.
func (e *Engine) Reset() {
	e.now = 0
	e.seq = 0
	e.stopped = false
	e.Executed = 0
	e.heap = e.heap[:0]
	e.freeHead = -1
	for i := range e.slab {
		ev := &e.slab[i]
		ev.gen++
		ev.heapPos = -1
		ev.fn = nil
		ev.call = nil
		ev.arg = nil
		ev.nextFree = e.freeHead
		e.freeHead = int32(i)
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Len returns the number of pending events. Cancelled events leave the
// heap immediately, so this is the heap size — O(1).
func (e *Engine) Len() int { return len(e.heap) }

// Schedule queues fn to run after delay d (>= 0) of virtual time and
// returns a reference usable to cancel it. Scheduling in the past panics:
// it is always a harness bug.
func (e *Engine) Schedule(d Duration, fn Handler) EventRef {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	return e.ScheduleAt(e.now.Add(d), fn)
}

// ScheduleAt queues fn to run at absolute virtual time t (>= Now).
func (e *Engine) ScheduleAt(t Time, fn Handler) EventRef {
	if fn == nil {
		panic("sim: nil handler")
	}
	return e.push(t, fn, nil, nil)
}

// ScheduleCall queues fn(arg) to run after delay d of virtual time.
// This is the closure-free scheduling path: fn is typically a
// package-level function or a method value hoisted once per component,
// and arg carries the per-event state, so the call allocates nothing
// beyond what the caller chose for arg (a pooled pointer is free).
func (e *Engine) ScheduleCall(d Duration, fn func(arg any), arg any) EventRef {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	return e.ScheduleCallAt(e.now.Add(d), fn, arg)
}

// ScheduleCallAt queues fn(arg) at absolute virtual time t (>= Now).
func (e *Engine) ScheduleCallAt(t Time, fn func(arg any), arg any) EventRef {
	if fn == nil {
		panic("sim: nil handler")
	}
	return e.push(t, nil, fn, arg)
}

// push allocates a slab slot and inserts it into the heap.
func (e *Engine) push(t Time, fn Handler, call func(any), arg any) EventRef {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	e.seq++
	var slot int32
	if e.freeHead >= 0 {
		slot = e.freeHead
		e.freeHead = e.slab[slot].nextFree
	} else {
		e.slab = append(e.slab, event{})
		slot = int32(len(e.slab) - 1)
	}
	ev := &e.slab[slot]
	ev.at = t
	ev.seq = e.seq
	ev.fn = fn
	ev.call = call
	ev.arg = arg
	ev.heapPos = int32(len(e.heap))
	e.heap = append(e.heap, slot)
	e.siftUp(len(e.heap) - 1)
	return EventRef{engine: e, slot: slot, gen: ev.gen}
}

// freeSlot releases a slot back to the free list, bumping its
// generation so outstanding refs become inert, and dropping handler and
// argument references so the slab does not retain dead payloads.
func (e *Engine) freeSlot(slot int32) {
	ev := &e.slab[slot]
	ev.gen++
	ev.heapPos = -1
	ev.fn = nil
	ev.call = nil
	ev.arg = nil
	ev.nextFree = e.freeHead
	e.freeHead = slot
}

// ---- typed binary heap over slab slots, ordered by (at, seq) ----

func (e *Engine) less(a, b int32) bool {
	ea, eb := &e.slab[a], &e.slab[b]
	if ea.at != eb.at {
		return ea.at < eb.at
	}
	return ea.seq < eb.seq
}

func (e *Engine) swap(i, j int) {
	h := e.heap
	h[i], h[j] = h[j], h[i]
	e.slab[h[i]].heapPos = int32(i)
	e.slab[h[j]].heapPos = int32(j)
}

func (e *Engine) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(e.heap[i], e.heap[parent]) {
			return
		}
		e.swap(i, parent)
		i = parent
	}
}

func (e *Engine) siftDown(i int) {
	n := len(e.heap)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		least := left
		if right := left + 1; right < n && e.less(e.heap[right], e.heap[left]) {
			least = right
		}
		if !e.less(e.heap[least], e.heap[i]) {
			return
		}
		e.swap(i, least)
		i = least
	}
}

// heapRemove deletes the entry at heap position i.
func (e *Engine) heapRemove(i int) {
	last := len(e.heap) - 1
	if i != last {
		e.swap(i, last)
	}
	e.slab[e.heap[last]].heapPos = -1
	e.heap = e.heap[:last]
	if i < last {
		e.siftDown(i)
		e.siftUp(i)
	}
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Step fires the next pending event, if any, and reports whether one
// fired.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	slot := e.heap[0]
	e.heapRemove(0)
	ev := &e.slab[slot]
	e.now = ev.at
	e.Executed++
	// Copy the handler out and release the slot before invoking it, so
	// a ref to the firing event reads "no longer pending" and the slot
	// can be recycled by whatever the handler schedules.
	fn, call, arg := ev.fn, ev.call, ev.arg
	e.freeSlot(slot)
	if fn != nil {
		fn(e)
	} else {
		call(arg)
	}
	return true
}

// Run executes events in timestamp order until the queue is empty, Stop
// is called, or the horizon (if > 0) is passed. Events scheduled beyond
// the horizon remain queued. It returns the virtual time at which the
// simulation stopped.
func (e *Engine) Run(horizon Time) (Time, error) {
	e.stopped = false
	for !e.stopped {
		if e.MaxEvents > 0 && e.Executed >= e.MaxEvents {
			return e.now, fmt.Errorf("sim: exceeded MaxEvents=%d at t=%v", e.MaxEvents, e.now)
		}
		if len(e.heap) == 0 {
			break
		}
		if horizon > 0 && e.slab[e.heap[0]].at > horizon {
			e.now = horizon
			break
		}
		e.Step()
	}
	return e.now, nil
}

// RunAll runs until the event queue drains, with no horizon.
func (e *Engine) RunAll() (Time, error) { return e.Run(0) }

// Timer is a resettable one-shot virtual timer built on the engine, used
// for the protocol's periodic actions (unforced CLC timer, GC timer).
// The zero value is unarmed.
type Timer struct {
	engine *Engine
	ref    EventRef
	fn     Handler
}

// NewTimer returns an unarmed timer firing fn when it expires.
func NewTimer(e *Engine, fn Handler) *Timer { return &Timer{engine: e, fn: fn} }

// Reset (re)arms the timer to fire after d. A duration >= Forever leaves
// the timer unarmed, matching the paper's "timer set to infinite".
func (t *Timer) Reset(d Duration) {
	t.ref.Cancel()
	if d >= Forever {
		return
	}
	t.ref = t.engine.Schedule(d, t.fn)
}

// Stop disarms the timer.
func (t *Timer) Stop() { t.ref.Cancel() }

// Armed reports whether the timer is pending.
func (t *Timer) Armed() bool { return t.ref.Pending() }
