package sim

import (
	"container/heap"
	"fmt"
)

// Handler is a callback executed when an event fires. It receives the
// engine so it can schedule further events.
type Handler func(e *Engine)

// event is a scheduled callback in the event queue.
type event struct {
	at      Time
	seq     uint64 // FIFO tie-break for events scheduled at the same instant
	fn      Handler
	stopped bool
	index   int // position in the heap, -1 once popped
}

// EventRef identifies a scheduled event so it can be cancelled. The zero
// value is inert.
type EventRef struct{ ev *event }

// Cancel prevents the referenced event from firing. Cancelling an event
// that already fired or was already cancelled is a no-op. It reports
// whether the event was actually cancelled.
func (r EventRef) Cancel() bool {
	if r.ev == nil || r.ev.stopped || r.ev.index == -1 {
		return false
	}
	r.ev.stopped = true
	return true
}

// Pending reports whether the referenced event is still scheduled.
func (r EventRef) Pending() bool {
	return r.ev != nil && !r.ev.stopped && r.ev.index != -1
}

// eventQueue is a min-heap on (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Engine is a discrete event simulation engine: a virtual clock plus an
// ordered queue of pending events. It is not safe for concurrent use; a
// simulation is a single-threaded deterministic computation.
type Engine struct {
	now     Time
	queue   eventQueue
	seq     uint64
	stopped bool
	// Executed counts events that have fired; useful for progress
	// reporting and as a runaway guard in tests.
	Executed uint64
	// MaxEvents aborts Run with an error when more than this many events
	// fire (0 = unlimited). A safety net against non-terminating
	// simulations in tests.
	MaxEvents uint64
}

// NewEngine returns an empty engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Len returns the number of pending (non-cancelled) events.
func (e *Engine) Len() int {
	n := 0
	for _, ev := range e.queue {
		if !ev.stopped {
			n++
		}
	}
	return n
}

// Schedule queues fn to run after delay d (>= 0) of virtual time and
// returns a reference usable to cancel it. Scheduling in the past panics:
// it is always a harness bug.
func (e *Engine) Schedule(d Duration, fn Handler) EventRef {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	return e.ScheduleAt(e.now.Add(d), fn)
}

// ScheduleAt queues fn to run at absolute virtual time t (>= Now).
func (e *Engine) ScheduleAt(t Time, fn Handler) EventRef {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: nil handler")
	}
	e.seq++
	ev := &event{at: t, seq: e.seq, fn: fn}
	heap.Push(&e.queue, ev)
	return EventRef{ev}
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Step fires the next pending event, if any, and reports whether one
// fired.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*event)
		if ev.stopped {
			continue
		}
		e.now = ev.at
		e.Executed++
		ev.fn(e)
		return true
	}
	return false
}

// Run executes events in timestamp order until the queue is empty, Stop
// is called, or the horizon (if > 0) is passed. Events scheduled beyond
// the horizon remain queued. It returns the virtual time at which the
// simulation stopped.
func (e *Engine) Run(horizon Time) (Time, error) {
	e.stopped = false
	for !e.stopped {
		if e.MaxEvents > 0 && e.Executed >= e.MaxEvents {
			return e.now, fmt.Errorf("sim: exceeded MaxEvents=%d at t=%v", e.MaxEvents, e.now)
		}
		// Peek for horizon before popping.
		next := e.peek()
		if next == nil {
			break
		}
		if horizon > 0 && next.at > horizon {
			e.now = horizon
			break
		}
		e.Step()
	}
	return e.now, nil
}

// RunAll runs until the event queue drains, with no horizon.
func (e *Engine) RunAll() (Time, error) { return e.Run(0) }

func (e *Engine) peek() *event {
	for len(e.queue) > 0 {
		ev := e.queue[0]
		if ev.stopped {
			heap.Pop(&e.queue)
			continue
		}
		return ev
	}
	return nil
}

// Timer is a resettable one-shot virtual timer built on the engine, used
// for the protocol's periodic actions (unforced CLC timer, GC timer).
// The zero value is unarmed.
type Timer struct {
	engine *Engine
	ref    EventRef
	fn     Handler
}

// NewTimer returns an unarmed timer firing fn when it expires.
func NewTimer(e *Engine, fn Handler) *Timer { return &Timer{engine: e, fn: fn} }

// Reset (re)arms the timer to fire after d. A duration >= Forever leaves
// the timer unarmed, matching the paper's "timer set to infinite".
func (t *Timer) Reset(d Duration) {
	t.ref.Cancel()
	if d >= Forever {
		return
	}
	t.ref = t.engine.Schedule(d, t.fn)
}

// Stop disarms the timer.
func (t *Timer) Stop() { t.ref.Cancel() }

// Armed reports whether the timer is pending.
func (t *Timer) Armed() bool { return t.ref.Pending() }
