package sim

import (
	"errors"
	"fmt"
	"math/bits"
	"slices"
	"sync/atomic"
)

// Handler is a callback executed when an event fires. It receives the
// engine so it can schedule further events.
type Handler func(e *Engine)

// The scheduling core is a two-tier ladder queue:
//
//   - The near tier is an array of ladBuckets buckets, each ladWidth of
//     virtual time wide, covering the window [winStart, winEnd). An
//     event due inside the window is appended to its bucket in O(1);
//     the bucket is sorted by (at, ord) only when the drain cursor
//     reaches it. Ordinary events take ord from the monotonically
//     increasing schedule counter, so sorting by the total (at, ord)
//     key reproduces exactly the FIFO-within-a-tick order the seed's
//     binary heap produced. Post-class events (SchedulePostCallAt)
//     carry an explicit caller-chosen key with the top bit set, so at
//     equal timestamps they fire after every ordinary event, ordered
//     among themselves by key — an order that is a pure function of
//     the caller's keys, independent of scheduling order.
//   - The far tier is the classic slab-indexed binary heap. Events due
//     at or beyond winEnd spill there; when the near tier drains, the
//     window jumps to the earliest far event and every far event inside
//     the new window migrates into the buckets in one pass.
//
// Correctness never depends on an event landing in the "right" tier:
// the pop path compares the heads of both tiers by (at, ord) and takes
// the smaller, so any event routed conservatively to the far heap (for
// example one scheduled before the window start after a window jump)
// still fires in exact timestamp order.
const (
	ladShift   = 20                               // bucket width: 1<<20 ns ≈ 1.05 ms
	ladWidth   = Duration(1) << ladShift          //
	ladBuckets = 512                              // buckets per window
	ladWindow  = Duration(ladBuckets) << ladShift // ≈ 537 ms of virtual time
)

// Queue-position markers stored in event.heapPos. Non-negative values
// are far-heap positions.
const (
	posFree = -1 // not queued: free slot, or popped and firing
	posNear = -2 // queued in a near-tier bucket
)

// postClass is the ord-space bit that places an event in the post-tick
// class: at equal timestamps every post-class event fires after every
// ordinary one, because ordinary ords are schedule-counter values that
// never reach 1<<63.
const postClass = uint64(1) << 63

// ladEntry is one near-tier bucket entry. It is self-contained — at and
// ord are copied in — so sorting a bucket never touches the slab and a
// stale entry (its slot cancelled and possibly recycled) still has a
// deterministic sort position; staleness is detected at drain time by
// comparing the generation stamp.
type ladEntry struct {
	at   Time
	ord  uint64
	slot int32
	gen  uint32
}

// event is one slot of the engine's event slab. A slot is either live
// (scheduled, heapPos != posFree), firing (popped, fields being
// consumed) or free (linked into the free list through nextFree). The
// generation counter increments every time a slot is released, so an
// EventRef into a recycled slot can never cancel its successor.
//
// Exactly one of fn/call is set: fn is the classic closure handler,
// call+arg the closure-free path (ScheduleCall).
type event struct {
	at       Time
	ord      uint64 // tie-break at equal timestamps: schedule counter, or post-class key
	gen      uint32
	heapPos  int32 // far-heap position, or posNear / posFree
	nextFree int32 // free-list link, meaningful only for free slots
	// remaining counts the live near-tier entries sharing this slot.
	// Ordinary events leave it at 0 (exactly one entry references the
	// slot); a PostBatch slot carries one ladEntry per member, and the
	// slot is released only when the last member fires.
	remaining int32
	fn        Handler
	call      func(arg any)
	arg       any
}

// EventRef identifies a scheduled event so it can be cancelled. The zero
// value is inert. A ref stays valid after its event fired, was cancelled
// or its slab slot was recycled: Cancel and Pending compare the slot's
// generation stamp and degrade to no-ops on a mismatch.
type EventRef struct {
	engine *Engine
	slot   int32
	gen    uint32
}

// Cancel prevents the referenced event from firing. Cancelling an event
// that already fired or was already cancelled is a no-op. It reports
// whether the event was actually cancelled.
func (r EventRef) Cancel() bool {
	if r.engine == nil {
		return false
	}
	e := r.engine
	if int(r.slot) >= len(e.slab) {
		return false
	}
	ev := &e.slab[r.slot]
	if ev.gen != r.gen || ev.heapPos == posFree {
		return false
	}
	if ev.heapPos >= 0 {
		e.heapRemove(int(ev.heapPos))
	}
	// A near-tier event leaves its bucket entry behind; freeing the slot
	// bumps the generation, so the drain cursor skips the stale entry.
	e.count--
	e.freeSlot(r.slot)
	return true
}

// Pending reports whether the referenced event is still scheduled.
func (r EventRef) Pending() bool {
	if r.engine == nil || int(r.slot) >= len(r.engine.slab) {
		return false
	}
	ev := &r.engine.slab[r.slot]
	return ev.gen == r.gen && ev.heapPos != posFree
}

// Engine is a discrete event simulation engine: a virtual clock plus an
// ordered queue of pending events. It is not safe for concurrent use; a
// simulation is a single-threaded deterministic computation.
//
// Events live in a slab ([]event) so scheduling performs no per-event
// allocation: slots are recycled through a free list and guarded by
// generation stamps (see EventRef). The queue itself is the two-tier
// ladder described above; Cancel is O(1) for near events and O(log n)
// for far ones, and Len is O(1) via a live-event counter.
type Engine struct {
	now  Time
	slab []event

	// Near tier.
	winStart  Time
	winEnd    Time
	buckets   [][]ladEntry
	occupied  [ladBuckets / 64]uint64 // bit per non-empty bucket
	cur       int                     // bucket the drain cursor is on
	curPos    int                     // consumption position within buckets[cur]
	curSorted bool                    // buckets[cur] has been sorted and is being drained

	// Far tier.
	heap []int32 // slot numbers ordered by (at, seq)

	freeHead int32 // head of the free-slot list, -1 when empty
	seq      uint64
	count    int // live (scheduled, uncancelled, unfired) events
	stopped  bool
	// Executed counts events that have fired; useful for progress
	// reporting and as a runaway guard in tests.
	Executed uint64
	// MaxEvents aborts Run with an error when more than this many events
	// fire (0 = unlimited). A safety net against non-terminating
	// simulations in tests.
	MaxEvents uint64

	// interrupted is the only cross-goroutine input to the otherwise
	// single-threaded engine: a wall-clock watchdog sets it via
	// Interrupt and the run loops abort with ErrInterrupted at the next
	// event boundary. It stays set (Run must not resume a killed run's
	// next horizon slice) until Reset or ClearInterrupt.
	interrupted atomic.Bool
}

// ErrInterrupted is returned by Run/RunUntil after Interrupt: the
// simulation was killed from outside (a wall-clock watchdog), not
// finished. Detect it with errors.Is.
var ErrInterrupted = errors.New("sim: run interrupted")

// Interrupt makes any in-progress or future Run/RunUntil return
// ErrInterrupted at the next event boundary. Unlike Stop it is safe to
// call from another goroutine, and it is sticky: the engine stays
// interrupted across horizon slices until Reset or ClearInterrupt, so a
// watchdog firing between two slices still kills the run.
func (e *Engine) Interrupt() { e.interrupted.Store(true) }

// ClearInterrupt re-arms an interrupted engine (Reset also clears).
func (e *Engine) ClearInterrupt() { e.interrupted.Store(false) }

// NewEngine returns an empty engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{
		freeHead: -1,
		winEnd:   Time(0).Add(ladWindow),
		buckets:  make([][]ladEntry, ladBuckets),
	}
}

// Reset returns the engine to its initial state (clock at zero, empty
// queue) while keeping the slab, bucket and heap capacity, so a pooled
// engine re-runs without re-growing its buffers. Every slot's generation
// is bumped, invalidating all EventRefs handed out before the reset.
func (e *Engine) Reset() {
	e.now = 0
	e.seq = 0
	e.count = 0
	e.stopped = false
	e.interrupted.Store(false)
	e.Executed = 0
	e.winStart = 0
	e.winEnd = Time(0).Add(ladWindow)
	e.cur = 0
	e.curPos = 0
	e.curSorted = false
	for i := range e.buckets {
		e.buckets[i] = e.buckets[i][:0]
	}
	e.occupied = [ladBuckets / 64]uint64{}
	e.heap = e.heap[:0]
	e.freeHead = -1
	for i := range e.slab {
		ev := &e.slab[i]
		ev.gen++
		ev.heapPos = posFree
		ev.remaining = 0
		ev.fn = nil
		ev.call = nil
		ev.arg = nil
		ev.nextFree = e.freeHead
		e.freeHead = int32(i)
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Len returns the number of pending events — O(1), cancelled events are
// discounted immediately.
func (e *Engine) Len() int { return e.count }

// Schedule queues fn to run after delay d (>= 0) of virtual time and
// returns a reference usable to cancel it. Scheduling in the past panics:
// it is always a harness bug.
func (e *Engine) Schedule(d Duration, fn Handler) EventRef {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	return e.ScheduleAt(e.now.Add(d), fn)
}

// ScheduleAt queues fn to run at absolute virtual time t (>= Now).
func (e *Engine) ScheduleAt(t Time, fn Handler) EventRef {
	if fn == nil {
		panic("sim: nil handler")
	}
	e.seq++
	return e.push(t, e.seq, fn, nil, nil)
}

// ScheduleCall queues fn(arg) to run after delay d of virtual time.
// This is the closure-free scheduling path: fn is typically a
// package-level function or a method value hoisted once per component,
// and arg carries the per-event state, so the call allocates nothing
// beyond what the caller chose for arg (a pooled pointer is free).
func (e *Engine) ScheduleCall(d Duration, fn func(arg any), arg any) EventRef {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	return e.ScheduleCallAt(e.now.Add(d), fn, arg)
}

// ScheduleCallAt queues fn(arg) at absolute virtual time t (>= Now).
func (e *Engine) ScheduleCallAt(t Time, fn func(arg any), arg any) EventRef {
	if fn == nil {
		panic("sim: nil handler")
	}
	e.seq++
	return e.push(t, e.seq, nil, fn, arg)
}

// SchedulePostCallAt queues fn(arg) at absolute virtual time t in the
// post-tick class: at equal timestamps post-class events fire after
// every ordinary event, ordered among themselves by the caller-supplied
// key (which must be unique per (t, key) pair and below 1<<63).
//
// Unlike the schedule-counter tie-break of the ordinary paths, the
// resulting same-tick order is a pure function of (t, key) — it does
// not depend on the order in which the events were pushed. That is the
// property the conservative parallel coordinator needs: cross-shard
// deliveries injected at a window barrier interleave exactly as they
// would have in a sequential run, provided sequential runs schedule the
// same deliveries through this same post-tick class.
func (e *Engine) SchedulePostCallAt(t Time, key uint64, fn func(arg any), arg any) EventRef {
	if fn == nil {
		panic("sim: nil handler")
	}
	if key >= postClass {
		panic(fmt.Sprintf("sim: post-class key %#x overflows", key))
	}
	return e.push(t, postClass|key, nil, fn, arg)
}

// PostBatch schedules a group of post-class events that share one slab
// slot and one handler invocation target: N members cost one slot claim
// plus N O(1) bucket appends instead of N full schedule passes, and the
// slab never grows with the batch. Each member still fires at exactly
// its own (t, key) position in the global order — batching changes the
// scheduling mechanics, never the schedule — so runs are byte-identical
// to N SchedulePostCallAt calls with the same arguments.
//
// Contract: members must be added in non-decreasing (t, key) order
// (per-batch), every t must be >= Now at Add time, and keys follow the
// SchedulePostCallAt uniqueness rule. Because the keys are unique and
// monotone within the batch, the members' global fire order equals
// their Add order; the shared handler is invoked once per member, with
// the batch's arg, and must consume members in that order. Members are
// not individually cancellable.
type PostBatch struct {
	e    *Engine
	call func(arg any)
	arg  any
	slot int32 // shared slab slot, -1 until the first near-tier member
	gen  uint32
}

// NewPostBatch returns an empty batch firing fn(arg) once per member.
func (e *Engine) NewPostBatch(fn func(arg any), arg any) PostBatch {
	if fn == nil {
		panic("sim: nil handler")
	}
	return PostBatch{e: e, call: fn, arg: arg, slot: -1}
}

// Add schedules one member at absolute time t with post-class key key.
func (b *PostBatch) Add(t Time, key uint64) {
	e := b.e
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	if key >= postClass {
		panic(fmt.Sprintf("sim: post-class key %#x overflows", key))
	}
	ord := postClass | key
	if t >= e.winStart && t < e.winEnd {
		if idx := int((t - e.winStart) >> ladShift); idx >= e.cur {
			slot := b.slot
			if slot < 0 || e.slab[slot].gen != b.gen {
				// First near-tier member (or the previous members all
				// fired already and the slot was recycled): claim the
				// shared slot. Its at/ord fields hold the first member's
				// position, but the drain path reads positions from the
				// ladder entries, so later members never see them stale.
				slot = e.claimSlot()
				ev := &e.slab[slot]
				ev.at = t
				ev.ord = ord
				ev.fn = nil
				ev.call = b.call
				ev.arg = b.arg
				ev.heapPos = posNear
				ev.remaining = 0
				b.slot = slot
				b.gen = ev.gen
			}
			e.slab[slot].remaining++
			e.count++
			ent := ladEntry{at: t, ord: ord, slot: slot, gen: b.gen}
			if idx == e.cur && e.curSorted {
				e.insertSorted(ent)
			} else {
				e.buckets[idx] = append(e.buckets[idx], ent)
			}
			e.occupied[idx>>6] |= 1 << uint(idx&63)
			return
		}
	}
	// Outside the near window (or behind the drain cursor): fall back to
	// a standalone far-tier slot sharing the batch's handler and arg.
	// The far heap backrefs one position per slot, so far members cannot
	// share; global (at, ord) ordering still fires them in Add order.
	e.push(t, ord, nil, b.call, b.arg)
}

// claimSlot takes a slot off the free list (or grows the slab).
func (e *Engine) claimSlot() int32 {
	if e.freeHead >= 0 {
		slot := e.freeHead
		e.freeHead = e.slab[slot].nextFree
		return slot
	}
	e.slab = append(e.slab, event{})
	return int32(len(e.slab) - 1)
}

// push allocates a slab slot and routes the event to its tier.
func (e *Engine) push(t Time, ord uint64, fn Handler, call func(any), arg any) EventRef {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	slot := e.claimSlot()
	ev := &e.slab[slot]
	ev.at = t
	ev.ord = ord
	ev.fn = fn
	ev.call = call
	ev.arg = arg
	e.count++

	if t >= e.winStart && t < e.winEnd {
		if idx := int((t - e.winStart) >> ladShift); idx >= e.cur {
			ev.heapPos = posNear
			ent := ladEntry{at: t, ord: ev.ord, slot: slot, gen: ev.gen}
			if idx == e.cur && e.curSorted {
				e.insertSorted(ent)
			} else {
				e.buckets[idx] = append(e.buckets[idx], ent)
			}
			e.occupied[idx>>6] |= 1 << uint(idx&63)
			return EventRef{engine: e, slot: slot, gen: ev.gen}
		}
		// The drain cursor already passed this bucket (possible only
		// after the clock lagged a window jump): spill to the far heap,
		// whose head is compared against the near tier on every pop.
	}
	ev.heapPos = int32(len(e.heap))
	e.heap = append(e.heap, slot)
	e.siftUp(len(e.heap) - 1)
	return EventRef{engine: e, slot: slot, gen: ev.gen}
}

// insertSorted places ent into the bucket currently being drained,
// keeping [curPos:] sorted by the full (at, ord) key. An ordinary entry
// carries the largest schedule-counter ord handed out so far, so it
// lands after every ordinary entry with the same timestamp (FIFO within
// the tick) yet before any post-class entry at that timestamp; a
// post-class entry lands at its key's position among the other
// post-class entries of the tick. Either way the position is never
// before the drain cursor: ent.at >= now, every drained entry has
// at <= now, and at == now drained entries are ordinary ones whose ord
// is below ent's (new ordinary ords are maximal; post-class ords have
// the top bit set).
func (e *Engine) insertSorted(ent ladEntry) {
	b := e.buckets[e.cur]
	lo, hi := e.curPos, len(b)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if b[mid].at < ent.at || (b[mid].at == ent.at && b[mid].ord < ent.ord) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	b = append(b, ladEntry{})
	copy(b[lo+1:], b[lo:])
	b[lo] = ent
	e.buckets[e.cur] = b
}

// freeSlot releases a slot back to the free list, bumping its
// generation so outstanding refs become inert, and dropping handler and
// argument references so the slab does not retain dead payloads.
func (e *Engine) freeSlot(slot int32) {
	ev := &e.slab[slot]
	ev.gen++
	ev.heapPos = posFree
	ev.remaining = 0
	ev.fn = nil
	ev.call = nil
	ev.arg = nil
	ev.nextFree = e.freeHead
	e.freeHead = slot
}

// nearPeek advances the drain cursor to the next live near-tier entry
// and returns it, sorting each bucket on first touch and skipping
// entries whose slot was cancelled (generation mismatch). The occupancy
// bitmap jumps the cursor straight to the next non-empty bucket, so an
// empty window costs a handful of word scans, not a bucket walk. It
// returns false once the window is exhausted.
func (e *Engine) nearPeek() (*ladEntry, bool) {
	for {
		if !e.curSorted {
			idx := e.nextOccupied(e.cur)
			if idx < 0 {
				e.cur = ladBuckets
				return nil, false
			}
			e.cur = idx
			sortEntries(e.buckets[idx])
			e.curSorted = true
			e.curPos = 0
		}
		for e.curPos < len(e.buckets[e.cur]) {
			ent := &e.buckets[e.cur][e.curPos]
			if e.slab[ent.slot].gen == ent.gen {
				return ent, true
			}
			e.curPos++ // stale: cancelled after sorting
		}
		e.buckets[e.cur] = e.buckets[e.cur][:0]
		e.occupied[e.cur>>6] &^= 1 << uint(e.cur&63)
		e.curSorted = false
		e.cur++
	}
}

// nextOccupied returns the first non-empty bucket index >= from, or -1.
func (e *Engine) nextOccupied(from int) int {
	if from >= ladBuckets {
		return -1
	}
	w := from >> 6
	word := e.occupied[w] >> uint(from&63) << uint(from&63)
	for {
		if word != 0 {
			return w<<6 + bits.TrailingZeros64(word)
		}
		w++
		if w >= len(e.occupied) {
			return -1
		}
		word = e.occupied[w]
	}
}

// refill jumps the window to the earliest far event and migrates every
// far event inside the new window into the buckets. Called only with
// the near tier empty and the far heap non-empty.
func (e *Engine) refill() {
	top := &e.slab[e.heap[0]]
	e.winStart = top.at
	e.winEnd = top.at.Add(ladWindow)
	e.cur = 0
	e.curPos = 0
	e.curSorted = false
	for len(e.heap) > 0 {
		slot := e.heap[0]
		ev := &e.slab[slot]
		if ev.at >= e.winEnd {
			break
		}
		e.heapRemove(0)
		ev.heapPos = posNear
		idx := int((ev.at - e.winStart) >> ladShift)
		e.buckets[idx] = append(e.buckets[idx],
			ladEntry{at: ev.at, ord: ev.ord, slot: slot, gen: ev.gen})
		e.occupied[idx>>6] |= 1 << uint(idx&63)
	}
}

// next returns the slot of the earliest pending event, comparing the
// heads of both tiers by (at, ord), without consuming it. fromNear
// reports which tier holds it. at is the event's timestamp taken from
// the queue entry, not the slab: a PostBatch slot is shared by several
// entries and its slab at reflects only the first member.
func (e *Engine) next() (slot int32, at Time, fromNear, ok bool) {
	ne, okN := e.nearPeek()
	if !okN && len(e.heap) > 0 {
		e.refill()
		ne, okN = e.nearPeek()
	}
	if !okN {
		if len(e.heap) == 0 {
			return 0, 0, false, false
		}
		s := e.heap[0]
		return s, e.slab[s].at, false, true
	}
	if len(e.heap) > 0 {
		s := e.heap[0]
		f := &e.slab[s]
		if f.at < ne.at || (f.at == ne.at && f.ord < ne.ord) {
			return s, f.at, false, true
		}
	}
	return ne.slot, ne.at, true, true
}

// popNext consumes the event returned by next.
func (e *Engine) popNext(slot int32, fromNear bool) {
	if fromNear {
		e.curPos++
		return
	}
	e.heapRemove(int(e.slab[slot].heapPos))
}

// fire executes the event in slot: advance the clock, release the slot
// (so a ref to the firing event reads "no longer pending" and the slot
// can be recycled by whatever the handler schedules), then invoke the
// handler.
//
// Unlike Cancel's freeSlot, the fire path leaves the stale handler and
// argument words in the slot: the next push overwrites them, and
// skipping the three interface-field nil stores per event removes the
// write barriers from the hottest loop of the simulator. The payload a
// slot can transitively retain between fire and reuse is one handler's
// worth — bounded and short-lived; Cancel and Reset still clear, so
// cancelled events and pooled engines drop their payloads eagerly.
func (e *Engine) fire(slot int32, at Time) {
	ev := &e.slab[slot]
	e.now = at
	e.Executed++
	e.count--
	fn, call, arg := ev.fn, ev.call, ev.arg
	if ev.remaining > 1 {
		// A PostBatch slot with members still queued: keep it live.
		ev.remaining--
	} else {
		ev.remaining = 0
		ev.gen++
		ev.heapPos = posFree
		ev.nextFree = e.freeHead
		e.freeHead = slot
	}
	if fn != nil {
		fn(e)
	} else {
		call(arg)
	}
}

// ---- far tier: typed binary heap over slab slots, ordered by (at, ord) ----

func (e *Engine) less(a, b int32) bool {
	ea, eb := &e.slab[a], &e.slab[b]
	if ea.at != eb.at {
		return ea.at < eb.at
	}
	return ea.ord < eb.ord
}

func (e *Engine) swap(i, j int) {
	h := e.heap
	h[i], h[j] = h[j], h[i]
	e.slab[h[i]].heapPos = int32(i)
	e.slab[h[j]].heapPos = int32(j)
}

func (e *Engine) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(e.heap[i], e.heap[parent]) {
			return
		}
		e.swap(i, parent)
		i = parent
	}
}

func (e *Engine) siftDown(i int) {
	n := len(e.heap)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		least := left
		if right := left + 1; right < n && e.less(e.heap[right], e.heap[left]) {
			least = right
		}
		if !e.less(e.heap[least], e.heap[i]) {
			return
		}
		e.swap(i, least)
		i = least
	}
}

// heapRemove deletes the entry at heap position i.
func (e *Engine) heapRemove(i int) {
	last := len(e.heap) - 1
	if i != last {
		e.swap(i, last)
	}
	e.slab[e.heap[last]].heapPos = posFree
	e.heap = e.heap[:last]
	if i < last {
		e.siftDown(i)
		e.siftUp(i)
	}
}

// sortEntries orders a bucket by (at, ord). The keys are unique —
// ordinary ords come from the schedule counter, post-class ords are
// unique by the SchedulePostCallAt contract, and the two classes are
// separated by the top bit — so the unstable stdlib pdqsort is
// deterministic and stability is irrelevant; it allocates nothing.
func sortEntries(b []ladEntry) {
	slices.SortFunc(b, func(x, y ladEntry) int {
		if x.at != y.at {
			if x.at < y.at {
				return -1
			}
			return 1
		}
		if x.ord < y.ord {
			return -1
		}
		return 1
	})
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Step fires the next pending event, if any, and reports whether one
// fired.
func (e *Engine) Step() bool {
	slot, at, fromNear, ok := e.next()
	if !ok {
		return false
	}
	e.popNext(slot, fromNear)
	e.fire(slot, at)
	return true
}

// HasPendingEvents reports whether any event is still scheduled. O(1).
func (e *Engine) HasPendingEvents() bool { return e.count > 0 }

// PeekNextEventTime returns the timestamp of the earliest pending event
// without consuming it, and false if the queue is empty. The peek may
// advance the internal drain cursor (sorting a bucket, refilling the
// window from the far heap) but never fires or reorders anything — the
// conservative parallel coordinator calls it between windows to decide
// how far each shard may safely advance.
func (e *Engine) PeekNextEventTime() (Time, bool) {
	_, at, _, ok := e.next()
	if !ok {
		return 0, false
	}
	return at, true
}

// ProcessNextEvent fires the earliest pending event and reports whether
// one fired. It is Step under the name the coordinator composes with
// HasPendingEvents and PeekNextEventTime.
func (e *Engine) ProcessNextEvent() bool { return e.Step() }

// RunUntil executes events with timestamps strictly below limit, in the
// same batched timestamp order as Run. Unlike Run it treats the bound
// as exclusive and never advances the clock to it: after RunUntil
// returns, Now is the timestamp of the last fired event, and events at
// or beyond limit remain queued untouched. This is the window-advance
// primitive of the conservative parallel coordinator — a shard drains
// [Now, limit) and anything a barrier later injects at t >= limit is
// still in the future.
func (e *Engine) RunUntil(limit Time) error {
	e.stopped = false
	for !e.stopped {
		if e.interrupted.Load() {
			return ErrInterrupted
		}
		if e.MaxEvents > 0 && e.Executed >= e.MaxEvents {
			return fmt.Errorf("sim: exceeded MaxEvents=%d at t=%v", e.MaxEvents, e.now)
		}
		slot, at, fromNear, ok := e.next()
		if !ok || at >= limit {
			break
		}
		e.popNext(slot, fromNear)
		e.fire(slot, at)
		if !fromNear {
			continue
		}
		// Batched same-tick dispatch within the current bucket; the batch
		// stays at the fired timestamp, which is strictly below limit.
		for !e.stopped && (e.MaxEvents == 0 || e.Executed < e.MaxEvents) && !e.interrupted.Load() {
			b := e.buckets[e.cur]
			if e.curPos >= len(b) {
				break
			}
			ent := &b[e.curPos]
			if ent.at != e.now {
				break
			}
			s := ent.slot
			if e.slab[s].gen != ent.gen {
				e.curPos++
				continue
			}
			e.curPos++
			e.fire(s, e.now)
		}
	}
	return nil
}

// Run executes events in timestamp order until the queue is empty, Stop
// is called, or the horizon (if > 0) is passed. Events scheduled beyond
// the horizon remain queued. It returns the virtual time at which the
// simulation stopped.
//
// Same-timestamp events are drained in one batched dispatch loop: after
// an event from the near tier fires, every following live entry of its
// bucket with the same timestamp fires back-to-back — in (at, ord)
// order, as the sorted bucket and the ord-ordered insertions guarantee
// — without re-running the two-tier head comparison. No far event can
// share that timestamp: far events are either beyond the window or
// strictly earlier than every bucketed one, so the batch never
// reorders across tiers.
func (e *Engine) Run(horizon Time) (Time, error) {
	e.stopped = false
	for !e.stopped {
		if e.interrupted.Load() {
			return e.now, ErrInterrupted
		}
		if e.MaxEvents > 0 && e.Executed >= e.MaxEvents {
			return e.now, fmt.Errorf("sim: exceeded MaxEvents=%d at t=%v", e.MaxEvents, e.now)
		}
		slot, at, fromNear, ok := e.next()
		if !ok {
			break
		}
		if horizon > 0 && at > horizon {
			e.now = horizon
			break
		}
		e.popNext(slot, fromNear)
		e.fire(slot, at)
		if !fromNear {
			continue
		}
		// Batched same-tick dispatch within the current bucket.
		for !e.stopped && (e.MaxEvents == 0 || e.Executed < e.MaxEvents) && !e.interrupted.Load() {
			b := e.buckets[e.cur]
			if e.curPos >= len(b) {
				break
			}
			ent := &b[e.curPos]
			if ent.at != e.now {
				break
			}
			s := ent.slot
			if e.slab[s].gen != ent.gen {
				e.curPos++
				continue
			}
			e.curPos++
			e.fire(s, e.now)
		}
	}
	return e.now, nil
}

// RunAll runs until the event queue drains, with no horizon.
func (e *Engine) RunAll() (Time, error) { return e.Run(0) }

// Timer is a resettable one-shot virtual timer built on the engine, used
// for the protocol's periodic actions (unforced CLC timer, GC timer).
// The zero value is unarmed.
type Timer struct {
	engine *Engine
	ref    EventRef
	fn     Handler
}

// NewTimer returns an unarmed timer firing fn when it expires.
func NewTimer(e *Engine, fn Handler) *Timer { return &Timer{engine: e, fn: fn} }

// Reset (re)arms the timer to fire after d. A duration >= Forever leaves
// the timer unarmed, matching the paper's "timer set to infinite".
func (t *Timer) Reset(d Duration) {
	t.ref.Cancel()
	if d >= Forever {
		return
	}
	t.ref = t.engine.Schedule(d, t.fn)
}

// Stop disarms the timer.
func (t *Timer) Stop() { t.ref.Cancel() }

// Armed reports whether the timer is pending.
func (t *Timer) Armed() bool { return t.ref.Pending() }
