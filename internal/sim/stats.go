package sim

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	n uint64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.n++ }

// Add adds d to the counter.
func (c *Counter) Add(d uint64) { c.n += d }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Summary accumulates a running mean/variance/min/max of observations
// using Welford's algorithm, like the statistics classes of C++SIM.
type Summary struct {
	n        uint64
	mean, m2 float64
	min, max float64
}

// Observe records one sample.
func (s *Summary) Observe(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// ObserveDuration records a virtual duration in seconds.
func (s *Summary) ObserveDuration(d Duration) { s.Observe(d.Seconds()) }

// N returns the number of samples.
func (s *Summary) N() uint64 { return s.n }

// Mean returns the sample mean (0 with no samples).
func (s *Summary) Mean() float64 { return s.mean }

// Min returns the smallest sample (0 with no samples).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest sample (0 with no samples).
func (s *Summary) Max() float64 { return s.max }

// Variance returns the unbiased sample variance.
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Stddev returns the sample standard deviation.
func (s *Summary) Stddev() float64 { return math.Sqrt(s.Variance()) }

// String formats the summary for trace output.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g min=%.4g max=%.4g sd=%.4g",
		s.n, s.mean, s.min, s.max, s.Stddev())
}

// Merge folds another summary into s (Chan et al.'s pairwise update).
// The combined mean and variance are mathematically exact but not
// bitwise identical to observing the samples in one sequence; harnesses
// that need byte-identical output replay the observations in order
// instead and use Merge only as the fallback for unjournaled summaries.
func (s *Summary) Merge(o *Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *o
		return
	}
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	n := s.n + o.n
	delta := o.mean - s.mean
	s.m2 += o.m2 + delta*delta*float64(s.n)*float64(o.n)/float64(n)
	s.mean += delta * float64(o.n) / float64(n)
	s.n = n
}

// histSubBuckets is the number of log-scaled sub-buckets per power of
// two. 32 bounds a bucket's width at ~2.2% of its value, so a
// bucket-mode quantile is within ~1.1% of the true sample.
const histSubBuckets = 32

// histExactMax is the sample count up to which the exact values are
// retained: at or below it quantiles are exact (the regime of the
// paper's tables), above it the fixed bucket grid answers instead. The
// mode depends only on the total count, so a merged histogram answers
// identically to one that observed the same multiset directly.
const histExactMax = 256

// Histogram records a value distribution in fixed memory: every sample
// lands in a log-scaled bucket (histSubBuckets per octave, keyed by
// Frexp exponent and mantissa slice), and the exact values are kept
// only while the count stays within histExactMax. Memory is O(occupied
// buckets) — bounded by the value range, not the sample count — which
// is what lets open-loop runs observe millions of arrivals. Reads
// never mutate the histogram, so concurrent readers of a finished
// Stats registry are safe.
type Histogram struct {
	n        uint64
	sum      float64
	min, max float64
	exact    []float64 // kept only while n <= histExactMax
	zeros    uint64
	pos, neg map[int32]uint64 // bucketIdx(|x|) -> count, by sign
}

// bucketIdx maps a positive finite value to its bucket: the Frexp
// exponent selects the octave, the mantissa's position in [0.5, 1)
// the sub-bucket.
func bucketIdx(x float64) int32 {
	frac, exp := math.Frexp(x)
	sub := int32((frac - 0.5) * (2 * histSubBuckets))
	if sub < 0 {
		sub = 0
	}
	if sub >= histSubBuckets {
		sub = histSubBuckets - 1
	}
	return int32(exp)*histSubBuckets + sub
}

// bucketValue returns the midpoint of a bucket (the reported
// representative of its samples).
func bucketValue(idx int32) float64 {
	exp := int(math.Floor(float64(idx) / histSubBuckets))
	sub := int(idx) - exp*histSubBuckets
	lo := math.Ldexp(0.5+float64(sub)/(2*histSubBuckets), exp)
	hi := math.Ldexp(0.5+float64(sub+1)/(2*histSubBuckets), exp)
	return (lo + hi) / 2
}

// Observe records one sample. Non-finite samples are clamped into the
// extreme buckets so a stray Inf cannot poison the index arithmetic.
func (h *Histogram) Observe(x float64) {
	if math.IsNaN(x) {
		return
	}
	if math.IsInf(x, 1) {
		x = math.MaxFloat64
	} else if math.IsInf(x, -1) {
		x = -math.MaxFloat64
	}
	if h.n == 0 {
		h.min, h.max = x, x
	} else {
		if x < h.min {
			h.min = x
		}
		if x > h.max {
			h.max = x
		}
	}
	h.n++
	h.sum += x
	if h.n <= histExactMax {
		h.exact = append(h.exact, x)
	} else {
		h.exact = nil
	}
	switch {
	case x == 0:
		h.zeros++
	case x > 0:
		if h.pos == nil {
			h.pos = make(map[int32]uint64)
		}
		h.pos[bucketIdx(x)]++
	default:
		if h.neg == nil {
			h.neg = make(map[int32]uint64)
		}
		h.neg[bucketIdx(-x)]++
	}
}

// ObserveDuration records a virtual duration in seconds.
func (h *Histogram) ObserveDuration(d Duration) { h.Observe(d.Seconds()) }

// N returns the number of samples.
func (h *Histogram) N() int { return int(h.n) }

// Min returns the smallest sample (0 with no samples).
func (h *Histogram) Min() float64 { return h.min }

// Max returns the largest sample (0 with no samples).
func (h *Histogram) Max() float64 { return h.max }

// clampRange keeps a bucket representative inside the observed range.
func (h *Histogram) clampRange(v float64) float64 {
	if v < h.min {
		return h.min
	}
	if v > h.max {
		return h.max
	}
	return v
}

// Quantile returns the q-quantile (0 <= q <= 1) by nearest-rank, or 0
// with no samples: exact while the count is within histExactMax,
// bucket-resolved (within ~1.1% relative error) beyond it. The read
// sorts a copy — it never mutates the histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	if h.exact != nil {
		s := append([]float64(nil), h.exact...)
		sort.Float64s(s)
		return s[int(q*float64(len(s)-1))]
	}
	rank := uint64(q * float64(h.n-1))
	// Walk the buckets in ascending value order: negatives descend by
	// index (larger magnitude first), then zeros, then positives ascend.
	var cum uint64
	keys := make([]int32, 0, len(h.neg))
	for k := range h.neg {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] > keys[j] })
	for _, k := range keys {
		cum += h.neg[k]
		if cum > rank {
			return h.clampRange(-bucketValue(k))
		}
	}
	cum += h.zeros
	if cum > rank {
		return h.clampRange(0)
	}
	keys = keys[:0]
	for k := range h.pos {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		cum += h.pos[k]
		if cum > rank {
			return h.clampRange(bucketValue(k))
		}
	}
	return h.max
}

// Mean returns the sample mean.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Merge folds another histogram into h. Bucket counts add exactly;
// the exact value lists survive only while the combined count stays
// within histExactMax, so the quantile mode — and therefore the
// answer — depends only on the merged totals.
func (h *Histogram) Merge(o *Histogram) {
	if o.n == 0 {
		return
	}
	if h.n == 0 {
		h.min, h.max = o.min, o.max
	} else {
		if o.min < h.min {
			h.min = o.min
		}
		if o.max > h.max {
			h.max = o.max
		}
	}
	if h.n+o.n <= histExactMax && (h.n == 0 || h.exact != nil) && o.exact != nil {
		h.exact = append(h.exact, o.exact...)
	} else {
		h.exact = nil
	}
	h.n += o.n
	h.sum += o.sum
	h.zeros += o.zeros
	if len(o.pos) > 0 {
		if h.pos == nil {
			h.pos = make(map[int32]uint64, len(o.pos))
		}
		for k, c := range o.pos {
			h.pos[k] += c
		}
	}
	if len(o.neg) > 0 {
		if h.neg == nil {
			h.neg = make(map[int32]uint64, len(o.neg))
		}
		for k, c := range o.neg {
			h.neg[k] += c
		}
	}
}

// Series records (time, value) pairs, e.g. the number of stored CLCs
// over virtual time; used to reproduce the garbage-collection tables.
type Series struct {
	Times  []Time
	Values []float64
}

// Record appends one point.
func (s *Series) Record(t Time, v float64) {
	s.Times = append(s.Times, t)
	s.Values = append(s.Values, v)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.Times) }

// At returns the last value recorded at or before t (0 if none).
func (s *Series) At(t Time) float64 {
	i := sort.Search(len(s.Times), func(i int) bool { return s.Times[i] > t })
	if i == 0 {
		return 0
	}
	return s.Values[i-1]
}

// Stats is a named registry of counters, summaries and series shared by
// the components of one simulation run.
type Stats struct {
	counters   map[string]*Counter
	summaries  map[string]*Summary
	series     map[string]*Series
	histograms map[string]*Histogram
}

// NewStats returns an empty registry.
func NewStats() *Stats { return NewStatsHint(0) }

// NewStatsHint returns an empty registry whose counter map is presized
// for roughly hint entries. Harnesses that can bound their metric
// cardinality up front use it to avoid rehashing during a run; the
// hint should track the counters actually registered (per-pair network
// counters appear lazily, on first traffic), not the worst case.
func NewStatsHint(hint int) *Stats {
	return &Stats{
		counters:   make(map[string]*Counter, hint),
		summaries:  make(map[string]*Summary),
		series:     make(map[string]*Series),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns (creating if needed) the counter with the given name.
func (s *Stats) Counter(name string) *Counter {
	c, ok := s.counters[name]
	if !ok {
		c = &Counter{}
		s.counters[name] = c
	}
	return c
}

// Summary returns (creating if needed) the summary with the given name.
func (s *Stats) Summary(name string) *Summary {
	m, ok := s.summaries[name]
	if !ok {
		m = &Summary{}
		s.summaries[name] = m
	}
	return m
}

// Series returns (creating if needed) the series with the given name.
func (s *Stats) Series(name string) *Series {
	m, ok := s.series[name]
	if !ok {
		m = &Series{}
		s.series[name] = m
	}
	return m
}

// Histogram returns (creating if needed) the histogram with the given
// name.
func (s *Stats) Histogram(name string) *Histogram {
	m, ok := s.histograms[name]
	if !ok {
		m = &Histogram{}
		s.histograms[name] = m
	}
	return m
}

// CounterValue returns the value of a counter, 0 if absent.
func (s *Stats) CounterValue(name string) uint64 {
	if c, ok := s.counters[name]; ok {
		return c.Value()
	}
	return 0
}

// ForEachCounter visits every registered counter in name order.
func (s *Stats) ForEachCounter(fn func(name string, value uint64)) {
	names := make([]string, 0, len(s.counters))
	for n := range s.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fn(n, s.counters[n].Value())
	}
}

// ForEachSummary visits every registered summary in name order.
func (s *Stats) ForEachSummary(fn func(name string, sum *Summary)) {
	names := make([]string, 0, len(s.summaries))
	for n := range s.summaries {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fn(n, s.summaries[n])
	}
}

// ForEachSeries visits every registered series in name order.
func (s *Stats) ForEachSeries(fn func(name string, ser *Series)) {
	names := make([]string, 0, len(s.series))
	for n := range s.series {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fn(n, s.series[n])
	}
}

// ForEachHistogram visits every registered histogram in name order.
func (s *Stats) ForEachHistogram(fn func(name string, h *Histogram)) {
	names := make([]string, 0, len(s.histograms))
	for n := range s.histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fn(n, s.histograms[n])
	}
}

// Names returns the sorted names of all registered metrics.
func (s *Stats) Names() []string {
	var names []string
	for n := range s.counters {
		names = append(names, n)
	}
	for n := range s.summaries {
		names = append(names, n)
	}
	for n := range s.series {
		names = append(names, n)
	}
	for n := range s.histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Dump renders every metric, one per line, sorted by name — the
// "lowest simulator output is statistical data" mode of the paper.
func (s *Stats) Dump() string {
	var b strings.Builder
	var names []string
	for n := range s.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "counter %-46s %d\n", n, s.counters[n].Value())
	}
	names = names[:0]
	for n := range s.summaries {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "summary %-46s %s\n", n, s.summaries[n])
	}
	names = names[:0]
	for n := range s.series {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "series  %-46s %d points\n", n, s.series[n].Len())
	}
	names = names[:0]
	for n := range s.histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.histograms[n]
		fmt.Fprintf(&b, "histo   %-46s n=%d p50=%.4g p99=%.4g p999=%.4g\n",
			n, h.N(), h.Quantile(0.50), h.Quantile(0.99), h.Quantile(0.999))
	}
	return b.String()
}
