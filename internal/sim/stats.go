package sim

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	n uint64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.n++ }

// Add adds d to the counter.
func (c *Counter) Add(d uint64) { c.n += d }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Summary accumulates a running mean/variance/min/max of observations
// using Welford's algorithm, like the statistics classes of C++SIM.
type Summary struct {
	n        uint64
	mean, m2 float64
	min, max float64
}

// Observe records one sample.
func (s *Summary) Observe(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// ObserveDuration records a virtual duration in seconds.
func (s *Summary) ObserveDuration(d Duration) { s.Observe(d.Seconds()) }

// N returns the number of samples.
func (s *Summary) N() uint64 { return s.n }

// Mean returns the sample mean (0 with no samples).
func (s *Summary) Mean() float64 { return s.mean }

// Min returns the smallest sample (0 with no samples).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest sample (0 with no samples).
func (s *Summary) Max() float64 { return s.max }

// Variance returns the unbiased sample variance.
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Stddev returns the sample standard deviation.
func (s *Summary) Stddev() float64 { return math.Sqrt(s.Variance()) }

// String formats the summary for trace output.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g min=%.4g max=%.4g sd=%.4g",
		s.n, s.mean, s.min, s.max, s.Stddev())
}

// Merge folds another summary into s (Chan et al.'s pairwise update).
// The combined mean and variance are mathematically exact but not
// bitwise identical to observing the samples in one sequence; harnesses
// that need byte-identical output replay the observations in order
// instead and use Merge only as the fallback for unjournaled summaries.
func (s *Summary) Merge(o *Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *o
		return
	}
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	n := s.n + o.n
	delta := o.mean - s.mean
	s.m2 += o.m2 + delta*delta*float64(s.n)*float64(o.n)/float64(n)
	s.mean += delta * float64(o.n) / float64(n)
	s.n = n
}

// Histogram collects samples into exact values until a threshold, then
// reports quantiles; adequate for the modest sample counts of the
// paper's experiments.
type Histogram struct {
	samples []float64
	sorted  bool
}

// Observe records one sample.
func (h *Histogram) Observe(x float64) {
	h.samples = append(h.samples, x)
	h.sorted = false
}

// N returns the number of samples.
func (h *Histogram) N() int { return len(h.samples) }

// Quantile returns the q-quantile (0 <= q <= 1) by nearest-rank, or 0
// with no samples.
func (h *Histogram) Quantile(q float64) float64 {
	if len(h.samples) == 0 {
		return 0
	}
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
	if q <= 0 {
		return h.samples[0]
	}
	if q >= 1 {
		return h.samples[len(h.samples)-1]
	}
	idx := int(q * float64(len(h.samples)-1))
	return h.samples[idx]
}

// Mean returns the sample mean.
func (h *Histogram) Mean() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	var sum float64
	for _, x := range h.samples {
		sum += x
	}
	return sum / float64(len(h.samples))
}

// Series records (time, value) pairs, e.g. the number of stored CLCs
// over virtual time; used to reproduce the garbage-collection tables.
type Series struct {
	Times  []Time
	Values []float64
}

// Record appends one point.
func (s *Series) Record(t Time, v float64) {
	s.Times = append(s.Times, t)
	s.Values = append(s.Values, v)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.Times) }

// At returns the last value recorded at or before t (0 if none).
func (s *Series) At(t Time) float64 {
	i := sort.Search(len(s.Times), func(i int) bool { return s.Times[i] > t })
	if i == 0 {
		return 0
	}
	return s.Values[i-1]
}

// Stats is a named registry of counters, summaries and series shared by
// the components of one simulation run.
type Stats struct {
	counters  map[string]*Counter
	summaries map[string]*Summary
	series    map[string]*Series
}

// NewStats returns an empty registry.
func NewStats() *Stats { return NewStatsHint(0) }

// NewStatsHint returns an empty registry whose counter map is presized
// for roughly hint entries. Harnesses that can bound their metric
// cardinality up front use it to avoid rehashing during a run; the
// hint should track the counters actually registered (per-pair network
// counters appear lazily, on first traffic), not the worst case.
func NewStatsHint(hint int) *Stats {
	return &Stats{
		counters:  make(map[string]*Counter, hint),
		summaries: make(map[string]*Summary),
		series:    make(map[string]*Series),
	}
}

// Counter returns (creating if needed) the counter with the given name.
func (s *Stats) Counter(name string) *Counter {
	c, ok := s.counters[name]
	if !ok {
		c = &Counter{}
		s.counters[name] = c
	}
	return c
}

// Summary returns (creating if needed) the summary with the given name.
func (s *Stats) Summary(name string) *Summary {
	m, ok := s.summaries[name]
	if !ok {
		m = &Summary{}
		s.summaries[name] = m
	}
	return m
}

// Series returns (creating if needed) the series with the given name.
func (s *Stats) Series(name string) *Series {
	m, ok := s.series[name]
	if !ok {
		m = &Series{}
		s.series[name] = m
	}
	return m
}

// CounterValue returns the value of a counter, 0 if absent.
func (s *Stats) CounterValue(name string) uint64 {
	if c, ok := s.counters[name]; ok {
		return c.Value()
	}
	return 0
}

// ForEachCounter visits every registered counter in name order.
func (s *Stats) ForEachCounter(fn func(name string, value uint64)) {
	names := make([]string, 0, len(s.counters))
	for n := range s.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fn(n, s.counters[n].Value())
	}
}

// ForEachSummary visits every registered summary in name order.
func (s *Stats) ForEachSummary(fn func(name string, sum *Summary)) {
	names := make([]string, 0, len(s.summaries))
	for n := range s.summaries {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fn(n, s.summaries[n])
	}
}

// ForEachSeries visits every registered series in name order.
func (s *Stats) ForEachSeries(fn func(name string, ser *Series)) {
	names := make([]string, 0, len(s.series))
	for n := range s.series {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fn(n, s.series[n])
	}
}

// Names returns the sorted names of all registered metrics.
func (s *Stats) Names() []string {
	var names []string
	for n := range s.counters {
		names = append(names, n)
	}
	for n := range s.summaries {
		names = append(names, n)
	}
	for n := range s.series {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Dump renders every metric, one per line, sorted by name — the
// "lowest simulator output is statistical data" mode of the paper.
func (s *Stats) Dump() string {
	var b strings.Builder
	var names []string
	for n := range s.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "counter %-46s %d\n", n, s.counters[n].Value())
	}
	names = names[:0]
	for n := range s.summaries {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "summary %-46s %s\n", n, s.summaries[n])
	}
	names = names[:0]
	for n := range s.series {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "series  %-46s %d points\n", n, s.series[n].Len())
	}
	return b.String()
}
