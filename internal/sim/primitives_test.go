package sim

import "testing"

// Tests for the composable run primitives behind the conservative
// parallel coordinator (HasPendingEvents / PeekNextEventTime /
// ProcessNextEvent / RunUntil), the post-tick scheduling class, and the
// Reset-after-partial-drain contract the coordinator's window loop
// relies on.

// TestRunPrimitivesCompose drives a schedule with the three primitives
// the coordinator uses instead of Run and checks they agree with the
// queue state at every step.
func TestRunPrimitivesCompose(t *testing.T) {
	e := NewEngine()
	if e.HasPendingEvents() {
		t.Fatal("empty engine reports pending events")
	}
	if _, ok := e.PeekNextEventTime(); ok {
		t.Fatal("empty engine peeked an event")
	}
	var fired []int
	for i := 1; i <= 4; i++ {
		i := i
		e.Schedule(Duration(i)*Second, func(*Engine) { fired = append(fired, i) })
	}
	want := 1
	for e.HasPendingEvents() {
		at, ok := e.PeekNextEventTime()
		if !ok {
			t.Fatal("HasPendingEvents true but peek failed")
		}
		if at != Time(Duration(want)*Second) {
			t.Fatalf("peek %v, want %v", at, Duration(want)*Second)
		}
		if !e.ProcessNextEvent() {
			t.Fatal("ProcessNextEvent fired nothing with a pending event")
		}
		if e.Now() != at {
			t.Fatalf("clock %v after firing event peeked at %v", e.Now(), at)
		}
		want++
	}
	if len(fired) != 4 {
		t.Fatalf("fired %v", fired)
	}
	if e.ProcessNextEvent() {
		t.Fatal("ProcessNextEvent fired on a drained engine")
	}
}

// TestRunUntilExclusiveBound pins RunUntil's window semantics: events
// strictly below the limit fire, events at the limit stay queued, and
// the clock is left at the last fired event — never advanced to the
// bound the way Run advances to its horizon.
func TestRunUntilExclusiveBound(t *testing.T) {
	e := NewEngine()
	var fired []Duration
	for _, d := range []Duration{Second, 2 * Second, 3 * Second} {
		d := d
		e.Schedule(d, func(*Engine) { fired = append(fired, d) })
	}
	if err := e.RunUntil(Time(2 * Second)); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 || fired[0] != Second {
		t.Fatalf("RunUntil(2s) fired %v", fired)
	}
	if e.Now() != Time(Second) {
		t.Fatalf("clock advanced to %v, want the last fired event at 1s", e.Now())
	}
	if e.Len() != 2 {
		t.Fatalf("%d events left, want 2", e.Len())
	}
	// Injecting at exactly the old limit and re-running the next window
	// must fire the injected event in timestamp order with the rest.
	e.Schedule(Second, func(*Engine) { fired = append(fired, 2*Second) }) // at t=2s
	if err := e.RunUntil(Time(4 * Second)); err != nil {
		t.Fatal(err)
	}
	wantN := 4
	if len(fired) != wantN {
		t.Fatalf("after second window fired %v", fired)
	}
	for i := 1; i < len(fired); i++ {
		if fired[i] < fired[i-1] {
			t.Fatalf("out of order: %v", fired)
		}
	}
}

// TestPostClassFiresAfterOrdinaryByKey pins the post-tick class
// contract: at one timestamp, post-class events fire after every
// ordinary event — even ordinary events scheduled later, including from
// inside a post-class handler — and among themselves in key order
// regardless of scheduling order.
func TestPostClassFiresAfterOrdinaryByKey(t *testing.T) {
	e := NewEngine()
	tick := Time(Second)
	var got []string
	rec := func(arg any) { got = append(got, arg.(string)) }
	// Post-class scheduled first, with keys out of push order.
	e.SchedulePostCallAt(tick, 30, rec, "post30")
	e.SchedulePostCallAt(tick, 10, func(arg any) {
		got = append(got, arg.(string))
		// An ordinary zero-delay follow-up scheduled from a post handler
		// fires before the remaining post-class events of the tick.
		e.ScheduleCallAt(tick, rec, "nested-ordinary")
	}, "post10")
	e.SchedulePostCallAt(tick, 20, rec, "post20")
	e.ScheduleCallAt(tick, rec, "ordinary1")
	e.ScheduleCallAt(tick, rec, "ordinary2")
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := []string{"ordinary1", "ordinary2", "post10", "nested-ordinary", "post20", "post30"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// TestPostClassOrderIndependentOfTier schedules the same same-tick mix
// twice — once so the tick lands in the near window, once so it spills
// through the far heap via a window jump — and requires the identical
// firing order. The parallel coordinator depends on this: a cross-shard
// delivery injected at a barrier may take either route depending on how
// far the destination shard's window has advanced.
func TestPostClassOrderIndependentOfTier(t *testing.T) {
	run := func(lead Duration) []string {
		e := NewEngine()
		tick := Time(lead)
		var got []string
		rec := func(arg any) { got = append(got, arg.(string)) }
		e.SchedulePostCallAt(tick, 2, rec, "p2")
		e.ScheduleCallAt(tick, rec, "o1")
		e.SchedulePostCallAt(tick, 1, rec, "p1")
		e.ScheduleCallAt(tick, rec, "o2")
		if _, err := e.RunAll(); err != nil {
			t.Fatal(err)
		}
		return got
	}
	near := run(Millisecond)       // inside the initial near window
	far := run(ladWindow + Second) // beyond it: far heap + refill path
	want := []string{"o1", "o2", "p1", "p2"}
	for _, got := range [][]string{near, far} {
		if len(got) != len(want) {
			t.Fatalf("got %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("got %v, want %v", got, want)
			}
		}
	}
}

// TestResetAfterPartialDrain is the regression test for the
// coordinator's stop-mid-window pattern: RunUntil leaves the drain
// cursor mid-bucket with sorted entries behind it and occupancy bits
// set; Reset must clear every near bucket, the occupancy bitmap and the
// far heap so a reused engine replays a fresh schedule exactly, with no
// stale entry firing and no occupancy bit left for a drained bucket.
func TestResetAfterPartialDrain(t *testing.T) {
	e := NewEngine()
	boom := func(any) { t.Fatal("stale pre-Reset event fired") }
	// Populate several near buckets (same-tick collisions included), the
	// bucket the cursor will stop inside, and the far heap.
	e.ScheduleCall(100*Microsecond, func(any) {}, nil)
	e.ScheduleCall(200*Microsecond, func(any) {}, nil)
	e.ScheduleCall(200*Microsecond, func(any) {}, nil)
	e.ScheduleCall(600*Microsecond, boom, nil) // same bucket as 200µs, beyond the stop
	e.ScheduleCall(5*Millisecond, boom, nil)   // later bucket
	e.ScheduleCall(2*ladWindow, boom, nil)     // far heap
	if err := e.RunUntil(Time(300 * Microsecond)); err != nil {
		t.Fatal(err)
	}
	if e.Executed != 3 {
		t.Fatalf("partial drain fired %d events, want 3", e.Executed)
	}

	e.Reset()
	if e.Now() != 0 || e.Len() != 0 || e.Executed != 0 {
		t.Fatalf("Reset left now=%v len=%d executed=%d", e.Now(), e.Len(), e.Executed)
	}
	for i, w := range e.occupied {
		if w != 0 {
			t.Fatalf("occupancy word %d = %#x after Reset", i, w)
		}
	}
	for i := range e.buckets {
		if len(e.buckets[i]) != 0 {
			t.Fatalf("bucket %d holds %d entries after Reset", i, len(e.buckets[i]))
		}
	}
	if len(e.heap) != 0 {
		t.Fatalf("far heap holds %d entries after Reset", len(e.heap))
	}

	// Replay a fresh schedule over the same buckets the partial drain
	// touched; order and count must match a fresh engine exactly.
	var got []int
	for i, d := range []Duration{600 * Microsecond, 200 * Microsecond, 2 * ladWindow, 100 * Microsecond} {
		i := i
		e.ScheduleCall(d, func(any) { got = append(got, i) }, nil)
	}
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := []int{3, 1, 0, 2}
	if len(got) != len(want) {
		t.Fatalf("post-Reset replay fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("post-Reset replay fired %v, want %v", got, want)
		}
	}
}
