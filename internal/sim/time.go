// Package sim implements a deterministic discrete event simulation engine.
//
// It replaces the C++SIM library used by the paper's original simulator:
// it provides a virtual clock, an event queue, deterministic pseudo-random
// number streams and statistics collection. All simulations built on this
// package are fully deterministic for a given seed, which makes every
// experiment in this repository exactly reproducible.
package sim

import (
	"fmt"
	"time"
)

// Time is a point in virtual time, counted in nanoseconds from the start
// of the simulation. Virtual time has no relation to wall-clock time.
type Time int64

// Duration is a span of virtual time in nanoseconds. It mirrors
// time.Duration so the usual constants (sim.Millisecond, ...) read the
// same way as in the standard library.
type Duration int64

// Common durations, expressed in virtual nanoseconds.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
	Hour                 = 60 * Minute
)

// Forever is a duration larger than any simulation horizon. Timers set to
// Forever never fire; the paper uses this for "delay between CLCs set to
// infinite".
const Forever Duration = 1<<62 - 1

// Add returns the time d after t, saturating instead of overflowing.
func (t Time) Add(d Duration) Time {
	s := Time(int64(t) + int64(d))
	if d > 0 && s < t {
		return Time(1<<63 - 1)
	}
	return s
}

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(int64(t) - int64(u)) }

// Std converts a virtual duration to a time.Duration (same nanosecond
// count); useful when scaling virtual time onto the wall clock in the
// live runtime.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// String formats a virtual time using time.Duration notation.
func (t Time) String() string { return time.Duration(t).String() }

// String formats a virtual duration using time.Duration notation.
func (d Duration) String() string {
	if d >= Forever {
		return "forever"
	}
	return time.Duration(d).String()
}

// Seconds reports the duration as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Minutes reports the duration as floating-point minutes.
func (d Duration) Minutes() float64 { return float64(d) / float64(Minute) }

// Scale multiplies the duration by a float factor, rounding to the
// nearest nanosecond.
func (d Duration) Scale(f float64) Duration {
	return Duration(float64(d)*f + 0.5)
}

// ParseDuration parses a virtual duration in time.ParseDuration syntax,
// plus the literal "forever".
func ParseDuration(s string) (Duration, error) {
	if s == "forever" || s == "inf" || s == "infinite" {
		return Forever, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("sim: parse duration %q: %w", s, err)
	}
	return Duration(d), nil
}
