package sim

import (
	"fmt"
	"io"
)

// TraceLevel selects how much the simulator reports, mirroring the
// paper's "different trace levels" compilation modes.
type TraceLevel int

// Trace levels, from silent to per-event logging.
const (
	TraceOff   TraceLevel = iota // statistics only
	TraceInfo                    // checkpoints, rollbacks, GC rounds
	TraceDebug                   // protocol messages
	TraceAll                     // every node time-stamped action
)

// String names the level.
func (l TraceLevel) String() string {
	switch l {
	case TraceOff:
		return "off"
	case TraceInfo:
		return "info"
	case TraceDebug:
		return "debug"
	case TraceAll:
		return "all"
	default:
		return fmt.Sprintf("TraceLevel(%d)", int(l))
	}
}

// ParseTraceLevel parses a level name.
func ParseTraceLevel(s string) (TraceLevel, error) {
	switch s {
	case "off", "":
		return TraceOff, nil
	case "info":
		return TraceInfo, nil
	case "debug":
		return TraceDebug, nil
	case "all":
		return TraceAll, nil
	}
	return TraceOff, fmt.Errorf("sim: unknown trace level %q", s)
}

// Tracer writes time-stamped trace records for one simulation. A nil
// *Tracer is valid and silent, so components never need to nil-check.
type Tracer struct {
	engine *Engine
	w      io.Writer
	level  TraceLevel
	// Records counts emitted lines.
	Records uint64
}

// NewTracer returns a tracer writing records at or below level to w.
func NewTracer(e *Engine, w io.Writer, level TraceLevel) *Tracer {
	return &Tracer{engine: e, w: w, level: level}
}

// Level returns the tracer's level (TraceOff for nil).
func (t *Tracer) Level() TraceLevel {
	if t == nil {
		return TraceOff
	}
	return t.level
}

// Enabled reports whether records at level l are emitted.
func (t *Tracer) Enabled(l TraceLevel) bool {
	return t != nil && t.w != nil && l <= t.level && l > TraceOff
}

// Emit writes one record at level l: "[virtual-time] who: message".
func (t *Tracer) Emit(l TraceLevel, who string, format string, args ...any) {
	if !t.Enabled(l) {
		return
	}
	t.Records++
	fmt.Fprintf(t.w, "[%12v] %-14s %s\n", t.engine.Now(), who, fmt.Sprintf(format, args...))
}

// Infof emits a TraceInfo record.
func (t *Tracer) Infof(who, format string, args ...any) { t.Emit(TraceInfo, who, format, args...) }

// Debugf emits a TraceDebug record.
func (t *Tracer) Debugf(who, format string, args ...any) { t.Emit(TraceDebug, who, format, args...) }

// Allf emits a TraceAll record.
func (t *Tracer) Allf(who, format string, args ...any) { t.Emit(TraceAll, who, format, args...) }
