package sim

import (
	"container/heap"
	"testing"
)

// Tests for the slab/generation machinery behind the engine: refs into
// recycled slots must be inert, and the slab heap must agree with a
// reference implementation under arbitrary schedule/cancel/fire
// interleavings.

// TestEventRefRecycledSlotIsInert pins the generation-stamp guarantee:
// once a slot is freed (cancel or fire) and recycled by a later
// schedule, the stale ref can neither report Pending nor Cancel the
// slot's new occupant.
func TestEventRefRecycledSlotIsInert(t *testing.T) {
	e := NewEngine()
	stale := e.Schedule(Second, func(*Engine) { t.Fatal("cancelled event fired") })
	if !stale.Cancel() {
		t.Fatal("first Cancel must succeed")
	}
	// The freed slot is head of the free list: this schedule recycles it.
	fired := false
	fresh := e.Schedule(2*Second, func(*Engine) { fired = true })
	if fresh.slot != stale.slot {
		t.Fatalf("test setup: expected slot reuse, got %d then %d", stale.slot, fresh.slot)
	}
	if stale.Pending() {
		t.Fatal("stale ref reports Pending for the slot's new occupant")
	}
	if stale.Cancel() {
		t.Fatal("stale ref cancelled the slot's new occupant")
	}
	if !fresh.Pending() {
		t.Fatal("fresh event lost")
	}
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("fresh event never fired")
	}
}

// TestEventRefAfterFireIsInert covers the fire path: a ref to an event
// that already executed is a no-op even after its slot is recycled,
// including when the recycling schedule happens inside the handler.
func TestEventRefAfterFireIsInert(t *testing.T) {
	e := NewEngine()
	var inner EventRef
	innerFired := false
	outer := e.Schedule(Second, func(e *Engine) {
		// The firing event's slot is already free here: this reuses it.
		inner = e.Schedule(Second, func(*Engine) { innerFired = true })
	})
	e.Step()
	if outer.Pending() {
		t.Fatal("fired event still pending")
	}
	if inner.slot != outer.slot {
		t.Fatalf("test setup: expected in-handler slot reuse, got %d then %d", outer.slot, inner.slot)
	}
	if outer.Cancel() {
		t.Fatal("ref to fired event cancelled its slot's new occupant")
	}
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if !innerFired {
		t.Fatal("inner event never fired")
	}
}

// TestScheduleCallClosureFreePath exercises ScheduleCall/ScheduleCallAt:
// args arrive intact, cancellation works, FIFO order holds against
// closure-scheduled events at the same instant.
func TestScheduleCallClosureFreePath(t *testing.T) {
	e := NewEngine()
	var got []int
	record := func(arg any) { got = append(got, arg.(int)) }
	e.ScheduleCall(Second, record, 1)
	e.Schedule(Second, func(*Engine) { got = append(got, 2) })
	e.ScheduleCallAt(Time(Second), record, 3)
	dead := e.ScheduleCall(Second, record, 99)
	if !dead.Cancel() {
		t.Fatal("cancel failed")
	}
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// TestEngineResetRecyclesAndInvalidates pins the arena contract: after
// Reset the clock and queue are empty, refs from before the reset are
// inert, and the engine replays a schedule exactly like a fresh one.
func TestEngineResetRecyclesAndInvalidates(t *testing.T) {
	e := NewEngine()
	var refs []EventRef
	for i := 0; i < 10; i++ {
		refs = append(refs, e.Schedule(Duration(i+1)*Second, func(*Engine) {}))
	}
	e.Step()
	e.Reset()
	if e.Now() != 0 || e.Len() != 0 || e.Executed != 0 {
		t.Fatalf("Reset left state: now=%v len=%d executed=%d", e.Now(), e.Len(), e.Executed)
	}
	for i, r := range refs {
		if r.Pending() {
			t.Fatalf("ref %d survived Reset", i)
		}
		if r.Cancel() {
			t.Fatalf("ref %d cancelled something after Reset", i)
		}
	}
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		e.Schedule(Duration(5-i)*Second, func(*Engine) { got = append(got, i) })
	}
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != 4-i {
			t.Fatalf("post-Reset order %v", got)
		}
	}
}

// refEvent / refQueue form the oracle for the fuzz test: the textbook
// container/heap queue the slab engine replaced.
type refEvent struct {
	at  Time
	seq uint64
	id  int
}
type refQueue []refEvent

func (q refQueue) Len() int { return len(q) }
func (q refQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q refQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *refQueue) Push(x any)   { *q = append(*q, x.(refEvent)) }
func (q *refQueue) Pop() any     { old := *q; n := len(old); x := old[n-1]; *q = old[:n-1]; return x }

// TestEngineLadderDifferentialFuzz drives the ladder-queue engine and
// the reference heap with identical schedule/cancel sequences and
// requires identical firing order. Unlike TestEngineFuzzInterleaving it
// stresses the ladder's structural seams: delays spanning nanoseconds
// to hours (near bucket, window edge, far spill heap), exact bucket-
// and window-boundary timestamps, same-tick collisions drained by the
// batched Run loop, nested in-handler scheduling into the tick being
// drained, and window jumps across long idle gaps.
func TestEngineLadderDifferentialFuzz(t *testing.T) {
	rng := NewRNG(0x1adde2)
	e := NewEngine()

	type entry struct {
		id  int
		ref EventRef
	}
	var (
		oracle    refQueue
		seq       uint64 // mirrors e.seq: every push goes through push()
		nextID    int
		fired     []int
		cancelled = map[int]bool{}
		live      []entry
	)
	var push func(d Duration)
	record := func(arg any) {
		id := arg.(int)
		if cancelled[id] {
			t.Fatalf("cancelled event %d fired", id)
		}
		fired = append(fired, id)
		// Deterministic nested scheduling: some handlers chain follow-ups
		// into the tick being batch-drained (d == 0) or right behind it.
		switch id % 11 {
		case 0:
			push(0)
		case 5:
			push(Duration(id%3) * Millisecond)
		}
	}
	push = func(d Duration) {
		id := nextID
		nextID++
		ref := e.ScheduleCall(d, record, id)
		seq++
		heap.Push(&oracle, refEvent{at: e.Now().Add(d), seq: seq, id: id})
		live = append(live, entry{id: id, ref: ref})
	}

	// Delay scales crossing every tier boundary: inside a bucket, exact
	// bucket width, exact window width, just beyond, and far future.
	scales := []Duration{
		0, Nanosecond, Microsecond,
		ladWidth - 1, ladWidth, ladWidth + 1,
		Millisecond * 7,
		ladWindow - 1, ladWindow, ladWindow + 1,
		Second, 37 * Second, 12 * Minute, Hour,
	}
	delay := func() Duration {
		d := scales[rng.Intn(len(scales))]
		switch rng.Intn(3) {
		case 0:
			return d // exact boundary
		case 1:
			return d + Duration(rng.Intn(1000))*Microsecond
		default:
			// Quantized to provoke same-tick collisions.
			return d + Duration(rng.Intn(4))*Millisecond
		}
	}
	cancelRandom := func() {
		if len(live) == 0 {
			return
		}
		i := rng.Intn(len(live))
		en := live[i]
		live = append(live[:i], live[i+1:]...)
		if en.ref.Cancel() {
			cancelled[en.id] = true
			for j, ev := range oracle {
				if ev.id == en.id {
					heap.Remove(&oracle, j)
					break
				}
			}
		}
	}
	// runSegment advances the engine to a horizon through Run — the
	// batched dispatch loop — and replays the oracle to the same
	// horizon, comparing the fired sequences. Nested pushes made by
	// handlers entered both queues before the oracle replay starts, so
	// any divergence in order shows up as a mismatch.
	runSegment := func() {
		horizon := e.Now().Add(Duration(1+rng.Intn(4000)) * Millisecond)
		if rng.Intn(8) == 0 {
			horizon = e.Now().Add(Duration(1+rng.Intn(3)) * Hour) // long jump
		}
		mark := len(fired)
		if _, err := e.Run(horizon); err != nil {
			t.Fatal(err)
		}
		var want []int
		for len(oracle) > 0 && oracle[0].at <= horizon {
			want = append(want, heap.Pop(&oracle).(refEvent).id)
		}
		got := fired[mark:]
		if len(got) != len(want) {
			t.Fatalf("segment to %v fired %d events, oracle wanted %d", horizon, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("segment to %v diverged at %d: engine %v, oracle %v", horizon, i, got, want)
			}
		}
	}

	for op := 0; op < 30000; op++ {
		switch r := rng.Intn(100); {
		case r < 55:
			push(delay())
		case r < 70:
			cancelRandom()
		default:
			runSegment()
		}
		if e.Len() != len(oracle) {
			t.Fatalf("op %d: engine Len %d, oracle %d", op, e.Len(), len(oracle))
		}
	}
	// Drain completely and compare the tail.
	mark := len(fired)
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	var want []int
	for len(oracle) > 0 {
		want = append(want, heap.Pop(&oracle).(refEvent).id)
	}
	got := fired[mark:]
	if len(got) != len(want) {
		t.Fatalf("final drain fired %d events, oracle wanted %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("final drain diverged at index %d", i)
		}
	}
}

// TestEngineFuzzInterleaving drives a deterministic pseudo-random mix of
// schedule, cancel and fire operations and checks the engine against
// the reference heap: same firing order, cancelled events never fire,
// Len always agrees.
func TestEngineFuzzInterleaving(t *testing.T) {
	rng := NewRNG(0xfeed)
	e := NewEngine()

	type tracked struct {
		ref       EventRef
		id        int
		cancelled bool
		fired     bool
	}
	var (
		oracle  refQueue
		live    []*tracked
		byID    = map[int]*tracked{}
		firedID []int
		nextID  int
		seq     uint64
	)
	schedule := func() {
		d := Duration(rng.Intn(1000)) * Millisecond
		id := nextID
		nextID++
		tr := &tracked{id: id}
		tr.ref = e.ScheduleCall(d, func(arg any) {
			got := byID[arg.(int)]
			if got.cancelled {
				t.Fatalf("cancelled event %d fired", got.id)
			}
			got.fired = true
			firedID = append(firedID, got.id)
		}, id)
		byID[id] = tr
		live = append(live, tr)
		seq++
		heap.Push(&oracle, refEvent{at: e.Now().Add(d), seq: seq, id: id})
	}
	cancelRandom := func() {
		if len(live) == 0 {
			return
		}
		i := rng.Intn(len(live))
		tr := live[i]
		live = append(live[:i], live[i+1:]...)
		if tr.ref.Cancel() {
			tr.cancelled = true
			for j, ev := range oracle {
				if ev.id == tr.id {
					heap.Remove(&oracle, j)
					break
				}
			}
		} else if !tr.fired {
			t.Fatalf("Cancel of live unfired event %d failed", tr.id)
		}
	}
	fire := func() {
		before := len(firedID)
		stepped := e.Step()
		if len(oracle) == 0 {
			if stepped {
				t.Fatal("engine fired with empty oracle")
			}
			return
		}
		want := heap.Pop(&oracle).(refEvent)
		if !stepped {
			t.Fatalf("engine idle but oracle holds event %d", want.id)
		}
		if len(firedID) != before+1 || firedID[len(firedID)-1] != want.id {
			t.Fatalf("fired %v, oracle wanted %d", firedID[before:], want.id)
		}
		for i, tr := range live {
			if tr.id == want.id {
				live = append(live[:i], live[i+1:]...)
				break
			}
		}
	}

	for op := 0; op < 20000; op++ {
		switch r := rng.Intn(10); {
		case r < 5:
			schedule()
		case r < 7:
			cancelRandom()
		default:
			fire()
		}
		if e.Len() != len(oracle) {
			t.Fatalf("op %d: engine Len %d, oracle %d", op, e.Len(), len(oracle))
		}
	}
	for len(oracle) > 0 {
		fire()
	}
	if e.Step() {
		t.Fatal("engine fired past a drained oracle")
	}
	for _, tr := range byID {
		if tr.cancelled && tr.fired {
			t.Fatalf("event %d both cancelled and fired", tr.id)
		}
	}
}
