package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdersEventsByTime(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(30*Second, func(*Engine) { got = append(got, 3) })
	e.Schedule(10*Second, func(*Engine) { got = append(got, 1) })
	e.Schedule(20*Second, func(*Engine) { got = append(got, 2) })
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
	if e.Now() != Time(30*Second) {
		t.Errorf("Now() = %v, want 30s", e.Now())
	}
}

func TestEngineFIFOWithinSameInstant(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5*Second, func(*Engine) { got = append(got, i) })
	}
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-instant events not FIFO: %v", got)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Schedule(Second, func(e *Engine) {
		fired++
		e.Schedule(Second, func(e *Engine) {
			fired++
			if e.Now() != Time(2*Second) {
				t.Errorf("nested event at %v, want 2s", e.Now())
			}
		})
	})
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ref := e.Schedule(Second, func(*Engine) { fired = true })
	if !ref.Pending() {
		t.Fatal("event should be pending")
	}
	if !ref.Cancel() {
		t.Fatal("Cancel returned false on pending event")
	}
	if ref.Cancel() {
		t.Fatal("second Cancel should return false")
	}
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestEngineHorizon(t *testing.T) {
	e := NewEngine()
	var fired []int
	e.Schedule(Second, func(*Engine) { fired = append(fired, 1) })
	e.Schedule(3*Second, func(*Engine) { fired = append(fired, 2) })
	end, err := e.Run(Time(2 * Second))
	if err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 || fired[0] != 1 {
		t.Fatalf("fired = %v, want [1]", fired)
	}
	if end != Time(2*Second) {
		t.Errorf("end = %v, want 2s", end)
	}
	// The remaining event still fires when the horizon is extended.
	if _, err := e.Run(Time(10 * Second)); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 {
		t.Fatalf("fired = %v after extending horizon, want two events", fired)
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 5; i++ {
		e.Schedule(Duration(i)*Second, func(e *Engine) {
			count++
			if count == 2 {
				e.Stop()
			}
		})
	}
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("count = %d, want 2 (Stop should halt the run)", count)
	}
}

func TestEngineMaxEventsGuard(t *testing.T) {
	e := NewEngine()
	e.MaxEvents = 10
	var loop Handler
	loop = func(e *Engine) { e.Schedule(Second, loop) }
	e.Schedule(Second, loop)
	if _, err := e.RunAll(); err == nil {
		t.Fatal("expected MaxEvents error for unbounded event loop")
	}
}

func TestEngineScheduleInPastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10*Second, func(*Engine) {})
	e.Step()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	e.ScheduleAt(Time(Second), func(*Engine) {})
}

func TestTimerResetAndStop(t *testing.T) {
	e := NewEngine()
	fired := 0
	tm := NewTimer(e, func(*Engine) { fired++ })
	tm.Reset(10 * Second)
	tm.Reset(20 * Second) // supersedes the first arming
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 (Reset must cancel previous arming)", fired)
	}
	if e.Now() != Time(20*Second) {
		t.Errorf("fired at %v, want 20s", e.Now())
	}

	tm.Reset(5 * Second)
	tm.Stop()
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("stopped timer fired")
	}
}

func TestTimerForeverNeverFires(t *testing.T) {
	e := NewEngine()
	tm := NewTimer(e, func(*Engine) { t.Fatal("forever timer fired") })
	tm.Reset(Forever)
	if tm.Armed() {
		t.Fatal("forever timer should not be armed")
	}
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
}

// Property: for any batch of delays, events fire in nondecreasing time
// order and the clock ends at the max delay.
func TestEngineMonotonicClockProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		e := NewEngine()
		last := Time(-1)
		ok := true
		var max Duration
		for _, d := range delays {
			dur := Duration(d) * Millisecond
			if dur > max {
				max = dur
			}
			e.Schedule(dur, func(e *Engine) {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
			})
		}
		if _, err := e.RunAll(); err != nil {
			return false
		}
		return ok && e.Now() == Time(max)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestEngineInterrupt: Interrupt stops a run from another goroutine
// with ErrInterrupted, stays sticky across subsequent Run calls, and
// clears on Reset — the contract the federation wall-clock watchdog
// depends on (a timer firing between horizon slices must still kill
// the run, and a pooled engine must come back clean).
func TestEngineInterrupt(t *testing.T) {
	e := NewEngine()
	ran := 0
	var tick func(*Engine)
	tick = func(en *Engine) {
		ran++
		if ran == 5 {
			en.Interrupt() // in-run interrupt: the batch loop must notice
		}
		en.Schedule(Second, tick)
	}
	e.Schedule(Second, tick)
	if _, err := e.Run(Time(1000 * Second)); err != ErrInterrupted {
		t.Fatalf("Run under interrupt returned %v, want ErrInterrupted", err)
	}
	if ran > 6 {
		t.Fatalf("%d events ran after the interrupt; the run did not stop", ran)
	}
	// Sticky: the next slice dies immediately without executing events.
	before := ran
	if _, err := e.Run(Time(2000 * Second)); err != ErrInterrupted {
		t.Fatalf("second Run returned %v, want sticky ErrInterrupted", err)
	}
	if ran != before {
		t.Fatal("sticky interrupt still executed events")
	}
	e.ClearInterrupt()
	// tick reschedules itself forever, so run to a bounded horizon.
	if _, err := e.Run(e.Now().Add(3 * Second)); err != nil {
		t.Fatalf("run after ClearInterrupt: %v", err)
	}
	if ran == before {
		t.Fatal("cleared interrupt still blocked execution")
	}
	// Reset clears the flag too (the arena recycles engines via Reset).
	e.Interrupt()
	e.Reset()
	e.Schedule(Second, func(*Engine) {})
	if _, err := e.RunAll(); err != nil {
		t.Fatalf("run after Reset: %v", err)
	}
}
