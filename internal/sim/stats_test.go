package sim

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummaryMoments(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Observe(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Fatalf("mean = %v, want 5", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	// Population variance 4 => sample variance 32/7.
	if math.Abs(s.Variance()-32.0/7.0) > 1e-9 {
		t.Fatalf("variance = %v", s.Variance())
	}
}

func TestSummaryMatchesDirectComputation(t *testing.T) {
	f := func(xs []float64) bool {
		var s Summary
		var sum float64
		finite := xs[:0]
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				continue
			}
			finite = append(finite, x)
		}
		if len(finite) == 0 {
			return true
		}
		for _, x := range finite {
			s.Observe(x)
			sum += x
		}
		want := sum / float64(len(finite))
		scale := math.Max(1, math.Abs(want))
		return math.Abs(s.Mean()-want) < 1e-6*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 100; i >= 1; i-- {
		h.Observe(float64(i))
	}
	if h.N() != 100 {
		t.Fatalf("N = %d", h.N())
	}
	if q := h.Quantile(0); q != 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q := h.Quantile(1); q != 100 {
		t.Fatalf("q1 = %v", q)
	}
	if q := h.Quantile(0.5); math.Abs(q-50) > 1.5 {
		t.Fatalf("median = %v", q)
	}
	if m := h.Mean(); math.Abs(m-50.5) > 1e-9 {
		t.Fatalf("mean = %v", m)
	}
}

// TestHistogramBucketMode pushes the histogram past its exact-sample
// capacity and checks the log-bucketed quantiles stay within one
// sub-bucket's relative error (1/32 octave ~ 2.2%) of the true values.
func TestHistogramBucketMode(t *testing.T) {
	var h Histogram
	const n = 100000
	for i := 1; i <= n; i++ {
		h.Observe(float64(i))
	}
	if h.N() != n {
		t.Fatalf("N = %d", h.N())
	}
	if h.exact != nil {
		t.Fatal("exact sample list must be dropped past the small-count cap")
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		want := q * n
		got := h.Quantile(q)
		if rel := math.Abs(got-want) / want; rel > 0.03 {
			t.Errorf("q%v = %v, want ~%v (rel err %.3f)", q, got, want, rel)
		}
	}
	if h.Quantile(0) != 1 || h.Quantile(1) != n {
		t.Fatalf("extremes = %v, %v", h.Quantile(0), h.Quantile(1))
	}
	if m := h.Mean(); math.Abs(m-(n+1)/2.0) > 1e-6 {
		t.Fatalf("mean = %v", m)
	}
}

// TestHistogramQuantileDoesNotMutate pins the regression the exact
// path used to have: Quantile sorted the sample list in place, so
// interleaving Quantile calls with Observe corrupted later merges and
// made quantiles depend on query order.
func TestHistogramQuantileDoesNotMutate(t *testing.T) {
	var h Histogram
	for _, x := range []float64{5, 1, 4, 2, 3} {
		h.Observe(x)
	}
	if q := h.Quantile(0.5); q != 3 {
		t.Fatalf("median = %v", q)
	}
	want := []float64{5, 1, 4, 2, 3}
	for i, x := range h.exact {
		if x != want[i] {
			t.Fatalf("Quantile reordered the sample list: %v", h.exact)
		}
	}
	// A second identical query must agree (no hidden state).
	if q := h.Quantile(0.5); q != 3 {
		t.Fatalf("repeated median = %v", q)
	}
}

// TestHistogramNegativeAndZero covers the signed bucket walk: negative
// samples rank below zeros, zeros below positives.
func TestHistogramNegativeAndZero(t *testing.T) {
	var h Histogram
	for i := 0; i < 200; i++ {
		h.Observe(-100)
	}
	for i := 0; i < 200; i++ {
		h.Observe(0)
	}
	for i := 0; i < 200; i++ {
		h.Observe(100)
	}
	if q := h.Quantile(0.05); math.Abs(q-(-100))/100 > 0.03 {
		t.Fatalf("low quantile = %v", q)
	}
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("median = %v", q)
	}
	if q := h.Quantile(0.95); math.Abs(q-100)/100 > 0.03 {
		t.Fatalf("high quantile = %v", q)
	}
}

// TestHistogramMergeMatchesPooled checks merge stability: merging
// shard-local histograms yields the same quantiles as observing every
// sample in one histogram, in both exact and bucketed regimes.
func TestHistogramMergeMatchesPooled(t *testing.T) {
	for _, n := range []int{40, 4000} { // exact regime, bucket regime
		var a, b, pooled Histogram
		for i := 1; i <= n; i++ {
			x := float64(i)
			pooled.Observe(x)
			if i%2 == 0 {
				a.Observe(x)
			} else {
				b.Observe(x)
			}
		}
		a.Merge(&b)
		if a.N() != pooled.N() {
			t.Fatalf("n=%d: merged N = %d, want %d", n, a.N(), pooled.N())
		}
		for _, q := range []float64{0, 0.5, 0.99, 1} {
			if got, want := a.Quantile(q), pooled.Quantile(q); got != want {
				t.Errorf("n=%d q%v: merged %v != pooled %v", n, q, got, want)
			}
		}
		if math.Abs(a.Mean()-pooled.Mean()) > 1e-9 {
			t.Errorf("n=%d: merged mean %v != pooled %v", n, a.Mean(), pooled.Mean())
		}
	}
}

// TestHistogramNonFinite: NaN samples are dropped, infinities clamp.
func TestHistogramNonFinite(t *testing.T) {
	var h Histogram
	h.Observe(math.NaN())
	if h.N() != 0 {
		t.Fatal("NaN must be dropped")
	}
	h.Observe(math.Inf(1))
	h.Observe(1)
	if h.N() != 2 || h.Max() != math.MaxFloat64 {
		t.Fatalf("N=%d max=%v", h.N(), h.Max())
	}
}

// TestHistogramMemoryBounded asserts the fixed-memory contract: the
// allocation count is a function of the value range (occupied
// buckets), not of the sample count. The broken implementation grew a
// []float64 per sample and allocated linearly in n.
func TestHistogramMemoryBounded(t *testing.T) {
	allocs := func(n int) float64 {
		return testing.AllocsPerRun(1, func() {
			var h Histogram
			r := NewRNG(7)
			for i := 0; i < n; i++ {
				h.Observe(1 + r.Float64()*1000)
			}
			if h.Quantile(0.999) <= 0 {
				t.Fatal("bad quantile")
			}
		})
	}
	small, large := allocs(1<<15), allocs(1<<18) // 8x the samples
	if large > 1.5*small+64 {
		t.Fatalf("allocations grow with sample count: %v at 32Ki vs %v at 256Ki", small, large)
	}
}

func TestStatsHistogramRegistryAndDump(t *testing.T) {
	st := NewStats()
	h := st.Histogram("lat_s")
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) / 100)
	}
	if st.Histogram("lat_s") != h {
		t.Fatal("histogram registry must return the same instance")
	}
	seen := 0
	st.ForEachHistogram(func(name string, got *Histogram) {
		if name != "lat_s" || got != h {
			t.Fatalf("ForEachHistogram gave %q", name)
		}
		seen++
	})
	if seen != 1 {
		t.Fatalf("ForEachHistogram visited %d", seen)
	}
	dump := st.Dump()
	for _, want := range []string{"histo", "lat_s", "p50=", "p999="} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q:\n%s", want, dump)
		}
	}
}

func TestSeriesAt(t *testing.T) {
	var s Series
	s.Record(Time(10), 1)
	s.Record(Time(20), 2)
	s.Record(Time(30), 3)
	cases := []struct {
		t    Time
		want float64
	}{
		{5, 0}, {10, 1}, {15, 1}, {20, 2}, {29, 2}, {30, 3}, {100, 3},
	}
	for _, c := range cases {
		if got := s.At(c.t); got != c.want {
			t.Errorf("At(%d) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestStatsRegistry(t *testing.T) {
	st := NewStats()
	st.Counter("msgs").Add(3)
	st.Counter("msgs").Inc()
	if v := st.CounterValue("msgs"); v != 4 {
		t.Fatalf("counter = %d", v)
	}
	if v := st.CounterValue("absent"); v != 0 {
		t.Fatalf("absent counter = %d", v)
	}
	st.Summary("lat").Observe(1)
	st.Series("clcs").Record(Time(1), 1)
	names := st.Names()
	if len(names) != 3 {
		t.Fatalf("names = %v", names)
	}
	dump := st.Dump()
	for _, want := range []string{"msgs", "lat", "clcs"} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q:\n%s", want, dump)
		}
	}
}

func TestParseDuration(t *testing.T) {
	d, err := ParseDuration("30m")
	if err != nil || d != 30*Minute {
		t.Fatalf("ParseDuration(30m) = %v, %v", d, err)
	}
	d, err = ParseDuration("forever")
	if err != nil || d != Forever {
		t.Fatalf("ParseDuration(forever) = %v, %v", d, err)
	}
	if _, err := ParseDuration("bogus"); err == nil {
		t.Fatal("expected error for bogus duration")
	}
}

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(0).Add(90 * Minute)
	if t0 != Time(90*Minute) {
		t.Fatalf("Add = %v", t0)
	}
	if d := t0.Sub(Time(30 * Minute)); d != 60*Minute {
		t.Fatalf("Sub = %v", d)
	}
	if s := (90 * Minute).Minutes(); s != 90 {
		t.Fatalf("Minutes = %v", s)
	}
	// Saturating add must not wrap.
	huge := Time(1<<63 - 10)
	if huge.Add(Forever) < huge {
		t.Fatal("Add overflowed")
	}
}

func TestTraceLevels(t *testing.T) {
	e := NewEngine()
	var buf strings.Builder
	tr := NewTracer(e, &buf, TraceInfo)
	tr.Infof("node0", "hello %d", 1)
	tr.Debugf("node0", "not shown")
	if tr.Records != 1 {
		t.Fatalf("records = %d, want 1", tr.Records)
	}
	if !strings.Contains(buf.String(), "hello 1") {
		t.Fatalf("trace output = %q", buf.String())
	}
	var nilTr *Tracer
	nilTr.Infof("x", "must not panic")
	if nilTr.Level() != TraceOff {
		t.Fatal("nil tracer level")
	}
	if _, err := ParseTraceLevel("debug"); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseTraceLevel("nope"); err == nil {
		t.Fatal("expected error")
	}
}
