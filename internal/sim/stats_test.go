package sim

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummaryMoments(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Observe(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Fatalf("mean = %v, want 5", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	// Population variance 4 => sample variance 32/7.
	if math.Abs(s.Variance()-32.0/7.0) > 1e-9 {
		t.Fatalf("variance = %v", s.Variance())
	}
}

func TestSummaryMatchesDirectComputation(t *testing.T) {
	f := func(xs []float64) bool {
		var s Summary
		var sum float64
		finite := xs[:0]
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				continue
			}
			finite = append(finite, x)
		}
		if len(finite) == 0 {
			return true
		}
		for _, x := range finite {
			s.Observe(x)
			sum += x
		}
		want := sum / float64(len(finite))
		scale := math.Max(1, math.Abs(want))
		return math.Abs(s.Mean()-want) < 1e-6*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 100; i >= 1; i-- {
		h.Observe(float64(i))
	}
	if h.N() != 100 {
		t.Fatalf("N = %d", h.N())
	}
	if q := h.Quantile(0); q != 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q := h.Quantile(1); q != 100 {
		t.Fatalf("q1 = %v", q)
	}
	if q := h.Quantile(0.5); math.Abs(q-50) > 1.5 {
		t.Fatalf("median = %v", q)
	}
	if m := h.Mean(); math.Abs(m-50.5) > 1e-9 {
		t.Fatalf("mean = %v", m)
	}
}

func TestSeriesAt(t *testing.T) {
	var s Series
	s.Record(Time(10), 1)
	s.Record(Time(20), 2)
	s.Record(Time(30), 3)
	cases := []struct {
		t    Time
		want float64
	}{
		{5, 0}, {10, 1}, {15, 1}, {20, 2}, {29, 2}, {30, 3}, {100, 3},
	}
	for _, c := range cases {
		if got := s.At(c.t); got != c.want {
			t.Errorf("At(%d) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestStatsRegistry(t *testing.T) {
	st := NewStats()
	st.Counter("msgs").Add(3)
	st.Counter("msgs").Inc()
	if v := st.CounterValue("msgs"); v != 4 {
		t.Fatalf("counter = %d", v)
	}
	if v := st.CounterValue("absent"); v != 0 {
		t.Fatalf("absent counter = %d", v)
	}
	st.Summary("lat").Observe(1)
	st.Series("clcs").Record(Time(1), 1)
	names := st.Names()
	if len(names) != 3 {
		t.Fatalf("names = %v", names)
	}
	dump := st.Dump()
	for _, want := range []string{"msgs", "lat", "clcs"} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q:\n%s", want, dump)
		}
	}
}

func TestParseDuration(t *testing.T) {
	d, err := ParseDuration("30m")
	if err != nil || d != 30*Minute {
		t.Fatalf("ParseDuration(30m) = %v, %v", d, err)
	}
	d, err = ParseDuration("forever")
	if err != nil || d != Forever {
		t.Fatalf("ParseDuration(forever) = %v, %v", d, err)
	}
	if _, err := ParseDuration("bogus"); err == nil {
		t.Fatal("expected error for bogus duration")
	}
}

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(0).Add(90 * Minute)
	if t0 != Time(90*Minute) {
		t.Fatalf("Add = %v", t0)
	}
	if d := t0.Sub(Time(30 * Minute)); d != 60*Minute {
		t.Fatalf("Sub = %v", d)
	}
	if s := (90 * Minute).Minutes(); s != 90 {
		t.Fatalf("Minutes = %v", s)
	}
	// Saturating add must not wrap.
	huge := Time(1<<63 - 10)
	if huge.Add(Forever) < huge {
		t.Fatal("Add overflowed")
	}
}

func TestTraceLevels(t *testing.T) {
	e := NewEngine()
	var buf strings.Builder
	tr := NewTracer(e, &buf, TraceInfo)
	tr.Infof("node0", "hello %d", 1)
	tr.Debugf("node0", "not shown")
	if tr.Records != 1 {
		t.Fatalf("records = %d, want 1", tr.Records)
	}
	if !strings.Contains(buf.String(), "hello 1") {
		t.Fatalf("trace output = %q", buf.String())
	}
	var nilTr *Tracer
	nilTr.Infof("x", "must not panic")
	if nilTr.Level() != TraceOff {
		t.Fatal("nil tracer level")
	}
	if _, err := ParseTraceLevel("debug"); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseTraceLevel("nope"); err == nil {
		t.Fatal("expected error")
	}
}
