package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical draws", same)
	}
}

func TestRNGStreamsIndependent(t *testing.T) {
	root := NewRNG(7)
	s1 := root.Stream("nodes")
	s2 := root.Stream("network")
	if s1.Uint64() == s2.Uint64() {
		t.Fatal("distinct streams produced the same first draw")
	}
	// Re-derivation after identical draw history is reproducible.
	rootB := NewRNG(7)
	s1b := rootB.Stream("nodes")
	s1b.Uint64() // align with s1 (one draw consumed above)
	x, y := s1.Uint64(), s1b.Uint64()
	if x != y {
		t.Fatalf("re-derived stream diverged: %d vs %d", x, y)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(11)
	mean := 10 * Second
	var sum float64
	const n = 50000
	for i := 0; i < n; i++ {
		sum += r.Exp(mean).Seconds()
	}
	got := sum / n
	if math.Abs(got-10) > 0.5 {
		t.Fatalf("Exp mean = %.3fs, want ~10s", got)
	}
}

func TestRNGExpForever(t *testing.T) {
	r := NewRNG(1)
	if d := r.Exp(Forever); d != Forever {
		t.Fatalf("Exp(Forever) = %v, want Forever", d)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(5)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) covered only %d values", len(seen))
	}
}

func TestRNGPickWeighted(t *testing.T) {
	r := NewRNG(9)
	counts := [3]int{}
	weights := []float64{1, 0, 3}
	for i := 0; i < 40000; i++ {
		counts[r.Pick(weights)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight option picked %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.6 || ratio > 3.4 {
		t.Fatalf("weighted pick ratio = %.2f, want ~3", ratio)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%32) + 1
		p := NewRNG(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGUniformBounds(t *testing.T) {
	r := NewRNG(13)
	for i := 0; i < 1000; i++ {
		d := r.Uniform(Second, 2*Second)
		if d < Second || d > 2*Second {
			t.Fatalf("Uniform out of bounds: %v", d)
		}
	}
	if d := r.Uniform(5*Second, 5*Second); d != 5*Second {
		t.Fatalf("degenerate Uniform = %v, want 5s", d)
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(17)
	var sum, sq float64
	const n = 50000
	for i := 0; i < n; i++ {
		x := r.Normal(5, 2)
		sum += x
		sq += x * x
	}
	mean := sum / n
	sd := math.Sqrt(sq/n - mean*mean)
	if math.Abs(mean-5) > 0.1 || math.Abs(sd-2) > 0.1 {
		t.Fatalf("Normal(5,2): mean=%.3f sd=%.3f", mean, sd)
	}
}
