package parallel

import (
	"errors"
	"sync"

	"repro/internal/sim"
)

// Shard is one partition of the simulation: the composable run
// primitives of a sim.Engine. All three are called only between
// windows (from the coordinator goroutine) or during a window (from
// the shard's own worker); never concurrently for one shard.
type Shard interface {
	HasPendingEvents() bool
	PeekNextEventTime() (sim.Time, bool)
	RunUntil(limit sim.Time) error
}

// ErrNoLookahead is returned by Run when the topology offers no
// positive lookahead (a zero-latency inter-cluster link): conservative
// windows would degenerate to zero width, so the caller must fall back
// to the sequential engine instead.
var ErrNoLookahead = errors.New("parallel: zero lookahead, run sequentially")

// Coordinator advances a fixed set of shards through conservative time
// windows. It is not safe for concurrent use; one Run call at a time.
type Coordinator struct {
	shards    []Shard
	lookahead sim.Duration

	// exchange, when non-nil, runs at every barrier — before the first
	// window and after each one — with all shard workers parked. It must
	// drain every cross-shard queue into the destination engines.
	// prevLimit is the limit of the window just finished (0 before the
	// first): every injection must target a time at or beyond it, which
	// cross-shard messages satisfy by the lookahead argument and
	// anything else (e.g. chaos crash handoffs) must be clamped to.
	exchange func(prevLimit sim.Time) error
	// check, when non-nil, runs after every window; a non-nil error
	// aborts Run. The federation harness polls its oracle here, the
	// parallel replacement for the sequential oracle's engine.Stop.
	check func() error

	// Windows counts completed windows across all Run calls — exposed
	// for tests and benchmarks to reason about barrier frequency.
	Windows uint64

	lastLimit sim.Time
}

// New returns a coordinator over the shards. lookahead must be the
// minimum virtual-time delay of any cross-shard influence (for the
// federation: the minimum inter-cluster link latency between clusters
// living on different shards). exchange and check may be nil.
func New(shards []Shard, lookahead sim.Duration, exchange func(prevLimit sim.Time) error, check func() error) *Coordinator {
	return &Coordinator{
		shards:    shards,
		lookahead: lookahead,
		exchange:  exchange,
		check:     check,
	}
}

// Run advances every shard until no shard holds an event at or before
// horizon, exchanging cross-shard messages at window barriers. It may
// be called repeatedly with growing horizons, mirroring the sequential
// harness's horizon slices. With zero or negative lookahead it returns
// ErrNoLookahead without touching any shard — degenerate topologies
// must not deadlock, they must fall back to sequential execution.
func (c *Coordinator) Run(horizon sim.Time) error {
	if c.lookahead <= 0 {
		return ErrNoLookahead
	}
	if len(c.shards) == 0 {
		return nil
	}

	// One persistent worker per shard, parked between windows: windows
	// are numerous (horizon / lookahead in the dense case), so per-window
	// goroutine spawning would dominate the barrier cost.
	n := len(c.shards)
	cmds := make([]chan sim.Time, n)
	errs := make([]error, n)
	done := make(chan struct{}, n)
	var wg sync.WaitGroup
	for i := range c.shards {
		cmds[i] = make(chan sim.Time)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for limit := range cmds[i] {
				errs[i] = c.shards[i].RunUntil(limit)
				done <- struct{}{}
			}
		}(i)
	}
	defer func() {
		for _, ch := range cmds {
			close(ch)
		}
		wg.Wait()
	}()

	for {
		// Barrier: workers are parked, the coordinator owns every shard.
		if c.exchange != nil {
			if err := c.exchange(c.lastLimit); err != nil {
				return err
			}
		}
		minNext, any := sim.Time(0), false
		for _, s := range c.shards {
			if t, ok := s.PeekNextEventTime(); ok && (!any || t < minNext) {
				minNext, any = t, true
			}
		}
		if !any || minNext > horizon {
			// Done: outboxes are empty (the exchange above drained the
			// previous window's traffic, and no window ran since).
			return nil
		}
		// Every event in [minNext, minNext+lookahead) is safe: a cross-
		// shard message sent at t >= minNext arrives at t+latency >=
		// minNext+lookahead. The horizon bound is inclusive like
		// Engine.Run's, hence the +1ns on the exclusive RunUntil limit.
		limit := minNext.Add(c.lookahead)
		if h := horizon.Add(sim.Nanosecond); limit > h {
			limit = h
		}
		for i := range cmds {
			cmds[i] <- limit
		}
		for range cmds {
			<-done
		}
		c.Windows++
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		if c.check != nil {
			if err := c.check(); err != nil {
				return err
			}
		}
		c.lastLimit = limit
	}
}
