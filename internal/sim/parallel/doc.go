// Package parallel synchronizes several discrete event engines with
// conservative time windows, the classic null-message-free variant of
// conservative parallel simulation: shards may only process events
// whose timestamps are provably unaffected by any other shard.
//
// # Lookahead
//
// The federation harness partitions clusters across shards, each with
// its own sim.Engine. Inter-shard influence flows exclusively through
// inter-cluster messages, and every such message takes at least the
// minimum latency of any link joining clusters on different shards —
// the lookahead L. Chaos perturbations respect the bound by
// construction: extra adversarial delay is only ever added (never
// subtracted), and releasing a message from the per-pipe FIFO clamp
// still leaves the link latency in its arrival time.
//
// If the earliest pending event anywhere sits at time T, no
// cross-shard message can arrive before T+L, so every shard may
// freely fire its events in [T, T+L) in parallel. At the window
// barrier the harness exchanges the messages generated during the
// window — all of which arrive at or after the barrier — and the next
// window starts from the new global minimum. A topology whose
// cross-shard lookahead is zero cannot form windows at all; Run
// returns ErrNoLookahead and the caller falls back to one engine.
//
// # The tick-FIFO merge rule
//
// The coordinator never inspects event payloads and never migrates
// events itself: it only sequences RunUntil calls and barrier
// callbacks. Byte-identical results relative to a sequential run are
// the harness's contract, built on the engine's post-tick dispatch
// class (see sim.SchedulePostCallAt). Every inter-cluster delivery —
// local or injected at a barrier — dispatches in that class under an
// explicit (pipe, sequence) key: at one timestamp, post-class events
// fire after every ordinary event, ordered by key alone. The key is a
// pure function of wire content (the directed cluster pair and that
// pipe's running sequence number), not of which engine scheduled the
// delivery or when the barrier handed it over, so a cross-shard
// delivery lands in exactly the same-tick slot the sequential engine
// would have given it. Order-sensitive side channels that cannot ride
// the event queue — the oracle's observation stream, Welford summary
// updates — are journaled per shard and replayed at barriers in
// global (time, shard) order instead.
//
// # Why results stay byte-identical
//
// Determinism needs every ordering and every random draw to be
// partition-independent:
//
//   - event order within a tick: the post-tick class above;
//   - random streams: each shard derives the full stream family in
//     the sequential assembly order, discarding streams for nodes it
//     does not own, and per-message link jitter moves from one shared
//     draw-order-dependent stream to slot-keyed streams;
//   - statistics: counters merge by sum, series merge k-way by
//     (time, shard), summaries replay their journaled observations —
//     floating-point accumulation order is reproduced, not
//     approximated.
//
// The one deliberate exception is the chaos tier: each shard perturbs
// the traffic it routes from its own scheduler stream, so a sharded
// adversarial schedule is deterministic for a given (seed, shard
// count) but differs from the sequential schedule. Crash fuses from
// all shards funnel through the barrier, where a global cooldown gate
// preserves the one-fault-at-a-time failure model across shards.
//
// # Shards vs speedup
//
// Windows number O(span/L): the barrier rate is set by the network's
// latency floor, not by the event rate, so wide topologies with
// millisecond lookaheads amortize each hand-off over thousands of
// events while LAN-class lookaheads (150µs) barrier far more often.
// Wall-clock gains therefore need one core per shard and a wide run;
// on a single CPU the barriers are pure overhead. Measured on the
// recording container (1 CPU, quick 64-cluster wide matrix slice,
// BENCH_pr6.json):
//
//	shards  benchmark                   ns/op      vs sequential
//	1       BenchmarkWideSlice          214ms      1.0x
//	4       BenchmarkWideSliceParallel  509ms      0.42x (slower)
//
// The identical split on a multi-core machine divides the per-window
// simulation work across engines; the coordinator's persistent
// workers and the pooled exchange buffers keep the per-barrier cost
// flat as shard count grows.
package parallel
